//! Extending the tuner: plugging a *custom* phase-2 strategy (UCB1) into
//! the two-phase loop.
//!
//! ```sh
//! cargo run --release --example custom_strategy
//! ```
//!
//! The paper's future work asks for combining strategies "to achieve
//! maximum convergence speed while defending against local extrema"; the
//! `NominalStrategy` trait is the extension point for that. UCB1 is a
//! natural candidate the paper does not evaluate — this example implements
//! it in ~40 lines and races it against ε-Greedy on the same workload.

use algochoice::autotune::history::AlgorithmHistory;
use algochoice::autotune::nominal::NominalStrategy;
use algochoice::autotune::prelude::*;
use algochoice::autotune::rng::Rng;
use algochoice::autotune::two_phase::Phase1Kind;

/// UCB1 over *inverse* runtimes (reward = 1/ms, scaled into [0, 1]).
struct Ucb1 {
    histories: Vec<AlgorithmHistory>,
    iteration: usize,
    reward_scale: f64,
}

impl Ucb1 {
    fn new(num_algorithms: usize, reward_scale: f64) -> Self {
        Ucb1 {
            histories: (0..num_algorithms)
                .map(|_| AlgorithmHistory::new())
                .collect(),
            iteration: 0,
            reward_scale,
        }
    }

    fn mean_reward(&self, a: usize) -> f64 {
        let h = &self.histories[a];
        let sum: f64 = h
            .samples()
            .iter()
            .map(|s| self.reward_scale / s.value)
            .sum();
        sum / h.len() as f64
    }
}

impl NominalStrategy for Ucb1 {
    fn num_algorithms(&self) -> usize {
        self.histories.len()
    }

    fn select(&mut self) -> usize {
        // Play every arm once, then maximize mean reward + exploration bonus.
        if let Some(unseen) = self.histories.iter().position(|h| h.is_empty()) {
            return unseen;
        }
        let t = (self.iteration.max(1)) as f64;
        (0..self.num_algorithms())
            .map(|a| {
                let bonus = (2.0 * t.ln() / self.histories[a].len() as f64).sqrt();
                (a, self.mean_reward(a) + bonus)
            })
            .max_by(|x, y| x.1.partial_cmp(&y.1).expect("finite"))
            .map(|(a, _)| a)
            .expect("at least one algorithm")
    }

    fn report(&mut self, algorithm: usize, value: f64) {
        self.histories[algorithm].record(self.iteration, Configuration::empty(), value);
        self.iteration += 1;
    }

    fn best(&self) -> Option<usize> {
        self.histories
            .iter()
            .enumerate()
            .filter_map(|(i, h)| h.best_value().map(|v| (i, v)))
            .min_by(|a, b| a.1.partial_cmp(&b.1).expect("finite"))
            .map(|(i, _)| i)
    }

    fn histories(&self) -> &[AlgorithmHistory] {
        &self.histories
    }

    fn name(&self) -> String {
        "ucb1".into()
    }
}

fn specs() -> Vec<AlgorithmSpec> {
    (0..5)
        .map(|i| AlgorithmSpec::untunable(format!("alg-{i}")))
        .collect()
}

/// Run one strategy for `iters` iterations; return total simulated time.
fn race(mut tuner: TwoPhaseTuner, iters: usize, seed: u64) -> (String, f64, Vec<usize>) {
    const COSTS: [f64; 5] = [25.0, 9.0, 11.0, 40.0, 10.0];
    let mut rng = Rng::new(seed);
    let mut total = 0.0;
    for _ in 0..iters {
        let s = tuner.step(|alg, _| (COSTS[alg] * (1.0 + 0.05 * rng.next_gaussian())).max(0.01));
        total += s.value;
    }
    (tuner.strategy_name(), total, tuner.selection_counts())
}

fn main() {
    let iters = 400;
    let ucb = TwoPhaseTuner::with_strategy(
        specs(),
        Box::new(Ucb1::new(5, 9.0)),
        Phase1Kind::NelderMead,
        1,
    );
    let eps = TwoPhaseTuner::new(specs(), NominalKind::EpsilonGreedy(0.10), 1);

    println!("racing UCB1 against e-greedy(10%) on a 5-armed workload ({iters} iterations):\n");
    for tuner in [ucb, eps] {
        let (name, total, counts) = race(tuner, iters, 7);
        println!(
            "  {name:<16} total {total:9.1} ms   mean/iter {:6.2} ms   counts {counts:?}",
            total / iters as f64
        );
    }
    println!("\n(the optimal arm costs 9 ms; both should sit close to it)");
}
