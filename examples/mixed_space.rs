//! Tuning a space with *arbitrary* nominal parameters — the paper's future
//! work, via [`MixedTuner`].
//!
//! ```sh
//! cargo run --release --example mixed_space
//! ```
//!
//! The simulated kernel has two nominal knobs (algorithm and memory
//! layout) and two numeric ones (tile size, threads). `MixedTuner` factors
//! the space automatically: each (algorithm, layout) combination becomes a
//! bandit arm with its own Nelder-Mead loop over (tile, threads).

use algochoice::autotune::prelude::*;
use algochoice::autotune::rng::Rng;

fn main() {
    let space = SearchSpace::new(vec![
        Parameter::nominal(
            "algorithm",
            vec!["scan".into(), "tree".into(), "hash".into()],
        ),
        Parameter::ratio("tile", 1, 64),
        Parameter::nominal("layout", vec!["aos".into(), "soa".into()]),
        Parameter::ratio("threads", 1, 8),
    ]);

    let mut tuner = MixedTuner::new(space, NominalKind::EpsilonGreedy(0.20), 17);
    println!(
        "factored the 4-parameter space into {} nominal arms × 2 numeric dims:",
        tuner.num_arms()
    );
    for i in 0..tuner.num_arms() {
        println!("  arm {i}: {}", tuner.arm_label(i));
    }
    println!();

    let mut noise = Rng::new(3);
    for i in 0..900 {
        let sample = tuner.step(|c| simulated_kernel(c, &mut noise));
        if i % 150 == 0 {
            println!("iter {i:4}: {:8.2} ms", sample.value);
        }
    }

    let (best, ms) = tuner.best().expect("tuned");
    println!("\nbest configuration ({ms:.2} ms):");
    println!("  algorithm = index {}", best.get(0).as_index());
    println!("  tile      = {}", best.get(1).as_i64());
    println!("  layout    = index {}", best.get(2).as_index());
    println!("  threads   = {}", best.get(3).as_i64());
    println!("  arm counts: {:?}", tuner.selection_counts());

    // The optimum planted below: hash + soa, tile 48, threads 8.
    assert_eq!(best.get(0).as_index(), 2, "hash algorithm should win");
    assert_eq!(best.get(2).as_index(), 1, "SoA layout should win");
}

/// Simulated kernel cost: hash+soa is the best family; within it the tile
/// size has an interior optimum and threads help sublinearly.
fn simulated_kernel(c: &Configuration, noise: &mut Rng) -> f64 {
    let algorithm = c.get(0).as_index();
    let tile = c.get(1).as_f64();
    let layout = c.get(2).as_index();
    let threads = c.get(3).as_f64();
    let family = match (algorithm, layout) {
        (2, 1) => 6.0,  // hash + soa
        (2, 0) => 11.0, // hash + aos
        (1, _) => 16.0, // tree
        _ => 25.0,      // scan
    };
    let tile_penalty = 0.004 * (tile - 48.0).powi(2);
    let thread_gain = 8.0 / threads.sqrt();
    (family + tile_penalty + thread_gain) * (1.0 + 0.03 * noise.next_gaussian())
}
