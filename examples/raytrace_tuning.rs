//! Case study 2 as a runnable application: a render loop whose kD-tree
//! construction algorithm *and* per-algorithm parameters are tuned online,
//! one frame at a time.
//!
//! ```sh
//! cargo run --release --example raytrace_tuning -- [frames] [detail]
//! ```
//!
//! Renders the procedural cathedral; writes the final frame to
//! `raytrace_tuning.pgm` (viewable with any image tool) so you can see
//! what the tuner was rendering.

use algochoice::autotune::prelude::*;
use algochoice::raytrace::render::{frame, RenderOptions};
use algochoice::raytrace::{all_builders, cathedral, tunable};
use std::io::Write as _;

fn main() {
    let mut args = std::env::args().skip(1);
    let frames: usize = args.next().map_or(60, |a| a.parse().expect("frames"));
    let detail: u32 = args.next().map_or(1, |a| a.parse().expect("detail"));

    println!("generating cathedral scene (detail {detail})…");
    let scene = cathedral(1, detail);
    println!("{} triangles\n", scene.triangles.len());

    let opts = RenderOptions {
        width: 160,
        height: 120,
        threads: std::thread::available_parallelism().map_or(4, |n| n.get()),
        packet_width: 1,
    };
    let builders = all_builders();
    let mut tuner = TwoPhaseTuner::new(
        tunable::algorithm_specs(),
        NominalKind::EpsilonGreedy(0.10),
        3,
    );

    let mut last_frame = None;
    for i in 0..frames {
        let (alg, config) = tuner.next();
        let name = builders[alg].name();
        let build_config = tunable::decode(name, &config);
        let result = frame(&scene, builders[alg].as_ref(), &build_config, &opts);
        tuner.report(result.total_ms());
        if i < 5 || i % 10 == 0 {
            println!(
                "frame {i:3}: {name:<12} build {:7.2} ms + render {:7.2} ms = {:8.2} ms  \
                 (depth={}, Ct={}, Ci={})",
                result.build_ms,
                result.render_ms,
                result.total_ms(),
                build_config.parallel_depth,
                build_config.sah.traversal_cost,
                build_config.sah.intersection_cost,
            );
        }
        last_frame = Some(result);
    }

    println!("\nselection counts after {frames} frames:");
    for (b, count) in builders.iter().zip(tuner.selection_counts()) {
        let bar = "#".repeat(count * 50 / frames.max(1));
        println!("  {:<12} {count:4}  {bar}", b.name());
    }
    let (alg, config, ms) = tuner.best().expect("tuned");
    println!(
        "\nbest: {} at {:?} → {:.2} ms/frame",
        builders[alg].name(),
        config.values(),
        ms
    );

    // Dump the last frame as a PGM so the output is inspectable.
    if let Some(f) = last_frame {
        let path = "raytrace_tuning.pgm";
        let mut out = Vec::with_capacity(f.pixels.len() + 64);
        write!(out, "P5\n{} {}\n255\n", f.width, f.height).unwrap();
        out.extend(f.pixels.iter().map(|&p| (p.clamp(0.0, 1.0) * 255.0) as u8));
        std::fs::write(path, out).expect("write image");
        println!("wrote {path}");
    }
}
