//! Case study 1 as a runnable application: online-autotuning the choice of
//! parallel string matching algorithm.
//!
//! ```sh
//! cargo run --release --example string_search -- [corpus_kb] [iterations]
//! ```
//!
//! Mirrors the paper's setup: the query pattern and the corpus are fixed
//! at invocation; every tuning iteration repeats the search (including the
//! matcher's pattern precomputation); the only tunable is *which* of the
//! eight algorithms to run.

use algochoice::autotune::measure::time_ms;
use algochoice::autotune::prelude::*;
use algochoice::stringmatch::{all_matchers, corpus, ParallelMatcher, PAPER_QUERY};

fn main() {
    let mut args = std::env::args().skip(1);
    let corpus_kb: usize = args.next().map_or(1024, |a| a.parse().expect("corpus_kb"));
    let iterations: usize = args.next().map_or(100, |a| a.parse().expect("iterations"));
    let threads = std::thread::available_parallelism().map_or(4, |n| n.get());

    println!("generating {corpus_kb} KiB bible-like corpus…");
    let text = corpus::bible_like_with(2017, corpus_kb << 10, 20_000);
    let query = String::from_utf8_lossy(PAPER_QUERY);
    println!("query: \"{query}\" ({} threads)\n", threads);

    let matchers = all_matchers();
    let specs: Vec<AlgorithmSpec> = matchers
        .iter()
        .map(|m| AlgorithmSpec::untunable(m.name()))
        .collect();
    let mut tuner = TwoPhaseTuner::new(specs, NominalKind::EpsilonGreedy(0.10), 1);

    let mut match_count = 0usize;
    for i in 0..iterations {
        let (alg, _config) = tuner.next();
        let (hits, ms) = time_ms(|| {
            ParallelMatcher::new(matchers[alg].as_ref(), threads).find_all(PAPER_QUERY, &text)
        });
        match_count = hits.len();
        tuner.report(ms);
        if i < 10 || i % 20 == 0 {
            println!(
                "iter {i:3}: {:<18} {ms:8.3} ms  ({match_count} matches)",
                matchers[alg].name()
            );
        }
    }

    println!("\nselection counts after {iterations} iterations:");
    for (m, count) in matchers.iter().zip(tuner.selection_counts()) {
        let bar = "#".repeat(count * 50 / iterations.max(1));
        println!("  {:<18} {count:4}  {bar}", m.name());
    }
    let best = tuner.best_algorithm().expect("tuned");
    println!(
        "\nbest algorithm: {} (best observed {:.3} ms, {match_count} matches)",
        matchers[best].name(),
        tuner.best().unwrap().2
    );
}
