//! Quickstart: online-autotune the choice among three algorithms, one of
//! which has its own tunable parameter.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```
//!
//! The "application" here is simulated: three ways to perform some task,
//! with different (noisy) cost surfaces. The tuner sees only measured
//! runtimes — exactly the online-autotuning contract of the paper.

use algochoice::autotune::prelude::*;
use algochoice::autotune::rng::Rng;

fn main() {
    // The candidate algorithms. `baseline` and `vectorized` expose no
    // tunables; `parallel` exposes a thread count (a ratio parameter).
    let specs = vec![
        AlgorithmSpec::untunable("baseline"),
        AlgorithmSpec::untunable("vectorized"),
        AlgorithmSpec::new(
            "parallel",
            SearchSpace::new(vec![Parameter::ratio("threads", 1, 16)]),
        ),
    ];

    // Phase 2: ε-Greedy. Phase 1 (inside each algorithm): Nelder-Mead.
    // 20% exploration: the paper's most explorative ε, which gives the
    // parallel algorithm's Nelder-Mead loop enough visits to tune threads.
    let mut tuner = TwoPhaseTuner::new(specs, NominalKind::EpsilonGreedy(0.20), 42);
    let mut noise = Rng::new(7);

    // The online tuning loop: the application runs its hot operation with
    // the tuner's choice and reports the measured time.
    for i in 0..400 {
        let (alg, config) = tuner.next();
        let runtime_ms = simulated_runtime(alg, &config, &mut noise);
        let sample = tuner.report(runtime_ms);
        if i % 50 == 0 {
            println!(
                "iter {:3}: ran {:<10} {:>8.2} ms  (config {:?})",
                i,
                tuner.algorithm_name(alg),
                sample.value,
                config.values()
            );
        }
    }

    let (best_alg, best_config, best_ms) = tuner.best().expect("samples exist");
    println!("\nconverged:");
    println!("  best algorithm : {}", tuner.algorithm_name(best_alg));
    println!("  best config    : {:?}", best_config.values());
    println!("  best time      : {best_ms:.2} ms");
    println!("  selections     : {:?}", tuner.selection_counts());

    assert_eq!(
        tuner.best_algorithm(),
        Some(2),
        "the parallel algorithm wins once its thread count is tuned"
    );
}

/// Simulated measurement: baseline 40 ms, vectorized 18 ms, parallel
/// 120/threads + 4 ms — so `parallel` only wins once the tuner pushes the
/// thread count up.
fn simulated_runtime(alg: usize, config: &Configuration, noise: &mut Rng) -> f64 {
    let base = match alg {
        0 => 40.0,
        1 => 18.0,
        _ => {
            let threads = config.get(0).as_f64();
            120.0 / threads + 4.0
        }
    };
    base * (1.0 + 0.02 * noise.next_gaussian())
}
