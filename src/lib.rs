//! # algochoice — umbrella crate
//!
//! Re-exports the three building blocks of the reproduction of
//! *"Online-Autotuning in the Presence of Algorithmic Choice"* (Pfaffe et
//! al., IPDPSW 2017) so examples and integration tests can use a single
//! dependency:
//!
//! * [`autotune`] — the tuning framework (the paper's contribution),
//! * [`stringmatch`] — case study 1's parallel string matching substrate,
//! * [`raytrace`] — case study 2's SAH kD-tree raytracing substrate.

pub use autotune;
pub use raytrace;
pub use stringmatch;
