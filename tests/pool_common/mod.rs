//! Shared body for the pool worker-count integration tests.
//!
//! Each `pool_workers_*.rs` target is its own process: it pins the global
//! pool's worker count via `AUTOTUNE_POOL_WORKERS` *before* first use, then
//! checks that both case-study substrates produce output bit-identical to
//! the sequential path. One process per worker count, because the global
//! pool is created once and lives for the rest of the process.

use algochoice::raytrace::kdtree::{all_builders, BruteForce};
use algochoice::raytrace::render::{render, RenderOptions};
use algochoice::raytrace::scene::cathedral;
use algochoice::stringmatch::{naive, Kmp, ParallelMatcher};

/// Pin the global pool and verify sequential-equivalence of both kernels.
pub fn check_with_workers(workers: usize) {
    // Must run before anything touches Pool::global(); each test binary
    // holds exactly one test, so there is no racing first use.
    std::env::set_var("AUTOTUNE_POOL_WORKERS", workers.to_string());
    assert_eq!(
        algochoice::autotune::pool::Pool::global().workers(),
        workers
    );

    // String matching: pooled partitions vs the sequential reference.
    let mut text = Vec::new();
    for i in 0..600u32 {
        text.extend_from_slice(b"in the beginning was the word ");
        if i % 41 == 0 {
            text.extend_from_slice(b"and the word was with ");
        }
    }
    let expected = naive::find_all(b"the word", &text);
    assert!(!expected.is_empty());
    for threads in [1, 2, 3, 8, 16] {
        let pm = ParallelMatcher::new(&Kmp, threads);
        assert_eq!(
            pm.find_all(b"the word", &text),
            expected,
            "workers={workers} threads={threads}"
        );
    }

    // Rendering: pooled row batches vs the sequential inline path, plus a
    // brute-force cross-check that the kd-trees built through the pool are
    // geometrically right.
    let scene = cathedral(7, 1);
    let opts = |threads| RenderOptions {
        width: 40,
        height: 30,
        threads,
        packet_width: 1,
    };
    let reference = render(&scene, &BruteForce, &opts(1));
    for threads in [2, 8] {
        assert_eq!(
            reference,
            render(&scene, &BruteForce, &opts(threads)),
            "workers={workers} threads={threads}"
        );
    }
    for b in all_builders() {
        let accel = b.build(&scene.triangles, &Default::default());
        let img = render(&scene, accel.as_ref(), &opts(8));
        let diff: f32 = reference
            .iter()
            .zip(&img)
            .map(|(a, b)| (a - b).abs())
            .sum::<f32>()
            / img.len() as f32;
        assert!(diff < 0.01, "workers={workers} builder={}", b.name());
    }
}
