//! Global pool pinned to 1 worker: output must be bit-identical to the
//! sequential path for both case-study substrates.

#[path = "pool_common/mod.rs"]
mod pool_common;

#[test]
fn one_worker_equals_sequential() {
    pool_common::check_with_workers(1);
}
