//! Global pool pinned to 2 workers: scheduling must not affect output.

#[path = "pool_common/mod.rs"]
mod pool_common;

#[test]
fn two_workers_equal_sequential() {
    pool_common::check_with_workers(2);
}
