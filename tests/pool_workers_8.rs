//! Global pool pinned to 8 workers: scheduling must not affect output.

#[path = "pool_common/mod.rs"]
mod pool_common;

#[test]
fn eight_workers_equal_sequential() {
    pool_common::check_with_workers(8);
}
