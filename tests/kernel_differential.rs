//! Differential tests for the vectorized kernel layer: every SWAR/SIMD
//! matcher variant must return *bit-identical* match sets to the naive
//! oracle — including occurrences straddling vector-block and parallel-
//! partition boundaries — and packet rendering must produce bit-identical
//! images to the single-ray path at every width.

use algochoice::autotune::rng::Rng;
use algochoice::raytrace::render::{render, RenderOptions};
use algochoice::raytrace::{all_builders, cathedral, forest};
use algochoice::stringmatch::scan::Kernel;
use algochoice::stringmatch::{
    corpus, naive, BoyerMooreSimd, Hash3Simd, HorspoolSimd, HybridSimd, Matcher, ParallelMatcher,
    PAPER_QUERY,
};

/// Every vectorized matcher pinned to every kernel the host can run.
fn vectorized_matchers() -> Vec<Box<dyn Matcher>> {
    let mut ms: Vec<Box<dyn Matcher>> = Vec::new();
    for k in Kernel::all_available() {
        ms.push(Box::new(HorspoolSimd::with_kernel(k)));
        ms.push(Box::new(BoyerMooreSimd::with_kernel(k)));
        ms.push(Box::new(Hash3Simd::with_kernel(k)));
        ms.push(Box::new(HybridSimd::with_kernel(k)));
    }
    ms
}

#[test]
fn vectorized_matchers_match_naive_on_random_corpora() {
    // Seeded random corpora over alphabets of very different densities:
    // a binary alphabet maximizes candidate density (every scan block
    // fires), natural text minimizes it.
    for seed in [1u64, 2, 3] {
        let dense: Vec<u8> = {
            let mut rng = Rng::new(seed);
            (0..4096).map(|_| b"ab"[rng.pick_index(2)]).collect()
        };
        let text = corpus::bible_like_with(seed, 32 << 10, 1_000);
        for m in vectorized_matchers() {
            for pat_len in [1usize, 2, 3, 4, 7, 8, 9, 16, 31, 32, 39, 64] {
                // Sample the pattern from the corpus so matches exist.
                let start = (seed as usize * 131) % (text.len() - pat_len);
                let pat = &text[start..start + pat_len];
                assert_eq!(
                    m.find_all(pat, &text),
                    naive::find_all(pat, &text),
                    "{} len={pat_len} seed={seed}",
                    m.name()
                );
                let dstart = (seed as usize * 37) % (dense.len() - pat_len);
                let dpat = &dense[dstart..dstart + pat_len];
                assert_eq!(
                    m.find_all(dpat, &dense),
                    naive::find_all(dpat, &dense),
                    "{} dense len={pat_len} seed={seed}",
                    m.name()
                );
            }
        }
    }
}

#[test]
fn vectorized_matchers_handle_block_boundary_straddlers() {
    // Occurrences planted so they straddle every vector-block edge the
    // kernels use (8 for SWAR, 16 for SSE2, 32 for AVX2) and both text
    // ends, where the scanner hands over to its scalar tail.
    let pat = b"straddle!";
    let m = pat.len();
    let mut text = vec![b'_'; 512];
    // Non-overlapping plants, each crossing one of the 8/16/32-byte block
    // edges (or flush with a text end).
    let plants = [
        0usize, 12, 27, 40, 60, 75, 90, 123, 140, 155, 250, 264, 380, 503,
    ];
    for &pos in &plants {
        text[pos..pos + m].copy_from_slice(pat);
    }
    let expected = naive::find_all(pat, &text);
    assert_eq!(expected, plants.to_vec(), "plants must not overlap");
    for matcher in vectorized_matchers() {
        assert_eq!(matcher.find_all(pat, &text), expected, "{}", matcher.name());
    }
}

#[test]
fn vectorized_matchers_agree_under_parallel_partitioning() {
    // The parallel wrapper splits the text into overlapping partitions;
    // with many threads on a small corpus the query phrase straddles
    // partition boundaries. The vectorized matchers must behave exactly
    // like scalar ones inside each partition.
    let text = corpus::bible_like_with(29, 96 << 10, 1_500);
    let expected = naive::find_all(PAPER_QUERY, &text);
    assert!(!expected.is_empty());
    for m in vectorized_matchers() {
        for threads in [2usize, 3, 8, 17] {
            let pm = ParallelMatcher::new(m.as_ref(), threads);
            assert_eq!(
                pm.find_all(PAPER_QUERY, &text),
                expected,
                "{} × {threads} threads",
                m.name()
            );
        }
    }
}

#[test]
fn packet_rendering_is_bit_identical_across_widths() {
    // Packet width is a tuning parameter, so the tuner will flip it
    // mid-run: the image must not change by a single bit, for every
    // builder, on both an enclosed and an open scene.
    for scene in [cathedral(9, 1), forest(9, 1)] {
        for b in all_builders() {
            let accel = b.build(&scene.triangles, &Default::default());
            let base = RenderOptions {
                width: 56,
                height: 40,
                threads: 2,
                packet_width: 1,
            };
            let reference = render(&scene, accel.as_ref(), &base);
            for packet_width in [2usize, 4] {
                let img = render(
                    &scene,
                    accel.as_ref(),
                    &RenderOptions {
                        packet_width,
                        ..base
                    },
                );
                assert!(
                    reference
                        .iter()
                        .zip(&img)
                        .all(|(a, b)| a.to_bits() == b.to_bits()),
                    "{} packet_width={packet_width}",
                    b.name()
                );
            }
        }
    }
}
