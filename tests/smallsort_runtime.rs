//! The smallsort context dimension under the multi-site runtime:
//!
//! 1. **Bucketing properties** — `size_class` is total (every `n`,
//!    including 0 and `usize::MAX`, maps to exactly one class in range),
//!    stable (a pure function of `n`), monotone, and splits exactly at
//!    powers of two (`2^k` and `2^k + 1` land in adjacent classes).
//! 2. **Exact per-key call accounting under 8-thread stress** — like
//!    `tests/site_runtime.rs`, but across the whole [`SortSites`] context
//!    table: concurrent sort requests of mixed sizes *and mixed
//!    presortedness* must be counted exactly once at exactly the key
//!    their `(size class, presort class)` pair owns, with every completed
//!    call either a tuning iteration or a contended exploit. The presort
//!    class is a pure function of the data, so the test regenerates the
//!    per-thread input streams afterward to replay the exact dispatch
//!    schedule.

use autotune::rng::Rng;
use autotune::two_phase::NominalKind;
use smallsort::{
    nearly_sorted_input, size_class, sort_request_keyed, SortKey, SortSites, MAX_CLASS_LOG2,
    MIN_CLASS_LOG2,
};

#[test]
fn size_class_is_total_and_in_range() {
    let mut rng = Rng::new(0x517E);
    let exhaustive = 0..=(1usize << 16);
    let random = (0..10_000).map(|_| rng.next_u64() as usize);
    for n in exhaustive.chain(random).chain([0, 1, usize::MAX]) {
        let c = size_class(n);
        assert!(
            (MIN_CLASS_LOG2..=MAX_CLASS_LOG2).contains(&c),
            "n={n} escaped the class range: {c}"
        );
    }
}

#[test]
fn size_class_is_stable_and_monotone() {
    let mut prev = size_class(0);
    for n in 1..=(1usize << 15) {
        let c = size_class(n);
        assert_eq!(c, size_class(n), "same n must always bucket identically");
        assert!(c >= prev, "bucketing must be monotone in n ({n})");
        assert!(c - prev <= 1, "no class may be skipped walking n upward");
        prev = c;
    }
}

#[test]
fn size_class_boundaries_land_in_adjacent_classes() {
    for k in MIN_CLASS_LOG2..MAX_CLASS_LOG2 {
        assert_eq!(size_class(1usize << k), k, "2^{k} caps class {k}");
        assert_eq!(
            size_class((1usize << k) + 1),
            k + 1,
            "2^{k}+1 opens class {}",
            k + 1
        );
    }
    // Everything past the top boundary shares the top class.
    assert_eq!(size_class((1usize << MAX_CLASS_LOG2) + 1), MAX_CLASS_LOG2);
    assert_eq!(size_class(usize::MAX), MAX_CLASS_LOG2);
}

/// One thread's deterministic input stream: mixed sizes (both boundary
/// shapes of every class), alternating random and nearly-sorted shapes.
/// A pure function of `(thread, iteration)`, so the accounting pass can
/// regenerate the exact same inputs — and therefore the exact same
/// [`SortKey`] schedule — the worker threads dispatched.
fn stress_input(sizes: &[usize], t: usize, i: usize) -> Vec<u64> {
    // Phase-shift per thread so threads collide on the same key often.
    let n = sizes[(i + t * 3) % sizes.len()];
    let mut rng = Rng::new(0x5EED_0000 + (t * 1_000 + i) as u64);
    if i.is_multiple_of(3) {
        nearly_sorted_input(n, &mut rng)
    } else {
        (0..n).map(|_| rng.next_u64()).collect()
    }
}

#[test]
fn stress_exact_per_key_accounting_across_eight_threads() {
    const THREADS: usize = 8;
    const ITERS: usize = 150;
    // A request size in every class, hitting both boundary shapes: the
    // class's cap 2^c and its opening size 2^(c-1) + 1.
    let sizes: Vec<usize> = (MIN_CLASS_LOG2..=MAX_CLASS_LOG2)
        .flat_map(|c| [1usize << c, (1usize << (c - 1)) + 1])
        .collect();
    let sites = SortSites::register("stress", NominalKind::EpsilonGreedy(0.10), 4242);

    std::thread::scope(|scope| {
        for t in 0..THREADS {
            let sizes = &sizes;
            let sites = &sites;
            scope.spawn(move || {
                for i in 0..ITERS {
                    let mut data = stress_input(sizes, t, i);
                    let want_key = SortKey::of(&data);
                    let (key, _ms) = sort_request_keyed(sites, &mut data);
                    assert_eq!(key, want_key);
                    assert_eq!(key.class, size_class(data.len()));
                    assert!(data.windows(2).all(|w| w[0] <= w[1]), "unsorted output");
                }
            });
        }
    });

    // Replay the input streams to rebuild the exact dispatch schedule
    // and hold every context key to it.
    let mut per_key = std::collections::HashMap::new();
    for t in 0..THREADS {
        for i in 0..ITERS {
            *per_key
                .entry(SortKey::of(&stress_input(&sizes, t, i)))
                .or_insert(0u64) += 1;
        }
    }
    assert!(
        per_key
            .keys()
            .map(|k| k.presort)
            .collect::<std::collections::HashSet<_>>()
            .len()
            > 1,
        "stress stream must exercise more than one presort class"
    );
    let mut total = 0;
    for (key, want) in &per_key {
        let stats = sites
            .table()
            .key_stats(key)
            .unwrap_or_else(|| panic!("key {key:?} was dispatched but never admitted"));
        assert_eq!(
            stats.calls, *want,
            "key {key:?} must count exactly its own dispatches"
        );
        let s = sites.key_site(*key);
        assert!(
            stats.tuned_iterations > 0,
            "key {key:?}: at least one tuning iteration ran"
        );
        assert_eq!(
            s.tuned_iterations() + s.contended(),
            s.calls(),
            "key {key:?}: every call is tuned or contended"
        );
        total += stats.calls;
    }
    assert_eq!(
        total,
        (THREADS * ITERS) as u64,
        "no call lost or duplicated"
    );
    // Full-coverage table: every key stayed resident, nothing was evicted.
    assert_eq!(sites.table().stats().evictions, 0);
    assert_eq!(sites.table().resident_len(), per_key.len());
}
