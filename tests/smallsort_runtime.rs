//! The smallsort context dimension under the multi-site runtime:
//!
//! 1. **Bucketing properties** — `size_class` is total (every `n`,
//!    including 0 and `usize::MAX`, maps to exactly one class in range),
//!    stable (a pure function of `n`), monotone, and splits exactly at
//!    powers of two (`2^k` and `2^k + 1` land in adjacent classes).
//! 2. **Exact per-class call accounting under 8-thread stress** — like
//!    `tests/site_runtime.rs`, but across the whole [`SortSites`] table:
//!    concurrent sort requests of mixed sizes must be counted exactly
//!    once at exactly the site their size class owns, with every
//!    completed call either a tuning iteration or a contended exploit.

use autotune::rng::Rng;
use autotune::two_phase::NominalKind;
use smallsort::{size_class, sort_request, SortSites, MAX_CLASS_LOG2, MIN_CLASS_LOG2};

#[test]
fn size_class_is_total_and_in_range() {
    let mut rng = Rng::new(0x517E);
    let exhaustive = 0..=(1usize << 16);
    let random = (0..10_000).map(|_| rng.next_u64() as usize);
    for n in exhaustive.chain(random).chain([0, 1, usize::MAX]) {
        let c = size_class(n);
        assert!(
            (MIN_CLASS_LOG2..=MAX_CLASS_LOG2).contains(&c),
            "n={n} escaped the class range: {c}"
        );
    }
}

#[test]
fn size_class_is_stable_and_monotone() {
    let mut prev = size_class(0);
    for n in 1..=(1usize << 15) {
        let c = size_class(n);
        assert_eq!(c, size_class(n), "same n must always bucket identically");
        assert!(c >= prev, "bucketing must be monotone in n ({n})");
        assert!(c - prev <= 1, "no class may be skipped walking n upward");
        prev = c;
    }
}

#[test]
fn size_class_boundaries_land_in_adjacent_classes() {
    for k in MIN_CLASS_LOG2..MAX_CLASS_LOG2 {
        assert_eq!(size_class(1usize << k), k, "2^{k} caps class {k}");
        assert_eq!(
            size_class((1usize << k) + 1),
            k + 1,
            "2^{k}+1 opens class {}",
            k + 1
        );
    }
    // Everything past the top boundary shares the top class.
    assert_eq!(size_class((1usize << MAX_CLASS_LOG2) + 1), MAX_CLASS_LOG2);
    assert_eq!(size_class(usize::MAX), MAX_CLASS_LOG2);
}

#[test]
fn stress_exact_per_class_accounting_across_eight_threads() {
    const THREADS: usize = 8;
    const ITERS: usize = 150;
    // A request size in every class, hitting both boundary shapes: the
    // class's cap 2^c and its opening size 2^(c-1) + 1.
    let sizes: Vec<usize> = (MIN_CLASS_LOG2..=MAX_CLASS_LOG2)
        .flat_map(|c| [1usize << c, (1usize << (c - 1)) + 1])
        .collect();
    let sites = SortSites::register("stress", NominalKind::EpsilonGreedy(0.10), 4242);

    std::thread::scope(|scope| {
        for t in 0..THREADS {
            let sizes = &sizes;
            let sites = &sites;
            scope.spawn(move || {
                let mut rng = Rng::new(9000 + t as u64);
                for i in 0..ITERS {
                    // Phase-shift per thread so threads collide on the
                    // same class site often.
                    let n = sizes[(i + t * 3) % sizes.len()];
                    let mut data: Vec<u64> = (0..n).map(|_| rng.next_u64()).collect();
                    let (class, _ms) = sort_request(sites, &mut data);
                    assert_eq!(class, size_class(n));
                    assert!(data.windows(2).all(|w| w[0] <= w[1]), "unsorted output");
                }
            });
        }
    });

    // Rebuild the exact dispatch schedule and hold every class site to it.
    let mut per_class = std::collections::HashMap::new();
    for t in 0..THREADS {
        for i in 0..ITERS {
            let n = sizes[(i + t * 3) % sizes.len()];
            *per_class.entry(size_class(n)).or_insert(0u64) += 1;
        }
    }
    let mut total = 0;
    for class in MIN_CLASS_LOG2..=MAX_CLASS_LOG2 {
        let s = sites.class_site(class);
        let want = per_class.get(&class).copied().unwrap_or(0);
        assert_eq!(
            s.calls(),
            want,
            "class {class} site must count exactly its own dispatches"
        );
        assert_eq!(
            s.tuned_iterations() + s.contended(),
            want,
            "class {class}: every call is tuned or contended"
        );
        assert!(
            s.tuned_iterations() > 0,
            "class {class}: at least one tuning iteration ran"
        );
        total += s.calls();
    }
    assert_eq!(
        total,
        (THREADS * ITERS) as u64,
        "no call lost or duplicated"
    );
}
