//! Integration: the full case-study-1 stack — autotuner over the real
//! parallel string matchers on a generated corpus.

use algochoice::autotune::measure::time_ms;
use algochoice::autotune::prelude::*;
use algochoice::stringmatch::{all_matchers, corpus, naive, ParallelMatcher, PAPER_QUERY};

fn small_corpus() -> Vec<u8> {
    corpus::bible_like_with(11, 128 << 10, 3_000)
}

#[test]
fn every_matcher_finds_the_query_phrase_in_the_corpus() {
    let text = small_corpus();
    let expected = naive::find_all(PAPER_QUERY, &text);
    assert!(!expected.is_empty(), "corpus must embed the phrase");
    for m in all_matchers() {
        assert_eq!(
            m.find_all(PAPER_QUERY, &text),
            expected,
            "{} disagrees with the reference",
            m.name()
        );
    }
}

#[test]
fn parallel_matchers_agree_with_sequential_on_the_corpus() {
    let text = small_corpus();
    let expected = naive::find_all(PAPER_QUERY, &text);
    for m in all_matchers() {
        for threads in [2, 5] {
            let pm = ParallelMatcher::new(m.as_ref(), threads);
            assert_eq!(
                pm.find_all(PAPER_QUERY, &text),
                expected,
                "{} × {threads} threads",
                m.name()
            );
        }
    }
}

#[test]
fn online_tuner_converges_onto_a_correct_fast_matcher() {
    let text = small_corpus();
    let matchers = all_matchers();
    let specs: Vec<AlgorithmSpec> = matchers
        .iter()
        .map(|m| AlgorithmSpec::untunable(m.name()))
        .collect();
    let mut tuner = TwoPhaseTuner::new(specs, NominalKind::EpsilonGreedy(0.10), 5);
    for _ in 0..80 {
        let (alg, _) = tuner.next();
        let (hits, ms) = time_ms(|| matchers[alg].find_all(PAPER_QUERY, &text));
        assert!(!hits.is_empty());
        tuner.report(ms);
    }
    let best = tuner.best_algorithm().expect("tuned");
    // The slow group (Boyer-Moore, KMP, ShiftOr — indices 0, 5, 6) is an
    // order of magnitude slower on this workload and must not win.
    assert!(
        ![0usize, 5, 6].contains(&best),
        "converged to slow algorithm {}",
        matchers[best].name()
    );
    // Exploitation dominates: the winner has the majority of selections.
    let counts = tuner.selection_counts();
    assert!(counts[best] > 40, "counts: {counts:?}");
}

#[test]
fn all_six_strategies_run_the_real_workload_without_starving_any_algorithm() {
    let text = corpus::bible_like_with(13, 32 << 10, 1_500);
    let matchers = all_matchers();
    let specs: Vec<AlgorithmSpec> = matchers
        .iter()
        .map(|m| AlgorithmSpec::untunable(m.name()))
        .collect();
    for kind in NominalKind::paper_set() {
        let mut tuner = TwoPhaseTuner::new(specs.clone(), kind, 17);
        for _ in 0..64 {
            let (alg, _) = tuner.next();
            let (_, ms) = time_ms(|| matchers[alg].find_all(PAPER_QUERY, &text));
            tuner.report(ms);
        }
        let counts = tuner.selection_counts();
        assert_eq!(
            counts.iter().sum::<usize>(),
            64,
            "{}",
            tuner.strategy_name()
        );
        // "We never exclude an algorithm": everything was tried at least
        // once within the first 64 iterations for every paper strategy.
        assert!(
            counts.iter().all(|&c| c > 0),
            "{} starved an algorithm: {counts:?}",
            tuner.strategy_name()
        );
    }
}

#[test]
fn tuning_different_queries_can_prefer_different_algorithms() {
    // Sanity check of the premise of algorithmic choice: the best matcher
    // depends on the input (here, pattern length regimes exist at all).
    let text = small_corpus();
    let short = b"the";
    let long = PAPER_QUERY;
    for m in all_matchers() {
        // Every matcher must stay correct across both regimes …
        assert_eq!(
            m.find_all(short, &text),
            naive::find_all(short, &text),
            "{} short",
            m.name()
        );
        assert_eq!(
            m.find_all(long, &text),
            naive::find_all(long, &text),
            "{} long",
            m.name()
        );
    }
}
