//! Integration tests for the concurrent multi-site runtime
//! (`autotune::site`):
//!
//! 1. **Single-thread equivalence** — a site driven from one thread is
//!    *bit-identical* to driving the underlying tuner directly with the
//!    same seeds: every claim CAS succeeds, so the site adds dispatch and
//!    publication but no behavioral difference. Both the two-phase and the
//!    single-space tuner flavors are checked sample-by-sample.
//! 2. **Multi-thread stress** — counters never lose updates, every
//!    completed call is either a tuned iteration or an exploit call, and
//!    the tuner's log length equals the tuned-iteration count exactly
//!    (the claim discipline keeps the ask/tell protocol serialized).
//! 3. **Seqlock validity under fire** — concurrent exploit readers only
//!    ever observe configurations inside the search space while a writer
//!    publishes continuously.

use autotune::param::Parameter;
use autotune::robust::MeasureOutcome;
use autotune::site::{register, site, SiteSpec};
use autotune::space::{Configuration, SearchSpace};
use autotune::tuner::{OnlineTuner, Termination};
use autotune::two_phase::{AlgorithmSpec, NominalKind, Phase1Kind, TwoPhaseTuner};

fn specs() -> Vec<AlgorithmSpec> {
    vec![
        AlgorithmSpec::untunable("plain"),
        AlgorithmSpec::new(
            "tuned-a",
            SearchSpace::new(vec![
                Parameter::ratio("threads", 1, 8),
                Parameter::interval("cutoff", -20, 20),
            ]),
        ),
        AlgorithmSpec::new(
            "tuned-b",
            SearchSpace::new(vec![Parameter::interval("x", -30, 30)]),
        ),
    ]
}

/// Deterministic synthetic cost: depends on the algorithm and every
/// configuration value, so any divergence in either phase shows up.
fn cost(algorithm: usize, config: &Configuration) -> f64 {
    let base = [12.0, 9.0, 10.0][algorithm];
    let shape: f64 = config
        .values()
        .iter()
        .enumerate()
        .map(|(i, v)| (v.as_f64() - [3.0, -7.0][i.min(1)]).abs() * 0.25)
        .sum();
    base + shape
}

#[test]
fn single_thread_two_phase_equivalence() {
    const SEED: u64 = 0x5EED;
    const ITERS: usize = 250;

    let mut direct = TwoPhaseTuner::with_phase1(
        specs(),
        NominalKind::EpsilonGreedy(0.10),
        Phase1Kind::NelderMead,
        SEED,
    );
    for _ in 0..ITERS {
        let (alg, config) = direct.next();
        let v = cost(alg, &config);
        direct.report_outcome(MeasureOutcome::Ok(v));
    }

    let s = site(register(SiteSpec::algorithms(
        "equiv-two-phase",
        specs(),
        NominalKind::EpsilonGreedy(0.10),
        SEED,
    )));
    for _ in 0..ITERS {
        let guard = s.pre();
        assert!(guard.is_tuning(), "single-threaded claims always win");
        let v = cost(guard.algorithm(), guard.config());
        guard.post_outcome(MeasureOutcome::Ok(v));
    }

    s.with_tuner(|t| {
        let site_log = t.as_two_phase().unwrap().log();
        assert_eq!(site_log.len(), ITERS);
        assert_eq!(
            site_log,
            direct.log(),
            "site dispatch must be bit-identical to the direct tuner"
        );
    });
}

#[test]
fn single_thread_single_space_equivalence() {
    const SEED: u64 = 77;
    const ITERS: usize = 150;
    let space = SearchSpace::new(vec![
        Parameter::ratio("a", 0, 40),
        Parameter::interval("b", -15, 15),
    ]);

    let searcher = Phase1Kind::NelderMead.build(&AlgorithmSpec::new("equiv", space.clone()), SEED);
    let mut direct = OnlineTuner::new(searcher, Termination::Never);
    for _ in 0..ITERS {
        let config = direct.ask();
        let v = cost(1, &config);
        direct.tell_outcome(MeasureOutcome::Ok(v));
    }

    let s = site(register(SiteSpec::space("equiv-space", space, SEED)));
    for _ in 0..ITERS {
        let guard = s.pre();
        assert_eq!(guard.algorithm(), 0, "single-space sites have one arm");
        let v = cost(1, guard.config());
        guard.post_outcome(MeasureOutcome::Ok(v));
    }

    s.with_tuner(|t| {
        let site_log = t.as_single().unwrap().log();
        assert_eq!(site_log.len(), ITERS);
        assert_eq!(site_log, direct.log());
    });
}

#[test]
fn stress_no_lost_updates_across_eight_threads() {
    const THREADS: usize = 8;
    const SITES: usize = 32;
    const CALLS_PER_THREAD_PER_SITE: usize = 50;

    let sites: Vec<_> = (0..SITES)
        .map(|i| {
            site(register(SiteSpec::algorithms(
                format!("stress-{i}"),
                specs(),
                NominalKind::EpsilonGreedy(0.10),
                1000 + i as u64,
            )))
        })
        .collect();

    std::thread::scope(|scope| {
        for t in 0..THREADS {
            let sites = &sites;
            scope.spawn(move || {
                for round in 0..CALLS_PER_THREAD_PER_SITE {
                    for k in 0..SITES {
                        // Phase-shift per thread so threads collide on
                        // different sites at different times.
                        let i = (k + t * SITES / THREADS) % SITES;
                        sites[i].tuned(|alg, config| {
                            std::hint::black_box(cost(alg, config));
                            std::hint::black_box(round);
                        });
                    }
                }
            });
        }
    });

    let expected_per_site = (THREADS * CALLS_PER_THREAD_PER_SITE) as u64;
    for (i, s) in sites.iter().enumerate() {
        assert_eq!(
            s.calls(),
            expected_per_site,
            "site {i}: lost or duplicated call counts"
        );
        let tuned = s.tuned_iterations();
        assert_eq!(
            tuned + s.contended(),
            expected_per_site,
            "site {i}: every call is tuned or contended"
        );
        assert!(tuned > 0, "site {i}: at least one tuning iteration ran");
        s.with_tuner(|t| {
            assert_eq!(
                t.as_two_phase().unwrap().log().len() as u64,
                tuned,
                "site {i}: tuner log must match the tuned-iteration count"
            );
        });
    }
}

#[test]
fn exploit_readers_only_see_valid_configurations() {
    const READERS: usize = 4;
    const WRITER_ITERS: usize = 400;
    let space = SearchSpace::new(vec![
        Parameter::ratio("p", 0, 100),
        Parameter::interval("q", -50, 50),
        Parameter::interval("r", 1, 9),
    ]);
    let s = site(register(SiteSpec::space("seqlock-fire", space.clone(), 5)));

    let stop = std::sync::atomic::AtomicBool::new(false);
    std::thread::scope(|scope| {
        for _ in 0..READERS {
            let space = &space;
            let stop = &stop;
            scope.spawn(move || {
                while !stop.load(std::sync::atomic::Ordering::Relaxed) {
                    let guard = s.pre();
                    if !guard.is_tuning() {
                        assert!(
                            space.contains(guard.config()),
                            "torn or invalid published configuration: {:?}",
                            guard.config()
                        );
                    }
                    guard.post();
                }
            });
        }
        // Writer: continuously runs tuning iterations, each of which
        // republishes the exploit decision through the seqlock.
        for _ in 0..WRITER_ITERS {
            let guard = s.pre();
            if guard.is_tuning() {
                let v = cost(1, guard.config());
                guard.post_outcome(MeasureOutcome::Ok(v));
            } else {
                guard.post();
            }
        }
        stop.store(true, std::sync::atomic::Ordering::Relaxed);
    });
    assert!(s.calls() >= WRITER_ITERS as u64);
}
