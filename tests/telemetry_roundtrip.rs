//! Integration tests for the telemetry layer: the JSONL schema must be a
//! lossless encoding of the event model (property-tested over randomized
//! events), the ring must overwrite rather than grow, and a real tuning
//! run must survive the full record → export → parse → summarize cycle.

use autotune::rng::Rng;
use autotune::telemetry::export::{
    chrome_trace, parse_jsonl, parse_run_log, to_jsonl, write_run_log, RunMeta,
};
use autotune::telemetry::ring::EventRing;
use autotune::telemetry::{
    Event, EventKind, MeasureStatus, Recorder, SimplexOp, SpanKind, WeightSet,
};

/// Draw one arbitrary event. Weights use a dyadic grid so the f64 → f32
/// → JSON → f32 journey is exact by construction, as the schema promises.
fn arbitrary_event(rng: &mut Rng) -> Event {
    let t_us = rng.next_below(1 << 40);
    // Half the events are tagged with a site id (the multi-site runtime's
    // stamp), half are untagged — both forms must round-trip.
    let site = if rng.next_bool(0.5) {
        rng.next_below(8192) as u16
    } else {
        autotune::telemetry::NO_SITE
    };
    // Likewise for the context tag (the context layer's stamp): tagged
    // and untagged events must both round-trip, independently of `site`.
    let context = if rng.next_bool(0.5) {
        rng.next_below(1 << 20) as u32
    } else {
        autotune::telemetry::NO_CONTEXT
    };
    let algorithm = rng.next_below(16) as u16;
    let kind = match rng.next_below(9) {
        0 => EventKind::IterationStart {
            iteration: rng.next_below(1 << 32),
        },
        1 => {
            let n = rng.pick_index(17);
            let weights: Vec<f64> = (0..n)
                .map(|_| rng.next_below(1 << 20) as f64 / 1024.0)
                .collect();
            EventKind::AlgorithmSelected {
                algorithm,
                weights: WeightSet::from_slice(&weights),
            }
        }
        2 => {
            let ops = [
                SimplexOp::Init,
                SimplexOp::Reflect,
                SimplexOp::Expand,
                SimplexOp::ContractOutside,
                SimplexOp::ContractInside,
                SimplexOp::Shrink,
                SimplexOp::Exploit,
            ];
            EventKind::Phase1Step {
                op: ops[rng.pick_index(ops.len())],
            }
        }
        3 => {
            let statuses = [
                MeasureStatus::Ok,
                MeasureStatus::Failed,
                MeasureStatus::TimedOut,
            ];
            EventKind::MeasureOutcome {
                algorithm,
                status: statuses[rng.pick_index(statuses.len())],
                runtime_ms: rng.next_below(1 << 50) as f64 / 1024.0,
            }
        }
        4 => EventKind::PenaltyApplied {
            algorithm,
            penalty_ms: rng.next_below(1 << 50) as f64 / 1024.0,
        },
        5 => EventKind::WindowEvicted {
            algorithm,
            evicted_sample: rng.next_below(1 << 32),
        },
        6 => EventKind::SpanBegin {
            span: if rng.next_bool(0.5) {
                SpanKind::Search
            } else {
                SpanKind::Frame
            },
        },
        7 => EventKind::SpanEnd {
            span: if rng.next_bool(0.5) {
                SpanKind::Search
            } else {
                SpanKind::Frame
            },
        },
        _ => EventKind::QueueDepth {
            depth: rng.next_below(1 << 20) as u32,
            workers: rng.next_below(256) as u32,
        },
    };
    Event {
        t_us,
        site,
        context,
        kind,
    }
}

#[test]
fn jsonl_round_trip_property() {
    let mut rng = Rng::new(0xDEC0DE);
    for trial in 0..200 {
        let events: Vec<Event> = (0..rng.pick_index(64))
            .map(|_| arbitrary_event(&mut rng))
            .collect();
        let text = to_jsonl(&events);
        let parsed = parse_jsonl(&text)
            .unwrap_or_else(|e| panic!("trial {trial}: failed to parse own output: {e:?}\n{text}"));
        assert_eq!(parsed, events, "trial {trial} round-trip mismatch");
    }
}

#[test]
fn run_log_round_trip_preserves_meta_and_order() {
    let mut rng = Rng::new(0xBEEF);
    let events: Vec<Event> = (0..100).map(|_| arbitrary_event(&mut rng)).collect();
    let meta = RunMeta {
        case_study: "cs1".into(),
        strategy: "e-greedy(10%)".into(),
        algorithms: vec!["Boyer-Moore".into(), "KMP".into()],
        iterations: 100,
    };
    let text = write_run_log(&meta, &events);
    let log = parse_run_log(&text).unwrap();
    assert_eq!(log.meta.as_ref(), Some(&meta));
    assert_eq!(log.events, events);
}

#[test]
fn ring_overwrites_oldest_without_reallocating() {
    let mut ring = EventRing::with_capacity(128);
    let base = ring.as_ptr();
    for i in 0..10_000u64 {
        ring.push(Event::untagged(
            i,
            EventKind::IterationStart { iteration: i },
        ));
    }
    assert_eq!(ring.as_ptr(), base, "ring storage moved");
    assert_eq!(ring.len(), 128);
    assert_eq!(ring.overwritten(), 10_000 - 128);
    let events = ring.to_vec();
    // Oldest-first iteration over exactly the newest `capacity` events.
    let timestamps: Vec<u64> = events.iter().map(|e| e.t_us).collect();
    let expected: Vec<u64> = (10_000 - 128..10_000).collect();
    assert_eq!(timestamps, expected);
}

#[test]
fn recorded_tuning_run_survives_export_parse_cycle() {
    use autotune::two_phase::{AlgorithmSpec, NominalKind, TwoPhaseTuner};

    // A standalone recorder mirrors what the global one stores, without
    // competing with other tests for the process-global switch.
    let recorder = Recorder::new(4096);
    let specs = vec![
        AlgorithmSpec::untunable("fast"),
        AlgorithmSpec::untunable("slow"),
    ];
    let mut tuner = TwoPhaseTuner::new(specs, NominalKind::EpsilonGreedy(0.10), 9);
    for i in 0..50u64 {
        let (alg, _config) = tuner.next();
        recorder.record(EventKind::IterationStart { iteration: i });
        recorder.record(EventKind::AlgorithmSelected {
            algorithm: alg as u16,
            weights: WeightSet::from_slice(&[0.5, 0.5]),
        });
        let runtime = if alg == 0 { 1.0 } else { 4.0 };
        recorder.record(EventKind::MeasureOutcome {
            algorithm: alg as u16,
            status: MeasureStatus::Ok,
            runtime_ms: runtime,
        });
        tuner.report(runtime);
    }
    let events = recorder.drain();
    assert_eq!(events.len(), 150);

    let meta = RunMeta {
        case_study: "test".into(),
        strategy: "e-greedy(10%)".into(),
        algorithms: vec!["fast".into(), "slow".into()],
        iterations: 50,
    };
    let log = parse_run_log(&write_run_log(&meta, &events)).unwrap();
    assert_eq!(log.events, events);

    // The Chrome export of the same run must be a valid, reparseable
    // trace: one row per event, plus the process-name metadata row, plus
    // one extra "weights" counter row per algorithm selection.
    let trace = chrome_trace(&events);
    let reparsed = autotune::json::Json::parse(&trace.to_string()).unwrap();
    let rows = reparsed.get("traceEvents").unwrap().as_arr().unwrap();
    assert_eq!(rows.len(), events.len() + 1 + 50);
}
