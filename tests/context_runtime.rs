//! The context layer under the multi-site runtime:
//!
//! 1. **Park / re-admit bit-identity** — a table whose capacity covers
//!    the whole key space and a table churning through 2 slots, driven
//!    with identical deterministic call streams, must end with
//!    *identical* per-key tuner state: eviction parks a tuner and
//!    re-admission reinstates it verbatim, so LRU churn affects *where*
//!    a key's tuner lives, never *what* it has learned.
//! 2. **Exact per-key call accounting under 8-thread churn stress** —
//!    16 keys through 4 slots from 8 threads: every dispatch counted
//!    exactly once against exactly its key, admission arithmetic
//!    consistent (admissions = cold + warm + reinstated, evictions =
//!    admissions − resident).
//! 3. **Warm-start seeding** — a newly admitted key's first phase-1
//!    proposal is its neighbor's incumbent configuration, not the cold
//!    start point.

use autotune::context::{ContextKey, ContextSites};
use autotune::param::Parameter;
use autotune::robust::MeasureOutcome;
use autotune::site::SiteSpec;
use autotune::space::SearchSpace;
use autotune::two_phase::{AlgorithmSpec, NominalKind};
use std::collections::HashMap;

#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
struct Key(i64);

impl ContextKey for Key {
    fn features(&self) -> Vec<i64> {
        vec![self.0]
    }
    fn label(&self) -> String {
        format!("k{}", self.0)
    }
}

/// A two-algorithm blueprint with a tunable interval each, seeded per
/// key — the same spec family for every table in this file.
fn spec_for(prefix: &str) -> impl Fn(&Key) -> SiteSpec + Send + Sync + 'static {
    let prefix = prefix.to_string();
    move |k: &Key| {
        SiteSpec::algorithms(
            format!("{prefix}/{}", k.label()),
            vec![
                AlgorithmSpec::new("a", SearchSpace::new(vec![Parameter::interval("x", 1, 64)])),
                AlgorithmSpec::new("b", SearchSpace::new(vec![Parameter::interval("y", 1, 64)])),
            ],
            NominalKind::EpsilonGreedy(0.10),
            0xAB5E ^ k.0 as u64,
        )
    }
}

/// Deterministic synthetic cost: a pure function of key, algorithm and
/// configuration, so identical tuner states receive identical
/// measurements and stay identical by induction.
fn cost(key: Key, algorithm: usize, x: i64) -> f64 {
    let target = 10 + (key.0 * 11) % 40;
    let base = if algorithm == 0 { 1.0 } else { 1.5 };
    base + (x - target).abs() as f64 / 8.0
}

/// One deterministic tuned call for `key` on `table`.
fn call(table: &ContextSites<Key>, key: Key) {
    let guard = table.dispatch(&key);
    let x = guard.config().get(0).as_i64();
    let v = cost(key, guard.algorithm(), x);
    guard.post_outcome(MeasureOutcome::from_value(v));
}

/// Everything a tuner has learned, as a comparable value. `Debug` output
/// covers selection histories, incumbents and the published exploit
/// decision — if any bit of learned state diverges, so does the string.
fn fingerprint(table: &ContextSites<Key>, key: Key) -> String {
    table.with_tuner_for(&key, |t| {
        let tp = t.as_two_phase().expect("two-phase spec");
        format!(
            "{:?} | {:?} | {:?} | {:?}",
            tp.exploit_choice(),
            t.incumbents(),
            tp.selection_counts(),
            tp.histories(),
        )
    })
}

#[test]
fn lru_eviction_and_readmission_round_trip_tuner_state_bit_identically() {
    const KEYS: i64 = 4;
    const ROUNDS: usize = 60;
    // Warm-starting off: admissions must be cold in both tables so the
    // only difference between them is the churn itself.
    let roomy = ContextSites::register("ctxrt/roomy", KEYS as usize, spec_for("ctxrt/roomy"))
        .with_warm_start(false);
    let tight =
        ContextSites::register("ctxrt/tight", 2, spec_for("ctxrt/tight")).with_warm_start(false);

    // Round-robin over 4 keys through 2 slots: every dispatch in the
    // tight table is a re-admission after an eviction.
    for round in 0..ROUNDS {
        for k in 0..KEYS {
            let key = Key(k);
            // A couple of calls per admission so learned state moves.
            for _ in 0..1 + (round + k as usize) % 3 {
                call(&roomy, key);
                call(&tight, key);
            }
        }
    }

    let tight_stats = tight.stats();
    assert!(tight_stats.evictions >= (KEYS as u64 - 2) * (ROUNDS as u64 - 1));
    assert_eq!(
        tight_stats.reinstatements,
        tight_stats.admissions - KEYS as u64
    );
    assert_eq!(roomy.stats().evictions, 0);

    for k in 0..KEYS {
        let key = Key(k);
        assert_eq!(
            fingerprint(&roomy, key),
            fingerprint(&tight, key),
            "churned tuner state for {key:?} diverged from the resident one"
        );
        assert_eq!(
            roomy.key_stats(&key).unwrap().calls,
            tight.key_stats(&key).unwrap().calls
        );
    }
}

#[test]
fn stress_exact_per_key_accounting_under_churn_across_eight_threads() {
    const THREADS: usize = 8;
    const ITERS: usize = 200;
    const KEYS: i64 = 16;
    const CAPACITY: usize = 4;

    let table = ContextSites::register("ctxrt/stress", CAPACITY, spec_for("ctxrt/stress"));

    std::thread::scope(|scope| {
        for t in 0..THREADS {
            let table = &table;
            scope.spawn(move || {
                for i in 0..ITERS {
                    // Per-thread phase shift and stride so threads both
                    // collide on hot keys and force steady eviction churn.
                    let key = Key(((i * 7 + t * 3) % KEYS as usize) as i64);
                    call(table, key);
                }
            });
        }
    });

    // Replay the schedule: per-key dispatch counts are deterministic.
    let mut per_key: HashMap<Key, u64> = HashMap::new();
    for t in 0..THREADS {
        for i in 0..ITERS {
            *per_key
                .entry(Key(((i * 7 + t * 3) % KEYS as usize) as i64))
                .or_insert(0) += 1;
        }
    }

    let mut total = 0;
    let mut admissions = 0;
    for k in 0..KEYS {
        let key = Key(k);
        let stats = table.key_stats(&key).expect("every key was dispatched");
        assert_eq!(
            stats.calls, per_key[&key],
            "key {key:?} must count exactly its own dispatches"
        );
        assert!(stats.admissions >= 1);
        assert!(
            stats.tuned_iterations > 0,
            "key {key:?}: at least one tuning iteration ran"
        );
        total += stats.calls;
        admissions += stats.admissions;
    }
    assert_eq!(
        total,
        (THREADS * ITERS) as u64,
        "no call lost or duplicated"
    );

    let st = table.stats();
    assert_eq!(
        st.admissions, admissions,
        "table and per-key admissions agree"
    );
    assert_eq!(
        st.admissions,
        st.cold_starts + st.warm_starts + st.reinstatements
    );
    assert_eq!(
        st.cold_starts + st.warm_starts,
        KEYS as u64,
        "16 first admissions"
    );
    // Every admission either grew the pool (fresh slot below capacity,
    // or an overflow slot while every binding had a call in flight) or
    // evicted exactly one binding. With 16 distinct keys the pool is
    // certainly full, so its size is exactly capacity + overflows; an
    // overflow needs every slot busy at once, and the admitting thread
    // holds no guard of its own, so the pool can never outgrow the
    // thread count.
    let resident = table.resident_len();
    assert_eq!(resident as u64, CAPACITY as u64 + st.overflows);
    assert!(
        resident <= THREADS.max(CAPACITY),
        "overflow growth is bounded by concurrency, got {resident} slots"
    );
    assert_eq!(
        st.evictions,
        st.admissions - resident as u64,
        "admissions split exactly into pool growth and evictions"
    );
    assert_eq!(table.parked_len(), (KEYS as usize) - resident);
}

#[test]
fn warm_started_key_first_proposal_is_the_neighbor_incumbent() {
    // Single-space spec so the first phase-1 proposal is directly
    // observable as the dispatched configuration.
    let make = |prefix: &str| {
        let prefix = prefix.to_string();
        move |k: &Key| {
            SiteSpec::space(
                format!("{prefix}/{}", k.label()),
                SearchSpace::new(vec![Parameter::interval("x", 1, 64)]),
                0x5EED ^ k.0 as u64,
            )
        }
    };
    let warm = ContextSites::register("ctxrt/warmseed", 4, make("ctxrt/warmseed"));
    let cold =
        ContextSites::register("ctxrt/coldseed", 4, make("ctxrt/coldseed")).with_warm_start(false);

    // Teach key 0 in both tables: minimum at x = 37.
    for table in [&warm, &cold] {
        for _ in 0..80 {
            let guard = table.dispatch(&Key(0));
            let x = guard.config().get(0).as_i64();
            guard.post_outcome(MeasureOutcome::from_value(1.0 + (x - 37).abs() as f64));
        }
    }
    let incumbent = warm.with_tuner_for(&Key(0), |t| t.incumbents()[0].clone().unwrap());

    // Admit key 1: the warm table seeds from key 0's posterior, the cold
    // table starts from scratch.
    let warm_first = {
        let g = warm.dispatch(&Key(1));
        let x = g.config().clone();
        g.post_outcome(MeasureOutcome::from_value(1.0));
        x
    };
    let cold_first = {
        let g = cold.dispatch(&Key(1));
        let x = g.config().clone();
        g.post_outcome(MeasureOutcome::from_value(1.0));
        x
    };
    assert_eq!(
        warm_first, incumbent.0,
        "warm-started key must start from the neighbor's incumbent"
    );
    assert_ne!(
        warm_first, cold_first,
        "warm and cold starts must actually differ for this space"
    );
    assert_eq!(warm.stats().warm_starts, 1);
    assert_eq!(cold.stats().warm_starts, 0);
}
