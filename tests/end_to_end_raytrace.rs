//! Integration: the full case-study-2 stack — the two-phase tuner driving
//! the real raytracing pipeline (kD-tree construction + raycasting).

use algochoice::autotune::prelude::*;
use algochoice::raytrace::kdtree::BruteForce;
use algochoice::raytrace::render::{frame, render, RenderOptions};
use algochoice::raytrace::{all_builders, cathedral, tunable};

fn opts() -> RenderOptions {
    RenderOptions {
        width: 40,
        height: 30,
        threads: 2,
        packet_width: 1,
    }
}

#[test]
fn tuned_frames_render_the_same_image_as_brute_force() {
    let scene = cathedral(5, 1);
    let reference = render(&scene, &BruteForce, &opts());
    let builders = all_builders();
    let mut rng = algochoice::autotune::rng::Rng::new(3);
    for b in &builders {
        // A random legal tuning configuration must never change the image.
        let space = tunable::space_for(b.name());
        let config = tunable::decode(b.name(), &space.random(&mut rng));
        let accel = b.build(&scene.triangles, &config);
        let img = render(&scene, accel.as_ref(), &opts());
        let max_diff = reference
            .iter()
            .zip(&img)
            .map(|(a, b)| (a - b).abs())
            .fold(0.0f32, f32::max);
        assert!(
            max_diff < 0.05,
            "{} with config {config:?} changed the image (max diff {max_diff})",
            b.name()
        );
    }
}

#[test]
fn two_phase_tuning_over_real_frames_improves_on_the_start() {
    let scene = cathedral(7, 1);
    let builders = all_builders();
    let o = opts();
    let mut tuner = TwoPhaseTuner::new(
        tunable::algorithm_specs(),
        NominalKind::EpsilonGreedy(0.20),
        9,
    );
    let mut first = None;
    for _ in 0..30 {
        let s = tuner.step(|alg, c| {
            let config = tunable::decode(builders[alg].name(), c);
            frame(&scene, builders[alg].as_ref(), &config, &o).total_ms()
        });
        first.get_or_insert(s.value);
    }
    let (_, _, best) = tuner.best().expect("tuned");
    let first = first.unwrap();
    assert!(
        best <= first,
        "tuning must not end worse than the hand-crafted start: {best} vs {first}"
    );
}

#[test]
fn selection_counts_sum_to_frames_for_every_strategy() {
    let scene = cathedral(2, 1);
    let builders = all_builders();
    let o = RenderOptions {
        width: 24,
        height: 18,
        threads: 2,
        packet_width: 1,
    };
    for kind in [
        NominalKind::EpsilonGreedy(0.05),
        NominalKind::OptimumWeighted,
    ] {
        let mut tuner = TwoPhaseTuner::new(tunable::algorithm_specs(), kind, 21);
        for _ in 0..12 {
            tuner.step(|alg, c| {
                let config = tunable::decode(builders[alg].name(), c);
                frame(&scene, builders[alg].as_ref(), &config, &o).total_ms()
            });
        }
        assert_eq!(tuner.selection_counts().iter().sum::<usize>(), 12);
        assert!(tuner.best().is_some());
    }
}

#[test]
fn lazy_builder_is_tuned_through_its_extra_parameter() {
    // The Lazy space has the extra eager-cutoff dimension on top of the
    // common four (depth, Ct, Ci, packet_exp); a full tuning round through
    // the two-phase tuner must produce valid configs for it.
    let scene = cathedral(4, 1);
    let builders = all_builders();
    let o = opts();
    let specs = vec![tunable::algorithm_specs().remove(1)]; // Lazy only
    let mut tuner = TwoPhaseTuner::new(specs, NominalKind::EpsilonGreedy(0.0), 2);
    for _ in 0..10 {
        let (alg, c) = tuner.next();
        assert_eq!(alg, 0);
        assert_eq!(c.len(), 5, "Lazy has 5 tunables");
        let config = tunable::decode("Lazy", &c);
        assert!(config.eager_cutoff <= 16);
        assert!([1, 2, 4].contains(&tunable::decode_packet_width(&c)));
        let ropts = tunable::decode_render(&c, &o);
        let ms = frame(&scene, builders[1].as_ref(), &config, &ropts).total_ms();
        tuner.report(ms);
    }
}
