//! Cross-crate property-based tests: the correctness invariants that the
//! paper's evaluation silently relies on.
//!
//! The build environment is fully offline, so instead of `proptest` these
//! use the in-repo xoshiro [`Rng`] to drive randomized cases from fixed
//! seeds — deterministic, shrink-free property tests.

use algochoice::autotune::param::Parameter;
use algochoice::autotune::prelude::*;
use algochoice::autotune::rng::Rng;
use algochoice::autotune::search::run_loop;
use algochoice::stringmatch::{all_matchers, naive};

// -------------------------------------------------------------------
// String matching: every algorithm ≡ the reference on arbitrary inputs.
// -------------------------------------------------------------------

/// Texts over a small alphabet provoke periodicity edge cases; patterns
/// are either arbitrary or sampled from the text (guaranteeing matches).
fn small_alphabet_text(rng: &mut Rng, max_len: usize) -> Vec<u8> {
    const ALPHABET: &[u8] = b"abAB \n.";
    let len = rng.next_below(max_len as u64) as usize;
    (0..len)
        .map(|_| ALPHABET[rng.pick_index(ALPHABET.len())])
        .collect()
}

#[test]
fn all_matchers_agree_with_naive_on_arbitrary_input() {
    const PAT_ALPHABET: &[u8] = b"abAB ";
    let mut rng = Rng::new(0xc0de_0001);
    for _ in 0..64 {
        let text = small_alphabet_text(&mut rng, 600);
        let len = 1 + rng.pick_index(39);
        let pattern: Vec<u8> = (0..len)
            .map(|_| PAT_ALPHABET[rng.pick_index(PAT_ALPHABET.len())])
            .collect();
        let expected = naive::find_all(&pattern, &text);
        for m in all_matchers() {
            assert_eq!(
                m.find_all(&pattern, &text),
                expected,
                "{} disagrees",
                m.name()
            );
        }
    }
}

#[test]
fn all_matchers_find_planted_occurrences() {
    let mut rng = Rng::new(0xc0de_0002);
    let mut cases = 0;
    while cases < 64 {
        let text = small_alphabet_text(&mut rng, 600);
        if text.len() < 50 {
            continue;
        }
        cases += 1;
        let len = 1 + rng.pick_index(49);
        let start = rng.next_below((text.len() - len) as u64) as usize;
        let pattern = text[start..start + len].to_vec();
        for m in all_matchers() {
            let hits = m.find_all(&pattern, &text);
            assert!(
                hits.contains(&start),
                "{} missed the planted occurrence at {start}",
                m.name()
            );
            assert_eq!(hits, naive::find_all(&pattern, &text));
        }
    }
}

// -------------------------------------------------------------------
// Search spaces and searchers.
// -------------------------------------------------------------------

fn arb_space(rng: &mut Rng) -> SearchSpace {
    let dims = 1 + rng.pick_index(3);
    let params = (0..dims)
        .map(|_| {
            let kind = rng.pick_index(3);
            let lo = -20 + rng.next_below(20) as i64;
            let hi = 1 + rng.next_below(19) as i64;
            match kind {
                0 => Parameter::ratio("p", lo, lo + hi),
                1 => Parameter::interval("p", lo, lo + hi),
                _ => Parameter::ordinal("p", (0..=hi as usize).map(|i| format!("l{i}")).collect()),
            }
        })
        .collect();
    SearchSpace::new(params)
}

#[test]
fn searchers_only_propose_members_of_the_space() {
    let mut outer = Rng::new(0xc0de_0003);
    for _ in 0..48 {
        let space = arb_space(&mut outer);
        let seed = outer.next_below(1000);
        let searchers: Vec<Box<dyn Searcher>> = vec![
            Box::new(NelderMead::new(space.clone(), NelderMeadOptions::default())),
            Box::new(HillClimbing::new(space.clone(), seed)),
            Box::new(RandomSearch::new(space.clone(), seed)),
            Box::new(GeneticAlgorithm::new(
                space.clone(),
                seed,
                Default::default(),
            )),
            Box::new(DifferentialEvolution::new(
                space.clone(),
                seed,
                Default::default(),
            )),
            Box::new(ParticleSwarm::new(space.clone(), seed, Default::default())),
            Box::new(SimulatedAnnealing::new(
                space.clone(),
                seed,
                Default::default(),
            )),
        ];
        for mut s in searchers {
            for i in 0..60 {
                let c = s.propose();
                assert!(
                    space.contains(&c),
                    "{} proposed {c:?} at iter {i}",
                    s.name()
                );
                // Arbitrary but deterministic cost.
                let v = c.values().iter().map(|v| v.as_f64().abs()).sum::<f64>() + 1.0;
                s.report(v);
            }
            assert!(s.best().is_some());
        }
    }
}

#[test]
fn best_never_regresses() {
    let mut outer = Rng::new(0xc0de_0004);
    for _ in 0..48 {
        let space = arb_space(&mut outer);
        let seed = outer.next_below(1000);
        let mut s = RandomSearch::new(space.clone(), seed);
        let mut f = |c: &Configuration| c.values().iter().map(|v| v.as_f64()).sum::<f64>();
        let mut prev = f64::INFINITY;
        for _ in 0..5 {
            run_loop(&mut s, &mut f, 20);
            let (_, best) = s.best().unwrap();
            assert!(best <= prev);
            prev = best;
        }
    }
}

// -------------------------------------------------------------------
// Constraints: repair projects into the feasible region.
// -------------------------------------------------------------------

/// For every workload search space — the raytrace builders under 1/2/8-core
/// budgets and the string-matcher specs — repairing a random box point must
/// land inside the box AND satisfy every declared constraint; searchers'
/// feasible samplers must do the same. This is the tentpole guarantee:
/// nothing a repaired proposal produces can violate a constraint.
#[test]
fn repair_of_random_coordinates_is_always_feasible() {
    use algochoice::raytrace::tunable::space_for_with_budget;
    use algochoice::stringmatch::tuned::matcher_algorithm_specs;

    let mut spaces: Vec<(String, SearchSpace)> = Vec::new();
    for cores in [1usize, 2, 8] {
        for builder in ["Inplace", "Lazy", "Nested", "Wald-Havran"] {
            spaces.push((
                format!("{builder}@{cores}c"),
                space_for_with_budget(builder, cores),
            ));
        }
    }
    for spec in matcher_algorithm_specs() {
        spaces.push((spec.name.clone(), spec.space));
    }

    let mut rng = Rng::new(0xc0de_0008);
    for (name, space) in &spaces {
        // Irreparably infeasible spaces (e.g. SIMD matchers on a scalar-only
        // host) are exercised through the penalty path, not repair.
        let repairable = space.repair(&space.min_corner()).is_some();
        for _ in 0..100 {
            let raw = space.random(&mut rng);
            if repairable {
                let repaired = space
                    .repair(&raw)
                    .unwrap_or_else(|| panic!("{name}: {raw:?} must be repairable"));
                assert!(space.contains(&repaired), "{name}: {repaired:?} left box");
                assert!(
                    space.is_feasible(&repaired),
                    "{name}: repair left {repaired:?} infeasible"
                );
                let clamped = space.clamp_feasible(&raw.as_coords());
                assert!(space.is_feasible(&clamped), "{name}: clamp_feasible");
                let sampled = space.random_feasible(&mut rng);
                assert!(space.is_feasible(&sampled), "{name}: random_feasible");
            } else {
                assert!(
                    !space.is_feasible(&raw) || space.constraints().is_empty(),
                    "{name}: irreparable space with feasible points"
                );
            }
        }
    }
}

// -------------------------------------------------------------------
// Nominal strategies: probabilistic invariants.
// -------------------------------------------------------------------

#[test]
fn strategies_select_valid_indices_and_track_best() {
    let mut outer = Rng::new(0xc0de_0005);
    for _ in 0..32 {
        let arms = 2 + outer.pick_index(6);
        let costs: Vec<f64> = (0..arms)
            .map(|_| outer.next_range_f64(0.5, 100.0))
            .collect();
        let seed = outer.next_below(1000);
        for kind in NominalKind::paper_set() {
            let mut s = kind.build(costs.len(), seed);
            for _ in 0..120 {
                let a = s.select();
                assert!(a < costs.len(), "{} out of range", s.name());
                s.report(a, costs[a]);
            }
            let best = s.best().expect("samples exist");
            // The reported best must be an arm whose cost is minimal among
            // *sampled* arms — with fixed costs that is the global argmin
            // as soon as it was sampled once.
            let sampled_min = s
                .histories()
                .iter()
                .filter_map(|h| h.best_value())
                .fold(f64::INFINITY, f64::min);
            assert_eq!(s.histories()[best].best_value().unwrap(), sampled_min);
        }
    }
}

#[test]
fn two_phase_tuner_conserves_iterations() {
    let mut outer = Rng::new(0xc0de_0006);
    for _ in 0..32 {
        let num_algs = 1 + outer.pick_index(4);
        let iters = 1 + outer.pick_index(59);
        let seed = outer.next_below(1000);
        let specs: Vec<AlgorithmSpec> = (0..num_algs)
            .map(|i| AlgorithmSpec::untunable(format!("a{i}")))
            .collect();
        let mut tuner = TwoPhaseTuner::new(specs, NominalKind::EpsilonGreedy(0.10), seed);
        for _ in 0..iters {
            tuner.step(|alg, _| 1.0 + alg as f64);
        }
        assert_eq!(tuner.selection_counts().iter().sum::<usize>(), iters);
        assert_eq!(tuner.log().len(), iters);
        assert_eq!(tuner.best().unwrap().0, tuner.best_algorithm().unwrap());
    }
}

// -------------------------------------------------------------------
// Raytracing: geometric invariants on random scenes.
// -------------------------------------------------------------------

#[test]
fn kdtree_builders_agree_with_brute_force_on_random_scenes() {
    use algochoice::raytrace::kdtree::BruteForce;
    use algochoice::raytrace::{all_builders, random_blobs, Accel, Ray, Vec3};

    let mut outer = Rng::new(0xc0de_0007);
    for _ in 0..12 {
        let seed = outer.next_below(500);
        let n = 10 + outer.pick_index(140);
        let scene = random_blobs(seed, n);
        let brute = BruteForce;
        let mut rng = Rng::new(seed ^ 0xABCD);
        for b in all_builders() {
            let accel = b.build(&scene.triangles, &Default::default());
            for _ in 0..40 {
                let origin = Vec3::new(
                    rng.next_range_f64(-8.0, 8.0) as f32,
                    rng.next_range_f64(-8.0, 8.0) as f32,
                    rng.next_range_f64(-3.0, 12.0) as f32,
                );
                let dir = Vec3::new(
                    rng.next_range_f64(-1.0, 1.0) as f32,
                    rng.next_range_f64(-1.0, 1.0) as f32,
                    rng.next_range_f64(-1.0, 1.0) as f32,
                );
                if dir.length_squared() < 1e-6 {
                    continue;
                }
                let ray = Ray::new(origin, dir);
                let expected = brute.intersect(&scene.triangles, &ray);
                let got = accel.intersect(&scene.triangles, &ray);
                match (expected, got) {
                    (None, None) => {}
                    (Some(e), Some(g)) => {
                        assert!((e.t - g.t).abs() < 1e-2, "{}: {e:?} vs {g:?}", b.name())
                    }
                    (e, g) => panic!("{}: {e:?} vs {g:?}", b.name()),
                }
            }
        }
    }
}
