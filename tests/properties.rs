//! Cross-crate property-based tests (proptest): the correctness invariants
//! that the paper's evaluation silently relies on.

use algochoice::autotune::param::Parameter;
use algochoice::autotune::prelude::*;
use algochoice::autotune::search::run_loop;
use algochoice::stringmatch::{all_matchers, naive};
use proptest::prelude::*;

// -------------------------------------------------------------------
// String matching: every algorithm ≡ the reference on arbitrary inputs.
// -------------------------------------------------------------------

/// Texts over a small alphabet provoke periodicity edge cases; patterns
/// are either arbitrary or sampled from the text (guaranteeing matches).
fn text_strategy() -> impl Strategy<Value = Vec<u8>> {
    prop::collection::vec(prop::sample::select(b"abAB \n.".to_vec()), 0..600)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn all_matchers_agree_with_naive_on_arbitrary_input(
        text in text_strategy(),
        pattern in prop::collection::vec(prop::sample::select(b"abAB ".to_vec()), 1..40),
    ) {
        let expected = naive::find_all(&pattern, &text);
        for m in all_matchers() {
            prop_assert_eq!(
                m.find_all(&pattern, &text),
                expected.clone(),
                "{} disagrees", m.name()
            );
        }
    }

    #[test]
    fn all_matchers_find_planted_occurrences(
        text in text_strategy(),
        start_frac in 0.0f64..1.0,
        len in 1usize..50,
    ) {
        prop_assume!(text.len() >= 50);
        let start = ((text.len() - len) as f64 * start_frac) as usize;
        let pattern = text[start..start + len].to_vec();
        for m in all_matchers() {
            let hits = m.find_all(&pattern, &text);
            prop_assert!(
                hits.contains(&start),
                "{} missed the planted occurrence at {start}", m.name()
            );
            prop_assert_eq!(hits, naive::find_all(&pattern, &text));
        }
    }
}

// -------------------------------------------------------------------
// Search spaces and searchers.
// -------------------------------------------------------------------

fn arb_space() -> impl Strategy<Value = SearchSpace> {
    prop::collection::vec(
        (0i64..3, -20i64..0, 1i64..20).prop_map(|(kind, lo, hi)| match kind {
            0 => Parameter::ratio("p", lo, lo + hi),
            1 => Parameter::interval("p", lo, lo + hi),
            _ => Parameter::ordinal("p", (0..=hi as usize).map(|i| format!("l{i}")).collect()),
        }),
        1..4,
    )
    .prop_map(SearchSpace::new)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn searchers_only_propose_members_of_the_space(space in arb_space(), seed in 0u64..1000) {
        let searchers: Vec<Box<dyn Searcher>> = vec![
            Box::new(NelderMead::new(space.clone(), NelderMeadOptions::default())),
            Box::new(HillClimbing::new(space.clone(), seed)),
            Box::new(RandomSearch::new(space.clone(), seed)),
            Box::new(GeneticAlgorithm::new(space.clone(), seed, Default::default())),
            Box::new(DifferentialEvolution::new(space.clone(), seed, Default::default())),
            Box::new(ParticleSwarm::new(space.clone(), seed, Default::default())),
            Box::new(SimulatedAnnealing::new(space.clone(), seed, Default::default())),
        ];
        for mut s in searchers {
            for i in 0..60 {
                let c = s.propose();
                prop_assert!(space.contains(&c), "{} proposed {c:?} at iter {i}", s.name());
                // Arbitrary but deterministic cost.
                let v = c.values().iter().map(|v| v.as_f64().abs()).sum::<f64>() + 1.0;
                s.report(v);
            }
            prop_assert!(s.best().is_some());
        }
    }

    #[test]
    fn best_never_regresses(space in arb_space(), seed in 0u64..1000) {
        let mut s = RandomSearch::new(space.clone(), seed);
        let mut f = |c: &Configuration| c.values().iter().map(|v| v.as_f64()).sum::<f64>();
        let mut prev = f64::INFINITY;
        for _ in 0..5 {
            run_loop(&mut s, &mut f, 20);
            let (_, best) = s.best().unwrap();
            prop_assert!(best <= prev);
            prev = best;
        }
    }
}

// -------------------------------------------------------------------
// Nominal strategies: probabilistic invariants.
// -------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn strategies_select_valid_indices_and_track_best(
        costs in prop::collection::vec(0.5f64..100.0, 2..8),
        seed in 0u64..1000,
    ) {
        for kind in NominalKind::paper_set() {
            let mut s = kind.build(costs.len(), seed);
            for _ in 0..120 {
                let a = s.select();
                prop_assert!(a < costs.len(), "{} out of range", s.name());
                s.report(a, costs[a]);
            }
            let best = s.best().expect("samples exist");
            // The reported best must be an arm whose cost is minimal among
            // *sampled* arms — with fixed costs that is the global argmin
            // as soon as it was sampled once.
            let sampled_min = s
                .histories()
                .iter()
                .filter_map(|h| h.best_value())
                .fold(f64::INFINITY, f64::min);
            prop_assert_eq!(s.histories()[best].best_value().unwrap(), sampled_min);
        }
    }

    #[test]
    fn two_phase_tuner_conserves_iterations(
        num_algs in 1usize..5,
        iters in 1usize..60,
        seed in 0u64..1000,
    ) {
        let specs: Vec<AlgorithmSpec> = (0..num_algs)
            .map(|i| AlgorithmSpec::untunable(format!("a{i}")))
            .collect();
        let mut tuner = TwoPhaseTuner::new(specs, NominalKind::EpsilonGreedy(0.10), seed);
        for _ in 0..iters {
            tuner.step(|alg, _| 1.0 + alg as f64);
        }
        prop_assert_eq!(tuner.selection_counts().iter().sum::<usize>(), iters);
        prop_assert_eq!(tuner.log().len(), iters);
        prop_assert_eq!(tuner.best().unwrap().0, tuner.best_algorithm().unwrap());
    }
}

// -------------------------------------------------------------------
// Raytracing: geometric invariants on random scenes.
// -------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn kdtree_builders_agree_with_brute_force_on_random_scenes(
        seed in 0u64..500,
        n in 10usize..150,
    ) {
        use algochoice::raytrace::kdtree::BruteForce;
        use algochoice::raytrace::{all_builders, random_blobs, Accel, Ray, Vec3};

        let scene = random_blobs(seed, n);
        let brute = BruteForce;
        let mut rng = algochoice::autotune::rng::Rng::new(seed ^ 0xABCD);
        for b in all_builders() {
            let accel = b.build(&scene.triangles, &Default::default());
            for _ in 0..40 {
                let origin = Vec3::new(
                    rng.next_range_f64(-8.0, 8.0) as f32,
                    rng.next_range_f64(-8.0, 8.0) as f32,
                    rng.next_range_f64(-3.0, 12.0) as f32,
                );
                let dir = Vec3::new(
                    rng.next_range_f64(-1.0, 1.0) as f32,
                    rng.next_range_f64(-1.0, 1.0) as f32,
                    rng.next_range_f64(-1.0, 1.0) as f32,
                );
                if dir.length_squared() < 1e-6 {
                    continue;
                }
                let ray = Ray::new(origin, dir);
                let expected = brute.intersect(&scene.triangles, &ray);
                let got = accel.intersect(&scene.triangles, &ray);
                match (expected, got) {
                    (None, None) => {}
                    (Some(e), Some(g)) => prop_assert!(
                        (e.t - g.t).abs() < 1e-2,
                        "{}: {e:?} vs {g:?}", b.name()
                    ),
                    (e, g) => prop_assert!(false, "{}: {e:?} vs {g:?}", b.name()),
                }
            }
        }
    }
}
