//! In-place siftdown heapsort: guaranteed O(n log n), zero allocation, no
//! pathological inputs. Rarely the fastest member of 𝒜 (its access pattern
//! is cache-hostile) but the safety net [`crate::pdq`] falls back to when
//! quicksort's recursion degenerates — and an honest mid-field competitor
//! the tuner must learn to rank.

/// Restore the max-heap property for the subtree rooted at `root`, where
/// only the root may violate it, over the first `end` elements.
fn sift_down(data: &mut [u64], mut root: usize, end: usize) {
    loop {
        let left = 2 * root + 1;
        if left >= end {
            return;
        }
        let right = left + 1;
        let mut largest = root;
        if data[left] > data[largest] {
            largest = left;
        }
        if right < end && data[right] > data[largest] {
            largest = right;
        }
        if largest == root {
            return;
        }
        data.swap(root, largest);
        root = largest;
    }
}

/// Sort `data` ascending by heapsort: build a max-heap bottom-up, then
/// repeatedly swap the root to the shrinking tail and re-sift.
pub fn sort(data: &mut [u64]) {
    let n = data.len();
    if n < 2 {
        return;
    }
    for root in (0..n / 2).rev() {
        sift_down(data, root, n);
    }
    for end in (1..n).rev() {
        data.swap(0, end);
        sift_down(data, 0, end);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sorts_various_shapes() {
        for xs in [
            vec![],
            vec![1u64],
            vec![2, 1],
            vec![5, 1, 4, 2, 3],
            vec![7; 9],
            (0..100u64).rev().collect::<Vec<_>>(),
        ] {
            let mut got = xs.clone();
            sort(&mut got);
            let mut want = xs;
            want.sort_unstable();
            assert_eq!(got, want);
        }
    }
}
