//! # smallsort — tunable small-array sorting
//!
//! The third workload: Tuna's motivating example, and the paper's thesis at
//! µs scale. Which sorting algorithm wins on a small array is an
//! input-dependent choice — insertion sort is unbeatable below a few dozen
//! elements, comparison sorts rule the middle, and LSD radix overtakes them
//! on larger integer arrays — so the "best sort" is not one function but a
//! *function of input size*, and exactly the kind of decision an online
//! tuner should own.
//!
//! Five variants form the nominal set 𝒜 ([`tuned::sort_algorithm_specs`]):
//!
//! * [`insertion`] — branch-light linear insertion sort,
//! * [`heap`] — in-place siftdown heapsort,
//! * [`merge`] — top-down merge sort with a tuned `insertion_cutoff`,
//! * [`pdq`] — pdq-style introsort (median-of-three quicksort, heapsort
//!   depth fallback, tuned `insertion_cutoff`),
//! * [`radix`] — LSD radix sort with a tuned, constraint-aligned
//!   `chunk_bits`.
//!
//! [`tuned`] makes **input size a first-class context dimension**: requests
//! are bucketed into power-of-two size classes and each class is bound to
//! its own tuning site in the process-global registry
//! ([`autotune::site`]), so the tuner learns a *per-size-class* winner
//! instead of one global compromise.
//!
//! A single sort here is cheaper than a timer tick, which is why the
//! tuning path measures through [`autotune::robust::batched_time_ms`]
//! rather than a single-shot clock read — see [`tuned::sort_request`].

#![warn(missing_docs)]

pub mod heap;
pub mod insertion;
pub mod merge;
pub mod pdq;
pub mod radix;
pub mod tuned;

pub use tuned::{
    nearly_sorted_input, presort_class, runs, size_class, sort_algorithm_specs, sort_request,
    sort_request_keyed, sort_site_spec, sort_with, SortKey, SortSites, ALGORITHM_NAMES,
    MAX_CLASS_LOG2, MIN_CLASS_LOG2, NUM_CLASSES, NUM_PRESORT_CLASSES, PRESORT_NAMES,
    PRESORT_NEARLY_SORTED, PRESORT_RANDOM,
};
