//! Pdq-style introsort: median-of-three quicksort that defeats its own
//! pathologies — subarrays at or below the tuned `insertion_cutoff` go to
//! [`crate::insertion`], and when the recursion depth exceeds 2·log₂ n
//! (adversarial or heavily duplicated input driving quadratic behavior)
//! the partition falls back to [`crate::heap`]. The same
//! pattern-defeating structure as pdqsort/std's unstable sort, on this
//! workload's small-array scale.

use crate::{heap, insertion};

/// Median-of-three Lomuto partition: returns the pivot's final index.
fn partition(data: &mut [u64]) -> usize {
    let n = data.len();
    let mid = n / 2;
    if data[0] > data[mid] {
        data.swap(0, mid);
    }
    if data[0] > data[n - 1] {
        data.swap(0, n - 1);
    }
    if data[mid] > data[n - 1] {
        data.swap(mid, n - 1);
    }
    data.swap(mid, n - 1);
    let pivot = data[n - 1];
    let mut store = 0;
    for i in 0..n - 1 {
        if data[i] < pivot {
            data.swap(i, store);
            store += 1;
        }
    }
    data.swap(store, n - 1);
    store
}

fn introsort(data: &mut [u64], cutoff: usize, depth_budget: u32) {
    if data.len() <= cutoff {
        insertion::sort(data);
        return;
    }
    if depth_budget == 0 {
        heap::sort(data);
        return;
    }
    let p = partition(data);
    let (lo, hi) = data.split_at_mut(p);
    introsort(lo, cutoff, depth_budget - 1);
    introsort(&mut hi[1..], cutoff, depth_budget - 1);
}

/// Sort `data` ascending by introsort, switching to insertion sort on
/// subarrays of at most `insertion_cutoff` elements (clamped to at
/// least 1) and to heapsort past a 2·log₂ n recursion depth. In-place,
/// allocation-free.
pub fn sort(data: &mut [u64], insertion_cutoff: usize) {
    let cutoff = insertion_cutoff.max(1);
    if data.len() < 2 {
        return;
    }
    introsort(data, cutoff, 2 * data.len().ilog2() + 2);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sorts_adversarial_shapes() {
        let shapes: Vec<Vec<u64>> = vec![
            (0..300u64).rev().collect(),
            vec![42; 200],
            (0..300u64).map(|i| i % 3).collect(),
            (0..300u64)
                .map(|i| i.wrapping_mul(0x9E3779B97F4A7C15))
                .collect(),
        ];
        for xs in shapes {
            for cutoff in [0, 1, 12, 64] {
                let mut got = xs.clone();
                sort(&mut got, cutoff);
                let mut want = xs.clone();
                want.sort_unstable();
                assert_eq!(got, want, "cutoff {cutoff}");
            }
        }
    }
}
