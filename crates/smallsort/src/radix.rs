//! LSD radix sort for u64 keys: O(n · 64/b) counting passes over
//! `b`-bit digits, the non-comparison member of 𝒜 that overtakes every
//! comparison sort once n clears a few thousand. Its `chunk_bits` knob is
//! this workload's constrained parameter: only values dividing 64 produce
//! an aligned pass schedule ([`crate::tuned`] attaches the constraint,
//! with a round-down repair), trading pass count against counting-table
//! cache footprint — 8 passes × 256 buckets vs 4 × 65536, a real
//! machine-dependent choice.

/// One counting pass: scatter `src` into `dst` by the `chunk_bits`-wide
/// digit at `shift`. Returns `true` if the pass actually permuted (more
/// than one occupied bucket) — a single-bucket pass leaves `src` as-is and
/// can be skipped entirely.
fn counting_pass(
    src: &[u64],
    dst: &mut [u64],
    counts: &mut [usize],
    shift: u32,
    mask: u64,
) -> bool {
    counts.fill(0);
    for &x in src {
        counts[((x >> shift) & mask) as usize] += 1;
    }
    if counts.contains(&src.len()) {
        return false;
    }
    let mut total = 0;
    for c in counts.iter_mut() {
        let here = *c;
        *c = total;
        total += here;
    }
    for &x in src {
        let bucket = ((x >> shift) & mask) as usize;
        dst[counts[bucket]] = x;
        counts[bucket] += 1;
    }
    true
}

/// Sort `data` ascending by least-significant-digit radix sort over
/// `chunk_bits`-wide digits. `chunk_bits` must be in `1..=16` and divide
/// 64 (the constraint [`crate::tuned`] declares); out-of-range values are
/// repaired here too — rounded down to the nearest divisor — so the
/// function stays total under un-repaired proposals. Allocates one
/// scratch buffer and one counting table.
pub fn sort(data: &mut [u64], chunk_bits: u32) {
    let mut bits = chunk_bits.clamp(1, 16);
    while 64 % bits != 0 {
        bits -= 1;
    }
    let n = data.len();
    if n < 2 {
        return;
    }
    let buckets = 1usize << bits;
    let mask = (buckets - 1) as u64;
    let mut scratch = vec![0u64; n];
    let mut counts = vec![0usize; buckets];
    let mut in_data = true;
    for pass in 0..64 / bits {
        let shift = pass * bits;
        let moved = if in_data {
            counting_pass(data, &mut scratch, &mut counts, shift, mask)
        } else {
            counting_pass(&scratch, data, &mut counts, shift, mask)
        };
        if moved {
            in_data = !in_data;
        }
    }
    if !in_data {
        data.copy_from_slice(&scratch);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sorts_for_every_aligned_chunk_width() {
        let xs: Vec<u64> = (0..500u64)
            .map(|i| i.wrapping_mul(0x9E3779B97F4A7C15).rotate_left(17))
            .collect();
        for bits in [1, 2, 4, 8, 16] {
            let mut got = xs.clone();
            sort(&mut got, bits);
            let mut want = xs.clone();
            want.sort_unstable();
            assert_eq!(got, want, "chunk_bits {bits}");
        }
    }

    #[test]
    fn repairs_misaligned_widths() {
        // 5, 7 and 100 are not divisors of 64: rounded down to 4, 4, 16.
        for bits in [0, 5, 7, 100] {
            let mut got = vec![3u64, 1, u64::MAX, 0, 2];
            sort(&mut got, bits);
            assert_eq!(got, vec![0, 1, 2, 3, u64::MAX]);
        }
    }

    #[test]
    fn small_value_range_skips_high_passes() {
        // All keys fit in the low byte: high passes are single-bucket and
        // skipped, but the result must still be sorted.
        let mut got: Vec<u64> = (0..200u64).map(|i| (i * 7) % 256).rev().collect();
        let mut want = got.clone();
        sort(&mut got, 8);
        want.sort_unstable();
        assert_eq!(got, want);
    }
}
