//! Top-down merge sort with a tuned insertion cutoff: stable O(n log n)
//! with one scratch allocation per call. The `insertion_cutoff` parameter
//! — below which subarrays are handed to [`crate::insertion`] — is the
//! classic interval knob of this workload's phase-1 space: too low wastes
//! the small-array regime, too high drags a quadratic tail into the
//! recursion.

use crate::insertion;

/// Merge the two sorted halves `data[..mid]` / `data[mid..]` through
/// `scratch` and copy the result back.
fn merge_halves(data: &mut [u64], scratch: &mut [u64], mid: usize) {
    let n = data.len();
    let (mut i, mut j, mut k) = (0, mid, 0);
    while i < mid && j < n {
        if data[i] <= data[j] {
            scratch[k] = data[i];
            i += 1;
        } else {
            scratch[k] = data[j];
            j += 1;
        }
        k += 1;
    }
    scratch[k..k + (mid - i)].copy_from_slice(&data[i..mid]);
    let k = k + (mid - i);
    scratch[k..k + (n - j)].copy_from_slice(&data[j..n]);
    data.copy_from_slice(&scratch[..n]);
}

fn merge_sort(data: &mut [u64], scratch: &mut [u64], cutoff: usize) {
    let n = data.len();
    if n <= cutoff {
        insertion::sort(data);
        return;
    }
    let mid = n / 2;
    {
        let (left, right) = data.split_at_mut(mid);
        let (sl, sr) = scratch.split_at_mut(mid);
        merge_sort(left, sl, cutoff);
        merge_sort(right, sr, cutoff);
    }
    merge_halves(data, scratch, mid);
}

/// Sort `data` ascending by top-down merge sort, switching to insertion
/// sort on subarrays of at most `insertion_cutoff` elements (clamped to at
/// least 1). Allocates one scratch buffer of `data.len()`.
pub fn sort(data: &mut [u64], insertion_cutoff: usize) {
    let cutoff = insertion_cutoff.max(1);
    if data.len() <= cutoff {
        insertion::sort(data);
        return;
    }
    let mut scratch = vec![0u64; data.len()];
    merge_sort(data, &mut scratch, cutoff);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sorts_across_cutoffs() {
        let xs: Vec<u64> = (0..257u64)
            .map(|i| i.wrapping_mul(0x9E3779B9) % 97)
            .collect();
        for cutoff in [0, 1, 2, 8, 64, 1000] {
            let mut got = xs.clone();
            sort(&mut got, cutoff);
            let mut want = xs.clone();
            want.sort_unstable();
            assert_eq!(got, want, "cutoff {cutoff}");
        }
    }
}
