//! Size-classed, site-dispatched sorting: input size as a **context
//! dimension** of the tuning problem.
//!
//! One tuner for "sorting" would learn a single global compromise — but
//! the whole point of this workload is that the winner *flips with n*:
//! insertion at n ≲ 64, comparison sorts in the middle, radix at large
//! integer n. So requests are bucketed by [`size_class`] (the power-of-two
//! ceiling of `n`, clamped to `[2^MIN_CLASS_LOG2, 2^MAX_CLASS_LOG2]`) and
//! a [`SortSites`] table binds **each class to its own tuning site** in
//! the process-global registry ([`autotune::site`]). Every class converges
//! independently to its own per-size winner; nothing about the tuner
//! itself changes — context is just more sites.
//!
//! Measurement is the second novelty: a single small-array sort is cheaper
//! than a timer tick, so the tuning path times `k` back-to-back sorts of
//! copies of the same unsorted input and divides
//! ([`autotune::robust::batched_time_ms`]), while exploit-path production
//! traffic pays exactly one sort and the site guard's ordinary single-shot
//! clock — see [`sort_request`].

use crate::{heap, insertion, merge, pdq, radix};
use autotune::param::{Parameter, Value};
use autotune::robust::{batched_time_ms, MeasureOutcome};
use autotune::site::{register, site, Site, SiteSpec};
use autotune::space::{Configuration, Constraint, SearchSpace};
use autotune::two_phase::{AlgorithmSpec, NominalKind};

/// Names of the five sort variants, index-aligned with the algorithm
/// indices of every site built from [`sort_site_spec`] and with
/// [`sort_with`].
pub const ALGORITHM_NAMES: [&str; 5] = ["insertion", "heap", "merge", "introsort", "radix-lsd"];

/// Smallest size-class exponent: arrays of up to `2^MIN_CLASS_LOG2`
/// elements share the bottom class.
pub const MIN_CLASS_LOG2: u32 = 3;

/// Largest size-class exponent: arrays beyond `2^MAX_CLASS_LOG2` elements
/// share the top class.
pub const MAX_CLASS_LOG2: u32 = 14;

/// Number of size classes, and the number of sites a [`SortSites`] table
/// registers.
pub const NUM_CLASSES: usize = (MAX_CLASS_LOG2 - MIN_CLASS_LOG2 + 1) as usize;

/// The size class of an `n`-element sort request: the power-of-two ceiling
/// exponent `⌈log₂ n⌉`, clamped into
/// `[MIN_CLASS_LOG2, MAX_CLASS_LOG2]`. Total (every `n`, including 0, maps
/// to exactly one class) and stable (a pure function of `n`); boundary
/// sizes `2^k` and `2^k + 1` land in adjacent classes `k` and `k + 1`.
pub fn size_class(n: usize) -> u32 {
    let n = n.max(1) as u64;
    let ceil_log2 = if n <= 1 {
        0
    } else {
        64 - (n - 1).leading_zeros()
    };
    ceil_log2.clamp(MIN_CLASS_LOG2, MAX_CLASS_LOG2)
}

fn cutoff_space() -> SearchSpace {
    SearchSpace::new(vec![Parameter::interval("insertion_cutoff", 1, 64)])
}

fn radix_space() -> SearchSpace {
    SearchSpace::new(vec![Parameter::interval("chunk_bits", 1, 16)]).with_constraint(
        Constraint::new("pass-aligned", |c| {
            let bits = c.get(0).as_i64();
            (1..=16).contains(&bits) && 64 % bits == 0
        })
        .with_repair(|c| {
            let mut bits = c.get(0).as_i64().clamp(1, 16);
            while 64 % bits != 0 {
                bits -= 1;
            }
            Configuration::new(vec![Value::Int(bits)])
        }),
    )
}

/// Algorithm specs for the five sort variants, index-aligned with
/// [`ALGORITHM_NAMES`]. Insertion and heapsort expose no parameters; merge
/// and introsort tune their `insertion_cutoff ∈ [1, 64]`; radix tunes
/// `chunk_bits ∈ [1, 16]` under a `pass-aligned` constraint (the width
/// must divide 64, repaired by rounding down — only {1, 2, 4, 8, 16} are
/// feasible pass schedules).
pub fn sort_algorithm_specs() -> Vec<AlgorithmSpec> {
    vec![
        AlgorithmSpec::untunable(ALGORITHM_NAMES[0]),
        AlgorithmSpec::untunable(ALGORITHM_NAMES[1]),
        AlgorithmSpec::new(ALGORITHM_NAMES[2], cutoff_space()),
        AlgorithmSpec::new(ALGORITHM_NAMES[3], cutoff_space()),
        AlgorithmSpec::new(ALGORITHM_NAMES[4], radix_space()),
    ]
}

/// A site blueprint selecting over the five sort variants
/// ([`sort_algorithm_specs`]) — one of these per size class makes up a
/// [`SortSites`] table.
pub fn sort_site_spec(name: impl Into<String>, nominal: NominalKind, seed: u64) -> SiteSpec {
    SiteSpec::algorithms(name, sort_algorithm_specs(), nominal, seed)
}

fn cutoff_of(config: &Configuration) -> usize {
    config.get(0).as_i64().clamp(1, 64) as usize
}

fn chunk_bits_of(config: &Configuration) -> u32 {
    config.get(0).as_i64().clamp(1, 16) as u32
}

/// Run sort variant `algorithm` (an index into [`ALGORITHM_NAMES`]) on
/// `data` with its parameters drawn from `config`. Panics on an
/// out-of-range algorithm index.
pub fn sort_with(algorithm: usize, config: &Configuration, data: &mut [u64]) {
    match algorithm {
        0 => insertion::sort(data),
        1 => heap::sort(data),
        2 => merge::sort(data, cutoff_of(config)),
        3 => pdq::sort(data, cutoff_of(config)),
        4 => radix::sort(data, chunk_bits_of(config)),
        other => panic!(
            "smallsort has {} algorithms, got index {other}",
            ALGORITHM_NAMES.len()
        ),
    }
}

/// One tuning site per size class: the context-dimension table. `Copy`
/// site handles over never-freed registry slots, so the table itself is
/// cheap to clone and share; typically built once per process (or per
/// study repetition, with a distinct `prefix`).
#[derive(Clone, Copy, Debug)]
pub struct SortSites {
    sites: [Site; NUM_CLASSES],
}

impl SortSites {
    /// Register one site per size class, named `{prefix}/c{class:02}`,
    /// each selecting over [`sort_algorithm_specs`] with the given phase-2
    /// strategy and a per-class seed derived from `seed`.
    pub fn register(prefix: &str, nominal: NominalKind, seed: u64) -> SortSites {
        SortSites {
            sites: std::array::from_fn(|i| {
                let class = MIN_CLASS_LOG2 + i as u32;
                site(register(sort_site_spec(
                    format!("{prefix}/c{class:02}"),
                    nominal,
                    seed.wrapping_mul(0x9E37_79B9_7F4A_7C15)
                        .wrapping_add(class as u64),
                )))
            }),
        }
    }

    /// The site owning size class `class` (clamped into the class range).
    pub fn class_site(&self, class: u32) -> Site {
        self.sites[(class.clamp(MIN_CLASS_LOG2, MAX_CLASS_LOG2) - MIN_CLASS_LOG2) as usize]
    }

    /// The site an `n`-element request dispatches to.
    pub fn site_for(&self, n: usize) -> Site {
        self.class_site(size_class(n))
    }

    /// Every class exponent, smallest first — index-aligned with the
    /// registration order.
    pub fn classes() -> impl Iterator<Item = u32> {
        MIN_CLASS_LOG2..=MAX_CLASS_LOG2
    }
}

/// Sort `data` ascending through its size class's tuning site; the serving
/// entry point. Returns `(class, per_call_ms)`.
///
/// The class site picks the variant and configuration. A claim-winning
/// call is a tuning iteration, and one small sort is cheaper than a timer
/// tick — so it is timed by [`batched_time_ms`]: `k` back-to-back sorts of
/// fresh copies of the *unsorted* input (re-sorting the already-sorted
/// output would hand insertion sort its O(n) best case), divided by `k`.
/// The per-batch memcpy restoring the input is inside the timed region;
/// its cost is identical across variants, a constant per-class offset that
/// cannot reorder them. Contended exploit-path calls pay exactly one sort
/// and the guard's single-shot clock — those quantized samples feed
/// telemetry, never the tuner.
pub fn sort_request(sites: &SortSites, data: &mut [u64]) -> (u32, f64) {
    let class = size_class(data.len());
    let guard = sites.class_site(class).pre();
    let algorithm = guard.algorithm();
    if guard.is_tuning() {
        let config = guard.config().clone();
        let original = data.to_vec();
        let mut scratch = original.clone();
        let ms = batched_time_ms(|| {
            scratch.copy_from_slice(&original);
            sort_with(algorithm, &config, &mut scratch);
        });
        data.copy_from_slice(&scratch);
        guard.post_outcome(MeasureOutcome::from_value(ms));
        (class, ms)
    } else {
        sort_with(algorithm, guard.config(), data);
        let ms = guard.post();
        (class, ms)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn size_class_boundaries_are_adjacent() {
        for k in MIN_CLASS_LOG2..MAX_CLASS_LOG2 {
            assert_eq!(size_class(1 << k), k, "2^{k} belongs to class {k}");
            assert_eq!(size_class((1 << k) + 1), k + 1, "2^{k}+1 spills over");
        }
        assert_eq!(size_class(0), MIN_CLASS_LOG2);
        assert_eq!(size_class(1), MIN_CLASS_LOG2);
        assert_eq!(size_class(usize::MAX), MAX_CLASS_LOG2);
    }

    #[test]
    fn specs_declare_the_pass_alignment_constraint() {
        let specs = sort_algorithm_specs();
        assert_eq!(specs.len(), ALGORITHM_NAMES.len());
        let radix = &specs[4];
        assert!(radix.space.is_constrained());
        for bits in 1..=16i64 {
            let feasible = radix
                .space
                .is_feasible(&Configuration::new(vec![Value::Int(bits)]));
            assert_eq!(feasible, 64 % bits == 0, "chunk_bits {bits}");
        }
        let repaired = radix
            .space
            .repair(&Configuration::new(vec![Value::Int(7)]))
            .expect("repairable");
        assert_eq!(repaired.get(0).as_i64(), 4);
    }

    #[test]
    fn sort_request_sorts_and_tunes_per_class() {
        let sites = SortSites::register("tuned-test", NominalKind::EpsilonGreedy(0.10), 23);
        let mut rng = autotune::rng::Rng::new(7);
        for n in [5usize, 70, 300] {
            let class = size_class(n);
            let before = sites.class_site(class).calls();
            for _ in 0..4 {
                let mut data: Vec<u64> = (0..n).map(|_| rng.next_u64()).collect();
                let mut want = data.clone();
                let (got_class, ms) = sort_request(&sites, &mut data);
                want.sort_unstable();
                assert_eq!(data, want);
                assert_eq!(got_class, class);
                assert!(ms >= 0.0);
            }
            assert_eq!(sites.class_site(class).calls(), before + 4);
        }
    }
}
