//! Context-keyed, site-dispatched sorting: input size **and
//! presortedness** as context dimensions of the tuning problem.
//!
//! One tuner for "sorting" would learn a single global compromise — but
//! the whole point of this workload is that the winner *flips with the
//! input class*: insertion at n ≲ 64, comparison sorts in the middle,
//! radix at large integer n — and at a fixed size, a nearly-sorted input
//! favors adaptive variants while a random one favors radix. So every
//! request is described by a [`SortKey`] — its [`size_class`] (the
//! power-of-two ceiling of `n`, clamped to
//! `[2^MIN_CLASS_LOG2, 2^MAX_CLASS_LOG2]`) × its [`presort_class`]
//! (bucketed ascending-runs count) — and a [`SortSites`] table maps keys
//! to tuning sites through [`autotune::context::ContextSites`]. Every
//! key converges independently to its own winner; nothing about the
//! tuner itself changes — context is just more sites, allocated on
//! demand and warm-started from the nearest already-learned key.
//!
//! Measurement is the second novelty: a single small-array sort is cheaper
//! than a timer tick, so the tuning path times `k` back-to-back sorts of
//! copies of the same unsorted input and divides
//! ([`autotune::robust::batched_time_ms`]), while exploit-path production
//! traffic pays exactly one sort and the site guard's ordinary single-shot
//! clock — see [`sort_request`].

use crate::{heap, insertion, merge, pdq, radix};
use autotune::context::{ContextKey, ContextSites};
use autotune::param::{Parameter, Value};
use autotune::rng::Rng;
use autotune::robust::{batched_time_ms, MeasureOutcome};
use autotune::site::{Site, SiteSpec};
use autotune::space::{Configuration, Constraint, SearchSpace};
use autotune::two_phase::{AlgorithmSpec, NominalKind};

/// Names of the five sort variants, index-aligned with the algorithm
/// indices of every site built from [`sort_site_spec`] and with
/// [`sort_with`].
pub const ALGORITHM_NAMES: [&str; 5] = ["insertion", "heap", "merge", "introsort", "radix-lsd"];

/// Smallest size-class exponent: arrays of up to `2^MIN_CLASS_LOG2`
/// elements share the bottom class.
pub const MIN_CLASS_LOG2: u32 = 3;

/// Largest size-class exponent: arrays beyond `2^MAX_CLASS_LOG2` elements
/// share the top class.
pub const MAX_CLASS_LOG2: u32 = 14;

/// Number of size classes, and the number of sites a [`SortSites`] table
/// registers.
pub const NUM_CLASSES: usize = (MAX_CLASS_LOG2 - MIN_CLASS_LOG2 + 1) as usize;

/// The size class of an `n`-element sort request: the power-of-two ceiling
/// exponent `⌈log₂ n⌉`, clamped into
/// `[MIN_CLASS_LOG2, MAX_CLASS_LOG2]` = `[3, 14]`. Total (every `n`,
/// including 0, maps to exactly one class) and stable (a pure function of
/// `n`); boundary sizes `2^k` and `2^k + 1` land in adjacent classes `k`
/// and `k + 1`.
///
/// This table is the **canonical class → bucket reference** (EXPERIMENTS.md
/// links here rather than restating it):
///
/// | class | request sizes `n`  | | class | request sizes `n` |
/// |------:|--------------------|-|------:|-------------------|
/// |     3 | 0 – 8              | |     9 | 257 – 512         |
/// |     4 | 9 – 16             | |    10 | 513 – 1024        |
/// |     5 | 17 – 32            | |    11 | 1025 – 2048       |
/// |     6 | 33 – 64            | |    12 | 2049 – 4096       |
/// |     7 | 65 – 128           | |    13 | 4097 – 8192       |
/// |     8 | 129 – 256          | |    14 | 8193 and up       |
pub fn size_class(n: usize) -> u32 {
    let n = n.max(1) as u64;
    let ceil_log2 = if n <= 1 {
        0
    } else {
        64 - (n - 1).leading_zeros()
    };
    ceil_log2.clamp(MIN_CLASS_LOG2, MAX_CLASS_LOG2)
}

/// Names of the three presortedness classes, index-aligned with
/// [`presort_class`].
pub const PRESORT_NAMES: [&str; 3] = ["nearly-sorted", "partial", "random"];

/// Number of presortedness classes.
pub const NUM_PRESORT_CLASSES: usize = PRESORT_NAMES.len();

/// Presort class of inputs produced by random key generation.
pub const PRESORT_RANDOM: u32 = 2;

/// Presort class of inputs produced by [`nearly_sorted_input`].
pub const PRESORT_NEARLY_SORTED: u32 = 0;

/// Number of ascending runs in `data`: maximal non-descending stretches
/// (1 for sorted or empty input, up to `n` for a descending one). The raw
/// presortedness feature, bucketed by [`presort_class`].
pub fn runs(data: &[u64]) -> usize {
    if data.is_empty() {
        return 1;
    }
    1 + data.windows(2).filter(|w| w[0] > w[1]).count()
}

/// The presortedness class of a sort request, bucketing [`runs`] relative
/// to the input length: `0` (nearly-sorted, runs ≤ max(1, n/16)), `1`
/// (partially sorted, runs ≤ max(2, n/4)) or `2` (random). Like
/// [`size_class`] it is total and a pure function of the data — tests can
/// regenerate an input stream and replay its exact dispatch schedule.
pub fn presort_class(data: &[u64]) -> u32 {
    let n = data.len();
    let r = runs(data);
    if r <= (n / 16).max(1) {
        0
    } else if r <= (n / 4).max(2) {
        1
    } else {
        2
    }
}

/// A sorted-ascending array of `n` random values with `n/32` random
/// adjacent swaps applied — guaranteed to land in presort class 0
/// (each adjacent swap adds at most one run, so
/// [`runs`] ≤ 1 + n/32 ≤ max(1, n/16)). The workload generator for the
/// nearly-sorted half of the `contexts` study and bench.
pub fn nearly_sorted_input(n: usize, rng: &mut Rng) -> Vec<u64> {
    let mut data: Vec<u64> = (0..n).map(|_| rng.next_u64()).collect();
    data.sort_unstable();
    for _ in 0..n / 32 {
        let i = rng.pick_index(n - 1);
        if data[i] < data[i + 1] {
            data.swap(i, i + 1);
        }
    }
    data
}

/// The context key of a sort request: [`size_class`] × [`presort_class`].
/// The winner flips along both axes — insertion → introsort → radix with
/// growing size, and adaptive variants overtake radix on nearly-sorted
/// inputs at sizes where radix wins on random ones.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct SortKey {
    /// The [`size_class`] bucket exponent.
    pub class: u32,
    /// The [`presort_class`] bucket.
    pub presort: u32,
}

impl SortKey {
    /// The key of a concrete input: `(size_class(len), presort_class)`.
    pub fn of(data: &[u64]) -> SortKey {
        SortKey {
            class: size_class(data.len()),
            presort: presort_class(data),
        }
    }

    /// A key from raw bucket indices (clamped into range).
    pub fn new(class: u32, presort: u32) -> SortKey {
        SortKey {
            class: class.clamp(MIN_CLASS_LOG2, MAX_CLASS_LOG2),
            presort: presort.min(NUM_PRESORT_CLASSES as u32 - 1),
        }
    }
}

impl ContextKey for SortKey {
    fn features(&self) -> Vec<i64> {
        vec![self.class as i64, self.presort as i64]
    }

    fn label(&self) -> String {
        format!(
            "c{:02}/{}",
            self.class, PRESORT_NAMES[self.presort as usize]
        )
    }
}

fn cutoff_space() -> SearchSpace {
    SearchSpace::new(vec![Parameter::interval("insertion_cutoff", 1, 64)])
}

fn radix_space() -> SearchSpace {
    SearchSpace::new(vec![Parameter::interval("chunk_bits", 1, 16)]).with_constraint(
        Constraint::new("pass-aligned", |c| {
            let bits = c.get(0).as_i64();
            (1..=16).contains(&bits) && 64 % bits == 0
        })
        .with_repair(|c| {
            let mut bits = c.get(0).as_i64().clamp(1, 16);
            while 64 % bits != 0 {
                bits -= 1;
            }
            Configuration::new(vec![Value::Int(bits)])
        }),
    )
}

/// Algorithm specs for the five sort variants, index-aligned with
/// [`ALGORITHM_NAMES`]. Insertion and heapsort expose no parameters; merge
/// and introsort tune their `insertion_cutoff ∈ [1, 64]`; radix tunes
/// `chunk_bits ∈ [1, 16]` under a `pass-aligned` constraint (the width
/// must divide 64, repaired by rounding down — only {1, 2, 4, 8, 16} are
/// feasible pass schedules).
pub fn sort_algorithm_specs() -> Vec<AlgorithmSpec> {
    vec![
        AlgorithmSpec::untunable(ALGORITHM_NAMES[0]),
        AlgorithmSpec::untunable(ALGORITHM_NAMES[1]),
        AlgorithmSpec::new(ALGORITHM_NAMES[2], cutoff_space()),
        AlgorithmSpec::new(ALGORITHM_NAMES[3], cutoff_space()),
        AlgorithmSpec::new(ALGORITHM_NAMES[4], radix_space()),
    ]
}

/// A site blueprint selecting over the five sort variants
/// ([`sort_algorithm_specs`]) — one of these per size class makes up a
/// [`SortSites`] table.
pub fn sort_site_spec(name: impl Into<String>, nominal: NominalKind, seed: u64) -> SiteSpec {
    SiteSpec::algorithms(name, sort_algorithm_specs(), nominal, seed)
}

fn cutoff_of(config: &Configuration) -> usize {
    config.get(0).as_i64().clamp(1, 64) as usize
}

fn chunk_bits_of(config: &Configuration) -> u32 {
    config.get(0).as_i64().clamp(1, 16) as u32
}

/// Run sort variant `algorithm` (an index into [`ALGORITHM_NAMES`]) on
/// `data` with its parameters drawn from `config`. Panics on an
/// out-of-range algorithm index.
pub fn sort_with(algorithm: usize, config: &Configuration, data: &mut [u64]) {
    match algorithm {
        0 => insertion::sort(data),
        1 => heap::sort(data),
        2 => merge::sort(data, cutoff_of(config)),
        3 => pdq::sort(data, cutoff_of(config)),
        4 => radix::sort(data, chunk_bits_of(config)),
        other => panic!(
            "smallsort has {} algorithms, got index {other}",
            ALGORITHM_NAMES.len()
        ),
    }
}

/// The context table of the sort workload: one tuning site per
/// [`SortKey`], allocated through [`autotune::context::ContextSites`].
///
/// [`SortSites::register`] sizes the table to cover the whole key space
/// (size classes × presort classes), so no binding is ever evicted and
/// the raw [`Site`] handles returned by [`SortSites::class_site`] /
/// [`SortSites::key_site`] stay stable — the configuration studies and
/// the serving loop rely on that. [`SortSites::register_bounded`]
/// exposes the LRU-bounded flavor for churn experiments.
#[derive(Debug)]
pub struct SortSites {
    table: ContextSites<SortKey>,
}

impl SortSites {
    /// Register a full-coverage table: capacity for every
    /// `size class × presort class` key, sites named `{prefix}/slotNN`
    /// and allocated lazily on first dispatch of each key. Each key's
    /// site selects over [`sort_algorithm_specs`] with the given phase-2
    /// strategy and a per-key seed derived from `seed`.
    pub fn register(prefix: &str, nominal: NominalKind, seed: u64) -> SortSites {
        Self::register_bounded(prefix, NUM_CLASSES * NUM_PRESORT_CLASSES, nominal, seed)
    }

    /// Register a table owning at most `capacity` concurrent sites —
    /// the LRU-bounded flavor ([`autotune::context`] module docs). With
    /// `capacity` below the live key count, raw site handles are only
    /// valid until the next eviction; prefer [`sort_request`] /
    /// [`SortSites::table`] accessors then.
    pub fn register_bounded(
        prefix: &str,
        capacity: usize,
        nominal: NominalKind,
        seed: u64,
    ) -> SortSites {
        SortSites {
            table: ContextSites::register(prefix, capacity, move |k: &SortKey| {
                sort_site_spec(
                    k.label(),
                    nominal,
                    seed.wrapping_mul(0x9E37_79B9_7F4A_7C15)
                        .wrapping_add(((k.class as u64) << 2) | k.presort as u64),
                )
            }),
        }
    }

    /// Disable nearest-neighbor warm-starting (the cold baseline the
    /// `contexts` study compares against).
    pub fn without_warm_start(self) -> SortSites {
        SortSites {
            table: self.table.with_warm_start(false),
        }
    }

    /// The underlying context table, for stats and key enumeration.
    pub fn table(&self) -> &ContextSites<SortKey> {
        &self.table
    }

    /// The site owning `key`, admitted on demand.
    pub fn key_site(&self, key: SortKey) -> Site {
        self.table.resident_site(&key)
    }

    /// The site owning size class `class` (clamped into the class range)
    /// for **random** inputs — the presort axis' default bucket, and the
    /// per-class site of the pre-presortedness table layout.
    pub fn class_site(&self, class: u32) -> Site {
        self.key_site(SortKey::new(class, PRESORT_RANDOM))
    }

    /// The site an `n`-element random-input request dispatches to.
    pub fn site_for(&self, n: usize) -> Site {
        self.class_site(size_class(n))
    }

    /// Every class exponent, smallest first.
    pub fn classes() -> impl Iterator<Item = u32> {
        MIN_CLASS_LOG2..=MAX_CLASS_LOG2
    }
}

/// Sort `data` ascending through its context key's tuning site; the
/// serving entry point. Returns `(key, per_call_ms)`.
///
/// The key ([`SortKey::of`]: size class × presortedness) is computed
/// from the data *before* sorting — one O(n) runs scan, the price of the
/// context dispatch. The key's site picks the variant and configuration.
/// A claim-winning call is a tuning iteration, and one small sort is
/// cheaper than a timer tick — so it is timed by [`batched_time_ms`]:
/// `k` back-to-back sorts of fresh copies of the *unsorted* input
/// (re-sorting the already-sorted output would hand insertion sort its
/// O(n) best case), divided by `k`. The per-batch memcpy restoring the
/// input is inside the timed region; its cost is identical across
/// variants, a constant per-key offset that cannot reorder them.
/// Contended exploit-path calls pay exactly one sort and the guard's
/// single-shot clock — those quantized samples feed telemetry, never the
/// tuner.
pub fn sort_request_keyed(sites: &SortSites, data: &mut [u64]) -> (SortKey, f64) {
    let key = SortKey::of(data);
    let guard = sites.table.dispatch(&key);
    let algorithm = guard.algorithm();
    if guard.is_tuning() {
        let config = guard.config().clone();
        let original = data.to_vec();
        let mut scratch = original.clone();
        let ms = batched_time_ms(|| {
            scratch.copy_from_slice(&original);
            sort_with(algorithm, &config, &mut scratch);
        });
        data.copy_from_slice(&scratch);
        guard.post_outcome(MeasureOutcome::from_value(ms));
        (key, ms)
    } else {
        sort_with(algorithm, guard.config(), data);
        let ms = guard.post();
        (key, ms)
    }
}

/// [`sort_request_keyed`], reporting only the size class — the wire- and
/// study-facing shape predating the presortedness axis.
pub fn sort_request(sites: &SortSites, data: &mut [u64]) -> (u32, f64) {
    let (key, ms) = sort_request_keyed(sites, data);
    (key.class, ms)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn size_class_boundaries_are_adjacent() {
        for k in MIN_CLASS_LOG2..MAX_CLASS_LOG2 {
            assert_eq!(size_class(1 << k), k, "2^{k} belongs to class {k}");
            assert_eq!(size_class((1 << k) + 1), k + 1, "2^{k}+1 spills over");
        }
        assert_eq!(size_class(0), MIN_CLASS_LOG2);
        assert_eq!(size_class(1), MIN_CLASS_LOG2);
        assert_eq!(size_class(usize::MAX), MAX_CLASS_LOG2);
    }

    #[test]
    fn specs_declare_the_pass_alignment_constraint() {
        let specs = sort_algorithm_specs();
        assert_eq!(specs.len(), ALGORITHM_NAMES.len());
        let radix = &specs[4];
        assert!(radix.space.is_constrained());
        for bits in 1..=16i64 {
            let feasible = radix
                .space
                .is_feasible(&Configuration::new(vec![Value::Int(bits)]));
            assert_eq!(feasible, 64 % bits == 0, "chunk_bits {bits}");
        }
        let repaired = radix
            .space
            .repair(&Configuration::new(vec![Value::Int(7)]))
            .expect("repairable");
        assert_eq!(repaired.get(0).as_i64(), 4);
    }

    #[test]
    fn sort_request_sorts_and_tunes_per_key() {
        let sites = SortSites::register("tuned-test", NominalKind::EpsilonGreedy(0.10), 23);
        let mut rng = autotune::rng::Rng::new(7);
        let mut expected: std::collections::HashMap<SortKey, u64> =
            std::collections::HashMap::new();
        for n in [5usize, 70, 300] {
            for round in 0..4 {
                let mut data: Vec<u64> = if round % 2 == 0 {
                    (0..n).map(|_| rng.next_u64()).collect()
                } else {
                    nearly_sorted_input(n, &mut rng)
                };
                let mut want = data.clone();
                let key = SortKey::of(&data);
                assert_eq!(key.class, size_class(n));
                let (got_key, ms) = sort_request_keyed(&sites, &mut data);
                want.sort_unstable();
                assert_eq!(data, want);
                assert_eq!(got_key, key);
                assert!(ms >= 0.0);
                *expected.entry(key).or_insert(0) += 1;
            }
        }
        for (key, count) in expected {
            assert_eq!(
                sites.table().key_stats(&key).unwrap().calls,
                count,
                "exact per-key accounting for {key:?}"
            );
        }
    }

    #[test]
    fn runs_counts_ascending_stretches() {
        assert_eq!(runs(&[]), 1);
        assert_eq!(runs(&[5]), 1);
        assert_eq!(runs(&[1, 2, 3]), 1);
        assert_eq!(runs(&[1, 1, 2]), 1); // non-descending, not strict
        assert_eq!(runs(&[3, 2, 1]), 3);
        assert_eq!(runs(&[1, 3, 2, 4]), 2);
    }

    #[test]
    fn presort_class_buckets_by_relative_runs() {
        let sorted: Vec<u64> = (0..256).collect();
        assert_eq!(presort_class(&sorted), PRESORT_NEARLY_SORTED);
        let descending: Vec<u64> = (0..256).rev().collect();
        assert_eq!(presort_class(&descending), PRESORT_RANDOM);
        // 256 elements, 32 runs: above n/16 = 16, at or below n/4 = 64.
        let sawtooth: Vec<u64> = (0..256u64).map(|i| (i % 8) * 1000 + i / 8).collect();
        assert!(matches!(presort_class(&sawtooth), 1));
    }

    #[test]
    fn nearly_sorted_input_lands_in_class_zero() {
        let mut rng = autotune::rng::Rng::new(99);
        for n in [2usize, 8, 31, 32, 100, 1000, 5000] {
            let data = nearly_sorted_input(n, &mut rng);
            assert_eq!(data.len(), n);
            assert_eq!(
                presort_class(&data),
                PRESORT_NEARLY_SORTED,
                "n = {n}, runs = {}",
                runs(&data)
            );
        }
    }

    #[test]
    fn sort_key_features_and_distance() {
        let a = SortKey::new(5, PRESORT_RANDOM);
        let b = SortKey::new(8, PRESORT_NEARLY_SORTED);
        assert_eq!(a.features(), vec![5, 2]);
        assert_eq!(a.distance(&b), 5); // |5-8| + |2-0|
        assert_eq!(a.label(), "c05/random");
        assert_eq!(b.label(), "c08/nearly-sorted");
        // Out-of-range inputs clamp.
        assert_eq!(SortKey::new(0, 9), SortKey::new(MIN_CLASS_LOG2, 2));
    }
}
