//! Linear insertion sort: quadratic in theory, unbeatable in practice on
//! arrays small enough to live in a couple of cache lines — the reason
//! every serious sort (including [`crate::merge`] and [`crate::pdq`] here)
//! bottoms out in it below some cutoff. As a member of 𝒜 it is the
//! expected per-size-class winner for n ≲ 64.

/// Sort `data` ascending by straight insertion: each element is slid left
/// over its larger predecessors. Stable, in-place, allocation-free; O(n)
/// on already-sorted input.
pub fn sort(data: &mut [u64]) {
    for i in 1..data.len() {
        let key = data[i];
        let mut j = i;
        while j > 0 && data[j - 1] > key {
            data[j] = data[j - 1];
            j -= 1;
        }
        data[j] = key;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sorts_small_arrays() {
        let mut xs = [5u64, 1, 4, 2, 3];
        sort(&mut xs);
        assert_eq!(xs, [1, 2, 3, 4, 5]);
        let mut empty: [u64; 0] = [];
        sort(&mut empty);
        let mut one = [9u64];
        sort(&mut one);
        assert_eq!(one, [9]);
    }

    #[test]
    fn handles_duplicates_and_reverse() {
        let mut xs = [3u64, 3, 2, 2, 1, 1];
        sort(&mut xs);
        assert_eq!(xs, [1, 1, 2, 2, 3, 3]);
    }
}
