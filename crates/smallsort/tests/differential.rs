//! Differential correctness: every sort variant, across every parameter
//! value the tuner can propose, must agree exactly with the standard
//! library's reference sort on adversarially shaped inputs. Equality
//! against the sorted reference copy is a full multiset check — same
//! elements, same order — so a variant that drops, duplicates or
//! misplaces a key cannot pass.

use autotune::param::Value;
use autotune::rng::Rng;
use autotune::space::Configuration;
use smallsort::{sort_with, ALGORITHM_NAMES};

/// Sizes spanning every size class and its boundaries.
const SIZES: [usize; 14] = [0, 1, 2, 3, 7, 8, 9, 15, 16, 64, 65, 1000, 4096, 5000];

fn shapes(n: usize, rng: &mut Rng) -> Vec<(&'static str, Vec<u64>)> {
    let random: Vec<u64> = (0..n).map(|_| rng.next_u64()).collect();
    let sorted: Vec<u64> = (0..n as u64).collect();
    let reversed: Vec<u64> = (0..n as u64).rev().collect();
    let few_distinct: Vec<u64> = (0..n).map(|_| rng.next_below(4)).collect();
    let all_equal = vec![u64::MAX; n];
    let sawtooth: Vec<u64> = (0..n as u64).map(|i| i % 17).collect();
    vec![
        ("random", random),
        ("sorted", sorted),
        ("reversed", reversed),
        ("few-distinct", few_distinct),
        ("all-equal", all_equal),
        ("sawtooth", sawtooth),
    ]
}

fn configs_for(algorithm: usize) -> Vec<Configuration> {
    match algorithm {
        // insertion / heap: no parameters.
        0 | 1 => vec![Configuration::empty()],
        // merge / introsort: cutoff extremes and the default middle.
        2 | 3 => [1i64, 8, 33, 64]
            .iter()
            .map(|&c| Configuration::new(vec![Value::Int(c)]))
            .collect(),
        // radix: every feasible chunk width.
        4 => [1i64, 2, 4, 8, 16]
            .iter()
            .map(|&b| Configuration::new(vec![Value::Int(b)]))
            .collect(),
        _ => unreachable!(),
    }
}

#[test]
fn every_variant_matches_the_reference_sort() {
    let mut rng = Rng::new(0xD1FF);
    for n in SIZES {
        for (shape, input) in shapes(n, &mut rng) {
            let mut want = input.clone();
            want.sort_unstable();
            for (algorithm, name) in ALGORITHM_NAMES.iter().enumerate() {
                for config in configs_for(algorithm) {
                    let mut got = input.clone();
                    sort_with(algorithm, &config, &mut got);
                    assert_eq!(
                        got, want,
                        "{name} with {config:?} diverged on {shape} input of {n} elements"
                    );
                }
            }
        }
    }
}

#[test]
fn radix_handles_extreme_keys() {
    let input = vec![
        u64::MAX,
        0,
        1,
        u64::MAX - 1,
        1 << 63,
        (1 << 63) - 1,
        0xFFFF_FFFF,
        0x1_0000_0000,
    ];
    let mut want = input.clone();
    want.sort_unstable();
    for bits in [1u32, 2, 4, 8, 16] {
        let mut got = input.clone();
        smallsort::radix::sort(&mut got, bits);
        assert_eq!(got, want, "chunk_bits {bits}");
    }
}
