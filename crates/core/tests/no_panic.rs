//! Property-style robustness suite: no phase-2 strategy may panic, and no
//! algorithm may lose its strictly-positive selection probability, no matter
//! how degenerate the measurement stream gets.
//!
//! The paper's strategies all divide by measured runtimes (inverse-runtime
//! weights), so the adversarial streams below concentrate on the values that
//! historically broke that math: exact zeros, subnormals, near-overflow
//! magnitudes, negatives from broken timers, and non-finite values that
//! bypassed the robust measurement layer.

use autotune::prelude::*;
use autotune::rng::Rng;
use autotune::robust::MeasureOutcome;

/// The eight strategies under test: the paper's six plus the two extras the
/// crate ships (Softmax baseline, EpsilonGradient future-work variant).
fn all_kinds() -> Vec<NominalKind> {
    let mut kinds = NominalKind::paper_set();
    kinds.push(NominalKind::Softmax(0.5, 16));
    kinds.push(NominalKind::EpsilonGradient(0.1, 16));
    kinds
}

/// A named adversarial stream: measurement value as a function of iteration.
type Stream = (&'static str, fn(usize) -> f64);

/// Adversarial measurement streams, each a function of the iteration index.
fn streams() -> Vec<Stream> {
    vec![
        ("all-zero", |_| 0.0),
        ("subnormal", |_| 5e-324),
        ("near-overflow", |_| 1e308),
        ("alternating-extremes", |i| {
            if i % 2 == 0 {
                5e-324
            } else {
                1e308
            }
        }),
        ("negative-timer", |i| -1.0 - (i % 5) as f64),
        ("mixed-nonfinite", |i| match i % 4 {
            0 => f64::NAN,
            1 => f64::INFINITY,
            2 => f64::NEG_INFINITY,
            _ => 3.0,
        }),
        ("spiky", |i| if i % 17 == 0 { 1e9 } else { 2.0 }),
    ]
}

#[test]
fn no_strategy_panics_on_adversarial_streams() {
    const ALGS: usize = 3;
    const ITERS: usize = 1_000;
    for kind in all_kinds() {
        for (stream_name, stream) in streams() {
            let mut strategy = kind.build(ALGS, 0xFA17);
            let mut counts = [0usize; ALGS];
            for i in 0..ITERS {
                let a = strategy.select();
                assert!(a < ALGS, "{} on {stream_name}: index {a}", strategy.name());
                counts[a] += 1;
                strategy.report(a, stream(i));
                // Sprinkle explicit failure reports through the stream too.
                if i % 97 == 0 {
                    strategy.report_failure(a);
                }
            }
            assert!(
                counts.iter().all(|&c| c > 0),
                "{} on {stream_name}: an algorithm was excluded ({counts:?})",
                strategy.name()
            );
            // Whatever the stream did, the recorded history must be finite.
            for h in strategy.histories() {
                if let Some(v) = h.last_value() {
                    assert!(v.is_finite(), "{stream_name} left a non-finite sample");
                }
            }
        }
    }
}

/// CS1-like fixed-cost fixture: three "matchers" with constant runtimes, the
/// middle one fastest. Mirrors the shape of the paper's first case study
/// without the actual string-matching kernels.
fn fixture_specs() -> Vec<AlgorithmSpec> {
    vec![
        AlgorithmSpec::untunable("slow"),
        AlgorithmSpec::untunable("fast"),
        AlgorithmSpec::untunable("slower"),
    ]
}

const FIXTURE_COSTS: [f64; 3] = [8.0, 5.0, 12.0];

/// The PR's acceptance scenario: a 500-iteration tuning loop with 10%
/// injected measurement failures must complete under every paper strategy,
/// converge to the fastest algorithm, and never drive any algorithm's
/// selection probability to zero.
#[test]
fn two_phase_survives_ten_percent_faults_and_converges() {
    const ITERS: usize = 500;
    for kind in NominalKind::paper_set() {
        let mut tuner = TwoPhaseTuner::new(fixture_specs(), kind, 0xC51);
        let mut fault_rng = Rng::new(7);
        let mut counts = [0usize; 3];
        for _ in 0..ITERS {
            let sample = tuner.step_fallible(|a, _c| {
                if fault_rng.next_bool(0.10) {
                    MeasureOutcome::Failed("injected transient fault".into())
                } else {
                    MeasureOutcome::Ok(FIXTURE_COSTS[a])
                }
            });
            assert!(sample.value.is_finite());
            counts[sample.algorithm] += 1;
        }
        let name = tuner.strategy_name();
        assert_eq!(tuner.log().len(), ITERS, "{name}: loop must complete");
        let injected: usize = tuner.failure_counts().iter().sum();
        assert!(injected > 20, "{name}: expected ~50 faults, got {injected}");
        assert_eq!(
            tuner.best_algorithm(),
            Some(1),
            "{name}: must still converge to the fastest algorithm"
        );
        assert!(
            counts.iter().all(|&c| c > 0),
            "{name}: an algorithm was excluded under faults ({counts:?})"
        );
    }
}

/// Same fault rate, but with tunable algorithms so the phase-1 searchers'
/// ask/tell protocol is exercised under failures as well.
#[test]
fn two_phase_with_tunable_spaces_survives_faults() {
    let specs = vec![
        AlgorithmSpec::new(
            "poly-a",
            SearchSpace::new(vec![Parameter::ratio("x", 0, 40)]),
        ),
        AlgorithmSpec::new(
            "poly-b",
            SearchSpace::new(vec![Parameter::ratio("y", 0, 40)]),
        ),
    ];
    let mut tuner = TwoPhaseTuner::new(specs, NominalKind::SlidingWindowAuc(16), 0xBEEF);
    let mut fault_rng = Rng::new(21);
    for _ in 0..500 {
        tuner.step_fallible(|a, c| {
            if fault_rng.next_bool(0.10) {
                MeasureOutcome::TimedOut
            } else {
                let x = c.get(0).as_f64();
                let target = if a == 0 { 30.0 } else { 10.0 };
                MeasureOutcome::Ok(1.0 + 0.01 * (x - target).powi(2))
            }
        });
    }
    let (_, _, v) = tuner.best().expect("a best must exist");
    assert!(v.is_finite() && v < 5.0, "tuning still progresses: {v}");
    assert!(tuner.failure_counts().iter().sum::<usize>() > 20);
}

/// Degenerate coordinates — NaN and ±infinity — must never panic anywhere
/// in the space layer: they project to each parameter's minimum instead.
/// Historically `Value::as_i64` asserted on NaN floats and
/// `clamp_continuous` mapped ±∞ through `f64 as i64` saturation, so a
/// degenerate Nelder-Mead simplex (all-equal vertices produce NaN
/// centroids) could kill the tuning thread.
#[test]
fn non_finite_coordinates_never_panic() {
    use autotune::param::Value;
    let space = SearchSpace::new(vec![
        Parameter::ratio("threads", 1, 8),
        Parameter::interval("cutoff", -10, 50),
        Parameter::ratio_f64("alpha", 0.5, 2.0),
    ]);
    for bad in [f64::NAN, f64::INFINITY, f64::NEG_INFINITY] {
        let c = space.clamp(&[bad, bad, bad]);
        assert!(space.contains(&c), "{bad} must project into the space");
        assert_eq!(c.get(0).as_i64(), 1, "non-finite projects to the minimum");
        assert_eq!(c.get(1).as_i64(), -10);
        assert_eq!(c.get(2).as_f64(), 0.5);
        let c = space.clamp_feasible(&[bad, 0.0, 1.0]);
        assert!(space.contains(&c));
    }
    // as_i64 is total on every float, including the non-finite ones.
    assert_eq!(Value::Float(f64::NAN).as_i64(), 0);
    assert_eq!(Value::Float(f64::INFINITY).as_i64(), i64::MAX);
    assert_eq!(Value::Float(f64::NEG_INFINITY).as_i64(), i64::MIN);
}

/// A measurement function that returns NaN-breeding values must not crash a
/// Nelder-Mead loop: the simplex arithmetic (centroids, reflections over
/// penalty-valued vertices) stays inside the box thanks to the projecting
/// clamp, and the loop keeps proposing in-space configurations.
#[test]
fn nelder_mead_survives_nan_breeding_measurements() {
    let space = SearchSpace::new(vec![
        Parameter::ratio("x", 0, 20),
        Parameter::ratio("y", 0, 20),
    ]);
    let mut t = OnlineTuner::new(
        NelderMead::new(space.clone(), NelderMeadOptions::default()),
        Termination::Never,
    );
    let mut i = 0usize;
    let mut m = |c: &Configuration| {
        assert!(space.contains(c), "proposed out-of-space: {c:?}");
        i += 1;
        match i % 5 {
            0 => f64::NAN,
            1 => f64::INFINITY,
            2 => 0.0,
            _ => (c.get(0).as_f64() - 7.0).powi(2) + 1.0,
        }
    };
    for _ in 0..300 {
        t.step(&mut m);
    }
    assert_eq!(t.iteration(), 300, "loop must complete without panicking");
}

/// Abandoning a proposal mid-flight (measurement never ran at all) must be
/// recoverable and idempotent for every strategy.
#[test]
fn abandon_between_next_and_report_never_poisons() {
    for kind in all_kinds() {
        let mut tuner = TwoPhaseTuner::new(fixture_specs(), kind, 3);
        for i in 0..200 {
            let (a, _c) = tuner.next();
            if i % 7 == 0 {
                tuner.abandon();
                assert!(tuner.abandon().is_none(), "second abandon is a no-op");
            } else {
                tuner.report(FIXTURE_COSTS[a]);
            }
        }
        assert_eq!(tuner.best_algorithm(), Some(1));
    }
}
