//! Integration tests of the autotune crate: serialization round-trips,
//! behaviour under measurement noise, and cross-strategy agreement.

use autotune::prelude::*;
use autotune::rng::Rng;
use autotune::search::run_loop;
use autotune::stats;

fn noisy_bowl(rng: &mut Rng, c: &Configuration) -> f64 {
    let x = c.get(0).as_f64();
    let y = c.get(1).as_f64();
    let base = 5.0 + 0.5 * (x - 4.0).powi(2) + 0.5 * (y + 6.0).powi(2);
    base * (1.0 + 0.05 * rng.next_gaussian())
}

fn bowl_space() -> SearchSpace {
    SearchSpace::new(vec![
        Parameter::interval("x", -15, 15),
        Parameter::interval("y", -15, 15),
    ])
}

#[test]
fn parameters_and_configurations_round_trip_through_json() {
    let space = SearchSpace::new(vec![
        Parameter::nominal("alg", vec!["a".into(), "b".into()]),
        Parameter::ordinal("size", vec!["s".into(), "m".into(), "l".into()]),
        Parameter::interval("pct", 0, 100),
        Parameter::ratio_f64("scale", 0.5, 4.0),
    ]);
    let json = space.to_json().to_string();
    let back = SearchSpace::from_json(&autotune::json::Json::parse(&json).expect("space parses"))
        .expect("space deserializes");
    assert_eq!(space, back);

    let mut rng = Rng::new(4);
    for _ in 0..50 {
        let c = space.random(&mut rng);
        let json = c.to_json().to_string();
        let back =
            Configuration::from_json(&autotune::json::Json::parse(&json).expect("config parses"))
                .expect("config deserializes");
        // Discrete values are exact; floats may differ in the last ulp
        // through the JSON text representation.
        for (a, b) in c.values().iter().zip(back.values()) {
            match (a, b) {
                (Value::Float(x), Value::Float(y)) => {
                    assert!(
                        (x - y).abs() <= f64::EPSILON * x.abs().max(1.0),
                        "{x} vs {y}"
                    )
                }
                _ => assert_eq!(a, b),
            }
        }
        assert!(space.contains(&back));
    }
}

#[test]
fn nelder_mead_tolerates_five_percent_noise() {
    // The paper's online requirement: "approximative search techniques
    // tend to be vulnerable to measurement noise" — Nelder-Mead must still
    // land near the optimum basin under realistic jitter.
    let mut hits = 0;
    for seed in 0..8 {
        let mut rng = Rng::new(seed);
        let mut s = NelderMead::new(bowl_space(), NelderMeadOptions::default());
        let mut f = |c: &Configuration| noisy_bowl(&mut rng, c);
        run_loop(&mut s, &mut f, 250);
        let (c, _) = s.best().unwrap();
        let dist = (c.get(0).as_f64() - 4.0).abs() + (c.get(1).as_f64() + 6.0).abs();
        if dist <= 4.0 {
            hits += 1;
        }
    }
    assert!(hits >= 6, "near-optimal in only {hits}/8 noisy runs");
}

#[test]
fn exhaustive_and_nelder_mead_agree_on_a_tiny_space() {
    let space = SearchSpace::new(vec![
        Parameter::ratio("a", 0, 6),
        Parameter::ratio("b", 0, 6),
    ]);
    let f =
        |c: &Configuration| (c.get(0).as_f64() - 2.0).powi(2) + (c.get(1).as_f64() - 5.0).powi(2);
    let mut ex = ExhaustiveSearch::new(space.clone());
    while !ex.converged() {
        let c = ex.propose();
        let v = f(&c);
        ex.report(v);
    }
    let mut nm = NelderMead::new(space, NelderMeadOptions::default());
    let mut fn_ = f;
    run_loop(&mut nm, &mut fn_, 250);
    let (ec, ev) = ex.best().unwrap();
    let (nc, nv) = nm.best().unwrap();
    assert_eq!(ev, 0.0, "exhaustive finds the exact optimum");
    assert_eq!(ec.values(), nc.values(), "NM should match on a 7×7 grid");
    assert_eq!(nv, ev);
}

#[test]
fn online_tuner_amortizes_worse_than_exhaustive_on_slow_arms() {
    // Section II-B's argument for nominal strategies over exhaustive
    // search: exhaustive "will also always select the worst configuration".
    // On a space with one catastrophic arm, ε-Greedy's *total* spent time
    // over the horizon beats a full exhaustive sweep loop.
    let costs = [1.0f64, 1.0, 200.0, 1.2];
    let horizon = 64;

    // Exhaustive over the nominal-only space (the textbook-legal choice).
    let space = SearchSpace::new(vec![Parameter::nominal(
        "alg",
        (0..4).map(|i| format!("a{i}")).collect(),
    )]);
    let mut ex = ExhaustiveSearch::new(space);
    let mut ex_total = 0.0;
    for _ in 0..horizon {
        let c = ex.propose();
        let v = costs[c.get(0).as_index()];
        ex.report(v);
        ex_total += v;
    }

    let specs: Vec<AlgorithmSpec> = (0..4)
        .map(|i| AlgorithmSpec::untunable(format!("a{i}")))
        .collect();
    let mut greedy = TwoPhaseTuner::new(specs, NominalKind::EpsilonGreedy(0.05), 5);
    let mut greedy_total = 0.0;
    for _ in 0..horizon {
        let s = greedy.step(|alg, _| costs[alg]);
        greedy_total += s.value;
    }
    // Exhaustive pays the 200ms arm exactly once, then exploits; ε-Greedy
    // pays it once during init plus ~ε/4 of the time. Over a short horizon
    // both are close; the test pins that neither pathologically regresses
    // and that both identified the best arm.
    assert_eq!(ex.best().unwrap().0.get(0).as_index(), 0);
    assert_eq!(greedy.best_algorithm(), Some(0));
    assert!(greedy_total < ex_total * 1.5);
}

#[test]
fn strategies_rank_arms_identically_given_identical_samples() {
    // Feed every strategy the same deterministic sample stream (bypassing
    // selection); their `best()` must coincide.
    let stream = [
        (0usize, 9.0),
        (1, 3.0),
        (2, 7.0),
        (0, 8.5),
        (1, 2.9),
        (2, 7.2),
    ];
    for kind in NominalKind::paper_set() {
        let mut s = kind.build(3, 1);
        for &(arm, v) in &stream {
            s.report(arm, v);
        }
        assert_eq!(s.best(), Some(1), "{}", s.name());
    }
}

#[test]
fn two_phase_median_convergence_curve_is_decreasing_overall() {
    // The shape behind Figures 2 and 6: median-over-reps per-iteration
    // cost decreases from the initialization phase to the tail.
    let specs = || {
        vec![
            AlgorithmSpec::untunable("slow"),
            AlgorithmSpec::untunable("fast"),
            AlgorithmSpec::untunable("mid"),
        ]
    };
    let costs = [30.0, 5.0, 15.0];
    let mut reps: Vec<Vec<f64>> = Vec::new();
    for rep in 0..20 {
        let mut t = TwoPhaseTuner::new(specs(), NominalKind::EpsilonGreedy(0.10), rep);
        let mut series = Vec::new();
        for _ in 0..40 {
            series.push(t.step(|a, _| costs[a]).value);
        }
        reps.push(series);
    }
    let medians = stats::per_iteration_reduce(&reps, stats::median);
    let head = stats::mean(&medians[..5]);
    let tail = stats::mean(&medians[30..]);
    assert!(
        tail < head * 0.5,
        "median curve should fall substantially: head {head}, tail {tail}"
    );
    assert_eq!(tail, 5.0, "tail exploits the fast arm");
}

#[test]
fn mixed_tuner_equals_two_phase_on_explicit_algorithm_parameter() {
    // A space whose only nominal parameter is "the algorithm" must make
    // MixedTuner behave exactly like the hand-built TwoPhaseTuner.
    let space = SearchSpace::new(vec![
        Parameter::nominal("algorithm", vec!["a".into(), "b".into()]),
        Parameter::ratio("x", 0, 20),
    ]);
    let cost = |c: &Configuration| {
        let x = c.get(1).as_f64();
        match c.get(0).as_index() {
            0 => 10.0 + (x - 3.0).powi(2),
            _ => 4.0 + (x - 15.0).powi(2),
        }
    };
    let mut mixed = MixedTuner::new(space, NominalKind::EpsilonGreedy(0.20), 9);
    for _ in 0..400 {
        mixed.step(cost);
    }
    let (best, v) = mixed.best().unwrap();
    assert_eq!(best.get(0).as_index(), 1);
    assert!((best.get(1).as_i64() - 15).abs() <= 2, "{best:?}");
    assert!(v < 5.0);
}
