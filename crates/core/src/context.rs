//! Context dimensions: keyed families of tuning sites.
//!
//! The paper's central claim is that algorithmic choice should be
//! re-decided per *input context* — the best sort for 20 elements is not
//! the best sort for 20,000, and the best matcher for DNA text is not the
//! best for English. A [`crate::site::Site`] learns one decision; this
//! module learns one decision *per context key*.
//!
//! A [`ContextKey`] is a small, hashable description of the input class
//! (size class, presortedness, alphabet, …) that also exposes an ordered
//! feature vector so keys have a notion of *nearness*. A
//! [`ContextSites`] table maps keys to sites dynamically:
//!
//! * **LRU-bounded allocation** — the table holds at most `capacity`
//!   registry slots in steady state (named `{prefix}/slotNN`). Unbounded
//!   key spaces are safe: when every slot is bound and a new key arrives,
//!   the least recently used *idle* binding is evicted and its slot is
//!   recycled via [`crate::site::Site::rebind`]. Only idle bindings are
//!   ever recycled — if every binding has a call in flight the table
//!   grows by one overflow slot ([`ContextStats::overflows`]) instead of
//!   waiting, so no table method ever blocks on an in-flight guard and
//!   dispatching while already holding a [`ContextGuard`] cannot
//!   deadlock. Registry slots are never leaked per key: the footprint is
//!   `capacity` plus at most the peak number of concurrently in-flight
//!   calls, not the number of distinct keys ever seen.
//! * **Parking** — an evicted key's tuner is parked in a side map, not
//!   destroyed. If the key returns, its tuner is reinstated verbatim:
//!   re-admission round-trips learned state bit-identically (pinned by
//!   `tests/context_runtime.rs`).
//! * **Warm-starting** — a key seen for the first time seeds its tuner
//!   from the nearest neighbor's posterior (per-algorithm incumbents →
//!   phase-1 starting configurations and phase-2 selection weights, see
//!   [`crate::site::SiteTuner::build_warm`]) instead of starting from
//!   uniform ignorance. Neighbors are ranked by L1 distance over
//!   [`ContextKey::features`]; incumbents that fall outside or violate
//!   the new key's space are ignored, so warm-starting can never smuggle
//!   an infeasible configuration across contexts.
//!
//! Every dispatched call runs inside a [`crate::telemetry::with_context`]
//! scope, so exported JSONL lines carry a `"context"` field naming the
//! logical key next to the `"site"` field naming the (recycled) slot.
//!
//! DESIGN.md §11 documents the contract, the eviction semantics and the
//! seeding rule; `smallsort::SortKey` (size class × presortedness) is the
//! worked example.

use std::collections::HashMap;
use std::hash::Hash;
use std::sync::atomic::{AtomicU32, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};

use crate::robust::MeasureOutcome;
use crate::site::{self, Site, SiteGuard, SiteSpec, SiteTuner};
use crate::space::Configuration;
use crate::telemetry;

/// A context key: a hashable description of an input class, with an
/// ordered feature vector so keys have a notion of *nearness* for
/// cross-context warm-starting.
///
/// Implementations should be cheap to clone and compare — the table
/// hashes keys on every dispatch. Derive `Clone + PartialEq + Eq + Hash`
/// and keep the payload to a few integers. Bucket raw features (e.g.
/// ceil-log2 of an input length) rather than hashing them raw: every
/// distinct key gets its own tuner, so the key space must be coarse
/// enough that each class sees repeated traffic (DESIGN.md §11 discusses
/// the trade-off).
///
/// ```
/// use autotune::context::ContextKey;
///
/// /// Input class for a sort: ceil-log2 size bucket × presortedness.
/// #[derive(Clone, Copy, PartialEq, Eq, Hash)]
/// struct SortClass { size_class: u32, presorted: bool }
///
/// impl ContextKey for SortClass {
///     fn features(&self) -> Vec<i64> {
///         vec![self.size_class as i64, self.presorted as i64]
///     }
///     fn label(&self) -> String {
///         format!("c{:02}/{}", self.size_class,
///                 if self.presorted { "sorted" } else { "random" })
///     }
/// }
///
/// let a = SortClass { size_class: 5, presorted: false };
/// let b = SortClass { size_class: 7, presorted: true };
/// assert_eq!(a.distance(&b), 3); // |5-7| + |0-1|
/// assert_eq!(a.label(), "c05/random");
/// ```
pub trait ContextKey: Clone + Eq + Hash + Send + 'static {
    /// The ordered feature vector nearness is measured over. Every key
    /// of one type should return the same length; features should be on
    /// comparable scales (bucket indices, not raw byte counts) since
    /// [`ContextKey::distance`] weighs dimensions equally.
    fn features(&self) -> Vec<i64>;

    /// A short human-readable label, used in traces and study output.
    fn label(&self) -> String;

    /// L1 distance between two keys' feature vectors — the neighbor
    /// metric for warm-starting. Vectors of unequal length treat missing
    /// entries as 0. Override only if the default metric misranks
    /// neighbors for your key type.
    fn distance(&self, other: &Self) -> u64 {
        let (a, b) = (self.features(), other.features());
        let n = a.len().max(b.len());
        (0..n)
            .map(|i| {
                let x = a.get(i).copied().unwrap_or(0);
                let y = b.get(i).copied().unwrap_or(0);
                x.abs_diff(y)
            })
            .sum()
    }
}

/// Process-global context-id allocator: ids are dense, stable for the
/// life of a key (parked keys keep theirs) and never reused, so a trace
/// can always be split by `(site, context)` unambiguously.
static NEXT_CONTEXT_ID: AtomicU32 = AtomicU32::new(0);

fn alloc_context_id() -> u32 {
    let id = NEXT_CONTEXT_ID.fetch_add(1, Ordering::Relaxed);
    assert!(id != telemetry::NO_CONTEXT, "context id space exhausted");
    id
}

/// Per-key traffic counters, exact under concurrency (the stress test in
/// `tests/context_runtime.rs` pins them). Survive eviction: counts carry
/// across park / re-admit cycles.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct KeyStats {
    /// Completed calls dispatched for this key.
    pub calls: u64,
    /// Calls that ran a full tuning iteration (the rest took the
    /// published exploit decision).
    pub tuned_iterations: u64,
    /// Times this key was admitted to a slot (first admission + every
    /// reinstatement after an eviction).
    pub admissions: u64,
}

/// Table-level counters for admission / eviction churn.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ContextStats {
    /// Total admissions (cold + warm + reinstated).
    pub admissions: u64,
    /// First-time admissions that started from scratch.
    pub cold_starts: u64,
    /// First-time admissions seeded from a neighbor's posterior.
    pub warm_starts: u64,
    /// Re-admissions that reinstated a parked tuner verbatim.
    pub reinstatements: u64,
    /// Evictions (each parks the outgoing tuner).
    pub evictions: u64,
    /// Admissions that grew the pool past `capacity` because every
    /// binding had a call in flight — the non-blocking alternative to
    /// waiting out a guard that (if its holder is the admitting thread
    /// itself) might never resolve.
    pub overflows: u64,
}

/// One recycled registry slot owned by the table.
struct PoolSlot<K> {
    site: Site,
    key: K,
    context: u32,
    /// LRU clock value at last dispatch.
    last_used: u64,
    /// Dispatches currently in flight through this binding. Incremented
    /// under the table lock at dispatch, decremented with `Release` when
    /// the [`InFlight`] share drops; the evictor's `Acquire` load of 0
    /// therefore orders every posted call's counter bump before the
    /// eviction's stats snapshot. A busy binding is never evicted — the
    /// table grows instead (see [`ContextStats::overflows`]).
    in_flight: Arc<AtomicUsize>,
    /// `site.calls()` / `site.tuned_iterations()` at bind time — the
    /// slot counters count the slot, these bases carve out this key's
    /// share.
    calls_base: u64,
    tuned_base: u64,
    /// Stats accumulated by this key's *previous* bindings.
    carried: KeyStats,
}

impl<K> PoolSlot<K> {
    fn stats_now(&self) -> KeyStats {
        KeyStats {
            calls: self.carried.calls + (self.site.calls() - self.calls_base),
            tuned_iterations: self.carried.tuned_iterations
                + (self.site.tuned_iterations() - self.tuned_base),
            admissions: self.carried.admissions,
        }
    }
}

/// RAII share of a binding's in-flight count: taken under the table
/// lock at bind, released on drop — including panic unwinds (a leaked
/// count would permanently mark the binding busy, forcing every later
/// admission that targets it onto the overflow path).
struct InFlight(Arc<AtomicUsize>);

impl InFlight {
    fn enter(counter: &Arc<AtomicUsize>) -> InFlight {
        counter.fetch_add(1, Ordering::Relaxed);
        InFlight(Arc::clone(counter))
    }
}

impl Drop for InFlight {
    fn drop(&mut self) {
        // `Release` pairs with the evictor's `Acquire` idleness check:
        // everything this call did to the site happens-before a later
        // rebind of its slot.
        self.0.fetch_sub(1, Ordering::Release);
    }
}

/// An evicted key's state, held for re-admission.
struct Parked {
    tuner: SiteTuner,
    context: u32,
    stats: KeyStats,
}

struct Inner<K> {
    pool: Vec<PoolSlot<K>>,
    /// key → index into `pool`, for currently bound keys.
    resident: HashMap<K, usize>,
    parked: HashMap<K, Parked>,
    /// LRU clock: bumped on every dispatch.
    tick: u64,
    stats: ContextStats,
}

/// A keyed family of tuning sites with LRU-bounded slot allocation,
/// eviction parking and nearest-neighbor warm-starting (see the
/// [module docs](crate::context)).
///
/// The table is `Sync`: dispatches from many threads serialize briefly on
/// an internal lock for the key → slot lookup, then run the measured
/// call itself through the site's lock-free claim/exploit protocol.
///
/// ```
/// use autotune::context::{ContextKey, ContextSites};
/// use autotune::param::Parameter;
/// use autotune::robust::MeasureOutcome;
/// use autotune::site::SiteSpec;
/// use autotune::space::SearchSpace;
///
/// #[derive(Clone, Copy, PartialEq, Eq, Hash)]
/// struct SizeClass(u32);
/// impl ContextKey for SizeClass {
///     fn features(&self) -> Vec<i64> { vec![self.0 as i64] }
///     fn label(&self) -> String { format!("c{:02}", self.0) }
/// }
///
/// // At most 2 live sites, however many size classes show up.
/// let table = ContextSites::register("doc/sort", 2, |k: &SizeClass| {
///     SiteSpec::space(
///         k.label(),
///         SearchSpace::new(vec![Parameter::interval("cutoff", 1, 64)]),
///         0xC0FFEE,
///     )
/// });
///
/// for size_class in [4u32, 9, 4, 12, 4] {
///     let guard = table.dispatch(&SizeClass(size_class));
///     // ... run the chosen algorithm/configuration here ...
///     guard.post_outcome(MeasureOutcome::from_value(1.0));
/// }
/// // 3 distinct keys through 2 slots: the LRU binding was recycled.
/// assert_eq!(table.resident_len(), 2);
/// assert_eq!(table.stats().evictions, 1);
/// assert_eq!(table.key_stats(&SizeClass(4)).unwrap().calls, 3);
/// ```
pub struct ContextSites<K: ContextKey> {
    prefix: String,
    capacity: usize,
    warm_start: bool,
    spec_for: Box<dyn Fn(&K) -> SiteSpec + Send + Sync>,
    inner: Mutex<Inner<K>>,
}

impl<K: ContextKey> ContextSites<K> {
    /// Create a table owning at most `capacity` registry slots, named
    /// `{prefix}/slotNN`. `spec_for` is the per-key blueprint factory:
    /// called once per admission (its name is replaced by the slot
    /// name; use a key-derived seed if per-key determinism matters).
    ///
    /// Registry slots are claimed lazily — a table over a key space that
    /// only ever shows `n < capacity` keys registers `n` slots.
    pub fn register(
        prefix: impl Into<String>,
        capacity: usize,
        spec_for: impl Fn(&K) -> SiteSpec + Send + Sync + 'static,
    ) -> Self {
        assert!(capacity > 0, "context table needs at least one slot");
        ContextSites {
            prefix: prefix.into(),
            capacity,
            warm_start: true,
            spec_for: Box::new(spec_for),
            inner: Mutex::new(Inner {
                pool: Vec::new(),
                resident: HashMap::new(),
                parked: HashMap::new(),
                tick: 0,
                stats: ContextStats::default(),
            }),
        }
    }

    /// Enable or disable nearest-neighbor warm-starting (on by default).
    /// With it off every first admission is a cold start — the baseline
    /// the `contexts` study and bench compare against.
    pub fn with_warm_start(mut self, on: bool) -> Self {
        self.warm_start = on;
        self
    }

    /// Steady-state bound on concurrently bound keys. An admission that
    /// finds every binding with a call in flight grows the pool past
    /// this instead of waiting ([`ContextStats::overflows`]); once those
    /// calls resolve, the extra slots are recycled like any other.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Dispatch one call for `key`: admit the key if necessary (evicting
    /// the least recently used *idle* binding when the pool is full, or
    /// growing the pool when every binding is busy — dispatch never
    /// waits on another call's guard), then enter its site. The returned
    /// guard mirrors
    /// [`crate::site::SiteGuard`]: call [`ContextGuard::post`] /
    /// [`ContextGuard::post_outcome`] around the interchangeable code, or
    /// drop it to abandon the call. The proposal and the report both run
    /// inside a [`telemetry::with_context`] scope tagged with the key's
    /// context id.
    pub fn dispatch(&self, key: &K) -> ContextGuard {
        let (site, context, in_flight) = self.bind(key);
        let guard = telemetry::with_context(context, || site.pre());
        ContextGuard {
            guard: Some(guard),
            _in_flight: in_flight,
            context,
        }
    }

    /// Run `f(algorithm, config)` as one timed call for `key`:
    /// [`ContextSites::dispatch`], the closure, then
    /// [`ContextGuard::post`] with the closure's wall time.
    pub fn tuned<R>(&self, key: &K, f: impl FnOnce(usize, &Configuration) -> R) -> R {
        let guard = self.dispatch(key);
        let r = f(guard.algorithm(), guard.config());
        guard.post();
        r
    }

    /// Run `f` with exclusive access to `key`'s tuner, admitting the key
    /// first if necessary. For analysis and tests — blocking, like
    /// [`crate::site::Site::with_tuner`].
    pub fn with_tuner_for<R>(&self, key: &K, f: impl FnOnce(&SiteTuner) -> R) -> R {
        let (site, context, _in_flight) = self.bind(key);
        telemetry::with_context(context, || site.with_tuner(f))
    }

    /// The raw [`Site`] handle currently bound to `key`, admitting the
    /// key first if necessary.
    ///
    /// The handle names the *slot*, not the key: after a later eviction
    /// it serves whatever key is bound then. Only hold on to it when the
    /// table cannot evict — i.e. `capacity` covers the whole key space
    /// (how `smallsort::SortSites` uses it).
    pub fn resident_site(&self, key: &K) -> Site {
        let (site, _context, _in_flight) = self.bind(key);
        site
    }

    /// The stable context id assigned to `key`, if it was ever admitted.
    /// This is the value of the `"context"` field on the key's telemetry
    /// events.
    pub fn context_id(&self, key: &K) -> Option<u32> {
        let inner = self.inner.lock().unwrap();
        if let Some(&i) = inner.resident.get(key) {
            return Some(inner.pool[i].context);
        }
        inner.parked.get(key).map(|p| p.context)
    }

    /// Per-key traffic counters (resident or parked), `None` for keys
    /// never admitted. Exact: counts are snapshotted under the same
    /// in-flight accounting that gates eviction.
    pub fn key_stats(&self, key: &K) -> Option<KeyStats> {
        let inner = self.inner.lock().unwrap();
        if let Some(&i) = inner.resident.get(key) {
            return Some(inner.pool[i].stats_now());
        }
        inner.parked.get(key).map(|p| p.stats)
    }

    /// Table-level admission / eviction counters.
    pub fn stats(&self) -> ContextStats {
        self.inner.lock().unwrap().stats
    }

    /// Number of currently bound keys (≤ [`ContextSites::capacity`]).
    pub fn resident_len(&self) -> usize {
        self.inner.lock().unwrap().resident.len()
    }

    /// Number of evicted keys whose tuners are parked for re-admission.
    pub fn parked_len(&self) -> usize {
        self.inner.lock().unwrap().parked.len()
    }

    /// All keys ever admitted (resident first, then parked), with their
    /// context ids — iteration order is unspecified.
    pub fn keys(&self) -> Vec<(K, u32)> {
        let inner = self.inner.lock().unwrap();
        let mut out: Vec<(K, u32)> = inner
            .resident
            .keys()
            .map(|k| (k.clone(), inner.pool[inner.resident[k]].context))
            .collect();
        out.extend(inner.parked.iter().map(|(k, p)| (k.clone(), p.context)));
        out
    }

    /// Look up or admit `key`; returns its site, context id and the
    /// caller's [`InFlight`] share of the binding.
    fn bind(&self, key: &K) -> (Site, u32, InFlight) {
        let mut inner = self.inner.lock().unwrap();
        let inner = &mut *inner;
        inner.tick += 1;
        let tick = inner.tick;

        if let Some(&i) = inner.resident.get(key) {
            let slot = &mut inner.pool[i];
            slot.last_used = tick;
            return (slot.site, slot.context, InFlight::enter(&slot.in_flight));
        }

        // Admission. Build the incoming binding first: a parked tuner is
        // reinstated verbatim; a first-time key is warm-started from its
        // nearest neighbor's posterior when one exists (and warm-starting
        // is on); otherwise it starts cold.
        let spec = (self.spec_for)(key);
        let (incoming, context, carried) = match inner.parked.remove(key) {
            Some(p) => {
                inner.stats.reinstatements += 1;
                (Some(p.tuner), p.context, p.stats)
            }
            None => {
                let warm = if self.warm_start {
                    Self::neighbor_incumbents(inner, key)
                } else {
                    None
                };
                let tuner = warm.map(|incumbents| SiteTuner::build_warm(spec.clone(), &incumbents));
                if tuner.is_some() {
                    inner.stats.warm_starts += 1;
                } else {
                    inner.stats.cold_starts += 1;
                }
                (tuner, alloc_context_id(), KeyStats::default())
            }
        };
        inner.stats.admissions += 1;

        // A binding may only be recycled while no call is in flight
        // through it, and the idleness check is race-free: counts are
        // incremented only under this lock, so an idle binding stays
        // idle until we release it. When every binding is busy the pool
        // *grows* instead of waiting — blocking here (with the table
        // lock held) would deadlock a thread that dispatches while
        // holding a ContextGuard on one of the busy bindings.
        let victim = if inner.pool.len() < self.capacity {
            None
        } else {
            Self::pick_idle_victim(&inner.pool)
        };
        let i = match victim {
            None => {
                // Claim a fresh registry slot.
                if inner.pool.len() >= self.capacity {
                    inner.stats.overflows += 1;
                }
                let name = format!("{}/slot{:02}", self.prefix, inner.pool.len());
                let spec = spec.with_name(name);
                let site = site::site(site::register(spec.clone()));
                if let Some(t) = incoming {
                    // The fresh slot was registered cold; install the warm /
                    // reinstated tuner (no guard can be in flight yet).
                    site.rebind(spec, Some(t));
                }
                inner.pool.push(PoolSlot {
                    site,
                    key: key.clone(),
                    context,
                    last_used: tick,
                    in_flight: Arc::new(AtomicUsize::new(0)),
                    calls_base: site.calls(),
                    tuned_base: site.tuned_iterations(),
                    carried,
                });
                inner.resident.insert(key.clone(), inner.pool.len() - 1);
                inner.pool.len() - 1
            }
            Some(victim) => {
                // Recycle the least recently used idle binding in place.
                let name = format!("{}/slot{:02}", self.prefix, victim);
                let spec = spec.with_name(name);
                let slot = &mut inner.pool[victim];
                let evicted_stats = slot.stats_now();
                let outgoing = slot.site.rebind(spec, incoming);
                inner.stats.evictions += 1;
                let old_key = std::mem::replace(&mut slot.key, key.clone());
                inner.resident.remove(&old_key);
                inner.parked.insert(
                    old_key,
                    Parked {
                        tuner: outgoing,
                        context: slot.context,
                        stats: evicted_stats,
                    },
                );
                slot.context = context;
                slot.last_used = tick;
                slot.calls_base = slot.site.calls();
                slot.tuned_base = slot.site.tuned_iterations();
                slot.carried = carried;
                inner.resident.insert(key.clone(), victim);
                victim
            }
        };

        let slot = &mut inner.pool[i];
        slot.carried.admissions += 1;
        (slot.site, slot.context, InFlight::enter(&slot.in_flight))
    }

    /// Least-recently-used binding with no calls in flight, or `None`
    /// when every binding is busy. The `Acquire` load pairs with the
    /// [`InFlight`] `Release` decrement, so everything a resolved call
    /// did to the victim site happens-before the eviction's stats
    /// snapshot and rebind.
    fn pick_idle_victim(pool: &[PoolSlot<K>]) -> Option<usize> {
        (0..pool.len())
            .filter(|&i| pool[i].in_flight.load(Ordering::Acquire) == 0)
            .min_by_key(|&i| (pool[i].last_used, i))
    }

    /// The nearest admitted key's incumbents, or `None` when no admitted
    /// key has an observable posterior. Neighbors (resident and parked)
    /// are ranked by `(L1 distance, resident-before-parked, context id)`
    /// so the choice is deterministic, and walked in rank order: one
    /// whose posterior is unavailable — a resident site mid-measurement,
    /// or a tuner with no incumbents yet — is skipped for the
    /// next-nearest. A resident neighbor's site claim is only *tried*
    /// ([`Site::try_with_tuner`]), never spun on: this runs under the
    /// table lock, and the claim is held across the neighbor's entire
    /// measured call — waiting here would stall every dispatch on the
    /// table and deadlocks outright if the claim holder re-enters it.
    fn neighbor_incumbents(inner: &Inner<K>, key: &K) -> Option<Vec<Option<(Configuration, f64)>>> {
        let resident = inner
            .resident
            .iter()
            .map(|(k, &i)| (k, 0u8, inner.pool[i].context));
        let parked = inner.parked.iter().map(|(k, p)| (k, 1u8, p.context));
        let mut ranked: Vec<(K, (u64, u8, u32))> = resident
            .chain(parked)
            .map(|(k, tier, ctx)| (k.clone(), (key.distance(k), tier, ctx)))
            .collect();
        ranked.sort_by_key(|(_, rank)| *rank);
        for (neighbor, _) in ranked {
            let incumbents = match inner.resident.get(&neighbor) {
                Some(&i) => match inner.pool[i].site.try_with_tuner(|t| t.incumbents()) {
                    Some(inc) => inc,
                    None => continue, // claim busy right now: don't wait
                },
                None => inner.parked[&neighbor].tuner.incumbents(),
            };
            if incumbents.iter().any(Option::is_some) {
                return Some(incumbents);
            }
        }
        None
    }
}

impl<K: ContextKey> std::fmt::Debug for ContextSites<K> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let inner = self.inner.lock().unwrap();
        f.debug_struct("ContextSites")
            .field("prefix", &self.prefix)
            .field("capacity", &self.capacity)
            .field("resident", &inner.resident.len())
            .field("parked", &inner.parked.len())
            .field("stats", &inner.stats)
            .finish()
    }
}

/// In-flight call through a [`ContextSites`] table: a
/// [`crate::site::SiteGuard`] plus the binding's in-flight accounting
/// (which gates eviction) and the context id its telemetry is tagged
/// with. Dropping the guard without a `post` abandons the call.
pub struct ContextGuard {
    guard: Option<SiteGuard>,
    /// Dropped (also on panic unwind) after the site guard resolves,
    /// releasing the binding for eviction.
    _in_flight: InFlight,
    context: u32,
}

impl ContextGuard {
    /// Index of the algorithm to run.
    pub fn algorithm(&self) -> usize {
        self.guard
            .as_ref()
            .expect("guard not yet resolved")
            .algorithm()
    }

    /// The configuration to run it with.
    pub fn config(&self) -> &Configuration {
        self.guard
            .as_ref()
            .expect("guard not yet resolved")
            .config()
    }

    /// True when this call runs a tuning iteration (it won the claim);
    /// false when it runs the published exploit decision.
    pub fn is_tuning(&self) -> bool {
        self.guard
            .as_ref()
            .expect("guard not yet resolved")
            .is_tuning()
    }

    /// The dispatched key's context id (the `"context"` telemetry tag).
    pub fn context(&self) -> u32 {
        self.context
    }

    /// Report the elapsed wall time since dispatch as the call's
    /// measurement; returns the measured milliseconds.
    pub fn post(mut self) -> f64 {
        let guard = self.guard.take().expect("guard posted twice");
        telemetry::with_context(self.context, || guard.post())
        // Dropping `self` releases the in-flight share.
    }

    /// Report an explicit [`MeasureOutcome`] (an externally batched
    /// timing, or a failure) instead of the guard's own wall clock.
    pub fn post_outcome(mut self, outcome: MeasureOutcome) {
        let guard = self.guard.take().expect("guard posted twice");
        telemetry::with_context(self.context, || guard.post_outcome(outcome));
        // Dropping `self` releases the in-flight share.
    }
}

impl Drop for ContextGuard {
    fn drop(&mut self) {
        if let Some(guard) = self.guard.take() {
            // Abandon: roll back the proposal under the context tag.
            telemetry::with_context(self.context, || drop(guard));
        }
        // `_in_flight` drops after this body, releasing the binding.
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::param::Parameter;
    use crate::space::SearchSpace;

    #[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
    struct Key(i64);

    impl ContextKey for Key {
        fn features(&self) -> Vec<i64> {
            vec![self.0]
        }
        fn label(&self) -> String {
            format!("k{}", self.0)
        }
    }

    fn table(prefix: &str, capacity: usize) -> ContextSites<Key> {
        ContextSites::register(prefix, capacity, |k: &Key| {
            SiteSpec::space(
                k.label(),
                SearchSpace::new(vec![Parameter::interval("x", 1, 32)]),
                0xBEEF ^ k.0 as u64,
            )
        })
    }

    fn drive(t: &ContextSites<Key>, key: Key, calls: usize) {
        for i in 0..calls {
            let g = t.dispatch(&key);
            g.post_outcome(MeasureOutcome::from_value(1.0 + (i % 7) as f64));
        }
    }

    #[test]
    fn resident_until_capacity_then_evicts_lru() {
        let t = table("test/ctx/lru", 2);
        drive(&t, Key(1), 3);
        drive(&t, Key(2), 3);
        assert_eq!(t.resident_len(), 2);
        assert_eq!(t.stats().evictions, 0);
        // Key(1) is LRU — touching Key(3) must evict it, not Key(2).
        drive(&t, Key(3), 1);
        assert_eq!(t.resident_len(), 2);
        assert_eq!(t.parked_len(), 1);
        assert_eq!(t.stats().evictions, 1);
        assert!(t.key_stats(&Key(1)).is_some());
        drive(&t, Key(2), 1); // still resident: no new admission
        assert_eq!(t.stats().admissions, 3);
    }

    #[test]
    fn per_key_stats_survive_eviction_and_reinstatement() {
        let t = table("test/ctx/stats", 1);
        drive(&t, Key(1), 5);
        let ctx1 = t.context_id(&Key(1)).unwrap();
        drive(&t, Key(2), 2); // evicts Key(1)
        drive(&t, Key(1), 4); // evicts Key(2), reinstates Key(1)
        let s1 = t.key_stats(&Key(1)).unwrap();
        assert_eq!(s1.calls, 9);
        assert_eq!(s1.admissions, 2);
        assert_eq!(t.key_stats(&Key(2)).unwrap().calls, 2);
        // Context id is stable across park / re-admit.
        assert_eq!(t.context_id(&Key(1)), Some(ctx1));
        let st = t.stats();
        assert_eq!(st.reinstatements, 1);
        assert_eq!(st.evictions, 2);
        assert_eq!(st.admissions, 3);
    }

    #[test]
    fn warm_start_counts_and_first_key_is_cold() {
        let t = table("test/ctx/warm", 4);
        drive(&t, Key(0), 10); // first key: nothing to seed from
        drive(&t, Key(1), 1);
        let st = t.stats();
        assert_eq!(st.cold_starts, 1);
        assert_eq!(st.warm_starts, 1);

        let cold = table("test/ctx/cold", 4).with_warm_start(false);
        drive(&cold, Key(0), 10);
        drive(&cold, Key(1), 1);
        assert_eq!(cold.stats().warm_starts, 0);
        assert_eq!(cold.stats().cold_starts, 2);
    }

    #[test]
    fn distinct_keys_get_distinct_stable_context_ids() {
        let t = table("test/ctx/ids", 2);
        drive(&t, Key(1), 1);
        drive(&t, Key(2), 1);
        let (c1, c2) = (
            t.context_id(&Key(1)).unwrap(),
            t.context_id(&Key(2)).unwrap(),
        );
        assert_ne!(c1, c2);
        drive(&t, Key(3), 1); // churn
        drive(&t, Key(1), 1);
        assert_eq!(t.context_id(&Key(1)), Some(c1));
        assert_eq!(t.context_id(&Key(2)), Some(c2));
    }

    #[test]
    fn dispatch_while_holding_a_guard_grows_instead_of_deadlocking() {
        let t = table("test/ctx/reentrant", 1);
        let g1 = t.dispatch(&Key(1));
        // Every binding is busy (this thread holds the guard): the table
        // must grow, not wait for a guard that can never resolve here.
        let g2 = t.dispatch(&Key(2));
        assert_eq!(t.resident_len(), 2);
        assert_eq!(t.stats().overflows, 1);
        assert_eq!(t.stats().evictions, 0);
        // Table inspection while holding guards is safe too.
        assert_eq!(t.key_stats(&Key(1)).unwrap().calls, 0);
        g1.post_outcome(MeasureOutcome::from_value(1.0));
        g2.post_outcome(MeasureOutcome::from_value(1.0));
        // Both bindings idle again: the next admission recycles one
        // instead of growing further.
        drive(&t, Key(3), 1);
        assert_eq!(t.resident_len(), 2);
        assert_eq!(t.stats().evictions, 1);
        assert_eq!(t.stats().overflows, 1);
        assert_eq!(t.key_stats(&Key(1)).unwrap().calls, 1);
        assert_eq!(t.key_stats(&Key(2)).unwrap().calls, 1);
    }

    #[test]
    fn panicking_tuner_closure_unwinds_in_flight_accounting() {
        let t = table("test/ctx/panic", 1);
        drive(&t, Key(1), 2);
        let r = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            t.with_tuner_for(&Key(1), |_| -> () { panic!("analysis exploded") })
        }));
        assert!(r.is_err());
        // The binding is idle again: a new key evicts it. A leaked
        // in-flight count would mark it busy forever and force every
        // later admission onto the overflow path instead.
        drive(&t, Key(2), 1);
        let st = t.stats();
        assert_eq!(st.evictions, 1);
        assert_eq!(st.overflows, 0);
    }

    #[test]
    fn abandoned_dispatch_counts_no_call() {
        let t = table("test/ctx/abandon", 1);
        drop(t.dispatch(&Key(1)));
        assert_eq!(t.key_stats(&Key(1)).unwrap().calls, 0);
        // The slot is idle again: a different key can be admitted.
        drive(&t, Key(2), 1);
        assert_eq!(t.key_stats(&Key(2)).unwrap().calls, 1);
    }
}
