//! Search spaces and configurations.
//!
//! Following the paper's formalization, a search space `T` is the Cartesian
//! product of a finite set of tuning parameters `τ_0 × τ_1 × … × τ_J`; a
//! configuration `C ∈ T` is one point in that product.

use crate::json::{Json, JsonError};
use crate::param::{Domain, ParamClass, Parameter, Value};
use crate::rng::Rng;

/// A point in a [`SearchSpace`]: one [`Value`] per parameter, in parameter
/// order.
#[derive(Debug, Clone, PartialEq)]
pub struct Configuration {
    values: Vec<Value>,
}

impl Configuration {
    /// Wrap a raw value vector. Prefer [`SearchSpace::configuration`] which
    /// validates against the space.
    pub fn new(values: Vec<Value>) -> Self {
        Configuration { values }
    }

    /// An empty configuration for a zero-parameter space (used by case
    /// study 1, where the string matchers expose no tunables).
    pub fn empty() -> Self {
        Configuration { values: Vec::new() }
    }

    /// All parameter values, in space order.
    pub fn values(&self) -> &[Value] {
        &self.values
    }

    /// Number of parameter values (the space's dimensionality).
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// True for the zero-parameter configuration.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// Value of the `i`-th parameter.
    pub fn get(&self, i: usize) -> Value {
        self.values[i]
    }

    /// Continuous coordinates of this configuration, for numeric searchers.
    pub fn as_coords(&self) -> Vec<f64> {
        self.values.iter().map(|v| v.as_f64()).collect()
    }

    /// JSON encoding: `{"values": [...]}` with externally-tagged values.
    pub fn to_json(&self) -> Json {
        Json::obj(vec![(
            "values",
            Json::Arr(self.values.iter().map(|v| v.to_json()).collect()),
        )])
    }

    /// Inverse of [`Configuration::to_json`].
    pub fn from_json(json: &Json) -> Result<Configuration, JsonError> {
        let values = json
            .get("values")
            .and_then(Json::as_arr)
            .ok_or_else(|| JsonError {
                message: "configuration needs a values array".to_string(),
                offset: 0,
            })?
            .iter()
            .map(Value::from_json)
            .collect::<Result<Vec<_>, _>>()?;
        Ok(Configuration { values })
    }
}

/// The product of a finite list of [`Parameter`]s.
#[derive(Debug, Clone, PartialEq)]
pub struct SearchSpace {
    params: Vec<Parameter>,
}

impl SearchSpace {
    /// A space over the given parameters, in order.
    pub fn new(params: Vec<Parameter>) -> Self {
        SearchSpace { params }
    }

    /// The space with no parameters; its only configuration is
    /// [`Configuration::empty`].
    pub fn empty() -> Self {
        SearchSpace { params: Vec::new() }
    }

    /// The parameters, in order.
    pub fn params(&self) -> &[Parameter] {
        &self.params
    }

    /// Dimensionality `J` of the space.
    pub fn dims(&self) -> usize {
        self.params.len()
    }

    /// True for the zero-parameter space.
    pub fn is_empty(&self) -> bool {
        self.params.is_empty()
    }

    /// Does the space contain any nominal parameter? Numeric searchers call
    /// this to reject spaces they cannot legally manipulate (Section II-B).
    pub fn has_nominal(&self) -> bool {
        self.params.iter().any(|p| p.class() == ParamClass::Nominal)
    }

    /// Total number of configurations, or `None` if any domain is continuous
    /// (or the product overflows `u64`).
    pub fn cardinality(&self) -> Option<u64> {
        let mut total: u64 = 1;
        for p in &self.params {
            total = total.checked_mul(p.cardinality()?)?;
        }
        Some(total)
    }

    /// Validate and wrap a value vector into a [`Configuration`].
    pub fn configuration(&self, values: Vec<Value>) -> Result<Configuration, SpaceError> {
        if values.len() != self.params.len() {
            return Err(SpaceError::WrongArity {
                expected: self.params.len(),
                got: values.len(),
            });
        }
        for (i, (p, &v)) in self.params.iter().zip(&values).enumerate() {
            if !p.contains(v) {
                return Err(SpaceError::OutOfDomain {
                    param: p.name().to_string(),
                    index: i,
                    value: v,
                });
            }
        }
        Ok(Configuration::new(values))
    }

    /// Is `c` a member of this space?
    pub fn contains(&self, c: &Configuration) -> bool {
        c.len() == self.params.len()
            && self
                .params
                .iter()
                .zip(c.values())
                .all(|(p, &v)| p.contains(v))
    }

    /// A uniformly random configuration.
    pub fn random(&self, rng: &mut Rng) -> Configuration {
        Configuration::new(self.params.iter().map(|p| p.random_value(rng)).collect())
    }

    /// The deterministic "lowest corner" configuration — the paper's
    /// strategies "start with a deterministic configuration".
    pub fn min_corner(&self) -> Configuration {
        Configuration::new(self.params.iter().map(|p| p.min_value()).collect())
    }

    /// Project continuous coordinates onto the nearest legal configuration.
    pub fn clamp(&self, coords: &[f64]) -> Configuration {
        assert_eq!(coords.len(), self.params.len(), "coordinate arity mismatch");
        Configuration::new(
            self.params
                .iter()
                .zip(coords)
                .map(|(p, &x)| p.clamp_continuous(x))
                .collect(),
        )
    }

    /// All configurations of a finite space, in lexicographic order.
    /// Panics on continuous domains; intended for exhaustive search and
    /// tests on small spaces.
    pub fn enumerate(&self) -> Vec<Configuration> {
        let card = self
            .cardinality()
            .expect("enumerate requires a finite space");
        assert!(card <= 1 << 22, "space too large to enumerate ({card})");
        let mut out = Vec::with_capacity(card as usize);
        let mut current: Vec<Value> = self.params.iter().map(|p| p.min_value()).collect();
        loop {
            out.push(Configuration::new(current.clone()));
            // Odometer increment, most-significant parameter first.
            let mut k = self.params.len();
            loop {
                if k == 0 {
                    return out;
                }
                k -= 1;
                if let Some(next) = self.successor(k, current[k]) {
                    current[k] = next;
                    break;
                }
                current[k] = self.params[k].min_value();
            }
        }
    }

    fn successor(&self, k: usize, v: Value) -> Option<Value> {
        match (self.params[k].domain(), v) {
            (Domain::Labels(ls), Value::Index(i)) => {
                (i + 1 < ls.len()).then_some(Value::Index(i + 1))
            }
            (Domain::IntRange { hi, .. }, Value::Int(x)) => (x < *hi).then_some(Value::Int(x + 1)),
            (Domain::FloatRange { .. }, _) => panic!("cannot enumerate a continuous domain"),
            _ => unreachable!("value/domain mismatch"),
        }
    }

    /// JSON encoding: `{"params": [...]}`.
    pub fn to_json(&self) -> Json {
        Json::obj(vec![(
            "params",
            Json::Arr(self.params.iter().map(|p| p.to_json()).collect()),
        )])
    }

    /// Inverse of [`SearchSpace::to_json`].
    pub fn from_json(json: &Json) -> Result<SearchSpace, JsonError> {
        let params = json
            .get("params")
            .and_then(Json::as_arr)
            .ok_or_else(|| JsonError {
                message: "search space needs a params array".to_string(),
                offset: 0,
            })?
            .iter()
            .map(Parameter::from_json)
            .collect::<Result<Vec<_>, _>>()?;
        Ok(SearchSpace { params })
    }

    /// The full neighborhood of `c`: all configurations differing in exactly
    /// one parameter by one step. Empty for purely-nominal spaces.
    pub fn neighbors(&self, c: &Configuration) -> Vec<Configuration> {
        let mut out = Vec::new();
        for (i, p) in self.params.iter().enumerate() {
            for n in p.neighbors(c.get(i)) {
                let mut vals = c.values().to_vec();
                vals[i] = n;
                out.push(Configuration::new(vals));
            }
        }
        out
    }
}

/// Errors from configuration validation.
#[derive(Debug, Clone, PartialEq)]
pub enum SpaceError {
    /// The value vector length does not match the space dimensionality.
    WrongArity {
        /// The space's dimensionality.
        expected: usize,
        /// The configuration's length.
        got: usize,
    },
    /// A value is outside its parameter's domain.
    OutOfDomain {
        /// Name of the offending parameter.
        param: String,
        /// Index of the offending parameter in the space.
        index: usize,
        /// The rejected value.
        value: Value,
    },
}

impl std::fmt::Display for SpaceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SpaceError::WrongArity { expected, got } => {
                write!(
                    f,
                    "configuration has {got} values, space has {expected} parameters"
                )
            }
            SpaceError::OutOfDomain {
                param,
                index,
                value,
            } => {
                write!(
                    f,
                    "value {value:?} out of domain for parameter '{param}' (index {index})"
                )
            }
        }
    }
}

impl std::error::Error for SpaceError {}

#[cfg(test)]
mod tests {
    use super::*;

    fn space() -> SearchSpace {
        SearchSpace::new(vec![
            Parameter::ratio("threads", 1, 4),
            Parameter::interval("cutoff", 0, 2),
        ])
    }

    #[test]
    fn empty_space_has_one_config() {
        let s = SearchSpace::empty();
        assert_eq!(s.cardinality(), Some(1));
        assert_eq!(s.enumerate(), vec![Configuration::empty()]);
        assert!(s.contains(&Configuration::empty()));
    }

    #[test]
    fn cardinality_is_product() {
        assert_eq!(space().cardinality(), Some(12));
    }

    #[test]
    fn continuous_space_has_no_cardinality() {
        let s = SearchSpace::new(vec![Parameter::ratio_f64("x", 0.0, 1.0)]);
        assert_eq!(s.cardinality(), None);
    }

    #[test]
    fn enumerate_yields_every_config_once() {
        let all = space().enumerate();
        assert_eq!(all.len(), 12);
        for i in 0..all.len() {
            for j in 0..i {
                assert_ne!(all[i], all[j], "duplicate configuration");
            }
        }
        for c in &all {
            assert!(space().contains(c));
        }
    }

    #[test]
    fn validation_rejects_wrong_arity() {
        let err = space().configuration(vec![Value::Int(1)]).unwrap_err();
        assert_eq!(
            err,
            SpaceError::WrongArity {
                expected: 2,
                got: 1
            }
        );
    }

    #[test]
    fn validation_rejects_out_of_domain() {
        let err = space()
            .configuration(vec![Value::Int(9), Value::Int(0)])
            .unwrap_err();
        assert!(matches!(err, SpaceError::OutOfDomain { index: 0, .. }));
    }

    #[test]
    fn clamp_projects_into_space() {
        let c = space().clamp(&[-5.0, 7.3]);
        assert_eq!(c.values(), &[Value::Int(1), Value::Int(2)]);
    }

    #[test]
    fn random_configs_are_members() {
        let mut rng = Rng::new(1);
        let s = space();
        for _ in 0..200 {
            assert!(s.contains(&s.random(&mut rng)));
        }
    }

    #[test]
    fn neighbors_differ_in_one_coordinate() {
        let s = space();
        let c = s.configuration(vec![Value::Int(2), Value::Int(1)]).unwrap();
        let ns = s.neighbors(&c);
        assert_eq!(ns.len(), 4);
        for n in &ns {
            let diff = n
                .values()
                .iter()
                .zip(c.values())
                .filter(|(a, b)| a != b)
                .count();
            assert_eq!(diff, 1);
            assert!(s.contains(n));
        }
    }

    #[test]
    fn nominal_space_has_no_neighbors() {
        let s = SearchSpace::new(vec![Parameter::nominal(
            "alg",
            vec!["a".into(), "b".into(), "c".into()],
        )]);
        let c = s.min_corner();
        assert!(s.neighbors(&c).is_empty());
        assert!(s.has_nominal());
    }

    #[test]
    fn min_corner_is_member_and_deterministic() {
        let s = space();
        assert!(s.contains(&s.min_corner()));
        assert_eq!(s.min_corner(), s.min_corner());
        assert_eq!(s.min_corner().values(), &[Value::Int(1), Value::Int(0)]);
    }
}
