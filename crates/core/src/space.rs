//! Search spaces and configurations.
//!
//! Following the paper's formalization, a search space `T` is the Cartesian
//! product of a finite set of tuning parameters `τ_0 × τ_1 × … × τ_J`; a
//! configuration `C ∈ T` is one point in that product.
//!
//! Real spaces are rarely pure products: threads must not exceed cores,
//! packet widths interact with thread-tree depth, SIMD variants need CPU
//! features. [`Constraint`]s capture those cross-parameter rules as named
//! predicates with optional *repair* functions, and the `*_feasible`
//! projection family ([`SearchSpace::clamp_feasible`],
//! [`SearchSpace::random_feasible`], …) projects points into the feasible
//! region instead of merely into the box, so searchers never hand the
//! measurement pipeline a configuration the application cannot run.

use crate::json::{Json, JsonError};
use crate::param::{Domain, ParamClass, Parameter, Value};
use crate::rng::Rng;
use crate::telemetry::{self, EventKind};
use std::sync::Arc;

/// A point in a [`SearchSpace`]: one [`Value`] per parameter, in parameter
/// order.
#[derive(Debug, Clone, PartialEq)]
pub struct Configuration {
    values: Vec<Value>,
}

impl Configuration {
    /// Wrap a raw value vector. Prefer [`SearchSpace::configuration`] which
    /// validates against the space.
    pub fn new(values: Vec<Value>) -> Self {
        Configuration { values }
    }

    /// An empty configuration for a zero-parameter space (used by case
    /// study 1, where the string matchers expose no tunables).
    pub fn empty() -> Self {
        Configuration { values: Vec::new() }
    }

    /// All parameter values, in space order.
    pub fn values(&self) -> &[Value] {
        &self.values
    }

    /// Number of parameter values (the space's dimensionality).
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// True for the zero-parameter configuration.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// Value of the `i`-th parameter.
    pub fn get(&self, i: usize) -> Value {
        self.values[i]
    }

    /// Continuous coordinates of this configuration, for numeric searchers.
    pub fn as_coords(&self) -> Vec<f64> {
        self.values.iter().map(|v| v.as_f64()).collect()
    }

    /// JSON encoding: `{"values": [...]}` with externally-tagged values.
    pub fn to_json(&self) -> Json {
        Json::obj(vec![(
            "values",
            Json::Arr(self.values.iter().map(|v| v.to_json()).collect()),
        )])
    }

    /// Inverse of [`Configuration::to_json`].
    pub fn from_json(json: &Json) -> Result<Configuration, JsonError> {
        let values = json
            .get("values")
            .and_then(Json::as_arr)
            .ok_or_else(|| JsonError {
                message: "configuration needs a values array".to_string(),
                offset: 0,
            })?
            .iter()
            .map(Value::from_json)
            .collect::<Result<Vec<_>, _>>()?;
        Ok(Configuration { values })
    }
}

/// A named feasibility rule over whole configurations: a predicate that
/// decides membership in the feasible region, plus an optional *repair*
/// function that projects a violating configuration back into it.
///
/// Constraints express what the box product cannot: cross-parameter rules
/// (threads × packet width vs a core budget) and host-dependent
/// availability (a SIMD kernel that needs AVX2). A constraint without a
/// repair function makes violating proposals *irreparable* — the tuners
/// route those through the failure-penalty path instead of measuring them.
#[derive(Clone)]
pub struct Constraint {
    name: String,
    predicate: Arc<dyn Fn(&Configuration) -> bool + Send + Sync>,
    repair: Option<RepairFn>,
}

/// A shared repair function: projects a violating configuration back into
/// the feasible region.
type RepairFn = Arc<dyn Fn(&Configuration) -> Configuration + Send + Sync>;

impl Constraint {
    /// A constraint from a name and a feasibility predicate.
    pub fn new(
        name: impl Into<String>,
        predicate: impl Fn(&Configuration) -> bool + Send + Sync + 'static,
    ) -> Self {
        Constraint {
            name: name.into(),
            predicate: Arc::new(predicate),
            repair: None,
        }
    }

    /// Attach a repair function. It is only invoked on configurations that
    /// violate the predicate, and must return a configuration inside the
    /// space's box (per-parameter domains); [`SearchSpace::repair`] rejects
    /// repairs that leave the box.
    pub fn with_repair(
        mut self,
        repair: impl Fn(&Configuration) -> Configuration + Send + Sync + 'static,
    ) -> Self {
        self.repair = Some(Arc::new(repair));
        self
    }

    /// The constraint's display name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Does `c` satisfy this constraint?
    pub fn is_satisfied(&self, c: &Configuration) -> bool {
        (self.predicate)(c)
    }

    /// Does this constraint carry a repair function?
    pub fn has_repair(&self) -> bool {
        self.repair.is_some()
    }

    /// Apply the repair function, if any.
    pub fn repair(&self, c: &Configuration) -> Option<Configuration> {
        self.repair.as_ref().map(|r| r(c))
    }

    /// This constraint with its repair function stripped — the
    /// reject-and-retry baseline of the `constraints` study.
    pub fn without_repair(&self) -> Constraint {
        Constraint {
            name: self.name.clone(),
            predicate: self.predicate.clone(),
            repair: None,
        }
    }
}

impl std::fmt::Debug for Constraint {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Constraint")
            .field("name", &self.name)
            .field("has_repair", &self.repair.is_some())
            .finish()
    }
}

/// Telemetry tag for degenerate-coordinate events emitted below any
/// algorithm context (e.g. from [`SearchSpace::clamp`]); deliberately
/// outside `MAX_TRACKED_ALGORITHMS` so metrics ignore it.
const DEGENERATE_PROPOSAL: u16 = u16::MAX;

/// How many uniform draws [`SearchSpace::random_feasible`] attempts before
/// falling back to the repaired minimum corner.
const RANDOM_FEASIBLE_ATTEMPTS: usize = 16;

/// The product of a finite list of [`Parameter`]s, optionally restricted
/// by [`Constraint`]s.
///
/// Equality compares parameters and constraint *names* (predicates are
/// opaque closures); JSON round-trips encode parameters only — constraints
/// are host-dependent runtime objects and must be re-attached by the code
/// that declared them.
#[derive(Debug, Clone)]
pub struct SearchSpace {
    params: Vec<Parameter>,
    constraints: Vec<Constraint>,
}

impl PartialEq for SearchSpace {
    fn eq(&self, other: &Self) -> bool {
        self.params == other.params
            && self.constraints.len() == other.constraints.len()
            && self
                .constraints
                .iter()
                .zip(&other.constraints)
                .all(|(a, b)| a.name == b.name)
    }
}

impl SearchSpace {
    /// A space over the given parameters, in order.
    pub fn new(params: Vec<Parameter>) -> Self {
        SearchSpace {
            params,
            constraints: Vec::new(),
        }
    }

    /// The space with no parameters; its only configuration is
    /// [`Configuration::empty`].
    pub fn empty() -> Self {
        Self::new(Vec::new())
    }

    /// Attach one constraint (builder style).
    pub fn with_constraint(mut self, constraint: Constraint) -> Self {
        self.constraints.push(constraint);
        self
    }

    /// Attach several constraints (builder style).
    pub fn with_constraints(mut self, constraints: impl IntoIterator<Item = Constraint>) -> Self {
        self.constraints.extend(constraints);
        self
    }

    /// The attached constraints, in declaration order.
    pub fn constraints(&self) -> &[Constraint] {
        &self.constraints
    }

    /// Does this space carry any constraints?
    pub fn is_constrained(&self) -> bool {
        !self.constraints.is_empty()
    }

    /// This space with every repair function stripped: the same feasible
    /// region, but violating proposals become irreparable (penalized, not
    /// projected) — the reject-and-retry baseline of the `constraints`
    /// study.
    pub fn without_repairs(&self) -> SearchSpace {
        SearchSpace {
            params: self.params.clone(),
            constraints: self
                .constraints
                .iter()
                .map(Constraint::without_repair)
                .collect(),
        }
    }

    /// The parameters, in order.
    pub fn params(&self) -> &[Parameter] {
        &self.params
    }

    /// Dimensionality `J` of the space.
    pub fn dims(&self) -> usize {
        self.params.len()
    }

    /// True for the zero-parameter space.
    pub fn is_empty(&self) -> bool {
        self.params.is_empty()
    }

    /// Does the space contain any nominal parameter? Numeric searchers call
    /// this to reject spaces they cannot legally manipulate (Section II-B).
    pub fn has_nominal(&self) -> bool {
        self.params.iter().any(|p| p.class() == ParamClass::Nominal)
    }

    /// Total number of configurations, or `None` if any domain is continuous
    /// (or the product overflows `u64`).
    pub fn cardinality(&self) -> Option<u64> {
        let mut total: u64 = 1;
        for p in &self.params {
            total = total.checked_mul(p.cardinality()?)?;
        }
        Some(total)
    }

    /// Validate and wrap a value vector into a [`Configuration`].
    pub fn configuration(&self, values: Vec<Value>) -> Result<Configuration, SpaceError> {
        if values.len() != self.params.len() {
            return Err(SpaceError::WrongArity {
                expected: self.params.len(),
                got: values.len(),
            });
        }
        for (i, (p, &v)) in self.params.iter().zip(&values).enumerate() {
            if !p.contains(v) {
                return Err(SpaceError::OutOfDomain {
                    param: p.name().to_string(),
                    index: i,
                    value: v,
                });
            }
        }
        Ok(Configuration::new(values))
    }

    /// Is `c` a member of this space?
    ///
    /// Box membership only: every value inside its parameter's domain.
    /// Constraint satisfaction is [`SearchSpace::is_feasible`].
    pub fn contains(&self, c: &Configuration) -> bool {
        c.len() == self.params.len()
            && self
                .params
                .iter()
                .zip(c.values())
                .all(|(p, &v)| p.contains(v))
    }

    /// Is `c` inside the box *and* does it satisfy every constraint?
    pub fn is_feasible(&self, c: &Configuration) -> bool {
        self.contains(c) && self.constraints.iter().all(|k| k.is_satisfied(c))
    }

    /// The first violated constraint of an in-box configuration, if any.
    pub fn violated(&self, c: &Configuration) -> Option<&Constraint> {
        self.constraints.iter().find(|k| !k.is_satisfied(c))
    }

    /// Project `c` into the feasible region by applying the repair
    /// functions of violated constraints, first-violated first, until a
    /// fixed point. Returns `None` when the configuration is irreparable:
    /// a violated constraint carries no repair, a repair leaves the box,
    /// or the repairs do not reach a feasible fixed point (constraints
    /// fighting each other). Feasible inputs come back unchanged.
    pub fn repair(&self, c: &Configuration) -> Option<Configuration> {
        if c.len() != self.params.len() {
            return None;
        }
        // Box-project first: repair predicates may assume in-box values
        // (this also sanitizes non-finite coordinates to parameter minima).
        let mut current = if self.contains(c) {
            c.clone()
        } else {
            self.clamp(&c.as_coords())
        };
        // Each pass fixes the first violated constraint; allow every
        // constraint a couple of interactions before declaring a cycle.
        for _ in 0..=(2 * self.constraints.len()) {
            match self.violated(&current) {
                None => return Some(current),
                Some(k) => {
                    let repaired = k.repair(&current)?;
                    if !self.contains(&repaired) {
                        return None;
                    }
                    current = repaired;
                }
            }
        }
        None
    }

    /// A uniformly random configuration (box only; see
    /// [`SearchSpace::random_feasible`] for the constraint-aware variant).
    pub fn random(&self, rng: &mut Rng) -> Configuration {
        Configuration::new(self.params.iter().map(|p| p.random_value(rng)).collect())
    }

    /// A random configuration projected into the feasible region: draw
    /// uniformly, accept feasible points, repair violating ones, and after
    /// a bounded number of irreparable draws fall back to the (repaired)
    /// minimum corner. The result can still be infeasible when the
    /// feasible region is unreachable by repair — the tuners detect that
    /// and charge the failure penalty instead of measuring.
    pub fn random_feasible(&self, rng: &mut Rng) -> Configuration {
        for _ in 0..RANDOM_FEASIBLE_ATTEMPTS {
            let c = self.random(rng);
            if self.is_feasible(&c) {
                return c;
            }
            if let Some(repaired) = self.repair(&c) {
                return repaired;
            }
        }
        self.min_corner_feasible()
    }

    /// The deterministic "lowest corner" configuration — the paper's
    /// strategies "start with a deterministic configuration".
    pub fn min_corner(&self) -> Configuration {
        Configuration::new(self.params.iter().map(|p| p.min_value()).collect())
    }

    /// The minimum corner projected into the feasible region (repaired if
    /// a constraint rejects the raw corner; unchanged when irreparable).
    pub fn min_corner_feasible(&self) -> Configuration {
        let c = self.min_corner();
        self.repair(&c).unwrap_or(c)
    }

    /// Project continuous coordinates onto the nearest legal configuration
    /// (box only). Non-finite coordinates — a collapsed Nelder-Mead
    /// simplex can produce NaN — project to the parameter's minimum value
    /// and emit a telemetry [`EventKind::PenaltyApplied`] (tagged with an
    /// out-of-range algorithm index) instead of panicking.
    pub fn clamp(&self, coords: &[f64]) -> Configuration {
        assert_eq!(coords.len(), self.params.len(), "coordinate arity mismatch");
        if coords.iter().any(|x| !x.is_finite()) {
            telemetry::emit(|| EventKind::PenaltyApplied {
                algorithm: DEGENERATE_PROPOSAL,
                penalty_ms: 0.0,
            });
        }
        Configuration::new(
            self.params
                .iter()
                .zip(coords)
                .map(|(p, &x)| p.clamp_continuous(x))
                .collect(),
        )
    }

    /// Project continuous coordinates into the *feasible* region: box-clamp,
    /// then repair. Irreparable points come back merely box-clamped — the
    /// tuners recognize them as infeasible and penalize without measuring.
    pub fn clamp_feasible(&self, coords: &[f64]) -> Configuration {
        let boxed = self.clamp(coords);
        self.repair(&boxed).unwrap_or(boxed)
    }

    /// All configurations of a finite space, in lexicographic order.
    /// Panics on continuous domains; intended for exhaustive search and
    /// tests on small spaces.
    pub fn enumerate(&self) -> Vec<Configuration> {
        let card = self
            .cardinality()
            .expect("enumerate requires a finite space");
        assert!(card <= 1 << 22, "space too large to enumerate ({card})");
        let mut out = Vec::with_capacity(card as usize);
        let mut current: Vec<Value> = self.params.iter().map(|p| p.min_value()).collect();
        loop {
            out.push(Configuration::new(current.clone()));
            // Odometer increment, most-significant parameter first.
            let mut k = self.params.len();
            loop {
                if k == 0 {
                    return out;
                }
                k -= 1;
                if let Some(next) = self.successor(k, current[k]) {
                    current[k] = next;
                    break;
                }
                current[k] = self.params[k].min_value();
            }
        }
    }

    fn successor(&self, k: usize, v: Value) -> Option<Value> {
        match (self.params[k].domain(), v) {
            (Domain::Labels(ls), Value::Index(i)) => {
                (i + 1 < ls.len()).then_some(Value::Index(i + 1))
            }
            (Domain::IntRange { hi, .. }, Value::Int(x)) => (x < *hi).then_some(Value::Int(x + 1)),
            (Domain::FloatRange { .. }, _) => panic!("cannot enumerate a continuous domain"),
            _ => unreachable!("value/domain mismatch"),
        }
    }

    /// JSON encoding: `{"params": [...]}`.
    pub fn to_json(&self) -> Json {
        Json::obj(vec![(
            "params",
            Json::Arr(self.params.iter().map(|p| p.to_json()).collect()),
        )])
    }

    /// Inverse of [`SearchSpace::to_json`].
    pub fn from_json(json: &Json) -> Result<SearchSpace, JsonError> {
        let params = json
            .get("params")
            .and_then(Json::as_arr)
            .ok_or_else(|| JsonError {
                message: "search space needs a params array".to_string(),
                offset: 0,
            })?
            .iter()
            .map(Parameter::from_json)
            .collect::<Result<Vec<_>, _>>()?;
        Ok(SearchSpace::new(params))
    }

    /// The full neighborhood of `c`: all configurations differing in exactly
    /// one parameter by one step. Empty for purely-nominal spaces.
    pub fn neighbors(&self, c: &Configuration) -> Vec<Configuration> {
        let mut out = Vec::new();
        for (i, p) in self.params.iter().enumerate() {
            for n in p.neighbors(c.get(i)) {
                let mut vals = c.values().to_vec();
                vals[i] = n;
                out.push(Configuration::new(vals));
            }
        }
        out
    }

    /// The feasible subset of [`SearchSpace::neighbors`]. An empty result
    /// on a non-nominal space means `c` sits alone in its feasible
    /// component — hill climbing and simulated annealing treat that as
    /// convergence, exactly like a nominal space's empty neighborhood.
    pub fn neighbors_feasible(&self, c: &Configuration) -> Vec<Configuration> {
        let mut ns = self.neighbors(c);
        ns.retain(|n| self.is_feasible(n));
        ns
    }

    /// The feasible subset of [`SearchSpace::enumerate`], in the same
    /// lexicographic order.
    pub fn enumerate_feasible(&self) -> Vec<Configuration> {
        let mut all = self.enumerate();
        all.retain(|c| self.is_feasible(c));
        all
    }
}

/// Errors from configuration validation.
#[derive(Debug, Clone, PartialEq)]
pub enum SpaceError {
    /// The value vector length does not match the space dimensionality.
    WrongArity {
        /// The space's dimensionality.
        expected: usize,
        /// The configuration's length.
        got: usize,
    },
    /// A value is outside its parameter's domain.
    OutOfDomain {
        /// Name of the offending parameter.
        param: String,
        /// Index of the offending parameter in the space.
        index: usize,
        /// The rejected value.
        value: Value,
    },
}

impl std::fmt::Display for SpaceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SpaceError::WrongArity { expected, got } => {
                write!(
                    f,
                    "configuration has {got} values, space has {expected} parameters"
                )
            }
            SpaceError::OutOfDomain {
                param,
                index,
                value,
            } => {
                write!(
                    f,
                    "value {value:?} out of domain for parameter '{param}' (index {index})"
                )
            }
        }
    }
}

impl std::error::Error for SpaceError {}

#[cfg(test)]
mod tests {
    use super::*;

    fn space() -> SearchSpace {
        SearchSpace::new(vec![
            Parameter::ratio("threads", 1, 4),
            Parameter::interval("cutoff", 0, 2),
        ])
    }

    #[test]
    fn empty_space_has_one_config() {
        let s = SearchSpace::empty();
        assert_eq!(s.cardinality(), Some(1));
        assert_eq!(s.enumerate(), vec![Configuration::empty()]);
        assert!(s.contains(&Configuration::empty()));
    }

    #[test]
    fn cardinality_is_product() {
        assert_eq!(space().cardinality(), Some(12));
    }

    #[test]
    fn continuous_space_has_no_cardinality() {
        let s = SearchSpace::new(vec![Parameter::ratio_f64("x", 0.0, 1.0)]);
        assert_eq!(s.cardinality(), None);
    }

    #[test]
    fn enumerate_yields_every_config_once() {
        let all = space().enumerate();
        assert_eq!(all.len(), 12);
        for i in 0..all.len() {
            for j in 0..i {
                assert_ne!(all[i], all[j], "duplicate configuration");
            }
        }
        for c in &all {
            assert!(space().contains(c));
        }
    }

    #[test]
    fn validation_rejects_wrong_arity() {
        let err = space().configuration(vec![Value::Int(1)]).unwrap_err();
        assert_eq!(
            err,
            SpaceError::WrongArity {
                expected: 2,
                got: 1
            }
        );
    }

    #[test]
    fn validation_rejects_out_of_domain() {
        let err = space()
            .configuration(vec![Value::Int(9), Value::Int(0)])
            .unwrap_err();
        assert!(matches!(err, SpaceError::OutOfDomain { index: 0, .. }));
    }

    #[test]
    fn clamp_projects_into_space() {
        let c = space().clamp(&[-5.0, 7.3]);
        assert_eq!(c.values(), &[Value::Int(1), Value::Int(2)]);
    }

    #[test]
    fn random_configs_are_members() {
        let mut rng = Rng::new(1);
        let s = space();
        for _ in 0..200 {
            assert!(s.contains(&s.random(&mut rng)));
        }
    }

    #[test]
    fn neighbors_differ_in_one_coordinate() {
        let s = space();
        let c = s.configuration(vec![Value::Int(2), Value::Int(1)]).unwrap();
        let ns = s.neighbors(&c);
        assert_eq!(ns.len(), 4);
        for n in &ns {
            let diff = n
                .values()
                .iter()
                .zip(c.values())
                .filter(|(a, b)| a != b)
                .count();
            assert_eq!(diff, 1);
            assert!(s.contains(n));
        }
    }

    #[test]
    fn nominal_space_has_no_neighbors() {
        let s = SearchSpace::new(vec![Parameter::nominal(
            "alg",
            vec!["a".into(), "b".into(), "c".into()],
        )]);
        let c = s.min_corner();
        assert!(s.neighbors(&c).is_empty());
        assert!(s.has_nominal());
    }

    #[test]
    fn min_corner_is_member_and_deterministic() {
        let s = space();
        assert!(s.contains(&s.min_corner()));
        assert_eq!(s.min_corner(), s.min_corner());
        assert_eq!(s.min_corner().values(), &[Value::Int(1), Value::Int(0)]);
    }

    /// threads × 2^cutoff ≤ 4, repaired by lowering the cutoff.
    fn budget_constraint() -> Constraint {
        Constraint::new("budget", |c| c.get(0).as_i64() << c.get(1).as_i64() <= 4).with_repair(
            |c| {
                let threads = c.get(0).as_i64();
                let mut cutoff = c.get(1).as_i64();
                while cutoff > 0 && threads << cutoff > 4 {
                    cutoff -= 1;
                }
                Configuration::new(vec![Value::Int(threads.min(4)), Value::Int(cutoff)])
            },
        )
    }

    fn constrained() -> SearchSpace {
        space().with_constraint(budget_constraint())
    }

    #[test]
    fn feasibility_distinguishes_box_from_constraints() {
        let s = constrained();
        let ok = Configuration::new(vec![Value::Int(2), Value::Int(1)]);
        let bad = Configuration::new(vec![Value::Int(4), Value::Int(2)]);
        assert!(s.contains(&ok) && s.is_feasible(&ok));
        assert!(s.contains(&bad) && !s.is_feasible(&bad));
        assert_eq!(s.violated(&bad).unwrap().name(), "budget");
        assert!(s.violated(&ok).is_none());
    }

    #[test]
    fn repair_is_identity_on_feasible_and_projects_violations() {
        let s = constrained();
        let ok = Configuration::new(vec![Value::Int(2), Value::Int(1)]);
        assert_eq!(s.repair(&ok), Some(ok.clone()));
        let bad = Configuration::new(vec![Value::Int(4), Value::Int(2)]);
        let fixed = s.repair(&bad).expect("repairable");
        assert!(s.is_feasible(&fixed));
        assert_eq!(fixed.values(), &[Value::Int(4), Value::Int(0)]);
    }

    #[test]
    fn stripped_repairs_make_violations_irreparable() {
        let s = constrained().without_repairs();
        let bad = Configuration::new(vec![Value::Int(4), Value::Int(2)]);
        assert_eq!(s.repair(&bad), None);
        // The feasible region itself is unchanged.
        let ok = Configuration::new(vec![Value::Int(2), Value::Int(1)]);
        assert_eq!(s.repair(&ok), Some(ok));
    }

    #[test]
    fn clamp_feasible_projects_into_the_feasible_region() {
        let s = constrained();
        let c = s.clamp_feasible(&[99.0, 99.0]);
        assert!(s.is_feasible(&c), "{c:?}");
        // Without repairs the projection stops at the box.
        let stripped = constrained().without_repairs();
        let boxed = stripped.clamp_feasible(&[99.0, 99.0]);
        assert!(stripped.contains(&boxed) && !stripped.is_feasible(&boxed));
    }

    #[test]
    fn random_feasible_always_satisfies_constraints() {
        let s = constrained();
        let mut rng = Rng::new(7);
        for _ in 0..300 {
            let c = s.random_feasible(&mut rng);
            assert!(s.is_feasible(&c), "{c:?}");
        }
    }

    #[test]
    fn enumerate_and_neighbors_feasible_filter() {
        let s = constrained();
        let all = s.enumerate();
        let feasible = s.enumerate_feasible();
        assert!(feasible.len() < all.len());
        assert!(feasible.iter().all(|c| s.is_feasible(c)));
        // (4, 0) is feasible but both its in-box neighbors up the cutoff
        // or down the threads: only the feasible ones survive.
        let c = Configuration::new(vec![Value::Int(4), Value::Int(0)]);
        for n in s.neighbors_feasible(&c) {
            assert!(s.is_feasible(&n), "{n:?}");
        }
        assert!(s.neighbors_feasible(&c).len() < s.neighbors(&c).len());
    }

    #[test]
    fn min_corner_feasible_repairs_a_rejected_corner() {
        // A constraint the raw corner violates: threads must be ≥ 2.
        let s = space().with_constraint(
            Constraint::new("min-threads", |c| c.get(0).as_i64() >= 2)
                .with_repair(|c| Configuration::new(vec![Value::Int(2), c.get(1)])),
        );
        assert!(!s.is_feasible(&s.min_corner()));
        let fixed = s.min_corner_feasible();
        assert!(s.is_feasible(&fixed));
        assert_eq!(fixed.values(), &[Value::Int(2), Value::Int(0)]);
    }

    #[test]
    fn clamp_projects_non_finite_coordinates_to_minima() {
        let s = space();
        let c = s.clamp(&[f64::NAN, f64::INFINITY]);
        assert_eq!(c.values(), &[Value::Int(1), Value::Int(0)]);
        let c = s.clamp(&[f64::NEG_INFINITY, f64::NAN]);
        assert_eq!(c.values(), &[Value::Int(1), Value::Int(0)]);
    }

    #[test]
    fn equality_compares_constraint_names() {
        assert_eq!(constrained(), constrained());
        assert_ne!(constrained(), space());
        assert_ne!(
            space().with_constraint(Constraint::new("a", |_| true)),
            space().with_constraint(Constraint::new("b", |_| true))
        );
        // JSON round-trips carry parameters only.
        let round = SearchSpace::from_json(&constrained().to_json()).unwrap();
        assert_eq!(round, space());
    }
}
