//! A minimal, dependency-free JSON value type, parser, and writer.
//!
//! The build environment for this workspace is fully offline: no crates.io
//! registry is reachable, so `serde`/`serde_json` cannot be resolved. The
//! experiment harness still needs to persist figures as JSON (EXPERIMENTS.md
//! is regenerated from those files) and the search-space types still need a
//! serialization round-trip, so this module provides the small subset of
//! JSON we actually use, hand-rolled on `std` alone.
//!
//! Enum values use the externally-tagged convention (`{"Int": 3}`), matching
//! the shape serde would have produced, so previously written result files
//! stay readable.

use std::fmt::Write as _;

/// A JSON document.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// The `null` literal.
    Null,
    /// A boolean.
    Bool(bool),
    /// A number (always an `f64`, as in JavaScript).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// Object as an ordered key-value list (we never need hashing, and
    /// insertion order keeps output diffs stable).
    Obj(Vec<(String, Json)>),
}

/// Parse or conversion failure, with a byte offset for parse errors.
#[derive(Debug, Clone, PartialEq)]
pub struct JsonError {
    /// What went wrong.
    pub message: String,
    /// Byte offset into the input where parsing failed (0 for semantic
    /// errors raised on an already-parsed document).
    pub offset: usize,
}

impl std::fmt::Display for JsonError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{} (at byte {})", self.message, self.offset)
    }
}

impl std::error::Error for JsonError {}

fn err<T>(message: impl Into<String>, offset: usize) -> Result<T, JsonError> {
    Err(JsonError {
        message: message.into(),
        offset,
    })
}

impl Json {
    /// Object constructor from key-value pairs.
    pub fn obj(pairs: Vec<(&str, Json)>) -> Json {
        Json::Obj(pairs.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
    }

    /// Member lookup on objects; `None` elsewhere.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as `f64` if numeric.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(x) => Some(*x),
            _ => None,
        }
    }

    /// The value as `&str` if a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as a slice if an array.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(v) => Some(v),
            _ => None,
        }
    }

    // ---------------------------------------------------------------
    // Writing
    // ---------------------------------------------------------------

    /// Pretty encoding with two-space indentation.
    pub fn to_string_pretty(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, Some(2), 0);
        out
    }

    fn write(&self, out: &mut String, indent: Option<usize>, level: usize) {
        let (nl, pad, pad_in) = match indent {
            Some(w) => ("\n", " ".repeat(w * level), " ".repeat(w * (level + 1))),
            None => ("", String::new(), String::new()),
        };
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Num(x) => write_number(out, *x),
            Json::Str(s) => write_escaped(out, s),
            Json::Arr(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push_str(nl);
                    out.push_str(&pad_in);
                    item.write(out, indent, level + 1);
                }
                out.push_str(nl);
                out.push_str(&pad);
                out.push(']');
            }
            Json::Obj(pairs) => {
                if pairs.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push('{');
                for (i, (k, v)) in pairs.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push_str(nl);
                    out.push_str(&pad_in);
                    write_escaped(out, k);
                    out.push(':');
                    if indent.is_some() {
                        out.push(' ');
                    }
                    v.write(out, indent, level + 1);
                }
                out.push_str(nl);
                out.push_str(&pad);
                out.push('}');
            }
        }
    }

    // ---------------------------------------------------------------
    // Parsing
    // ---------------------------------------------------------------

    /// Parse a complete JSON document (trailing whitespace allowed).
    pub fn parse(text: &str) -> Result<Json, JsonError> {
        let bytes = text.as_bytes();
        let mut pos = 0;
        let value = parse_value(bytes, &mut pos)?;
        skip_ws(bytes, &mut pos);
        if pos != bytes.len() {
            return err("trailing characters after document", pos);
        }
        Ok(value)
    }
}

/// `f64` encoding: integers print without a fraction so round-trips of
/// integer-valued parameters stay exact and readable. Crate-visible so the
/// incremental JSONL exporter ([`crate::telemetry::export`]) can render
/// events byte-identically without building a [`Json`] tree.
pub(crate) fn write_number(out: &mut String, x: f64) {
    if !x.is_finite() {
        // JSON has no Inf/NaN; persist as null like serde_json does.
        out.push_str("null");
    } else if x == x.trunc() && x.abs() < 1e15 {
        write!(out, "{}", x as i64).unwrap();
    } else {
        // 17 significant digits guarantee f64 round-trip.
        let s = format!("{x:.17e}");
        // Prefer the shortest representation that round-trips.
        let plain = format!("{x}");
        if plain.parse::<f64>() == Ok(x) {
            out.push_str(&plain);
        } else {
            out.push_str(&s);
        }
    }
}

pub(crate) fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                write!(out, "\\u{:04x}", c as u32).unwrap();
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while *pos < bytes.len() && matches!(bytes[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn parse_value(bytes: &[u8], pos: &mut usize) -> Result<Json, JsonError> {
    skip_ws(bytes, pos);
    match bytes.get(*pos) {
        None => err("unexpected end of input", *pos),
        Some(b'n') => parse_literal(bytes, pos, "null", Json::Null),
        Some(b't') => parse_literal(bytes, pos, "true", Json::Bool(true)),
        Some(b'f') => parse_literal(bytes, pos, "false", Json::Bool(false)),
        Some(b'"') => Ok(Json::Str(parse_string(bytes, pos)?)),
        Some(b'[') => {
            *pos += 1;
            let mut items = Vec::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b']') {
                *pos += 1;
                return Ok(Json::Arr(items));
            }
            loop {
                items.push(parse_value(bytes, pos)?);
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b']') => {
                        *pos += 1;
                        return Ok(Json::Arr(items));
                    }
                    _ => return err("expected ',' or ']' in array", *pos),
                }
            }
        }
        Some(b'{') => {
            *pos += 1;
            let mut pairs = Vec::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b'}') {
                *pos += 1;
                return Ok(Json::Obj(pairs));
            }
            loop {
                skip_ws(bytes, pos);
                let key = parse_string(bytes, pos)?;
                skip_ws(bytes, pos);
                if bytes.get(*pos) != Some(&b':') {
                    return err("expected ':' after object key", *pos);
                }
                *pos += 1;
                pairs.push((key, parse_value(bytes, pos)?));
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b'}') => {
                        *pos += 1;
                        return Ok(Json::Obj(pairs));
                    }
                    _ => return err("expected ',' or '}' in object", *pos),
                }
            }
        }
        Some(c) if c.is_ascii_digit() || *c == b'-' => parse_number(bytes, pos),
        Some(c) => err(format!("unexpected character '{}'", *c as char), *pos),
    }
}

fn parse_literal(bytes: &[u8], pos: &mut usize, lit: &str, v: Json) -> Result<Json, JsonError> {
    if bytes[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(v)
    } else {
        err(format!("invalid literal, expected '{lit}'"), *pos)
    }
}

fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String, JsonError> {
    if bytes.get(*pos) != Some(&b'"') {
        return err("expected string", *pos);
    }
    *pos += 1;
    let mut out = String::new();
    let start = *pos;
    loop {
        match bytes.get(*pos) {
            None => return err("unterminated string", start),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match bytes.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'u') => {
                        let hex = bytes
                            .get(*pos + 1..*pos + 5)
                            .and_then(|h| std::str::from_utf8(h).ok())
                            .and_then(|h| u32::from_str_radix(h, 16).ok());
                        match hex.and_then(char::from_u32) {
                            // Surrogate pairs are not needed for our data;
                            // lone surrogates become the replacement char.
                            Some(c) => out.push(c),
                            None => out.push('\u{FFFD}'),
                        }
                        *pos += 4;
                    }
                    _ => return err("invalid escape", *pos),
                }
                *pos += 1;
            }
            Some(_) => {
                // Consume one UTF-8 scalar (multi-byte safe).
                let rest = std::str::from_utf8(&bytes[*pos..]).map_err(|_| JsonError {
                    message: "invalid UTF-8 in string".into(),
                    offset: *pos,
                })?;
                let c = rest.chars().next().expect("nonempty");
                out.push(c);
                *pos += c.len_utf8();
            }
        }
    }
}

fn parse_number(bytes: &[u8], pos: &mut usize) -> Result<Json, JsonError> {
    let start = *pos;
    if bytes.get(*pos) == Some(&b'-') {
        *pos += 1;
    }
    while *pos < bytes.len()
        && (bytes[*pos].is_ascii_digit() || matches!(bytes[*pos], b'.' | b'e' | b'E' | b'+' | b'-'))
    {
        *pos += 1;
    }
    let text = std::str::from_utf8(&bytes[start..*pos]).expect("ascii slice");
    match text.parse::<f64>() {
        Ok(x) => Ok(Json::Num(x)),
        Err(_) => err(format!("invalid number '{text}'"), start),
    }
}

/// Compact single-line encoding (`to_string()` comes with it for free).
impl std::fmt::Display for Json {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let mut out = String::new();
        self.write(&mut out, None, 0);
        f.write_str(&out)
    }
}

/// Convert a type to its JSON representation.
pub trait ToJson {
    /// The JSON form of `self`.
    fn to_json(&self) -> Json;
}

impl ToJson for f64 {
    fn to_json(&self) -> Json {
        Json::Num(*self)
    }
}

impl ToJson for String {
    fn to_json(&self) -> Json {
        Json::Str(self.clone())
    }
}

impl<T: ToJson> ToJson for Vec<T> {
    fn to_json(&self) -> Json {
        Json::Arr(self.iter().map(ToJson::to_json).collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_scalars() {
        for text in ["null", "true", "false", "0", "-7", "1.5", "\"hi\""] {
            let v = Json::parse(text).unwrap();
            assert_eq!(Json::parse(&v.to_string()).unwrap(), v, "{text}");
        }
    }

    #[test]
    fn round_trips_nested_structures() {
        let v = Json::obj(vec![
            ("id", Json::Str("fig2".into())),
            (
                "series",
                Json::Arr(vec![
                    Json::Arr(vec![Json::Str("a".into()), Json::Num(1.25)]),
                    Json::Null,
                ]),
            ),
            ("empty_obj", Json::Obj(vec![])),
            ("empty_arr", Json::Arr(vec![])),
        ]);
        for text in [v.to_string(), v.to_string_pretty()] {
            assert_eq!(Json::parse(&text).unwrap(), v);
        }
    }

    #[test]
    fn escapes_control_characters_and_quotes() {
        let v = Json::Str("a\"b\\c\nd\te\u{1}".into());
        let text = v.to_string();
        assert_eq!(text, "\"a\\\"b\\\\c\\nd\\te\\u0001\"");
        assert_eq!(Json::parse(&text).unwrap(), v, "escaped text round-trips");
    }

    #[test]
    fn parses_escape_sequences() {
        let v = Json::parse(r#""a\"b\\c\nd\teA""#).unwrap();
        assert_eq!(v, Json::Str("a\"b\\c\nd\teA".into()));
    }

    #[test]
    fn float_round_trip_is_exact() {
        for x in [0.1, 1.0 / 3.0, 6.02214076e23, -2.2250738585072014e-308] {
            let text = Json::Num(x).to_string();
            let back = Json::parse(&text).unwrap().as_f64().unwrap();
            assert_eq!(back, x, "{text}");
        }
    }

    #[test]
    fn integers_print_without_fraction() {
        assert_eq!(Json::Num(42.0).to_string(), "42");
        assert_eq!(Json::Num(-3.0).to_string(), "-3");
    }

    #[test]
    fn get_looks_up_object_members() {
        let v = Json::obj(vec![("x", Json::Num(1.0)), ("y", Json::Str("s".into()))]);
        assert_eq!(v.get("x").and_then(Json::as_f64), Some(1.0));
        assert_eq!(v.get("y").and_then(Json::as_str), Some("s"));
        assert_eq!(v.get("z"), None);
    }

    #[test]
    fn rejects_malformed_documents() {
        for text in ["", "{", "[1,", "{\"a\" 1}", "tru", "1 2", "{\"a\":}"] {
            assert!(Json::parse(text).is_err(), "{text:?} should fail");
        }
    }

    #[test]
    fn pretty_output_is_indented() {
        let v = Json::obj(vec![("a", Json::Arr(vec![Json::Num(1.0)]))]);
        let p = v.to_string_pretty();
        assert!(p.contains("\n  \"a\": [\n    1\n  ]\n"), "{p}");
    }
}
