//! Tuning *mixed* spaces: arbitrary nominal parameters combined with
//! numeric ones — the paper's stated future work, implemented.
//!
//! Section VI: "In the future we will expand on this work by generalizing
//! from the problem of algorithmic choice towards arbitrary nominal
//! parameters." The generalization is a direct corollary of the two-phase
//! model: every *combination* of nominal parameter values is an "algorithm"
//! in the sense of Section III, and the remaining (ordered) parameters form
//! that combination's phase-1 space. [`MixedTuner`] performs exactly this
//! factorization:
//!
//! 1. split the space `T` into its nominal dimensions `N` and its ordered
//!    dimensions `O`,
//! 2. enumerate the nominal sub-lattice `Π N` (each point is an arm),
//! 3. run the two-phase tuner with a phase-2 strategy over the arms and one
//!    phase-1 searcher per arm over `O`.
//!
//! The nominal cross product grows multiplicatively, so construction
//! rejects lattices above [`MAX_ARMS`] — at that size a per-arm searcher
//! would never receive enough samples to make progress, and the honest
//! answer is to restructure the space, not to hide the explosion.

use crate::param::{ParamClass, Value};
use crate::space::{Configuration, SearchSpace};
use crate::two_phase::{AlgorithmSpec, NominalKind, Phase1Kind, TwoPhaseSample, TwoPhaseTuner};

/// Upper bound on the enumerated nominal cross product.
pub const MAX_ARMS: usize = 512;

/// A tuner for spaces mixing nominal and ordered parameters.
///
/// ```
/// use autotune::prelude::*;
///
/// let space = SearchSpace::new(vec![
///     Parameter::nominal("algo", vec!["a".into(), "b".into()]),
///     Parameter::ratio("block", 1, 16),
/// ]);
/// let mut tuner = MixedTuner::new(space, NominalKind::EpsilonGreedy(0.2), 7);
/// assert_eq!(tuner.num_arms(), 2);
/// for _ in 0..200 {
///     tuner.step(|c| match c.get(0).as_index() {
///         0 => 9.0,
///         _ => 3.0 + (c.get(1).as_f64() - 12.0).abs(),
///     });
/// }
/// let (best, _) = tuner.best().unwrap();
/// assert_eq!(best.get(0).as_index(), 1);
/// ```
pub struct MixedTuner {
    space: SearchSpace,
    /// Indices of the nominal dimensions within the full space.
    nominal_dims: Vec<usize>,
    /// Indices of the ordered dimensions within the full space.
    ordered_dims: Vec<usize>,
    /// One entry per arm: the nominal values of that combination.
    arms: Vec<Vec<Value>>,
    inner: TwoPhaseTuner,
}

impl MixedTuner {
    /// Factor `space` and build the tuner. Panics if the nominal lattice
    /// exceeds [`MAX_ARMS`].
    pub fn new(space: SearchSpace, strategy: NominalKind, seed: u64) -> Self {
        Self::with_phase1(space, strategy, Phase1Kind::NelderMead, seed)
    }

    /// As [`MixedTuner::new`] with an explicit phase-1 searcher.
    pub fn with_phase1(
        space: SearchSpace,
        strategy: NominalKind,
        phase1: Phase1Kind,
        seed: u64,
    ) -> Self {
        let nominal_dims: Vec<usize> = space
            .params()
            .iter()
            .enumerate()
            .filter(|(_, p)| p.class() == ParamClass::Nominal)
            .map(|(i, _)| i)
            .collect();
        let ordered_dims: Vec<usize> = (0..space.dims())
            .filter(|i| !nominal_dims.contains(i))
            .collect();

        // Enumerate the nominal sub-lattice.
        let nominal_space = SearchSpace::new(
            nominal_dims
                .iter()
                .map(|&i| space.params()[i].clone())
                .collect(),
        );
        let arm_count = nominal_space
            .cardinality()
            .expect("nominal parameters are finite") as usize;
        assert!(
            arm_count <= MAX_ARMS,
            "nominal cross product has {arm_count} combinations (> {MAX_ARMS}); \
             restructure the space instead of enumerating it"
        );
        let arms: Vec<Vec<Value>> = nominal_space
            .enumerate()
            .into_iter()
            .map(|c| c.values().to_vec())
            .collect();

        let ordered_space = SearchSpace::new(
            ordered_dims
                .iter()
                .map(|&i| space.params()[i].clone())
                .collect(),
        );
        let specs: Vec<AlgorithmSpec> = arms
            .iter()
            .map(|vals| {
                let label = nominal_dims
                    .iter()
                    .zip(vals)
                    .map(|(&d, v)| {
                        let p = &space.params()[d];
                        let lbl = p
                            .labels()
                            .map(|ls| ls[v.as_index()].clone())
                            .unwrap_or_else(|| format!("{v:?}"));
                        format!("{}={}", p.name(), lbl)
                    })
                    .collect::<Vec<_>>()
                    .join(",");
                AlgorithmSpec::new(label, ordered_space.clone())
            })
            .collect();
        let inner = TwoPhaseTuner::with_phase1(specs, strategy, phase1, seed);
        MixedTuner {
            space,
            nominal_dims,
            ordered_dims,
            arms,
            inner,
        }
    }

    /// The full (mixed) space being tuned.
    pub fn space(&self) -> &SearchSpace {
        &self.space
    }

    /// Number of enumerated nominal combinations.
    pub fn num_arms(&self) -> usize {
        self.arms.len()
    }

    /// Human-readable label of arm `i` (e.g. `algo=fft,layout=SoA`).
    pub fn arm_label(&self, i: usize) -> &str {
        self.inner.algorithm_name(i)
    }

    /// Reassemble a full-space configuration from an arm index and its
    /// phase-1 (ordered-dims) configuration.
    fn assemble(&self, arm: usize, ordered: &Configuration) -> Configuration {
        let mut values = vec![Value::Int(0); self.space.dims()];
        for (&dim, &v) in self.nominal_dims.iter().zip(&self.arms[arm]) {
            values[dim] = v;
        }
        for (&dim, &v) in self.ordered_dims.iter().zip(ordered.values()) {
            values[dim] = v;
        }
        Configuration::new(values)
    }

    /// Propose the next full-space configuration.
    ///
    /// Named for symmetry with [`TwoPhaseTuner::next`]; this is an ask/tell
    /// protocol step, not an `Iterator`.
    #[allow(clippy::should_implement_trait)]
    pub fn next(&mut self) -> Configuration {
        let (arm, ordered) = self.inner.next();
        self.assemble(arm, &ordered)
    }

    /// Report the measurement for the last proposal.
    pub fn report(&mut self, value: f64) -> TwoPhaseSample {
        self.inner.report(value)
    }

    /// One full iteration against a measurement function over the *mixed*
    /// configuration.
    pub fn step<F: FnMut(&Configuration) -> f64>(&mut self, mut m: F) -> TwoPhaseSample {
        let config = self.next();
        let v = m(&config);
        self.report(v)
    }

    /// Best observed full-space configuration and value.
    pub fn best(&self) -> Option<(Configuration, f64)> {
        self.inner
            .best()
            .map(|(arm, ordered, v)| (self.assemble(arm, ordered), v))
    }

    /// Selection counts per nominal combination.
    pub fn selection_counts(&self) -> Vec<usize> {
        self.inner.selection_counts()
    }
}

impl std::fmt::Debug for MixedTuner {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MixedTuner")
            .field("arms", &self.arms.len())
            .field("nominal_dims", &self.nominal_dims)
            .field("ordered_dims", &self.ordered_dims)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::param::Parameter;

    /// algo ∈ {sort-a, sort-b}, layout ∈ {aos, soa}, block ∈ [1, 32].
    fn mixed_space() -> SearchSpace {
        SearchSpace::new(vec![
            Parameter::nominal("algo", vec!["sort-a".into(), "sort-b".into()]),
            Parameter::ratio("block", 1, 32),
            Parameter::nominal("layout", vec!["aos".into(), "soa".into()]),
        ])
    }

    /// Optimum: sort-b + soa + block 24 → 2.0.
    fn cost(c: &Configuration) -> f64 {
        let algo = c.get(0).as_index();
        let block = c.get(1).as_f64();
        let layout = c.get(2).as_index();
        let base = match (algo, layout) {
            (1, 1) => 2.0,
            (1, 0) => 6.0,
            (0, 1) => 9.0,
            _ => 14.0,
        };
        base + 0.05 * (block - 24.0).powi(2)
    }

    #[test]
    fn factors_dimensions_correctly() {
        let t = MixedTuner::new(mixed_space(), NominalKind::EpsilonGreedy(0.1), 1);
        assert_eq!(t.num_arms(), 4, "2 × 2 nominal combinations");
        assert_eq!(t.nominal_dims, vec![0, 2]);
        assert_eq!(t.ordered_dims, vec![1]);
    }

    #[test]
    fn arm_labels_are_descriptive() {
        let t = MixedTuner::new(mixed_space(), NominalKind::EpsilonGreedy(0.1), 1);
        let labels: Vec<&str> = (0..4).map(|i| t.arm_label(i)).collect();
        assert!(labels.contains(&"algo=sort-a,layout=aos"));
        assert!(labels.contains(&"algo=sort-b,layout=soa"));
    }

    #[test]
    fn proposals_are_members_of_the_full_space() {
        let space = mixed_space();
        let mut t = MixedTuner::new(space.clone(), NominalKind::SlidingWindowAuc(16), 2);
        for _ in 0..100 {
            let c = t.next();
            assert!(space.contains(&c), "{c:?}");
            t.report(cost(&c));
        }
    }

    #[test]
    fn finds_the_global_optimum_across_the_mixed_space() {
        let mut t = MixedTuner::new(mixed_space(), NominalKind::EpsilonGreedy(0.20), 3);
        for _ in 0..800 {
            t.step(cost);
        }
        let (best, v) = t.best().unwrap();
        assert_eq!(best.get(0).as_index(), 1, "sort-b");
        assert_eq!(best.get(2).as_index(), 1, "soa");
        assert!(
            (best.get(1).as_i64() - 24).abs() <= 2,
            "block ≈ 24: {best:?}"
        );
        assert!(v < 3.0, "near the optimum of 2.0, got {v}");
    }

    #[test]
    fn purely_nominal_space_works_like_bandit() {
        let space = SearchSpace::new(vec![Parameter::nominal(
            "alg",
            (0..5).map(|i| format!("a{i}")).collect(),
        )]);
        let mut t = MixedTuner::new(space, NominalKind::EpsilonGreedy(0.1), 7);
        assert_eq!(t.num_arms(), 5);
        for _ in 0..200 {
            t.step(|c| [9.0, 3.0, 7.0, 8.0, 5.0][c.get(0).as_index()]);
        }
        assert_eq!(t.best().unwrap().0.get(0).as_index(), 1);
    }

    #[test]
    fn purely_numeric_space_is_single_armed() {
        let space = SearchSpace::new(vec![Parameter::ratio("x", 0, 50)]);
        let mut t = MixedTuner::new(space, NominalKind::EpsilonGreedy(0.1), 9);
        assert_eq!(t.num_arms(), 1);
        for _ in 0..150 {
            t.step(|c| (c.get(0).as_f64() - 33.0).powi(2));
        }
        assert!((t.best().unwrap().0.get(0).as_i64() - 33).abs() <= 1);
    }

    #[test]
    fn counts_cover_all_arms_eventually() {
        let mut t = MixedTuner::new(mixed_space(), NominalKind::OptimumWeighted, 11);
        for _ in 0..100 {
            t.step(cost);
        }
        let counts = t.selection_counts();
        assert_eq!(counts.len(), 4);
        assert!(counts.iter().all(|&c| c > 0), "{counts:?}");
        assert_eq!(counts.iter().sum::<usize>(), 100);
    }

    #[test]
    #[should_panic(expected = "combinations")]
    fn rejects_exploding_nominal_lattices() {
        let space = SearchSpace::new(
            (0..4)
                .map(|i| {
                    Parameter::nominal(format!("n{i}"), (0..6).map(|j| format!("v{j}")).collect())
                })
                .collect(),
        );
        // 6^4 = 1296 > MAX_ARMS.
        MixedTuner::new(space, NominalKind::EpsilonGreedy(0.1), 0);
    }
}
