//! Phase-2 strategies for tuning *nominal* parameters — in particular the
//! algorithmic-choice parameter (Section III of the paper).
//!
//! Algorithms taking the same inputs and producing the same outputs "can not
//! be ordered, do not offer a notion of distance and do not have a natural
//! zero point", so none of the classical numeric searchers apply. The paper
//! devises four probabilistic selection strategies, all of which keep every
//! algorithm's selection probability strictly positive so that a currently-
//! slow algorithm can still improve under phase-1 tuning:
//!
//! * [`EpsilonGreedy`] — exploit the best-known algorithm with probability
//!   `1 − ε`, explore uniformly otherwise (ε ∈ {5%, 10%, 20%} in the paper).
//! * [`GradientWeighted`] — weight by the recent *improvement gradient* of
//!   each algorithm's inverse runtime (window 16).
//! * [`OptimumWeighted`] — weight by each algorithm's best observed inverse
//!   runtime.
//! * [`SlidingWindowAuc`] — weight by the average inverse runtime over a
//!   sliding window (window 16), after OpenTuner's AUC bandit.
//!
//! [`Softmax`] (Gibbs selection) is additionally provided as the alternative
//! the paper discusses and rejects in Section III-A, so the comparison can
//! be reproduced.

mod combined;
mod epsilon_greedy;
mod gradient_weighted;
mod optimum_weighted;
mod sliding_auc;
mod softmax;

pub use combined::EpsilonGradient;
pub use epsilon_greedy::EpsilonGreedy;
pub use gradient_weighted::{GradientWeighted, DEFAULT_WINDOW as GRADIENT_DEFAULT_WINDOW};
pub use optimum_weighted::OptimumWeighted;
pub use sliding_auc::{SlidingWindowAuc, DEFAULT_WINDOW as AUC_DEFAULT_WINDOW};
pub use softmax::Softmax;

use crate::history::AlgorithmHistory;
use crate::rng::Rng;

/// Ask/tell interface of a phase-2 (algorithm-selection) strategy.
///
/// Protocol: call [`NominalStrategy::select`] to obtain the algorithm index
/// for this tuning iteration, run the algorithm (with phase-1-tuned
/// parameters), then [`NominalStrategy::report`] its measured runtime.
///
/// `Send` is a supertrait so strategy state can live inside the concurrent
/// multi-site runtime ([`crate::site`]), where any request thread may claim
/// a site and drive its tuner; every strategy in this crate owns plain data
/// and is `Send` automatically.
pub trait NominalStrategy: Send {
    /// Number of alternatives `|𝒜|`.
    fn num_algorithms(&self) -> usize;

    /// Choose the algorithm for the next tuning iteration.
    fn select(&mut self) -> usize;

    /// Report the measured runtime of the most recently selected algorithm.
    fn report(&mut self, algorithm: usize, value: f64);

    /// Report that the most recent measurement of `algorithm` *failed*
    /// (panic, timeout, non-finite value). The default records the
    /// [`crate::robust::failure_penalty`] — a finite multiple of the worst
    /// observed runtime — as a regular sample: the failing algorithm is
    /// strongly deprioritized but keeps a strictly positive selection
    /// probability, preserving the paper's "never exclude an algorithm"
    /// invariant even under faults.
    fn report_failure(&mut self, algorithm: usize) {
        let penalty = crate::robust::failure_penalty(self.histories());
        self.report(algorithm, penalty);
    }

    /// Write the strategy's current selection weights into `out`, one per
    /// algorithm, without allocating.
    ///
    /// Fills `min(out.len(), num_algorithms())` entries and leaves any
    /// extra entries untouched. The weights are the quantities that drive
    /// [`select`](Self::select) — not necessarily normalized (ε-based
    /// strategies write probabilities, the weighted strategies write raw
    /// weights). The default implementation writes a uniform `1.0`.
    ///
    /// This is the telemetry-facing view: `TwoPhaseTuner` snapshots the
    /// weight vector into a fixed-size buffer on every selection, so
    /// implementations must not allocate.
    fn weights_into(&self, out: &mut [f64]) {
        let n = self.num_algorithms().min(out.len());
        for w in &mut out[..n] {
            *w = 1.0;
        }
    }

    /// Current selection weights as a fresh vector; see
    /// [`weights_into`](Self::weights_into).
    fn weights(&self) -> Vec<f64> {
        let mut out = vec![0.0; self.num_algorithms()];
        self.weights_into(&mut out);
        out
    }

    /// The algorithm currently believed best (lowest best observed
    /// runtime), or `None` before any sample.
    fn best(&self) -> Option<usize>;

    /// Per-algorithm sample histories (for analysis and plots).
    fn histories(&self) -> &[AlgorithmHistory];

    /// Display name, including parameterization (e.g. `e-greedy(10%)`).
    fn name(&self) -> String;
}

/// Shared bookkeeping for the strategy implementations: histories plus an
/// iteration counter.
#[derive(Debug, Clone)]
pub(crate) struct SelectionState {
    pub histories: Vec<AlgorithmHistory>,
    pub iteration: usize,
    pub rng: Rng,
}

impl SelectionState {
    pub fn new(num_algorithms: usize, seed: u64) -> Self {
        assert!(num_algorithms > 0, "need at least one algorithm");
        SelectionState {
            histories: (0..num_algorithms)
                .map(|_| AlgorithmHistory::new())
                .collect(),
            iteration: 0,
            rng: Rng::new(seed),
        }
    }

    pub fn record(&mut self, algorithm: usize, value: f64) {
        // Non-finite values are measurement failures that bypassed the
        // robust layer; convert them to the failure penalty so the tuning
        // loop keeps running instead of poisoning the weight math.
        let value = if value.is_finite() {
            value
        } else {
            crate::robust::failure_penalty(&self.histories)
        };
        self.histories[algorithm].record(
            self.iteration,
            crate::space::Configuration::empty(),
            value,
        );
        self.iteration += 1;
    }

    /// Index of the algorithm with the lowest best observed runtime.
    pub fn best(&self) -> Option<usize> {
        self.histories
            .iter()
            .enumerate()
            .filter_map(|(i, h)| h.best_value().map(|v| (i, v)))
            .min_by(|a, b| a.1.partial_cmp(&b.1).expect("finite"))
            .map(|(i, _)| i)
    }

    /// First algorithm that has never been sampled, if any (deterministic
    /// order).
    pub fn first_unseen(&self) -> Option<usize> {
        self.histories.iter().position(AlgorithmHistory::is_empty)
    }

    /// Like [`record`](Self::record), for strategies whose weights look at
    /// a sliding window of `window` samples: additionally emits a
    /// [`telemetry`](crate::telemetry) eviction event when the new sample
    /// pushes the oldest one out of the algorithm's logical window.
    pub fn record_windowed(&mut self, algorithm: usize, value: f64, window: usize) {
        self.record(algorithm, value);
        let len = self.histories[algorithm].len();
        if len > window {
            crate::telemetry::emit(|| crate::telemetry::EventKind::WindowEvicted {
                algorithm: algorithm as u16,
                evicted_sample: (len - window - 1) as u64,
            });
        }
    }
}

/// Fill in weights for never-sampled algorithms, in place.
///
/// The paper's weighted strategies "never exclude an algorithm from the
/// selection process" and require `w_A > 0`, but their weight definitions
/// need at least one sample. `NaN` entries mark algorithms whose weight is
/// undefined; they are replaced with the *optimistic* convention: the
/// maximum currently-defined weight (or 1 if none is defined), which
/// guarantees every algorithm is sampled early without any special-cased
/// initialization phase. Operating on a caller-provided slice keeps the
/// weight computation allocation-free.
pub(crate) fn fill_unseen_optimistic(weights: &mut [f64]) {
    let max_defined = weights
        .iter()
        .copied()
        .filter(|w| !w.is_nan())
        .fold(f64::NEG_INFINITY, f64::max);
    let fallback = if max_defined.is_finite() && max_defined > 0.0 {
        max_defined
    } else {
        1.0
    };
    for w in weights {
        if w.is_nan() {
            *w = fallback;
        }
    }
}

#[cfg(test)]
pub(crate) mod test_util {
    use super::NominalStrategy;

    /// Drive a strategy against fixed per-algorithm costs for `iters`
    /// iterations; returns how often each algorithm was selected.
    pub fn drive(strategy: &mut dyn NominalStrategy, costs: &[f64], iters: usize) -> Vec<usize> {
        let mut counts = vec![0usize; costs.len()];
        for _ in 0..iters {
            let a = strategy.select();
            counts[a] += 1;
            strategy.report(a, costs[a]);
        }
        counts
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fill_unseen_uses_max_defined_weight() {
        let mut w = vec![2.0, f64::NAN, 5.0];
        fill_unseen_optimistic(&mut w);
        assert_eq!(w, vec![2.0, 5.0, 5.0]);
    }

    #[test]
    fn fill_unseen_all_undefined_gives_uniform() {
        let mut w = vec![f64::NAN, f64::NAN];
        fill_unseen_optimistic(&mut w);
        assert_eq!(w, vec![1.0, 1.0]);
    }

    #[test]
    fn selection_state_tracks_best_and_unseen() {
        let mut s = SelectionState::new(3, 0);
        assert_eq!(s.first_unseen(), Some(0));
        assert_eq!(s.best(), None);
        s.record(1, 5.0);
        assert_eq!(s.first_unseen(), Some(0));
        s.record(0, 3.0);
        s.record(2, 4.0);
        assert_eq!(s.first_unseen(), None);
        assert_eq!(s.best(), Some(0));
        s.record(2, 1.0);
        assert_eq!(s.best(), Some(2));
    }

    #[test]
    #[should_panic(expected = "at least one")]
    fn zero_algorithms_rejected() {
        SelectionState::new(0, 0);
    }

    #[test]
    fn non_finite_reports_become_penalties() {
        let mut s = SelectionState::new(2, 0);
        s.record(0, 10.0);
        s.record(1, f64::NAN);
        let v = s.histories[1].last_value().unwrap();
        assert!(v.is_finite());
        assert_eq!(v, 40.0, "4x the worst observed runtime");
        assert_eq!(s.best(), Some(0));
    }

    #[test]
    fn report_failure_deprioritizes_without_excluding() {
        let mut s = SlidingWindowAuc::new(2, 16, 3);
        s.report(0, 10.0);
        s.report(1, 10.0);
        for _ in 0..10 {
            s.report_failure(1);
        }
        // Arm 1's window is dominated by penalties; sample the selection
        // distribution without new reports so the window stays fixed.
        let mut counts = [0usize; 2];
        for _ in 0..2000 {
            counts[s.select()] += 1;
        }
        assert!(counts[0] > 3 * counts[1], "{counts:?}");
        assert!(counts[1] > 0, "never exclude");
    }

    #[test]
    fn failed_algorithm_recovers_after_failures_stop() {
        let mut s = EpsilonGreedy::new(2, 0.2, 5);
        s.report(0, 10.0);
        s.report(1, 8.0);
        for _ in 0..20 {
            s.report_failure(1);
        }
        assert_eq!(s.best(), Some(1), "best tracks the minimum, not recency");
        // New clean samples keep arriving; the arm stays selectable.
        let mut picked1 = 0;
        for _ in 0..500 {
            let a = s.select();
            if a == 1 {
                picked1 += 1;
            }
            s.report(a, if a == 0 { 10.0 } else { 8.0 });
        }
        assert!(picked1 > 100, "recovered arm must be exploited again");
    }
}
