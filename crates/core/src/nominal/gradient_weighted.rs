//! The Gradient Weighted strategy (Section III-B).
//!
//! Chooses algorithm `A` with probability proportional to a weight derived
//! from the *gradient* of its inverse-runtime curve over the latest
//! iteration window `[i0, i1]` of `A`'s own samples:
//!
//! ```text
//! G_A = (1/m_{A,i1} − 1/m_{A,i0}) / (i1 − i0)
//! w_A = G_A + 2      if G_A ≥ −1
//!       −1 / G_A     otherwise
//! ```
//!
//! Both branches are strictly positive, so no algorithm is ever excluded.
//! The strategy prefers algorithms that are *improving* under phase-1
//! tuning, regardless of their absolute performance — which is exactly why
//! the paper calls it "a special case, which we do not expect to be
//! applicable in practice": once tuning converges everywhere, the gradients
//! vanish and selection degenerates to uniform random (the regression test
//! below pins that behaviour down).

use crate::history::AlgorithmHistory;
use crate::nominal::{fill_unseen_optimistic, NominalStrategy, SelectionState};

/// Default iteration window used by the paper's case studies.
pub const DEFAULT_WINDOW: usize = 16;

/// Gradient-weighted probabilistic algorithm selection.
#[derive(Debug, Clone)]
pub struct GradientWeighted {
    state: SelectionState,
    window: usize,
}

impl GradientWeighted {
    /// `window`: how many of each algorithm's latest samples the gradient
    /// is fit over (the paper uses 16; must be at least 2).
    pub fn new(num_algorithms: usize, window: usize, seed: u64) -> Self {
        assert!(window >= 2, "gradient needs a window of at least 2");
        GradientWeighted {
            state: SelectionState::new(num_algorithms, seed),
            window,
        }
    }

    /// The paper's weight function of a gradient.
    pub fn weight_of_gradient(g: f64) -> f64 {
        if g >= -1.0 {
            g + 2.0
        } else {
            -1.0 / g
        }
    }
}

impl NominalStrategy for GradientWeighted {
    fn num_algorithms(&self) -> usize {
        self.state.histories.len()
    }

    fn select(&mut self) -> usize {
        let weights = self.weights();
        self.state.rng.pick_weighted(&weights)
    }

    /// Current selection weights. Algorithms with fewer than two samples
    /// have an undefined gradient; they are treated as gradient 0
    /// (weight 2), which matches the "no special initialization" behaviour
    /// of the paper's non-greedy strategies.
    fn weights_into(&self, out: &mut [f64]) {
        let n = self.num_algorithms().min(out.len());
        for (w, h) in out[..n].iter_mut().zip(&self.state.histories) {
            *w = h
                .window_gradient(self.window)
                .map(Self::weight_of_gradient)
                .or(if h.is_empty() { None } else { Some(2.0) })
                .unwrap_or(f64::NAN);
        }
        fill_unseen_optimistic(&mut out[..n]);
    }

    fn report(&mut self, algorithm: usize, value: f64) {
        self.state.record_windowed(algorithm, value, self.window);
    }

    fn best(&self) -> Option<usize> {
        self.state.best()
    }

    fn histories(&self) -> &[AlgorithmHistory] {
        &self.state.histories
    }

    fn name(&self) -> String {
        format!("gradient-weighted(w={})", self.window)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::nominal::test_util::drive;

    #[test]
    fn weight_function_matches_paper() {
        // G ≥ −1 branch.
        assert_eq!(GradientWeighted::weight_of_gradient(0.0), 2.0);
        assert_eq!(GradientWeighted::weight_of_gradient(1.0), 3.0);
        assert_eq!(GradientWeighted::weight_of_gradient(-1.0), 1.0);
        // G < −1 branch.
        assert_eq!(GradientWeighted::weight_of_gradient(-2.0), 0.5);
        assert_eq!(GradientWeighted::weight_of_gradient(-10.0), 0.1);
    }

    #[test]
    fn weight_is_always_positive() {
        for g in [-1e9, -100.0, -1.001, -1.0, -0.5, 0.0, 0.5, 1e9] {
            assert!(
                GradientWeighted::weight_of_gradient(g) > 0.0,
                "weight must be positive at G={g}"
            );
        }
    }

    #[test]
    fn weight_is_continuous_at_branch_point() {
        let left = GradientWeighted::weight_of_gradient(-1.0 - 1e-9);
        let right = GradientWeighted::weight_of_gradient(-1.0 + 1e-9);
        assert!((left - right).abs() < 1e-6);
    }

    #[test]
    fn flat_performance_degenerates_to_uniform_random() {
        // The paper's Section IV-A expectation: zero gradients everywhere
        // make the strategy behave like random selection.
        let costs = [10.0, 20.0, 30.0];
        let mut s = GradientWeighted::new(3, DEFAULT_WINDOW, 23);
        let n = 30_000;
        let counts = drive(&mut s, &costs, n);
        for &c in &counts {
            let frac = c as f64 / n as f64;
            assert!(
                (frac - 1.0 / 3.0).abs() < 0.03,
                "expected ~uniform selection, got {counts:?}"
            );
        }
    }

    #[test]
    fn prefers_improving_algorithm() {
        // Arm 0 is constant; arm 1 improves steadily. The improving arm
        // must receive a larger share of selections while it improves.
        let mut s = GradientWeighted::new(2, DEFAULT_WINDOW, 29);
        let mut arm1 = 100.0f64;
        let mut counts = [0usize; 2];
        for _ in 0..600 {
            let a = s.select();
            counts[a] += 1;
            let v = if a == 0 {
                50.0
            } else {
                arm1 = (arm1 * 0.9).max(1.0);
                arm1
            };
            s.report(a, v);
        }
        assert!(
            counts[1] > counts[0],
            "improving arm should be preferred: {counts:?}"
        );
    }

    #[test]
    fn degrading_algorithm_is_deprioritized_but_not_excluded() {
        let mut s = GradientWeighted::new(2, DEFAULT_WINDOW, 31);
        // Arm 0 flat: G = 0, weight 2. Arm 1 steeply degrading in inverse
        // runtime (1/0.1 = 10 down to 1/0.4 = 2.5): G = -7.5 < -1, so its
        // weight takes the -1/G branch and collapses to ~0.133 — small but
        // strictly positive, per the paper's "never exclude" requirement.
        s.report(0, 50.0);
        s.report(0, 50.0);
        s.report(1, 0.1);
        s.report(1, 0.4);
        let w = s.weights();
        assert_eq!(w[0], 2.0);
        assert!(
            w[1] > 0.0 && w[1] < 0.2,
            "expected collapsed weight, got {w:?}"
        );
        // Selection probability stays positive: the degraded arm is still
        // picked occasionally.
        let mut counts = [0usize; 2];
        for _ in 0..2000 {
            counts[s.select()] += 1;
        }
        assert!(counts[0] > counts[1], "{counts:?}");
        assert!(counts[1] > 0, "never exclude an algorithm entirely");
    }

    #[test]
    fn single_sample_arms_get_neutral_weight() {
        let mut s = GradientWeighted::new(2, DEFAULT_WINDOW, 1);
        s.report(0, 5.0);
        let w = s.weights();
        assert_eq!(w, vec![2.0, 2.0]);
    }

    #[test]
    #[should_panic(expected = "window")]
    fn rejects_window_below_two() {
        GradientWeighted::new(2, 1, 0);
    }
}
