//! The Sliding Window Area-Under-The-Curve strategy (Section III-D).
//!
//! Assigns each algorithm a weight based on the area under its inverse-
//! runtime curve within a sliding iteration window `[i0, i1]` of its own
//! samples:
//!
//! ```text
//! w_A = (Σ_{i=i0}^{i1} 1/m_{A,i}) / (i1 − i0)
//! ```
//!
//! Motivated by the AUC bandit meta-heuristic of OpenTuner (Ansel et al.,
//! PACT 2014). Like Optimum Weighted it decides on *absolute* windowed
//! performance, so algorithms of similar speed are selected with similar
//! frequency.

use crate::history::AlgorithmHistory;
use crate::nominal::{fill_unseen_optimistic, NominalStrategy, SelectionState};

/// Default window size used in the paper's case studies.
pub const DEFAULT_WINDOW: usize = 16;

/// Sliding-window AUC probabilistic algorithm selection.
#[derive(Debug, Clone)]
pub struct SlidingWindowAuc {
    state: SelectionState,
    window: usize,
}

impl SlidingWindowAuc {
    /// `window`: how many of each algorithm's latest samples contribute to
    /// its AUC weight (the paper uses 16).
    pub fn new(num_algorithms: usize, window: usize, seed: u64) -> Self {
        assert!(window >= 1, "window must be positive");
        SlidingWindowAuc {
            state: SelectionState::new(num_algorithms, seed),
            window,
        }
    }
}

impl NominalStrategy for SlidingWindowAuc {
    fn num_algorithms(&self) -> usize {
        self.state.histories.len()
    }

    fn select(&mut self) -> usize {
        let weights = self.weights();
        self.state.rng.pick_weighted(&weights)
    }

    fn weights_into(&self, out: &mut [f64]) {
        let n = self.num_algorithms().min(out.len());
        for (w, h) in out[..n].iter_mut().zip(&self.state.histories) {
            *w = h.window_auc(self.window).unwrap_or(f64::NAN);
        }
        fill_unseen_optimistic(&mut out[..n]);
    }

    fn report(&mut self, algorithm: usize, value: f64) {
        self.state.record_windowed(algorithm, value, self.window);
    }

    fn best(&self) -> Option<usize> {
        self.state.best()
    }

    fn histories(&self) -> &[AlgorithmHistory] {
        &self.state.histories
    }

    fn name(&self) -> String {
        format!("sliding-window-auc(w={})", self.window)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::nominal::test_util::drive;

    #[test]
    fn weight_matches_definition() {
        let mut s = SlidingWindowAuc::new(1, 16, 1);
        s.report(0, 2.0);
        s.report(0, 4.0);
        s.report(0, 2.0);
        // (1/2 + 1/4 + 1/2) / 2
        assert!((s.weights()[0] - 0.625).abs() < 1e-12);
    }

    #[test]
    fn window_forgets_old_samples() {
        let mut s = SlidingWindowAuc::new(1, 2, 1);
        s.report(0, 1000.0);
        s.report(0, 2.0);
        s.report(0, 2.0);
        // Only the last two samples count: (1/2 + 1/2) / 1 = 1.
        assert!((s.weights()[0] - 1.0).abs() < 1e-12);
    }

    #[test]
    fn faster_algorithm_selected_more_often() {
        let costs = [1.0, 3.0];
        let mut s = SlidingWindowAuc::new(2, DEFAULT_WINDOW, 59);
        let n = 30_000;
        let counts = drive(&mut s, &costs, n);
        let frac0 = counts[0] as f64 / n as f64;
        assert!((frac0 - 0.75).abs() < 0.03, "expected ~3:1, got {counts:?}");
    }

    #[test]
    fn similar_runtimes_are_not_discriminated() {
        let costs = [10.0, 10.5, 11.0];
        let mut s = SlidingWindowAuc::new(3, DEFAULT_WINDOW, 61);
        let n = 30_000;
        let counts = drive(&mut s, &costs, n);
        let max = *counts.iter().max().unwrap() as f64;
        let min = *counts.iter().min().unwrap() as f64;
        assert!(max / min < 1.25, "{counts:?}");
    }

    #[test]
    fn adapts_to_regime_change() {
        // Arm 0 fast then slow; the sliding window must shift preference to
        // arm 1 once the regime flips (Optimum Weighted cannot do this).
        let mut s = SlidingWindowAuc::new(2, 8, 67);
        let mut late_counts = [0usize; 2];
        for i in 0..3000 {
            let a = s.select();
            let v = match (a, i < 500) {
                (0, true) => 1.0,
                (0, false) => 50.0,
                (1, _) => 5.0,
                _ => unreachable!(),
            };
            s.report(a, v);
            if i >= 2000 {
                late_counts[a] += 1;
            }
        }
        assert!(
            late_counts[1] > late_counts[0] * 3,
            "window should adapt: {late_counts:?}"
        );
    }

    #[test]
    fn no_algorithm_excluded() {
        let costs = [1.0, 500.0];
        let mut s = SlidingWindowAuc::new(2, DEFAULT_WINDOW, 71);
        let counts = drive(&mut s, &costs, 20_000);
        assert!(counts[1] > 0);
    }

    #[test]
    fn unseen_algorithms_get_optimistic_weight() {
        let mut s = SlidingWindowAuc::new(2, 16, 73);
        s.report(0, 4.0);
        assert_eq!(s.weights(), vec![0.25, 0.25]);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn rejects_zero_window() {
        SlidingWindowAuc::new(2, 0, 0);
    }
}
