//! Softmax (Gibbs/Boltzmann) action selection — the alternative the paper
//! discusses and deliberately rejects in Section III-A.
//!
//! During exploration a soft-max policy chooses an action with probability
//! from a Gibbs distribution over the action values, which *avoids* actions
//! that have produced significantly worse results. That is precisely what
//! the paper does **not** want for algorithmic choice: a slow algorithm may
//! become fast under phase-1 tuning, so it must keep being revisited. We
//! implement softmax anyway as a reproducible baseline for that argument
//! (and the `bench/crossover` ablation).
//!
//! The action value of algorithm `A` is its mean inverse runtime over a
//! sliding window; selection probability is
//! `P_A ∝ exp(Q_A / τ)` with temperature `τ > 0`.

use crate::history::AlgorithmHistory;
use crate::nominal::{NominalStrategy, SelectionState};

/// Gibbs-distribution algorithm selection.
#[derive(Debug, Clone)]
pub struct Softmax {
    state: SelectionState,
    temperature: f64,
    window: usize,
}

impl Softmax {
    /// `temperature`: Gibbs temperature `τ > 0`; `window`: how many of
    /// each algorithm's latest samples define its action value.
    pub fn new(num_algorithms: usize, temperature: f64, window: usize, seed: u64) -> Self {
        assert!(temperature > 0.0, "temperature must be positive");
        assert!(window >= 1, "window must be positive");
        Softmax {
            state: SelectionState::new(num_algorithms, seed),
            temperature,
            window,
        }
    }

    /// Normalized Gibbs selection probabilities. Unseen algorithms take the
    /// maximum observed action value (optimism under uncertainty).
    pub fn probabilities(&self) -> Vec<f64> {
        self.weights()
    }
}

impl NominalStrategy for Softmax {
    fn num_algorithms(&self) -> usize {
        self.state.histories.len()
    }

    fn select(&mut self) -> usize {
        let probs = self.probabilities();
        self.state.rng.pick_weighted(&probs)
    }

    /// Normalized Gibbs selection probabilities, computed in place.
    fn weights_into(&self, out: &mut [f64]) {
        let n = self.num_algorithms().min(out.len());
        let q = &mut out[..n];
        for (v, h) in q.iter_mut().zip(&self.state.histories) {
            let w = h.latest_window(self.window);
            *v = if w.is_empty() {
                f64::NAN
            } else {
                w.iter().map(|s| 1.0 / s.value).sum::<f64>() / w.len() as f64
            };
        }
        // Unseen algorithms take the maximum observed action value.
        let q_max_defined = q
            .iter()
            .copied()
            .filter(|v| !v.is_nan())
            .fold(f64::NEG_INFINITY, f64::max);
        let fallback = if q_max_defined.is_finite() {
            q_max_defined
        } else {
            0.0
        };
        for v in q.iter_mut() {
            if v.is_nan() {
                *v = fallback;
            }
        }
        // Numerically stable softmax.
        let m = q.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        let mut z = 0.0;
        for v in q.iter_mut() {
            *v = ((*v - m) / self.temperature).exp();
            z += *v;
        }
        for v in q.iter_mut() {
            *v /= z;
        }
    }

    fn report(&mut self, algorithm: usize, value: f64) {
        self.state.record_windowed(algorithm, value, self.window);
    }

    fn best(&self) -> Option<usize> {
        self.state.best()
    }

    fn histories(&self) -> &[AlgorithmHistory] {
        &self.state.histories
    }

    fn name(&self) -> String {
        format!("softmax(t={})", self.temperature)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::nominal::test_util::drive;

    #[test]
    fn probabilities_sum_to_one() {
        let mut s = Softmax::new(3, 0.5, 16, 1);
        s.report(0, 2.0);
        s.report(1, 3.0);
        s.report(2, 4.0);
        let p = s.probabilities();
        assert!((p.iter().sum::<f64>() - 1.0).abs() < 1e-12);
        assert!(p.iter().all(|&x| x > 0.0));
    }

    #[test]
    fn low_temperature_is_nearly_greedy() {
        let costs = [1.0, 2.0, 3.0];
        let mut s = Softmax::new(3, 0.01, 16, 79);
        let counts = drive(&mut s, &costs, 5000);
        assert!(counts[0] as f64 / 5000.0 > 0.95, "{counts:?}");
    }

    #[test]
    fn high_temperature_is_nearly_uniform() {
        let costs = [1.0, 2.0, 3.0];
        let mut s = Softmax::new(3, 1000.0, 16, 83);
        let n = 30_000;
        let counts = drive(&mut s, &costs, n);
        for &c in &counts {
            assert!((c as f64 / n as f64 - 1.0 / 3.0).abs() < 0.03, "{counts:?}");
        }
    }

    #[test]
    fn avoids_significantly_worse_algorithms() {
        // The behaviour the paper rejects: a much-worse arm is starved
        // far harder than under ε-Greedy's uniform exploration.
        let costs = [1.0, 100.0];
        let mut s = Softmax::new(2, 0.1, 16, 89);
        let counts = drive(&mut s, &costs, 10_000);
        assert!(
            (counts[1] as f64) < 0.01 * 10_000.0,
            "softmax should starve the slow arm: {counts:?}"
        );
    }

    #[test]
    #[should_panic(expected = "temperature")]
    fn rejects_nonpositive_temperature() {
        Softmax::new(2, 0.0, 16, 0);
    }
}
