//! The Optimum Weighted strategy (Section III-C).
//!
//! Chooses algorithm `A` with probability relative to its current optimal
//! performance: `w_A = max_i 1/m_{A,i}` — the best (largest) inverse runtime
//! observed for `A` so far. The weight is strictly positive, so no algorithm
//! is ever excluded.
//!
//! Because weights are *absolute* inverse runtimes, algorithms whose best
//! runtimes are close receive nearly equal probabilities — the paper's
//! Section IV-B explanation for why this strategy fails to discriminate the
//! four kD-tree builders.

use crate::history::AlgorithmHistory;
use crate::nominal::{fill_unseen_optimistic, NominalStrategy, SelectionState};

/// Optimum-weighted probabilistic algorithm selection.
#[derive(Debug, Clone)]
pub struct OptimumWeighted {
    state: SelectionState,
}

impl OptimumWeighted {
    /// A new strategy over `num_algorithms` alternatives.
    pub fn new(num_algorithms: usize, seed: u64) -> Self {
        OptimumWeighted {
            state: SelectionState::new(num_algorithms, seed),
        }
    }
}

impl NominalStrategy for OptimumWeighted {
    fn num_algorithms(&self) -> usize {
        self.state.histories.len()
    }

    fn select(&mut self) -> usize {
        let weights = self.weights();
        self.state.rng.pick_weighted(&weights)
    }

    /// Current selection weights: best inverse runtime per algorithm,
    /// optimistic for unseen algorithms.
    fn weights_into(&self, out: &mut [f64]) {
        let n = self.num_algorithms().min(out.len());
        for (w, h) in out[..n].iter_mut().zip(&self.state.histories) {
            *w = h.best_value().map(|v| 1.0 / v).unwrap_or(f64::NAN);
        }
        fill_unseen_optimistic(&mut out[..n]);
    }

    fn report(&mut self, algorithm: usize, value: f64) {
        self.state.record(algorithm, value);
    }

    fn best(&self) -> Option<usize> {
        self.state.best()
    }

    fn histories(&self) -> &[AlgorithmHistory] {
        &self.state.histories
    }

    fn name(&self) -> String {
        "optimum-weighted".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::nominal::test_util::drive;

    #[test]
    fn weights_are_best_inverse_runtimes() {
        let mut s = OptimumWeighted::new(2, 1);
        s.report(0, 4.0);
        s.report(0, 2.0); // best of arm 0 is 2.0
        s.report(1, 10.0);
        assert_eq!(s.weights(), vec![0.5, 0.1]);
    }

    #[test]
    fn selection_proportional_to_inverse_best() {
        // Arms with best runtimes 1 and 4 should be picked ~4:1.
        let costs = [1.0, 4.0];
        let mut s = OptimumWeighted::new(2, 37);
        let n = 40_000;
        let counts = drive(&mut s, &costs, n);
        let frac0 = counts[0] as f64 / n as f64;
        assert!((frac0 - 0.8).abs() < 0.02, "expected ~0.8, got {frac0}");
    }

    #[test]
    fn similar_runtimes_are_not_discriminated() {
        // The paper's observation: small absolute differences yield nearly
        // equal probabilities.
        let costs = [10.0, 11.0, 12.0];
        let mut s = OptimumWeighted::new(3, 41);
        let n = 30_000;
        let counts = drive(&mut s, &costs, n);
        let max = *counts.iter().max().unwrap() as f64;
        let min = *counts.iter().min().unwrap() as f64;
        assert!(
            max / min < 1.35,
            "close runtimes should spread selections: {counts:?}"
        );
    }

    #[test]
    fn no_algorithm_excluded() {
        let costs = [1.0, 1000.0];
        let mut s = OptimumWeighted::new(2, 43);
        let counts = drive(&mut s, &costs, 20_000);
        assert!(counts[1] > 0, "slow arm keeps positive probability");
    }

    #[test]
    fn unseen_algorithms_get_optimistic_weight() {
        let mut s = OptimumWeighted::new(3, 47);
        s.report(0, 2.0);
        let w = s.weights();
        assert_eq!(w, vec![0.5, 0.5, 0.5]);
    }

    #[test]
    fn weight_uses_historical_best_not_last() {
        // A late bad sample must not reduce the weight (max-norm memory).
        let mut s = OptimumWeighted::new(1, 53);
        s.report(0, 2.0);
        s.report(0, 100.0);
        assert_eq!(s.weights(), vec![0.5]);
    }
}
