//! The ε-Greedy strategy (Section III-A).
//!
//! Select the currently best performing algorithm with probability `1 − ε`,
//! otherwise an algorithm uniformly at random. ε directly controls the
//! explorative behaviour; the paper evaluates ε ∈ {5%, 10%, 20%}.
//!
//! Initialization follows the paper exactly: the strategy tries "every
//! individual algorithm exactly once in deterministic order, although this
//! is still subject to the ε-randomness" — i.e. the ε exploration roll is
//! made first, and only the exploitation branch walks the deterministic
//! initialization order. This is what produces the visible 7-step staircase
//! at the start of the Figure 2 curves.

use crate::history::AlgorithmHistory;
use crate::nominal::{NominalStrategy, SelectionState};

/// ε-Greedy algorithm selection.
///
/// ```
/// use autotune::nominal::{EpsilonGreedy, NominalStrategy};
///
/// let mut s = EpsilonGreedy::new(3, 0.10, 42);
/// for _ in 0..100 {
///     let alg = s.select();
///     let runtime_ms = [20.0, 5.0, 12.0][alg];
///     s.report(alg, runtime_ms);
/// }
/// assert_eq!(s.best(), Some(1)); // the 5 ms algorithm
/// ```
#[derive(Debug, Clone)]
pub struct EpsilonGreedy {
    state: SelectionState,
    epsilon: f64,
}

impl EpsilonGreedy {
    /// `epsilon` is the exploration probability in `[0, 1]`.
    pub fn new(num_algorithms: usize, epsilon: f64, seed: u64) -> Self {
        assert!(
            (0.0..=1.0).contains(&epsilon),
            "epsilon must be a probability, got {epsilon}"
        );
        EpsilonGreedy {
            state: SelectionState::new(num_algorithms, seed),
            epsilon,
        }
    }

    /// The exploration probability ε.
    pub fn epsilon(&self) -> f64 {
        self.epsilon
    }
}

impl NominalStrategy for EpsilonGreedy {
    fn num_algorithms(&self) -> usize {
        self.state.histories.len()
    }

    fn select(&mut self) -> usize {
        // The ε-roll happens even during initialization.
        if self.state.rng.next_bool(self.epsilon) {
            return self.state.rng.pick_index(self.num_algorithms());
        }
        // Deterministic-order initialization: try each algorithm once.
        if let Some(unseen) = self.state.first_unseen() {
            return unseen;
        }
        self.state.best().expect("all algorithms have samples")
    }

    /// The effective selection distribution: `ε/|𝒜|` everywhere plus
    /// `1 − ε` on the exploitation target (the next unseen algorithm
    /// during initialization, the best-known one afterwards).
    fn weights_into(&self, out: &mut [f64]) {
        let n = self.num_algorithms().min(out.len());
        if n == 0 {
            return;
        }
        let explore = self.epsilon / self.num_algorithms() as f64;
        for w in &mut out[..n] {
            *w = explore;
        }
        let target = self
            .state
            .first_unseen()
            .or_else(|| self.state.best())
            .unwrap_or(0);
        if target < n {
            out[target] += 1.0 - self.epsilon;
        }
    }

    fn report(&mut self, algorithm: usize, value: f64) {
        self.state.record(algorithm, value);
    }

    fn best(&self) -> Option<usize> {
        self.state.best()
    }

    fn histories(&self) -> &[AlgorithmHistory] {
        &self.state.histories
    }

    fn name(&self) -> String {
        format!("e-greedy({}%)", (self.epsilon * 100.0).round() as u32)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::nominal::test_util::drive;

    #[test]
    fn converges_to_best_algorithm() {
        let costs = [50.0, 10.0, 30.0, 45.0];
        let mut s = EpsilonGreedy::new(4, 0.10, 42);
        let counts = drive(&mut s, &costs, 1000);
        assert_eq!(s.best(), Some(1));
        // Exploitation share: ~(1-ε) + ε/|A| of picks on the best arm.
        assert!(
            counts[1] as f64 / 1000.0 > 0.8,
            "best arm should dominate: {counts:?}"
        );
    }

    #[test]
    fn zero_epsilon_is_pure_exploitation_after_init() {
        let costs = [5.0, 2.0, 8.0];
        let mut s = EpsilonGreedy::new(3, 0.0, 7);
        let counts = drive(&mut s, &costs, 100);
        // 1 init pick for each arm, all remaining 97 on the best.
        assert_eq!(counts[1], 98);
        assert_eq!(counts[0], 1);
        assert_eq!(counts[2], 1);
    }

    #[test]
    fn initialization_is_deterministic_order_without_epsilon() {
        let mut s = EpsilonGreedy::new(5, 0.0, 3);
        let mut order = Vec::new();
        for _ in 0..5 {
            let a = s.select();
            order.push(a);
            s.report(a, 1.0 + a as f64);
        }
        assert_eq!(order, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn exploration_rate_matches_epsilon() {
        // On a flat cost landscape the "best" arm is the first one sampled;
        // exploration picks should occur at roughly rate ε·(1 − 1/|A|)
        // away from it.
        let costs = [1.0, 1.0, 1.0, 1.0];
        let mut s = EpsilonGreedy::new(4, 0.20, 11);
        let n = 20_000;
        let counts = drive(&mut s, &costs, n);
        let off_best: usize = counts.iter().sum::<usize>() - counts[0];
        let rate = off_best as f64 / n as f64;
        // Expected: ε·3/4 = 0.15 (plus 3 init picks).
        assert!(
            (rate - 0.15).abs() < 0.02,
            "off-best rate {rate} should be ~0.15"
        );
    }

    #[test]
    fn every_algorithm_keeps_positive_probability() {
        let costs = [1.0, 100.0];
        let mut s = EpsilonGreedy::new(2, 0.10, 13);
        let counts = drive(&mut s, &costs, 5000);
        assert!(
            counts[1] > 50,
            "slow arm must still be explored: {counts:?}"
        );
    }

    #[test]
    fn adapts_when_an_algorithm_improves() {
        // Simulates phase-1 tuning making a slow algorithm fast: ε-Greedy
        // must switch to it once its observed best beats the incumbent.
        let mut s = EpsilonGreedy::new(2, 0.20, 17);
        // Arm 0 constant at 10; arm 1 starts at 30 and improves to 5.
        let mut arm1_cost = 30.0f64;
        for _ in 0..400 {
            let a = s.select();
            let v = if a == 0 {
                10.0
            } else {
                arm1_cost = (arm1_cost - 1.0).max(5.0);
                arm1_cost
            };
            s.report(a, v);
        }
        assert_eq!(s.best(), Some(1));
    }

    #[test]
    fn name_includes_percentage() {
        assert_eq!(EpsilonGreedy::new(2, 0.05, 0).name(), "e-greedy(5%)");
        assert_eq!(EpsilonGreedy::new(2, 0.20, 0).name(), "e-greedy(20%)");
    }

    #[test]
    #[should_panic(expected = "probability")]
    fn rejects_bad_epsilon() {
        EpsilonGreedy::new(2, 1.5, 0);
    }
}
