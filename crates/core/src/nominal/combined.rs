//! The combined ε-Greedy × Gradient-Weighted strategy — the paper's future
//! work, implemented.
//!
//! Section IV-C identifies ε-Greedy's weakness: if an algorithm's *tuned*
//! performance crosses over the incumbent's (slow now, fastest later),
//! uniform ε-exploration may take very long to notice. The discussion
//! anticipates mitigating this "by combining the strategies we have
//! presented here, in particular with the Gradient-Weighted method".
//!
//! [`EpsilonGradient`] does exactly that: with probability `1 − ε` it
//! exploits the best-known algorithm (like ε-Greedy), and with probability
//! `ε` it explores — but instead of uniformly, it samples the exploration
//! target from the Gradient-Weighted distribution, steering exploration
//! budget toward algorithms that are currently *improving* under phase-1
//! tuning. Once all gradients flatten, the exploration distribution decays
//! to uniform and the strategy behaves exactly like plain ε-Greedy.

use crate::history::AlgorithmHistory;
use crate::nominal::{fill_unseen_optimistic, GradientWeighted, NominalStrategy, SelectionState};

/// ε-Greedy with gradient-weighted exploration.
#[derive(Debug, Clone)]
pub struct EpsilonGradient {
    state: SelectionState,
    epsilon: f64,
    window: usize,
}

impl EpsilonGradient {
    /// `epsilon`: exploration probability; `window`: gradient window (the
    /// paper's case studies use 16).
    pub fn new(num_algorithms: usize, epsilon: f64, window: usize, seed: u64) -> Self {
        assert!(
            (0.0..=1.0).contains(&epsilon),
            "epsilon must be a probability, got {epsilon}"
        );
        assert!(window >= 2, "gradient needs a window of at least 2");
        EpsilonGradient {
            state: SelectionState::new(num_algorithms, seed),
            epsilon,
            window,
        }
    }

    /// Exploration weights: the Gradient-Weighted distribution over the
    /// current histories (neutral weight 2 for arms without a gradient).
    pub fn exploration_weights(&self) -> Vec<f64> {
        let mut out = vec![0.0; self.num_algorithms()];
        self.exploration_weights_into(&mut out);
        out
    }

    fn exploration_weights_into(&self, out: &mut [f64]) {
        let n = self.num_algorithms().min(out.len());
        for (w, h) in out[..n].iter_mut().zip(&self.state.histories) {
            *w = h
                .window_gradient(self.window)
                .map(GradientWeighted::weight_of_gradient)
                .or(if h.is_empty() { None } else { Some(2.0) })
                .unwrap_or(f64::NAN);
        }
        fill_unseen_optimistic(&mut out[..n]);
    }
}

impl NominalStrategy for EpsilonGradient {
    fn num_algorithms(&self) -> usize {
        self.state.histories.len()
    }

    fn select(&mut self) -> usize {
        if self.state.rng.next_bool(self.epsilon) {
            let weights = self.exploration_weights();
            return self.state.rng.pick_weighted(&weights);
        }
        if let Some(unseen) = self.state.first_unseen() {
            return unseen;
        }
        self.state.best().expect("all algorithms have samples")
    }

    /// The effective selection distribution: the normalized exploration
    /// weights scaled by ε, plus `1 − ε` on the exploitation target.
    fn weights_into(&self, out: &mut [f64]) {
        let n = self.num_algorithms().min(out.len());
        if n == 0 {
            return;
        }
        self.exploration_weights_into(&mut out[..n]);
        let sum: f64 = out[..n].iter().sum();
        if sum > 0.0 {
            for w in &mut out[..n] {
                *w = self.epsilon * *w / sum;
            }
        }
        let target = self
            .state
            .first_unseen()
            .or_else(|| self.state.best())
            .unwrap_or(0);
        if target < n {
            out[target] += 1.0 - self.epsilon;
        }
    }

    fn report(&mut self, algorithm: usize, value: f64) {
        self.state.record_windowed(algorithm, value, self.window);
    }

    fn best(&self) -> Option<usize> {
        self.state.best()
    }

    fn histories(&self) -> &[AlgorithmHistory] {
        &self.state.histories
    }

    fn name(&self) -> String {
        format!(
            "e-gradient({}%,w={})",
            (self.epsilon * 100.0).round() as u32,
            self.window
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::nominal::test_util::drive;

    #[test]
    fn converges_like_epsilon_greedy_on_static_costs() {
        let costs = [40.0, 8.0, 25.0];
        let mut s = EpsilonGradient::new(3, 0.10, 16, 3);
        let counts = drive(&mut s, &costs, 1000);
        assert_eq!(s.best(), Some(1));
        assert!(counts[1] as f64 / 1000.0 > 0.8, "{counts:?}");
    }

    #[test]
    fn exploration_prefers_improving_algorithms() {
        // Arm 0 is the incumbent (fast, flat). Arm 1 is slow but improving;
        // arm 2 is slow and flat. Exploration picks must favor arm 1 over
        // arm 2.
        let mut s = EpsilonGradient::new(3, 0.5, 16, 7);
        let mut arm1 = 0.9f64;
        let mut counts = [0usize; 3];
        for _ in 0..3000 {
            let a = s.select();
            counts[a] += 1;
            let v = match a {
                0 => 0.10,
                1 => {
                    // Improving in steep inverse-runtime territory.
                    arm1 = (arm1 * 0.95).max(0.3);
                    arm1
                }
                _ => 0.9,
            };
            s.report(a, v);
        }
        assert!(
            counts[1] > counts[2],
            "improving arm should receive more exploration: {counts:?}"
        );
    }

    #[test]
    fn handles_the_crossover_scenario_faster_than_plain_greedy_exploits_it() {
        // Arm 0 fixed at 1.0. Arm 1 improves by 2% per *visit*, from 3.0
        // down to 0.5 — it crosses over after ~90 visits. Track how many
        // iterations each strategy needs before its `best()` flips to 1.
        let run = |mut s: Box<dyn NominalStrategy>| -> usize {
            let mut arm1 = 3.0f64;
            for i in 0..30_000 {
                let a = s.select();
                let v = if a == 0 {
                    1.0
                } else {
                    arm1 = (arm1 * 0.98).max(0.5);
                    arm1
                };
                s.report(a, v);
                if s.best() == Some(1) {
                    return i;
                }
            }
            30_000
        };
        let mut wins = 0;
        let trials = 9;
        for seed in 0..trials {
            let greedy = run(Box::new(crate::nominal::EpsilonGreedy::new(2, 0.10, seed)));
            let combined = run(Box::new(EpsilonGradient::new(2, 0.10, 16, seed)));
            if combined <= greedy {
                wins += 1;
            }
        }
        assert!(
            wins * 2 >= trials,
            "combined should win the crossover at least half the time ({wins}/{trials})"
        );
    }

    #[test]
    fn flat_gradients_decay_to_uniform_exploration() {
        let mut s = EpsilonGradient::new(4, 1.0, 16, 11); // pure exploration
        let counts = drive(&mut s, &[5.0, 5.0, 5.0, 5.0], 20_000);
        for &c in &counts {
            let frac = c as f64 / 20_000.0;
            assert!((frac - 0.25).abs() < 0.03, "{counts:?}");
        }
    }

    #[test]
    fn name_encodes_parameters() {
        assert_eq!(
            EpsilonGradient::new(2, 0.05, 16, 0).name(),
            "e-gradient(5%,w=16)"
        );
    }

    #[test]
    #[should_panic(expected = "probability")]
    fn rejects_bad_epsilon() {
        EpsilonGradient::new(2, -0.1, 16, 0);
    }
}
