//! Single-space online tuner driver.
//!
//! Wraps a phase-1 [`Searcher`] into an application-facing tuning loop with
//! iteration bookkeeping and termination criteria. Applications whose hot
//! operation exposes only *one* parameter space (no algorithmic choice) use
//! this directly; applications with algorithmic choice use
//! [`crate::two_phase::TwoPhaseTuner`], which embeds one of these loops per
//! algorithm.

use crate::measure::{Measure, Sample};
use crate::robust::{
    clamp_measurement, FallibleMeasure, MeasureOutcome, DEFAULT_FAILURE_PENALTY_MS,
    FAILURE_PENALTY_FACTOR,
};
use crate::search::Searcher;
use crate::space::Configuration;
use crate::telemetry::{self, EventKind, MeasureStatus};

/// Single-searcher loops have no algorithmic choice; telemetry records
/// their events against algorithm index 0.
const SOLO_ALGORITHM: u16 = 0;

/// When should the tuning loop stop proposing new configurations?
///
/// Online tuning repeats "indefinitely or until a user-defined termination
/// criterion is met" (Section III).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Termination {
    /// Never stop (purely online operation).
    Never,
    /// Stop after a fixed number of iterations.
    Iterations(usize),
    /// Stop once the searcher itself reports convergence.
    Converged,
    /// Stop after a fixed number of iterations or on convergence, whichever
    /// comes first.
    IterationsOrConverged(usize),
    /// Stop once the best observed value has not improved by more than
    /// `tolerance` (relative) for `window` consecutive iterations — the
    /// practical criterion behind the paper's "the length of the tuning
    /// loop is chosen to ensure tuning convergence".
    Plateau {
        /// Number of consecutive non-improving iterations required.
        window: usize,
        /// Relative improvement below which an iteration counts as
        /// non-improving.
        tolerance: f64,
    },
}

impl Termination {
    fn is_met(self, iteration: usize, converged: bool, plateau_len: usize) -> bool {
        match self {
            Termination::Never => false,
            Termination::Iterations(n) => iteration >= n,
            Termination::Converged => converged,
            Termination::IterationsOrConverged(n) => iteration >= n || converged,
            Termination::Plateau { window, .. } => plateau_len >= window,
        }
    }

    fn plateau_tolerance(self) -> f64 {
        match self {
            Termination::Plateau { tolerance, .. } => tolerance,
            _ => 0.0,
        }
    }
}

/// An online tuning loop around a single searcher.
pub struct OnlineTuner<S: Searcher> {
    searcher: S,
    termination: Termination,
    iteration: usize,
    log: Vec<Sample>,
    /// Iterations since the best value last improved meaningfully.
    plateau_len: usize,
    plateau_best: f64,
    /// Worst successful measurement, scaling the failure penalty.
    worst: Option<f64>,
    /// Count of failed measurements.
    failures: usize,
    /// Configuration proposed by [`OnlineTuner::ask`] awaiting its
    /// [`OnlineTuner::tell`], plus whether it was an exploitation (post-
    /// termination) proposal that must not be reported to the searcher.
    pending: Option<(Configuration, bool)>,
}

impl<S: Searcher> OnlineTuner<S> {
    /// Wrap a searcher into an online tuning loop with the given
    /// termination criterion.
    pub fn new(searcher: S, termination: Termination) -> Self {
        OnlineTuner {
            searcher,
            termination,
            iteration: 0,
            log: Vec::new(),
            plateau_len: 0,
            plateau_best: f64::INFINITY,
            worst: None,
            failures: 0,
            pending: None,
        }
    }

    /// Completed iterations.
    pub fn iteration(&self) -> usize {
        self.iteration
    }

    /// Is the termination criterion met? Once done, [`OnlineTuner::step`]
    /// keeps running the best-known configuration (online exploitation)
    /// rather than refusing to work.
    pub fn done(&self) -> bool {
        self.termination
            .is_met(self.iteration, self.searcher.converged(), self.plateau_len)
    }

    /// Ask for the next configuration to run (the first half of a tuning
    /// iteration, split out for callers that cannot hand the tuner a
    /// measurement closure — e.g. the per-call-site runtime in
    /// [`crate::site`]). Must be paired with [`OnlineTuner::tell`],
    /// [`OnlineTuner::tell_outcome`] or [`OnlineTuner::abandon`].
    pub fn ask(&mut self) -> Configuration {
        assert!(self.pending.is_none(), "ask() called twice without tell()");
        let config = self.propose_config();
        let exploiting = self.done();
        self.pending = Some((config.clone(), exploiting));
        config
    }

    /// Report the measured runtime of the configuration returned by the
    /// last [`OnlineTuner::ask`] (the second half of a tuning iteration).
    ///
    /// A non-finite value is treated as a measurement failure and routed
    /// through the penalty path of [`OnlineTuner::tell_outcome`], mirroring
    /// [`crate::two_phase::TwoPhaseTuner::report`].
    pub fn tell(&mut self, value: f64) -> Sample {
        if !value.is_finite() {
            return self.tell_outcome(MeasureOutcome::Failed("non-finite measurement".into()));
        }
        let (config, exploiting) = self.pending.take().expect("tell() without ask()");
        telemetry::emit(|| EventKind::MeasureOutcome {
            algorithm: SOLO_ALGORITHM,
            status: MeasureStatus::Ok,
            runtime_ms: value,
        });
        if !exploiting {
            self.searcher.report(value);
        }
        if value.is_finite() && self.worst.is_none_or(|w| value > w) {
            self.worst = Some(value);
        }
        self.finish_iteration(config, value)
    }

    /// Report a [`MeasureOutcome`] for the last [`OnlineTuner::ask`]:
    /// `Ok` values follow the normal path; failures and timeouts are
    /// reported as the failure penalty ([`FAILURE_PENALTY_FACTOR`] × the
    /// worst successful measurement), steering the search away without
    /// halting the loop.
    pub fn tell_outcome(&mut self, outcome: MeasureOutcome) -> Sample {
        let (config, exploiting) = self.pending.take().expect("tell_outcome() without ask()");
        let status = MeasureStatus::of(&outcome);
        let value = match outcome {
            MeasureOutcome::Ok(v) => {
                telemetry::emit(|| EventKind::MeasureOutcome {
                    algorithm: SOLO_ALGORITHM,
                    status,
                    runtime_ms: v,
                });
                if !exploiting {
                    self.searcher.report(v);
                }
                if self.worst.is_none_or(|w| v > w) {
                    self.worst = Some(v);
                }
                v
            }
            MeasureOutcome::Failed(_) | MeasureOutcome::TimedOut => {
                self.failures += 1;
                let penalty = self
                    .worst
                    .map(|w| clamp_measurement(w * FAILURE_PENALTY_FACTOR))
                    .unwrap_or(DEFAULT_FAILURE_PENALTY_MS);
                telemetry::emit(|| EventKind::MeasureOutcome {
                    algorithm: SOLO_ALGORITHM,
                    status,
                    runtime_ms: penalty,
                });
                telemetry::emit(|| EventKind::PenaltyApplied {
                    algorithm: SOLO_ALGORITHM,
                    penalty_ms: penalty,
                });
                if !exploiting {
                    self.searcher.report(penalty);
                }
                penalty
            }
        };
        self.finish_iteration(config, value)
    }

    /// Abandon the last [`OnlineTuner::ask`] without reporting anything —
    /// the measurement never ran. The searcher rolls back so its next
    /// proposal is well-defined; no iteration is consumed. Returns the
    /// abandoned configuration, or `None` if nothing was pending (making
    /// cleanup paths idempotent).
    pub fn abandon(&mut self) -> Option<Configuration> {
        let (config, exploiting) = self.pending.take()?;
        if !exploiting {
            self.searcher.abandon();
        }
        Some(config)
    }

    /// One tuning-loop iteration: propose, measure, report.
    pub fn step<M: Measure>(&mut self, measure: &mut M) -> Sample {
        let config = self.ask();
        if !self.searcher.space().is_feasible(&config) {
            // The searcher could not repair the proposal into the
            // constrained region: penalize it without burning a measurement.
            return self.tell_outcome(MeasureOutcome::Failed("infeasible proposal".into()));
        }
        let value = measure.measure(&config);
        self.tell(value)
    }

    /// One *fault-tolerant* tuning-loop iteration: like
    /// [`OnlineTuner::step`] but for measurements that can fail. Failed or
    /// timed-out measurements are reported to the searcher as the failure
    /// penalty via [`OnlineTuner::tell_outcome`].
    pub fn step_fallible<M: FallibleMeasure>(&mut self, measure: &mut M) -> Sample {
        let config = self.ask();
        if !self.searcher.space().is_feasible(&config) {
            return self.tell_outcome(MeasureOutcome::Failed("infeasible proposal".into()));
        }
        let outcome = measure.measure(&config);
        self.tell_outcome(outcome)
    }

    fn propose_config(&mut self) -> Configuration {
        telemetry::emit(|| EventKind::IterationStart {
            iteration: self.iteration as u64,
        });
        if self.done() {
            // Exploit: re-run the best-known configuration without advancing
            // the search.
            self.searcher
                .best()
                .map(|(c, _)| c.clone())
                .unwrap_or_else(|| self.searcher.space().min_corner())
        } else {
            self.searcher.propose()
        }
    }

    fn finish_iteration(&mut self, config: Configuration, value: f64) -> Sample {
        // Plateau tracking: count iterations without meaningful improvement
        // of the best observed value.
        let tol = self.termination.plateau_tolerance();
        if value < self.plateau_best * (1.0 - tol) {
            self.plateau_best = value;
            self.plateau_len = 0;
        } else {
            self.plateau_len += 1;
        }
        let sample = Sample {
            iteration: self.iteration,
            config,
            value,
        };
        self.iteration += 1;
        self.log.push(sample.clone());
        sample
    }

    /// Count of failed measurements seen by
    /// [`OnlineTuner::step_fallible`].
    pub fn failure_count(&self) -> usize {
        self.failures
    }

    /// Run until the termination criterion is met (or `max_steps` as a
    /// safety bound for [`Termination::Converged`]). Returns the samples.
    pub fn run<M: Measure>(&mut self, measure: &mut M, max_steps: usize) -> &[Sample] {
        let start = self.log.len();
        let mut steps = 0;
        while !self.done() && steps < max_steps {
            self.step(measure);
            steps += 1;
        }
        &self.log[start..]
    }

    /// Best observed configuration and value.
    pub fn best(&self) -> Option<(&Configuration, f64)> {
        self.searcher.best()
    }

    /// Full sample log.
    pub fn log(&self) -> &[Sample] {
        &self.log
    }

    /// Access the wrapped searcher.
    pub fn searcher(&self) -> &S {
        &self.searcher
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::param::Parameter;
    use crate::search::{NelderMead, NelderMeadOptions, RandomSearch};
    use crate::space::SearchSpace;

    fn space() -> SearchSpace {
        SearchSpace::new(vec![Parameter::interval("x", -30, 30)])
    }

    fn cost(c: &Configuration) -> f64 {
        (c.get(0).as_f64() - 12.0).powi(2) + 3.0
    }

    #[test]
    fn runs_until_iteration_budget() {
        let mut t = OnlineTuner::new(RandomSearch::new(space(), 1), Termination::Iterations(25));
        let mut m = |c: &Configuration| cost(c);
        let samples = t.run(&mut m, 1000);
        assert_eq!(samples.len(), 25);
        assert!(t.done());
    }

    #[test]
    fn runs_until_convergence() {
        let mut t = OnlineTuner::new(
            NelderMead::new(space(), NelderMeadOptions::default()),
            Termination::Converged,
        );
        let mut m = |c: &Configuration| cost(c);
        t.run(&mut m, 500);
        assert!(t.done());
        let (c, v) = t.best().unwrap();
        assert!((c.get(0).as_i64() - 12).abs() <= 1, "{c:?}");
        assert!(v < 5.0);
    }

    #[test]
    fn after_done_steps_exploit_best() {
        let mut t = OnlineTuner::new(
            NelderMead::new(space(), NelderMeadOptions::default()),
            Termination::Converged,
        );
        let mut m = |c: &Configuration| cost(c);
        t.run(&mut m, 500);
        let best = t.best().unwrap().0.clone();
        let s1 = t.step(&mut m);
        let s2 = t.step(&mut m);
        assert_eq!(s1.config, best);
        assert_eq!(s2.config, best);
    }

    #[test]
    fn never_termination_keeps_tuning() {
        let mut t = OnlineTuner::new(RandomSearch::new(space(), 2), Termination::Never);
        let mut m = |c: &Configuration| cost(c);
        for _ in 0..100 {
            t.step(&mut m);
        }
        assert!(!t.done());
        assert_eq!(t.iteration(), 100);
    }

    #[test]
    fn iterations_or_converged_stops_early_on_convergence() {
        let tiny = SearchSpace::new(vec![Parameter::ratio("x", 0, 2)]);
        let mut t = OnlineTuner::new(
            NelderMead::new(tiny, NelderMeadOptions::default()),
            Termination::IterationsOrConverged(10_000),
        );
        let mut m = |c: &Configuration| c.get(0).as_f64();
        t.run(&mut m, 10_000);
        assert!(t.done());
        assert!(t.iteration() < 10_000, "tiny space converges fast");
    }

    #[test]
    fn plateau_termination_fires_after_stagnation() {
        // A constant cost function stagnates immediately: done after
        // exactly `window` iterations.
        let mut t = OnlineTuner::new(
            RandomSearch::new(space(), 4),
            Termination::Plateau {
                window: 12,
                tolerance: 0.01,
            },
        );
        let mut m = |_: &Configuration| 7.0;
        let mut steps = 0;
        while !t.done() && steps < 1000 {
            t.step(&mut m);
            steps += 1;
        }
        assert_eq!(steps, 13, "first sample + 12 stagnant iterations");
    }

    #[test]
    fn plateau_resets_on_improvement() {
        let mut t = OnlineTuner::new(
            RandomSearch::new(space(), 4),
            Termination::Plateau {
                window: 10,
                tolerance: 0.01,
            },
        );
        // Strictly improving by 10% each step: never done.
        let mut current = 1000.0;
        let mut m = |_: &Configuration| {
            current *= 0.9;
            current
        };
        for _ in 0..50 {
            t.step(&mut m);
            assert!(!t.done(), "improving run must not plateau");
        }
    }

    #[test]
    fn fallible_steps_survive_failures_and_still_tune() {
        use crate::robust::MeasureOutcome;
        let mut t = OnlineTuner::new(RandomSearch::new(space(), 11), Termination::Iterations(200));
        let mut i = 0usize;
        let mut m = |c: &Configuration| {
            i += 1;
            match i % 10 {
                0 => MeasureOutcome::Failed("injected".into()),
                1 => MeasureOutcome::TimedOut,
                _ => MeasureOutcome::Ok(cost(c)),
            }
        };
        let mut n = 0;
        while !t.done() && n < 500 {
            t.step_fallible(&mut m);
            n += 1;
        }
        assert!(t.failure_count() >= 30, "{}", t.failure_count());
        let (c, v) = t.best().unwrap();
        assert!((c.get(0).as_i64() - 12).abs() <= 3, "{c:?}");
        assert!(v < 15.0, "tuned value {v}");
    }

    #[test]
    fn fallible_steps_keep_nelder_mead_protocol_intact() {
        // Penalty reports can misdirect a simplex — that is acceptable; what
        // must hold is that the ask/tell protocol survives 20% failures
        // without panicking and still yields a finite best.
        use crate::robust::MeasureOutcome;
        let mut t = OnlineTuner::new(
            NelderMead::new(space(), NelderMeadOptions::default()),
            Termination::Iterations(200),
        );
        let mut i = 0usize;
        let mut m = |c: &Configuration| {
            i += 1;
            match i % 10 {
                0 => MeasureOutcome::Failed("injected".into()),
                1 => MeasureOutcome::TimedOut,
                _ => MeasureOutcome::Ok(cost(c)),
            }
        };
        let mut n = 0;
        while !t.done() && n < 500 {
            t.step_fallible(&mut m);
            n += 1;
        }
        assert!(t.failure_count() >= 30, "{}", t.failure_count());
        let (_, v) = t.best().unwrap();
        assert!(v.is_finite());
    }

    #[test]
    fn fallible_step_penalty_before_any_success_is_default() {
        use crate::robust::{MeasureOutcome, DEFAULT_FAILURE_PENALTY_MS};
        let mut t = OnlineTuner::new(RandomSearch::new(space(), 8), Termination::Never);
        let mut m = |_: &Configuration| MeasureOutcome::Failed("always".into());
        let s = t.step_fallible(&mut m);
        assert_eq!(s.value, DEFAULT_FAILURE_PENALTY_MS);
        assert_eq!(t.failure_count(), 1);
    }

    #[test]
    fn infeasible_proposals_never_reach_the_measure_function() {
        use crate::space::Constraint;
        // Irreparably infeasible space: the measure closure must never run,
        // and every iteration takes the penalty path.
        let blocked = space().with_constraint(Constraint::new("never", |_| false));
        let mut t = OnlineTuner::new(RandomSearch::new(blocked, 17), Termination::Never);
        let mut measured = 0usize;
        let mut m = |_: &Configuration| {
            measured += 1;
            1.0
        };
        for _ in 0..15 {
            t.step(&mut m);
        }
        assert_eq!(measured, 0, "measure must never see an infeasible config");
        assert_eq!(t.failure_count(), 15);
    }

    #[test]
    fn log_matches_iterations() {
        let mut t = OnlineTuner::new(RandomSearch::new(space(), 3), Termination::Iterations(10));
        let mut m = |c: &Configuration| cost(c);
        t.run(&mut m, 100);
        assert_eq!(t.log().len(), 10);
        for (i, s) in t.log().iter().enumerate() {
            assert_eq!(s.iteration, i);
        }
    }
}
