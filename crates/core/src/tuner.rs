//! Single-space online tuner driver.
//!
//! Wraps a phase-1 [`Searcher`] into an application-facing tuning loop with
//! iteration bookkeeping and termination criteria. Applications whose hot
//! operation exposes only *one* parameter space (no algorithmic choice) use
//! this directly; applications with algorithmic choice use
//! [`crate::two_phase::TwoPhaseTuner`], which embeds one of these loops per
//! algorithm.

use crate::measure::{Measure, Sample};
use crate::search::Searcher;
use crate::space::Configuration;

/// When should the tuning loop stop proposing new configurations?
///
/// Online tuning repeats "indefinitely or until a user-defined termination
/// criterion is met" (Section III).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Termination {
    /// Never stop (purely online operation).
    Never,
    /// Stop after a fixed number of iterations.
    Iterations(usize),
    /// Stop once the searcher itself reports convergence.
    Converged,
    /// Stop after a fixed number of iterations or on convergence, whichever
    /// comes first.
    IterationsOrConverged(usize),
    /// Stop once the best observed value has not improved by more than
    /// `tolerance` (relative) for `window` consecutive iterations — the
    /// practical criterion behind the paper's "the length of the tuning
    /// loop is chosen to ensure tuning convergence".
    Plateau { window: usize, tolerance: f64 },
}

impl Termination {
    fn is_met(self, iteration: usize, converged: bool, plateau_len: usize) -> bool {
        match self {
            Termination::Never => false,
            Termination::Iterations(n) => iteration >= n,
            Termination::Converged => converged,
            Termination::IterationsOrConverged(n) => iteration >= n || converged,
            Termination::Plateau { window, .. } => plateau_len >= window,
        }
    }

    fn plateau_tolerance(self) -> f64 {
        match self {
            Termination::Plateau { tolerance, .. } => tolerance,
            _ => 0.0,
        }
    }
}

/// An online tuning loop around a single searcher.
pub struct OnlineTuner<S: Searcher> {
    searcher: S,
    termination: Termination,
    iteration: usize,
    log: Vec<Sample>,
    /// Iterations since the best value last improved meaningfully.
    plateau_len: usize,
    plateau_best: f64,
}

impl<S: Searcher> OnlineTuner<S> {
    pub fn new(searcher: S, termination: Termination) -> Self {
        OnlineTuner {
            searcher,
            termination,
            iteration: 0,
            log: Vec::new(),
            plateau_len: 0,
            plateau_best: f64::INFINITY,
        }
    }

    /// Completed iterations.
    pub fn iteration(&self) -> usize {
        self.iteration
    }

    /// Is the termination criterion met? Once done, [`OnlineTuner::step`]
    /// keeps running the best-known configuration (online exploitation)
    /// rather than refusing to work.
    pub fn done(&self) -> bool {
        self.termination
            .is_met(self.iteration, self.searcher.converged(), self.plateau_len)
    }

    /// One tuning-loop iteration: propose, measure, report.
    pub fn step<M: Measure>(&mut self, measure: &mut M) -> Sample {
        let config = if self.done() {
            // Exploit: re-run the best-known configuration without advancing
            // the search.
            self.searcher
                .best()
                .map(|(c, _)| c.clone())
                .unwrap_or_else(|| self.searcher.space().min_corner())
        } else {
            self.searcher.propose()
        };
        let value = if self.done() {
            measure.measure(&config)
        } else {
            let v = measure.measure(&config);
            self.searcher.report(v);
            v
        };
        // Plateau tracking: count iterations without meaningful improvement
        // of the best observed value.
        let tol = self.termination.plateau_tolerance();
        if value < self.plateau_best * (1.0 - tol) {
            self.plateau_best = value;
            self.plateau_len = 0;
        } else {
            self.plateau_len += 1;
        }
        let sample = Sample {
            iteration: self.iteration,
            config,
            value,
        };
        self.iteration += 1;
        self.log.push(sample.clone());
        sample
    }

    /// Run until the termination criterion is met (or `max_steps` as a
    /// safety bound for [`Termination::Converged`]). Returns the samples.
    pub fn run<M: Measure>(&mut self, measure: &mut M, max_steps: usize) -> &[Sample] {
        let start = self.log.len();
        let mut steps = 0;
        while !self.done() && steps < max_steps {
            self.step(measure);
            steps += 1;
        }
        &self.log[start..]
    }

    /// Best observed configuration and value.
    pub fn best(&self) -> Option<(&Configuration, f64)> {
        self.searcher.best()
    }

    /// Full sample log.
    pub fn log(&self) -> &[Sample] {
        &self.log
    }

    /// Access the wrapped searcher.
    pub fn searcher(&self) -> &S {
        &self.searcher
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::param::Parameter;
    use crate::search::{NelderMead, NelderMeadOptions, RandomSearch};
    use crate::space::SearchSpace;

    fn space() -> SearchSpace {
        SearchSpace::new(vec![Parameter::interval("x", -30, 30)])
    }

    fn cost(c: &Configuration) -> f64 {
        (c.get(0).as_f64() - 12.0).powi(2) + 3.0
    }

    #[test]
    fn runs_until_iteration_budget() {
        let mut t = OnlineTuner::new(RandomSearch::new(space(), 1), Termination::Iterations(25));
        let mut m = |c: &Configuration| cost(c);
        let samples = t.run(&mut m, 1000);
        assert_eq!(samples.len(), 25);
        assert!(t.done());
    }

    #[test]
    fn runs_until_convergence() {
        let mut t = OnlineTuner::new(
            NelderMead::new(space(), NelderMeadOptions::default()),
            Termination::Converged,
        );
        let mut m = |c: &Configuration| cost(c);
        t.run(&mut m, 500);
        assert!(t.done());
        let (c, v) = t.best().unwrap();
        assert!((c.get(0).as_i64() - 12).abs() <= 1, "{c:?}");
        assert!(v < 5.0);
    }

    #[test]
    fn after_done_steps_exploit_best() {
        let mut t = OnlineTuner::new(
            NelderMead::new(space(), NelderMeadOptions::default()),
            Termination::Converged,
        );
        let mut m = |c: &Configuration| cost(c);
        t.run(&mut m, 500);
        let best = t.best().unwrap().0.clone();
        let s1 = t.step(&mut m);
        let s2 = t.step(&mut m);
        assert_eq!(s1.config, best);
        assert_eq!(s2.config, best);
    }

    #[test]
    fn never_termination_keeps_tuning() {
        let mut t = OnlineTuner::new(RandomSearch::new(space(), 2), Termination::Never);
        let mut m = |c: &Configuration| cost(c);
        for _ in 0..100 {
            t.step(&mut m);
        }
        assert!(!t.done());
        assert_eq!(t.iteration(), 100);
    }

    #[test]
    fn iterations_or_converged_stops_early_on_convergence() {
        let tiny = SearchSpace::new(vec![Parameter::ratio("x", 0, 2)]);
        let mut t = OnlineTuner::new(
            NelderMead::new(tiny, NelderMeadOptions::default()),
            Termination::IterationsOrConverged(10_000),
        );
        let mut m = |c: &Configuration| c.get(0).as_f64();
        t.run(&mut m, 10_000);
        assert!(t.done());
        assert!(t.iteration() < 10_000, "tiny space converges fast");
    }

    #[test]
    fn plateau_termination_fires_after_stagnation() {
        // A constant cost function stagnates immediately: done after
        // exactly `window` iterations.
        let mut t = OnlineTuner::new(
            RandomSearch::new(space(), 4),
            Termination::Plateau {
                window: 12,
                tolerance: 0.01,
            },
        );
        let mut m = |_: &Configuration| 7.0;
        let mut steps = 0;
        while !t.done() && steps < 1000 {
            t.step(&mut m);
            steps += 1;
        }
        assert_eq!(steps, 13, "first sample + 12 stagnant iterations");
    }

    #[test]
    fn plateau_resets_on_improvement() {
        let mut t = OnlineTuner::new(
            RandomSearch::new(space(), 4),
            Termination::Plateau {
                window: 10,
                tolerance: 0.01,
            },
        );
        // Strictly improving by 10% each step: never done.
        let mut current = 1000.0;
        let mut m = |_: &Configuration| {
            current *= 0.9;
            current
        };
        for _ in 0..50 {
            t.step(&mut m);
            assert!(!t.done(), "improving run must not plateau");
        }
    }

    #[test]
    fn log_matches_iterations() {
        let mut t = OnlineTuner::new(RandomSearch::new(space(), 3), Termination::Iterations(10));
        let mut m = |c: &Configuration| cost(c);
        t.run(&mut m, 100);
        assert_eq!(t.log().len(), 10);
        for (i, s) in t.log().iter().enumerate() {
            assert_eq!(s.iteration, i);
        }
    }
}
