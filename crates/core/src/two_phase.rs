//! The two-phase online tuner (Section III).
//!
//! Given a set of algorithms `𝒜`, the tuning problem
//!
//! ```text
//! C_opt = argmin_{A ∈ 𝒜, C ∈ T_A} m_A(C)
//! ```
//!
//! is split into per-algorithm phase-1 problems (`C_opt,A = argmin m_A(C)`)
//! and a phase-2 problem selecting among the `C_opt,A`. Online, the phases
//! are applied *in reverse order every iteration*: first a phase-2
//! [`NominalStrategy`] selects algorithm `A_i`, then `A_i`'s own phase-1
//! [`Searcher`] proposes a parameter configuration `C_i`, and the observed
//! runtime sample `m_{A,i}` is reported back to both.

use crate::nominal::{
    EpsilonGradient, EpsilonGreedy, GradientWeighted, NominalStrategy, OptimumWeighted,
    SlidingWindowAuc, Softmax,
};
use crate::robust::{failure_penalty, MeasureOutcome};
use crate::search::{HillClimbing, NelderMead, NelderMeadOptions, RandomSearch, Searcher};
use crate::space::{Configuration, SearchSpace};
use crate::telemetry::{self, EventKind, MeasureStatus, WeightSet, MAX_TRACKED_ALGORITHMS};

/// Description of one tunable algorithm: its name, its own parameter space
/// `T_A`, and an optional hand-crafted starting configuration (the paper's
/// raytracing case study starts every builder from a best-practice config).
#[derive(Debug, Clone)]
pub struct AlgorithmSpec {
    /// Display name of the algorithm.
    pub name: String,
    /// The algorithm's own parameter space `T_A`.
    pub space: SearchSpace,
    /// Optional hand-crafted starting configuration for phase 1.
    pub start: Option<Configuration>,
}

impl AlgorithmSpec {
    /// An algorithm with tunable parameters.
    pub fn new(name: impl Into<String>, space: SearchSpace) -> Self {
        AlgorithmSpec {
            name: name.into(),
            space,
            start: None,
        }
    }

    /// An algorithm without tunable parameters (case study 1: the string
    /// matchers expose none).
    pub fn untunable(name: impl Into<String>) -> Self {
        Self::new(name, SearchSpace::empty())
    }

    /// Set the hand-crafted starting configuration.
    pub fn with_start(mut self, start: Configuration) -> Self {
        assert!(
            self.space.contains(&start),
            "start configuration not in algorithm's space"
        );
        self.start = Some(start);
        self
    }
}

/// Phase-2 strategy selector, mirroring the paper's evaluation matrix.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum NominalKind {
    /// ε-Greedy with the given exploration probability.
    EpsilonGreedy(f64),
    /// Gradient Weighted with the given window.
    GradientWeighted(usize),
    /// Optimum Weighted (best inverse runtime per algorithm).
    OptimumWeighted,
    /// Sliding-Window AUC with the given window.
    SlidingWindowAuc(usize),
    /// Softmax/Gibbs with the given temperature and window (the baseline
    /// the paper rejects).
    Softmax(f64, usize),
    /// Combined ε-Greedy with gradient-weighted exploration (ε, window) —
    /// the paper's future-work mitigation for crossover scenarios.
    EpsilonGradient(f64, usize),
}

impl NominalKind {
    /// The six strategies of the paper's figures, in legend order.
    pub fn paper_set() -> Vec<NominalKind> {
        vec![
            NominalKind::EpsilonGreedy(0.05),
            NominalKind::EpsilonGreedy(0.10),
            NominalKind::EpsilonGreedy(0.20),
            NominalKind::GradientWeighted(16),
            NominalKind::OptimumWeighted,
            NominalKind::SlidingWindowAuc(16),
        ]
    }

    /// Instantiate the strategy.
    pub fn build(self, num_algorithms: usize, seed: u64) -> Box<dyn NominalStrategy> {
        match self {
            NominalKind::EpsilonGreedy(eps) => {
                Box::new(EpsilonGreedy::new(num_algorithms, eps, seed))
            }
            NominalKind::GradientWeighted(w) => {
                Box::new(GradientWeighted::new(num_algorithms, w, seed))
            }
            NominalKind::OptimumWeighted => Box::new(OptimumWeighted::new(num_algorithms, seed)),
            NominalKind::SlidingWindowAuc(w) => {
                Box::new(SlidingWindowAuc::new(num_algorithms, w, seed))
            }
            NominalKind::Softmax(t, w) => Box::new(Softmax::new(num_algorithms, t, w, seed)),
            NominalKind::EpsilonGradient(eps, w) => {
                Box::new(EpsilonGradient::new(num_algorithms, eps, w, seed))
            }
        }
    }

    /// Display name matching the strategy's own `name()`.
    pub fn label(self) -> String {
        // Build a throwaway instance to keep names in one place.
        self.build(1, 0).name()
    }
}

/// Phase-1 searcher selector (for the `phase1_swap` ablation).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Phase1Kind {
    /// Nelder-Mead downhill simplex — the paper's choice.
    NelderMead,
    /// Steepest-descent hill climbing.
    HillClimbing,
    /// Uniform random sampling (ablation baseline).
    Random,
}

impl Phase1Kind {
    /// Instantiate a searcher for one algorithm's parameter space.
    pub fn build(self, spec: &AlgorithmSpec, seed: u64) -> Box<dyn Searcher> {
        let start = spec
            .start
            .clone()
            .unwrap_or_else(|| spec.space.min_corner());
        match self {
            Phase1Kind::NelderMead => Box::new(NelderMead::from_start(
                spec.space.clone(),
                &start,
                NelderMeadOptions::default(),
            )),
            Phase1Kind::HillClimbing => {
                Box::new(HillClimbing::from_start(spec.space.clone(), start, seed))
            }
            Phase1Kind::Random => Box::new(RandomSearch::new(spec.space.clone(), seed)),
        }
    }
}

/// One completed tuning iteration of the two-phase tuner.
#[derive(Debug, Clone, PartialEq)]
pub struct TwoPhaseSample {
    /// Global tuning iteration index.
    pub iteration: usize,
    /// Selected algorithm.
    pub algorithm: usize,
    /// Phase-1 configuration the algorithm ran with.
    pub config: Configuration,
    /// Measured runtime — or the failure penalty if the measurement failed.
    pub value: f64,
    /// Whether this iteration's measurement failed (the recorded value is
    /// the penalty, not an observation).
    pub failed: bool,
}

/// The two-phase online tuner: a phase-2 [`NominalStrategy`] over `|𝒜|`
/// algorithms, each with its own phase-1 [`Searcher`].
pub struct TwoPhaseTuner {
    specs: Vec<AlgorithmSpec>,
    strategy: Box<dyn NominalStrategy>,
    searchers: Vec<Box<dyn Searcher>>,
    iteration: usize,
    /// Algorithm and configuration proposed by the last `next()`, awaiting
    /// their `report()`.
    pending: Option<(usize, Configuration)>,
    best: Option<(usize, Configuration, f64)>,
    log: Vec<TwoPhaseSample>,
    /// Per-algorithm count of failed measurements.
    failures: Vec<usize>,
}

impl TwoPhaseTuner {
    /// Build a tuner with the paper's defaults: the given phase-2 strategy
    /// and Nelder-Mead as every algorithm's phase-1 searcher.
    pub fn new(specs: Vec<AlgorithmSpec>, nominal: NominalKind, seed: u64) -> Self {
        Self::with_phase1(specs, nominal, Phase1Kind::NelderMead, seed)
    }

    /// Build a tuner with an explicit phase-1 searcher kind.
    pub fn with_phase1(
        specs: Vec<AlgorithmSpec>,
        nominal: NominalKind,
        phase1: Phase1Kind,
        seed: u64,
    ) -> Self {
        let strategy = nominal.build(specs.len(), seed);
        Self::with_strategy(specs, strategy, phase1, seed)
    }

    /// Build a tuner around a *custom* phase-2 strategy implementation
    /// (anything implementing [`NominalStrategy`] — e.g. a UCB bandit).
    /// The strategy must have been constructed for `specs.len()`
    /// algorithms.
    pub fn with_strategy(
        specs: Vec<AlgorithmSpec>,
        strategy: Box<dyn NominalStrategy>,
        phase1: Phase1Kind,
        seed: u64,
    ) -> Self {
        assert!(!specs.is_empty(), "need at least one algorithm");
        assert_eq!(
            strategy.num_algorithms(),
            specs.len(),
            "strategy arity must match the algorithm count"
        );
        let searchers = specs
            .iter()
            .enumerate()
            .map(|(i, s)| phase1.build(s, seed.wrapping_add(i as u64 + 1)))
            .collect();
        let failures = vec![0; specs.len()];
        TwoPhaseTuner {
            specs,
            strategy,
            searchers,
            iteration: 0,
            pending: None,
            best: None,
            log: Vec::new(),
            failures,
        }
    }

    /// Number of algorithms `|𝒜|`.
    pub fn num_algorithms(&self) -> usize {
        self.specs.len()
    }

    /// Display name of algorithm `i`.
    pub fn algorithm_name(&self, i: usize) -> &str {
        &self.specs[i].name
    }

    /// Search space of algorithm `i` — constraints included, so callers can
    /// check [`SearchSpace::is_feasible`] before spending a measurement.
    pub fn space(&self, i: usize) -> &SearchSpace {
        &self.specs[i].space
    }

    /// Phase-2 strategy display name.
    pub fn strategy_name(&self) -> String {
        self.strategy.name()
    }

    /// One tuning iteration, phases applied in reverse order: select the
    /// algorithm (phase 2), then its parameter configuration (phase 1).
    ///
    /// Named `next` for the ask/tell protocol; not an `Iterator`.
    #[allow(clippy::should_implement_trait)]
    pub fn next(&mut self) -> (usize, Configuration) {
        assert!(
            self.pending.is_none(),
            "next() called twice without report()"
        );
        telemetry::emit(|| EventKind::IterationStart {
            iteration: self.iteration as u64,
        });
        let algorithm = self.strategy.select();
        telemetry::emit(|| {
            // Snapshot the phase-2 weight vector into a stack buffer —
            // recording must not allocate.
            let mut weights = [0.0f64; MAX_TRACKED_ALGORITHMS];
            let n = self.strategy.num_algorithms().min(MAX_TRACKED_ALGORITHMS);
            self.strategy.weights_into(&mut weights[..n]);
            EventKind::AlgorithmSelected {
                algorithm: algorithm as u16,
                weights: WeightSet::from_slice(&weights[..n]),
            }
        });
        let config = self.searchers[algorithm].propose();
        self.pending = Some((algorithm, config.clone()));
        (algorithm, config)
    }

    /// Report the measured runtime of the configuration returned by the
    /// last [`TwoPhaseTuner::next`]. Returns the completed sample.
    ///
    /// A non-finite value is treated as a measurement failure and routed
    /// through [`TwoPhaseTuner::report_failure`].
    pub fn report(&mut self, value: f64) -> TwoPhaseSample {
        if !value.is_finite() {
            return self.report_failure();
        }
        let (algorithm, config) = self.pending.take().expect("report() without next()");
        telemetry::emit(|| EventKind::MeasureOutcome {
            algorithm: algorithm as u16,
            status: MeasureStatus::Ok,
            runtime_ms: value,
        });
        self.searchers[algorithm].report(value);
        self.strategy.report(algorithm, value);
        // Track the global optimum over (A, C) pairs.
        if self.best.as_ref().is_none_or(|(_, _, b)| value < *b) {
            self.best = Some((algorithm, config.clone(), value));
        }
        let sample = TwoPhaseSample {
            iteration: self.iteration,
            algorithm,
            config,
            value,
            failed: false,
        };
        self.iteration += 1;
        self.log.push(sample.clone());
        sample
    }

    /// Report that the measurement of the last proposal *failed* (panic,
    /// timeout, non-finite value). Both phases record the failure penalty
    /// — a finite multiple of the worst observed runtime — so the failing
    /// algorithm is deprioritized without ever being excluded, and the
    /// phase-1 searcher steers away from the failing configuration.
    pub fn report_failure(&mut self) -> TwoPhaseSample {
        self.fail_with_status(MeasureStatus::Failed)
    }

    fn fail_with_status(&mut self, status: MeasureStatus) -> TwoPhaseSample {
        let (algorithm, config) = self
            .pending
            .take()
            .expect("report_failure() without next()");
        let penalty = failure_penalty(self.strategy.histories());
        telemetry::emit(|| EventKind::MeasureOutcome {
            algorithm: algorithm as u16,
            status,
            runtime_ms: penalty,
        });
        telemetry::emit(|| EventKind::PenaltyApplied {
            algorithm: algorithm as u16,
            penalty_ms: penalty,
        });
        self.searchers[algorithm].report(penalty);
        self.strategy.report_failure(algorithm);
        self.failures[algorithm] += 1;
        // The penalty is deliberately *not* a candidate for `best`.
        let sample = TwoPhaseSample {
            iteration: self.iteration,
            algorithm,
            config,
            value: penalty,
            failed: true,
        };
        self.iteration += 1;
        self.log.push(sample.clone());
        sample
    }

    /// Abandon the last proposal without reporting anything — the
    /// measurement never ran (e.g. the request it was embedded in was
    /// cancelled). Neither phase records a sample; the phase-1 searcher
    /// rolls back so its next proposal is well-defined. Returns the
    /// abandoned proposal, or `None` if nothing was pending (making
    /// cleanup paths idempotent).
    pub fn abandon(&mut self) -> Option<(usize, Configuration)> {
        let (algorithm, config) = self.pending.take()?;
        self.searchers[algorithm].abandon();
        Some((algorithm, config))
    }

    /// Report a [`MeasureOutcome`]: `Ok` values follow the normal path,
    /// failures and timeouts the penalty path.
    pub fn report_outcome(&mut self, outcome: MeasureOutcome) -> TwoPhaseSample {
        match outcome {
            MeasureOutcome::Ok(v) => self.report(v),
            MeasureOutcome::Failed(_) => self.fail_with_status(MeasureStatus::Failed),
            MeasureOutcome::TimedOut => self.fail_with_status(MeasureStatus::TimedOut),
        }
    }

    /// Convenience: run one full iteration against a measurement function
    /// `m(algorithm, config) -> runtime`.
    ///
    /// An infeasible proposal — one the phase-1 searcher could not repair
    /// into the constrained region — is *never* passed to `m`: it takes the
    /// penalty path directly, so no real measurement is burned on a
    /// configuration that violates a declared constraint.
    pub fn step<F: FnMut(usize, &Configuration) -> f64>(&mut self, mut m: F) -> TwoPhaseSample {
        let (a, c) = self.next();
        if !self.specs[a].space.is_feasible(&c) {
            return self.report_failure();
        }
        let v = m(a, &c);
        self.report(v)
    }

    /// Convenience: run one full iteration against a *fallible* measurement
    /// function `m(algorithm, config) -> MeasureOutcome` (typically
    /// [`crate::robust::robust_call`] around the real measurement).
    ///
    /// Like [`TwoPhaseTuner::step`], infeasible proposals are penalized
    /// without invoking `m`.
    pub fn step_fallible<F: FnMut(usize, &Configuration) -> MeasureOutcome>(
        &mut self,
        mut m: F,
    ) -> TwoPhaseSample {
        let (a, c) = self.next();
        if !self.specs[a].space.is_feasible(&c) {
            return self.report_failure();
        }
        let outcome = m(a, &c);
        self.report_outcome(outcome)
    }

    /// Per-algorithm count of failed measurements.
    pub fn failure_counts(&self) -> &[usize] {
        &self.failures
    }

    /// Best-known (configuration, value) of algorithm `i`'s phase-1
    /// searcher — the per-algorithm incumbent `C_opt,A` the context layer
    /// ([`crate::context`]) extracts when warm-starting a neighboring
    /// context's tuner.
    pub fn searcher_best(&self, i: usize) -> Option<(&Configuration, f64)> {
        self.searchers[i].best()
    }

    /// Prime the phase-2 strategy with one *synthetic* observation for
    /// algorithm `i` — the warm-start seeding hook used by
    /// [`crate::context`] to transplant a neighboring context's posterior.
    ///
    /// The sample enters the strategy's per-algorithm history (so the
    /// algorithm counts as "seen", carries a selection weight, and the
    /// initial round-robin exploration of unseen algorithms is skipped),
    /// but **not** the iteration log: seeded knowledge is prior belief,
    /// not a measurement of this context. Non-finite values are ignored.
    ///
    /// Panics if called between [`TwoPhaseTuner::next`] and its report —
    /// seeding is a construction-time operation.
    pub fn seed_algorithm(&mut self, i: usize, value: f64) {
        assert!(
            self.pending.is_none(),
            "seed_algorithm() must not interrupt an iteration"
        );
        if value.is_finite() {
            self.strategy.report(i, value);
        }
    }

    /// The (algorithm, configuration) pair the tuner would run if asked to
    /// purely *exploit* right now: the phase-2 strategy's current best
    /// algorithm with its phase-1 searcher's best-known configuration.
    /// Falls back to algorithm 0 with its hand-crafted start (or the
    /// space's minimum corner) before any sample has been observed.
    ///
    /// The concurrent site runtime ([`crate::site`]) publishes this pair
    /// after every tuned iteration so request threads that lose the claim
    /// race can run a sensible choice without touching tuner state.
    pub fn exploit_choice(&self) -> (usize, Configuration) {
        let algorithm = self.strategy.best().unwrap_or(0);
        let config = self.searchers[algorithm]
            .best()
            .map(|(c, _)| c.clone())
            .unwrap_or_else(|| {
                self.specs[algorithm]
                    .start
                    .clone()
                    .unwrap_or_else(|| self.specs[algorithm].space.min_corner())
            });
        (algorithm, config)
    }

    /// Globally best observed (algorithm, configuration, value).
    pub fn best(&self) -> Option<(usize, &Configuration, f64)> {
        self.best.as_ref().map(|(a, c, v)| (*a, c, *v))
    }

    /// The algorithm the phase-2 strategy currently believes best.
    pub fn best_algorithm(&self) -> Option<usize> {
        self.strategy.best()
    }

    /// Full iteration log (for convergence plots).
    pub fn log(&self) -> &[TwoPhaseSample] {
        &self.log
    }

    /// Per-algorithm histories from the phase-2 strategy.
    pub fn histories(&self) -> &[crate::history::AlgorithmHistory] {
        self.strategy.histories()
    }

    /// How often each algorithm has been selected so far — the data behind
    /// the choice histograms of Figures 4 and 8.
    pub fn selection_counts(&self) -> Vec<usize> {
        self.strategy.histories().iter().map(|h| h.len()).collect()
    }
}

impl std::fmt::Debug for TwoPhaseTuner {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TwoPhaseTuner")
            .field("strategy", &self.strategy.name())
            .field(
                "algorithms",
                &self.specs.iter().map(|s| &s.name).collect::<Vec<_>>(),
            )
            .field("iteration", &self.iteration)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::param::Parameter;

    /// Three untunable algorithms with fixed costs.
    fn untunable_specs() -> Vec<AlgorithmSpec> {
        vec![
            AlgorithmSpec::untunable("slow"),
            AlgorithmSpec::untunable("fast"),
            AlgorithmSpec::untunable("mid"),
        ]
    }

    fn fixed_costs(a: usize, _c: &Configuration) -> f64 {
        [30.0, 5.0, 15.0][a]
    }

    #[test]
    fn untunable_algorithms_epsilon_greedy_finds_best() {
        let mut t = TwoPhaseTuner::new(untunable_specs(), NominalKind::EpsilonGreedy(0.10), 1);
        for _ in 0..200 {
            t.step(fixed_costs);
        }
        assert_eq!(t.best_algorithm(), Some(1));
        assert_eq!(t.best().unwrap().0, 1);
        let counts = t.selection_counts();
        assert!(counts[1] > counts[0] + counts[2], "{counts:?}");
    }

    #[test]
    fn all_paper_strategies_identify_best_untunable_algorithm() {
        for kind in NominalKind::paper_set() {
            let mut t = TwoPhaseTuner::new(untunable_specs(), kind, 9);
            for _ in 0..300 {
                t.step(fixed_costs);
            }
            assert_eq!(
                t.best_algorithm(),
                Some(1),
                "strategy {} failed",
                t.strategy_name()
            );
        }
    }

    /// Two tunable algorithms: a parabola each, with different optima.
    fn tunable_specs() -> Vec<AlgorithmSpec> {
        let space_a = SearchSpace::new(vec![Parameter::ratio("x", 0, 40)]);
        let space_b = SearchSpace::new(vec![Parameter::ratio("y", 0, 40)]);
        vec![
            AlgorithmSpec::new("alg-a", space_a),
            AlgorithmSpec::new("alg-b", space_b),
        ]
    }

    /// alg-a bottoms out at 20 (runtime 10), alg-b at 5 (runtime 4):
    /// b is globally better once tuned.
    fn tunable_costs(a: usize, c: &Configuration) -> f64 {
        let x = c.get(0).as_f64();
        match a {
            0 => 10.0 + 0.2 * (x - 20.0).powi(2),
            1 => 4.0 + 0.2 * (x - 5.0).powi(2),
            _ => unreachable!(),
        }
    }

    #[test]
    fn combined_tuning_finds_best_algorithm_and_config() {
        let mut t = TwoPhaseTuner::new(tunable_specs(), NominalKind::EpsilonGreedy(0.20), 5);
        for _ in 0..600 {
            t.step(tunable_costs);
        }
        let (alg, config, value) = t.best().unwrap();
        assert_eq!(alg, 1, "algorithm b is globally optimal");
        assert!((config.get(0).as_i64() - 5).abs() <= 2, "config {config:?}");
        assert!(value < 5.5, "tuned value {value}");
    }

    #[test]
    fn phase1_tuning_progresses_on_all_algorithms_under_weighted_strategy() {
        // Weighted strategies "achieve tuning progress on all algorithms
        // more or less simultaneously" (Section IV-B).
        let mut t = TwoPhaseTuner::new(tunable_specs(), NominalKind::SlidingWindowAuc(16), 7);
        for _ in 0..600 {
            t.step(tunable_costs);
        }
        let hists = t.histories();
        for (i, h) in hists.iter().enumerate() {
            assert!(h.len() > 100, "algorithm {i} starved: {} samples", h.len());
            let best = h.best_value().unwrap();
            let first = h.samples()[0].value;
            assert!(best < first, "algorithm {i} made no tuning progress");
        }
    }

    #[test]
    fn hand_crafted_start_is_used_first() {
        let space = SearchSpace::new(vec![Parameter::ratio("x", 0, 100)]);
        let start = space
            .configuration(vec![crate::param::Value::Int(42)])
            .unwrap();
        let specs = vec![AlgorithmSpec::new("a", space).with_start(start.clone())];
        let mut t = TwoPhaseTuner::new(specs, NominalKind::EpsilonGreedy(0.0), 3);
        let (_, c) = t.next();
        assert_eq!(c, start, "first proposal must be the hand-crafted config");
        t.report(1.0);
    }

    #[test]
    fn phase1_swap_random_still_finds_best_algorithm() {
        let mut t = TwoPhaseTuner::with_phase1(
            tunable_specs(),
            NominalKind::EpsilonGreedy(0.20),
            Phase1Kind::Random,
            11,
        );
        for _ in 0..800 {
            t.step(tunable_costs);
        }
        assert_eq!(t.best().unwrap().0, 1);
    }

    #[test]
    fn log_records_every_iteration_in_order() {
        let mut t = TwoPhaseTuner::new(untunable_specs(), NominalKind::OptimumWeighted, 13);
        for _ in 0..50 {
            t.step(fixed_costs);
        }
        let log = t.log();
        assert_eq!(log.len(), 50);
        for (i, s) in log.iter().enumerate() {
            assert_eq!(s.iteration, i);
            assert!(s.algorithm < 3);
        }
    }

    #[test]
    #[should_panic(expected = "without report")]
    fn double_next_panics() {
        let mut t = TwoPhaseTuner::new(untunable_specs(), NominalKind::OptimumWeighted, 1);
        t.next();
        t.next();
    }

    #[test]
    #[should_panic(expected = "start configuration not in")]
    fn with_start_validates_membership() {
        let space = SearchSpace::new(vec![Parameter::ratio("x", 0, 10)]);
        AlgorithmSpec::new("a", space)
            .with_start(Configuration::new(vec![crate::param::Value::Int(99)]));
    }

    #[test]
    fn abandon_recovers_the_ask_tell_protocol() {
        let mut t = TwoPhaseTuner::new(tunable_specs(), NominalKind::EpsilonGreedy(0.10), 19);
        let (a, c) = t.next();
        assert_eq!(t.abandon(), Some((a, c)));
        // The tuner is not poisoned: the next full iteration works.
        let s = t.step(tunable_costs);
        assert_eq!(s.iteration, 0, "abandoned proposals consume no iteration");
        assert!(t.abandon().is_none(), "abandon is idempotent");
    }

    #[test]
    fn report_failure_penalizes_without_excluding() {
        let mut t = TwoPhaseTuner::new(untunable_specs(), NominalKind::SlidingWindowAuc(16), 23);
        for i in 0..300 {
            let (alg, _) = t.next();
            if alg == 2 && i % 2 == 0 {
                t.report_failure();
            } else {
                t.report(fixed_costs(alg, &Configuration::empty()));
            }
        }
        assert!(t.failure_counts()[2] > 0);
        assert_eq!(t.failure_counts()[0], 0);
        // The flaky algorithm is still sampled (never excluded)...
        assert!(t.selection_counts()[2] > 0);
        // ...but the fast reliable one dominates.
        assert_eq!(t.best_algorithm(), Some(1));
        assert_eq!(t.best().unwrap().0, 1);
    }

    #[test]
    fn report_failure_never_becomes_best() {
        let mut t = TwoPhaseTuner::new(untunable_specs(), NominalKind::EpsilonGreedy(0.10), 29);
        t.next();
        let s = t.report_failure();
        assert!(s.failed);
        assert!(t.best().is_none(), "penalties are not observations");
        t.next();
        t.report(5.0);
        assert_eq!(t.best().unwrap().2, 5.0);
    }

    #[test]
    fn non_finite_report_is_a_failure() {
        let mut t = TwoPhaseTuner::new(untunable_specs(), NominalKind::OptimumWeighted, 31);
        t.next();
        let s = t.report(f64::NAN);
        assert!(s.failed);
        assert!(s.value.is_finite());
        t.next();
        let s = t.report(f64::INFINITY);
        assert!(s.failed);
        assert_eq!(t.failure_counts().iter().sum::<usize>(), 2);
    }

    #[test]
    fn step_fallible_survives_mixed_outcomes() {
        use crate::robust::MeasureOutcome;
        let mut t = TwoPhaseTuner::new(tunable_specs(), NominalKind::GradientWeighted(16), 37);
        for i in 0..400 {
            t.step_fallible(|alg, c| match i % 10 {
                0 => MeasureOutcome::Failed("injected".into()),
                1 => MeasureOutcome::TimedOut,
                _ => MeasureOutcome::Ok(tunable_costs(alg, c)),
            });
        }
        assert_eq!(t.log().len(), 400);
        assert!(t.failure_counts().iter().sum::<usize>() > 40);
        assert!(t.best().is_some());
    }

    #[test]
    fn infeasible_proposals_are_penalized_without_measuring() {
        use crate::space::Constraint;
        // An unsatisfiable constraint with no repair: every proposal is
        // irreparably infeasible, so the measurement closure must never run.
        let space = SearchSpace::new(vec![Parameter::ratio("x", 0, 10)])
            .with_constraint(Constraint::new("never", |_| false));
        let specs = vec![AlgorithmSpec::new("blocked", space)];
        let mut t = TwoPhaseTuner::new(specs, NominalKind::EpsilonGreedy(0.0), 41);
        let mut measured = 0usize;
        for _ in 0..20 {
            let s = t.step(|_, _| {
                measured += 1;
                1.0
            });
            assert!(s.failed, "infeasible proposals must take the penalty path");
        }
        assert_eq!(measured, 0, "measure must never see an infeasible config");
        assert_eq!(t.failure_counts()[0], 20);
        assert!(t.best().is_none(), "penalties never become best");
    }

    #[test]
    fn repairable_constraints_keep_measurements_feasible() {
        use crate::space::Constraint;
        // x must be even; repair rounds down. Every measured configuration
        // satisfies the constraint and the search still makes progress.
        let space = SearchSpace::new(vec![Parameter::ratio("x", 0, 40)]).with_constraint(
            Constraint::new("even", |c: &Configuration| c.get(0).as_i64() % 2 == 0).with_repair(
                |c: &Configuration| {
                    let x = c.get(0).as_i64();
                    Configuration::new(vec![crate::param::Value::Int(x - x % 2)])
                },
            ),
        );
        let specs = vec![AlgorithmSpec::new("even-only", space)];
        let mut t = TwoPhaseTuner::new(specs, NominalKind::EpsilonGreedy(0.0), 43);
        for _ in 0..200 {
            let s = t.step(|_, c| {
                let x = c.get(0).as_i64();
                assert_eq!(x % 2, 0, "measured an odd x: {x}");
                10.0 + 0.2 * ((x - 20) as f64).powi(2)
            });
            assert!(!s.failed, "repairable proposals must be measured");
        }
        let (_, config, _) = t.best().unwrap();
        let x = config.get(0).as_i64();
        assert_eq!(x % 2, 0, "best configuration violates the constraint");
        assert!((x - 20).abs() <= 2, "should approach the optimum, got {x}");
    }

    #[test]
    fn nominal_kind_labels_are_unique() {
        let labels: Vec<String> = NominalKind::paper_set()
            .into_iter()
            .map(NominalKind::label)
            .collect();
        for i in 0..labels.len() {
            for j in 0..i {
                assert_ne!(labels[i], labels[j]);
            }
        }
    }
}
