//! A small, deterministic pseudo-random number generator.
//!
//! The tuner must be reproducible: given the same seed and the same sequence
//! of measurement values, every strategy must make the same decisions. We
//! therefore ship our own xoshiro256** implementation instead of depending on
//! an external RNG crate whose stream might change between versions.
//!
//! xoshiro256** is the general-purpose generator recommended by Blackman and
//! Vigna (2018); seeding goes through SplitMix64 as the authors recommend so
//! that low-entropy seeds (e.g. 0, 1, 2, ...) still produce well-mixed state.

/// Deterministic xoshiro256** generator.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Rng {
    state: [u64; 4],
}

#[inline]
fn splitmix64(seed: &mut u64) -> u64 {
    *seed = seed.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *seed;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl Rng {
    /// Create a generator from a 64-bit seed.
    pub fn new(seed: u64) -> Self {
        let mut s = seed;
        let state = [
            splitmix64(&mut s),
            splitmix64(&mut s),
            splitmix64(&mut s),
            splitmix64(&mut s),
        ];
        Rng { state }
    }

    /// Next raw 64-bit value.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        let s = &mut self.state;
        let result = s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }

    /// Uniform `f64` in `[0, 1)`. Uses the top 53 bits of a `u64`.
    #[inline]
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform integer in `[0, n)`. `n` must be nonzero.
    ///
    /// Uses Lemire's multiply-shift rejection method, which is unbiased.
    #[inline]
    pub fn next_below(&mut self, n: u64) -> u64 {
        assert!(n > 0, "next_below(0) is meaningless");
        let mut x = self.next_u64();
        let mut m = (x as u128) * (n as u128);
        let mut low = m as u64;
        if low < n {
            let threshold = n.wrapping_neg() % n;
            while low < threshold {
                x = self.next_u64();
                m = (x as u128) * (n as u128);
                low = m as u64;
            }
        }
        (m >> 64) as u64
    }

    /// Uniform integer in the inclusive range `[lo, hi]`.
    #[inline]
    pub fn next_range_i64(&mut self, lo: i64, hi: i64) -> i64 {
        assert!(lo <= hi, "empty range");
        let span = (hi as i128 - lo as i128 + 1) as u128;
        if span > u64::MAX as u128 {
            // Degenerate full-width range; fold a raw sample.
            return self.next_u64() as i64;
        }
        lo.wrapping_add(self.next_below(span as u64) as i64)
    }

    /// Uniform `f64` in `[lo, hi)`.
    #[inline]
    pub fn next_range_f64(&mut self, lo: f64, hi: f64) -> f64 {
        lo + (hi - lo) * self.next_f64()
    }

    /// Bernoulli trial with probability `p` of returning `true`.
    #[inline]
    pub fn next_bool(&mut self, p: f64) -> bool {
        self.next_f64() < p
    }

    /// Standard normal sample via the Box-Muller transform (the polar
    /// variant is avoided to keep the number of consumed samples fixed).
    pub fn next_gaussian(&mut self) -> f64 {
        let u1 = (1.0 - self.next_f64()).max(f64::MIN_POSITIVE);
        let u2 = self.next_f64();
        (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
    }

    /// Fisher-Yates shuffle of a slice.
    pub fn shuffle<T>(&mut self, xs: &mut [T]) {
        for i in (1..xs.len()).rev() {
            let j = self.next_below(i as u64 + 1) as usize;
            xs.swap(i, j);
        }
    }

    /// Pick a uniformly random element index for a nonempty slice length.
    #[inline]
    pub fn pick_index(&mut self, len: usize) -> usize {
        self.next_below(len as u64) as usize
    }

    /// Sample an index from a (not necessarily normalized) weight vector.
    ///
    /// Weights should be finite and non-negative with a positive sum; this
    /// is the primitive under every weighted nominal strategy. Because a
    /// panic here kills the whole online tuning loop, degenerate input is
    /// handled instead of asserted: non-finite or negative weights, or an
    /// all-zero vector, fall back to a *uniform* pick over all indices —
    /// the unique choice that preserves the paper's "every algorithm keeps
    /// a positive selection probability" invariant when the weight math has
    /// broken down.
    pub fn pick_weighted(&mut self, weights: &[f64]) -> usize {
        assert!(!weights.is_empty(), "pick_weighted over an empty vector");
        let sane = |w: f64| w.is_finite() && w >= 0.0;
        let total: f64 = weights.iter().copied().filter(|&w| sane(w)).sum();
        if !total.is_finite() || total <= 0.0 {
            return self.pick_index(weights.len());
        }
        let mut target = self.next_f64() * total;
        for (i, &w) in weights.iter().enumerate() {
            if !sane(w) {
                continue;
            }
            target -= w;
            if target < 0.0 {
                return i;
            }
        }
        // Floating-point round-off can leave a vanishing remainder; the last
        // positively-weighted index is the correct answer in that case.
        weights
            .iter()
            .rposition(|&w| sane(w) && w > 0.0)
            .expect("positive total implies a positive weight")
    }

    /// Split off an independently-seeded child generator. Used to hand each
    /// parallel experiment repetition its own stream.
    pub fn split(&mut self) -> Rng {
        Rng::new(self.next_u64())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_for_same_seed() {
        let mut a = Rng::new(42);
        let mut b = Rng::new(42);
        for _ in 0..1000 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = Rng::new(1);
        let mut b = Rng::new(2);
        let same = (0..100).filter(|_| a.next_u64() == b.next_u64()).count();
        assert!(same < 3, "streams should be almost surely distinct");
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut rng = Rng::new(7);
        for _ in 0..10_000 {
            let x = rng.next_f64();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn next_below_bounds_and_coverage() {
        let mut rng = Rng::new(3);
        let mut seen = [false; 7];
        for _ in 0..1000 {
            let v = rng.next_below(7) as usize;
            assert!(v < 7);
            seen[v] = true;
        }
        assert!(seen.iter().all(|&s| s), "all residues should appear");
    }

    #[test]
    fn next_range_inclusive_hits_endpoints() {
        let mut rng = Rng::new(9);
        let (mut lo_hit, mut hi_hit) = (false, false);
        for _ in 0..2000 {
            let v = rng.next_range_i64(-3, 3);
            assert!((-3..=3).contains(&v));
            lo_hit |= v == -3;
            hi_hit |= v == 3;
        }
        assert!(lo_hit && hi_hit);
    }

    #[test]
    fn single_point_range() {
        let mut rng = Rng::new(11);
        for _ in 0..10 {
            assert_eq!(rng.next_range_i64(5, 5), 5);
        }
    }

    #[test]
    fn weighted_pick_respects_zero_weights() {
        let mut rng = Rng::new(13);
        for _ in 0..500 {
            let i = rng.pick_weighted(&[0.0, 1.0, 0.0]);
            assert_eq!(i, 1);
        }
    }

    #[test]
    fn weighted_pick_roughly_proportional() {
        let mut rng = Rng::new(17);
        let mut counts = [0usize; 3];
        let n = 30_000;
        for _ in 0..n {
            counts[rng.pick_weighted(&[1.0, 2.0, 1.0])] += 1;
        }
        let f1 = counts[1] as f64 / n as f64;
        assert!(
            (f1 - 0.5).abs() < 0.02,
            "middle weight should win ~50% (got {f1})"
        );
    }

    #[test]
    fn weighted_pick_degenerate_inputs_fall_back_to_uniform() {
        // A panic here would kill the online tuning loop, so degenerate
        // weight vectors select uniformly instead.
        let mut rng = Rng::new(19);
        for weights in [
            &[0.0, 0.0][..],
            &[f64::NAN, f64::NAN],
            &[f64::INFINITY, f64::INFINITY],
            &[-1.0, -2.0, -3.0],
        ] {
            let mut seen = vec![false; weights.len()];
            for _ in 0..300 {
                let i = rng.pick_weighted(weights);
                assert!(i < weights.len());
                seen[i] = true;
            }
            assert!(
                seen.iter().all(|&s| s),
                "uniform fallback must reach every index: {weights:?}"
            );
        }
    }

    #[test]
    fn weighted_pick_skips_poisoned_entries_when_total_is_sane() {
        let mut rng = Rng::new(20);
        for _ in 0..300 {
            let i = rng.pick_weighted(&[f64::NAN, 1.0, -5.0]);
            assert_eq!(i, 1, "only the sane positive weight may win");
            let j = rng.pick_weighted(&[f64::INFINITY, 1.0]);
            assert_eq!(j, 1, "infinite weight is poisoned, not dominant");
        }
    }

    #[test]
    #[should_panic(expected = "empty")]
    fn weighted_pick_rejects_empty() {
        let mut rng = Rng::new(19);
        rng.pick_weighted(&[]);
    }

    #[test]
    fn gaussian_moments() {
        let mut rng = Rng::new(23);
        let n = 50_000;
        let samples: Vec<f64> = (0..n).map(|_| rng.next_gaussian()).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.03, "mean ~ 0 (got {mean})");
        assert!((var - 1.0).abs() < 0.05, "var ~ 1 (got {var})");
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut rng = Rng::new(29);
        let mut xs: Vec<u32> = (0..50).collect();
        rng.shuffle(&mut xs);
        let mut sorted = xs.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
    }

    #[test]
    fn split_streams_are_independent() {
        let mut parent = Rng::new(31);
        let mut c1 = parent.split();
        let mut c2 = parent.split();
        let same = (0..100).filter(|_| c1.next_u64() == c2.next_u64()).count();
        assert!(same < 3);
    }
}
