//! Phase-1 search strategies (Section II-A of the paper).
//!
//! These are the classical approximative techniques used to tune *numeric*
//! (ordinal/interval/ratio) parameter spaces: hill climbing, the Nelder-Mead
//! downhill simplex, particle swarm, genetic algorithms, differential
//! evolution, simulated annealing, plus exhaustive and random search.
//!
//! All strategies implement the ask/tell [`Searcher`] interface so they can
//! drive an *online* tuning loop: the application asks for the next
//! configuration, runs its hot operation, and tells the searcher the
//! measured value. No strategy ever calls the measurement function itself —
//! that inversion of control is what makes online tuning possible.
//!
//! ## Nominal parameters
//!
//! Per Section II-B, all of these except genetic algorithms, exhaustive and
//! random search require order, distance, or direction, and therefore
//! *cannot* legally manipulate nominal parameters. The constructors of those
//! strategies reject spaces containing a nominal parameter; the dedicated
//! strategies in [`crate::nominal`] handle algorithmic choice instead.

mod differential_evolution;
mod exhaustive;
mod genetic;
mod hill_climbing;
mod nelder_mead;
mod particle_swarm;
mod random;
mod simulated_annealing;

pub use differential_evolution::{DifferentialEvolution, DifferentialEvolutionOptions};
pub use exhaustive::ExhaustiveSearch;
pub use genetic::{GeneticAlgorithm, GeneticOptions};
pub use hill_climbing::HillClimbing;
pub use nelder_mead::{NelderMead, NelderMeadOptions};
pub use particle_swarm::{ParticleSwarm, ParticleSwarmOptions};
pub use random::RandomSearch;
pub use simulated_annealing::{SimulatedAnnealing, SimulatedAnnealingOptions};

use crate::space::{Configuration, SearchSpace};

/// Ask/tell interface of a phase-1 search strategy.
///
/// Protocol: alternate [`Searcher::propose`] and [`Searcher::report`]. Every
/// proposed configuration must be reported before the next proposal; values
/// must be finite and lower-is-better.
///
/// `Send` is a supertrait so searcher state can live inside the concurrent
/// multi-site runtime ([`crate::site`]), where any request thread may claim
/// a site and drive its tuner; every searcher in this crate owns plain data
/// and is `Send` automatically.
pub trait Searcher: Send {
    /// The space being searched.
    fn space(&self) -> &SearchSpace;

    /// Propose the next configuration to evaluate.
    fn propose(&mut self) -> Configuration;

    /// Report the measured value of the most recently proposed
    /// configuration.
    fn report(&mut self, value: f64);

    /// Abandon the most recently proposed configuration without reporting a
    /// value: the measurement failed and produced nothing usable. The
    /// search state rolls back so the next [`Searcher::propose`] behaves as
    /// if the abandoned proposal never happened (the same point may be
    /// re-proposed). A no-op when nothing is pending.
    ///
    /// The default suits stateless searchers; every implementation that
    /// asserts propose/report pairing must override it to clear (and where
    /// necessary re-queue) its pending state.
    fn abandon(&mut self) {}

    /// Best configuration and value observed so far.
    fn best(&self) -> Option<(&Configuration, f64)>;

    /// Has the strategy converged? A converged strategy keeps proposing its
    /// best-known configuration, which is the correct behaviour inside an
    /// indefinitely running online loop.
    fn converged(&self) -> bool {
        false
    }

    /// Strategy name for reports and plots.
    fn name(&self) -> &'static str;
}

impl Searcher for Box<dyn Searcher> {
    fn space(&self) -> &SearchSpace {
        (**self).space()
    }

    fn propose(&mut self) -> Configuration {
        (**self).propose()
    }

    fn report(&mut self, value: f64) {
        (**self).report(value)
    }

    fn abandon(&mut self) {
        (**self).abandon()
    }

    fn best(&self) -> Option<(&Configuration, f64)> {
        (**self).best()
    }

    fn converged(&self) -> bool {
        (**self).converged()
    }

    fn name(&self) -> &'static str {
        (**self).name()
    }
}

/// Shared best-so-far bookkeeping for searcher implementations.
#[derive(Debug, Clone, Default)]
pub(crate) struct BestTracker {
    best: Option<(Configuration, f64)>,
    evaluations: usize,
}

impl BestTracker {
    pub fn new() -> Self {
        Self::default()
    }

    pub fn observe(&mut self, config: &Configuration, value: f64) {
        assert!(value.is_finite(), "measurement must be finite, got {value}");
        self.evaluations += 1;
        if self.best.as_ref().is_none_or(|(_, b)| value < *b) {
            self.best = Some((config.clone(), value));
        }
    }

    pub fn best(&self) -> Option<(&Configuration, f64)> {
        self.best.as_ref().map(|(c, v)| (c, *v))
    }

    #[allow(dead_code)] // used by tests and kept for diagnostics
    pub fn evaluations(&self) -> usize {
        self.evaluations
    }
}

/// Panic helper used by numeric strategies that cannot handle nominal
/// parameters (Section II-B's central observation).
pub(crate) fn reject_nominal(space: &SearchSpace, strategy: &str) {
    assert!(
        !space.has_nominal(),
        "{strategy} requires ordered parameters and cannot manipulate a \
         nominal parameter; use the strategies in autotune::nominal for \
         algorithmic choice"
    );
}

/// Run a searcher against a measurement function for `iterations` steps and
/// return the per-iteration measured values. This is the offline-style
/// driver used by tests and benchmarks; online applications embed the
/// ask/tell calls in their own loop instead.
pub fn run_loop<S: Searcher, M: crate::measure::Measure>(
    searcher: &mut S,
    measure: &mut M,
    iterations: usize,
) -> Vec<f64> {
    let mut out = Vec::with_capacity(iterations);
    for _ in 0..iterations {
        let config = searcher.propose();
        let value = measure.measure(&config);
        searcher.report(value);
        out.push(value);
    }
    out
}

#[cfg(test)]
pub(crate) mod test_util {
    use crate::param::Parameter;
    use crate::space::{Configuration, SearchSpace};

    /// A smooth convex bowl over two integer ratio parameters, minimum at
    /// (7, -3) with value 1.0.
    pub fn bowl_space() -> SearchSpace {
        SearchSpace::new(vec![
            Parameter::ratio("x", -20, 20),
            Parameter::interval("y", -20, 20),
        ])
    }

    pub fn bowl(c: &Configuration) -> f64 {
        let x = c.get(0).as_f64();
        let y = c.get(1).as_f64();
        1.0 + (x - 7.0).powi(2) + (y + 3.0).powi(2)
    }

    /// A multimodal 1-D function with a deep global minimum at x = 13 and a
    /// shallow local minimum at x = -11.
    pub fn two_wells_space() -> SearchSpace {
        SearchSpace::new(vec![Parameter::interval("x", -30, 30)])
    }

    pub fn two_wells(c: &Configuration) -> f64 {
        let x = c.get(0).as_f64();
        let global = 2.0 + 0.05 * (x - 13.0).powi(2);
        let local = 6.0 + 0.05 * (x + 11.0).powi(2);
        global.min(local)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::space::Configuration;

    #[test]
    fn best_tracker_keeps_minimum() {
        let mut t = BestTracker::new();
        t.observe(&Configuration::empty(), 4.0);
        t.observe(&Configuration::empty(), 2.0);
        t.observe(&Configuration::empty(), 3.0);
        assert_eq!(t.best().unwrap().1, 2.0);
        assert_eq!(t.evaluations(), 3);
    }

    #[test]
    #[should_panic(expected = "finite")]
    fn best_tracker_rejects_nan() {
        let mut t = BestTracker::new();
        t.observe(&Configuration::empty(), f64::NAN);
    }
}
