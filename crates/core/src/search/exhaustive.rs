//! Exhaustive search: try every configuration systematically (Section
//! II-A-7).
//!
//! "Perfectly valid if algorithmic choice is the only parameter that is
//! being optimized" — on purely-nominal spaces one evaluation of each value
//! is information-theoretically optimal. On mixed spaces it is inadequate
//! for online tuning because it *always* also selects the worst
//! configuration, whose cost must be amortized at runtime.

use crate::search::{BestTracker, Searcher};
use crate::space::{Configuration, SearchSpace};

/// Systematic enumeration of a finite space. After the sweep completes the
/// searcher is converged and keeps proposing the best configuration found.
#[derive(Debug, Clone)]
pub struct ExhaustiveSearch {
    space: SearchSpace,
    queue: Vec<Configuration>,
    next: usize,
    tracker: BestTracker,
    pending: Option<Configuration>,
}

impl ExhaustiveSearch {
    /// Build the sweep over the *feasible* configurations. Panics if the
    /// space is continuous or too large to enumerate — exhaustive search
    /// is only meaningful on small finite spaces. If no configuration is
    /// feasible, the sweep degenerates to the minimum corner alone, which
    /// the tuners recognize as infeasible and penalize without measuring.
    pub fn new(space: SearchSpace) -> Self {
        let mut queue = space.enumerate_feasible();
        if queue.is_empty() {
            queue.push(space.min_corner());
        }
        ExhaustiveSearch {
            space,
            queue,
            next: 0,
            tracker: BestTracker::new(),
            pending: None,
        }
    }

    /// Number of configurations still unvisited.
    pub fn remaining(&self) -> usize {
        self.queue.len() - self.next.min(self.queue.len())
    }
}

impl Searcher for ExhaustiveSearch {
    fn space(&self) -> &SearchSpace {
        &self.space
    }

    fn propose(&mut self) -> Configuration {
        assert!(
            self.pending.is_none(),
            "propose() called twice without report()"
        );
        let c = if self.next < self.queue.len() {
            let c = self.queue[self.next].clone();
            self.next += 1;
            c
        } else {
            // Sweep done: exploit the optimum indefinitely.
            self.tracker
                .best()
                .expect("sweep finished, so at least one sample exists")
                .0
                .clone()
        };
        self.pending = Some(c.clone());
        c
    }

    fn abandon(&mut self) {
        // Rewind the sweep cursor if the abandoned point came off the
        // queue, so the sweep still covers every configuration.
        if let Some(p) = self.pending.take() {
            if self.next > 0 && self.queue.get(self.next - 1) == Some(&p) {
                self.next -= 1;
            }
        }
    }

    fn report(&mut self, value: f64) {
        let c = self.pending.take().expect("report() without propose()");
        self.tracker.observe(&c, value);
    }

    fn best(&self) -> Option<(&Configuration, f64)> {
        self.tracker.best()
    }

    fn converged(&self) -> bool {
        self.next >= self.queue.len()
    }

    fn name(&self) -> &'static str {
        "exhaustive"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::param::Parameter;
    use crate::search::test_util::{bowl, bowl_space};

    #[test]
    fn visits_every_configuration_once() {
        let space = SearchSpace::new(vec![
            Parameter::ratio("a", 0, 3),
            Parameter::interval("b", 0, 2),
        ]);
        let mut s = ExhaustiveSearch::new(space.clone());
        let mut seen = Vec::new();
        while !s.converged() {
            let c = s.propose();
            seen.push(c.clone());
            s.report(1.0);
        }
        assert_eq!(seen.len(), 12);
        for i in 0..seen.len() {
            for j in 0..i {
                assert_ne!(seen[i], seen[j]);
            }
        }
    }

    #[test]
    fn finds_exact_optimum() {
        let mut s = ExhaustiveSearch::new(bowl_space());
        while !s.converged() {
            let c = s.propose();
            let v = bowl(&c);
            s.report(v);
        }
        let (c, v) = s.best().unwrap();
        assert_eq!(v, 1.0);
        assert_eq!(c.get(0).as_i64(), 7);
        assert_eq!(c.get(1).as_i64(), -3);
    }

    #[test]
    fn after_convergence_exploits_best() {
        let mut s = ExhaustiveSearch::new(bowl_space());
        while !s.converged() {
            let c = s.propose();
            let v = bowl(&c);
            s.report(v);
        }
        let best = s.best().unwrap().0.clone();
        for _ in 0..5 {
            let c = s.propose();
            assert_eq!(c, best);
            s.report(1.0);
        }
    }

    #[test]
    fn handles_nominal_spaces() {
        // Exhaustive search is the textbook-correct strategy for a purely
        // nominal space.
        let space = SearchSpace::new(vec![Parameter::nominal(
            "alg",
            vec!["a".into(), "b".into(), "c".into()],
        )]);
        let mut s = ExhaustiveSearch::new(space);
        let costs = [3.0, 1.0, 2.0];
        while !s.converged() {
            let c = s.propose();
            let v = costs[c.get(0).as_index()];
            s.report(v);
        }
        assert_eq!(s.best().unwrap().0.get(0).as_index(), 1);
    }

    #[test]
    fn remaining_counts_down() {
        let space = SearchSpace::new(vec![Parameter::ratio("a", 0, 4)]);
        let mut s = ExhaustiveSearch::new(space);
        assert_eq!(s.remaining(), 5);
        s.propose();
        s.report(1.0);
        assert_eq!(s.remaining(), 4);
    }
}
