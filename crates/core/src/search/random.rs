//! Random search: roll the dice in every iteration (Section II-A-7).
//!
//! "Rarely used in practice", but a vital baseline: on a *single nominal
//! parameter* a genetic algorithm degenerates to exactly this strategy,
//! which is the paper's core argument for dedicated nominal strategies.

use crate::rng::Rng;
use crate::search::{BestTracker, Searcher};
use crate::space::{Configuration, SearchSpace};

/// Uniform random sampling of the search space.
#[derive(Debug, Clone)]
pub struct RandomSearch {
    space: SearchSpace,
    rng: Rng,
    tracker: BestTracker,
    pending: Option<Configuration>,
}

impl RandomSearch {
    /// Random search over any space (nominal parameters are fine — equality
    /// is the only operation random search needs).
    pub fn new(space: SearchSpace, seed: u64) -> Self {
        RandomSearch {
            space,
            rng: Rng::new(seed),
            tracker: BestTracker::new(),
            pending: None,
        }
    }
}

impl Searcher for RandomSearch {
    fn space(&self) -> &SearchSpace {
        &self.space
    }

    fn propose(&mut self) -> Configuration {
        assert!(
            self.pending.is_none(),
            "propose() called twice without report()"
        );
        let c = self.space.random_feasible(&mut self.rng);
        self.pending = Some(c.clone());
        c
    }

    fn abandon(&mut self) {
        self.pending = None;
    }

    fn report(&mut self, value: f64) {
        let c = self.pending.take().expect("report() without propose()");
        self.tracker.observe(&c, value);
    }

    fn best(&self) -> Option<(&Configuration, f64)> {
        self.tracker.best()
    }

    fn name(&self) -> &'static str {
        "random"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::search::test_util::{bowl, bowl_space};

    #[test]
    fn finds_decent_point_on_bowl() {
        let mut s = RandomSearch::new(bowl_space(), 42);
        for _ in 0..400 {
            let c = s.propose();
            let v = bowl(&c);
            s.report(v);
        }
        let (_, best) = s.best().unwrap();
        assert!(
            best < 30.0,
            "random search should stumble close-ish: {best}"
        );
    }

    #[test]
    fn proposals_stay_in_space() {
        let space = bowl_space();
        let mut s = RandomSearch::new(space.clone(), 1);
        for _ in 0..100 {
            let c = s.propose();
            assert!(space.contains(&c));
            s.report(1.0);
        }
    }

    #[test]
    fn deterministic_given_seed() {
        let mut a = RandomSearch::new(bowl_space(), 5);
        let mut b = RandomSearch::new(bowl_space(), 5);
        for _ in 0..50 {
            assert_eq!(a.propose(), b.propose());
            a.report(1.0);
            b.report(1.0);
        }
    }

    #[test]
    #[should_panic(expected = "without report")]
    fn double_propose_panics() {
        let mut s = RandomSearch::new(bowl_space(), 1);
        s.propose();
        s.propose();
    }

    #[test]
    #[should_panic(expected = "without propose")]
    fn report_without_propose_panics() {
        let mut s = RandomSearch::new(bowl_space(), 1);
        s.report(1.0);
    }
}
