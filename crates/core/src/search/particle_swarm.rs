//! Particle swarm optimization (Section II-A-3): a set of candidate
//! solutions, each iteratively updated by an individual local "velocity"
//! pulled towards its personal best and the swarm's global best.
//!
//! Velocities are directions with magnitudes, so the method needs interval-
//! scaled parameters and rejects nominal ones (Section II-B: "Particle Swarm
//! operates on a measure of direction and distance").

use crate::rng::Rng;
use crate::search::{reject_nominal, BestTracker, Searcher};
use crate::space::{Configuration, SearchSpace};

/// Canonical PSO control parameters.
#[derive(Debug, Clone, Copy)]
pub struct ParticleSwarmOptions {
    /// Number of particles.
    pub particles: usize,
    /// Inertia weight `w`.
    pub inertia: f64,
    /// Cognitive coefficient `c1` (pull towards the personal best).
    pub cognitive: f64,
    /// Social coefficient `c2` (pull towards the global best).
    pub social: f64,
    /// Maximum velocity as a fraction of each dimension's span.
    pub max_velocity_fraction: f64,
}

impl Default for ParticleSwarmOptions {
    fn default() -> Self {
        ParticleSwarmOptions {
            particles: 10,
            inertia: 0.72,
            cognitive: 1.49,
            social: 1.49,
            max_velocity_fraction: 0.25,
        }
    }
}

#[derive(Debug, Clone)]
struct Particle {
    position: Vec<f64>,
    velocity: Vec<f64>,
    best_position: Vec<f64>,
    best_value: f64,
}

/// Synchronous PSO evaluating one particle per tuning iteration.
#[derive(Debug, Clone)]
pub struct ParticleSwarm {
    space: SearchSpace,
    opts: ParticleSwarmOptions,
    rng: Rng,
    particles: Vec<Particle>,
    cursor: usize,
    initializing: bool,
    global_best: Option<(Vec<f64>, f64)>,
    tracker: BestTracker,
    pending: bool,
}

impl ParticleSwarm {
    /// Create a searcher over `space`. Panics if the space contains a
    /// nominal parameter or the options are out of range.
    pub fn new(space: SearchSpace, seed: u64, opts: ParticleSwarmOptions) -> Self {
        reject_nominal(&space, "particle swarm");
        assert!(opts.particles >= 2, "swarm needs at least 2 particles");
        assert!(
            opts.max_velocity_fraction > 0.0,
            "velocity cap must be positive"
        );
        let mut rng = Rng::new(seed);
        let n = space.dims();
        let mut particles = Vec::with_capacity(opts.particles);
        for i in 0..opts.particles {
            let position = if i == 0 {
                space.min_corner_feasible().as_coords()
            } else {
                space.random_feasible(&mut rng).as_coords()
            };
            let velocity: Vec<f64> = (0..n)
                .map(|d| {
                    let vmax = space.params()[d].span() * opts.max_velocity_fraction;
                    rng.next_range_f64(-vmax, vmax.max(f64::MIN_POSITIVE))
                })
                .collect();
            particles.push(Particle {
                best_position: position.clone(),
                best_value: f64::INFINITY,
                position,
                velocity,
            });
        }
        ParticleSwarm {
            space,
            opts,
            rng,
            particles,
            cursor: 0,
            initializing: true,
            global_best: None,
            tracker: BestTracker::new(),
            pending: false,
        }
    }

    fn advance_particle(&mut self, i: usize) {
        let gbest = self
            .global_best
            .as_ref()
            .expect("advance only after initialization")
            .0
            .clone();
        let n = self.space.dims();
        let p = &mut self.particles[i];
        #[allow(clippy::needless_range_loop)] // several vectors share the index
        for d in 0..n {
            let r1 = self.rng.next_f64();
            let r2 = self.rng.next_f64();
            let vmax = self.space.params()[d].span() * self.opts.max_velocity_fraction;
            let mut v = self.opts.inertia * p.velocity[d]
                + self.opts.cognitive * r1 * (p.best_position[d] - p.position[d])
                + self.opts.social * r2 * (gbest[d] - p.position[d]);
            if vmax > 0.0 {
                v = v.clamp(-vmax, vmax);
            }
            p.velocity[d] = v;
            p.position[d] += v;
        }
    }
}

impl Searcher for ParticleSwarm {
    fn space(&self) -> &SearchSpace {
        &self.space
    }

    fn propose(&mut self) -> Configuration {
        assert!(!self.pending, "propose() called twice without report()");
        self.pending = true;
        self.space
            .clamp_feasible(&self.particles[self.cursor].position)
    }

    fn abandon(&mut self) {
        // The cursor only advances in report(); the same particle is
        // re-proposed next.
        self.pending = false;
    }

    fn report(&mut self, value: f64) {
        assert!(self.pending, "report() without propose()");
        self.pending = false;
        let pos = self.particles[self.cursor].position.clone();
        let config = self.space.clamp_feasible(&pos);
        self.tracker.observe(&config, value);

        {
            let p = &mut self.particles[self.cursor];
            if value < p.best_value {
                p.best_value = value;
                p.best_position = pos.clone();
            }
        }
        if self.global_best.as_ref().is_none_or(|(_, b)| value < *b) {
            self.global_best = Some((pos, value));
        }

        self.cursor += 1;
        if self.cursor >= self.particles.len() {
            self.cursor = 0;
            self.initializing = false;
        }
        if !self.initializing {
            self.advance_particle(self.cursor);
        }
    }

    fn best(&self) -> Option<(&Configuration, f64)> {
        self.tracker.best()
    }

    fn name(&self) -> &'static str {
        "particle-swarm"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::param::Parameter;
    use crate::search::run_loop;
    use crate::search::test_util::{bowl, bowl_space};

    #[test]
    fn optimizes_convex_bowl() {
        let mut s = ParticleSwarm::new(bowl_space(), 4, ParticleSwarmOptions::default());
        let mut f = |c: &Configuration| bowl(c);
        run_loop(&mut s, &mut f, 800);
        let (_, v) = s.best().unwrap();
        assert!(v <= 2.0, "PSO should find the optimum region, got {v}");
    }

    #[test]
    fn optimizes_continuous_sphere() {
        let space = SearchSpace::new(vec![
            Parameter::ratio_f64("x", -8.0, 8.0),
            Parameter::ratio_f64("y", -8.0, 8.0),
            Parameter::ratio_f64("z", -8.0, 8.0),
        ]);
        let mut s = ParticleSwarm::new(space, 6, ParticleSwarmOptions::default());
        let mut f = |c: &Configuration| {
            c.values()
                .iter()
                .map(|v| (v.as_f64() - 1.0).powi(2))
                .sum::<f64>()
        };
        run_loop(&mut s, &mut f, 2000);
        assert!(s.best().unwrap().1 < 0.01);
    }

    #[test]
    fn proposals_stay_in_space_despite_velocity() {
        let space = bowl_space();
        let mut s = ParticleSwarm::new(space.clone(), 9, ParticleSwarmOptions::default());
        let f = |c: &Configuration| bowl(c);
        for _ in 0..400 {
            let c = s.propose();
            assert!(space.contains(&c));
            let v = f(&c);
            s.report(v);
        }
    }

    #[test]
    fn global_best_monotonically_improves() {
        let mut s = ParticleSwarm::new(bowl_space(), 13, ParticleSwarmOptions::default());
        let f = |c: &Configuration| bowl(c);
        let mut prev = f64::INFINITY;
        for _ in 0..300 {
            let c = s.propose();
            let v = f(&c);
            s.report(v);
            let b = s.best().unwrap().1;
            assert!(b <= prev);
            prev = b;
        }
    }

    #[test]
    #[should_panic(expected = "nominal")]
    fn rejects_nominal_spaces() {
        let space = SearchSpace::new(vec![Parameter::nominal(
            "alg",
            vec!["a".into(), "b".into()],
        )]);
        ParticleSwarm::new(space, 0, ParticleSwarmOptions::default());
    }

    #[test]
    #[should_panic(expected = "2 particles")]
    fn rejects_tiny_swarm() {
        ParticleSwarm::new(
            bowl_space(),
            0,
            ParticleSwarmOptions {
                particles: 1,
                ..Default::default()
            },
        );
    }
}
