//! Genetic algorithm (Section II-A-4): evolve a population of
//! configurations by mutation (randomly modifying one or more parameters)
//! and crossover (interleaving two parents at a random crossover point).
//!
//! Genetic algorithms are the one classical technique that *can* operate on
//! nominal parameter spaces, because mutation and crossover need only
//! equality. The paper's caveat (Section III-E) still applies: with a single
//! nominal parameter, both operators decay to random selection — the
//! regression test below demonstrates exactly that degeneration.

use crate::rng::Rng;
use crate::search::{BestTracker, Searcher};
use crate::space::{Configuration, SearchSpace};

/// Population and operator parameters.
#[derive(Debug, Clone, Copy)]
pub struct GeneticOptions {
    /// Number of individuals per generation.
    pub population: usize,
    /// Probability that a child is produced by crossover (otherwise it is a
    /// mutated copy of a single parent).
    pub crossover_rate: f64,
    /// Per-parameter probability of random mutation applied to children.
    pub mutation_rate: f64,
    /// Number of best individuals copied unchanged into the next generation.
    pub elites: usize,
    /// Tournament size for parent selection.
    pub tournament: usize,
}

impl Default for GeneticOptions {
    fn default() -> Self {
        GeneticOptions {
            population: 16,
            crossover_rate: 0.8,
            mutation_rate: 0.15,
            elites: 2,
            tournament: 3,
        }
    }
}

/// Generational genetic algorithm with tournament selection and elitism.
#[derive(Debug, Clone)]
pub struct GeneticAlgorithm {
    space: SearchSpace,
    opts: GeneticOptions,
    rng: Rng,
    /// Individuals of the current generation (configs; values filled in as
    /// they are evaluated).
    population: Vec<Configuration>,
    values: Vec<f64>,
    /// Index of the next individual awaiting evaluation.
    cursor: usize,
    generation: usize,
    tracker: BestTracker,
    pending: bool,
}

impl GeneticAlgorithm {
    /// Create a searcher over `space`. Panics if the options are out of
    /// range.
    pub fn new(space: SearchSpace, seed: u64, opts: GeneticOptions) -> Self {
        assert!(opts.population >= 2, "population must be at least 2");
        assert!(
            opts.elites < opts.population,
            "elites must leave room for offspring"
        );
        assert!(opts.tournament >= 1, "tournament size must be positive");
        let mut rng = Rng::new(seed);
        // Deterministic first individual plus random rest, mirroring the
        // paper's "start with a deterministic configuration" convention.
        let mut population = vec![space.min_corner_feasible()];
        while population.len() < opts.population {
            population.push(space.random_feasible(&mut rng));
        }
        GeneticAlgorithm {
            space,
            opts,
            rng,
            population,
            values: Vec::new(),
            cursor: 0,
            generation: 0,
            tracker: BestTracker::new(),
            pending: false,
        }
    }

    /// Completed generation count.
    pub fn generation(&self) -> usize {
        self.generation
    }

    fn tournament_pick(&mut self) -> usize {
        let mut best = self.rng.pick_index(self.population.len());
        for _ in 1..self.opts.tournament {
            let cand = self.rng.pick_index(self.population.len());
            if self.values[cand] < self.values[best] {
                best = cand;
            }
        }
        best
    }

    fn crossover(&mut self, a: &Configuration, b: &Configuration) -> Vec<crate::param::Value> {
        let n = self.space.dims();
        if n <= 1 {
            // Single-parameter space: crossover cannot mix anything — this
            // is the degeneration the paper describes.
            return a.values().to_vec();
        }
        // Single-point crossover at a random interior cut.
        let cut = 1 + self.rng.pick_index(n - 1);
        let mut vals = Vec::with_capacity(n);
        vals.extend_from_slice(&a.values()[..cut]);
        vals.extend_from_slice(&b.values()[cut..]);
        vals
    }

    fn breed(&mut self) {
        // Sort indices by fitness to extract elites.
        let mut order: Vec<usize> = (0..self.population.len()).collect();
        // total_cmp: NaN fitness sorts worst instead of panicking.
        order.sort_by(|&i, &j| self.values[i].total_cmp(&self.values[j]));

        let mut next = Vec::with_capacity(self.opts.population);
        for &i in order.iter().take(self.opts.elites) {
            next.push(self.population[i].clone());
        }
        while next.len() < self.opts.population {
            let p1 = self.tournament_pick();
            let mut child = if self.rng.next_bool(self.opts.crossover_rate) {
                let p2 = self.tournament_pick();
                let (a, b) = (self.population[p1].clone(), self.population[p2].clone());
                self.crossover(&a, &b)
            } else {
                self.population[p1].values().to_vec()
            };
            // Mutation: randomly re-draw parameters. Guarantee at least one
            // mutation for clones, so offspring differ from their parent.
            let mut mutated = false;
            for (d, v) in child.iter_mut().enumerate() {
                if self.rng.next_bool(self.opts.mutation_rate) {
                    *v = self.space.params()[d].random_value(&mut self.rng);
                    mutated = true;
                }
            }
            if !mutated && !child.is_empty() {
                let d = self.rng.pick_index(child.len());
                child[d] = self.space.params()[d].random_value(&mut self.rng);
            }
            // Crossover and mutation know nothing of constraints; repair
            // offspring into the feasible region when possible (irreparable
            // children are left as-is and penalized by the tuners).
            let child = Configuration::new(child);
            let child = self.space.repair(&child).unwrap_or(child);
            next.push(child);
        }
        self.population = next;
        self.values.clear();
        self.cursor = 0;
        self.generation += 1;
    }
}

impl Searcher for GeneticAlgorithm {
    fn space(&self) -> &SearchSpace {
        &self.space
    }

    fn propose(&mut self) -> Configuration {
        assert!(!self.pending, "propose() called twice without report()");
        self.pending = true;
        self.population[self.cursor].clone()
    }

    fn abandon(&mut self) {
        // The cursor only advances in report(); the same individual is
        // re-proposed next.
        self.pending = false;
    }

    fn report(&mut self, value: f64) {
        assert!(self.pending, "report() without propose()");
        self.pending = false;
        let config = self.population[self.cursor].clone();
        self.tracker.observe(&config, value);
        self.values.push(value);
        self.cursor += 1;
        if self.cursor >= self.population.len() {
            self.breed();
        }
    }

    fn best(&self) -> Option<(&Configuration, f64)> {
        self.tracker.best()
    }

    fn name(&self) -> &'static str {
        "genetic"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::param::Parameter;
    use crate::search::run_loop;
    use crate::search::test_util::{bowl, bowl_space};

    #[test]
    fn optimizes_convex_bowl() {
        let mut s = GeneticAlgorithm::new(bowl_space(), 3, GeneticOptions::default());
        let mut f = |c: &Configuration| bowl(c);
        run_loop(&mut s, &mut f, 1200);
        let (_, v) = s.best().unwrap();
        assert!(v <= 3.0, "GA should approach the optimum, got {v}");
    }

    #[test]
    fn handles_mixed_nominal_numeric_space() {
        // A space with a nominal *and* a ratio parameter: GAs are the only
        // classical strategy that legally searches this.
        let space = SearchSpace::new(vec![
            Parameter::nominal("alg", vec!["slow".into(), "fast".into(), "mid".into()]),
            Parameter::ratio("threads", 1, 8),
        ]);
        let mut s = GeneticAlgorithm::new(space, 11, GeneticOptions::default());
        let mut f = |c: &Configuration| {
            let base = match c.get(0).as_index() {
                0 => 100.0,
                1 => 10.0,
                _ => 40.0,
            };
            base / c.get(1).as_f64()
        };
        run_loop(&mut s, &mut f, 800);
        let (c, _) = s.best().unwrap();
        assert_eq!(c.get(0).as_index(), 1, "should discover the fast algorithm");
        assert_eq!(c.get(1).as_i64(), 8, "should max out threads");
    }

    #[test]
    fn degenerates_to_random_search_on_single_nominal() {
        // The paper's Section III-E observation: with one nominal parameter,
        // mutation is a uniform re-draw, i.e. random search. We check that
        // non-elite offspring values are spread roughly uniformly.
        let space = SearchSpace::new(vec![Parameter::nominal(
            "alg",
            (0..4).map(|i| format!("a{i}")).collect(),
        )]);
        let mut s = GeneticAlgorithm::new(
            space,
            5,
            GeneticOptions {
                population: 8,
                elites: 0,
                mutation_rate: 1.0, // forced mutation = pure random draw
                crossover_rate: 0.0,
                tournament: 1,
            },
        );
        let mut counts = [0usize; 4];
        for _ in 0..2000 {
            let c = s.propose();
            counts[c.get(0).as_index()] += 1;
            s.report(1.0); // flat landscape: no selection pressure
        }
        for &c in &counts {
            let frac = c as f64 / 2000.0;
            assert!(
                (frac - 0.25).abs() < 0.08,
                "selection should look uniform, got {counts:?}"
            );
        }
    }

    #[test]
    fn elites_survive_generations() {
        let mut s = GeneticAlgorithm::new(bowl_space(), 9, GeneticOptions::default());
        let f = |c: &Configuration| bowl(c);
        // Run exactly two generations and make sure the best value never
        // regresses across the generation boundary.
        let mut best_after_g1 = f64::INFINITY;
        for i in 0..(16 * 2) {
            let c = s.propose();
            let v = f(&c);
            s.report(v);
            if i == 15 {
                best_after_g1 = s.best().unwrap().1;
            }
        }
        assert!(s.best().unwrap().1 <= best_after_g1);
        assert_eq!(s.generation(), 2);
    }

    #[test]
    #[should_panic(expected = "population")]
    fn rejects_tiny_population() {
        GeneticAlgorithm::new(
            bowl_space(),
            0,
            GeneticOptions {
                population: 1,
                ..Default::default()
            },
        );
    }
}
