//! The Nelder-Mead downhill simplex method (Section II-A-2), restructured as
//! an ask/tell state machine so it can drive an *online* tuning loop.
//!
//! This is the phase-1 strategy the paper uses in both case studies: "In our
//! case studies we rely on the Nelder-Mead downhill simplex method in this
//! step." The method maintains `n + 1` points in an `n`-dimensional search
//! space and moves/contracts the simplex towards an extremum via a small
//! state machine of simplex transitions (reflection, expansion, contraction,
//! shrink). It needs a measure of direction and distance, so it rejects
//! nominal parameters.
//!
//! Integer and label-index dimensions are searched in continuous coordinates
//! and projected onto the nearest legal configuration at evaluation time —
//! the standard treatment for integer-lattice simplex search.

use crate::search::{reject_nominal, BestTracker, Searcher};
use crate::space::{Configuration, SearchSpace};

/// Simplex transition coefficients and convergence tolerances.
#[derive(Debug, Clone, Copy)]
pub struct NelderMeadOptions {
    /// Reflection coefficient α (> 0). Standard: 1.
    pub alpha: f64,
    /// Expansion coefficient γ (> 1). Standard: 2.
    pub gamma: f64,
    /// Contraction coefficient ρ (0 < ρ ≤ 0.5). Standard: 0.5.
    pub rho: f64,
    /// Shrink coefficient σ (0 < σ < 1). Standard: 0.5.
    pub sigma: f64,
    /// Converged when the simplex' value spread falls below this.
    pub value_tolerance: f64,
    /// Converged when the simplex' maximal coordinate extent falls below
    /// this.
    pub coord_tolerance: f64,
    /// Relative size of the initial simplex: each dimension's step is
    /// `initial_step_fraction × span`, at least 1 for discrete dimensions.
    pub initial_step_fraction: f64,
}

impl Default for NelderMeadOptions {
    fn default() -> Self {
        NelderMeadOptions {
            alpha: 1.0,
            gamma: 2.0,
            rho: 0.5,
            sigma: 0.5,
            value_tolerance: 1e-9,
            coord_tolerance: 0.25,
            initial_step_fraction: 0.15,
        }
    }
}

#[derive(Debug, Clone)]
enum State {
    /// Evaluating the `n + 1` initial simplex vertices, one per iteration.
    Init { next: usize },
    /// Awaiting the measurement of the reflection point.
    Reflect,
    /// Awaiting the expansion point; carries the reflection result.
    Expand { xr: Vec<f64>, fr: f64 },
    /// Awaiting the outside-contraction point; carries the reflection result.
    ContractOutside { fr: f64 },
    /// Awaiting the inside-contraction point.
    ContractInside,
    /// Shrinking: re-evaluating vertices `1..=n` pulled towards the best.
    Shrink { next: usize },
    /// Converged — keep proposing (and re-measuring) the best vertex.
    Exploit,
}

/// Online Nelder-Mead downhill simplex.
///
/// ```
/// use autotune::prelude::*;
///
/// let space = SearchSpace::new(vec![Parameter::ratio("threads", 1, 32)]);
/// let mut nm = NelderMead::new(space, NelderMeadOptions::default());
/// for _ in 0..60 {
///     let config = nm.propose();                       // ask
///     let t = config.get(0).as_f64();
///     nm.report(64.0 / t + 0.5 * t);                   // tell (measured cost)
/// }
/// let (best, _) = nm.best().unwrap();
/// assert!((best.get(0).as_i64() - 11).abs() <= 2);     // optimum ≈ √128
/// ```
#[derive(Debug, Clone)]
pub struct NelderMead {
    space: SearchSpace,
    opts: NelderMeadOptions,
    /// Simplex vertices: continuous coordinates plus measured value.
    simplex: Vec<(Vec<f64>, f64)>,
    state: State,
    tracker: BestTracker,
    /// Coordinates of the point whose measurement we are waiting for.
    pending: Option<Vec<f64>>,
    /// Next proposal, precomputed by the transition logic in `report()`.
    queued: Option<Vec<f64>>,
    centroid: Vec<f64>,
    /// Initial vertex coordinates (kept until init completes).
    init_points: Vec<Vec<f64>>,
}

impl NelderMead {
    /// Start from the deterministic minimum corner of the space (repaired
    /// into the feasible region when constraints reject it).
    pub fn new(space: SearchSpace, opts: NelderMeadOptions) -> Self {
        let start = space.min_corner_feasible();
        Self::from_start(space, &start, opts)
    }

    /// Start from an explicit configuration — both case studies begin from a
    /// hand-crafted best-practice configuration.
    pub fn from_start(space: SearchSpace, start: &Configuration, opts: NelderMeadOptions) -> Self {
        reject_nominal(&space, "Nelder-Mead");
        assert!(space.contains(start), "start configuration not in space");
        assert!(
            opts.alpha > 0.0 && opts.gamma > 1.0,
            "bad reflection/expansion"
        );
        assert!(
            opts.rho > 0.0 && opts.rho <= 0.5,
            "bad contraction coefficient"
        );
        assert!(
            opts.sigma > 0.0 && opts.sigma < 1.0,
            "bad shrink coefficient"
        );

        let n = space.dims();
        let x0 = start.as_coords();
        let mut init_points = Vec::with_capacity(n + 1);
        init_points.push(x0.clone());
        for d in 0..n {
            let span = space.params()[d].span();
            let mut step = opts.initial_step_fraction * span;
            if span > 0.0 {
                step = step.max(1.0_f64.min(span));
            }
            let mut xi = x0.clone();
            // Step towards the interior if stepping up would leave the
            // domain entirely (projection would collapse the vertex onto
            // x0 and degenerate the simplex).
            let upper = match space.params()[d].domain() {
                crate::param::Domain::Labels(ls) => (ls.len() - 1) as f64,
                crate::param::Domain::IntRange { hi, .. } => *hi as f64,
                crate::param::Domain::FloatRange { hi, .. } => *hi,
            };
            if xi[d] + step > upper {
                xi[d] -= step;
            } else {
                xi[d] += step;
            }
            init_points.push(xi);
        }

        NelderMead {
            space,
            opts,
            simplex: Vec::with_capacity(n + 1),
            state: State::Init { next: 0 },
            tracker: BestTracker::new(),
            pending: None,
            queued: None,
            centroid: vec![0.0; n],
            init_points,
        }
    }

    /// Current number of evaluated simplex vertices (for diagnostics).
    pub fn simplex_len(&self) -> usize {
        self.simplex.len()
    }

    fn n(&self) -> usize {
        self.space.dims()
    }

    /// Sort the simplex, test convergence, and compute the next reflection
    /// point; transitions into `Reflect` or `Exploit`.
    fn start_iteration(&mut self) -> Vec<f64> {
        // total_cmp, not partial_cmp: a NaN measurement smuggled past the
        // robust layer must sort as worst-possible, not kill the tuning
        // thread mid-simplex.
        self.simplex.sort_by(|a, b| a.1.total_cmp(&b.1));

        // Convergence: simplex collapsed in value and in space.
        let f_best = self.simplex[0].1;
        let f_worst = self.simplex[self.n()].1;
        let value_spread = f_worst - f_best;
        let coord_extent = (0..self.n())
            .map(|d| {
                let lo = self
                    .simplex
                    .iter()
                    .map(|(x, _)| x[d])
                    .fold(f64::INFINITY, f64::min);
                let hi = self
                    .simplex
                    .iter()
                    .map(|(x, _)| x[d])
                    .fold(f64::NEG_INFINITY, f64::max);
                hi - lo
            })
            .fold(0.0, f64::max);
        if value_spread <= self.opts.value_tolerance && coord_extent <= self.opts.coord_tolerance {
            self.state = State::Exploit;
            return self.simplex[0].0.clone();
        }

        // Centroid of all vertices except the worst.
        let n = self.n();
        for d in 0..n {
            self.centroid[d] = self.simplex[..n].iter().map(|(x, _)| x[d]).sum::<f64>() / n as f64;
        }
        let worst = &self.simplex[n].0;
        let xr: Vec<f64> = (0..n)
            .map(|d| self.centroid[d] + self.opts.alpha * (self.centroid[d] - worst[d]))
            .collect();
        self.state = State::Reflect;
        xr
    }

    fn replace_worst(&mut self, x: Vec<f64>, f: f64) -> Vec<f64> {
        let n = self.n();
        self.simplex[n] = (x, f);
        self.start_iteration()
    }

    fn begin_shrink(&mut self) -> Vec<f64> {
        let best = self.simplex[0].0.clone();
        for (x, _) in self.simplex.iter_mut().skip(1) {
            for d in 0..best.len() {
                x[d] = best[d] + self.opts.sigma * (x[d] - best[d]);
            }
        }
        self.state = State::Shrink { next: 1 };
        self.simplex[1].0.clone()
    }
}

impl Searcher for NelderMead {
    fn space(&self) -> &SearchSpace {
        &self.space
    }

    fn propose(&mut self) -> Configuration {
        assert!(
            self.pending.is_none(),
            "propose() called twice without report()"
        );
        crate::telemetry::emit(|| crate::telemetry::EventKind::Phase1Step {
            op: match &self.state {
                State::Init { .. } => crate::telemetry::SimplexOp::Init,
                State::Reflect => crate::telemetry::SimplexOp::Reflect,
                State::Expand { .. } => crate::telemetry::SimplexOp::Expand,
                State::ContractOutside { .. } => crate::telemetry::SimplexOp::ContractOutside,
                State::ContractInside => crate::telemetry::SimplexOp::ContractInside,
                State::Shrink { .. } => crate::telemetry::SimplexOp::Shrink,
                State::Exploit => crate::telemetry::SimplexOp::Exploit,
            },
        });
        let coords = match self.queued.take() {
            Some(q) => q,
            None => match &self.state {
                State::Init { next } => self.init_points[*next].clone(),
                State::Shrink { next } => self.simplex[*next].0.clone(),
                State::Exploit => self.simplex[0].0.clone(),
                // Transition states always queue their proposal in report().
                State::Reflect
                | State::Expand { .. }
                | State::ContractOutside { .. }
                | State::ContractInside => {
                    unreachable!("transition states always queue a proposal")
                }
            },
        };
        self.pending = Some(coords.clone());
        self.space.clamp_feasible(&coords)
    }

    fn abandon(&mut self) {
        // Re-queue the abandoned point: transition states (Reflect, Expand,
        // ...) propose exactly one specific point, which must be re-proposed
        // for the simplex update to stay well-defined.
        if let Some(p) = self.pending.take() {
            self.queued = Some(p);
        }
    }

    fn report(&mut self, value: f64) {
        let coords = self.pending.take().expect("report() without propose()");
        let config = self.space.clamp_feasible(&coords);
        self.tracker.observe(&config, value);

        // Zero-dimensional spaces: the single empty configuration is all
        // there is; stay in Exploit forever.
        if self.n() == 0 {
            self.simplex = vec![(Vec::new(), value)];
            self.state = State::Exploit;
            return;
        }

        let next_coords: Option<Vec<f64>> = match std::mem::replace(&mut self.state, State::Exploit)
        {
            State::Init { next } => {
                self.simplex.push((coords, value));
                if next + 1 < self.init_points.len() {
                    self.state = State::Init { next: next + 1 };
                    None
                } else {
                    Some(self.start_iteration())
                }
            }
            State::Reflect => {
                let fr = value;
                let xr = coords;
                let f_best = self.simplex[0].1;
                let f_second_worst = self.simplex[self.n() - 1].1;
                let f_worst = self.simplex[self.n()].1;
                if fr < f_best {
                    // Try to expand further in the same direction.
                    let xe: Vec<f64> = (0..self.n())
                        .map(|d| self.centroid[d] + self.opts.gamma * (xr[d] - self.centroid[d]))
                        .collect();
                    self.state = State::Expand { xr, fr };
                    self.queued = Some(xe);
                    return;
                } else if fr < f_second_worst {
                    Some(self.replace_worst(xr, fr))
                } else if fr < f_worst {
                    // Outside contraction between centroid and reflection.
                    let xc: Vec<f64> = (0..self.n())
                        .map(|d| self.centroid[d] + self.opts.rho * (xr[d] - self.centroid[d]))
                        .collect();
                    self.state = State::ContractOutside { fr };
                    self.queued = Some(xc);
                    return;
                } else {
                    // Inside contraction towards the worst vertex.
                    let worst = &self.simplex[self.n()].0;
                    let xc: Vec<f64> = (0..self.n())
                        .map(|d| self.centroid[d] + self.opts.rho * (worst[d] - self.centroid[d]))
                        .collect();
                    self.state = State::ContractInside;
                    self.queued = Some(xc);
                    return;
                }
            }
            State::Expand { xr, fr } => {
                if value < fr {
                    Some(self.replace_worst(coords, value))
                } else {
                    Some(self.replace_worst(xr, fr))
                }
            }
            State::ContractOutside { fr } => {
                if value <= fr {
                    Some(self.replace_worst(coords, value))
                } else {
                    Some(self.begin_shrink())
                }
            }
            State::ContractInside => {
                let f_worst = self.simplex[self.n()].1;
                if value < f_worst {
                    Some(self.replace_worst(coords, value))
                } else {
                    Some(self.begin_shrink())
                }
            }
            State::Shrink { next } => {
                self.simplex[next].1 = value;
                if next < self.n() {
                    self.state = State::Shrink { next: next + 1 };
                    None
                } else {
                    Some(self.start_iteration())
                }
            }
            State::Exploit => {
                self.state = State::Exploit;
                None
            }
        };

        // Queue the next proposal where the new state needs one. `Shrink`
        // and `Exploit` recompute their proposal from state in `propose()`.
        if let Some(coords) = next_coords {
            match self.state {
                State::Reflect => self.queued = Some(coords),
                State::Exploit | State::Shrink { .. } => {}
                _ => unreachable!("transitions yield Reflect, Shrink, or Exploit"),
            }
        }
    }

    fn best(&self) -> Option<(&Configuration, f64)> {
        self.tracker.best()
    }

    fn converged(&self) -> bool {
        matches!(self.state, State::Exploit)
    }

    fn name(&self) -> &'static str {
        "nelder-mead"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::param::Parameter;
    use crate::search::run_loop;
    use crate::search::test_util::{bowl, bowl_space};
    use crate::space::Configuration;

    fn default_nm(space: SearchSpace) -> NelderMead {
        NelderMead::new(space, NelderMeadOptions::default())
    }

    #[test]
    fn converges_on_convex_bowl() {
        let mut s = default_nm(bowl_space());
        let mut f = |c: &Configuration| bowl(c);
        run_loop(&mut s, &mut f, 300);
        let (c, v) = s.best().unwrap();
        assert!(v <= 2.0, "expected near-optimal value, got {v}");
        assert!((c.get(0).as_i64() - 7).abs() <= 1);
        assert!((c.get(1).as_i64() + 3).abs() <= 1);
    }

    #[test]
    fn quick_convergence_is_quick() {
        // The paper picks Nelder-Mead "because it often shows very quick
        // convergence": it should be within 10% of optimal well inside 100
        // evaluations on a smooth bowl.
        let mut s = default_nm(bowl_space());
        let mut f = |c: &Configuration| bowl(c);
        run_loop(&mut s, &mut f, 100);
        assert!(s.best().unwrap().1 <= 2.5);
    }

    #[test]
    fn continuous_space_high_precision() {
        let space = SearchSpace::new(vec![
            Parameter::ratio_f64("x", -10.0, 10.0),
            Parameter::ratio_f64("y", -10.0, 10.0),
        ]);
        let mut s = NelderMead::new(
            space,
            NelderMeadOptions {
                coord_tolerance: 1e-6,
                value_tolerance: 1e-12,
                ..Default::default()
            },
        );
        let mut f = |c: &Configuration| {
            let x = c.get(0).as_f64();
            let y = c.get(1).as_f64();
            (x - 1.5).powi(2) + (y + 2.5).powi(2)
        };
        run_loop(&mut s, &mut f, 500);
        let (c, v) = s.best().unwrap();
        assert!(v < 1e-6, "got {v}");
        assert!((c.get(0).as_f64() - 1.5).abs() < 1e-3);
        assert!((c.get(1).as_f64() + 2.5).abs() < 1e-3);
    }

    #[test]
    fn proposals_always_in_space() {
        let space = bowl_space();
        let mut s = default_nm(space.clone());
        let mut rngish = 0u64;
        for _ in 0..200 {
            let c = s.propose();
            assert!(space.contains(&c), "proposed {c:?}");
            // Adversarial noisy values to push the simplex around.
            rngish = rngish.wrapping_mul(6364136223846793005).wrapping_add(1);
            s.report((rngish >> 33) as f64 / 1e6 + bowl(&c));
        }
    }

    #[test]
    fn zero_dimensional_space_is_trivially_converged() {
        let mut s = default_nm(SearchSpace::empty());
        let c = s.propose();
        assert!(c.is_empty());
        s.report(5.0);
        assert!(s.converged());
        let c2 = s.propose();
        assert!(c2.is_empty());
        s.report(5.0);
        assert_eq!(s.best().unwrap().1, 5.0);
    }

    #[test]
    fn one_dimensional_space() {
        let space = SearchSpace::new(vec![Parameter::interval("x", -50, 50)]);
        let mut s = default_nm(space);
        let mut f = |c: &Configuration| (c.get(0).as_f64() - 17.0).powi(2);
        run_loop(&mut s, &mut f, 200);
        assert!((s.best().unwrap().0.get(0).as_i64() - 17).abs() <= 1);
    }

    #[test]
    fn start_config_near_upper_bound_does_not_degenerate() {
        let space = SearchSpace::new(vec![Parameter::ratio("x", 0, 10)]);
        let start = space
            .configuration(vec![crate::param::Value::Int(10)])
            .unwrap();
        let mut s = NelderMead::from_start(space, &start, NelderMeadOptions::default());
        let mut f = |c: &Configuration| (c.get(0).as_f64() - 2.0).powi(2);
        run_loop(&mut s, &mut f, 150);
        assert!((s.best().unwrap().0.get(0).as_i64() - 2).abs() <= 1);
    }

    #[test]
    fn exploit_state_keeps_proposing_best() {
        let space = SearchSpace::new(vec![Parameter::ratio("x", 0, 4)]);
        let mut s = default_nm(space);
        let mut f = |c: &Configuration| (c.get(0).as_f64() - 2.0).powi(2);
        run_loop(&mut s, &mut f, 300);
        assert!(s.converged(), "tiny space should converge in 300 iters");
        let a = s.propose();
        s.report(f(&a));
        let b = s.propose();
        s.report(f(&b));
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic(expected = "nominal")]
    fn rejects_nominal_spaces() {
        let space = SearchSpace::new(vec![Parameter::nominal(
            "alg",
            vec!["a".into(), "b".into()],
        )]);
        default_nm(space);
    }

    #[test]
    fn ordinal_spaces_are_searchable_by_index() {
        // Ordinal levels expose order; NM treats level indices as distances,
        // which is a pragmatic (documented) extension.
        let space = SearchSpace::new(vec![Parameter::ordinal(
            "size",
            (0..9).map(|i| format!("s{i}")).collect(),
        )]);
        let mut s = default_nm(space);
        let mut f = |c: &Configuration| (c.get(0).as_index() as f64 - 6.0).abs();
        run_loop(&mut s, &mut f, 100);
        assert_eq!(s.best().unwrap().0.get(0).as_index(), 6);
    }
}
