//! Simulated annealing (Section II-A-6): hill climbing with a temperature-
//! controlled chance of accepting a non-improving step, reducing the
//! probability of getting trapped in a local minimum.
//!
//! Like hill climbing it requires a neighborhood and therefore rejects
//! nominal parameters.

use crate::rng::Rng;
use crate::search::{reject_nominal, BestTracker, Searcher};
use crate::space::{Configuration, SearchSpace};

/// Tunables of the annealing schedule.
#[derive(Debug, Clone, Copy)]
pub struct SimulatedAnnealingOptions {
    /// Initial temperature `T_0`; the Metropolis acceptance probability of a
    /// step that is worse by `Δ` is `exp(−Δ / T)`.
    pub initial_temperature: f64,
    /// Geometric cooling factor applied after every accepted or rejected
    /// move (`T ← α·T`).
    pub cooling: f64,
    /// Temperature below which the process is considered frozen.
    pub min_temperature: f64,
}

impl Default for SimulatedAnnealingOptions {
    fn default() -> Self {
        SimulatedAnnealingOptions {
            initial_temperature: 10.0,
            cooling: 0.95,
            min_temperature: 1e-3,
        }
    }
}

#[derive(Debug, Clone)]
enum State {
    EvalStart,
    /// A random neighbor has been proposed and awaits its measurement.
    EvalNeighbor,
    Frozen,
}

/// Metropolis-style simulated annealing over ordered parameter spaces.
#[derive(Debug, Clone)]
pub struct SimulatedAnnealing {
    space: SearchSpace,
    opts: SimulatedAnnealingOptions,
    rng: Rng,
    current: Configuration,
    current_value: f64,
    temperature: f64,
    state: State,
    tracker: BestTracker,
    pending: Option<Configuration>,
}

impl SimulatedAnnealing {
    /// Anneal from the deterministic minimum corner of the space.
    pub fn new(space: SearchSpace, seed: u64, opts: SimulatedAnnealingOptions) -> Self {
        reject_nominal(&space, "simulated annealing");
        assert!(
            opts.initial_temperature > 0.0,
            "temperature must be positive"
        );
        assert!(
            opts.cooling > 0.0 && opts.cooling < 1.0,
            "cooling factor must be in (0, 1)"
        );
        let current = space.min_corner_feasible();
        SimulatedAnnealing {
            space,
            temperature: opts.initial_temperature,
            opts,
            rng: Rng::new(seed),
            current,
            current_value: f64::INFINITY,
            state: State::EvalStart,
            tracker: BestTracker::new(),
            pending: None,
        }
    }

    /// Current temperature of the schedule.
    pub fn temperature(&self) -> f64 {
        self.temperature
    }

    fn random_neighbor(&mut self) -> Option<Configuration> {
        // Feasible moves only: with no feasible neighbor the walk freezes,
        // mirroring the empty-neighborhood case of nominal spaces.
        let ns = self.space.neighbors_feasible(&self.current);
        if ns.is_empty() {
            None
        } else {
            let i = self.rng.pick_index(ns.len());
            Some(ns.into_iter().nth(i).expect("index in range"))
        }
    }
}

impl Searcher for SimulatedAnnealing {
    fn space(&self) -> &SearchSpace {
        &self.space
    }

    fn propose(&mut self) -> Configuration {
        assert!(
            self.pending.is_none(),
            "propose() called twice without report()"
        );
        let c = match self.state {
            State::EvalStart => self.current.clone(),
            State::EvalNeighbor => match self.random_neighbor() {
                Some(n) => n,
                None => {
                    self.state = State::Frozen;
                    self.current.clone()
                }
            },
            State::Frozen => self.current.clone(),
        };
        self.pending = Some(c.clone());
        c
    }

    fn abandon(&mut self) {
        // A fresh neighbor is drawn on the next propose(); nothing to
        // restore beyond the pairing flag.
        self.pending = None;
    }

    fn report(&mut self, value: f64) {
        let c = self.pending.take().expect("report() without propose()");
        self.tracker.observe(&c, value);
        match self.state {
            State::EvalStart => {
                self.current_value = value;
                self.state = State::EvalNeighbor;
            }
            State::EvalNeighbor => {
                let delta = value - self.current_value;
                let accept = delta <= 0.0 || self.rng.next_bool((-delta / self.temperature).exp());
                if accept {
                    self.current = c;
                    self.current_value = value;
                }
                self.temperature *= self.opts.cooling;
                if self.temperature < self.opts.min_temperature {
                    self.state = State::Frozen;
                }
            }
            State::Frozen => {}
        }
    }

    fn best(&self) -> Option<(&Configuration, f64)> {
        self.tracker.best()
    }

    fn converged(&self) -> bool {
        matches!(self.state, State::Frozen)
    }

    fn name(&self) -> &'static str {
        "simulated-annealing"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::param::Parameter;
    use crate::search::run_loop;
    use crate::search::test_util::{bowl, bowl_space, two_wells, two_wells_space};

    #[test]
    fn optimizes_convex_bowl() {
        let mut s = SimulatedAnnealing::new(
            bowl_space(),
            7,
            SimulatedAnnealingOptions {
                initial_temperature: 50.0,
                cooling: 0.99,
                min_temperature: 1e-4,
            },
        );
        let mut f = |c: &Configuration| bowl(c);
        run_loop(&mut s, &mut f, 3000);
        let (_, v) = s.best().unwrap();
        assert!(v <= 3.0, "should approach the optimum 1.0, got {v}");
    }

    #[test]
    fn can_escape_local_minimum() {
        // With a hot enough schedule, annealing escapes the shallow well
        // that traps plain hill climbing — averaged over seeds, the best
        // value reaches the global basin in a solid majority of runs.
        let mut successes = 0;
        for seed in 0..10 {
            let mut s = SimulatedAnnealing::new(
                two_wells_space(),
                seed,
                SimulatedAnnealingOptions {
                    initial_temperature: 20.0,
                    cooling: 0.999,
                    min_temperature: 1e-4,
                },
            );
            let mut f = |c: &Configuration| two_wells(c);
            run_loop(&mut s, &mut f, 4000);
            if s.best().unwrap().1 < 6.0 {
                successes += 1;
            }
        }
        assert!(successes >= 7, "escaped in only {successes}/10 runs");
    }

    #[test]
    fn temperature_cools_monotonically() {
        let mut s = SimulatedAnnealing::new(bowl_space(), 1, SimulatedAnnealingOptions::default());
        let mut f = |c: &Configuration| bowl(c);
        let t0 = s.temperature();
        run_loop(&mut s, &mut f, 50);
        assert!(s.temperature() < t0);
    }

    #[test]
    fn freezes_below_min_temperature() {
        let mut s = SimulatedAnnealing::new(
            bowl_space(),
            1,
            SimulatedAnnealingOptions {
                initial_temperature: 1.0,
                cooling: 0.5,
                min_temperature: 0.1,
            },
        );
        let mut f = |c: &Configuration| bowl(c);
        run_loop(&mut s, &mut f, 50);
        assert!(s.converged());
    }

    #[test]
    #[should_panic(expected = "nominal")]
    fn rejects_nominal_spaces() {
        let space = SearchSpace::new(vec![Parameter::nominal(
            "alg",
            vec!["a".into(), "b".into()],
        )]);
        SimulatedAnnealing::new(space, 0, SimulatedAnnealingOptions::default());
    }

    #[test]
    #[should_panic(expected = "cooling")]
    fn rejects_bad_cooling_factor() {
        SimulatedAnnealing::new(
            bowl_space(),
            0,
            SimulatedAnnealingOptions {
                cooling: 1.5,
                ..Default::default()
            },
        );
    }
}
