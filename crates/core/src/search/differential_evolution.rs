//! Differential evolution (Section II-A-5): maintain a set of agents; update
//! each agent from the *differences* of three randomly selected other
//! agents, accepting the trial vector if it improves.
//!
//! Because the update is literally built on coordinate differences, the
//! method requires interval-scaled parameters and rejects nominal ones
//! (Section II-B: "Differential Evolution operates on the difference of
//! configurations").

use crate::rng::Rng;
use crate::search::{reject_nominal, BestTracker, Searcher};
use crate::space::{Configuration, SearchSpace};

/// DE/rand/1/bin control parameters.
#[derive(Debug, Clone, Copy)]
pub struct DifferentialEvolutionOptions {
    /// Number of agents. Must be at least 4 (an update draws three others).
    pub agents: usize,
    /// Differential weight `F ∈ (0, 2]`.
    pub weight: f64,
    /// Crossover probability `CR ∈ [0, 1]`.
    pub crossover: f64,
}

impl Default for DifferentialEvolutionOptions {
    fn default() -> Self {
        DifferentialEvolutionOptions {
            agents: 12,
            weight: 0.8,
            crossover: 0.9,
        }
    }
}

#[derive(Debug, Clone)]
enum State {
    /// Evaluating the initial agents one by one.
    Init,
    /// Awaiting the measurement of the trial vector for agent `cursor`.
    Trial { trial: Vec<f64> },
}

/// DE/rand/1/bin over continuous coordinates, projected onto the space at
/// evaluation time.
#[derive(Debug, Clone)]
pub struct DifferentialEvolution {
    space: SearchSpace,
    opts: DifferentialEvolutionOptions,
    rng: Rng,
    agents: Vec<Vec<f64>>,
    values: Vec<f64>,
    cursor: usize,
    state: State,
    tracker: BestTracker,
    pending: bool,
}

impl DifferentialEvolution {
    /// Create a searcher over `space`. Panics if the space contains a
    /// nominal parameter or the options are out of range.
    pub fn new(space: SearchSpace, seed: u64, opts: DifferentialEvolutionOptions) -> Self {
        reject_nominal(&space, "differential evolution");
        assert!(opts.agents >= 4, "DE needs at least 4 agents");
        assert!(opts.weight > 0.0 && opts.weight <= 2.0, "F out of range");
        assert!((0.0..=1.0).contains(&opts.crossover), "CR out of range");
        let mut rng = Rng::new(seed);
        let mut agents = vec![space.min_corner_feasible().as_coords()];
        while agents.len() < opts.agents {
            agents.push(space.random_feasible(&mut rng).as_coords());
        }
        DifferentialEvolution {
            space,
            opts,
            rng,
            agents,
            values: Vec::new(),
            cursor: 0,
            state: State::Init,
            tracker: BestTracker::new(),
            pending: false,
        }
    }

    fn make_trial(&mut self) -> Vec<f64> {
        let n = self.space.dims();
        let m = self.agents.len();
        // Three distinct agents, all different from the current one.
        let mut pick = || loop {
            let i = self.rng.pick_index(m);
            if i != self.cursor {
                return i;
            }
        };
        let (a, b, c) = {
            let a = pick();
            let b = loop {
                let x = pick();
                if x != a {
                    break x;
                }
            };
            let c = loop {
                let x = pick();
                if x != a && x != b {
                    break x;
                }
            };
            (a, b, c)
        };
        let forced = if n > 0 { self.rng.pick_index(n) } else { 0 };
        let mut trial = self.agents[self.cursor].clone();
        #[allow(clippy::needless_range_loop)] // four arrays share the index
        for d in 0..n {
            if d == forced || self.rng.next_bool(self.opts.crossover) {
                trial[d] =
                    self.agents[a][d] + self.opts.weight * (self.agents[b][d] - self.agents[c][d]);
            }
        }
        trial
    }
}

impl Searcher for DifferentialEvolution {
    fn space(&self) -> &SearchSpace {
        &self.space
    }

    fn propose(&mut self) -> Configuration {
        assert!(!self.pending, "propose() called twice without report()");
        self.pending = true;
        let coords = match &self.state {
            State::Init => self.agents[self.cursor].clone(),
            State::Trial { trial } => trial.clone(),
        };
        self.space.clamp_feasible(&coords)
    }

    fn abandon(&mut self) {
        // State (including a pending Trial) only advances in report(), so
        // the same agent or trial vector is re-proposed next.
        self.pending = false;
    }

    fn report(&mut self, value: f64) {
        assert!(self.pending, "report() without propose()");
        self.pending = false;
        match std::mem::replace(&mut self.state, State::Init) {
            State::Init => {
                let config = self.space.clamp_feasible(&self.agents[self.cursor]);
                self.tracker.observe(&config, value);
                self.values.push(value);
                self.cursor += 1;
                if self.cursor >= self.agents.len() {
                    self.cursor = 0;
                    let trial = self.make_trial();
                    self.state = State::Trial { trial };
                } else {
                    self.state = State::Init;
                }
            }
            State::Trial { trial } => {
                let config = self.space.clamp_feasible(&trial);
                self.tracker.observe(&config, value);
                if value < self.values[self.cursor] {
                    self.agents[self.cursor] = trial;
                    self.values[self.cursor] = value;
                }
                self.cursor = (self.cursor + 1) % self.agents.len();
                let next = self.make_trial();
                self.state = State::Trial { trial: next };
            }
        }
    }

    fn best(&self) -> Option<(&Configuration, f64)> {
        self.tracker.best()
    }

    fn name(&self) -> &'static str {
        "differential-evolution"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::param::Parameter;
    use crate::search::run_loop;
    use crate::search::test_util::{bowl, bowl_space};

    #[test]
    fn optimizes_convex_bowl() {
        let mut s =
            DifferentialEvolution::new(bowl_space(), 21, DifferentialEvolutionOptions::default());
        let mut f = |c: &Configuration| bowl(c);
        run_loop(&mut s, &mut f, 1000);
        let (_, v) = s.best().unwrap();
        assert!(v <= 2.0, "DE should find the optimum region, got {v}");
    }

    #[test]
    fn optimizes_continuous_rosenbrock_like() {
        let space = SearchSpace::new(vec![
            Parameter::ratio_f64("x", -5.0, 5.0),
            Parameter::ratio_f64("y", -5.0, 5.0),
        ]);
        let mut s = DifferentialEvolution::new(space, 2, DifferentialEvolutionOptions::default());
        let mut f = |c: &Configuration| {
            let x = c.get(0).as_f64();
            let y = c.get(1).as_f64();
            (1.0 - x).powi(2) + 10.0 * (y - x * x).powi(2)
        };
        run_loop(&mut s, &mut f, 3000);
        assert!(s.best().unwrap().1 < 0.05);
    }

    #[test]
    fn agent_values_never_regress() {
        let mut s =
            DifferentialEvolution::new(bowl_space(), 5, DifferentialEvolutionOptions::default());
        let f = |c: &Configuration| bowl(c);
        let mut prev_best = f64::INFINITY;
        for _ in 0..500 {
            let c = s.propose();
            let v = f(&c);
            s.report(v);
            let b = s.best().unwrap().1;
            assert!(b <= prev_best + 1e-12);
            prev_best = b;
        }
    }

    #[test]
    fn proposals_stay_in_space() {
        let space = bowl_space();
        let mut s = DifferentialEvolution::new(space.clone(), 8, Default::default());
        let f = |c: &Configuration| bowl(c);
        for _ in 0..300 {
            let c = s.propose();
            assert!(space.contains(&c));
            let v = f(&c);
            s.report(v);
        }
    }

    #[test]
    #[should_panic(expected = "nominal")]
    fn rejects_nominal_spaces() {
        let space = SearchSpace::new(vec![Parameter::nominal(
            "alg",
            vec!["a".into(), "b".into()],
        )]);
        DifferentialEvolution::new(space, 0, Default::default());
    }

    #[test]
    #[should_panic(expected = "4 agents")]
    fn rejects_too_few_agents() {
        DifferentialEvolution::new(
            bowl_space(),
            0,
            DifferentialEvolutionOptions {
                agents: 3,
                ..Default::default()
            },
        );
    }
}
