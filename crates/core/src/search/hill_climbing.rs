//! Hill climbing (Section II-A-1): evaluate the neighbors of the current
//! candidate and greedily move to the best one; converge when no neighbor
//! improves.
//!
//! Requires a notion of *neighborhood*, i.e. ordered parameters — which is
//! exactly why it cannot manipulate nominal parameters (Section II-B).

use crate::rng::Rng;
use crate::search::{reject_nominal, BestTracker, Searcher};
use crate::space::{Configuration, SearchSpace};

#[derive(Debug, Clone)]
enum State {
    /// Evaluate the starting point.
    EvalStart,
    /// Evaluating the neighborhood of `current`; `queue` holds unvisited
    /// neighbors, `best_neighbor` the best evaluated one so far.
    EvalNeighbors {
        queue: Vec<Configuration>,
        next: usize,
        best_neighbor: Option<(Configuration, f64)>,
    },
    /// No improving neighbor exists: local optimum reached.
    Converged,
}

/// Greedy steepest-ascent (descent, here) hill climbing with optional random
/// restarts disabled — the paper's plain variant.
#[derive(Debug, Clone)]
pub struct HillClimbing {
    space: SearchSpace,
    current: Configuration,
    current_value: f64,
    state: State,
    tracker: BestTracker,
    pending: Option<Configuration>,
    #[allow(dead_code)]
    rng: Rng,
}

impl HillClimbing {
    /// Start climbing from the deterministic minimum corner of the space
    /// (repaired into the feasible region when constraints reject it).
    ///
    /// Panics if the space contains a nominal parameter (no neighborhood).
    pub fn new(space: SearchSpace, seed: u64) -> Self {
        let start = space.min_corner_feasible();
        Self::from_start(space, start, seed)
    }

    /// Start climbing from an explicit configuration.
    pub fn from_start(space: SearchSpace, start: Configuration, seed: u64) -> Self {
        reject_nominal(&space, "hill climbing");
        assert!(space.contains(&start), "start configuration not in space");
        HillClimbing {
            space,
            current: start,
            current_value: f64::INFINITY,
            state: State::EvalStart,
            tracker: BestTracker::new(),
            pending: None,
            rng: Rng::new(seed),
        }
    }

    fn begin_neighborhood(&mut self) {
        // Only feasible neighbors are candidates: an empty feasible
        // neighborhood is a local optimum of the constrained problem.
        let queue = self.space.neighbors_feasible(&self.current);
        if queue.is_empty() {
            self.state = State::Converged;
        } else {
            self.state = State::EvalNeighbors {
                queue,
                next: 0,
                best_neighbor: None,
            };
        }
    }
}

impl Searcher for HillClimbing {
    fn space(&self) -> &SearchSpace {
        &self.space
    }

    fn propose(&mut self) -> Configuration {
        assert!(
            self.pending.is_none(),
            "propose() called twice without report()"
        );
        let c = match &self.state {
            State::EvalStart => self.current.clone(),
            State::EvalNeighbors { queue, next, .. } => queue[*next].clone(),
            State::Converged => self.current.clone(),
        };
        self.pending = Some(c.clone());
        c
    }

    fn abandon(&mut self) {
        // State only advances in report(), so clearing the pending point
        // makes the next propose() re-issue it.
        self.pending = None;
    }

    fn report(&mut self, value: f64) {
        let c = self.pending.take().expect("report() without propose()");
        self.tracker.observe(&c, value);
        match &mut self.state {
            State::EvalStart => {
                self.current_value = value;
                self.begin_neighborhood();
            }
            State::EvalNeighbors {
                queue,
                next,
                best_neighbor,
            } => {
                if best_neighbor.as_ref().is_none_or(|(_, bv)| value < *bv) {
                    *best_neighbor = Some((c, value));
                }
                *next += 1;
                if *next >= queue.len() {
                    // Neighborhood exhausted: move or converge.
                    let (bc, bv) = best_neighbor.take().expect("queue was nonempty");
                    if bv < self.current_value {
                        self.current = bc;
                        self.current_value = bv;
                        self.begin_neighborhood();
                    } else {
                        self.state = State::Converged;
                    }
                }
            }
            State::Converged => {
                // Online exploitation: keep measuring the optimum; nothing to
                // update beyond the tracker.
            }
        }
    }

    fn best(&self) -> Option<(&Configuration, f64)> {
        self.tracker.best()
    }

    fn converged(&self) -> bool {
        matches!(self.state, State::Converged)
    }

    fn name(&self) -> &'static str {
        "hill-climbing"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::param::Parameter;
    use crate::search::run_loop;
    use crate::search::test_util::{bowl, bowl_space, two_wells, two_wells_space};

    #[test]
    fn climbs_to_global_optimum_on_convex_bowl() {
        let mut s = HillClimbing::new(bowl_space(), 0);
        let mut f = |c: &Configuration| bowl(c);
        run_loop(&mut s, &mut f, 500);
        assert!(s.converged());
        let (c, v) = s.best().unwrap();
        assert_eq!(v, 1.0, "bowl optimum is 1.0");
        assert_eq!((c.get(0).as_i64(), c.get(1).as_i64()), (7, -3));
    }

    #[test]
    fn gets_stuck_in_local_minimum() {
        // Starting at the far left (-30), the climber walks into the local
        // well at x = -11 and stops: the textbook failure mode.
        let mut s = HillClimbing::new(two_wells_space(), 0);
        let mut f = |c: &Configuration| two_wells(c);
        run_loop(&mut s, &mut f, 500);
        assert!(s.converged());
        assert_eq!(s.best().unwrap().0.get(0).as_i64(), -11);
    }

    #[test]
    fn converged_keeps_proposing_current() {
        let mut s = HillClimbing::new(bowl_space(), 0);
        let mut f = |c: &Configuration| bowl(c);
        run_loop(&mut s, &mut f, 500);
        assert!(s.converged());
        let a = s.propose();
        s.report(bowl(&a));
        let b = s.propose();
        s.report(bowl(&b));
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic(expected = "nominal")]
    fn rejects_nominal_spaces() {
        let space = SearchSpace::new(vec![Parameter::nominal(
            "alg",
            vec!["a".into(), "b".into()],
        )]);
        HillClimbing::new(space, 0);
    }

    #[test]
    fn from_custom_start() {
        let space = bowl_space();
        let start = space
            .configuration(vec![
                crate::param::Value::Int(7),
                crate::param::Value::Int(-3),
            ])
            .unwrap();
        let mut s = HillClimbing::from_start(space, start, 0);
        let mut f = |c: &Configuration| bowl(c);
        run_loop(&mut s, &mut f, 10);
        // Starting at the optimum: evaluate it and its 4 neighbors, converge.
        assert!(s.converged());
        assert_eq!(s.best().unwrap().1, 1.0);
    }

    #[test]
    fn single_point_space_converges_immediately() {
        let space = SearchSpace::new(vec![Parameter::ratio("x", 3, 3)]);
        let mut s = HillClimbing::new(space, 0);
        let c = s.propose();
        assert_eq!(c.get(0).as_i64(), 3);
        s.report(9.0);
        assert!(s.converged());
    }
}
