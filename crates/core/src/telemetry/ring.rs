//! Fixed-capacity, allocation-free event storage.
//!
//! [`EventRing`] allocates its entire buffer up front and never grows:
//! pushing into a full ring overwrites the oldest event. This keeps the
//! recording hot path free of allocator traffic, which the
//! `telemetry_overhead` bench verifies with a counting allocator.

use super::Event;

/// Fixed-capacity ring buffer of [`Event`]s.
///
/// All storage is reserved in [`EventRing::with_capacity`]; [`push`]
/// never allocates. Once the ring is full the oldest event is
/// overwritten, so the ring always holds the most recent
/// `capacity()` events.
///
/// [`push`]: EventRing::push
#[derive(Debug)]
pub struct EventRing {
    /// Backing storage; grows (within pre-reserved capacity) until full,
    /// then stays at `cap` elements forever.
    buf: Vec<Event>,
    /// Index of the oldest event once the ring has wrapped (always 0
    /// before the first wrap).
    head: usize,
    /// Fixed capacity; `buf.len() <= cap` at all times.
    cap: usize,
    /// Total number of events ever pushed, including overwritten ones.
    total: u64,
}

impl EventRing {
    /// Create a ring holding at most `cap` events (minimum 1). The full
    /// backing buffer is allocated here, up front.
    pub fn with_capacity(cap: usize) -> Self {
        let cap = cap.max(1);
        Self {
            buf: Vec::with_capacity(cap),
            head: 0,
            cap,
            total: 0,
        }
    }

    /// Append an event, overwriting the oldest one if the ring is full.
    /// Never allocates.
    pub fn push(&mut self, event: Event) {
        if self.buf.len() < self.cap {
            self.buf.push(event);
        } else {
            self.buf[self.head] = event;
            self.head = (self.head + 1) % self.cap;
        }
        self.total += 1;
    }

    /// Number of events currently stored.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// True if no events are stored.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Maximum number of events the ring can hold.
    pub fn capacity(&self) -> usize {
        self.cap
    }

    /// Total number of events ever pushed, including those since
    /// overwritten.
    pub fn total_pushed(&self) -> u64 {
        self.total
    }

    /// Number of events lost to overwriting (`total_pushed - len`).
    pub fn overwritten(&self) -> u64 {
        self.total - self.buf.len() as u64
    }

    /// Raw pointer to the backing buffer. Only useful to assert, in
    /// tests, that pushing past capacity does not reallocate.
    pub fn as_ptr(&self) -> *const Event {
        self.buf.as_ptr()
    }

    /// Iterate events oldest-first.
    pub fn iter(&self) -> impl Iterator<Item = &Event> {
        let (before, from_head) = self.buf.split_at(self.head);
        from_head.iter().chain(before.iter())
    }

    /// Copy the stored events out, oldest-first.
    pub fn to_vec(&self) -> Vec<Event> {
        self.iter().copied().collect()
    }

    /// Drop all stored events (the allocation is retained).
    pub fn clear(&mut self) {
        self.buf.clear();
        self.head = 0;
        self.total = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::super::{EventKind, NO_CONTEXT, NO_SITE};
    use super::*;

    fn ev(i: u64) -> Event {
        Event {
            t_us: i,
            site: NO_SITE,
            context: NO_CONTEXT,
            kind: EventKind::IterationStart { iteration: i },
        }
    }

    #[test]
    fn fills_then_wraps_oldest_first() {
        let mut r = EventRing::with_capacity(4);
        for i in 0..6 {
            r.push(ev(i));
        }
        assert_eq!(r.len(), 4);
        assert_eq!(r.total_pushed(), 6);
        assert_eq!(r.overwritten(), 2);
        let got: Vec<u64> = r.iter().map(|e| e.t_us).collect();
        assert_eq!(got, vec![2, 3, 4, 5]);
    }

    #[test]
    fn never_reallocates_past_capacity() {
        let mut r = EventRing::with_capacity(8);
        let p0 = r.as_ptr();
        for i in 0..100 {
            r.push(ev(i));
        }
        assert_eq!(r.as_ptr(), p0, "ring must not reallocate");
        assert_eq!(r.len(), 8);
    }

    #[test]
    fn clear_retains_allocation() {
        let mut r = EventRing::with_capacity(4);
        for i in 0..10 {
            r.push(ev(i));
        }
        let p0 = r.as_ptr();
        r.clear();
        assert!(r.is_empty());
        assert_eq!(r.total_pushed(), 0);
        for i in 0..4 {
            r.push(ev(i));
        }
        assert_eq!(r.as_ptr(), p0);
    }
}
