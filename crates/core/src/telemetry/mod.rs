//! Zero-cost-when-disabled tracing and metrics for the two-phase tuner.
//!
//! The paper's whole evaluation is built from per-iteration traces —
//! which algorithm phase 2 selected, what weight each strategy assigned,
//! how runtime converged. This module records exactly those traces from a
//! live tuner without slowing the hot path it is tuning:
//!
//! * **Typed events** ([`Event`] / [`EventKind`]) — iteration starts,
//!   algorithm selections with the full phase-2 weight vector, simplex
//!   operations, measurement outcomes, failure penalties, sliding-window
//!   evictions, workload spans and pool queue depths.
//! * **A fixed-capacity ring buffer** ([`ring::EventRing`]) — allocated
//!   once at [`enable`] time; recording an event never allocates and the
//!   oldest events are overwritten at capacity.
//! * **Per-algorithm metric registers** ([`metrics::Metrics`]) — lock-free
//!   atomic selection / failure counters, last-weight gauges and
//!   log-spaced runtime histograms, updated on every recorded event.
//! * **Exporters** ([`export`]) — JSONL (one event per line, round-trips
//!   through [`crate::json`]) and Chrome `trace_event` JSON that loads
//!   directly in Perfetto / `chrome://tracing`.
//!
//! # Cost model
//!
//! Instrumentation sites call [`emit`] with a *closure* that builds the
//! event, so when telemetry is off the event is never constructed:
//!
//! ```
//! use autotune::telemetry::{self, EventKind};
//! telemetry::emit(|| EventKind::IterationStart { iteration: 7 });
//! ```
//!
//! Two switches stack:
//!
//! * **Compile time** — the `telemetry` cargo feature (on by default).
//!   Without it, [`emit`] is an empty inline function and the whole call
//!   disappears; the data structures in this module still compile so
//!   exporters and tests keep working.
//! * **Run time** — [`enable`] / [`disable`] flip a relaxed [`AtomicBool`].
//!   The disabled path is a single predictable branch (< 2 ns/event,
//!   enforced by the `telemetry_overhead` bench).
//!
//! Recording is process-global: the tuner, pool and workloads all write to
//! one [`Recorder`] so a trace interleaves phase-2 decisions with the
//! measurements they caused. Use [`drain`] between runs to split a
//! recording into per-run logs.

pub mod export;
pub mod metrics;
pub mod ring;

pub use metrics::{AlgoMetrics, MetricsReport};

use crate::robust::MeasureOutcome;
use metrics::Metrics;
use ring::EventRing;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Mutex, MutexGuard, OnceLock};
use std::time::Instant;

/// Maximum number of algorithms tracked per event/metric register.
///
/// Phase-2 weight vectors are recorded inline (no allocation) in a
/// [`WeightSet`], which caps how many algorithms a single tuner can have
/// *traced*. Tuners with more algorithms still work — excess weights are
/// simply not recorded.
pub const MAX_TRACKED_ALGORITHMS: usize = 16;

/// Default event capacity used by [`enable`] (65 536 events ≈ 3 MiB).
pub const DEFAULT_RING_CAPACITY: usize = 1 << 16;

/// Number of independent ring shards the *global* recorder uses.
///
/// Under the multi-site runtime many request threads record concurrently;
/// a single `Mutex<EventRing>` would serialize them all. The global
/// recorder therefore stripes events across [`RING_SHARDS`] cache-line-
/// aligned rings — keyed by the emitting site (so one site's events stay
/// in recorded order within a shard) or, for untagged events, by a
/// per-thread hint — and merges them by timestamp at export time.
/// Standalone [`Recorder::new`] recorders stay single-shard so unit tests
/// observe exact FIFO eviction semantics.
pub const RING_SHARDS: usize = 8;

/// The `site` value carried by events not attributed to any tuning site.
pub const NO_SITE: u16 = u16::MAX;

/// The `context` value carried by events not attributed to any context
/// key ([`crate::context::ContextSites`] assigns real ids).
pub const NO_CONTEXT: u32 = u32::MAX;

#[cfg(feature = "telemetry")]
thread_local! {
    /// The site the current thread is presently working for (see
    /// [`with_site`]). Read on every recorded event to stamp
    /// [`Event::site`].
    static CURRENT_SITE: std::cell::Cell<u16> = const { std::cell::Cell::new(NO_SITE) };
    /// The context key id the current thread is presently working for
    /// (see [`with_context`]). Read on every recorded event to stamp
    /// [`Event::context`].
    static CURRENT_CONTEXT: std::cell::Cell<u32> = const { std::cell::Cell::new(NO_CONTEXT) };
    /// Lazily assigned ring-shard hint for events with no site tag.
    static SHARD_HINT: std::cell::Cell<usize> = const { std::cell::Cell::new(usize::MAX) };
}

/// Round-robin source for [`SHARD_HINT`] assignment.
#[cfg(feature = "telemetry")]
static NEXT_SHARD_HINT: AtomicUsize = AtomicUsize::new(0);

/// Run `f` with every event recorded by this thread tagged as belonging
/// to tuning site `site` (see [`Event::site`]). Scopes nest; the previous
/// tag is restored on exit, including on panic. Without the `telemetry`
/// feature this is a plain call to `f`.
pub fn with_site<R, F: FnOnce() -> R>(site: u16, f: F) -> R {
    #[cfg(feature = "telemetry")]
    {
        struct Restore(u16);
        impl Drop for Restore {
            fn drop(&mut self) {
                CURRENT_SITE.with(|c| c.set(self.0));
            }
        }
        let _restore = Restore(CURRENT_SITE.with(|c| c.replace(site)));
        f()
    }
    #[cfg(not(feature = "telemetry"))]
    f()
}

/// The site tag the current thread's events are stamped with ([`NO_SITE`]
/// outside any [`with_site`] scope or without the `telemetry` feature).
pub fn current_site() -> u16 {
    #[cfg(feature = "telemetry")]
    {
        CURRENT_SITE.with(|c| c.get())
    }
    #[cfg(not(feature = "telemetry"))]
    NO_SITE
}

/// Run `f` with every event recorded by this thread tagged as belonging
/// to context key `context` (see [`Event::context`] and
/// [`crate::context::ContextSites`], which assigns the ids). Scopes
/// nest; the previous tag is restored on exit, including on panic.
/// Orthogonal to [`with_site`]: the site tag names the registry slot
/// (recycled across bindings), the context tag names the logical key —
/// splitting a trace by `(site, context)` separates the bindings that
/// shared a slot. Without the `telemetry` feature this is a plain call
/// to `f`.
pub fn with_context<R, F: FnOnce() -> R>(context: u32, f: F) -> R {
    #[cfg(feature = "telemetry")]
    {
        struct Restore(u32);
        impl Drop for Restore {
            fn drop(&mut self) {
                CURRENT_CONTEXT.with(|c| c.set(self.0));
            }
        }
        let _restore = Restore(CURRENT_CONTEXT.with(|c| c.replace(context)));
        f()
    }
    #[cfg(not(feature = "telemetry"))]
    f()
}

/// The context tag the current thread's events are stamped with
/// ([`NO_CONTEXT`] outside any [`with_context`] scope or without the
/// `telemetry` feature).
pub fn current_context() -> u32 {
    #[cfg(feature = "telemetry")]
    {
        CURRENT_CONTEXT.with(|c| c.get())
    }
    #[cfg(not(feature = "telemetry"))]
    NO_CONTEXT
}

/// The ring-shard index for an event tagged `site`, recorded from the
/// current thread: site-keyed when tagged (one site's events stay ordered
/// within their shard), thread-keyed otherwise.
fn shard_index(site: u16, num_shards: usize) -> usize {
    if num_shards == 1 {
        return 0;
    }
    if site != NO_SITE {
        return site as usize % num_shards;
    }
    #[cfg(feature = "telemetry")]
    {
        SHARD_HINT.with(|h| {
            let mut hint = h.get();
            if hint == usize::MAX {
                hint = NEXT_SHARD_HINT.fetch_add(1, Ordering::Relaxed);
                h.set(hint);
            }
            hint % num_shards
        })
    }
    #[cfg(not(feature = "telemetry"))]
    0
}

/// A fixed-size, heap-free snapshot of a phase-2 weight vector.
///
/// Weights are stored as `f32` (exactly round-trippable through JSON via
/// `f64`) and truncated to [`MAX_TRACKED_ALGORITHMS`] entries.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct WeightSet {
    len: u8,
    values: [f32; MAX_TRACKED_ALGORITHMS],
}

impl WeightSet {
    /// An empty weight set.
    pub const fn empty() -> Self {
        Self {
            len: 0,
            values: [0.0; MAX_TRACKED_ALGORITHMS],
        }
    }

    /// Capture the first [`MAX_TRACKED_ALGORITHMS`] weights from a slice.
    pub fn from_slice(weights: &[f64]) -> Self {
        let mut set = Self::empty();
        for (i, w) in weights.iter().take(MAX_TRACKED_ALGORITHMS).enumerate() {
            set.values[i] = *w as f32;
        }
        set.len = weights.len().min(MAX_TRACKED_ALGORITHMS) as u8;
        set
    }

    /// Number of recorded weights.
    pub fn len(&self) -> usize {
        self.len as usize
    }

    /// True if no weights were recorded.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The weight at algorithm index `i`, if recorded.
    pub fn get(&self, i: usize) -> Option<f32> {
        self.as_slice().get(i).copied()
    }

    /// The recorded weights as a slice.
    pub fn as_slice(&self) -> &[f32] {
        &self.values[..self.len as usize]
    }
}

/// The Nelder-Mead simplex operation behind a [`EventKind::Phase1Step`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SimplexOp {
    /// Evaluating an initial simplex vertex.
    Init,
    /// Proposing the reflection point.
    Reflect,
    /// Proposing the expansion point.
    Expand,
    /// Proposing the outside-contraction point.
    ContractOutside,
    /// Proposing the inside-contraction point.
    ContractInside,
    /// Re-evaluating vertices after a simplex shrink.
    Shrink,
    /// Simplex has converged; re-proposing the best known vertex.
    Exploit,
}

impl SimplexOp {
    /// Stable kebab-case name used by the JSONL exporter.
    pub fn label(self) -> &'static str {
        match self {
            SimplexOp::Init => "init",
            SimplexOp::Reflect => "reflect",
            SimplexOp::Expand => "expand",
            SimplexOp::ContractOutside => "contract-outside",
            SimplexOp::ContractInside => "contract-inside",
            SimplexOp::Shrink => "shrink",
            SimplexOp::Exploit => "exploit",
        }
    }

    /// Inverse of [`label`](Self::label).
    pub fn from_label(s: &str) -> Option<Self> {
        Some(match s {
            "init" => SimplexOp::Init,
            "reflect" => SimplexOp::Reflect,
            "expand" => SimplexOp::Expand,
            "contract-outside" => SimplexOp::ContractOutside,
            "contract-inside" => SimplexOp::ContractInside,
            "shrink" => SimplexOp::Shrink,
            "exploit" => SimplexOp::Exploit,
            _ => return None,
        })
    }
}

/// Outcome class of a measurement, as recorded in telemetry.
///
/// This is the telemetry-side mirror of [`crate::robust::MeasureOutcome`],
/// flattened to a `Copy` tag (the failure message is not recorded).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum MeasureStatus {
    /// The measurement produced a usable runtime.
    Ok,
    /// The measurement failed (panic, degenerate value, workload error).
    Failed,
    /// The measurement exceeded its deadline.
    TimedOut,
}

impl MeasureStatus {
    /// Stable kebab-case name used by the JSONL exporter.
    pub fn label(self) -> &'static str {
        match self {
            MeasureStatus::Ok => "ok",
            MeasureStatus::Failed => "failed",
            MeasureStatus::TimedOut => "timed-out",
        }
    }

    /// Inverse of [`label`](Self::label).
    pub fn from_label(s: &str) -> Option<Self> {
        Some(match s {
            "ok" => MeasureStatus::Ok,
            "failed" => MeasureStatus::Failed,
            "timed-out" => MeasureStatus::TimedOut,
            _ => return None,
        })
    }

    /// Classify a [`MeasureOutcome`].
    pub fn of(outcome: &MeasureOutcome) -> Self {
        match outcome {
            MeasureOutcome::Ok(_) => MeasureStatus::Ok,
            MeasureOutcome::Failed(_) => MeasureStatus::Failed,
            MeasureOutcome::TimedOut => MeasureStatus::TimedOut,
        }
    }
}

/// What a [`EventKind::SpanBegin`] / [`EventKind::SpanEnd`] pair brackets.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SpanKind {
    /// One `measure_search` call in the string-matching workload.
    Search,
    /// One `measure_frame` call in the raytracing workload.
    Frame,
}

impl SpanKind {
    /// Stable kebab-case name used by the JSONL exporter.
    pub fn label(self) -> &'static str {
        match self {
            SpanKind::Search => "search",
            SpanKind::Frame => "frame",
        }
    }

    /// Inverse of [`label`](Self::label).
    pub fn from_label(s: &str) -> Option<Self> {
        Some(match s {
            "search" => SpanKind::Search,
            "frame" => SpanKind::Frame,
            _ => return None,
        })
    }
}

/// The payload of a recorded [`Event`]. All variants are `Copy` and
/// heap-free so recording never allocates.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum EventKind {
    /// A tuning iteration began (emitted by `TwoPhaseTuner::next` and
    /// `OnlineTuner` step drivers).
    IterationStart {
        /// Zero-based iteration counter of the emitting tuner.
        iteration: u64,
    },
    /// Phase 2 selected an algorithm, with the strategy's current weight
    /// vector at selection time.
    AlgorithmSelected {
        /// Index of the chosen algorithm.
        algorithm: u16,
        /// Phase-2 weights over all algorithms at selection time.
        weights: WeightSet,
    },
    /// Phase 1 (Nelder-Mead) proposed a configuration.
    Phase1Step {
        /// The simplex operation that produced the proposal.
        op: SimplexOp,
    },
    /// A measurement finished and was reported to the tuner.
    MeasureOutcome {
        /// Index of the algorithm that was measured.
        algorithm: u16,
        /// Whether the measurement succeeded, failed or timed out.
        status: MeasureStatus,
        /// The reported runtime (for failures: the penalty charged).
        runtime_ms: f64,
    },
    /// A failed measurement was converted into a penalty runtime.
    PenaltyApplied {
        /// Index of the penalized algorithm.
        algorithm: u16,
        /// The penalty charged, in milliseconds.
        penalty_ms: f64,
    },
    /// A sample aged out of a sliding-window strategy's logical window.
    WindowEvicted {
        /// Index of the algorithm whose window advanced.
        algorithm: u16,
        /// Per-algorithm index of the sample that left the window.
        evicted_sample: u64,
    },
    /// A workload measurement span opened.
    SpanBegin {
        /// What the span brackets.
        span: SpanKind,
    },
    /// A workload measurement span closed.
    SpanEnd {
        /// What the span brackets.
        span: SpanKind,
    },
    /// Work-stealing pool queue depth observed at region dispatch.
    QueueDepth {
        /// Number of parallel regions queued (including the new one).
        depth: u32,
        /// Number of live worker threads in the pool.
        workers: u32,
    },
    /// A drift monitor ([`crate::drift`]) detected sustained regression
    /// against the converged baseline and triggered a tuner restart. The
    /// event's `site` tag names the restarted site.
    DriftDetected {
        /// The frozen baseline runtime (window median at convergence).
        baseline_ms: f64,
        /// The recent window median that breached the drift threshold.
        observed_ms: f64,
    },
}

/// One recorded telemetry event: a timestamp, the tuning site it belongs
/// to, and a typed payload.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Event {
    /// Microseconds since the recorder's epoch ([`enable`] time).
    pub t_us: u64,
    /// The tuning site this event was recorded for ([`NO_SITE`] when the
    /// emitting code was not running inside a [`with_site`] scope — e.g.
    /// a directly driven single tuner).
    pub site: u16,
    /// The context key this event was recorded for ([`NO_CONTEXT`] when
    /// the emitting code was not running inside a [`with_context`] scope
    /// — i.e. outside any [`crate::context::ContextSites`] dispatch).
    /// Together with [`Event::site`] this splits a trace per *binding*:
    /// the site names the recycled registry slot, the context names the
    /// logical key bound to it at the time.
    pub context: u32,
    /// The event payload.
    pub kind: EventKind,
}

impl Event {
    /// An event not attributed to any tuning site or context key.
    pub fn untagged(t_us: u64, kind: EventKind) -> Self {
        Event {
            t_us,
            site: NO_SITE,
            context: NO_CONTEXT,
            kind,
        }
    }
}

/// One ring shard, padded to its own cache line so request threads
/// recording into different shards never contend on the same line.
#[derive(Debug)]
#[repr(align(64))]
struct RingShard {
    ring: Mutex<EventRing>,
}

/// An event sink: sharded ring buffers of typed events plus always-on
/// metric registers, sharing one clock.
///
/// Most code uses the process-global recorder through [`enable`] /
/// [`emit`] / [`drain`]; standalone recorders exist for tests.
#[derive(Debug)]
pub struct Recorder {
    epoch: Instant,
    shards: Box<[RingShard]>,
    metrics: Metrics,
}

impl Recorder {
    /// Create a single-shard recorder whose ring holds `capacity` events.
    /// All event storage is allocated here. Single-shard recorders keep
    /// exact FIFO eviction order; the global recorder uses
    /// [`Recorder::sharded`] instead.
    pub fn new(capacity: usize) -> Self {
        Self::sharded(1, capacity)
    }

    /// Create a recorder with `shards` independent cache-line-aligned
    /// rings of `per_shard_capacity` events each. Events recorded for the
    /// same site always land in the same shard (stays ordered); events
    /// from different sites or threads spread out and do not contend.
    pub fn sharded(shards: usize, per_shard_capacity: usize) -> Self {
        let shards = shards.max(1);
        Self {
            epoch: Instant::now(),
            shards: (0..shards)
                .map(|_| RingShard {
                    ring: Mutex::new(EventRing::with_capacity(per_shard_capacity)),
                })
                .collect(),
            metrics: Metrics::new(),
        }
    }

    /// Number of ring shards.
    pub fn num_shards(&self) -> usize {
        self.shards.len()
    }

    fn ring(&self, shard: usize) -> MutexGuard<'_, EventRing> {
        // A panic while holding the lock cannot leave the ring in a
        // broken state (push/clear are trivially atomic), so poisoning
        // is safe to ignore.
        self.shards[shard]
            .ring
            .lock()
            .unwrap_or_else(|e| e.into_inner())
    }

    /// Record one event: stamp it with the recorder clock and the current
    /// thread's site tag, update the metric registers and append it to
    /// the site's (or thread's) ring shard. Never allocates.
    pub fn record(&self, kind: EventKind) {
        let t_us = self.epoch.elapsed().as_micros() as u64;
        let site = current_site();
        let context = current_context();
        self.metrics.observe(&kind);
        self.ring(shard_index(site, self.shards.len())).push(Event {
            t_us,
            site,
            context,
            kind,
        });
    }

    /// Copy out the currently stored events across all shards, merged
    /// oldest-first by timestamp (a stable sort: events within one shard
    /// keep their recorded order).
    pub fn snapshot(&self) -> Vec<Event> {
        let mut events = Vec::new();
        for i in 0..self.shards.len() {
            events.extend_from_slice(&self.ring(i).to_vec());
        }
        events.sort_by_key(|e| e.t_us);
        events
    }

    /// Drain every ring into `events` (cleared and reused as the merge
    /// scratch) and append the JSONL rendering of the drained events to
    /// `out`. Returns the number of events drained.
    ///
    /// This is the incremental flavor of [`Recorder::drain`] +
    /// [`export::to_jsonl`]: both buffers are caller-owned, so a streaming
    /// consumer (the [`crate::serve`] telemetry subscription path) drains
    /// the ring repeatedly with zero per-drain allocations once its
    /// buffers have warmed up.
    pub fn drain_jsonl_into(&self, events: &mut Vec<Event>, out: &mut String) -> usize {
        events.clear();
        for i in 0..self.shards.len() {
            let mut ring = self.ring(i);
            events.extend(ring.iter().copied());
            ring.clear();
        }
        events.sort_by_key(|e| e.t_us);
        for e in events.iter() {
            export::append_event_jsonl(e, out);
        }
        events.len()
    }

    /// Copy out the stored events (merged by timestamp) and clear every
    /// ring (metrics are kept).
    pub fn drain(&self) -> Vec<Event> {
        let mut events = Vec::new();
        for i in 0..self.shards.len() {
            let mut ring = self.ring(i);
            events.extend_from_slice(&ring.to_vec());
            ring.clear();
        }
        events.sort_by_key(|e| e.t_us);
        events
    }

    /// Clear every ring and zero all metric registers.
    pub fn reset(&self) {
        for i in 0..self.shards.len() {
            self.ring(i).clear();
        }
        self.metrics.reset();
    }

    /// Total number of events ever recorded, including overwritten ones.
    pub fn total_recorded(&self) -> u64 {
        (0..self.shards.len())
            .map(|i| self.ring(i).total_pushed())
            .sum()
    }

    /// Number of events lost to ring overwriting.
    pub fn overwritten(&self) -> u64 {
        (0..self.shards.len())
            .map(|i| self.ring(i).overwritten())
            .sum()
    }

    /// Snapshot the metric registers.
    pub fn metrics(&self) -> MetricsReport {
        self.metrics.report()
    }
}

/// Runtime switch. Checked with a relaxed load on every [`emit`]; this is
/// the entire cost of an instrumentation site while disabled.
static ENABLED: AtomicBool = AtomicBool::new(false);

/// The process-global recorder, allocated on first [`enable`].
static GLOBAL: OnceLock<Recorder> = OnceLock::new();

/// True if the crate was built with the `telemetry` feature.
pub const fn compiled() -> bool {
    cfg!(feature = "telemetry")
}

/// Turn on global recording with [`DEFAULT_RING_CAPACITY`].
///
/// The first call allocates the ring; later calls just flip the runtime
/// switch (the capacity argument of the *first* enabling call wins).
/// No-op without the `telemetry` feature.
pub fn enable() {
    enable_with_capacity(DEFAULT_RING_CAPACITY);
}

/// Turn on global recording with an explicit ring capacity. See
/// [`enable`].
pub fn enable_with_capacity(capacity: usize) {
    if !compiled() {
        return;
    }
    // The global recorder is sharded so concurrent tuning sites never
    // serialize on one ring lock; `capacity` stays the *total* event
    // budget, split evenly across the shards.
    GLOBAL.get_or_init(|| Recorder::sharded(RING_SHARDS, capacity.div_ceil(RING_SHARDS)));
    ENABLED.store(true, Ordering::SeqCst);
}

/// Turn off global recording. Already-recorded events and metrics stay
/// available to [`snapshot`] / [`drain`] / [`metrics()`].
pub fn disable() {
    ENABLED.store(false, Ordering::SeqCst);
}

/// True if telemetry is compiled in *and* currently enabled.
pub fn is_enabled() -> bool {
    compiled() && ENABLED.load(Ordering::Relaxed)
}

/// Record an event into the global recorder, if enabled.
///
/// The closure runs only when recording is on, so instrumentation sites
/// pay nothing to build the event while telemetry is off. With the
/// `telemetry` feature disabled this function is empty and calls to it
/// compile away entirely.
#[inline(always)]
pub fn emit<F: FnOnce() -> EventKind>(f: F) {
    #[cfg(feature = "telemetry")]
    if ENABLED.load(Ordering::Relaxed) {
        if let Some(recorder) = GLOBAL.get() {
            recorder.record(f());
        }
    }
    #[cfg(not(feature = "telemetry"))]
    let _ = f;
}

/// Copy out the global recorder's stored events, oldest-first. Empty if
/// recording was never enabled.
pub fn snapshot() -> Vec<Event> {
    GLOBAL.get().map(Recorder::snapshot).unwrap_or_default()
}

/// Copy out and clear the global recorder's events (metrics are kept).
/// Use between runs to split a recording into per-run logs.
pub fn drain() -> Vec<Event> {
    GLOBAL.get().map(Recorder::drain).unwrap_or_default()
}

/// Incrementally drain the global recorder as JSONL into caller-owned,
/// reused buffers; see [`Recorder::drain_jsonl_into`]. Returns 0 if
/// recording was never enabled.
pub fn drain_jsonl_into(events: &mut Vec<Event>, out: &mut String) -> usize {
    GLOBAL
        .get()
        .map(|r| r.drain_jsonl_into(events, out))
        .unwrap_or(0)
}

/// Clear the global ring and zero all global metric registers.
pub fn reset() {
    if let Some(r) = GLOBAL.get() {
        r.reset();
    }
}

/// Snapshot the global metric registers. Empty report if recording was
/// never enabled.
pub fn metrics() -> MetricsReport {
    GLOBAL.get().map(Recorder::metrics).unwrap_or_default()
}

/// Total events ever recorded globally, including overwritten ones.
pub fn total_recorded() -> u64 {
    GLOBAL.get().map(Recorder::total_recorded).unwrap_or(0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn weight_set_truncates_and_round_trips() {
        let w: Vec<f64> = (0..20).map(|i| i as f64 * 0.25).collect();
        let set = WeightSet::from_slice(&w);
        assert_eq!(set.len(), MAX_TRACKED_ALGORITHMS);
        assert_eq!(set.get(3), Some(0.75));
        assert_eq!(set.get(MAX_TRACKED_ALGORITHMS), None);
        let small = WeightSet::from_slice(&[0.5, 0.25]);
        assert_eq!(small.as_slice(), &[0.5, 0.25]);
    }

    #[test]
    fn labels_round_trip() {
        for op in [
            SimplexOp::Init,
            SimplexOp::Reflect,
            SimplexOp::Expand,
            SimplexOp::ContractOutside,
            SimplexOp::ContractInside,
            SimplexOp::Shrink,
            SimplexOp::Exploit,
        ] {
            assert_eq!(SimplexOp::from_label(op.label()), Some(op));
        }
        for st in [
            MeasureStatus::Ok,
            MeasureStatus::Failed,
            MeasureStatus::TimedOut,
        ] {
            assert_eq!(MeasureStatus::from_label(st.label()), Some(st));
        }
        for sp in [SpanKind::Search, SpanKind::Frame] {
            assert_eq!(SpanKind::from_label(sp.label()), Some(sp));
        }
    }

    #[test]
    fn recorder_records_and_drains() {
        let r = Recorder::new(8);
        r.record(EventKind::IterationStart { iteration: 0 });
        r.record(EventKind::QueueDepth {
            depth: 2,
            workers: 4,
        });
        let events = r.drain();
        assert_eq!(events.len(), 2);
        assert!(r.snapshot().is_empty());
        assert_eq!(r.total_recorded(), 0);
        let m = r.metrics();
        assert_eq!(m.iterations, 1);
        assert_eq!(m.max_queue_depth, 2);
    }
}
