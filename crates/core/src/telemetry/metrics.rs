//! Lock-free per-algorithm metric registers.
//!
//! Every event recorded through [`super::Recorder::record`] also updates
//! these registers, so aggregate statistics (selection counts, failure
//! counts, weight gauges, runtime histograms) survive ring-buffer
//! overwriting: the ring keeps the most recent events, the registers keep
//! totals for the whole run.
//!
//! All counters are [`AtomicU64`]s updated with relaxed ordering — the
//! registers are statistically consistent, not transactionally so, which
//! is all an observability surface needs.

use super::{EventKind, MeasureStatus, MAX_TRACKED_ALGORITHMS};
use crate::json::Json;
use crate::robust::RESOLUTION_FLOOR_MS;
use std::sync::atomic::{AtomicU64, Ordering};

/// Number of runtime-histogram buckets: one underflow bucket, then
/// [`BUCKETS_PER_DECADE`] log-spaced buckets per decade from
/// [`RESOLUTION_FLOOR_MS`] upward, with the last bucket catching
/// everything larger.
pub const HIST_BUCKETS: usize = 50;

/// Log-spaced histogram resolution: buckets per decade of runtime.
pub const BUCKETS_PER_DECADE: usize = 4;

/// Map a runtime in milliseconds to its histogram bucket index.
///
/// Bucket 0 holds runtimes at or below [`RESOLUTION_FLOOR_MS`] (and any
/// non-finite values); the last bucket holds everything beyond the
/// covered range (~12 decades).
pub fn bucket_index(runtime_ms: f64) -> usize {
    if !runtime_ms.is_finite() || runtime_ms <= RESOLUTION_FLOOR_MS {
        return 0;
    }
    let decades = (runtime_ms / RESOLUTION_FLOOR_MS).log10();
    let idx = (decades * BUCKETS_PER_DECADE as f64).floor();
    if !idx.is_finite() || idx >= (HIST_BUCKETS - 2) as f64 {
        return HIST_BUCKETS - 1;
    }
    1 + idx as usize
}

/// Lower bound (inclusive), in milliseconds, of histogram bucket `i`.
pub fn bucket_lower_bound(i: usize) -> f64 {
    if i == 0 {
        0.0
    } else {
        RESOLUTION_FLOOR_MS * 10f64.powf((i - 1) as f64 / BUCKETS_PER_DECADE as f64)
    }
}

/// Atomic registers for one algorithm.
#[derive(Debug)]
struct AlgoRegister {
    selections: AtomicU64,
    ok: AtomicU64,
    failures: AtomicU64,
    penalties: AtomicU64,
    evictions: AtomicU64,
    /// Most recent phase-2 weight, stored as `f64` bits.
    last_weight: AtomicU64,
    /// Log-spaced histogram of successful runtimes.
    hist: [AtomicU64; HIST_BUCKETS],
}

impl AlgoRegister {
    fn new() -> Self {
        Self {
            selections: AtomicU64::new(0),
            ok: AtomicU64::new(0),
            failures: AtomicU64::new(0),
            penalties: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
            last_weight: AtomicU64::new(f64::NAN.to_bits()),
            hist: std::array::from_fn(|_| AtomicU64::new(0)),
        }
    }

    fn reset(&self) {
        self.selections.store(0, Ordering::Relaxed);
        self.ok.store(0, Ordering::Relaxed);
        self.failures.store(0, Ordering::Relaxed);
        self.penalties.store(0, Ordering::Relaxed);
        self.evictions.store(0, Ordering::Relaxed);
        self.last_weight
            .store(f64::NAN.to_bits(), Ordering::Relaxed);
        for b in &self.hist {
            b.store(0, Ordering::Relaxed);
        }
    }
}

/// The full set of metric registers behind a [`super::Recorder`].
///
/// Updated on every recorded event; snapshot with [`Metrics::report`].
#[derive(Debug)]
pub struct Metrics {
    algos: [AlgoRegister; MAX_TRACKED_ALGORITHMS],
    /// One past the highest algorithm index touched so far.
    algo_count: AtomicU64,
    iterations: AtomicU64,
    phase1_steps: AtomicU64,
    spans: AtomicU64,
    max_queue_depth: AtomicU64,
    last_queue_depth: AtomicU64,
    drift_events: AtomicU64,
}

impl Metrics {
    /// Fresh, all-zero registers.
    pub fn new() -> Self {
        Self {
            algos: std::array::from_fn(|_| AlgoRegister::new()),
            algo_count: AtomicU64::new(0),
            iterations: AtomicU64::new(0),
            phase1_steps: AtomicU64::new(0),
            spans: AtomicU64::new(0),
            max_queue_depth: AtomicU64::new(0),
            last_queue_depth: AtomicU64::new(0),
            drift_events: AtomicU64::new(0),
        }
    }

    fn algo(&self, index: u16) -> Option<&AlgoRegister> {
        let i = index as usize;
        if i < MAX_TRACKED_ALGORITHMS {
            self.algo_count.fetch_max(i as u64 + 1, Ordering::Relaxed);
            Some(&self.algos[i])
        } else {
            None
        }
    }

    /// Update the registers for one event. Lock-free and allocation-free.
    pub fn observe(&self, kind: &EventKind) {
        match kind {
            EventKind::IterationStart { .. } => {
                self.iterations.fetch_add(1, Ordering::Relaxed);
            }
            EventKind::AlgorithmSelected { algorithm, weights } => {
                if let Some(a) = self.algo(*algorithm) {
                    a.selections.fetch_add(1, Ordering::Relaxed);
                }
                for (i, w) in weights.as_slice().iter().enumerate() {
                    self.algo_count.fetch_max(i as u64 + 1, Ordering::Relaxed);
                    self.algos[i]
                        .last_weight
                        .store((*w as f64).to_bits(), Ordering::Relaxed);
                }
            }
            EventKind::Phase1Step { .. } => {
                self.phase1_steps.fetch_add(1, Ordering::Relaxed);
            }
            EventKind::MeasureOutcome {
                algorithm,
                status,
                runtime_ms,
            } => {
                if let Some(a) = self.algo(*algorithm) {
                    match status {
                        MeasureStatus::Ok => {
                            a.ok.fetch_add(1, Ordering::Relaxed);
                            a.hist[bucket_index(*runtime_ms)].fetch_add(1, Ordering::Relaxed);
                        }
                        MeasureStatus::Failed | MeasureStatus::TimedOut => {
                            a.failures.fetch_add(1, Ordering::Relaxed);
                        }
                    }
                }
            }
            EventKind::PenaltyApplied { algorithm, .. } => {
                if let Some(a) = self.algo(*algorithm) {
                    a.penalties.fetch_add(1, Ordering::Relaxed);
                }
            }
            EventKind::WindowEvicted { algorithm, .. } => {
                if let Some(a) = self.algo(*algorithm) {
                    a.evictions.fetch_add(1, Ordering::Relaxed);
                }
            }
            EventKind::SpanBegin { .. } => {
                self.spans.fetch_add(1, Ordering::Relaxed);
            }
            EventKind::SpanEnd { .. } => {}
            EventKind::QueueDepth { depth, .. } => {
                let d = *depth as u64;
                self.max_queue_depth.fetch_max(d, Ordering::Relaxed);
                self.last_queue_depth.store(d, Ordering::Relaxed);
            }
            EventKind::DriftDetected { .. } => {
                self.drift_events.fetch_add(1, Ordering::Relaxed);
            }
        }
    }

    /// Zero every register.
    pub fn reset(&self) {
        for a in &self.algos {
            a.reset();
        }
        self.algo_count.store(0, Ordering::Relaxed);
        self.iterations.store(0, Ordering::Relaxed);
        self.phase1_steps.store(0, Ordering::Relaxed);
        self.spans.store(0, Ordering::Relaxed);
        self.max_queue_depth.store(0, Ordering::Relaxed);
        self.last_queue_depth.store(0, Ordering::Relaxed);
        self.drift_events.store(0, Ordering::Relaxed);
    }

    /// Take a plain-data snapshot of every register.
    pub fn report(&self) -> MetricsReport {
        let n = self.algo_count.load(Ordering::Relaxed) as usize;
        let algorithms = self.algos[..n]
            .iter()
            .map(|a| {
                let histogram: Vec<(f64, u64)> = a
                    .hist
                    .iter()
                    .enumerate()
                    .filter_map(|(i, b)| {
                        let count = b.load(Ordering::Relaxed);
                        (count > 0).then(|| (bucket_lower_bound(i), count))
                    })
                    .collect();
                AlgoMetrics {
                    selections: a.selections.load(Ordering::Relaxed),
                    ok: a.ok.load(Ordering::Relaxed),
                    failures: a.failures.load(Ordering::Relaxed),
                    penalties: a.penalties.load(Ordering::Relaxed),
                    evictions: a.evictions.load(Ordering::Relaxed),
                    last_weight: f64::from_bits(a.last_weight.load(Ordering::Relaxed)),
                    histogram,
                }
            })
            .collect();
        MetricsReport {
            iterations: self.iterations.load(Ordering::Relaxed),
            phase1_steps: self.phase1_steps.load(Ordering::Relaxed),
            spans: self.spans.load(Ordering::Relaxed),
            max_queue_depth: self.max_queue_depth.load(Ordering::Relaxed),
            last_queue_depth: self.last_queue_depth.load(Ordering::Relaxed),
            drift_events: self.drift_events.load(Ordering::Relaxed),
            algorithms,
        }
    }
}

impl Default for Metrics {
    fn default() -> Self {
        Self::new()
    }
}

/// Plain-data snapshot of one algorithm's registers.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct AlgoMetrics {
    /// Times phase 2 selected this algorithm.
    pub selections: u64,
    /// Successful measurements.
    pub ok: u64,
    /// Failed or timed-out measurements.
    pub failures: u64,
    /// Failure penalties charged.
    pub penalties: u64,
    /// Samples evicted from sliding-window strategies.
    pub evictions: u64,
    /// Most recent phase-2 weight (NaN if never observed).
    pub last_weight: f64,
    /// Non-empty runtime-histogram buckets as `(lower_bound_ms, count)`.
    pub histogram: Vec<(f64, u64)>,
}

/// Plain-data snapshot of all metric registers; see [`Metrics::report`].
#[derive(Clone, Debug, Default, PartialEq)]
pub struct MetricsReport {
    /// Tuning iterations started.
    pub iterations: u64,
    /// Phase-1 (simplex) proposals recorded.
    pub phase1_steps: u64,
    /// Workload measurement spans opened.
    pub spans: u64,
    /// Highest pool queue depth observed.
    pub max_queue_depth: u64,
    /// Most recent pool queue depth observed.
    pub last_queue_depth: u64,
    /// Drift-restart events recorded (see [`EventKind::DriftDetected`]).
    pub drift_events: u64,
    /// Per-algorithm registers, indexed by algorithm id (trimmed to the
    /// highest index touched).
    pub algorithms: Vec<AlgoMetrics>,
}

impl MetricsReport {
    /// Serialize the snapshot for `results/*.json` artifacts.
    pub fn to_json(&self) -> Json {
        let algos = self
            .algorithms
            .iter()
            .map(|a| {
                let hist = a
                    .histogram
                    .iter()
                    .map(|(lo, n)| {
                        Json::obj(vec![
                            ("ge_ms", Json::Num(*lo)),
                            ("count", Json::Num(*n as f64)),
                        ])
                    })
                    .collect();
                Json::obj(vec![
                    ("selections", Json::Num(a.selections as f64)),
                    ("ok", Json::Num(a.ok as f64)),
                    ("failures", Json::Num(a.failures as f64)),
                    ("penalties", Json::Num(a.penalties as f64)),
                    ("evictions", Json::Num(a.evictions as f64)),
                    ("last_weight", Json::Num(a.last_weight)),
                    ("runtime_hist", Json::Arr(hist)),
                ])
            })
            .collect();
        Json::obj(vec![
            ("iterations", Json::Num(self.iterations as f64)),
            ("phase1_steps", Json::Num(self.phase1_steps as f64)),
            ("spans", Json::Num(self.spans as f64)),
            ("max_queue_depth", Json::Num(self.max_queue_depth as f64)),
            ("last_queue_depth", Json::Num(self.last_queue_depth as f64)),
            ("drift_events", Json::Num(self.drift_events as f64)),
            ("algorithms", Json::Arr(algos)),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::super::WeightSet;
    use super::*;

    #[test]
    fn buckets_are_log_spaced_and_monotone() {
        assert_eq!(bucket_index(0.0), 0);
        assert_eq!(bucket_index(f64::NAN), 0);
        assert_eq!(bucket_index(1e308), HIST_BUCKETS - 1);
        let mut prev = 0;
        for exp in -5..6 {
            let ms = 10f64.powi(exp);
            let b = bucket_index(ms);
            assert!(b >= prev, "bucket index must grow with runtime");
            prev = b;
        }
        // Each decade spans BUCKETS_PER_DECADE buckets.
        assert_eq!(
            bucket_index(1.0) - bucket_index(0.1),
            BUCKETS_PER_DECADE,
            "one decade apart"
        );
        // Lower bounds bracket their bucket.
        for i in 1..HIST_BUCKETS - 1 {
            let lo = bucket_lower_bound(i);
            assert_eq!(bucket_index(lo * 1.0001), i);
        }
    }

    #[test]
    fn observe_updates_registers() {
        let m = Metrics::new();
        m.observe(&EventKind::IterationStart { iteration: 0 });
        m.observe(&EventKind::AlgorithmSelected {
            algorithm: 1,
            weights: WeightSet::from_slice(&[0.25, 0.75]),
        });
        m.observe(&EventKind::MeasureOutcome {
            algorithm: 1,
            status: MeasureStatus::Ok,
            runtime_ms: 5.0,
        });
        m.observe(&EventKind::MeasureOutcome {
            algorithm: 1,
            status: MeasureStatus::Failed,
            runtime_ms: 100.0,
        });
        m.observe(&EventKind::PenaltyApplied {
            algorithm: 1,
            penalty_ms: 100.0,
        });
        let r = m.report();
        assert_eq!(r.iterations, 1);
        assert_eq!(r.algorithms.len(), 2);
        assert_eq!(r.algorithms[1].selections, 1);
        assert_eq!(r.algorithms[1].ok, 1);
        assert_eq!(r.algorithms[1].failures, 1);
        assert_eq!(r.algorithms[1].penalties, 1);
        assert_eq!(r.algorithms[0].last_weight, 0.25);
        assert_eq!(r.algorithms[1].histogram.len(), 1);
        assert_eq!(r.algorithms[1].histogram[0].1, 1);
        m.reset();
        assert_eq!(m.report(), MetricsReport::default());
    }

    #[test]
    fn out_of_range_algorithms_are_ignored() {
        let m = Metrics::new();
        m.observe(&EventKind::PenaltyApplied {
            algorithm: MAX_TRACKED_ALGORITHMS as u16 + 3,
            penalty_ms: 1.0,
        });
        assert!(m.report().algorithms.is_empty());
    }
}
