//! Trace exporters: JSONL and Chrome `trace_event` JSON.
//!
//! Both formats are produced with the in-repo [`crate::json`] module:
//!
//! * **JSONL** — one flat JSON object per line, keyed by a kebab-case
//!   `"kind"` tag. A run log starts with one `"run-meta"` line
//!   ([`RunMeta`]) describing the run, followed by one line per
//!   [`Event`]. Every event round-trips losslessly:
//!   [`event_from_json`]`(`[`event_to_json`]`(e)) == e`.
//! * **Chrome trace** — a `{"traceEvents": [...]}` document loadable in
//!   Perfetto or `chrome://tracing`: workload spans become `B`/`E`
//!   duration events, queue depths and phase-2 weights become `C`
//!   counter tracks, everything else becomes instant events.

use super::{Event, EventKind, MeasureStatus, SimplexOp, SpanKind, WeightSet, NO_CONTEXT, NO_SITE};
use crate::json::{Json, JsonError};

fn semantic_err<T>(message: impl Into<String>) -> Result<T, JsonError> {
    Err(JsonError {
        message: message.into(),
        offset: 0,
    })
}

fn get_f64(j: &Json, key: &str) -> Result<f64, JsonError> {
    j.get(key)
        .and_then(Json::as_f64)
        .ok_or(())
        .or_else(|_| semantic_err(format!("missing or non-numeric field '{key}'")))
}

fn get_u64(j: &Json, key: &str) -> Result<u64, JsonError> {
    let v = get_f64(j, key)?;
    if v < 0.0 || v.fract() != 0.0 {
        return semantic_err(format!("field '{key}' is not a non-negative integer"));
    }
    Ok(v as u64)
}

fn get_str<'a>(j: &'a Json, key: &str) -> Result<&'a str, JsonError> {
    j.get(key)
        .and_then(Json::as_str)
        .ok_or(())
        .or_else(|_| semantic_err(format!("missing or non-string field '{key}'")))
}

/// Serialize one event as a flat JSON object (one JSONL line).
///
/// Events recorded inside a tuning-site scope carry a `"site"` field and
/// events recorded inside a context scope carry a `"context"` field;
/// untagged events ([`NO_SITE`] / [`NO_CONTEXT`]) omit them, keeping
/// single-tuner trace files byte-compatible with the pre-site schema.
pub fn event_to_json(event: &Event) -> Json {
    let mut j = event_kind_to_json(event);
    if let Json::Obj(pairs) = &mut j {
        // Keep `site` then `context` right after `t_us` so lines stay
        // human-scannable.
        let mut at = 1;
        if event.site != NO_SITE {
            pairs.insert(at, ("site".into(), Json::Num(event.site as f64)));
            at += 1;
        }
        if event.context != NO_CONTEXT {
            pairs.insert(at, ("context".into(), Json::Num(event.context as f64)));
        }
    }
    j
}

fn event_kind_to_json(event: &Event) -> Json {
    let t = ("t_us", Json::Num(event.t_us as f64));
    match &event.kind {
        EventKind::IterationStart { iteration } => Json::obj(vec![
            t,
            ("kind", Json::Str("iteration-start".into())),
            ("iteration", Json::Num(*iteration as f64)),
        ]),
        EventKind::AlgorithmSelected { algorithm, weights } => {
            let w = weights
                .as_slice()
                .iter()
                .map(|v| Json::Num(*v as f64))
                .collect();
            Json::obj(vec![
                t,
                ("kind", Json::Str("algorithm-selected".into())),
                ("algorithm", Json::Num(*algorithm as f64)),
                ("weights", Json::Arr(w)),
            ])
        }
        EventKind::Phase1Step { op } => Json::obj(vec![
            t,
            ("kind", Json::Str("phase1-step".into())),
            ("op", Json::Str(op.label().into())),
        ]),
        EventKind::MeasureOutcome {
            algorithm,
            status,
            runtime_ms,
        } => Json::obj(vec![
            t,
            ("kind", Json::Str("measure-outcome".into())),
            ("algorithm", Json::Num(*algorithm as f64)),
            ("status", Json::Str(status.label().into())),
            ("runtime_ms", Json::Num(*runtime_ms)),
        ]),
        EventKind::PenaltyApplied {
            algorithm,
            penalty_ms,
        } => Json::obj(vec![
            t,
            ("kind", Json::Str("penalty-applied".into())),
            ("algorithm", Json::Num(*algorithm as f64)),
            ("penalty_ms", Json::Num(*penalty_ms)),
        ]),
        EventKind::WindowEvicted {
            algorithm,
            evicted_sample,
        } => Json::obj(vec![
            t,
            ("kind", Json::Str("window-evicted".into())),
            ("algorithm", Json::Num(*algorithm as f64)),
            ("evicted_sample", Json::Num(*evicted_sample as f64)),
        ]),
        EventKind::SpanBegin { span } => Json::obj(vec![
            t,
            ("kind", Json::Str("span-begin".into())),
            ("span", Json::Str(span.label().into())),
        ]),
        EventKind::SpanEnd { span } => Json::obj(vec![
            t,
            ("kind", Json::Str("span-end".into())),
            ("span", Json::Str(span.label().into())),
        ]),
        EventKind::QueueDepth { depth, workers } => Json::obj(vec![
            t,
            ("kind", Json::Str("queue-depth".into())),
            ("depth", Json::Num(*depth as f64)),
            ("workers", Json::Num(*workers as f64)),
        ]),
        EventKind::DriftDetected {
            baseline_ms,
            observed_ms,
        } => Json::obj(vec![
            t,
            ("kind", Json::Str("drift-detected".into())),
            ("baseline_ms", Json::Num(*baseline_ms)),
            ("observed_ms", Json::Num(*observed_ms)),
        ]),
    }
}

/// Append one event as a compact JSONL line (including the trailing
/// newline) directly into a caller-owned buffer.
///
/// This is the incremental, allocation-free flavor of [`event_to_json`]:
/// no `Json` tree is built, so repeatedly draining a live recorder into a
/// single reused `String` (see
/// [`crate::telemetry::Recorder::drain_jsonl_into`]) costs no per-event
/// allocations. The rendering is byte-identical to
/// `event_to_json(event).to_string() + "\n"` — pinned by a test so the
/// streamed and the batch-exported JSONL schemas can never diverge.
pub fn append_event_jsonl(event: &Event, out: &mut String) {
    use crate::json::{write_escaped, write_number};

    fn key(out: &mut String, k: &str) {
        out.push(',');
        write_escaped(out, k);
        out.push(':');
    }
    fn num(out: &mut String, k: &str, v: f64) {
        key(out, k);
        write_number(out, v);
    }
    fn str_field(out: &mut String, k: &str, v: &str) {
        key(out, k);
        write_escaped(out, v);
    }

    out.push_str("{\"t_us\":");
    write_number(out, event.t_us as f64);
    if event.site != NO_SITE {
        num(out, "site", event.site as f64);
    }
    if event.context != NO_CONTEXT {
        num(out, "context", event.context as f64);
    }
    match &event.kind {
        EventKind::IterationStart { iteration } => {
            str_field(out, "kind", "iteration-start");
            num(out, "iteration", *iteration as f64);
        }
        EventKind::AlgorithmSelected { algorithm, weights } => {
            str_field(out, "kind", "algorithm-selected");
            num(out, "algorithm", *algorithm as f64);
            key(out, "weights");
            out.push('[');
            for (i, w) in weights.as_slice().iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_number(out, *w as f64);
            }
            out.push(']');
        }
        EventKind::Phase1Step { op } => {
            str_field(out, "kind", "phase1-step");
            str_field(out, "op", op.label());
        }
        EventKind::MeasureOutcome {
            algorithm,
            status,
            runtime_ms,
        } => {
            str_field(out, "kind", "measure-outcome");
            num(out, "algorithm", *algorithm as f64);
            str_field(out, "status", status.label());
            num(out, "runtime_ms", *runtime_ms);
        }
        EventKind::PenaltyApplied {
            algorithm,
            penalty_ms,
        } => {
            str_field(out, "kind", "penalty-applied");
            num(out, "algorithm", *algorithm as f64);
            num(out, "penalty_ms", *penalty_ms);
        }
        EventKind::WindowEvicted {
            algorithm,
            evicted_sample,
        } => {
            str_field(out, "kind", "window-evicted");
            num(out, "algorithm", *algorithm as f64);
            num(out, "evicted_sample", *evicted_sample as f64);
        }
        EventKind::SpanBegin { span } => {
            str_field(out, "kind", "span-begin");
            str_field(out, "span", span.label());
        }
        EventKind::SpanEnd { span } => {
            str_field(out, "kind", "span-end");
            str_field(out, "span", span.label());
        }
        EventKind::QueueDepth { depth, workers } => {
            str_field(out, "kind", "queue-depth");
            num(out, "depth", *depth as f64);
            num(out, "workers", *workers as f64);
        }
        EventKind::DriftDetected {
            baseline_ms,
            observed_ms,
        } => {
            str_field(out, "kind", "drift-detected");
            num(out, "baseline_ms", *baseline_ms);
            num(out, "observed_ms", *observed_ms);
        }
    }
    out.push_str("}\n");
}

/// Parse one event back from its [`event_to_json`] representation.
pub fn event_from_json(j: &Json) -> Result<Event, JsonError> {
    let t_us = get_u64(j, "t_us")?;
    let site = match j.get("site") {
        Some(_) => {
            let s = get_u64(j, "site")?;
            if s >= NO_SITE as u64 {
                return semantic_err(format!("site {s} out of range"));
            }
            s as u16
        }
        None => NO_SITE,
    };
    let context = match j.get("context") {
        Some(_) => {
            let c = get_u64(j, "context")?;
            if c >= NO_CONTEXT as u64 {
                return semantic_err(format!("context {c} out of range"));
            }
            c as u32
        }
        None => NO_CONTEXT,
    };
    let kind = match get_str(j, "kind")? {
        "iteration-start" => EventKind::IterationStart {
            iteration: get_u64(j, "iteration")?,
        },
        "algorithm-selected" => {
            let arr = j
                .get("weights")
                .and_then(Json::as_arr)
                .ok_or(())
                .or_else(|_| semantic_err("missing or non-array field 'weights'"))?;
            let mut weights: Vec<f64> = Vec::with_capacity(arr.len());
            for w in arr {
                weights.push(
                    w.as_f64()
                        .ok_or(())
                        .or_else(|_| semantic_err("non-numeric weight"))?,
                );
            }
            EventKind::AlgorithmSelected {
                algorithm: get_u64(j, "algorithm")? as u16,
                weights: WeightSet::from_slice(&weights),
            }
        }
        "phase1-step" => EventKind::Phase1Step {
            op: SimplexOp::from_label(get_str(j, "op")?)
                .ok_or(())
                .or_else(|_| semantic_err("unknown simplex op"))?,
        },
        "measure-outcome" => EventKind::MeasureOutcome {
            algorithm: get_u64(j, "algorithm")? as u16,
            status: MeasureStatus::from_label(get_str(j, "status")?)
                .ok_or(())
                .or_else(|_| semantic_err("unknown measure status"))?,
            runtime_ms: get_f64(j, "runtime_ms")?,
        },
        "penalty-applied" => EventKind::PenaltyApplied {
            algorithm: get_u64(j, "algorithm")? as u16,
            penalty_ms: get_f64(j, "penalty_ms")?,
        },
        "window-evicted" => EventKind::WindowEvicted {
            algorithm: get_u64(j, "algorithm")? as u16,
            evicted_sample: get_u64(j, "evicted_sample")?,
        },
        "span-begin" => EventKind::SpanBegin {
            span: SpanKind::from_label(get_str(j, "span")?)
                .ok_or(())
                .or_else(|_| semantic_err("unknown span kind"))?,
        },
        "span-end" => EventKind::SpanEnd {
            span: SpanKind::from_label(get_str(j, "span")?)
                .ok_or(())
                .or_else(|_| semantic_err("unknown span kind"))?,
        },
        "queue-depth" => EventKind::QueueDepth {
            depth: get_u64(j, "depth")? as u32,
            workers: get_u64(j, "workers")? as u32,
        },
        "drift-detected" => EventKind::DriftDetected {
            baseline_ms: get_f64(j, "baseline_ms")?,
            observed_ms: get_f64(j, "observed_ms")?,
        },
        other => return semantic_err(format!("unknown event kind '{other}'")),
    };
    Ok(Event {
        t_us,
        site,
        context,
        kind,
    })
}

/// Serialize events as JSONL: one compact JSON object per line
/// (the batch wrapper around [`append_event_jsonl`]).
pub fn to_jsonl(events: &[Event]) -> String {
    let mut out = String::new();
    for e in events {
        append_event_jsonl(e, &mut out);
    }
    out
}

/// Parse a JSONL document of events (no [`RunMeta`] line); blank lines
/// are skipped.
pub fn parse_jsonl(text: &str) -> Result<Vec<Event>, JsonError> {
    let mut events = Vec::new();
    for line in text.lines() {
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        events.push(event_from_json(&Json::parse(line)?)?);
    }
    Ok(events)
}

/// Metadata header for a recorded run: the first line of a run-log JSONL
/// file, tagged `"kind": "run-meta"`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RunMeta {
    /// Which case study produced the run (e.g. `"cs1"`).
    pub case_study: String,
    /// Phase-2 strategy label (e.g. `"e-greedy(10%)"`).
    pub strategy: String,
    /// Algorithm names, indexed by the `algorithm` field of events.
    pub algorithms: Vec<String>,
    /// Tuning iterations the run was configured for.
    pub iterations: u64,
}

impl RunMeta {
    /// Serialize as the `"run-meta"` header object.
    pub fn to_json(&self) -> Json {
        Json::obj(vec![
            ("kind", Json::Str("run-meta".into())),
            ("case_study", Json::Str(self.case_study.clone())),
            ("strategy", Json::Str(self.strategy.clone())),
            (
                "algorithms",
                Json::Arr(
                    self.algorithms
                        .iter()
                        .map(|a| Json::Str(a.clone()))
                        .collect(),
                ),
            ),
            ("iterations", Json::Num(self.iterations as f64)),
        ])
    }

    /// Parse a `"run-meta"` header object.
    pub fn from_json(j: &Json) -> Result<Self, JsonError> {
        if get_str(j, "kind")? != "run-meta" {
            return semantic_err("not a run-meta object");
        }
        let arr = j
            .get("algorithms")
            .and_then(Json::as_arr)
            .ok_or(())
            .or_else(|_| semantic_err("missing or non-array field 'algorithms'"))?;
        let mut algorithms = Vec::with_capacity(arr.len());
        for a in arr {
            algorithms.push(
                a.as_str()
                    .ok_or(())
                    .or_else(|_| semantic_err("non-string algorithm name"))?
                    .to_string(),
            );
        }
        Ok(Self {
            case_study: get_str(j, "case_study")?.to_string(),
            strategy: get_str(j, "strategy")?.to_string(),
            algorithms,
            iterations: get_u64(j, "iterations")?,
        })
    }
}

/// A parsed run log: optional metadata header plus the event stream.
#[derive(Clone, Debug, PartialEq)]
pub struct RunLog {
    /// The `"run-meta"` header, if the file had one.
    pub meta: Option<RunMeta>,
    /// All events, in recorded order.
    pub events: Vec<Event>,
}

/// Serialize a complete run log: one `"run-meta"` line, then one line
/// per event.
pub fn write_run_log(meta: &RunMeta, events: &[Event]) -> String {
    let mut out = meta.to_json().to_string();
    out.push('\n');
    out.push_str(&to_jsonl(events));
    out
}

/// Parse a run-log JSONL document. A leading `"run-meta"` line becomes
/// [`RunLog::meta`]; every other non-blank line must be an event.
pub fn parse_run_log(text: &str) -> Result<RunLog, JsonError> {
    let mut meta = None;
    let mut events = Vec::new();
    for line in text.lines() {
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        let j = Json::parse(line)?;
        if j.get("kind").and_then(Json::as_str) == Some("run-meta") {
            meta = Some(RunMeta::from_json(&j)?);
        } else {
            events.push(event_from_json(&j)?);
        }
    }
    Ok(RunLog { meta, events })
}

fn trace_row(name: &str, ph: &str, ts_us: f64, tid: f64, args: Vec<(&str, Json)>) -> Json {
    let mut pairs = vec![
        ("name", Json::Str(name.into())),
        ("ph", Json::Str(ph.into())),
        ("ts", Json::Num(ts_us)),
        ("pid", Json::Num(1.0)),
        ("tid", Json::Num(tid)),
    ];
    if !args.is_empty() {
        pairs.push(("args", Json::obj(args)));
    }
    Json::obj(pairs)
}

/// Convert an event stream to Chrome `trace_event` JSON, loadable in
/// Perfetto or `chrome://tracing`.
///
/// Workload spans map to `B`/`E` duration events; [`EventKind::QueueDepth`]
/// and the phase-2 weight vector map to `C` counter tracks (so queue depth
/// and weight evolution plot as graphs); everything else maps to instant
/// events carrying its payload in `args`.
pub fn chrome_trace(events: &[Event]) -> Json {
    let mut rows = Vec::with_capacity(events.len() + 1);
    rows.push(trace_row(
        "process_name",
        "M",
        0.0,
        1.0,
        vec![("name", Json::Str("autotune".into()))],
    ));
    for e in events {
        let ts = e.t_us as f64;
        // Each tuning site gets its own Perfetto track; untagged events
        // (single-tuner runs) stay on track 1.
        let tid = if e.site == NO_SITE {
            1.0
        } else {
            e.site as f64 + 2.0
        };
        match &e.kind {
            EventKind::IterationStart { iteration } => rows.push(trace_row(
                "iteration",
                "i",
                ts,
                tid,
                vec![("iteration", Json::Num(*iteration as f64))],
            )),
            EventKind::AlgorithmSelected { algorithm, weights } => {
                rows.push(trace_row(
                    "select",
                    "i",
                    ts,
                    tid,
                    vec![("algorithm", Json::Num(*algorithm as f64))],
                ));
                let args: Vec<(String, Json)> = weights
                    .as_slice()
                    .iter()
                    .enumerate()
                    .map(|(i, w)| (format!("alg{i}"), Json::Num(*w as f64)))
                    .collect();
                if !args.is_empty() {
                    rows.push(Json::Obj(vec![
                        ("name".into(), Json::Str("weights".into())),
                        ("ph".into(), Json::Str("C".into())),
                        ("ts".into(), Json::Num(ts)),
                        ("pid".into(), Json::Num(1.0)),
                        ("tid".into(), Json::Num(tid)),
                        ("args".into(), Json::Obj(args)),
                    ]));
                }
            }
            EventKind::Phase1Step { op } => {
                rows.push(trace_row(
                    "simplex",
                    "i",
                    ts,
                    tid,
                    vec![("op", Json::Str(op.label().into()))],
                ));
            }
            EventKind::MeasureOutcome {
                algorithm,
                status,
                runtime_ms,
            } => rows.push(trace_row(
                "measure",
                "i",
                ts,
                tid,
                vec![
                    ("algorithm", Json::Num(*algorithm as f64)),
                    ("status", Json::Str(status.label().into())),
                    ("runtime_ms", Json::Num(*runtime_ms)),
                ],
            )),
            EventKind::PenaltyApplied {
                algorithm,
                penalty_ms,
            } => rows.push(trace_row(
                "penalty",
                "i",
                ts,
                tid,
                vec![
                    ("algorithm", Json::Num(*algorithm as f64)),
                    ("penalty_ms", Json::Num(*penalty_ms)),
                ],
            )),
            EventKind::WindowEvicted {
                algorithm,
                evicted_sample,
            } => rows.push(trace_row(
                "evict",
                "i",
                ts,
                tid,
                vec![
                    ("algorithm", Json::Num(*algorithm as f64)),
                    ("evicted_sample", Json::Num(*evicted_sample as f64)),
                ],
            )),
            EventKind::SpanBegin { span } => {
                rows.push(trace_row(span.label(), "B", ts, tid, vec![]));
            }
            EventKind::SpanEnd { span } => {
                rows.push(trace_row(span.label(), "E", ts, tid, vec![]));
            }
            EventKind::QueueDepth { depth, workers } => rows.push(trace_row(
                "queue-depth",
                "C",
                ts,
                tid,
                vec![
                    ("depth", Json::Num(*depth as f64)),
                    ("workers", Json::Num(*workers as f64)),
                ],
            )),
            EventKind::DriftDetected {
                baseline_ms,
                observed_ms,
            } => rows.push(trace_row(
                "drift",
                "i",
                ts,
                tid,
                vec![
                    ("baseline_ms", Json::Num(*baseline_ms)),
                    ("observed_ms", Json::Num(*observed_ms)),
                ],
            )),
        }
    }
    Json::obj(vec![
        ("traceEvents", Json::Arr(rows)),
        ("displayTimeUnit", Json::Str("ms".into())),
    ])
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_events() -> Vec<Event> {
        vec![
            Event {
                t_us: 0,
                site: NO_SITE,
                context: NO_CONTEXT,
                kind: EventKind::IterationStart { iteration: 3 },
            },
            Event {
                t_us: 5,
                site: NO_SITE,
                context: NO_CONTEXT,
                kind: EventKind::AlgorithmSelected {
                    algorithm: 1,
                    weights: WeightSet::from_slice(&[0.25, 0.75]),
                },
            },
            Event {
                t_us: 6,
                site: NO_SITE,
                context: NO_CONTEXT,
                kind: EventKind::Phase1Step {
                    op: SimplexOp::Reflect,
                },
            },
            Event {
                t_us: 7,
                site: NO_SITE,
                context: NO_CONTEXT,
                kind: EventKind::SpanBegin {
                    span: SpanKind::Search,
                },
            },
            Event {
                t_us: 90,
                site: NO_SITE,
                context: NO_CONTEXT,
                kind: EventKind::SpanEnd {
                    span: SpanKind::Search,
                },
            },
            Event {
                t_us: 95,
                site: NO_SITE,
                context: NO_CONTEXT,
                kind: EventKind::MeasureOutcome {
                    algorithm: 1,
                    status: MeasureStatus::Ok,
                    runtime_ms: 0.0831,
                },
            },
            Event {
                t_us: 96,
                site: NO_SITE,
                context: NO_CONTEXT,
                kind: EventKind::PenaltyApplied {
                    algorithm: 0,
                    penalty_ms: 12.5,
                },
            },
            Event {
                t_us: 97,
                site: NO_SITE,
                context: NO_CONTEXT,
                kind: EventKind::WindowEvicted {
                    algorithm: 0,
                    evicted_sample: 14,
                },
            },
            Event {
                t_us: 99,
                site: NO_SITE,
                context: 9,
                kind: EventKind::QueueDepth {
                    depth: 3,
                    workers: 8,
                },
            },
            Event {
                t_us: 104,
                site: 7,
                context: 3,
                kind: EventKind::DriftDetected {
                    baseline_ms: 0.5,
                    observed_ms: 1.375,
                },
            },
        ]
    }

    #[test]
    fn jsonl_round_trips_every_kind() {
        let events = sample_events();
        let text = to_jsonl(&events);
        let parsed = parse_jsonl(&text).expect("parse back");
        assert_eq!(parsed, events);
    }

    /// The incremental writer must stay byte-identical to the `Json`-tree
    /// path, or live-streamed telemetry would drift from batch exports.
    #[test]
    fn append_event_jsonl_matches_json_tree_rendering() {
        for e in sample_events() {
            let mut incremental = String::new();
            append_event_jsonl(&e, &mut incremental);
            let batch = event_to_json(&e).to_string() + "\n";
            assert_eq!(incremental, batch, "divergent rendering for {e:?}");
        }
    }

    #[test]
    fn run_log_round_trips_with_meta() {
        let meta = RunMeta {
            case_study: "cs1".into(),
            strategy: "e-greedy(10%)".into(),
            algorithms: vec!["naive".into(), "boyer-moore".into()],
            iterations: 600,
        };
        let events = sample_events();
        let text = write_run_log(&meta, &events);
        let log = parse_run_log(&text).expect("parse back");
        assert_eq!(log.meta.as_ref(), Some(&meta));
        assert_eq!(log.events, events);
    }

    #[test]
    fn chrome_trace_is_well_formed() {
        let doc = chrome_trace(&sample_events());
        let rows = doc
            .get("traceEvents")
            .and_then(Json::as_arr)
            .expect("traceEvents array");
        // metadata row + at least one row per event
        assert!(rows.len() > sample_events().len());
        for row in rows {
            assert!(row.get("ph").and_then(Json::as_str).is_some());
            assert!(row.get("ts").and_then(Json::as_f64).is_some());
            assert!(row.get("pid").is_some() && row.get("tid").is_some());
        }
        // Spans come as balanced B/E pairs.
        let b = rows
            .iter()
            .filter(|r| r.get("ph").and_then(Json::as_str) == Some("B"))
            .count();
        let e = rows
            .iter()
            .filter(|r| r.get("ph").and_then(Json::as_str) == Some("E"))
            .count();
        assert_eq!(b, e);
        // Round-trips through the parser (valid JSON).
        let reparsed = Json::parse(&doc.to_string()).expect("valid JSON");
        assert_eq!(reparsed, doc);
    }

    #[test]
    fn parse_rejects_unknown_kind() {
        assert!(parse_jsonl("{\"t_us\":0,\"kind\":\"bogus\"}").is_err());
    }
}
