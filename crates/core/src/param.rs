//! Tuning parameters classified by Stevens' typology of scales (Table I of
//! the paper).
//!
//! Every tunable parameter belongs to one of four classes, each characterized
//! by a distinguishing property and subsuming the properties of the previous
//! classes:
//!
//! | Class    | Distinguishing property          | Example                      |
//! |----------|----------------------------------|------------------------------|
//! | Nominal  | labels                           | choice of algorithm          |
//! | Ordinal  | order                            | `small`/`medium`/`large`     |
//! | Interval | distance                         | percentage of a buffer size  |
//! | Ratio    | natural zero, equality of ratios | number of threads            |
//!
//! The class determines which search-strategy operations are meaningful: a
//! hill climber needs *neighborhood* (order), Nelder-Mead needs *distance*
//! (interval), and only exhaustive/random selection or the dedicated nominal
//! strategies of [`crate::nominal`] can legally manipulate a nominal
//! parameter.

use crate::json::{Json, JsonError};

/// The four Stevens classes. Ordered weakest (`Nominal`) to strongest
/// (`Ratio`); a class subsumes every weaker class' properties.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum ParamClass {
    /// Only labels: values can be compared for equality, nothing else.
    Nominal,
    /// Labels with a total order but no meaningful distance.
    Ordinal,
    /// Ordered values with meaningful distance but no natural zero.
    Interval,
    /// Interval plus a natural zero, so ratios of values are meaningful.
    Ratio,
}

impl ParamClass {
    /// Does this class define a total order on its values?
    pub fn has_order(self) -> bool {
        self >= ParamClass::Ordinal
    }

    /// Does this class define a distance between values?
    pub fn has_distance(self) -> bool {
        self >= ParamClass::Interval
    }

    /// Does this class have a natural zero (so ratios are meaningful)?
    pub fn has_natural_zero(self) -> bool {
        self >= ParamClass::Ratio
    }

    /// Human-readable name as used in the paper's Table I.
    pub fn name(self) -> &'static str {
        match self {
            ParamClass::Nominal => "Nominal",
            ParamClass::Ordinal => "Ordinal",
            ParamClass::Interval => "Interval",
            ParamClass::Ratio => "Ratio",
        }
    }

    /// The distinguishing property of the class, per Table I.
    pub fn distinguishing_property(self) -> &'static str {
        match self {
            ParamClass::Nominal => "Labels",
            ParamClass::Ordinal => "Order",
            ParamClass::Interval => "Distance",
            ParamClass::Ratio => "Natural Zero, Equality of Ratios",
        }
    }

    /// All classes, weakest first.
    pub fn all() -> [ParamClass; 4] {
        [
            ParamClass::Nominal,
            ParamClass::Ordinal,
            ParamClass::Interval,
            ParamClass::Ratio,
        ]
    }
}

/// A single tunable parameter: a name, a Stevens class, and a domain.
///
/// Domains follow the paper's convention that parameters "are implemented as
/// closed integer intervals"; nominal and ordinal parameters carry explicit
/// label lists and are represented by label *indices* in configurations.
/// Interval and ratio parameters may also be continuous (`FloatRange`).
#[derive(Debug, Clone, PartialEq)]
pub struct Parameter {
    name: String,
    class: ParamClass,
    domain: Domain,
}

/// The value domain of a [`Parameter`].
#[derive(Debug, Clone, PartialEq)]
pub enum Domain {
    /// A finite label set; configuration values are indices into it.
    Labels(Vec<String>),
    /// A closed integer interval `[lo, hi]`.
    IntRange {
        /// Inclusive lower bound.
        lo: i64,
        /// Inclusive upper bound.
        hi: i64,
    },
    /// A closed real interval `[lo, hi]`.
    FloatRange {
        /// Inclusive lower bound.
        lo: f64,
        /// Inclusive upper bound.
        hi: f64,
    },
}

/// A concrete value a parameter can take inside a configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Value {
    /// Index into a label domain (nominal / ordinal parameters).
    Index(usize),
    /// Integer value (interval / ratio parameters over `IntRange`).
    Int(i64),
    /// Real value (interval / ratio parameters over `FloatRange`).
    Float(f64),
}

impl Value {
    /// The value as a continuous coordinate, used by numeric searchers.
    pub fn as_f64(self) -> f64 {
        match self {
            Value::Index(i) => i as f64,
            Value::Int(v) => v as f64,
            Value::Float(v) => v,
        }
    }

    /// The value as an integer, rounding floats. Total on all inputs:
    /// NaN — which a degenerate simplex can smuggle into a raw
    /// [`Value::Float`] — maps to 0 and ±∞ saturate (the decode layers
    /// clamp against the real domain anyway), rather than panicking
    /// mid-measurement.
    pub fn as_i64(self) -> i64 {
        match self {
            Value::Index(i) => i as i64,
            Value::Int(v) => v,
            // `as` casts from f64 are saturating and map NaN to 0.
            Value::Float(v) => v.round() as i64,
        }
    }

    /// The value as a label index. Panics for non-index values.
    pub fn as_index(self) -> usize {
        match self {
            Value::Index(i) => i,
            other => panic!("expected a label index, got {other:?}"),
        }
    }
}

impl Value {
    /// Externally-tagged JSON encoding (`{"Int": 3}`), the shape serde
    /// would have produced for this enum.
    pub fn to_json(self) -> Json {
        match self {
            Value::Index(i) => Json::obj(vec![("Index", Json::Num(i as f64))]),
            Value::Int(v) => Json::obj(vec![("Int", Json::Num(v as f64))]),
            Value::Float(v) => Json::obj(vec![("Float", Json::Num(v))]),
        }
    }

    /// Inverse of [`Value::to_json`].
    pub fn from_json(json: &Json) -> Result<Value, JsonError> {
        let fail = |m: &str| JsonError {
            message: m.to_string(),
            offset: 0,
        };
        if let Some(x) = json.get("Index").and_then(Json::as_f64) {
            Ok(Value::Index(x as usize))
        } else if let Some(x) = json.get("Int").and_then(Json::as_f64) {
            Ok(Value::Int(x as i64))
        } else if let Some(x) = json.get("Float").and_then(Json::as_f64) {
            Ok(Value::Float(x))
        } else {
            Err(fail("expected a tagged Value object"))
        }
    }
}

impl Domain {
    fn to_json(&self) -> Json {
        match self {
            Domain::Labels(ls) => Json::obj(vec![(
                "Labels",
                Json::Arr(ls.iter().map(|l| Json::Str(l.clone())).collect()),
            )]),
            Domain::IntRange { lo, hi } => Json::obj(vec![(
                "IntRange",
                Json::obj(vec![
                    ("lo", Json::Num(*lo as f64)),
                    ("hi", Json::Num(*hi as f64)),
                ]),
            )]),
            Domain::FloatRange { lo, hi } => Json::obj(vec![(
                "FloatRange",
                Json::obj(vec![("lo", Json::Num(*lo)), ("hi", Json::Num(*hi))]),
            )]),
        }
    }

    fn from_json(json: &Json) -> Result<Domain, JsonError> {
        let fail = |m: &str| JsonError {
            message: m.to_string(),
            offset: 0,
        };
        if let Some(arr) = json.get("Labels").and_then(Json::as_arr) {
            let labels = arr
                .iter()
                .map(|l| l.as_str().map(str::to_string))
                .collect::<Option<Vec<_>>>()
                .ok_or_else(|| fail("Labels must be strings"))?;
            Ok(Domain::Labels(labels))
        } else if let Some(r) = json.get("IntRange") {
            let lo = r
                .get("lo")
                .and_then(Json::as_f64)
                .ok_or_else(|| fail("IntRange.lo"))?;
            let hi = r
                .get("hi")
                .and_then(Json::as_f64)
                .ok_or_else(|| fail("IntRange.hi"))?;
            Ok(Domain::IntRange {
                lo: lo as i64,
                hi: hi as i64,
            })
        } else if let Some(r) = json.get("FloatRange") {
            let lo = r
                .get("lo")
                .and_then(Json::as_f64)
                .ok_or_else(|| fail("FloatRange.lo"))?;
            let hi = r
                .get("hi")
                .and_then(Json::as_f64)
                .ok_or_else(|| fail("FloatRange.hi"))?;
            Ok(Domain::FloatRange { lo, hi })
        } else {
            Err(fail("expected a tagged Domain object"))
        }
    }
}

impl ParamClass {
    fn from_name(name: &str) -> Option<ParamClass> {
        ParamClass::all().into_iter().find(|c| c.name() == name)
    }
}

impl Parameter {
    /// JSON encoding: `{"name": ..., "class": ..., "domain": ...}`.
    pub fn to_json(&self) -> Json {
        Json::obj(vec![
            ("name", Json::Str(self.name.clone())),
            ("class", Json::Str(self.class.name().to_string())),
            ("domain", self.domain.to_json()),
        ])
    }

    /// Inverse of [`Parameter::to_json`].
    pub fn from_json(json: &Json) -> Result<Parameter, JsonError> {
        let fail = |m: &str| JsonError {
            message: m.to_string(),
            offset: 0,
        };
        let name = json
            .get("name")
            .and_then(Json::as_str)
            .ok_or_else(|| fail("parameter needs a name"))?;
        let class = json
            .get("class")
            .and_then(Json::as_str)
            .and_then(ParamClass::from_name)
            .ok_or_else(|| fail("parameter needs a valid class"))?;
        let domain = Domain::from_json(
            json.get("domain")
                .ok_or_else(|| fail("parameter needs a domain"))?,
        )?;
        Ok(Parameter {
            name: name.to_string(),
            class,
            domain,
        })
    }

    /// A nominal parameter over a label set — e.g. the choice of algorithm.
    pub fn nominal(name: impl Into<String>, labels: Vec<String>) -> Self {
        assert!(
            !labels.is_empty(),
            "a nominal parameter needs at least one label"
        );
        Parameter {
            name: name.into(),
            class: ParamClass::Nominal,
            domain: Domain::Labels(labels),
        }
    }

    /// An ordinal parameter over an *ordered* label set — e.g. buffer sizes
    /// `small < medium < large`.
    pub fn ordinal(name: impl Into<String>, levels: Vec<String>) -> Self {
        assert!(
            !levels.is_empty(),
            "an ordinal parameter needs at least one level"
        );
        Parameter {
            name: name.into(),
            class: ParamClass::Ordinal,
            domain: Domain::Labels(levels),
        }
    }

    /// An interval parameter over a closed integer range — distances are
    /// meaningful but there is no natural zero (e.g. "percent of a maximum
    /// buffer size").
    pub fn interval(name: impl Into<String>, lo: i64, hi: i64) -> Self {
        assert!(lo <= hi, "empty interval domain [{lo}, {hi}]");
        Parameter {
            name: name.into(),
            class: ParamClass::Interval,
            domain: Domain::IntRange { lo, hi },
        }
    }

    /// A continuous interval parameter over a closed real range.
    pub fn interval_f64(name: impl Into<String>, lo: f64, hi: f64) -> Self {
        assert!(
            lo <= hi && lo.is_finite() && hi.is_finite(),
            "bad domain [{lo}, {hi}]"
        );
        Parameter {
            name: name.into(),
            class: ParamClass::Interval,
            domain: Domain::FloatRange { lo, hi },
        }
    }

    /// A ratio parameter over a closed integer range — e.g. thread counts.
    pub fn ratio(name: impl Into<String>, lo: i64, hi: i64) -> Self {
        assert!(lo <= hi, "empty ratio domain [{lo}, {hi}]");
        Parameter {
            name: name.into(),
            class: ParamClass::Ratio,
            domain: Domain::IntRange { lo, hi },
        }
    }

    /// A continuous ratio parameter over a closed real range.
    pub fn ratio_f64(name: impl Into<String>, lo: f64, hi: f64) -> Self {
        assert!(
            lo <= hi && lo.is_finite() && hi.is_finite(),
            "bad domain [{lo}, {hi}]"
        );
        Parameter {
            name: name.into(),
            class: ParamClass::Ratio,
            domain: Domain::FloatRange { lo, hi },
        }
    }

    /// The parameter's name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The parameter's Stevens class.
    pub fn class(&self) -> ParamClass {
        self.class
    }

    /// The parameter's value domain.
    pub fn domain(&self) -> &Domain {
        &self.domain
    }

    /// Number of distinct values, or `None` for continuous domains.
    pub fn cardinality(&self) -> Option<u64> {
        match &self.domain {
            Domain::Labels(ls) => Some(ls.len() as u64),
            Domain::IntRange { lo, hi } => Some((*hi as i128 - *lo as i128 + 1) as u64),
            Domain::FloatRange { .. } => None,
        }
    }

    /// Labels for label-domain parameters.
    pub fn labels(&self) -> Option<&[String]> {
        match &self.domain {
            Domain::Labels(ls) => Some(ls),
            _ => None,
        }
    }

    /// Is `v` a member of this parameter's domain?
    pub fn contains(&self, v: Value) -> bool {
        match (&self.domain, v) {
            (Domain::Labels(ls), Value::Index(i)) => i < ls.len(),
            (Domain::IntRange { lo, hi }, Value::Int(x)) => (*lo..=*hi).contains(&x),
            (Domain::FloatRange { lo, hi }, Value::Float(x)) => {
                x.is_finite() && *lo <= x && x <= *hi
            }
            _ => false,
        }
    }

    /// Clamp a continuous coordinate back into the domain, returning the
    /// nearest legal [`Value`]. This is how numeric searchers project their
    /// unconstrained moves onto the search space. Non-finite coordinates
    /// (NaN from a collapsed simplex, ±∞ from an overflowed move) carry no
    /// usable position information and all project to the domain minimum.
    pub fn clamp_continuous(&self, x: f64) -> Value {
        match &self.domain {
            Domain::Labels(ls) => {
                let max = ls.len() as f64 - 1.0;
                let c = if x.is_finite() {
                    x.clamp(0.0, max)
                } else {
                    0.0
                };
                Value::Index(c.round() as usize)
            }
            Domain::IntRange { lo, hi } => {
                let c = if x.is_finite() {
                    x.clamp(*lo as f64, *hi as f64)
                } else {
                    *lo as f64
                };
                Value::Int(c.round() as i64)
            }
            Domain::FloatRange { lo, hi } => {
                let c = if x.is_finite() {
                    x.clamp(*lo, *hi)
                } else {
                    *lo
                };
                Value::Float(c)
            }
        }
    }

    /// A uniformly random legal value.
    pub fn random_value(&self, rng: &mut crate::rng::Rng) -> Value {
        match &self.domain {
            Domain::Labels(ls) => Value::Index(rng.pick_index(ls.len())),
            Domain::IntRange { lo, hi } => Value::Int(rng.next_range_i64(*lo, *hi)),
            Domain::FloatRange { lo, hi } => Value::Float(rng.next_range_f64(*lo, *hi)),
        }
    }

    /// The lowest legal value (used as deterministic initial configuration).
    pub fn min_value(&self) -> Value {
        match &self.domain {
            Domain::Labels(_) => Value::Index(0),
            Domain::IntRange { lo, .. } => Value::Int(*lo),
            Domain::FloatRange { lo, .. } => Value::Float(*lo),
        }
    }

    /// The span of the domain as a continuous width (labels: count − 1).
    pub fn span(&self) -> f64 {
        match &self.domain {
            Domain::Labels(ls) => (ls.len() - 1) as f64,
            Domain::IntRange { lo, hi } => (hi - lo) as f64,
            Domain::FloatRange { lo, hi } => hi - lo,
        }
    }

    /// Neighboring values of `v` in an *ordered* domain (the hill-climbing
    /// neighborhood). Nominal parameters have no neighborhood; per the
    /// paper's analysis this returns an empty vector for them, which is what
    /// makes hill climbing (and simulated annealing) inapplicable.
    pub fn neighbors(&self, v: Value) -> Vec<Value> {
        if self.class == ParamClass::Nominal {
            return Vec::new();
        }
        match (&self.domain, v) {
            (Domain::Labels(ls), Value::Index(i)) => {
                let mut out = Vec::new();
                if i > 0 {
                    out.push(Value::Index(i - 1));
                }
                if i + 1 < ls.len() {
                    out.push(Value::Index(i + 1));
                }
                out
            }
            (Domain::IntRange { lo, hi }, Value::Int(x)) => {
                let mut out = Vec::new();
                if x > *lo {
                    out.push(Value::Int(x - 1));
                }
                if x < *hi {
                    out.push(Value::Int(x + 1));
                }
                out
            }
            (Domain::FloatRange { lo, hi }, Value::Float(x)) => {
                // Continuous neighborhood: step by 1% of the span.
                let step = (hi - lo) * 0.01;
                let mut out = Vec::new();
                if x - step >= *lo {
                    out.push(Value::Float(x - step));
                }
                if x + step <= *hi {
                    out.push(Value::Float(x + step));
                }
                out
            }
            _ => panic!("value {v:?} does not match domain {:?}", self.domain),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::Rng;

    fn labels(n: usize) -> Vec<String> {
        (0..n).map(|i| format!("l{i}")).collect()
    }

    #[test]
    fn class_property_lattice() {
        use ParamClass::*;
        assert!(!Nominal.has_order() && !Nominal.has_distance() && !Nominal.has_natural_zero());
        assert!(Ordinal.has_order() && !Ordinal.has_distance());
        assert!(Interval.has_order() && Interval.has_distance() && !Interval.has_natural_zero());
        assert!(Ratio.has_order() && Ratio.has_distance() && Ratio.has_natural_zero());
    }

    #[test]
    fn table_one_rows() {
        // The four rows of Table I, regenerated from the type system.
        let rows: Vec<_> = ParamClass::all()
            .iter()
            .map(|c| (c.name(), c.distinguishing_property()))
            .collect();
        assert_eq!(rows[0], ("Nominal", "Labels"));
        assert_eq!(rows[1], ("Ordinal", "Order"));
        assert_eq!(rows[2], ("Interval", "Distance"));
        assert_eq!(rows[3], ("Ratio", "Natural Zero, Equality of Ratios"));
    }

    #[test]
    fn nominal_has_no_neighbors() {
        let p = Parameter::nominal("alg", labels(5));
        assert!(p.neighbors(Value::Index(2)).is_empty());
    }

    #[test]
    fn ordinal_neighbors_are_adjacent_levels() {
        let p = Parameter::ordinal("size", labels(3));
        assert_eq!(p.neighbors(Value::Index(0)), vec![Value::Index(1)]);
        assert_eq!(
            p.neighbors(Value::Index(1)),
            vec![Value::Index(0), Value::Index(2)]
        );
        assert_eq!(p.neighbors(Value::Index(2)), vec![Value::Index(1)]);
    }

    #[test]
    fn int_range_neighbors_clamp_at_bounds() {
        let p = Parameter::ratio("threads", 1, 8);
        assert_eq!(p.neighbors(Value::Int(1)), vec![Value::Int(2)]);
        assert_eq!(p.neighbors(Value::Int(8)), vec![Value::Int(7)]);
        assert_eq!(
            p.neighbors(Value::Int(4)),
            vec![Value::Int(3), Value::Int(5)]
        );
    }

    #[test]
    fn contains_checks_domain_and_kind() {
        let p = Parameter::interval("pct", 0, 100);
        assert!(p.contains(Value::Int(0)));
        assert!(p.contains(Value::Int(100)));
        assert!(!p.contains(Value::Int(101)));
        assert!(!p.contains(Value::Index(5)));
        assert!(!p.contains(Value::Float(50.0)));
    }

    #[test]
    fn clamp_continuous_rounds_and_clamps() {
        let p = Parameter::ratio("threads", 1, 8);
        assert_eq!(p.clamp_continuous(-3.0), Value::Int(1));
        assert_eq!(p.clamp_continuous(3.4), Value::Int(3));
        assert_eq!(p.clamp_continuous(3.6), Value::Int(4));
        assert_eq!(p.clamp_continuous(99.0), Value::Int(8));
        assert_eq!(p.clamp_continuous(f64::NAN), Value::Int(1));
        assert_eq!(p.clamp_continuous(f64::INFINITY), Value::Int(1));
        assert_eq!(p.clamp_continuous(f64::NEG_INFINITY), Value::Int(1));
    }

    #[test]
    fn as_i64_is_total_on_non_finite_floats() {
        assert_eq!(Value::Float(f64::NAN).as_i64(), 0);
        assert_eq!(Value::Float(f64::INFINITY).as_i64(), i64::MAX);
        assert_eq!(Value::Float(f64::NEG_INFINITY).as_i64(), i64::MIN);
    }

    #[test]
    fn clamp_continuous_labels() {
        let p = Parameter::nominal("alg", labels(4));
        assert_eq!(p.clamp_continuous(-1.0), Value::Index(0));
        assert_eq!(p.clamp_continuous(2.49), Value::Index(2));
        assert_eq!(p.clamp_continuous(17.0), Value::Index(3));
    }

    #[test]
    fn random_value_stays_in_domain() {
        let mut rng = Rng::new(5);
        let ps = [
            Parameter::nominal("a", labels(3)),
            Parameter::interval("b", -10, 10),
            Parameter::ratio_f64("c", 0.5, 2.5),
        ];
        for p in &ps {
            for _ in 0..500 {
                let v = p.random_value(&mut rng);
                assert!(p.contains(v), "{v:?} outside {p:?}");
            }
        }
    }

    #[test]
    fn cardinality() {
        assert_eq!(Parameter::nominal("a", labels(7)).cardinality(), Some(7));
        assert_eq!(Parameter::interval("b", 0, 9).cardinality(), Some(10));
        assert_eq!(Parameter::ratio_f64("c", 0.0, 1.0).cardinality(), None);
    }

    #[test]
    fn value_conversions() {
        assert_eq!(Value::Index(3).as_f64(), 3.0);
        assert_eq!(Value::Int(-2).as_f64(), -2.0);
        assert_eq!(Value::Float(1.5).as_i64(), 2);
        assert_eq!(Value::Index(4).as_index(), 4);
    }

    #[test]
    #[should_panic(expected = "label index")]
    fn as_index_rejects_int() {
        Value::Int(3).as_index();
    }

    #[test]
    #[should_panic(expected = "at least one label")]
    fn empty_nominal_rejected() {
        Parameter::nominal("x", vec![]);
    }
}
