//! Per-algorithm sample history.
//!
//! The weighted phase-2 strategies of Section III all derive their weights
//! from the runtime samples observed for each algorithm: the Gradient
//! Weighted and Sliding-Window AUC strategies look at the latest *iteration
//! window* `[i0, i1]` of an algorithm's own samples, and Optimum Weighted at
//! the best sample seen so far. This module centralizes that bookkeeping.

use crate::measure::Sample;
use crate::robust::{MAX_MEASUREMENT_MS, RESOLUTION_FLOOR_MS};
use crate::space::Configuration;

/// Inverse of a runtime sample, clamped to the timer-resolution floor so
/// the result is always finite and positive — the primitive under every
/// `1/m` weight in the phase-2 strategies. A `0.0` ms sample (fast kernel,
/// coarse timer) inverts to `1/RESOLUTION_FLOOR_MS`, not `inf`.
#[inline]
pub fn clamped_inverse(value: f64) -> f64 {
    1.0 / value.clamp(RESOLUTION_FLOOR_MS, MAX_MEASUREMENT_MS)
}

/// History of runtime samples for one algorithm.
#[derive(Debug, Clone, Default)]
pub struct AlgorithmHistory {
    samples: Vec<Sample>,
    best: Option<(usize, f64)>,
    worst: Option<f64>,
}

impl AlgorithmHistory {
    /// An empty history.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record a new sample (measured value for `config` at global tuning
    /// iteration `iteration`).
    ///
    /// Recording is *total*: degenerate values are sanitized instead of
    /// panicking, because in online tuning they are produced by the live
    /// application, not by the tuner. Finite values are clamped into
    /// `[RESOLUTION_FLOOR_MS, MAX_MEASUREMENT_MS]`; non-finite values
    /// (which the robust measurement layer should already have converted to
    /// failures) are recorded as `MAX_MEASUREMENT_MS`, the worst
    /// representable runtime.
    pub fn record(&mut self, iteration: usize, config: Configuration, value: f64) {
        debug_assert!(
            value.is_finite(),
            "non-finite measurement {value} reached record(); \
             route failures through report_failure instead"
        );
        let value = if value.is_finite() {
            value.clamp(RESOLUTION_FLOOR_MS, MAX_MEASUREMENT_MS)
        } else {
            MAX_MEASUREMENT_MS
        };
        let idx = self.samples.len();
        if self.best.is_none_or(|(_, b)| value < b) {
            self.best = Some((idx, value));
        }
        if self.worst.is_none_or(|w| value > w) {
            self.worst = Some(value);
        }
        self.samples.push(Sample {
            iteration,
            config,
            value,
        });
    }

    /// Number of samples observed for this algorithm.
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// True if no samples have been recorded yet.
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// All recorded samples, in recording order.
    pub fn samples(&self) -> &[Sample] {
        &self.samples
    }

    /// Best (minimal) measured value so far, with the sample holding it.
    pub fn best(&self) -> Option<&Sample> {
        self.best.map(|(i, _)| &self.samples[i])
    }

    /// Best (minimal) measured value so far.
    pub fn best_value(&self) -> Option<f64> {
        self.best.map(|(_, v)| v)
    }

    /// Worst (maximal) measured value so far — the scale the failure
    /// penalty is derived from.
    pub fn worst_value(&self) -> Option<f64> {
        self.worst
    }

    /// The last measured value.
    pub fn last_value(&self) -> Option<f64> {
        self.samples.last().map(|s| s.value)
    }

    /// The latest iteration window of length at most `window`: the paper's
    /// `[i0, i1]` over *this algorithm's own* sample sequence. Returns the
    /// window as a slice of samples (most recent `window` entries).
    pub fn latest_window(&self, window: usize) -> &[Sample] {
        assert!(window > 0, "window must be positive");
        let start = self.samples.len().saturating_sub(window);
        &self.samples[start..]
    }

    /// The paper's gradient over the latest window:
    /// `G_A = (1/m_{A,i1} − 1/m_{A,i0}) / (i1 − i0)`
    /// where indices are positions in this algorithm's own sample sequence.
    /// Performance is interpreted inversely to time, so a *positive* gradient
    /// means the algorithm is getting faster. Returns `None` with fewer than
    /// two samples (no gradient is defined yet).
    pub fn window_gradient(&self, window: usize) -> Option<f64> {
        let w = self.latest_window(window);
        if w.len() < 2 {
            return None;
        }
        let first = w.first().expect("len >= 2");
        let last = w.last().expect("len >= 2");
        let span = (w.len() - 1) as f64;
        Some((clamped_inverse(last.value) - clamped_inverse(first.value)) / span)
    }

    /// The paper's sliding-window area under the (inverse) performance curve:
    /// `w_A = (Σ_{i=i0}^{i1} 1/m_{A,i}) / (i1 − i0)`.
    ///
    /// With a single sample the denominator `i1 − i0` would be zero; we fall
    /// back to the single inverse value, which keeps the weight finite and
    /// strictly positive as the definition requires.
    pub fn window_auc(&self, window: usize) -> Option<f64> {
        let w = self.latest_window(window);
        if w.is_empty() {
            return None;
        }
        let sum: f64 = w.iter().map(|s| clamped_inverse(s.value)).sum();
        if w.len() == 1 {
            Some(sum)
        } else {
            Some(sum / (w.len() - 1) as f64)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::space::Configuration;

    fn hist(values: &[f64]) -> AlgorithmHistory {
        let mut h = AlgorithmHistory::new();
        for (i, &v) in values.iter().enumerate() {
            h.record(i, Configuration::empty(), v);
        }
        h
    }

    #[test]
    fn best_tracks_minimum() {
        let h = hist(&[5.0, 3.0, 4.0, 3.5]);
        assert_eq!(h.best_value(), Some(3.0));
        assert_eq!(h.best().unwrap().iteration, 1);
    }

    #[test]
    fn best_prefers_earliest_on_tie() {
        let h = hist(&[3.0, 3.0, 3.0]);
        assert_eq!(h.best().unwrap().iteration, 0);
    }

    #[test]
    fn latest_window_clamps_to_available() {
        let h = hist(&[1.0, 2.0, 3.0]);
        assert_eq!(h.latest_window(16).len(), 3);
        assert_eq!(h.latest_window(2).len(), 2);
        assert_eq!(h.latest_window(2)[0].value, 2.0);
    }

    #[test]
    fn gradient_positive_when_improving() {
        // Runtime falling 4 -> 2 means inverse performance rising: G > 0.
        let h = hist(&[4.0, 2.0]);
        let g = h.window_gradient(16).unwrap();
        assert!((g - (0.5 - 0.25)).abs() < 1e-12);
    }

    #[test]
    fn gradient_negative_when_degrading() {
        let h = hist(&[2.0, 4.0]);
        assert!(h.window_gradient(16).unwrap() < 0.0);
    }

    #[test]
    fn gradient_zero_when_flat() {
        let h = hist(&[3.0, 3.0, 3.0, 3.0]);
        assert_eq!(h.window_gradient(16), Some(0.0));
    }

    #[test]
    fn gradient_uses_window_endpoints_only() {
        // Values inside the window do not matter, only the endpoints.
        let a = hist(&[4.0, 100.0, 2.0]);
        let b = hist(&[4.0, 0.001, 2.0]);
        assert_eq!(a.window_gradient(16), b.window_gradient(16));
    }

    #[test]
    fn gradient_undefined_for_single_sample() {
        assert_eq!(hist(&[2.0]).window_gradient(16), None);
        assert_eq!(hist(&[]).window_gradient(16), None);
    }

    #[test]
    fn auc_matches_definition() {
        let h = hist(&[2.0, 4.0, 2.0]);
        // (1/2 + 1/4 + 1/2) / 2 = 0.625
        assert!((h.window_auc(16).unwrap() - 0.625).abs() < 1e-12);
    }

    #[test]
    fn auc_single_sample_is_inverse_value() {
        let h = hist(&[4.0]);
        assert_eq!(h.window_auc(16), Some(0.25));
    }

    #[test]
    fn auc_respects_window() {
        let h = hist(&[1000.0, 2.0, 2.0]);
        // Window of 2 drops the slow first sample: (1/2 + 1/2) / 1 = 1.0.
        assert!((h.window_auc(2).unwrap() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn worst_tracks_maximum() {
        let h = hist(&[5.0, 30.0, 4.0]);
        assert_eq!(h.worst_value(), Some(30.0));
        assert_eq!(hist(&[]).worst_value(), None);
    }

    #[test]
    fn zero_sample_keeps_weights_finite() {
        // The degenerate case that used to poison the 1/m weights: a 0.0 ms
        // sample from a fast kernel under a coarse timer.
        let h = hist(&[2.0, 0.0]);
        let g = h.window_gradient(16).unwrap();
        assert!(g.is_finite());
        let auc = h.window_auc(16).unwrap();
        assert!(auc.is_finite() && auc > 0.0);
    }

    #[test]
    fn subnormal_and_extreme_samples_keep_weights_finite() {
        for stream in [
            &[5e-324, 5e-324][..],
            &[1e308, 1e308],
            &[0.0, 1e308, 5e-324, 1.0],
            &[-7.0, 3.0],
        ] {
            let h = hist(stream);
            assert!(h.window_gradient(16).unwrap().is_finite(), "{stream:?}");
            let auc = h.window_auc(16).unwrap();
            assert!(auc.is_finite() && auc > 0.0, "{stream:?}");
            assert!(h.best_value().unwrap() >= RESOLUTION_FLOOR_MS);
        }
    }

    #[test]
    fn record_clamps_into_representable_band() {
        let h = hist(&[0.0, 1e308, -4.0]);
        assert_eq!(h.samples()[0].value, RESOLUTION_FLOOR_MS);
        assert_eq!(h.samples()[1].value, MAX_MEASUREMENT_MS);
        assert_eq!(h.samples()[2].value, RESOLUTION_FLOOR_MS);
    }

    #[test]
    fn clamped_inverse_is_always_finite_and_positive() {
        for v in [0.0, -1.0, 5e-324, 1e-308, 1.0, 1e308, f64::MAX] {
            let inv = clamped_inverse(v);
            assert!(inv.is_finite() && inv > 0.0, "inverse of {v} was {inv}");
        }
    }
}
