//! Fault-tolerant measurement: outcomes, robust wrappers, fault injection.
//!
//! The paper's setting is *online* tuning — measurements come from live
//! production runs, where failed, hung, or degenerate samples are the norm,
//! not the exception: a fast SIMD kernel under a coarse timer legitimately
//! reads `0.0` ms, a builder can panic on a degenerate input, and a shared
//! machine can stall a measurement arbitrarily long. Willemsen et al.
//! (*Constraint-aware Optimization in Auto-Tuning*) observe that invalid and
//! failed configurations dominate real tuning spaces and need first-class
//! handling. This module provides it:
//!
//! * [`MeasureOutcome`] — the three-valued result of one measurement
//!   attempt: `Ok(value)`, `Failed(reason)` or `TimedOut`.
//! * [`RobustOptions`] / [`robust_call`] — run a measurement closure under a
//!   panic guard (`catch_unwind`), a wall-clock deadline, bounded
//!   retry-with-backoff, and optional median-of-k outlier rejection.
//!   Returned values are clamped to the timer-resolution floor
//!   [`RESOLUTION_FLOOR_MS`] so the `1/m` weight math of the phase-2
//!   strategies stays finite.
//! * [`batched_time_ms`] / [`robust_time`] — µs-scale timing. A call
//!   cheaper than one timer tick reads as `0.0` and the floor clamp then
//!   flattens *every* such configuration to the same value, so the tuner
//!   cannot rank them (a 1 µs and a 2 µs config look identical under a
//!   5 µs clock). Batched timing restores the signal: time `k`
//!   back-to-back calls — `k` grown adaptively until the batch spans
//!   [`BATCH_TARGET_QUANTA`] ticks of the *measured* resolution
//!   ([`timer_resolution_ms`]) — and divide by `k`, bounding per-call
//!   quantization error to ~1/[`BATCH_TARGET_QUANTA`].
//! * [`RobustMeasure`] — the same machinery as a [`FallibleMeasure`]
//!   adapter around any ordinary [`Measure`].
//! * [`FaultyMeasure`] / [`FaultPlan`] — a deterministic fault-injection
//!   decorator (NaN, zero, panic, latency spikes at a configured rate) used
//!   by the `experiments faults` study and the regression suite.
//!
//! The **penalty policy** (Section III's "never exclude an algorithm",
//! weakened just enough to survive production): a failed measurement is
//! reported to the strategies as [`failure_penalty`] — a finite value
//! [`FAILURE_PENALTY_FACTOR`]× the worst runtime observed so far — so a
//! failing algorithm is strongly deprioritized but keeps a strictly
//! positive selection probability and can recover.

use crate::measure::Measure;
use crate::rng::Rng;
use crate::space::Configuration;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::time::{Duration, Instant};

/// Minimum representable measurement, in milliseconds. One nanosecond —
/// below `Instant`'s practical resolution on every supported platform.
/// Values are clamped *up* to this floor before any `1/m` inversion, which
/// keeps every strategy weight finite even for `0.0` or subnormal samples.
pub const RESOLUTION_FLOOR_MS: f64 = 1e-6;

/// Maximum representable measurement, in milliseconds. Finite values above
/// this are clamped down so sums of inverse-floor penalties cannot reach
/// `inf` in downstream accumulation.
pub const MAX_MEASUREMENT_MS: f64 = 1e300;

/// Penalty multiplier applied to the worst observed runtime when a
/// measurement fails: large enough to strongly deprioritize the failing
/// algorithm, small enough that a handful of failures cannot push weights
/// into denormal territory.
pub const FAILURE_PENALTY_FACTOR: f64 = 4.0;

/// Penalty reported for a failure before *any* successful measurement
/// exists to scale from (milliseconds).
pub const DEFAULT_FAILURE_PENALTY_MS: f64 = 1e3;

/// Clamp a raw measurement into the representable band
/// `[RESOLUTION_FLOOR_MS, MAX_MEASUREMENT_MS]`. Non-finite input is the
/// caller's bug at this layer; use [`MeasureOutcome::from_value`] to
/// classify untrusted values first.
#[inline]
pub fn clamp_measurement(value: f64) -> f64 {
    value.clamp(RESOLUTION_FLOOR_MS, MAX_MEASUREMENT_MS)
}

/// Target span of one batched measurement, in ticks of the measured timer
/// resolution: [`batched_time_ms`] doubles the batch until `k` back-to-back
/// calls cover at least this many ticks, so the ±1-tick quantization error
/// on the whole batch is at most ~1/32 ≈ 3% of each per-call value.
pub const BATCH_TARGET_QUANTA: f64 = 32.0;

/// Upper bound on the adaptive batch size. A call so cheap that even this
/// many repetitions stay under the target span is timed as the whole batch
/// anyway — per-call resolution degrades gracefully instead of the loop
/// running away on a sub-nanosecond closure.
pub const MAX_BATCH: usize = 1024;

/// The measured resolution of `Instant` on this host, in milliseconds:
/// the smallest positive delta between consecutive clock reads, sampled
/// once and cached, floored at [`RESOLUTION_FLOOR_MS`]. This — not the
/// 1 ns representational floor — is the granularity below which two
/// single-shot measurements are indistinguishable, and therefore the
/// quantum [`batched_time_ms`] batches against and the minimum regression
/// [`crate::drift::DriftMonitor`] will treat as signal.
pub fn timer_resolution_ms() -> f64 {
    static RESOLUTION: std::sync::OnceLock<f64> = std::sync::OnceLock::new();
    *RESOLUTION.get_or_init(|| {
        let mut min_delta = f64::INFINITY;
        for _ in 0..8 {
            let start = Instant::now();
            let mut next = start;
            // Spin until the clock visibly advances (bounded, in case the
            // platform clock is frozen under emulation).
            for _ in 0..1_000_000 {
                next = Instant::now();
                if next > start {
                    break;
                }
            }
            let delta = (next - start).as_secs_f64() * 1e3;
            if delta > 0.0 {
                min_delta = min_delta.min(delta);
            }
        }
        if min_delta.is_finite() {
            min_delta.max(RESOLUTION_FLOOR_MS)
        } else {
            RESOLUTION_FLOOR_MS
        }
    })
}

/// Core of [`batched_time_ms`], parameterized over the clock so a
/// deliberately quantized clock can drive the regression tests: time `k`
/// back-to-back calls of `f`, growing `k` geometrically from 1 until the
/// batch spans [`BATCH_TARGET_QUANTA`] × `resolution_ms` (or `k` hits
/// [`MAX_BATCH`]), and return `(per_call_ms, k)`. `clock_ms` must be
/// monotonic; `resolution_ms` is its tick size.
pub fn batched_time_ms_with(
    resolution_ms: f64,
    clock_ms: &mut impl FnMut() -> f64,
    f: &mut impl FnMut(),
) -> (f64, usize) {
    let target_ms = resolution_ms * BATCH_TARGET_QUANTA;
    let mut batch = 1usize;
    loop {
        let t0 = clock_ms();
        for _ in 0..batch {
            f();
        }
        let elapsed = clock_ms() - t0;
        if elapsed >= target_ms || batch >= MAX_BATCH {
            return (elapsed / batch as f64, batch);
        }
        batch *= 2;
    }
}

/// Time `f`, batching adaptively when one call is cheaper than the clock
/// can resolve: a single call whose wall time already spans
/// [`BATCH_TARGET_QUANTA`] ticks of [`timer_resolution_ms`] is returned
/// as-is (batch size 1 — ms-scale workloads pay nothing), while cheaper
/// calls are re-run back-to-back and the batch wall time divided by the
/// batch size. Returns the per-call milliseconds.
///
/// This is the timing primitive µs-scale workloads must use on the tuning
/// path: under a coarse timer, single-shot values collapse onto the clock
/// grid (and then onto [`RESOLUTION_FLOOR_MS`]), erasing the very
/// differences the tuner exists to rank.
pub fn batched_time_ms(mut f: impl FnMut()) -> f64 {
    let resolution = timer_resolution_ms();
    let origin = Instant::now();
    let mut clock = || origin.elapsed().as_secs_f64() * 1e3;
    batched_time_ms_with(resolution, &mut clock, &mut f).0
}

/// [`robust_call`] over [`batched_time_ms`]: the full robust pipeline
/// (panic guard, deadline, retries, median-of-k) where each "attempt" is
/// one adaptively batched timing of `f` rather than one raw call. The
/// natural entry point for workloads whose single invocation is cheaper
/// than the timer tick.
pub fn robust_time(opts: &RobustOptions, mut f: impl FnMut()) -> MeasureOutcome {
    robust_call(opts, || batched_time_ms(&mut f))
}

/// The result of one measurement attempt.
#[derive(Debug, Clone, PartialEq)]
pub enum MeasureOutcome {
    /// A valid sample: finite, clamped to the representable band.
    Ok(f64),
    /// The measurement produced no usable value (panic, non-finite result,
    /// application-level error). The reason is for logs, not control flow.
    Failed(String),
    /// The measurement exceeded the configured wall-clock deadline.
    TimedOut,
}

impl MeasureOutcome {
    /// Classify an untrusted raw value: finite values are clamped into the
    /// representable band and become `Ok`; NaN and ±∞ become `Failed`.
    pub fn from_value(value: f64) -> MeasureOutcome {
        if value.is_finite() {
            MeasureOutcome::Ok(clamp_measurement(value))
        } else {
            MeasureOutcome::Failed(format!("non-finite measurement: {value}"))
        }
    }

    /// The sample value, if the measurement succeeded.
    pub fn ok(&self) -> Option<f64> {
        match self {
            MeasureOutcome::Ok(v) => Some(*v),
            _ => None,
        }
    }

    /// True if the measurement succeeded.
    pub fn is_ok(&self) -> bool {
        matches!(self, MeasureOutcome::Ok(_))
    }

    /// Short label for logs and result files.
    pub fn label(&self) -> &'static str {
        match self {
            MeasureOutcome::Ok(_) => "ok",
            MeasureOutcome::Failed(_) => "failed",
            MeasureOutcome::TimedOut => "timed-out",
        }
    }
}

/// A measurement function that can fail. The fallible analogue of
/// [`Measure`]; implemented by [`RobustMeasure`] and by closures returning
/// [`MeasureOutcome`].
pub trait FallibleMeasure {
    /// Measure `config` once, classifying any failure.
    fn measure(&mut self, config: &Configuration) -> MeasureOutcome;
}

impl<F: FnMut(&Configuration) -> MeasureOutcome> FallibleMeasure for F {
    fn measure(&mut self, config: &Configuration) -> MeasureOutcome {
        self(config)
    }
}

/// Knobs of the robust measurement pipeline. The default is the cheapest
/// safe configuration: panic guard + validation + floor clamp, no deadline,
/// no retries, single repetition.
#[derive(Debug, Clone)]
pub struct RobustOptions {
    /// Wall-clock deadline per attempt, in milliseconds. Enforcement is
    /// post-hoc: the attempt runs to completion, and its value is discarded
    /// as [`MeasureOutcome::TimedOut`] if it took longer. (In-process
    /// measurement cannot be preempted without moving it to a sacrificial
    /// thread; the tuner only needs the *sample* suppressed.)
    pub deadline_ms: Option<f64>,
    /// Additional attempts after a failed or timed-out one.
    pub retries: usize,
    /// Sleep before retry `n` is `backoff * 2^(n-1)`. Zero (default)
    /// disables sleeping, which is what tuning loops embedded in a serving
    /// path want — the next iteration is the natural backoff.
    pub backoff: Duration,
    /// Take the median of this many successful repetitions (outlier
    /// rejection). `1` disables repetition.
    pub repetitions: usize,
}

impl Default for RobustOptions {
    fn default() -> Self {
        RobustOptions {
            deadline_ms: None,
            retries: 0,
            backoff: Duration::ZERO,
            repetitions: 1,
        }
    }
}

impl RobustOptions {
    /// Set the per-attempt deadline in milliseconds.
    pub fn with_deadline_ms(mut self, ms: f64) -> Self {
        assert!(ms > 0.0, "deadline must be positive");
        self.deadline_ms = Some(ms);
        self
    }

    /// Set the retry count and exponential-backoff base.
    pub fn with_retries(mut self, retries: usize, backoff: Duration) -> Self {
        self.retries = retries;
        self.backoff = backoff;
        self
    }

    /// Set the median-of-`k` repetition count.
    pub fn with_repetitions(mut self, k: usize) -> Self {
        assert!(k >= 1, "need at least one repetition");
        self.repetitions = k;
        self
    }
}

/// Render a panic payload into a log-friendly reason string.
fn panic_reason(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        format!("panic: {s}")
    } else if let Some(s) = payload.downcast_ref::<String>() {
        format!("panic: {s}")
    } else {
        "panic: <non-string payload>".to_string()
    }
}

/// One guarded attempt: catch panics, enforce the deadline, classify the
/// value.
fn guarded_attempt(opts: &RobustOptions, f: &mut impl FnMut() -> f64) -> MeasureOutcome {
    let start = Instant::now();
    let result = catch_unwind(AssertUnwindSafe(&mut *f));
    let elapsed_ms = start.elapsed().as_secs_f64() * 1e3;
    match result {
        Err(payload) => MeasureOutcome::Failed(panic_reason(payload)),
        Ok(value) => {
            if opts.deadline_ms.is_some_and(|d| elapsed_ms > d) {
                MeasureOutcome::TimedOut
            } else {
                MeasureOutcome::from_value(value)
            }
        }
    }
}

/// Run one attempt with retry/backoff until it succeeds or the retry
/// budget is exhausted.
fn attempt_with_retries(opts: &RobustOptions, f: &mut impl FnMut() -> f64) -> MeasureOutcome {
    let mut outcome = guarded_attempt(opts, f);
    let mut backoff = opts.backoff;
    for _ in 0..opts.retries {
        if outcome.is_ok() {
            break;
        }
        if !backoff.is_zero() {
            std::thread::sleep(backoff);
            backoff *= 2;
        }
        outcome = guarded_attempt(opts, f);
    }
    outcome
}

/// Run a measurement closure through the full robust pipeline: panic guard,
/// deadline, retry/backoff, median-of-k repetitions, resolution-floor
/// clamping. This is the closure-level primitive; [`RobustMeasure`] adapts
/// it to the [`Measure`]/[`FallibleMeasure`] traits and
/// [`crate::two_phase::TwoPhaseTuner::step_fallible`] is the natural
/// consumer.
pub fn robust_call(opts: &RobustOptions, mut f: impl FnMut() -> f64) -> MeasureOutcome {
    if opts.repetitions <= 1 {
        return attempt_with_retries(opts, &mut f);
    }
    let mut values = Vec::with_capacity(opts.repetitions);
    let mut last_failure = None;
    for _ in 0..opts.repetitions {
        match attempt_with_retries(opts, &mut f) {
            MeasureOutcome::Ok(v) => values.push(v),
            other => last_failure = Some(other),
        }
    }
    if values.is_empty() {
        last_failure.expect("no successes implies a recorded failure")
    } else {
        MeasureOutcome::Ok(crate::stats::median(&values))
    }
}

/// [`FallibleMeasure`] adapter: any plain [`Measure`] (including ones that
/// panic or return garbage) becomes a total function into
/// [`MeasureOutcome`].
pub struct RobustMeasure<M> {
    inner: M,
    opts: RobustOptions,
}

impl<M: Measure> RobustMeasure<M> {
    /// Wrap `inner` with the given pipeline options.
    pub fn new(inner: M, opts: RobustOptions) -> Self {
        RobustMeasure { inner, opts }
    }

    /// The pipeline options in effect.
    pub fn options(&self) -> &RobustOptions {
        &self.opts
    }

    /// Unwrap, returning the inner measure.
    pub fn into_inner(self) -> M {
        self.inner
    }
}

impl<M: Measure> FallibleMeasure for RobustMeasure<M> {
    fn measure(&mut self, config: &Configuration) -> MeasureOutcome {
        let inner = &mut self.inner;
        robust_call(&self.opts, || inner.measure(config))
    }
}

/// The penalty reported in place of a failed measurement:
/// [`FAILURE_PENALTY_FACTOR`] × the worst runtime observed across all
/// algorithms, or [`DEFAULT_FAILURE_PENALTY_MS`] before any observation.
/// Always finite and within the representable band, so it can be recorded
/// as a regular (bad) sample — deprioritizing without excluding.
pub fn failure_penalty(histories: &[crate::history::AlgorithmHistory]) -> f64 {
    let worst = histories
        .iter()
        .filter_map(|h| h.worst_value())
        .fold(f64::NEG_INFINITY, f64::max);
    if worst.is_finite() {
        clamp_measurement(worst * FAILURE_PENALTY_FACTOR)
    } else {
        DEFAULT_FAILURE_PENALTY_MS
    }
}

// ------------------------------------------------------------------
// Fault injection
// ------------------------------------------------------------------

/// The kinds of measurement faults seen in production tuning loops.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// The measurement reads NaN (broken timer arithmetic, 0/0 rates).
    Nan,
    /// The measurement reads exactly `0.0` ms (fast kernel + coarse timer).
    Zero,
    /// The measured code panics.
    Panic,
    /// A latency spike: the true value multiplied by the plan's
    /// `spike_factor` (interference from co-located work).
    Spike,
}

impl FaultKind {
    /// Every fault kind, in declaration order.
    pub const ALL: [FaultKind; 4] = [
        FaultKind::Nan,
        FaultKind::Zero,
        FaultKind::Panic,
        FaultKind::Spike,
    ];

    /// Short label for logs and result files.
    pub fn label(self) -> &'static str {
        match self {
            FaultKind::Nan => "nan",
            FaultKind::Zero => "zero",
            FaultKind::Panic => "panic",
            FaultKind::Spike => "spike",
        }
    }
}

/// Deterministic fault schedule: each measurement is independently faulty
/// with probability `rate`, the kind drawn uniformly from `kinds`.
#[derive(Debug, Clone)]
pub struct FaultPlan {
    /// Per-measurement fault probability.
    pub rate: f64,
    /// The fault kinds to draw from (uniformly).
    pub kinds: Vec<FaultKind>,
    /// Multiplier applied to the true value for [`FaultKind::Spike`].
    pub spike_factor: f64,
}

impl FaultPlan {
    /// All four fault kinds at the given rate, 20× spikes.
    pub fn all(rate: f64) -> Self {
        assert!((0.0..=1.0).contains(&rate), "rate must be a probability");
        FaultPlan {
            rate,
            kinds: FaultKind::ALL.to_vec(),
            spike_factor: 20.0,
        }
    }

    /// Restrict the plan to the given fault kinds.
    pub fn with_kinds(mut self, kinds: Vec<FaultKind>) -> Self {
        assert!(!kinds.is_empty(), "need at least one fault kind");
        self.kinds = kinds;
        self
    }
}

/// Tally of injected faults, for reporting recovery rates.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FaultCounts {
    /// NaN measurements injected.
    pub nan: usize,
    /// Zero measurements injected.
    pub zero: usize,
    /// Panics injected.
    pub panic: usize,
    /// Latency spikes injected.
    pub spike: usize,
}

impl FaultCounts {
    /// Total injected faults of all kinds.
    pub fn total(&self) -> usize {
        self.nan + self.zero + self.panic + self.spike
    }
}

/// Fault-injecting [`Measure`] decorator. Sits *under* [`RobustMeasure`]
/// (or [`robust_call`]) in tests and the `experiments faults` study: the
/// decorated measure misbehaves exactly like a production one would, and
/// the robust layer above must contain it.
pub struct FaultyMeasure<M> {
    inner: M,
    plan: FaultPlan,
    rng: Rng,
    counts: FaultCounts,
}

impl<M: Measure> FaultyMeasure<M> {
    /// Wrap `inner` so it misbehaves per `plan`, deterministically from
    /// `seed`.
    pub fn new(inner: M, plan: FaultPlan, seed: u64) -> Self {
        FaultyMeasure {
            inner,
            plan,
            rng: Rng::new(seed),
            counts: FaultCounts::default(),
        }
    }

    /// How many faults of each kind have been injected so far.
    pub fn counts(&self) -> FaultCounts {
        self.counts
    }

    /// Decide the fault (if any) for the next measurement and tally it.
    fn next_fault(&mut self) -> Option<FaultKind> {
        if !self.rng.next_bool(self.plan.rate) {
            return None;
        }
        let kind = self.plan.kinds[self.rng.pick_index(self.plan.kinds.len())];
        match kind {
            FaultKind::Nan => self.counts.nan += 1,
            FaultKind::Zero => self.counts.zero += 1,
            FaultKind::Panic => self.counts.panic += 1,
            FaultKind::Spike => self.counts.spike += 1,
        }
        Some(kind)
    }
}

impl<M: Measure> Measure for FaultyMeasure<M> {
    fn measure(&mut self, config: &Configuration) -> f64 {
        match self.next_fault() {
            None => self.inner.measure(config),
            Some(FaultKind::Nan) => f64::NAN,
            Some(FaultKind::Zero) => 0.0,
            Some(FaultKind::Panic) => panic!("injected measurement fault"),
            Some(FaultKind::Spike) => self.inner.measure(config) * self.plan.spike_factor,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::space::Configuration;

    fn cfg() -> Configuration {
        Configuration::empty()
    }

    #[test]
    fn from_value_classifies() {
        assert_eq!(MeasureOutcome::from_value(2.5), MeasureOutcome::Ok(2.5));
        assert_eq!(
            MeasureOutcome::from_value(0.0),
            MeasureOutcome::Ok(RESOLUTION_FLOOR_MS)
        );
        assert_eq!(
            MeasureOutcome::from_value(-3.0),
            MeasureOutcome::Ok(RESOLUTION_FLOOR_MS)
        );
        assert_eq!(
            MeasureOutcome::from_value(1e308),
            MeasureOutcome::Ok(MAX_MEASUREMENT_MS)
        );
        assert!(!MeasureOutcome::from_value(f64::NAN).is_ok());
        assert!(!MeasureOutcome::from_value(f64::INFINITY).is_ok());
    }

    #[test]
    fn timer_resolution_is_sane_and_cached() {
        let r = timer_resolution_ms();
        assert!(r >= RESOLUTION_FLOOR_MS, "resolution {r} below the floor");
        assert!(r < 10.0, "resolution {r} ms is not a usable clock");
        assert_eq!(r, timer_resolution_ms(), "must be cached");
    }

    /// Regression for the µs-scale flattening bug: under a coarse timer,
    /// single-shot timing reads 0 for any sub-tick call and the floor
    /// clamp then maps *both* of two configs 2× apart at ~1µs onto
    /// RESOLUTION_FLOOR_MS — indistinguishable. Batched timing must still
    /// tell them apart.
    #[test]
    fn batched_timing_distinguishes_sub_tick_configs() {
        use std::cell::Cell;
        const QUANTUM_NS: u64 = 5_000; // a 5µs clock: coarser than the work

        // Pre-fix pipeline: one call, one quantized read, floor clamp.
        let single_shot = |cost_ns: u64| {
            let now = Cell::new(0u64);
            let read = || ((now.get() / QUANTUM_NS) * QUANTUM_NS) as f64 * 1e-6;
            let t0 = read();
            now.set(now.get() + cost_ns);
            clamp_measurement(read() - t0)
        };
        let a = single_shot(1_000); // config A: 1µs
        let b = single_shot(2_000); // config B: 2µs, twice as slow
        assert_eq!(a, RESOLUTION_FLOOR_MS);
        assert_eq!(
            a, b,
            "single-shot timing flattens both configs to the floor — the bug"
        );

        // Fixed pipeline: adaptive batching against the same quantized clock.
        let batched = |cost_ns: u64| {
            let now = Cell::new(0u64);
            let mut clock = || ((now.get() / QUANTUM_NS) * QUANTUM_NS) as f64 * 1e-6;
            let mut f = || now.set(now.get() + cost_ns);
            batched_time_ms_with(QUANTUM_NS as f64 * 1e-6, &mut clock, &mut f)
        };
        let (a_ms, a_batch) = batched(1_000);
        let (b_ms, b_batch) = batched(2_000);
        assert!(a_batch > 1 && b_batch > 1, "sub-tick calls must batch");
        let ratio = b_ms / a_ms;
        assert!(
            (1.8..=2.2).contains(&ratio),
            "batched timing must recover the 2x separation, got {ratio} \
             ({a_ms} ms @ batch {a_batch} vs {b_ms} ms @ batch {b_batch})"
        );
    }

    #[test]
    fn batched_timing_leaves_slow_calls_unbatched() {
        use std::cell::Cell;
        let now = Cell::new(0u64);
        let mut clock = || now.get() as f64 * 1e-6;
        // One call already spans far more than 32 ticks of a 1ns clock.
        let mut f = || now.set(now.get() + 3_000_000); // 3ms
        let (ms, batch) = batched_time_ms_with(1e-6, &mut clock, &mut f);
        assert_eq!(batch, 1, "ms-scale calls must not pay batching");
        assert!((ms - 3.0).abs() < 1e-9);
    }

    #[test]
    fn batched_timing_caps_runaway_batches() {
        use std::cell::Cell;
        let now = Cell::new(0u64);
        let mut clock = || now.get() as f64 * 1e-6;
        let mut f = || (); // free call: never reaches the target span
        let (ms, batch) = batched_time_ms_with(1.0, &mut clock, &mut f);
        assert_eq!(batch, MAX_BATCH);
        assert_eq!(ms, 0.0, "caller clamps via MeasureOutcome::from_value");
    }

    #[test]
    fn robust_time_times_real_work() {
        let mut acc = 0u64;
        let out = robust_time(&RobustOptions::default(), || {
            for i in 0..64u64 {
                acc = acc.wrapping_add(std::hint::black_box(i * i));
            }
        });
        let v = out.ok().expect("timing real work succeeds");
        assert!((RESOLUTION_FLOOR_MS..1.0).contains(&v), "per-call ms: {v}");
        std::hint::black_box(acc);
    }

    #[test]
    fn robust_call_passes_clean_values() {
        let out = robust_call(&RobustOptions::default(), || 7.25);
        assert_eq!(out, MeasureOutcome::Ok(7.25));
    }

    #[test]
    fn robust_call_clamps_zero_to_floor() {
        let out = robust_call(&RobustOptions::default(), || 0.0);
        assert_eq!(out, MeasureOutcome::Ok(RESOLUTION_FLOOR_MS));
    }

    #[test]
    fn robust_call_converts_panic_to_failure() {
        let out = robust_call(&RobustOptions::default(), || -> f64 {
            panic!("kernel exploded")
        });
        match out {
            MeasureOutcome::Failed(reason) => assert!(reason.contains("kernel exploded")),
            other => panic!("expected Failed, got {other:?}"),
        }
    }

    #[test]
    fn robust_call_converts_nan_to_failure() {
        let out = robust_call(&RobustOptions::default(), || f64::NAN);
        assert!(matches!(out, MeasureOutcome::Failed(_)));
    }

    #[test]
    fn deadline_discards_slow_samples() {
        let opts = RobustOptions::default().with_deadline_ms(5.0);
        let out = robust_call(&opts, || {
            std::thread::sleep(Duration::from_millis(20));
            1.0
        });
        assert_eq!(out, MeasureOutcome::TimedOut);
    }

    #[test]
    fn retries_recover_transient_failures() {
        let mut calls = 0;
        let opts = RobustOptions::default().with_retries(2, Duration::ZERO);
        let out = robust_call(&opts, || {
            calls += 1;
            if calls < 3 {
                panic!("transient")
            }
            4.0
        });
        assert_eq!(out, MeasureOutcome::Ok(4.0));
        assert_eq!(calls, 3);
    }

    #[test]
    fn retries_exhaust_to_last_failure() {
        let opts = RobustOptions::default().with_retries(2, Duration::ZERO);
        let out = robust_call(&opts, || f64::NAN);
        assert!(matches!(out, MeasureOutcome::Failed(_)));
    }

    #[test]
    fn median_of_k_rejects_outliers() {
        let mut calls = 0;
        let opts = RobustOptions::default().with_repetitions(3);
        let out = robust_call(&opts, || {
            calls += 1;
            if calls == 2 {
                500.0
            } else {
                10.0
            }
        });
        assert_eq!(out, MeasureOutcome::Ok(10.0));
    }

    #[test]
    fn median_of_k_uses_successes_only() {
        let mut calls = 0;
        let opts = RobustOptions::default().with_repetitions(3);
        let out = robust_call(&opts, || {
            calls += 1;
            if calls == 1 {
                f64::NAN
            } else {
                6.0
            }
        });
        assert_eq!(out, MeasureOutcome::Ok(6.0));
    }

    #[test]
    fn robust_measure_adapts_plain_measures() {
        let mut m = RobustMeasure::new(|_: &Configuration| 3.0, RobustOptions::default());
        assert_eq!(m.measure(&cfg()), MeasureOutcome::Ok(3.0));
    }

    #[test]
    fn failure_penalty_scales_worst_observed() {
        let mut h = crate::history::AlgorithmHistory::new();
        h.record(0, cfg(), 10.0);
        h.record(1, cfg(), 25.0);
        let hs = [h, crate::history::AlgorithmHistory::new()];
        assert_eq!(failure_penalty(&hs), 100.0);
    }

    #[test]
    fn failure_penalty_default_without_samples() {
        let hs = [crate::history::AlgorithmHistory::new()];
        assert_eq!(failure_penalty(&hs), DEFAULT_FAILURE_PENALTY_MS);
    }

    #[test]
    fn faulty_measure_injects_at_the_configured_rate() {
        let mut m = FaultyMeasure::new(
            |_: &Configuration| 5.0,
            FaultPlan::all(0.25).with_kinds(vec![FaultKind::Zero, FaultKind::Nan]),
            11,
        );
        let n = 4000;
        for _ in 0..n {
            let _ = m.measure(&cfg());
        }
        let rate = m.counts().total() as f64 / n as f64;
        assert!((rate - 0.25).abs() < 0.03, "observed fault rate {rate}");
        assert_eq!(m.counts().panic, 0);
        assert_eq!(m.counts().spike, 0);
    }

    #[test]
    fn faulty_under_robust_never_escapes() {
        let faulty = FaultyMeasure::new(|_: &Configuration| 5.0, FaultPlan::all(0.5), 13);
        let mut robust = RobustMeasure::new(faulty, RobustOptions::default());
        let mut oks = 0;
        let mut fails = 0;
        for _ in 0..500 {
            match robust.measure(&cfg()) {
                MeasureOutcome::Ok(v) => {
                    assert!(v.is_finite() && v >= RESOLUTION_FLOOR_MS);
                    oks += 1;
                }
                _ => fails += 1,
            }
        }
        assert!(oks > 0 && fails > 0, "both paths must be exercised");
    }
}
