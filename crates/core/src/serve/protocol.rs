//! The wire protocol: length-prefixed binary frames.
//!
//! Every frame is `[u32 LE length][u8 opcode][payload]`, where `length`
//! counts the opcode byte plus the payload (so an empty-payload frame has
//! `length == 1`). Responses reuse the request's opcode; server-detected
//! failures come back as an [`OP_ERR`] frame whose payload is a UTF-8
//! message. The format is deliberately trivial: parsing a frame is three
//! bounds checks and zero allocations ([`parse_frame`] returns ranges into
//! the caller's buffer), and writing one is a reserve + patch
//! ([`begin_frame`]/[`end_frame`]) so request handlers can serialize
//! payloads straight into the connection's output buffer.

/// Liveness probe; the payload is echoed back verbatim.
pub const OP_PING: u8 = 0x01;
/// String-search request (application-defined payload; see EXPERIMENTS.md).
pub const OP_MATCH: u8 = 0x02;
/// Ray-trace render request (application-defined payload).
pub const OP_RENDER: u8 = 0x03;
/// Server statistics; the response payload is a JSON object.
pub const OP_STATS: u8 = 0x04;
/// Subscribe this connection to the live telemetry stream.
pub const OP_SUBSCRIBE: u8 = 0x05;
/// Server→client push: a chunk of JSONL telemetry. Concatenating the
/// payloads of consecutive `OP_EVENTS` frames yields a byte-exact JSONL
/// document in the [`crate::telemetry::export`] schema.
pub const OP_EVENTS: u8 = 0x06;
/// Graceful shutdown: the server acks, drains all connections, and stops.
pub const OP_QUIT: u8 = 0x07;
/// Switch the served workload mid-run (application-defined payload) —
/// the hook drift schedules use to shift the workload under the tuners.
pub const OP_MORPH: u8 = 0x08;
/// Small-array sort request dispatched through the size-classed smallsort
/// sites (application-defined payload; see EXPERIMENTS.md).
pub const OP_SORT: u8 = 0x09;
/// Server→client error report; payload is a UTF-8 message.
pub const OP_ERR: u8 = 0x7F;

/// Frame length prefix size in bytes.
pub const HEADER_LEN: usize = 4;

/// Hard cap on `length` (opcode + payload): one frame may not exceed
/// 16 MiB. Anything larger is a protocol error and the connection is
/// dropped — it is almost certainly not speaking this protocol.
pub const MAX_FRAME_LEN: usize = 16 << 20;

/// A parsed frame: the opcode and the payload's byte range within the
/// input buffer (borrowed, not copied).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Frame {
    /// The frame opcode.
    pub op: u8,
    /// Payload range within the buffer passed to [`parse_frame`].
    pub payload: (usize, usize),
    /// Total encoded size: header + opcode + payload.
    pub wire_len: usize,
}

/// Outcome of [`parse_frame`] on a receive buffer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Parse {
    /// Not enough bytes yet; read more.
    Incomplete,
    /// One complete frame at the front of the buffer.
    Ready(Frame),
    /// The length prefix is invalid (zero or over [`MAX_FRAME_LEN`]).
    Malformed,
}

/// Try to parse one frame from the front of `buf` without copying.
pub fn parse_frame(buf: &[u8]) -> Parse {
    if buf.len() < HEADER_LEN {
        return Parse::Incomplete;
    }
    let len = u32::from_le_bytes([buf[0], buf[1], buf[2], buf[3]]) as usize;
    if len == 0 || len > MAX_FRAME_LEN {
        return Parse::Malformed;
    }
    if buf.len() < HEADER_LEN + len {
        return Parse::Incomplete;
    }
    Parse::Ready(Frame {
        op: buf[HEADER_LEN],
        payload: (HEADER_LEN + 1, HEADER_LEN + len),
        wire_len: HEADER_LEN + len,
    })
}

/// Append a complete frame with the given payload.
pub fn write_frame(out: &mut Vec<u8>, op: u8, payload: &[u8]) {
    let len = (payload.len() + 1) as u32;
    out.extend_from_slice(&len.to_le_bytes());
    out.push(op);
    out.extend_from_slice(payload);
}

/// Start a frame whose payload will be serialized in place: writes a
/// placeholder header plus the opcode and returns a mark for
/// [`end_frame`]. Everything the caller appends to `out` between the two
/// calls becomes the payload — no intermediate buffer.
pub fn begin_frame(out: &mut Vec<u8>, op: u8) -> usize {
    let mark = out.len();
    out.extend_from_slice(&[0, 0, 0, 0, op]);
    mark
}

/// Finish a frame started by [`begin_frame`], patching the length prefix.
pub fn end_frame(out: &mut [u8], mark: usize) {
    let len = (out.len() - mark - HEADER_LEN) as u32;
    out[mark..mark + HEADER_LEN].copy_from_slice(&len.to_le_bytes());
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frame_round_trips() {
        let mut buf = Vec::new();
        write_frame(&mut buf, OP_PING, b"hello");
        match parse_frame(&buf) {
            Parse::Ready(f) => {
                assert_eq!(f.op, OP_PING);
                assert_eq!(&buf[f.payload.0..f.payload.1], b"hello");
                assert_eq!(f.wire_len, buf.len());
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn begin_end_matches_write() {
        let mut a = Vec::new();
        write_frame(&mut a, OP_STATS, b"{\"x\":1}");
        let mut b = Vec::new();
        let mark = begin_frame(&mut b, OP_STATS);
        b.extend_from_slice(b"{\"x\":1}");
        end_frame(&mut b, mark);
        assert_eq!(a, b);
    }

    #[test]
    fn partial_frames_are_incomplete() {
        let mut buf = Vec::new();
        write_frame(&mut buf, OP_MATCH, b"pattern");
        for cut in 0..buf.len() {
            assert_eq!(parse_frame(&buf[..cut]), Parse::Incomplete, "cut={cut}");
        }
    }

    #[test]
    fn empty_payload_is_legal() {
        let mut buf = Vec::new();
        write_frame(&mut buf, OP_QUIT, b"");
        match parse_frame(&buf) {
            Parse::Ready(f) => assert_eq!(f.payload.0, f.payload.1),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn zero_and_oversized_lengths_are_malformed() {
        assert_eq!(parse_frame(&[0, 0, 0, 0, 9]), Parse::Malformed);
        let huge = ((MAX_FRAME_LEN + 1) as u32).to_le_bytes();
        assert_eq!(
            parse_frame(&[huge[0], huge[1], huge[2], huge[3], 9]),
            Parse::Malformed
        );
    }

    #[test]
    fn back_to_back_frames_parse_in_sequence() {
        let mut buf = Vec::new();
        write_frame(&mut buf, OP_PING, b"a");
        write_frame(&mut buf, OP_MATCH, b"bb");
        let f1 = match parse_frame(&buf) {
            Parse::Ready(f) => f,
            other => panic!("{other:?}"),
        };
        assert_eq!(f1.op, OP_PING);
        let rest = &buf[f1.wire_len..];
        let f2 = match parse_frame(rest) {
            Parse::Ready(f) => f,
            other => panic!("{other:?}"),
        };
        assert_eq!(f2.op, OP_MATCH);
        assert_eq!(&rest[f2.payload.0..f2.payload.1], b"bb");
    }
}
