//! The serving poll loop: nonblocking accept/read/dispatch/flush over
//! plain `std::net`, engineered so the steady-state per-request cost is a
//! frame parse, the site-dispatched work itself, and an amortized share
//! of one `read`/`write` syscall per pipelined batch.

use super::protocol::{self, Frame, Parse};
use super::{LatencyHist, RequestHandler};
use crate::json::Json;
use crate::telemetry::{self, Event};
use std::io::{ErrorKind, Read, Write};
use std::net::{TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Knobs for [`serve`]. `Default` is tuned for the loopback benchmarks.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Connections beyond this are accepted and immediately closed.
    pub max_connections: usize,
    /// Sleep when a full poll iteration moved no bytes (keeps an idle
    /// server off the CPU without adding meaningful tail latency).
    pub idle_sleep: Duration,
    /// How long the graceful-shutdown drain may spend flushing pending
    /// response bytes before connections are dropped.
    pub drain_timeout: Duration,
    /// Disconnect a connection whose un-flushed output exceeds this
    /// (a subscriber that stopped reading must not hold the server's
    /// memory hostage).
    pub max_backlog: usize,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            max_connections: 64,
            idle_sleep: Duration::from_micros(100),
            drain_timeout: Duration::from_secs(2),
            max_backlog: 64 << 20,
        }
    }
}

/// Cooperative stop signal for [`serve`]: cloneable, settable from any
/// thread (or from the wire via `OP_QUIT`).
#[derive(Clone, Default)]
pub struct StopFlag(Arc<AtomicBool>);

impl StopFlag {
    /// A fresh, unset flag.
    pub fn new() -> Self {
        Self::default()
    }

    /// Ask the server to shut down gracefully.
    pub fn stop(&self) {
        self.0.store(true, Ordering::Release);
    }

    /// Has a shutdown been requested?
    pub fn is_stopped(&self) -> bool {
        self.0.load(Ordering::Acquire)
    }
}

/// What a completed [`serve`] run did — the substance of
/// `results/serve.json`.
#[derive(Debug, Clone, Default)]
pub struct ServeReport {
    /// Frames dispatched (all opcodes, including pings and stats).
    pub requests: u64,
    /// Frames delegated to the [`RequestHandler`] (match/render/morph).
    pub app_requests: u64,
    /// Error frames sent (malformed input, unknown opcodes, handler
    /// rejections).
    pub errors: u64,
    /// Connections accepted over the run.
    pub connections: u64,
    /// Bytes read off sockets.
    pub bytes_in: u64,
    /// Bytes written to sockets.
    pub bytes_out: u64,
    /// Telemetry events streamed to live subscribers.
    pub events_streamed: u64,
    /// Wall-clock seconds from first poll to shutdown.
    pub elapsed_s: f64,
    /// Requests per second over the whole run.
    pub throughput_rps: f64,
    /// Median per-request service time (dispatch entry to response
    /// serialized), microseconds.
    pub p50_us: f64,
    /// 99th-percentile service time, microseconds.
    pub p99_us: f64,
    /// Worst service time, microseconds.
    pub max_us: f64,
}

impl ServeReport {
    /// The report as a JSON object (the `"server"` section of
    /// `results/serve.json`).
    pub fn to_json(&self) -> Json {
        Json::obj(vec![
            ("requests", Json::Num(self.requests as f64)),
            ("app_requests", Json::Num(self.app_requests as f64)),
            ("errors", Json::Num(self.errors as f64)),
            ("connections", Json::Num(self.connections as f64)),
            ("bytes_in", Json::Num(self.bytes_in as f64)),
            ("bytes_out", Json::Num(self.bytes_out as f64)),
            ("events_streamed", Json::Num(self.events_streamed as f64)),
            ("elapsed_s", Json::Num(self.elapsed_s)),
            ("throughput_rps", Json::Num(self.throughput_rps)),
            ("p50_us", Json::Num(self.p50_us)),
            ("p99_us", Json::Num(self.p99_us)),
            ("max_us", Json::Num(self.max_us)),
        ])
    }
}

/// Read-buffer chunk size: one `read` call tries to pull this much.
const READ_CHUNK: usize = 64 << 10;

struct Conn {
    stream: TcpStream,
    /// Reused receive buffer; `rlen` bytes valid, parsed frames are
    /// compacted away once per read batch.
    rbuf: Vec<u8>,
    rlen: usize,
    /// Reused send buffer; `wpos..` is pending. Cleared (capacity kept)
    /// once fully flushed.
    wbuf: Vec<u8>,
    wpos: usize,
    /// Live telemetry subscriber (binary `OP_EVENTS` frames)?
    subscribed: bool,
    /// Detected as HTTP; `http_stream` marks the ndjson `/stream` route.
    http: bool,
    http_stream: bool,
    /// Close once `wbuf` drains.
    close_after_flush: bool,
    dead: bool,
}

impl Conn {
    fn new(stream: TcpStream) -> Self {
        Conn {
            stream,
            rbuf: Vec::new(),
            rlen: 0,
            wbuf: Vec::new(),
            wpos: 0,
            subscribed: false,
            http: false,
            http_stream: false,
            close_after_flush: false,
            dead: false,
        }
    }

    /// Nonblocking read into the reused buffer; returns bytes read.
    fn fill(&mut self) -> usize {
        let mut total = 0;
        loop {
            if self.rbuf.len() < self.rlen + READ_CHUNK {
                self.rbuf.resize(self.rlen + READ_CHUNK, 0);
            }
            match self.stream.read(&mut self.rbuf[self.rlen..]) {
                Ok(0) => {
                    // Peer closed its write side; flush what we owe, then go.
                    self.close_after_flush = true;
                    return total;
                }
                Ok(n) => {
                    self.rlen += n;
                    total += n;
                    if self.rlen < self.rbuf.len() {
                        return total; // short read: socket drained
                    }
                }
                Err(e) if e.kind() == ErrorKind::WouldBlock => return total,
                Err(e) if e.kind() == ErrorKind::Interrupted => continue,
                Err(_) => {
                    self.dead = true;
                    return total;
                }
            }
        }
    }

    /// Flush pending output; returns bytes written.
    fn flush(&mut self) -> usize {
        let mut total = 0;
        while self.wpos < self.wbuf.len() {
            match self.stream.write(&self.wbuf[self.wpos..]) {
                Ok(0) => {
                    self.dead = true;
                    break;
                }
                Ok(n) => {
                    self.wpos += n;
                    total += n;
                }
                Err(e) if e.kind() == ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == ErrorKind::Interrupted => continue,
                Err(_) => {
                    self.dead = true;
                    break;
                }
            }
        }
        if self.wpos == self.wbuf.len() {
            self.wbuf.clear();
            self.wpos = 0;
            if self.close_after_flush {
                self.dead = true;
            }
        }
        total
    }
}

/// Run the serving loop until `stop` is raised (externally or by an
/// `OP_QUIT` frame). The listener is switched to nonblocking; everything
/// — accepts, reads, request dispatch through `handler`, telemetry
/// streaming, writes — happens on the calling thread. Returns the run's
/// [`ServeReport`] after the graceful drain.
pub fn serve(
    listener: TcpListener,
    handler: &mut dyn RequestHandler,
    config: &ServeConfig,
    stop: &StopFlag,
) -> std::io::Result<ServeReport> {
    listener.set_nonblocking(true)?;
    let start = Instant::now();
    let mut conns: Vec<Conn> = Vec::new();
    let mut report = ServeReport::default();
    let mut hist = LatencyHist::new();
    // Telemetry-streaming scratch, reused across the whole run.
    let mut ev_scratch: Vec<Event> = Vec::new();
    let mut jsonl_scratch = String::new();

    while !stop.is_stopped() {
        let mut moved = 0usize;

        // Accept everything pending.
        loop {
            match listener.accept() {
                Ok((stream, _)) => {
                    moved += 1;
                    if conns.len() >= config.max_connections {
                        drop(stream); // at capacity: refuse by closing
                        continue;
                    }
                    let _ = stream.set_nodelay(true);
                    let _ = stream.set_nonblocking(true);
                    conns.push(Conn::new(stream));
                    report.connections += 1;
                }
                Err(e) if e.kind() == ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == ErrorKind::Interrupted => continue,
                Err(_) => break,
            }
        }

        // Read + dispatch per connection.
        for conn in conns.iter_mut() {
            if conn.dead {
                continue;
            }
            let got = conn.fill();
            moved += got;
            report.bytes_in += got as u64;
            if conn.rlen == 0 || conn.dead {
                continue;
            }
            if !conn.http && looks_like_http(&conn.rbuf[..conn.rlen]) {
                conn.http = true;
            }
            if conn.http {
                handle_http(conn, handler, &hist, &mut report, start);
            } else {
                dispatch_frames(conn, handler, &mut hist, &mut report, start, stop);
            }
        }

        // Stream freshly recorded telemetry to subscribers (only drained
        // while someone is listening, so an unsubscribed server keeps its
        // ring intact for the shutdown export).
        if conns
            .iter()
            .any(|c| !c.dead && (c.subscribed || c.http_stream))
        {
            jsonl_scratch.clear();
            let n = telemetry::drain_jsonl_into(&mut ev_scratch, &mut jsonl_scratch);
            if n > 0 {
                report.events_streamed += n as u64;
                for conn in conns.iter_mut().filter(|c| !c.dead) {
                    if conn.subscribed {
                        protocol::write_frame(
                            &mut conn.wbuf,
                            protocol::OP_EVENTS,
                            jsonl_scratch.as_bytes(),
                        );
                    } else if conn.http_stream {
                        conn.wbuf.extend_from_slice(jsonl_scratch.as_bytes());
                    }
                }
            }
        }

        // Batched flush.
        for conn in conns.iter_mut() {
            if !conn.dead {
                let wrote = conn.flush();
                moved += wrote;
                report.bytes_out += wrote as u64;
                if conn.wbuf.len() - conn.wpos > config.max_backlog {
                    conn.dead = true;
                }
            }
        }
        conns.retain(|c| !c.dead);

        if moved == 0 {
            std::thread::sleep(config.idle_sleep);
        }
    }

    // Graceful drain: give pending responses (quit acks, final telemetry
    // chunks) a bounded window to reach their clients.
    let deadline = Instant::now() + config.drain_timeout;
    loop {
        let mut pending = false;
        for conn in conns.iter_mut() {
            if conn.dead {
                continue;
            }
            report.bytes_out += conn.flush() as u64;
            pending |= !conn.dead && conn.wpos < conn.wbuf.len();
        }
        if !pending || Instant::now() >= deadline {
            break;
        }
        std::thread::sleep(Duration::from_micros(200));
    }

    report.elapsed_s = start.elapsed().as_secs_f64();
    report.throughput_rps = if report.elapsed_s > 0.0 {
        report.requests as f64 / report.elapsed_s
    } else {
        0.0
    };
    report.p50_us = hist.quantile(0.50) / 1_000.0;
    report.p99_us = hist.quantile(0.99) / 1_000.0;
    report.max_us = hist.max_ns() as f64 / 1_000.0;
    Ok(report)
}

/// Parse and dispatch every complete frame in the connection's buffer,
/// then compact the leftovers to the front.
fn dispatch_frames(
    conn: &mut Conn,
    handler: &mut dyn RequestHandler,
    hist: &mut LatencyHist,
    report: &mut ServeReport,
    start: Instant,
    stop: &StopFlag,
) {
    let mut off = 0usize;
    loop {
        match protocol::parse_frame(&conn.rbuf[off..conn.rlen]) {
            Parse::Incomplete => break,
            Parse::Malformed => {
                protocol::write_frame(&mut conn.wbuf, protocol::OP_ERR, b"malformed frame");
                report.errors += 1;
                conn.close_after_flush = true;
                off = conn.rlen; // discard the rest; the stream is garbage
                break;
            }
            Parse::Ready(frame) => {
                let t0 = Instant::now();
                dispatch_one(conn, frame, off, handler, report, start, stop);
                hist.record(t0.elapsed().as_nanos() as u64);
                report.requests += 1;
                off += frame.wire_len;
            }
        }
    }
    if off > 0 {
        conn.rbuf.copy_within(off..conn.rlen, 0);
        conn.rlen -= off;
    }
}

fn dispatch_one(
    conn: &mut Conn,
    frame: Frame,
    off: usize,
    handler: &mut dyn RequestHandler,
    report: &mut ServeReport,
    start: Instant,
    stop: &StopFlag,
) {
    let (p0, p1) = frame.payload;
    match frame.op {
        protocol::OP_PING => {
            // Echo straight out of the receive buffer (disjoint fields,
            // so the borrow splits without a staging copy).
            let mark = protocol::begin_frame(&mut conn.wbuf, protocol::OP_PING);
            conn.wbuf.extend_from_slice(&conn.rbuf[off + p0..off + p1]);
            protocol::end_frame(&mut conn.wbuf, mark);
        }
        protocol::OP_STATS => {
            let json = stats_json(handler, report, start).to_string();
            protocol::write_frame(&mut conn.wbuf, protocol::OP_STATS, json.as_bytes());
        }
        protocol::OP_SUBSCRIBE => {
            conn.subscribed = true;
            protocol::write_frame(&mut conn.wbuf, protocol::OP_SUBSCRIBE, b"");
        }
        protocol::OP_QUIT => {
            protocol::write_frame(&mut conn.wbuf, protocol::OP_QUIT, b"");
            stop.stop();
        }
        op => {
            // Payload borrows rbuf, the response goes to wbuf — disjoint
            // fields, so the handler sees the bytes in place (no copy).
            let handled = handler.handle(op, &conn.rbuf[off + p0..off + p1], &mut conn.wbuf);
            if handled {
                report.app_requests += 1;
            } else {
                protocol::write_frame(&mut conn.wbuf, protocol::OP_ERR, b"unknown opcode");
                report.errors += 1;
            }
        }
    }
}

fn stats_json(handler: &dyn RequestHandler, report: &ServeReport, start: Instant) -> Json {
    let mut pairs = vec![
        ("uptime_s", Json::Num(start.elapsed().as_secs_f64())),
        ("requests", Json::Num(report.requests as f64)),
        ("app_requests", Json::Num(report.app_requests as f64)),
        ("errors", Json::Num(report.errors as f64)),
        ("connections", Json::Num(report.connections as f64)),
        ("events_streamed", Json::Num(report.events_streamed as f64)),
        ("telemetry", telemetry::metrics().to_json()),
    ];
    if let Some(app) = handler.stats_json() {
        pairs.push(("app", app));
    }
    Json::obj(pairs)
}

// ---------------------------------------------------------------------
// HTTP/1.1 fallback
// ---------------------------------------------------------------------

fn looks_like_http(buf: &[u8]) -> bool {
    buf.len() >= 4 && (&buf[..4] == b"GET " || &buf[..4] == b"HEAD")
}

/// Serve one HTTP request once its header block is complete. One request
/// per connection (`Connection: close`), except `/stream` which stays
/// open and is closed by server shutdown.
fn handle_http(
    conn: &mut Conn,
    handler: &mut dyn RequestHandler,
    hist: &LatencyHist,
    report: &mut ServeReport,
    start: Instant,
) {
    if conn.http_stream {
        conn.rlen = 0; // a streaming client has nothing more to say
        return;
    }
    let head = &conn.rbuf[..conn.rlen];
    let Some(end) = find_header_end(head) else {
        if conn.rlen > 16 << 10 {
            conn.dead = true; // header flood
        }
        return;
    };
    let line = head.split(|&b| b == b'\r').next().unwrap_or(b"");
    let path = line
        .split(|&b| b == b' ')
        .nth(1)
        .map(|p| String::from_utf8_lossy(p).into_owned())
        .unwrap_or_default();
    let _ = end;
    conn.rlen = 0;
    report.requests += 1;
    match path.as_str() {
        "/stats" => {
            let body = stats_json(handler, report, start).to_string();
            http_response(
                &mut conn.wbuf,
                "200 OK",
                "application/json",
                body.as_bytes(),
            );
            conn.close_after_flush = true;
        }
        "/stream" => {
            conn.wbuf.extend_from_slice(
                b"HTTP/1.1 200 OK\r\nContent-Type: application/x-ndjson\r\n\
                  Cache-Control: no-cache\r\nConnection: close\r\n\r\n",
            );
            conn.http_stream = true;
        }
        "/" => {
            let p99 = hist.quantile(0.99) / 1_000.0;
            let body = format!(
                "autotune serve\n\nrequests: {}\napp_requests: {}\np99_us: {:.1}\n\n\
                 endpoints:\n  GET /stats   server + app counters (JSON)\n  \
                 GET /stream  live telemetry (ndjson)\n",
                report.requests, report.app_requests, p99
            );
            http_response(&mut conn.wbuf, "200 OK", "text/plain", body.as_bytes());
            conn.close_after_flush = true;
        }
        _ => {
            http_response(
                &mut conn.wbuf,
                "404 Not Found",
                "text/plain",
                b"not found\n",
            );
            report.errors += 1;
            conn.close_after_flush = true;
        }
    }
}

fn find_header_end(buf: &[u8]) -> Option<usize> {
    buf.windows(4).position(|w| w == b"\r\n\r\n").map(|i| i + 4)
}

fn http_response(out: &mut Vec<u8>, status: &str, content_type: &str, body: &[u8]) {
    out.extend_from_slice(
        format!(
            "HTTP/1.1 {status}\r\nContent-Type: {content_type}\r\n\
             Content-Length: {}\r\nConnection: close\r\n\r\n",
            body.len()
        )
        .as_bytes(),
    );
    out.extend_from_slice(body);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::serve::Client;

    /// Test handler: `OP_MATCH` reverses the payload; everything else is
    /// unknown.
    struct Reverser;
    impl RequestHandler for Reverser {
        fn handle(&mut self, op: u8, payload: &[u8], out: &mut Vec<u8>) -> bool {
            if op != protocol::OP_MATCH {
                return false;
            }
            let mark = protocol::begin_frame(out, protocol::OP_MATCH);
            out.extend(payload.iter().rev());
            protocol::end_frame(out, mark);
            true
        }
        fn stats_json(&self) -> Option<Json> {
            Some(Json::obj(vec![("handler", Json::Str("reverser".into()))]))
        }
    }

    fn spawn_server() -> (String, std::thread::JoinHandle<ServeReport>, StopFlag) {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap().to_string();
        let stop = StopFlag::new();
        let stop2 = stop.clone();
        let handle = std::thread::spawn(move || {
            serve(listener, &mut Reverser, &ServeConfig::default(), &stop2).unwrap()
        });
        (addr, handle, stop)
    }

    #[test]
    fn ping_match_stats_quit_round_trip() {
        let (addr, handle, _stop) = spawn_server();
        let mut c = Client::connect(&addr).unwrap();
        c.set_read_timeout(Some(Duration::from_secs(10))).unwrap();

        let (op, body) = c.request(protocol::OP_PING, b"hello").unwrap();
        assert_eq!((op, body.as_slice()), (protocol::OP_PING, &b"hello"[..]));

        let (op, body) = c.request(protocol::OP_MATCH, b"abc").unwrap();
        assert_eq!((op, body.as_slice()), (protocol::OP_MATCH, &b"cba"[..]));

        let (op, body) = c.request(protocol::OP_STATS, b"").unwrap();
        assert_eq!(op, protocol::OP_STATS);
        let stats = Json::parse(std::str::from_utf8(&body).unwrap()).unwrap();
        assert_eq!(stats.get("app_requests").and_then(Json::as_f64), Some(1.0));
        assert_eq!(
            stats
                .get("app")
                .and_then(|a| a.get("handler"))
                .and_then(Json::as_str),
            Some("reverser")
        );

        let (op, _) = c.request(protocol::OP_QUIT, b"").unwrap();
        assert_eq!(op, protocol::OP_QUIT);
        let report = handle.join().unwrap();
        assert_eq!(report.app_requests, 1);
        assert_eq!(report.errors, 0);
        assert_eq!(report.requests, 4);
        assert!(report.p99_us > 0.0);
    }

    #[test]
    fn pipelined_batches_come_back_in_order() {
        let (addr, handle, _stop) = spawn_server();
        let mut c = Client::connect(&addr).unwrap();
        c.set_read_timeout(Some(Duration::from_secs(10))).unwrap();
        let mut batch = Vec::new();
        for i in 0..500u32 {
            protocol::write_frame(&mut batch, protocol::OP_MATCH, &i.to_le_bytes());
        }
        c.send_raw(&batch).unwrap();
        let mut body = Vec::new();
        for i in 0..500u32 {
            let op = c.recv_into(&mut body).unwrap();
            assert_eq!(op, protocol::OP_MATCH);
            let mut expect = i.to_le_bytes();
            expect.reverse();
            assert_eq!(body, expect);
        }
        c.request(protocol::OP_QUIT, b"").unwrap();
        assert_eq!(handle.join().unwrap().app_requests, 500);
    }

    #[test]
    fn unknown_opcode_gets_an_error_frame() {
        let (addr, handle, _stop) = spawn_server();
        let mut c = Client::connect(&addr).unwrap();
        c.set_read_timeout(Some(Duration::from_secs(10))).unwrap();
        let (op, body) = c.request(0x66, b"").unwrap();
        assert_eq!(op, protocol::OP_ERR);
        assert_eq!(body, b"unknown opcode");
        c.request(protocol::OP_QUIT, b"").unwrap();
        assert_eq!(handle.join().unwrap().errors, 1);
    }

    #[test]
    fn http_stats_fallback_works_on_the_same_port() {
        let (addr, handle, stop) = spawn_server();
        let mut s = TcpStream::connect(&addr).unwrap();
        s.set_read_timeout(Some(Duration::from_secs(10))).unwrap();
        s.write_all(b"GET /stats HTTP/1.1\r\nHost: x\r\n\r\n")
            .unwrap();
        let mut response = String::new();
        s.read_to_string(&mut response).unwrap();
        assert!(response.starts_with("HTTP/1.1 200 OK"), "{response}");
        let body = response.split("\r\n\r\n").nth(1).unwrap();
        let stats = Json::parse(body).unwrap();
        assert!(stats.get("uptime_s").and_then(Json::as_f64).is_some());
        stop.stop();
        handle.join().unwrap();
    }

    #[test]
    fn external_stop_flag_shuts_the_server_down() {
        let (addr, handle, stop) = spawn_server();
        let mut c = Client::connect(&addr).unwrap();
        c.set_read_timeout(Some(Duration::from_secs(10))).unwrap();
        c.request(protocol::OP_PING, b"x").unwrap();
        stop.stop();
        let report = handle.join().unwrap();
        assert_eq!(report.requests, 1);
    }
}
