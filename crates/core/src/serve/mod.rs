//! The always-on tuning service: a zero-dependency TCP server that
//! dispatches requests through live tuning sites.
//!
//! The paper's pitch — and this repo's north star — is autotuning as a
//! property of a *running application*, not a batch experiment. This
//! module turns the multi-site runtime ([`crate::site`]) into exactly
//! that: a long-lived server whose request handlers call through tuning
//! sites, so every request both benefits from and feeds the optimization.
//!
//! # Pieces
//!
//! * [`protocol`] — the length-prefixed binary wire format (`[u32 LE
//!   len][u8 op][payload]`) plus allocation-free parse/serialize helpers.
//! * [`serve`] — the poll loop: nonblocking sockets, per-connection
//!   reused read/write buffers, in-place frame parsing, batched response
//!   writes. Single-threaded by design: one thread owns every socket, so
//!   each request's site call wins the claim CAS and runs a full tuning
//!   iteration — the serving loop *is* the tuning loop.
//! * [`RequestHandler`] — the application hook. The server owns transport
//!   and the built-in opcodes (ping, stats, subscribe, quit); match /
//!   render / morph payloads are delegated to the handler, which is where
//!   the workload crates' tuned entry points get wired in (see
//!   `experiments serve`).
//! * [`Client`] — a small blocking client used by the load generator,
//!   the benches and the tests; supports deep pipelining (many frames per
//!   write) which is how the throughput target is met.
//! * Live telemetry: a connection that sends `OP_SUBSCRIBE` (or GETs
//!   `/stream`) receives the global telemetry ring incrementally as JSONL
//!   chunks — concatenated chunks are byte-identical to a batch export.
//!
//! A minimal HTTP/1.1 fallback answers `GET /stats` (JSON), `GET /stream`
//! (ndjson), and `GET /` (a plain-text index) on the same port, detected
//! by the first bytes of the connection, so a browser or `curl` can peek
//! at a live server without a custom client.

mod client;
pub mod protocol;
mod server;

pub use client::Client;
pub use server::{serve, ServeConfig, ServeReport, StopFlag};

use crate::json::Json;

/// Application-side request dispatch for [`serve`].
///
/// The server calls [`RequestHandler::handle`] for every frame whose
/// opcode it does not own (anything but ping/stats/subscribe/quit —
/// notably [`protocol::OP_MATCH`], [`protocol::OP_RENDER`] and
/// [`protocol::OP_MORPH`]). The handler must append **exactly one**
/// response frame to `out` (via [`protocol::write_frame`] or
/// [`protocol::begin_frame`]/[`protocol::end_frame`], serializing straight
/// into the connection's output buffer) and return `true`, or return
/// `false` to make the server answer with an [`protocol::OP_ERR`] frame.
///
/// Handlers run on the poll-loop thread, so a site call inside `handle`
/// always wins the site's claim: every served request is a full tuning
/// iteration. This is also where drift detection lives — the handler owns
/// one [`crate::drift::DriftMonitor`] per site and feeds it the measured
/// runtime of each call (see [`crate::drift::observe_and_restart`]).
pub trait RequestHandler {
    /// Handle one application frame; see the trait docs for the contract.
    fn handle(&mut self, op: u8, payload: &[u8], out: &mut Vec<u8>) -> bool;

    /// Application counters merged into the `OP_STATS` / `GET /stats`
    /// response under `"app"`. Default: absent.
    fn stats_json(&self) -> Option<Json> {
        None
    }
}

/// A log-scale latency histogram: power-of-two nanosecond octaves, eight
/// sub-buckets each (relative quantile error ≤ ~9%), fixed 512-slot
/// footprint, O(1) record. Used for the server's per-request service-time
/// percentiles and reused by the `serve` bench for client-side p99.
#[derive(Clone)]
pub struct LatencyHist {
    buckets: Box<[u64; 512]>,
    count: u64,
    max_ns: u64,
}

impl Default for LatencyHist {
    fn default() -> Self {
        Self::new()
    }
}

impl LatencyHist {
    /// An empty histogram.
    pub fn new() -> Self {
        LatencyHist {
            buckets: Box::new([0; 512]),
            count: 0,
            max_ns: 0,
        }
    }

    fn bucket(ns: u64) -> usize {
        if ns < 8 {
            return ns as usize;
        }
        let msb = 63 - ns.leading_zeros() as usize;
        (msb * 8 + ((ns >> (msb - 3)) & 7) as usize).min(511)
    }

    /// Record one sample.
    pub fn record(&mut self, ns: u64) {
        self.buckets[Self::bucket(ns)] += 1;
        self.count += 1;
        self.max_ns = self.max_ns.max(ns);
    }

    /// Samples recorded.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Largest recorded sample, in nanoseconds.
    pub fn max_ns(&self) -> u64 {
        self.max_ns
    }

    /// The `q`-quantile (`0.0..=1.0`) in nanoseconds — the representative
    /// (geometric-mid) value of the bucket containing that rank, clamped
    /// to the observed maximum. Returns 0.0 while empty.
    pub fn quantile(&self, q: f64) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        let rank = ((q.clamp(0.0, 1.0) * self.count as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (i, &c) in self.buckets.iter().enumerate() {
            seen += c;
            if seen >= rank {
                let rep = if i < 8 {
                    i as f64
                } else {
                    let msb = i / 8;
                    let sub = (i % 8) as f64;
                    // Low edge of the sub-bucket plus half a sub-bucket.
                    (1u64 << msb) as f64 * (1.0 + (sub + 0.5) / 8.0)
                };
                return rep.min(self.max_ns as f64);
            }
        }
        self.max_ns as f64
    }

    /// Merge another histogram into this one.
    pub fn merge(&mut self, other: &LatencyHist) {
        for (a, b) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *a += b;
        }
        self.count += other.count;
        self.max_ns = self.max_ns.max(other.max_ns);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn latency_hist_quantiles_are_log_accurate() {
        let mut h = LatencyHist::new();
        for ns in 1..=100_000u64 {
            h.record(ns);
        }
        assert_eq!(h.count(), 100_000);
        assert_eq!(h.max_ns(), 100_000);
        for (q, expect) in [(0.5, 50_000.0), (0.99, 99_000.0), (1.0, 100_000.0)] {
            let got = h.quantile(q);
            let err = (got - expect).abs() / expect;
            assert!(err < 0.10, "q={q}: got {got}, want ~{expect}");
        }
    }

    #[test]
    fn latency_hist_merge_matches_combined() {
        let mut a = LatencyHist::new();
        let mut b = LatencyHist::new();
        let mut all = LatencyHist::new();
        for i in 0..1000u64 {
            let ns = 17 + i * 13;
            if i % 2 == 0 {
                a.record(ns);
            } else {
                b.record(ns);
            }
            all.record(ns);
        }
        a.merge(&b);
        assert_eq!(a.count(), all.count());
        assert_eq!(a.quantile(0.99), all.quantile(0.99));
        assert_eq!(a.max_ns(), all.max_ns());
    }

    #[test]
    fn latency_hist_handles_tiny_and_huge() {
        let mut h = LatencyHist::new();
        h.record(0);
        h.record(u64::MAX);
        assert_eq!(h.count(), 2);
        assert!(h.quantile(0.0) <= h.quantile(1.0));
    }
}
