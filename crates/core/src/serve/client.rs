//! A small blocking client for the serve protocol — used by the load
//! generator, the `serve` bench and the tests.
//!
//! Two usage shapes:
//!
//! * **Ping-pong** ([`Client::request`] / [`Client::request_into`]): one
//!   frame out, one frame back. Simple, and what the bench uses for
//!   honest round-trip latency numbers.
//! * **Pipelined** ([`Client::send_raw`] + [`Client::recv_into`]): the
//!   caller batches many frames into one buffer (via
//!   [`super::protocol::write_frame`]), writes them in a single syscall,
//!   then pulls the responses. This is how the load generator reaches
//!   throughput targets — the per-request syscall cost amortizes across
//!   the batch.
//!
//! The receive path reuses one internal buffer; [`Client::recv_into`]
//! copies only the payload into the caller's (also reusable) buffer, so a
//! steady-state request loop performs no allocations.

use super::protocol::{self, Parse};
use std::io::{ErrorKind, Read, Write};
use std::net::{TcpStream, ToSocketAddrs};
use std::time::Duration;

/// A blocking connection to an [`super::serve`] server.
pub struct Client {
    stream: TcpStream,
    rbuf: Vec<u8>,
    rlen: usize,
    roff: usize,
}

impl Client {
    /// Connect (blocking) and disable Nagle — the protocol is its own
    /// batching layer.
    pub fn connect(addr: impl ToSocketAddrs) -> std::io::Result<Client> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        Ok(Client {
            stream,
            rbuf: vec![0; 64 << 10],
            rlen: 0,
            roff: 0,
        })
    }

    /// Set/clear the read timeout (useful for smoke tests that must not
    /// hang on a wedged server).
    pub fn set_read_timeout(&mut self, timeout: Option<Duration>) -> std::io::Result<()> {
        self.stream.set_read_timeout(timeout)
    }

    /// Write pre-framed bytes (one or many frames) in one go.
    pub fn send_raw(&mut self, frames: &[u8]) -> std::io::Result<()> {
        self.stream.write_all(frames)
    }

    /// Frame and send a single request.
    pub fn send(&mut self, op: u8, payload: &[u8]) -> std::io::Result<()> {
        let mut buf = Vec::with_capacity(payload.len() + 8);
        protocol::write_frame(&mut buf, op, payload);
        self.send_raw(&buf)
    }

    /// Receive one frame, appending its payload to `payload` (cleared
    /// first); returns the opcode. Blocks until a full frame arrives.
    pub fn recv_into(&mut self, payload: &mut Vec<u8>) -> std::io::Result<u8> {
        payload.clear();
        loop {
            match protocol::parse_frame(&self.rbuf[self.roff..self.rlen]) {
                Parse::Ready(frame) => {
                    let (p0, p1) = frame.payload;
                    payload.extend_from_slice(&self.rbuf[self.roff + p0..self.roff + p1]);
                    self.roff += frame.wire_len;
                    if self.roff == self.rlen {
                        self.roff = 0;
                        self.rlen = 0;
                    }
                    return Ok(frame.op);
                }
                Parse::Malformed => {
                    return Err(std::io::Error::new(
                        ErrorKind::InvalidData,
                        "malformed frame from server",
                    ));
                }
                Parse::Incomplete => {
                    // Compact consumed bytes, then read more.
                    if self.roff > 0 {
                        self.rbuf.copy_within(self.roff..self.rlen, 0);
                        self.rlen -= self.roff;
                        self.roff = 0;
                    }
                    if self.rlen == self.rbuf.len() {
                        self.rbuf.resize(self.rbuf.len() * 2, 0);
                    }
                    let n = self.stream.read(&mut self.rbuf[self.rlen..])?;
                    if n == 0 {
                        return Err(std::io::Error::new(
                            ErrorKind::UnexpectedEof,
                            "server closed the connection mid-frame",
                        ));
                    }
                    self.rlen += n;
                }
            }
        }
    }

    /// One blocking round trip: send, then receive into a reused buffer.
    /// Returns the response opcode.
    pub fn request_into(
        &mut self,
        op: u8,
        payload: &[u8],
        response: &mut Vec<u8>,
    ) -> std::io::Result<u8> {
        self.send(op, payload)?;
        self.recv_into(response)
    }

    /// One blocking round trip, allocating the response.
    pub fn request(&mut self, op: u8, payload: &[u8]) -> std::io::Result<(u8, Vec<u8>)> {
        let mut response = Vec::new();
        let code = self.request_into(op, payload, &mut response)?;
        Ok((code, response))
    }
}
