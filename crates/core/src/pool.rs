//! A persistent work-stealing executor: the execution substrate shared by
//! every parallel kernel in the workspace.
//!
//! ## Why a persistent pool
//!
//! The online tuner minimizes *measured wall time per iteration*. With
//! per-call `std::thread::scope` parallelism, every measured kernel pays
//! thread spawn/join latency (tens of microseconds per worker) *inside the
//! measurement window*. That fixed overhead both slows the system and — far
//! worse for the tuner — injects scheduling noise that degrades phase-1
//! Nelder–Mead and phase-2 nominal-strategy convergence. A pool of
//! long-lived workers moves that cost out of the measured region entirely:
//! dispatching a parallel region becomes one queue push plus condvar wakes
//! of already-running threads.
//!
//! ## Why chunk claiming ("work stealing" at chunk granularity)
//!
//! Static partitioning (e.g. fixed row bands in the raytracer) load-
//! imbalances badly on uneven workloads: the band containing the detailed
//! part of a scene dominates the critical path while other workers idle.
//! Here every parallel region is a shared atomic cursor over its chunk
//! index space; workers (and the calling thread, which always participates)
//! *steal* the next unclaimed chunk with one `fetch_add`. Fast workers
//! automatically take more chunks — dynamic load balancing without any
//! per-chunk locks.
//!
//! ## Worker count stays a tunable ratio parameter
//!
//! Unlike a fixed-size OpenMP pool, every dispatch takes an explicit
//! `threads` cap: the number of threads (caller + helpers) allowed to work
//! on the region. The autotuner can therefore still treat parallelism as a
//! ratio-class tuning parameter — `threads == 1` runs the body inline on
//! the caller with *zero* pool involvement, so a 1-thread dispatch is
//! bit-identical to (and exactly as cheap as) sequential code.
//!
//! ## Nesting and deadlock freedom
//!
//! The calling thread always participates in its own region and never
//! blocks waiting for an idle worker, so a dispatch *completes even if no
//! pool worker ever shows up*. A worker that encounters a nested dispatch
//! inside a chunk body simply opens a sub-region and participates in it
//! the same way. Every blocked thread waits only on chunks that some other
//! thread is actively executing, and the nesting depth is finite, so the
//! wait graph is acyclic: no deadlock.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, OnceLock};

/// Type-erased chunk body: `call(data, chunk_index)`.
///
/// `data` points at a `&(dyn Fn(usize) + Sync)` that lives on the
/// dispatching thread's stack. The dispatch protocol guarantees the caller
/// does not return before every claimed chunk has finished, so the pointer
/// never dangles while a worker can still dereference it.
struct Region {
    call: unsafe fn(*const (), usize),
    data: *const (),
    /// Next chunk index to claim.
    cursor: AtomicUsize,
    /// Total chunks in the region.
    chunks: usize,
    /// Chunks fully executed.
    done: AtomicUsize,
    /// Remaining helper slots (dispatch cap minus the caller).
    helper_slots: AtomicUsize,
    /// Completion latch the caller parks on.
    finished: Mutex<bool>,
    finished_cv: Condvar,
}

// SAFETY: `data` is only dereferenced through `call` while the dispatching
// stack frame is alive (see the completion protocol in `Pool::par_index`),
// and the pointee is `Sync`.
unsafe impl Send for Region {}
unsafe impl Sync for Region {}

impl Region {
    /// Claim and run chunks until the cursor is exhausted. Signals the
    /// completion latch when the last chunk finishes (which may happen on
    /// any participating thread).
    fn work(&self) {
        loop {
            let i = self.cursor.fetch_add(1, Ordering::Relaxed);
            if i >= self.chunks {
                return;
            }
            // SAFETY: per the struct invariant, `data` outlives the region.
            unsafe { (self.call)(self.data, i) };
            if self.done.fetch_add(1, Ordering::AcqRel) + 1 == self.chunks {
                *self.finished.lock().expect("pool latch poisoned") = true;
                self.finished_cv.notify_all();
            }
        }
    }

    /// Is there still unclaimed work?
    fn has_work(&self) -> bool {
        self.cursor.load(Ordering::Relaxed) < self.chunks
    }
}

struct Shared {
    /// Active regions workers can help with. Regions are pushed by
    /// dispatchers and pruned once exhausted.
    regions: Mutex<VecDeque<Arc<Region>>>,
    /// Signals workers that a region was pushed (or shutdown requested).
    wake: Condvar,
    shutdown: AtomicBool,
}

/// A persistent work-stealing executor. See the module docs.
///
/// Most code should use [`Pool::global`]; private pools exist so tests can
/// pin exact worker counts.
///
/// ```
/// use autotune::pool::Pool;
/// use std::sync::atomic::{AtomicUsize, Ordering};
///
/// let sum = AtomicUsize::new(0);
/// Pool::global().par_index(4, 100, &|i| {
///     sum.fetch_add(i, Ordering::Relaxed);
/// });
/// assert_eq!(sum.into_inner(), 99 * 100 / 2);
/// ```
pub struct Pool {
    shared: Arc<Shared>,
    handles: Vec<std::thread::JoinHandle<()>>,
}

impl Pool {
    /// A pool with `workers` background worker threads. The calling thread
    /// of every dispatch also participates, so total parallelism for a
    /// region is `min(threads_cap, workers + 1)`.
    pub fn new(workers: usize) -> Self {
        let shared = Arc::new(Shared {
            regions: Mutex::new(VecDeque::new()),
            wake: Condvar::new(),
            shutdown: AtomicBool::new(false),
        });
        let handles = (0..workers)
            .map(|k| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("autotune-pool-{k}"))
                    .spawn(move || worker_loop(&shared))
                    .expect("failed to spawn pool worker")
            })
            .collect();
        Pool { shared, handles }
    }

    /// The process-wide pool, created on first use with
    /// `available_parallelism() - 1` workers (the dispatching thread is the
    /// +1). Lives for the rest of the process.
    ///
    /// The `AUTOTUNE_POOL_WORKERS` environment variable, if set before
    /// first use, pins the worker count instead — used by tests and
    /// experiments to verify scheduling independence at fixed pool sizes.
    pub fn global() -> &'static Pool {
        static GLOBAL: OnceLock<Pool> = OnceLock::new();
        GLOBAL.get_or_init(|| {
            let workers = std::env::var("AUTOTUNE_POOL_WORKERS")
                .ok()
                .and_then(|v| v.parse().ok())
                .unwrap_or_else(|| std::thread::available_parallelism().map_or(4, |n| n.get()) - 1);
            Pool::new(workers)
        })
    }

    /// Number of background workers (not counting dispatching callers).
    pub fn workers(&self) -> usize {
        self.handles.len()
    }

    /// Run `body(i)` for every `i in 0..chunks`, on up to `threads` threads
    /// (the caller plus at most `threads - 1` pool workers). Chunks are
    /// claimed dynamically; every chunk runs exactly once. Returns after
    /// all chunks completed.
    ///
    /// `threads <= 1` (or `chunks <= 1`) runs everything inline on the
    /// caller — the sequential path, bit-identical to a plain loop.
    pub fn par_index(&self, threads: usize, chunks: usize, body: &(dyn Fn(usize) + Sync)) {
        if chunks == 0 {
            return;
        }
        let helpers = threads
            .saturating_sub(1)
            .min(self.handles.len())
            .min(chunks - 1);
        if helpers == 0 {
            for i in 0..chunks {
                body(i);
            }
            return;
        }

        // Double-indirection erasure: `data` is a pointer to the wide
        // reference `&dyn Fn(usize) + Sync` itself.
        unsafe fn call_body(data: *const (), i: usize) {
            // SAFETY: `data` was created from `&&dyn Fn(usize)` below and
            // outlives the region (completion latch).
            let f = unsafe { &*(data as *const &(dyn Fn(usize) + Sync)) };
            f(i)
        }
        let region = Arc::new(Region {
            call: call_body,
            data: (&raw const body).cast(),
            cursor: AtomicUsize::new(0),
            chunks,
            done: AtomicUsize::new(0),
            helper_slots: AtomicUsize::new(helpers),
            finished: Mutex::new(false),
            finished_cv: Condvar::new(),
        });
        let depth = {
            let mut regions = self.shared.regions.lock().expect("pool lock poisoned");
            regions.push_back(Arc::clone(&region));
            regions.len()
        };
        crate::telemetry::emit(|| crate::telemetry::EventKind::QueueDepth {
            depth: depth as u32,
            workers: self.handles.len() as u32,
        });
        self.shared.wake.notify_all();

        // The caller is always a participant: the region completes even if
        // every worker is busy elsewhere.
        region.work();

        // Wait for helpers still running their last claimed chunk. The
        // latch is signaled by whichever thread completes the final chunk.
        let mut finished = region.finished.lock().expect("pool latch poisoned");
        while !*finished {
            finished = region
                .finished_cv
                .wait(finished)
                .expect("pool latch poisoned");
        }
        drop(finished);

        // Prune our region so the active list stays small.
        let mut regions = self.shared.regions.lock().expect("pool lock poisoned");
        regions.retain(|r| !Arc::ptr_eq(r, &region));
    }

    /// Map `i -> f(i)` over `0..n` in parallel and collect the results **in
    /// index order** — an index-keyed merge, so the output is independent
    /// of chunk completion order.
    pub fn par_map<T: Send>(
        &self,
        threads: usize,
        n: usize,
        f: &(dyn Fn(usize) -> T + Sync),
    ) -> Vec<T> {
        let slots: Vec<Mutex<Option<T>>> = (0..n).map(|_| Mutex::new(None)).collect();
        self.par_index(threads, n, &|i| {
            let v = f(i);
            *slots[i].lock().expect("slot poisoned") = Some(v);
        });
        slots
            .into_iter()
            .map(|s| {
                s.into_inner()
                    .expect("slot poisoned")
                    .expect("chunk ran exactly once")
            })
            .collect()
    }

    /// Split `data` into consecutive chunks of `chunk_len` elements (the
    /// last may be shorter) and run `body(chunk_index, chunk)` for each,
    /// with dynamic claiming. Chunk `i` covers
    /// `data[i * chunk_len .. (i + 1) * chunk_len]`, so the mapping from
    /// index to data is deterministic regardless of scheduling.
    pub fn par_chunks_mut<T: Send, F: Fn(usize, &mut [T]) + Sync>(
        &self,
        threads: usize,
        data: &mut [T],
        chunk_len: usize,
        body: F,
    ) {
        assert!(chunk_len > 0, "chunk_len must be positive");
        let slots: Vec<Mutex<&mut [T]>> = data.chunks_mut(chunk_len).map(Mutex::new).collect();
        self.par_index(threads, slots.len(), &|i| {
            let mut chunk = slots[i].lock().expect("chunk poisoned");
            body(i, &mut chunk);
        });
    }

    /// Fork-join: run `a` and `b`, potentially in parallel, and return both
    /// results. The caller runs at least one of them itself; the other is
    /// offered to the pool. Used by the kd-tree builders in place of
    /// per-call `std::thread::scope` spawns.
    pub fn join<RA, RB>(
        &self,
        a: impl FnOnce() -> RA + Send,
        b: impl FnOnce() -> RB + Send,
    ) -> (RA, RB)
    where
        RA: Send,
        RB: Send,
    {
        let fa = Mutex::new(Some(a));
        let fb = Mutex::new(Some(b));
        let ra: Mutex<Option<RA>> = Mutex::new(None);
        let rb: Mutex<Option<RB>> = Mutex::new(None);
        self.par_index(2, 2, &|i| {
            if i == 0 {
                let f = fa.lock().expect("fork poisoned").take().expect("ran once");
                *ra.lock().expect("fork poisoned") = Some(f());
            } else {
                let f = fb.lock().expect("fork poisoned").take().expect("ran once");
                *rb.lock().expect("fork poisoned") = Some(f());
            }
        });
        (
            ra.into_inner().expect("fork poisoned").expect("a ran"),
            rb.into_inner().expect("fork poisoned").expect("b ran"),
        )
    }
}

impl Drop for Pool {
    fn drop(&mut self) {
        self.shared.shutdown.store(true, Ordering::SeqCst);
        self.shared.wake.notify_all();
        for h in self.handles.drain(..) {
            let _ = h.join();
        }
    }
}

fn worker_loop(shared: &Shared) {
    loop {
        let region = {
            let mut regions = shared.regions.lock().expect("pool lock poisoned");
            loop {
                if shared.shutdown.load(Ordering::SeqCst) {
                    return;
                }
                // Find a region with both unclaimed work and a free helper
                // slot; exhausted regions are pruned opportunistically.
                regions.retain(|r| r.has_work());
                let found = regions.iter().find(|r| {
                    r.has_work()
                        && r.helper_slots
                            .fetch_update(Ordering::AcqRel, Ordering::Acquire, |s| s.checked_sub(1))
                            .is_ok()
                });
                match found {
                    Some(r) => break Arc::clone(r),
                    None => {
                        regions = shared.wake.wait(regions).expect("pool lock poisoned");
                    }
                }
            }
        };
        region.work();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn par_index_runs_every_chunk_exactly_once() {
        let pool = Pool::new(3);
        for chunks in [0usize, 1, 2, 7, 64, 1000] {
            let counts: Vec<AtomicUsize> = (0..chunks).map(|_| AtomicUsize::new(0)).collect();
            pool.par_index(4, chunks, &|i| {
                counts[i].fetch_add(1, Ordering::Relaxed);
            });
            for (i, c) in counts.iter().enumerate() {
                assert_eq!(c.load(Ordering::Relaxed), 1, "chunk {i} of {chunks}");
            }
        }
    }

    #[test]
    fn one_thread_is_sequential_and_deterministic() {
        // threads == 1 must run inline in index order: observable via a
        // sequence log, which would interleave under any parallelism.
        let pool = Pool::new(4);
        let log = Mutex::new(Vec::new());
        pool.par_index(1, 50, &|i| log.lock().unwrap().push(i));
        assert_eq!(*log.lock().unwrap(), (0..50).collect::<Vec<_>>());
    }

    #[test]
    fn par_map_results_are_index_ordered_for_any_schedule() {
        let pool = Pool::new(7);
        for _ in 0..20 {
            let out = pool.par_map(8, 100, &|i| i * i);
            assert_eq!(out, (0..100).map(|i| i * i).collect::<Vec<_>>());
        }
    }

    #[test]
    fn repeated_runs_are_deterministic() {
        let pool = Pool::new(4);
        let run = || {
            let mut data = vec![0u64; 512];
            pool.par_chunks_mut(8, &mut data, 13, |ci, chunk| {
                for (k, v) in chunk.iter_mut().enumerate() {
                    *v = (ci * 13 + k) as u64 * 2654435761;
                }
            });
            data
        };
        let first = run();
        for _ in 0..10 {
            assert_eq!(run(), first);
        }
    }

    #[test]
    fn par_chunks_mut_covers_the_whole_slice() {
        let pool = Pool::new(2);
        let mut data = vec![0u8; 101]; // not a multiple of the chunk len
        pool.par_chunks_mut(4, &mut data, 10, |_, chunk| chunk.fill(1));
        assert!(data.iter().all(|&b| b == 1));
    }

    #[test]
    fn join_returns_both_results() {
        let pool = Pool::new(2);
        let (a, b) = pool.join(|| 2 + 2, || "ok".to_string());
        assert_eq!(a, 4);
        assert_eq!(b, "ok");
    }

    #[test]
    fn join_nests_deeply_without_deadlock() {
        fn fib(pool: &Pool, n: u64) -> u64 {
            if n < 2 {
                return n;
            }
            let (a, b) = pool.join(|| fib(pool, n - 1), || fib(pool, n - 2));
            a + b
        }
        // 2 workers, recursion fan-out far beyond the pool size: progress
        // must come from callers executing their own forks.
        let pool = Pool::new(2);
        assert_eq!(fib(&pool, 16), 987);
    }

    #[test]
    fn nested_dispatch_from_multiple_threads_does_not_deadlock() {
        // Many OS threads hammer one tiny pool with nested regions.
        let pool = Pool::new(2);
        let total = AtomicUsize::new(0);
        std::thread::scope(|scope| {
            for _ in 0..6 {
                let pool = &pool;
                let total = &total;
                scope.spawn(move || {
                    for _ in 0..20 {
                        pool.par_index(4, 8, &|_outer| {
                            pool.par_index(3, 4, &|_inner| {
                                total.fetch_add(1, Ordering::Relaxed);
                            });
                        });
                    }
                });
            }
        });
        assert_eq!(total.into_inner(), 6 * 20 * 8 * 4);
    }

    #[test]
    fn caller_completes_even_with_zero_workers() {
        let pool = Pool::new(0);
        let sum = AtomicUsize::new(0);
        pool.par_index(8, 100, &|i| {
            sum.fetch_add(i + 1, Ordering::Relaxed);
        });
        assert_eq!(sum.into_inner(), 5050);
    }

    #[test]
    fn global_pool_is_a_singleton() {
        let a = Pool::global() as *const Pool;
        let b = Pool::global() as *const Pool;
        assert_eq!(a, b);
    }

    #[test]
    fn results_equal_sequential_for_all_thread_counts() {
        let pool = Pool::new(7);
        let reference: Vec<u64> = (0..300u64).map(|i| i.wrapping_mul(0x9E3779B9)).collect();
        for threads in [1, 2, 3, 8, 64] {
            let got = pool.par_map(threads, 300, &|i| (i as u64).wrapping_mul(0x9E3779B9));
            assert_eq!(got, reference, "threads={threads}");
        }
    }
}
