//! Measurement functions, contexts, and samples.
//!
//! The paper defines autotuning as minimizing a measurement function
//! `m_K : T → ℝ` for a fixed context `K = (K_A, K_S)` describing the
//! application and the system. In practice `m` measures wall-clock runtime;
//! for deterministic tests this crate also supports arbitrary synthetic cost
//! functions.

use crate::json::{Json, JsonError};
use crate::space::Configuration;
use std::time::{Duration, Instant};

/// The tuning context `K = (K_A, K_S)`: which application on which system.
/// The paper assumes the context constant during tuning; we carry it along
/// for bookkeeping and result labeling.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Context {
    /// `K_A`: the application (e.g. "string-matching/bible").
    pub application: String,
    /// `K_S`: the system (e.g. hostname or CPU model).
    pub system: String,
}

impl Context {
    /// A context from explicit application and system labels.
    pub fn new(application: impl Into<String>, system: impl Into<String>) -> Self {
        Context {
            application: application.into(),
            system: system.into(),
        }
    }

    /// A context labeled with the current host, for quick experiments.
    ///
    /// The kernel's own record (`/proc/sys/kernel/hostname`) is consulted
    /// first: `$HOSTNAME` is a shell variable that interactive bash sets but
    /// does not export, so it is typically absent in non-interactive shells
    /// (cron, CI, `sh -c`), which used to mislabel every result file as
    /// "localhost". The env var remains as a fallback for non-Linux hosts.
    pub fn here(application: impl Into<String>) -> Self {
        let system = std::fs::read_to_string("/proc/sys/kernel/hostname")
            .ok()
            .map(|s| s.trim().to_string())
            .filter(|s| !s.is_empty())
            .or_else(|| std::env::var("HOSTNAME").ok().filter(|s| !s.is_empty()))
            .unwrap_or_else(|| "localhost".to_string());
        Context::new(application, system)
    }

    /// JSON encoding: `{"application": ..., "system": ...}`.
    pub fn to_json(&self) -> Json {
        Json::obj(vec![
            ("application", Json::Str(self.application.clone())),
            ("system", Json::Str(self.system.clone())),
        ])
    }

    /// Inverse of [`Context::to_json`].
    pub fn from_json(json: &Json) -> Result<Context, JsonError> {
        let field = |key: &str| {
            json.get(key)
                .and_then(Json::as_str)
                .map(str::to_string)
                .ok_or_else(|| JsonError {
                    message: format!("context needs a string '{key}' field"),
                    offset: 0,
                })
        };
        Ok(Context {
            application: field("application")?,
            system: field("system")?,
        })
    }
}

/// One observation: configuration `C_i` produced measurement `m(C_i)` at
/// tuning iteration `i`.
#[derive(Debug, Clone, PartialEq)]
pub struct Sample {
    /// Global tuning iteration index at which the sample was taken.
    pub iteration: usize,
    /// The evaluated configuration.
    pub config: Configuration,
    /// Measured value (lower is better; typically seconds).
    pub value: f64,
}

impl Sample {
    /// JSON encoding: `{"iteration": ..., "config": ..., "value": ...}`.
    pub fn to_json(&self) -> Json {
        Json::obj(vec![
            ("iteration", Json::Num(self.iteration as f64)),
            ("config", self.config.to_json()),
            ("value", Json::Num(self.value)),
        ])
    }

    /// Inverse of [`Sample::to_json`].
    pub fn from_json(json: &Json) -> Result<Sample, JsonError> {
        let fail = |m: &str| JsonError {
            message: m.to_string(),
            offset: 0,
        };
        let raw_iteration = json
            .get("iteration")
            .and_then(Json::as_f64)
            .ok_or_else(|| fail("sample needs an iteration"))?;
        // `as usize` would silently turn NaN into 0 and saturate negatives
        // and huge values; a corrupted results file must be an error, not a
        // quietly relabeled sample.
        if !(raw_iteration.is_finite()
            && raw_iteration >= 0.0
            && raw_iteration.fract() == 0.0
            && raw_iteration <= usize::MAX as f64)
        {
            return Err(fail(&format!(
                "sample iteration must be a non-negative integer, got {raw_iteration}"
            )));
        }
        let iteration = raw_iteration as usize;
        let config = Configuration::from_json(
            json.get("config")
                .ok_or_else(|| fail("sample needs a config"))?,
        )?;
        let value = json
            .get("value")
            .and_then(Json::as_f64)
            .ok_or_else(|| fail("sample needs a value"))?;
        Ok(Sample {
            iteration,
            config,
            value,
        })
    }
}

/// A measurement function `m_K : T → ℝ`. Implemented by the application
/// being tuned (or a synthetic cost model in tests).
pub trait Measure {
    /// Evaluate one configuration and return its measured value. Lower is
    /// better. The value must be finite; strategies treat non-finite values
    /// as a contract violation.
    fn measure(&mut self, config: &Configuration) -> f64;
}

impl<F: FnMut(&Configuration) -> f64> Measure for F {
    fn measure(&mut self, config: &Configuration) -> f64 {
        self(config)
    }
}

/// Run a closure and return its wall-clock duration in milliseconds — the
/// unit used throughout the paper's figures.
pub fn time_ms<T>(f: impl FnOnce() -> T) -> (T, f64) {
    let start = Instant::now();
    let out = f();
    (out, duration_ms(start.elapsed()))
}

/// Convert a [`Duration`] to fractional milliseconds.
pub fn duration_ms(d: Duration) -> f64 {
    d.as_secs_f64() * 1e3
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::space::Configuration;

    #[test]
    fn closure_is_a_measure() {
        let mut calls = 0usize;
        {
            let mut m = |_c: &Configuration| {
                calls += 1;
                1.5
            };
            assert_eq!(m.measure(&Configuration::empty()), 1.5);
            assert_eq!(m.measure(&Configuration::empty()), 1.5);
        }
        assert_eq!(calls, 2);
    }

    #[test]
    fn time_ms_is_nonnegative_and_returns_value() {
        let (v, ms) = time_ms(|| 7);
        assert_eq!(v, 7);
        assert!(ms >= 0.0);
    }

    #[test]
    fn time_ms_measures_sleep() {
        let (_, ms) = time_ms(|| std::thread::sleep(Duration::from_millis(20)));
        assert!(ms >= 15.0, "expected >= 15ms, got {ms}");
    }

    #[test]
    fn duration_conversion() {
        assert_eq!(duration_ms(Duration::from_millis(250)), 250.0);
        assert!((duration_ms(Duration::from_micros(1500)) - 1.5).abs() < 1e-9);
    }

    #[test]
    fn here_prefers_the_kernel_hostname_record() {
        // On Linux the kernel record must win (HOSTNAME is usually unset in
        // non-interactive shells); elsewhere the fallback chain applies.
        if let Ok(h) = std::fs::read_to_string("/proc/sys/kernel/hostname") {
            let h = h.trim();
            if !h.is_empty() {
                assert_eq!(Context::here("app").system, h);
            }
        }
    }

    #[test]
    fn sample_json_round_trip() {
        let s = Sample {
            iteration: 17,
            config: Configuration::empty(),
            value: 2.25,
        };
        let back = Sample::from_json(&s.to_json()).unwrap();
        assert_eq!(back, s);
    }

    #[test]
    fn sample_from_json_rejects_bad_iterations() {
        let encode = |iteration: f64| {
            Json::obj(vec![
                ("iteration", Json::Num(iteration)),
                ("config", Configuration::empty().to_json()),
                ("value", Json::Num(1.0)),
            ])
        };
        for bad in [f64::NAN, f64::INFINITY, f64::NEG_INFINITY, -1.0, 2.5, 1e300] {
            let err = Sample::from_json(&encode(bad)).unwrap_err();
            assert!(
                err.message.contains("non-negative integer"),
                "iteration {bad} should be rejected, got: {}",
                err.message
            );
        }
        // Boundary cases that must stay representable.
        assert_eq!(Sample::from_json(&encode(0.0)).unwrap().iteration, 0);
        assert_eq!(Sample::from_json(&encode(4096.0)).unwrap().iteration, 4096);
    }

    #[test]
    fn context_labels() {
        let k = Context::new("app", "sys");
        assert_eq!(k.application, "app");
        assert_eq!(k.system, "sys");
        let h = Context::here("app2");
        assert!(!h.system.is_empty());
    }
}
