//! The concurrent multi-site tuning runtime: a process-global, sharded
//! registry of long-lived tuning sites.
//!
//! The paper's tuners ([`crate::tuner::OnlineTuner`],
//! [`crate::two_phase::TwoPhaseTuner`]) each own one call site on one
//! thread. Production workloads look different: *thousands* of independent
//! tuned call sites (one per hot function, per input-size bucket, per
//! endpoint) hit concurrently by many request threads. This module makes
//! that a first-class, near-zero-overhead capability, mirroring the shape
//! of Tuna's `tuna_site`/`tuna_pre`/`tuna_post` API around
//! semantically-interchangeable chunks of code:
//!
//! ```
//! use autotune::site::SiteSpec;
//! use autotune::tune_site;
//! use autotune::two_phase::{AlgorithmSpec, NominalKind};
//!
//! fn smallsort(a: &mut [u32]) {
//!     tune_site!(
//!         SiteSpec::algorithms(
//!             "smallsort",
//!             vec![
//!                 AlgorithmSpec::untunable("insertion"),
//!                 AlgorithmSpec::untunable("std-sort"),
//!             ],
//!             NominalKind::EpsilonGreedy(0.10),
//!             42,
//!         ),
//!         |algorithm, _config| match algorithm {
//!             0 => insertion_sort(a),
//!             _ => a.sort_unstable(),
//!         }
//!     );
//! }
//! # fn insertion_sort(a: &mut [u32]) {
//! #     for i in 1..a.len() {
//! #         let mut j = i;
//! #         while j > 0 && a[j - 1] > a[j] { a.swap(j - 1, j); j -= 1; }
//! #     }
//! # }
//! # let mut v = vec![3u32, 1, 2]; smallsort(&mut v); assert_eq!(v, [1, 2, 3]);
//! ```
//!
//! # Architecture
//!
//! **Slab layout.** Sites live in a fixed-capacity, process-global
//! [`SiteRegistry`] of [`MAX_SITES`] slots, striped round-robin across
//! [`NUM_SHARDS`] shards. Each shard owns an independently allocated table
//! of `AtomicPtr` slot pointers, and every `SiteSlot` is a separate
//! cache-line-aligned heap allocation — threads hitting *different* sites
//! never share a cache line, and registration in one shard never invalidates
//! another shard's table. Slot pointers are written once (`Release`) at
//! registration and only read (`Acquire`) afterwards, so lookup is two
//! dependent loads with no locks.
//!
//! **The claim CAS.** All tuner state (the phase-2 strategy, per-algorithm
//! phase-1 searchers, logs) sits in an `UnsafeCell` guarded by a single
//! claim word. A thread entering a site tries one
//! `compare_exchange(0 → 1, Acquire)`:
//!
//! * **Winner** — drives a real tuning iteration: `next()` on the embedded
//!   tuner, runs the chosen algorithm, `report()`s the measured time, then
//!   publishes the tuner's current exploit choice and releases the claim
//!   with a `Release` store. The Acquire/Release pairing on the claim word
//!   makes all tuner mutations happen-before the next winner's accesses —
//!   the same discipline as a spinlock, except nobody ever spins.
//! * **Loser** — does *not* wait. It reads the most recently *published*
//!   decision (best algorithm + its best-known configuration) through a
//!   seqlock and runs that, unmeasured. Contended calls therefore cost one
//!   failed CAS plus a seqlock read, and the measurement stream feeding the
//!   tuner stays serialized per site — no torn or interleaved ask/tell
//!   protocols, no lost updates.
//!
//! **The seqlock.** The published decision is a fixed-size, heap-free
//! encoding (algorithm index + up to [`MAX_PUBLISHED_PARAMS`] tagged
//! parameter values, each an `AtomicU64`). The writer (always the claim
//! holder, so writers never race each other) bumps the sequence word to odd
//! (`Relaxed` store, then a `Release` fence orders it before the data
//! stores), writes the payload with `Relaxed` stores, and bumps to even with
//! a `Release` store that orders the payload before it. Readers load the
//! sequence (`Acquire`), copy the payload (`Relaxed`), issue an `Acquire`
//! fence, and re-check the sequence: an odd or changed sequence means a
//! concurrent publish, so the read retries. Every word is an atomic, so
//! even a torn read-in-progress is well-defined — the retry just discards
//! it.
//!
//! **Counters.** Per-site call and contention counters are plain `Relaxed`
//! `fetch_add`s on the slot — monotonic and exact (no lost updates), which
//! the 8-thread stress test in `tests/site_runtime.rs` pins.
//!
//! **Telemetry.** Every event a site's tuner emits is stamped with the
//! site's id via [`crate::telemetry::with_site`], so one global trace
//! interleaves thousands of sites and can still be split per site at
//! export time.
//!
//! Single-threaded use is *bit-identical* to driving the underlying tuner
//! directly (the claim CAS always succeeds, so every call is a full tuning
//! iteration with the same seeds) — property-tested in
//! `tests/site_runtime.rs`.

use crate::measure::duration_ms;
use crate::param::Value;
use crate::robust::MeasureOutcome;
use crate::search::Searcher;
use crate::space::{Configuration, Constraint, SearchSpace};
use crate::telemetry::{self, EventKind, MeasureStatus};
use crate::tuner::{OnlineTuner, Termination};
use crate::two_phase::{AlgorithmSpec, NominalKind, Phase1Kind, TwoPhaseTuner};
use std::cell::UnsafeCell;
use std::sync::atomic::{fence, AtomicPtr, AtomicU32, AtomicU64, Ordering};
use std::sync::OnceLock;
use std::time::Instant;

/// Capacity of the process-global site registry.
pub const MAX_SITES: usize = 8192;

/// Number of registry shards; site ids stripe across shards round-robin.
pub const NUM_SHARDS: usize = 64;

const SITES_PER_SHARD: usize = MAX_SITES / NUM_SHARDS;

/// Maximum number of parameters a site's per-algorithm configuration may
/// have: the published exploit decision inlines every parameter value into
/// a fixed, heap-free seqlock payload. Checked at registration.
pub const MAX_PUBLISHED_PARAMS: usize = 8;

/// Identifier of a registered tuning site: a dense index into the global
/// registry, cheap to store in a `static` (see [`crate::tune_site!`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct SiteId(u32);

impl SiteId {
    /// The dense registry index.
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// The site tag recorded into telemetry events
    /// ([`crate::telemetry::Event::site`]).
    pub fn tag(self) -> u16 {
        self.0 as u16
    }
}

/// What a site tunes: algorithmic choice (two-phase) or a single numeric
/// parameter space.
#[derive(Clone)]
enum SpecKind {
    /// Phase-2 selection over algorithms, each with its own phase-1 space.
    Algorithms(Vec<AlgorithmSpec>, NominalKind),
    /// A single parameter space with no algorithmic choice, plus an
    /// optional starting configuration (set by warm-starting).
    Space(SearchSpace, Termination, Option<Configuration>),
}

/// Blueprint of a tuning site: what it tunes and with which strategies and
/// seed. Consumed by [`register`]; the slot keeps a clone as the recipe
/// for [`Site::restart`].
#[derive(Clone)]
pub struct SiteSpec {
    name: String,
    kind: SpecKind,
    phase1: Phase1Kind,
    seed: u64,
}

impl SiteSpec {
    /// A site with algorithmic choice: a phase-2 `nominal` strategy over
    /// `specs`, each algorithm with its own phase-1 searcher (Nelder-Mead
    /// unless overridden via [`SiteSpec::with_phase1`]). Equivalent to a
    /// dedicated [`TwoPhaseTuner`] with the same arguments.
    pub fn algorithms(
        name: impl Into<String>,
        specs: Vec<AlgorithmSpec>,
        nominal: NominalKind,
        seed: u64,
    ) -> Self {
        SiteSpec {
            name: name.into(),
            kind: SpecKind::Algorithms(specs, nominal),
            phase1: Phase1Kind::NelderMead,
            seed,
        }
    }

    /// A site tuning a single parameter space with no algorithmic choice.
    /// Equivalent to a dedicated [`OnlineTuner`] with [`Termination::Never`]
    /// (override via [`SiteSpec::with_termination`]).
    pub fn space(name: impl Into<String>, space: SearchSpace, seed: u64) -> Self {
        SiteSpec {
            name: name.into(),
            kind: SpecKind::Space(space, Termination::Never, None),
            phase1: Phase1Kind::NelderMead,
            seed,
        }
    }

    /// The site's display name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Replace the display name — used by [`crate::context::ContextSites`]
    /// to give its recycled pool slots stable `{prefix}/slot{NN}` registry
    /// names independent of which context key is currently bound.
    pub fn with_name(mut self, name: impl Into<String>) -> Self {
        self.name = name.into();
        self
    }

    /// A copy of this blueprint whose per-algorithm starting
    /// configurations are replaced by the given incumbents — the
    /// phase-1 half of cross-context warm-starting
    /// ([`crate::context::ContextSites`]).
    ///
    /// `incumbents` is index-aligned with the algorithm order
    /// (single-space sites read index 0). An incumbent is adopted only
    /// where it lies inside — and is feasible in — the matching
    /// algorithm's space; missing or infeasible entries leave that
    /// algorithm's start untouched, so a neighbor's posterior can never
    /// smuggle an invalid configuration past the constraints.
    pub fn with_incumbent_starts(
        mut self,
        incumbents: &[Option<(Configuration, f64)>],
    ) -> SiteSpec {
        match &mut self.kind {
            SpecKind::Algorithms(specs, _) => {
                for (s, inc) in specs.iter_mut().zip(incumbents) {
                    if let Some((c, _)) = inc {
                        if s.space.contains(c) && s.space.is_feasible(c) {
                            s.start = Some(c.clone());
                        }
                    }
                }
            }
            SpecKind::Space(space, _, start) => {
                if let Some(Some((c, _))) = incumbents.first() {
                    if space.contains(c) && space.is_feasible(c) {
                        *start = Some(c.clone());
                    }
                }
            }
        }
        self
    }

    /// Override the phase-1 searcher kind.
    pub fn with_phase1(mut self, phase1: Phase1Kind) -> Self {
        self.phase1 = phase1;
        self
    }

    /// Attach a feasibility [`Constraint`] to the site's search space.
    /// Single-space sites attach it to their space; algorithmic-choice
    /// sites attach it to *every* algorithm's space (declare constraints on
    /// the individual [`AlgorithmSpec`] spaces for per-algorithm rules).
    /// Proposals the constraint rejects and cannot repair are penalized by
    /// the site's tuner without ever reaching the interchangeable code.
    pub fn with_constraint(mut self, constraint: Constraint) -> Self {
        match &mut self.kind {
            SpecKind::Algorithms(specs, _) => {
                for s in specs.iter_mut() {
                    s.space = s.space.clone().with_constraint(constraint.clone());
                }
            }
            SpecKind::Space(space, _, _) => {
                *space = space.clone().with_constraint(constraint.clone());
            }
        }
        self
    }

    /// Override the termination criterion (single-space sites only; a
    /// terminated site keeps exploiting its best-known configuration).
    pub fn with_termination(mut self, termination: Termination) -> Self {
        if let SpecKind::Space(_, t, _) = &mut self.kind {
            *t = termination;
        }
        self
    }
}

/// The tuner embedded in a site: the same state machines applications
/// drive directly, made shareable by the slot's claim discipline.
pub enum SiteTuner {
    /// Algorithmic choice: a full two-phase tuner.
    TwoPhase(TwoPhaseTuner),
    /// Single parameter space: an online tuning loop.
    Single(OnlineTuner<Box<dyn Searcher>>),
}

impl SiteTuner {
    fn build(spec: SiteSpec) -> (SiteTuner, String) {
        let SiteSpec {
            name,
            kind,
            phase1,
            seed,
        } = spec;
        let tuner = match kind {
            SpecKind::Algorithms(specs, nominal) => {
                for s in &specs {
                    assert!(
                        s.space.dims() <= MAX_PUBLISHED_PARAMS,
                        "algorithm '{}' has {} parameters; sites publish at most {}",
                        s.name,
                        s.space.dims(),
                        MAX_PUBLISHED_PARAMS
                    );
                }
                SiteTuner::TwoPhase(TwoPhaseTuner::with_phase1(specs, nominal, phase1, seed))
            }
            SpecKind::Space(space, termination, start) => {
                assert!(
                    space.dims() <= MAX_PUBLISHED_PARAMS,
                    "space has {} parameters; sites publish at most {}",
                    space.dims(),
                    MAX_PUBLISHED_PARAMS
                );
                let mut aspec = AlgorithmSpec::new(name.clone(), space);
                aspec.start = start;
                let searcher = phase1.build(&aspec, seed);
                SiteTuner::Single(OnlineTuner::new(searcher, termination))
            }
        };
        (tuner, name)
    }

    fn next(&mut self) -> (usize, Configuration) {
        match self {
            SiteTuner::TwoPhase(t) => t.next(),
            SiteTuner::Single(t) => (0, t.ask()),
        }
    }

    fn is_feasible(&self, algorithm: usize, config: &Configuration) -> bool {
        match self {
            SiteTuner::TwoPhase(t) => t.space(algorithm).is_feasible(config),
            SiteTuner::Single(t) => t.searcher().space().is_feasible(config),
        }
    }

    fn report_outcome(&mut self, outcome: MeasureOutcome) {
        match self {
            SiteTuner::TwoPhase(t) => {
                t.report_outcome(outcome);
            }
            SiteTuner::Single(t) => {
                t.tell_outcome(outcome);
            }
        }
    }

    fn abandon(&mut self) {
        match self {
            SiteTuner::TwoPhase(t) => {
                t.abandon();
            }
            SiteTuner::Single(t) => {
                t.abandon();
            }
        }
    }

    fn exploit_choice(&self) -> (usize, Configuration) {
        match self {
            SiteTuner::TwoPhase(t) => t.exploit_choice(),
            SiteTuner::Single(t) => (
                0,
                t.best()
                    .map(|(c, _)| c.clone())
                    .unwrap_or_else(|| t.searcher().space().min_corner()),
            ),
        }
    }

    fn algorithm_count(&self) -> usize {
        match self {
            SiteTuner::TwoPhase(t) => t.num_algorithms(),
            SiteTuner::Single(_) => 1,
        }
    }

    /// Build a *warm-started* tuner from a blueprint and a neighboring
    /// context's posterior: every phase-1 searcher starts from the
    /// neighbor's incumbent configuration for its algorithm (where
    /// feasible — see [`SiteSpec::with_incumbent_starts`]), and for
    /// algorithmic-choice sites the phase-2 strategy is pre-seeded with
    /// one synthetic sample per observed algorithm
    /// ([`TwoPhaseTuner::seed_algorithm`]), so selection weights start
    /// from the neighbor's ranking instead of uniform ignorance.
    ///
    /// This is the seeding rule behind [`crate::context::ContextSites`]
    /// cross-context warm-starting; DESIGN.md §11 motivates it.
    pub fn build_warm(spec: SiteSpec, incumbents: &[Option<(Configuration, f64)>]) -> SiteTuner {
        let (mut tuner, _name) = SiteTuner::build(spec.with_incumbent_starts(incumbents));
        if let SiteTuner::TwoPhase(t) = &mut tuner {
            for (i, inc) in incumbents.iter().enumerate().take(t.num_algorithms()) {
                if let Some((_, v)) = inc {
                    t.seed_algorithm(i, *v);
                }
            }
        }
        tuner
    }

    /// Snapshot the per-algorithm incumbents — each algorithm's
    /// best-known (configuration, value), `None` where nothing has been
    /// observed yet. Index-aligned with the algorithm order
    /// (single-space tuners return one entry). This is the "posterior"
    /// a neighboring context is warm-started from.
    pub fn incumbents(&self) -> Vec<Option<(Configuration, f64)>> {
        match self {
            SiteTuner::TwoPhase(t) => (0..t.num_algorithms())
                .map(|i| t.searcher_best(i).map(|(c, v)| (c.clone(), v)))
                .collect(),
            SiteTuner::Single(t) => vec![t.best().map(|(c, v)| (c.clone(), v))],
        }
    }

    /// The embedded two-phase tuner, if this site has algorithmic choice.
    pub fn as_two_phase(&self) -> Option<&TwoPhaseTuner> {
        match self {
            SiteTuner::TwoPhase(t) => Some(t),
            SiteTuner::Single(_) => None,
        }
    }

    /// The embedded single-space tuner, if this site has none.
    pub fn as_single(&self) -> Option<&OnlineTuner<Box<dyn Searcher>>> {
        match self {
            SiteTuner::TwoPhase(_) => None,
            SiteTuner::Single(t) => Some(t),
        }
    }
}

/// 2-bit value-kind tags for the published decision payload.
const TAG_INT: u64 = 0;
const TAG_FLOAT: u64 = 1;
const TAG_INDEX: u64 = 2;

fn encode_value(v: Value) -> (u64, u64) {
    match v {
        Value::Int(i) => (i as u64, TAG_INT),
        Value::Float(f) => (f.to_bits(), TAG_FLOAT),
        Value::Index(i) => (i as u64, TAG_INDEX),
    }
}

fn decode_value(bits: u64, tag: u64) -> Value {
    match tag {
        TAG_FLOAT => Value::Float(f64::from_bits(bits)),
        TAG_INDEX => Value::Index(bits as usize),
        _ => Value::Int(bits as i64),
    }
}

/// One registered tuning site: claim word, counters, the seqlock-published
/// exploit decision, and the embedded tuner. Each slot is its own
/// cache-line-aligned allocation so independent sites never false-share.
#[repr(align(64))]
struct SiteSlot {
    /// Claim word: 0 = free, 1 = a thread is running a tuning iteration.
    claim: AtomicU32,
    /// Completed calls through this site (tuned + exploit fast path).
    calls: AtomicU64,
    /// Calls that lost the claim race and took the exploit fast path.
    contended: AtomicU64,
    /// Times the tuner was rebuilt from the recipe ([`Site::restart`]).
    restarts: AtomicU64,
    /// Seqlock sequence word for the published decision (even = stable).
    seq: AtomicU32,
    /// Published decision: algorithm index.
    pub_algo: AtomicU32,
    /// Published decision: number of configuration parameters.
    pub_len: AtomicU32,
    /// Published decision: 2-bit value-kind tags, parameter `i` at bits
    /// `2i..2i+2`.
    pub_tags: AtomicU64,
    /// Published decision: parameter value bits.
    pub_vals: [AtomicU64; MAX_PUBLISHED_PARAMS],
    id: SiteId,
    name: String,
    /// Algorithm count of the current binding; atomic because
    /// [`Site::rebind`] may install a tuner with a different algorithm
    /// set while readers inspect the site.
    num_algorithms: AtomicU32,
    /// Tuner state plus its blueprint; accessed only by the claim holder
    /// (see module docs).
    state: UnsafeCell<SlotState>,
}

/// Releases the slot's claim on drop. Armed while claim-holding code
/// runs tuner code or caller closures that may panic, so one poisoned
/// call cannot wedge the site into exploit-forever; dropping it is also
/// the normal-path release.
struct ReleaseClaim<'a>(&'a SiteSlot);

impl Drop for ReleaseClaim<'_> {
    fn drop(&mut self) {
        self.0.claim.store(0, Ordering::Release);
    }
}

/// The claim-guarded mutable state of a slot: the live tuner and the
/// blueprint it was built from. Both travel together because
/// [`Site::rebind`] swaps them as a unit — the recipe must always
/// describe the installed tuner, or [`Site::restart`] would rebuild the
/// wrong binding.
struct SlotState {
    tuner: SiteTuner,
    /// The binding blueprint, kept so [`Site::restart`] can rebuild a
    /// fresh tuner (same spec, same seed) after workload drift.
    recipe: SiteSpec,
}

// SAFETY: `state` is only accessed between a successful
// `claim.compare_exchange(0, 1, Acquire, _)` and the subsequent
// `claim.store(0, Release)`, giving mutual exclusion plus a happens-before
// edge from each claim holder's mutations to the next holder's reads.
// `SiteTuner` is `Send` (enforced below), so migrating that exclusive
// access across threads is sound. All other fields are atomics or
// immutable after construction.
unsafe impl Sync for SiteSlot {}
unsafe impl Send for SiteSlot {}

/// Compile-time proof that the claim discipline may hand the tuner to any
/// thread.
const _: fn() = || {
    fn assert_send<T: Send>() {}
    assert_send::<SiteTuner>();
};

impl SiteSlot {
    fn new(id: SiteId, spec: SiteSpec) -> Self {
        let recipe = spec.clone();
        let (tuner, name) = SiteTuner::build(spec);
        let num_algorithms = tuner.algorithm_count();
        let slot = SiteSlot {
            claim: AtomicU32::new(0),
            calls: AtomicU64::new(0),
            contended: AtomicU64::new(0),
            restarts: AtomicU64::new(0),
            seq: AtomicU32::new(0),
            pub_algo: AtomicU32::new(0),
            pub_len: AtomicU32::new(0),
            pub_tags: AtomicU64::new(0),
            pub_vals: Default::default(),
            id,
            name,
            num_algorithms: AtomicU32::new(num_algorithms as u32),
            state: UnsafeCell::new(SlotState { tuner, recipe }),
        };
        // Publish the initial exploit decision (the hand-crafted start or
        // the space's minimum corner) so the exploit fast path is valid
        // from the very first contended call. Single-threaded here: the
        // slot is not yet visible to the registry.
        let (algo, config) = unsafe { &(*slot.state.get()).tuner }.exploit_choice();
        slot.publish(algo, &config);
        slot
    }

    /// Publish `(algo, config)` as the decision contended callers run.
    /// Caller must hold the claim (or be constructing the slot), so there
    /// is exactly one writer at a time.
    fn publish(&self, algo: usize, config: &Configuration) {
        let s = self.seq.load(Ordering::Relaxed);
        self.seq.store(s.wrapping_add(1), Ordering::Relaxed);
        // Order the odd sequence before the payload stores.
        fence(Ordering::Release);
        self.pub_algo.store(algo as u32, Ordering::Relaxed);
        let values = config.values();
        self.pub_len.store(values.len() as u32, Ordering::Relaxed);
        let mut tags = 0u64;
        for (i, v) in values.iter().take(MAX_PUBLISHED_PARAMS).enumerate() {
            let (bits, tag) = encode_value(*v);
            self.pub_vals[i].store(bits, Ordering::Relaxed);
            tags |= tag << (2 * i);
        }
        self.pub_tags.store(tags, Ordering::Relaxed);
        // Order the payload stores before the even sequence.
        self.seq.store(s.wrapping_add(2), Ordering::Release);
    }

    /// Seqlock read of the published decision. Lock-free: retries only
    /// while a concurrent publish is mid-flight.
    fn read_decision(&self) -> (usize, Configuration) {
        loop {
            let s1 = self.seq.load(Ordering::Acquire);
            if s1 & 1 == 0 {
                let algo = self.pub_algo.load(Ordering::Relaxed) as usize;
                let len = (self.pub_len.load(Ordering::Relaxed) as usize).min(MAX_PUBLISHED_PARAMS);
                let tags = self.pub_tags.load(Ordering::Relaxed);
                let mut values = Vec::with_capacity(len);
                for (i, slot) in self.pub_vals.iter().take(len).enumerate() {
                    values.push(decode_value(
                        slot.load(Ordering::Relaxed),
                        (tags >> (2 * i)) & 0b11,
                    ));
                }
                // Order the payload loads before the sequence re-check.
                fence(Ordering::Acquire);
                if self.seq.load(Ordering::Relaxed) == s1 {
                    return (algo, Configuration::new(values));
                }
            }
            std::hint::spin_loop();
        }
    }
}

/// A handle to a registered tuning site — `Copy`, so it can be passed
/// around freely; all state lives in the global registry.
#[derive(Clone, Copy)]
pub struct Site {
    slot: &'static SiteSlot,
}

impl Site {
    /// The site's id.
    pub fn id(self) -> SiteId {
        self.slot.id
    }

    /// The site's display name.
    pub fn name(self) -> &'static str {
        &self.slot.name
    }

    /// Number of algorithms this site selects between (1 for single-space
    /// sites). Tracks the current binding across [`Site::rebind`]s.
    pub fn num_algorithms(self) -> usize {
        self.slot.num_algorithms.load(Ordering::Relaxed) as usize
    }

    /// Completed calls through this site (tuned iterations + exploit fast
    /// path). Exact under concurrency — the stress tests pin this.
    pub fn calls(self) -> u64 {
        self.slot.calls.load(Ordering::Relaxed)
    }

    /// Calls that lost the claim race and ran the published decision
    /// instead of a tuning iteration.
    pub fn contended(self) -> u64 {
        self.slot.contended.load(Ordering::Relaxed)
    }

    /// Calls that ran a full tuning iteration.
    pub fn tuned_iterations(self) -> u64 {
        self.calls() - self.contended()
    }

    /// Times this site's tuner was rebuilt from its recipe
    /// ([`Site::restart`]) — normally in response to detected workload
    /// drift ([`crate::drift`]).
    pub fn restarts(self) -> u64 {
        self.slot.restarts.load(Ordering::Relaxed)
    }

    /// Throw away all learned state and rebuild the tuner from the
    /// registration recipe (same algorithm set, same strategies, same
    /// seed), re-widening the search after workload drift.
    ///
    /// Spins for the claim like [`Site::with_tuner`], so it must not be
    /// called from a thread that already holds it (e.g. inside
    /// [`Site::tuned`]'s closure). The fresh tuner's exploit choice is
    /// published before the claim is released, so concurrent exploit
    /// traffic never observes stale decisions. Counters (`calls`,
    /// `contended`) are *not* reset — they count traffic, not learning.
    pub fn restart(self) {
        let slot = self.slot;
        while slot
            .claim
            .compare_exchange(0, 1, Ordering::Acquire, Ordering::Relaxed)
            .is_err()
        {
            std::hint::spin_loop();
        }
        // SAFETY: this thread holds the claim (see `Sync` impl).
        let state = unsafe { &mut *slot.state.get() };
        let (tuner, _name) = SiteTuner::build(state.recipe.clone());
        state.tuner = tuner;
        let (algo, config) = state.tuner.exploit_choice();
        slot.publish(algo, &config);
        slot.restarts.fetch_add(1, Ordering::Relaxed);
        slot.claim.store(0, Ordering::Release);
    }

    /// Rebind this site to a new blueprint, returning the outgoing tuner:
    /// the slot-recycling primitive behind
    /// [`crate::context::ContextSites`]. Install `tuner` verbatim if
    /// `Some` (a previously parked state, so an evicted context's
    /// re-admission is bit-identical) or a cold build from `spec`
    /// otherwise; `spec` becomes the new [`Site::restart`] recipe either
    /// way, and the incoming tuner's exploit choice is published before
    /// the claim is released so concurrent exploit traffic never sees the
    /// old binding's decision.
    ///
    /// Spins for the claim like [`Site::restart`], so it must not be
    /// called from a thread that already holds it. The caller must ensure
    /// no in-flight [`SiteGuard`] from the *previous* binding is still
    /// outstanding — a late `post()` would be counted (and traced)
    /// against the new binding; [`crate::context::ContextSites`] enforces
    /// this with per-slot in-flight accounting. Traffic counters
    /// (`calls`, `contended`) are not reset: they count the slot, not
    /// the binding.
    pub fn rebind(self, spec: SiteSpec, tuner: Option<SiteTuner>) -> SiteTuner {
        let slot = self.slot;
        // Cold builds happen outside the claim: registration cost must
        // not extend the window in which callers are forced onto the
        // (stale) exploit path.
        let incoming = match tuner {
            Some(t) => t,
            None => SiteTuner::build(spec.clone()).0,
        };
        while slot
            .claim
            .compare_exchange(0, 1, Ordering::Acquire, Ordering::Relaxed)
            .is_err()
        {
            std::hint::spin_loop();
        }
        // SAFETY: this thread holds the claim (see `Sync` impl).
        let state = unsafe { &mut *slot.state.get() };
        let outgoing = std::mem::replace(&mut state.tuner, incoming);
        state.recipe = spec;
        slot.num_algorithms
            .store(state.tuner.algorithm_count() as u32, Ordering::Relaxed);
        let (algo, config) = state.tuner.exploit_choice();
        slot.publish(algo, &config);
        slot.claim.store(0, Ordering::Release);
        outgoing
    }

    /// Enter the site (Tuna's `tuna_pre`): pick the algorithm and
    /// configuration to run — a fresh tuner proposal if this thread wins
    /// the claim CAS, the published exploit decision otherwise. Pair with
    /// [`SiteGuard::post`] / [`SiteGuard::post_outcome`] around the
    /// interchangeable code, or drop the guard to abandon the call.
    pub fn pre(self) -> SiteGuard {
        let slot = self.slot;
        let mut claimed = slot
            .claim
            .compare_exchange(0, 1, Ordering::Acquire, Ordering::Relaxed)
            .is_ok();
        let (algorithm, config) = if claimed {
            // Release the claim if the tuner panics mid-proposal.
            let bomb = ReleaseClaim(slot);
            // SAFETY: this thread holds the claim (see `Sync` impl).
            let proposal = telemetry::with_site(slot.id.tag(), || {
                let tuner = unsafe { &mut (*slot.state.get()).tuner };
                let (a, c) = tuner.next();
                if tuner.is_feasible(a, &c) {
                    Some((a, c))
                } else {
                    // The searcher could not repair its proposal into the
                    // constrained region: take the penalty path inside the
                    // claim instead of letting the caller run (and time) an
                    // invalid configuration, and re-publish the exploit
                    // decision so the fast path below serves a sane choice.
                    tuner.report_outcome(MeasureOutcome::Failed("infeasible proposal".into()));
                    let (algo, config) = tuner.exploit_choice();
                    slot.publish(algo, &config);
                    None
                }
            });
            std::mem::forget(bomb);
            match proposal {
                Some(p) => p,
                None => {
                    slot.claim.store(0, Ordering::Release);
                    claimed = false;
                    slot.read_decision()
                }
            }
        } else {
            slot.contended.fetch_add(1, Ordering::Relaxed);
            slot.read_decision()
        };
        SiteGuard {
            site: self,
            algorithm,
            config,
            start: Instant::now(),
            claimed,
            finished: false,
        }
    }

    /// Run `f(algorithm, config)` as one timed call through the site:
    /// [`Site::pre`], the closure, then [`SiteGuard::post`] with the
    /// closure's wall time. If `f` panics the call is abandoned (no sample
    /// is recorded, the claim is released) and the panic propagates.
    pub fn tuned<R>(self, f: impl FnOnce(usize, &Configuration) -> R) -> R {
        let guard = self.pre();
        let r = f(guard.algorithm(), guard.config());
        guard.post();
        r
    }

    /// Run `f` with exclusive access to the site's tuner, spinning until
    /// the claim is free. For analysis, reporting and tests — **not** for
    /// hot paths (this is the one knowingly blocking entry point), and
    /// never while holding a lock a claim holder might take. The claim is
    /// released even if `f` panics (`f` gets a shared reference, so an
    /// unwound closure cannot leave the tuner half-mutated).
    pub fn with_tuner<R>(self, f: impl FnOnce(&SiteTuner) -> R) -> R {
        let slot = self.slot;
        while slot
            .claim
            .compare_exchange(0, 1, Ordering::Acquire, Ordering::Relaxed)
            .is_err()
        {
            std::hint::spin_loop();
        }
        let _release = ReleaseClaim(slot);
        // SAFETY: this thread holds the claim (see `Sync` impl).
        f(unsafe { &(*slot.state.get()).tuner })
    }

    /// Non-blocking [`Site::with_tuner`]: run `f` with exclusive access
    /// to the site's tuner if the claim is free *right now*, or return
    /// `None` without waiting. For callers that hold other locks while
    /// inspecting a site — the claim is held across a claim winner's
    /// entire measured call, so spinning on it from inside a lock (as
    /// [`crate::context::ContextSites`] warm-starting would otherwise do
    /// from inside its table lock) can stall or deadlock.
    pub fn try_with_tuner<R>(self, f: impl FnOnce(&SiteTuner) -> R) -> Option<R> {
        let slot = self.slot;
        if slot
            .claim
            .compare_exchange(0, 1, Ordering::Acquire, Ordering::Relaxed)
            .is_err()
        {
            return None;
        }
        let _release = ReleaseClaim(slot);
        // SAFETY: this thread holds the claim (see `Sync` impl).
        Some(f(unsafe { &(*slot.state.get()).tuner }))
    }
}

impl std::fmt::Debug for Site {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Site")
            .field("id", &self.slot.id.index())
            .field("name", &self.slot.name)
            .field("calls", &self.calls())
            .field("contended", &self.contended())
            .finish()
    }
}

/// In-flight call through a [`Site`]: carries the chosen algorithm and
/// configuration from [`Site::pre`] to [`SiteGuard::post`] (Tuna's
/// `tuna_stack`). Dropping the guard without calling a `post` method
/// abandons the call: the tuner rolls back its proposal and no sample or
/// call is recorded.
pub struct SiteGuard {
    site: Site,
    algorithm: usize,
    config: Configuration,
    start: Instant,
    claimed: bool,
    finished: bool,
}

impl SiteGuard {
    /// The algorithm to run (always 0 for single-space sites).
    pub fn algorithm(&self) -> usize {
        self.algorithm
    }

    /// The configuration to run it with.
    pub fn config(&self) -> &Configuration {
        &self.config
    }

    /// Did this call win the claim race (a full tuning iteration) rather
    /// than take the exploit fast path?
    pub fn is_tuning(&self) -> bool {
        self.claimed
    }

    /// Complete the call (Tuna's `tuna_post`): report the elapsed wall
    /// time since [`Site::pre`] to the site's tuner (claim winners) or
    /// just record the call (exploit fast path). Returns the elapsed
    /// milliseconds.
    pub fn post(mut self) -> f64 {
        let ms = duration_ms(self.start.elapsed());
        self.finish(MeasureOutcome::Ok(ms));
        ms
    }

    /// Complete the call with an explicit measurement outcome — for
    /// callers timing through the robust pipeline
    /// ([`crate::robust::robust_call`]) instead of the guard's own clock.
    /// Failures and timeouts feed the tuner's penalty path.
    pub fn post_outcome(mut self, outcome: MeasureOutcome) {
        self.finish(outcome);
    }

    fn finish(&mut self, outcome: MeasureOutcome) {
        self.finished = true;
        let slot = self.site.slot;
        if self.claimed {
            telemetry::with_site(slot.id.tag(), || {
                // SAFETY: this thread holds the claim (see `Sync` impl).
                let tuner = unsafe { &mut (*slot.state.get()).tuner };
                tuner.report_outcome(outcome);
                let (algo, config) = tuner.exploit_choice();
                slot.publish(algo, &config);
            });
            slot.claim.store(0, Ordering::Release);
        } else {
            // Exploit fast path: the tuner never sees this sample, but the
            // trace still shows the site's activity.
            let algorithm = self.algorithm as u16;
            telemetry::with_site(slot.id.tag(), || {
                telemetry::emit(|| EventKind::MeasureOutcome {
                    algorithm,
                    status: match &outcome {
                        MeasureOutcome::Ok(_) => MeasureStatus::Ok,
                        MeasureOutcome::Failed(_) => MeasureStatus::Failed,
                        MeasureOutcome::TimedOut => MeasureStatus::TimedOut,
                    },
                    runtime_ms: match &outcome {
                        MeasureOutcome::Ok(v) => *v,
                        _ => f64::NAN,
                    },
                });
            });
        }
        slot.calls.fetch_add(1, Ordering::Relaxed);
    }
}

impl Drop for SiteGuard {
    fn drop(&mut self) {
        if self.finished {
            return;
        }
        let slot = self.site.slot;
        if self.claimed {
            // SAFETY: this thread holds the claim (see `Sync` impl).
            unsafe { &mut (*slot.state.get()).tuner }.abandon();
            slot.claim.store(0, Ordering::Release);
        }
        // Abandoned calls are not counted: nothing ran to completion.
    }
}

/// One registry shard: an independently allocated, cache-line-aligned
/// table of slot pointers (written once at registration, read-only after).
#[repr(align(64))]
struct RegistryShard {
    slots: Box<[AtomicPtr<SiteSlot>]>,
}

/// The process-global, sharded site table. Use the free functions
/// [`register`] / [`site`] (or [`crate::tune_site!`]); the type is public
/// so its capacity and occupancy can be inspected.
pub struct SiteRegistry {
    shards: Box<[RegistryShard]>,
    next: AtomicU32,
}

impl SiteRegistry {
    fn new() -> Self {
        SiteRegistry {
            shards: (0..NUM_SHARDS)
                .map(|_| RegistryShard {
                    slots: (0..SITES_PER_SHARD)
                        .map(|_| AtomicPtr::new(std::ptr::null_mut()))
                        .collect(),
                })
                .collect(),
            next: AtomicU32::new(0),
        }
    }

    /// Number of registered sites.
    pub fn len(&self) -> usize {
        (self.next.load(Ordering::Relaxed) as usize).min(MAX_SITES)
    }

    /// True before the first registration.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    fn register(&self, spec: SiteSpec) -> SiteId {
        let id = self.next.fetch_add(1, Ordering::Relaxed);
        assert!(
            (id as usize) < MAX_SITES,
            "site registry exhausted ({MAX_SITES} sites)"
        );
        let site_id = SiteId(id);
        let slot = Box::into_raw(Box::new(SiteSlot::new(site_id, spec)));
        let shard = &self.shards[id as usize % NUM_SHARDS];
        shard.slots[id as usize / NUM_SHARDS].store(slot, Ordering::Release);
        site_id
    }

    fn get(&self, id: SiteId) -> Site {
        let i = id.index();
        assert!(i < MAX_SITES, "site id {i} out of range");
        let ptr = self.shards[i % NUM_SHARDS].slots[i / NUM_SHARDS].load(Ordering::Acquire);
        assert!(!ptr.is_null(), "site id {i} is not registered");
        Site {
            // SAFETY: slots are created by `Box::into_raw` and never freed
            // while the process-global registry lives (i.e. forever).
            slot: unsafe { &*ptr },
        }
    }
}

static REGISTRY: OnceLock<SiteRegistry> = OnceLock::new();

/// The process-global site registry.
pub fn registry() -> &'static SiteRegistry {
    REGISTRY.get_or_init(SiteRegistry::new)
}

/// Register a new long-lived tuning site. Typically called once per call
/// site through [`crate::tune_site!`]; panics after [`MAX_SITES`]
/// registrations.
pub fn register(spec: SiteSpec) -> SiteId {
    registry().register(spec)
}

/// Look up a registered site by id. Panics on an unregistered id.
pub fn site(id: SiteId) -> Site {
    registry().get(id)
}

/// Declare a static tuning site and (optionally) run one call through it.
///
/// The one-argument form evaluates `$spec` on the first execution only,
/// registers the site, and evaluates to the [`Site`] handle — Tuna's
/// `static tuna_site` in a macro:
///
/// ```
/// use autotune::param::Parameter;
/// use autotune::site::SiteSpec;
/// use autotune::space::SearchSpace;
/// use autotune::tune_site;
///
/// let site = tune_site!(SiteSpec::space(
///     "chunk-size",
///     SearchSpace::new(vec![Parameter::ratio("log2_chunk", 4, 16)]),
///     7,
/// ));
/// let guard = site.pre();
/// let _chunk = 1usize << guard.config().get(0).as_i64();
/// // ... do the chunked work ...
/// guard.post();
/// ```
///
/// The two-argument form additionally runs `$body` as one timed call
/// (see [`Site::tuned`]).
#[macro_export]
macro_rules! tune_site {
    ($spec:expr) => {{
        static SITE: ::std::sync::OnceLock<$crate::site::SiteId> = ::std::sync::OnceLock::new();
        $crate::site::site(*SITE.get_or_init(|| $crate::site::register($spec)))
    }};
    ($spec:expr, $body:expr) => {
        $crate::tune_site!($spec).tuned($body)
    };
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::param::Parameter;

    fn three_algo_spec(name: &str, seed: u64) -> SiteSpec {
        SiteSpec::algorithms(
            name,
            vec![
                AlgorithmSpec::untunable("slow"),
                AlgorithmSpec::untunable("fast"),
                AlgorithmSpec::untunable("mid"),
            ],
            NominalKind::EpsilonGreedy(0.10),
            seed,
        )
    }

    #[test]
    fn value_encoding_round_trips() {
        for v in [
            Value::Int(-40),
            Value::Int(i64::MAX),
            Value::Float(3.25),
            Value::Float(-0.0),
            Value::Index(7),
        ] {
            let (bits, tag) = encode_value(v);
            assert_eq!(decode_value(bits, tag), v);
        }
    }

    #[test]
    fn single_site_converges_like_a_two_phase_tuner() {
        let id = register(three_algo_spec("converges", 3));
        let s = site(id);
        for _ in 0..300 {
            s.tuned(|alg, _| {
                std::hint::black_box([30u64, 5, 15][alg]);
            });
        }
        assert_eq!(s.calls(), 300);
        assert_eq!(s.contended(), 0, "single-threaded runs never contend");
        // The cheap algorithm wins on wall time (index 1 only by cost
        // model; here all bodies are ~equal, so just check the protocol).
        s.with_tuner(|t| {
            let tp = t.as_two_phase().unwrap();
            assert_eq!(tp.log().len(), 300);
        });
    }

    #[test]
    fn published_decision_is_always_valid() {
        let space = SearchSpace::new(vec![
            Parameter::ratio("threads", 1, 8),
            Parameter::interval("cutoff", -10, 50),
        ]);
        let id = register(SiteSpec::space("published", space.clone(), 11));
        let s = site(id);
        // Fresh site: the published decision decodes into the space.
        let (algo, config) = s.slot.read_decision();
        assert_eq!(algo, 0);
        assert!(space.contains(&config), "{config:?}");
        for _ in 0..50 {
            s.tuned(|_, c| {
                assert!(space.contains(c), "{c:?}");
            });
        }
        let (_, config) = s.slot.read_decision();
        assert!(space.contains(&config), "{config:?}");
    }

    #[test]
    fn constrained_site_never_runs_infeasible_tuning_proposals() {
        // Threads must be even; repair rounds down. Claim-winning calls are
        // real measurements, so they must always satisfy the constraint.
        let space = SearchSpace::new(vec![Parameter::ratio("threads", 1, 8)]).with_constraint(
            Constraint::new("even", |c: &Configuration| c.get(0).as_i64() % 2 == 0).with_repair(
                |c: &Configuration| {
                    let t = c.get(0).as_i64();
                    Configuration::new(vec![Value::Int((t - t % 2).max(2))])
                },
            ),
        );
        let id = register(SiteSpec::space("constrained", space, 31));
        let s = site(id);
        for _ in 0..100 {
            let g = s.pre();
            if g.is_tuning() {
                assert_eq!(g.config().get(0).as_i64() % 2, 0, "{:?}", g.config());
            }
            g.post();
        }
        assert_eq!(s.calls(), 100);
    }

    #[test]
    fn irreparable_site_penalizes_and_serves_the_exploit_path() {
        // Unsatisfiable constraint: every proposal is irreparably
        // infeasible, so the tuner absorbs penalties and callers are served
        // the published decision — the site never wedges and the body is
        // never timed as a measurement.
        let spec = SiteSpec::space(
            "blocked",
            SearchSpace::new(vec![Parameter::ratio("x", 0, 4)]),
            37,
        )
        .with_constraint(Constraint::new("never", |_| false));
        let id = register(spec);
        let s = site(id);
        for _ in 0..20 {
            let g = s.pre();
            assert!(!g.is_tuning(), "infeasible proposals must not be timed");
            g.post();
        }
        assert_eq!(s.calls(), 20);
        s.with_tuner(|t| {
            let tuner = t.as_single().unwrap();
            assert_eq!(tuner.failure_count(), 20, "each call penalized once");
        });
    }

    #[test]
    fn contended_calls_take_the_exploit_path() {
        let id = register(three_algo_spec("contended", 17));
        let s = site(id);
        // Hold the claim on this thread, then drive calls from another:
        // every one of them must take the exploit path.
        let guard = s.pre();
        assert!(guard.is_tuning());
        let handle = std::thread::spawn(move || {
            let s = site(id);
            for _ in 0..25 {
                let g = s.pre();
                assert!(!g.is_tuning());
                g.post();
            }
        });
        handle.join().unwrap();
        guard.post();
        assert_eq!(s.calls(), 26);
        assert_eq!(s.contended(), 25);
        assert_eq!(s.tuned_iterations(), 1);
    }

    #[test]
    fn dropping_the_guard_abandons_the_call() {
        let id = register(three_algo_spec("abandon", 23));
        let s = site(id);
        drop(s.pre());
        assert_eq!(s.calls(), 0, "abandoned calls are not counted");
        // The site is not wedged: a full call still works.
        s.tuned(|_, _| {});
        assert_eq!(s.calls(), 1);
        assert_eq!(s.tuned_iterations(), 1);
    }

    #[test]
    fn panicking_body_releases_the_claim() {
        let id = register(three_algo_spec("panics", 29));
        let s = site(id);
        let r = std::panic::catch_unwind(|| {
            site(id).tuned(|_, _| panic!("kernel exploded"));
        });
        assert!(r.is_err());
        assert_eq!(s.calls(), 0);
        // Next call wins the claim again (the site is not stuck in
        // exploit-forever).
        let g = s.pre();
        assert!(g.is_tuning());
        g.post();
    }

    #[test]
    fn panicking_with_tuner_closure_releases_the_claim() {
        let id = register(three_algo_spec("with-tuner-panics", 41));
        let s = site(id);
        let r = std::panic::catch_unwind(|| site(id).with_tuner(|_| -> () { panic!("boom") }));
        assert!(r.is_err());
        // The claim was released on unwind: the next call still tunes.
        let g = s.pre();
        assert!(g.is_tuning());
        g.post();
    }

    #[test]
    fn try_with_tuner_declines_while_the_claim_is_held() {
        let id = register(three_algo_spec("try-tuner", 43));
        let s = site(id);
        assert!(s.try_with_tuner(|_| ()).is_some(), "free claim succeeds");
        let g = s.pre();
        assert!(g.is_tuning());
        assert!(
            s.try_with_tuner(|_| ()).is_none(),
            "held claim declines instead of spinning"
        );
        g.post();
        assert!(s.try_with_tuner(|_| ()).is_some());
    }

    #[test]
    fn tune_site_macro_registers_once() {
        fn hot_function() -> Site {
            tune_site!(SiteSpec::space(
                "macro-static",
                SearchSpace::new(vec![Parameter::ratio("x", 0, 10)]),
                5,
            ))
        }
        let a = hot_function();
        let b = hot_function();
        assert_eq!(a.id(), b.id(), "one static site per call site");
        a.tuned(|_, _| {});
        b.tuned(|_, _| {});
        assert_eq!(a.calls(), 2);
    }

    #[test]
    fn restart_rebuilds_the_tuner_and_republishes() {
        let id = register(three_algo_spec("restart", 37));
        let s = site(id);
        for _ in 0..40 {
            s.tuned(|_, _| {});
        }
        s.with_tuner(|t| assert_eq!(t.as_two_phase().unwrap().log().len(), 40));
        assert_eq!(s.restarts(), 0);
        s.restart();
        assert_eq!(s.restarts(), 1);
        // Learned state is gone; traffic counters are not.
        s.with_tuner(|t| assert_eq!(t.as_two_phase().unwrap().log().len(), 0));
        assert_eq!(s.calls(), 40);
        // The published decision is still valid and the site keeps tuning.
        let (algo, _) = s.slot.read_decision();
        assert!(algo < 3);
        s.tuned(|_, _| {});
        s.with_tuner(|t| assert_eq!(t.as_two_phase().unwrap().log().len(), 1));
    }

    #[test]
    fn registry_lookup_matches_registration() {
        let before = registry().len();
        let id = register(three_algo_spec("lookup", 31));
        assert!(registry().len() > before);
        assert_eq!(site(id).id(), id);
        assert_eq!(site(id).num_algorithms(), 3);
        assert_eq!(site(id).name(), "lookup");
    }
}
