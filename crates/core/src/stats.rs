//! Small descriptive-statistics helpers used by the experiment harness and
//! by the strategies' own bookkeeping (means over windows, medians over
//! repetitions, boxplot quartiles for the figures).

/// Arithmetic mean. Returns `NaN` for an empty slice.
pub fn mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return f64::NAN;
    }
    xs.iter().sum::<f64>() / xs.len() as f64
}

/// Population standard deviation. Returns `NaN` for an empty slice.
pub fn stddev(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return f64::NAN;
    }
    let m = mean(xs);
    (xs.iter().map(|x| (x - m) * (x - m)).sum::<f64>() / xs.len() as f64).sqrt()
}

/// Median (linear-interpolation free: the classic midpoint-of-two rule).
/// Returns `NaN` for an empty slice.
pub fn median(xs: &[f64]) -> f64 {
    quantile(xs, 0.5)
}

/// Quantile `q ∈ [0, 1]` using linear interpolation between order statistics
/// (type-7 quantile, the R/NumPy default). Returns `NaN` for an empty slice.
///
/// NaN policy: NaN samples carry no ordering information, so they are
/// *filtered out* and the quantile is computed over the remaining values
/// (matching NumPy's `nanquantile`). An input that is empty or all-NaN
/// yields `NaN`. A single bad sample therefore degrades one number in a
/// report instead of aborting the whole experiment run.
pub fn quantile(xs: &[f64], q: f64) -> f64 {
    assert!((0.0..=1.0).contains(&q), "quantile out of range: {q}");
    let mut sorted: Vec<f64> = xs.iter().copied().filter(|x| !x.is_nan()).collect();
    if sorted.is_empty() {
        return f64::NAN;
    }
    sorted.sort_by(f64::total_cmp);
    let h = q * (sorted.len() as f64 - 1.0);
    // Re-clamp both order-statistic indices after the float round-trip:
    // NaN filtering shrinks the slice under the caller's nominal length,
    // and `ceil` on the rank must never be trusted to land inside the
    // *filtered* window — on 1–3 element windows one step past the end is
    // an out-of-bounds read, not a rounding nit.
    let hi = (h.ceil() as usize).min(sorted.len() - 1);
    let lo = (h.floor() as usize).min(hi);
    if lo == hi {
        sorted[lo]
    } else {
        sorted[lo] + (h - lo as f64) * (sorted[hi] - sorted[lo])
    }
}

/// The five numbers a boxplot needs: min, first quartile, median, third
/// quartile, max. Mirrors the boxplots of Figures 1, 4 and 8.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FiveNumber {
    /// Smallest sample.
    pub min: f64,
    /// First quartile.
    pub q1: f64,
    /// Median.
    pub median: f64,
    /// Third quartile.
    pub q3: f64,
    /// Largest sample.
    pub max: f64,
}

impl FiveNumber {
    /// Compute the summary. Returns `None` for an empty slice.
    pub fn of(xs: &[f64]) -> Option<FiveNumber> {
        if xs.is_empty() {
            return None;
        }
        Some(FiveNumber {
            min: quantile(xs, 0.0),
            q1: quantile(xs, 0.25),
            median: quantile(xs, 0.5),
            q3: quantile(xs, 0.75),
            max: quantile(xs, 1.0),
        })
    }

    /// Interquartile range.
    pub fn iqr(&self) -> f64 {
        self.q3 - self.q1
    }
}

/// Transpose a ragged matrix of per-repetition iteration series into
/// per-iteration sample vectors, then reduce each with `f`. This is exactly
/// how the paper's per-iteration median/mean curves (Figures 2, 3, 6, 7) are
/// produced from 100 experiment repetitions.
pub fn per_iteration_reduce(series: &[Vec<f64>], f: impl Fn(&[f64]) -> f64) -> Vec<f64> {
    let max_len = series.iter().map(Vec::len).max().unwrap_or(0);
    (0..max_len)
        .map(|i| {
            let column: Vec<f64> = series.iter().filter_map(|s| s.get(i).copied()).collect();
            f(&column)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_and_stddev_basic() {
        assert_eq!(mean(&[1.0, 2.0, 3.0]), 2.0);
        assert!((stddev(&[2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn empty_inputs_give_nan() {
        assert!(mean(&[]).is_nan());
        assert!(stddev(&[]).is_nan());
        assert!(median(&[]).is_nan());
        assert!(FiveNumber::of(&[]).is_none());
    }

    #[test]
    fn median_odd_and_even() {
        assert_eq!(median(&[3.0, 1.0, 2.0]), 2.0);
        assert_eq!(median(&[4.0, 1.0, 2.0, 3.0]), 2.5);
    }

    #[test]
    fn median_single_element() {
        assert_eq!(median(&[42.0]), 42.0);
    }

    #[test]
    fn quantile_interpolates() {
        let xs = [10.0, 20.0, 30.0, 40.0];
        assert_eq!(quantile(&xs, 0.0), 10.0);
        assert_eq!(quantile(&xs, 1.0), 40.0);
        assert!((quantile(&xs, 0.25) - 17.5).abs() < 1e-12);
    }

    #[test]
    fn quantile_is_order_invariant() {
        let a = [5.0, 1.0, 4.0, 2.0, 3.0];
        let b = [1.0, 2.0, 3.0, 4.0, 5.0];
        for q in [0.0, 0.1, 0.5, 0.9, 1.0] {
            assert_eq!(quantile(&a, q), quantile(&b, q));
        }
    }

    #[test]
    fn five_number_summary() {
        let s = FiveNumber::of(&[1.0, 2.0, 3.0, 4.0, 5.0]).unwrap();
        assert_eq!(s.min, 1.0);
        assert_eq!(s.q1, 2.0);
        assert_eq!(s.median, 3.0);
        assert_eq!(s.q3, 4.0);
        assert_eq!(s.max, 5.0);
        assert_eq!(s.iqr(), 2.0);
    }

    #[test]
    fn per_iteration_reduce_handles_ragged_series() {
        let series = vec![
            vec![1.0, 2.0, 3.0],
            vec![3.0, 4.0],
            vec![5.0, 6.0, 7.0, 8.0],
        ];
        let medians = per_iteration_reduce(&series, median);
        assert_eq!(medians, vec![3.0, 4.0, 5.0, 8.0]);
    }

    #[test]
    #[should_panic(expected = "quantile out of range")]
    fn quantile_rejects_bad_q() {
        quantile(&[1.0], 1.5);
    }

    #[test]
    fn quantile_filters_nan_samples() {
        // One bad sample must not abort report generation: NaNs are dropped
        // and the quantile is taken over what remains.
        let xs = [3.0, f64::NAN, 1.0, 2.0];
        assert_eq!(median(&xs), 2.0);
        assert_eq!(quantile(&xs, 0.0), 1.0);
        assert_eq!(quantile(&xs, 1.0), 3.0);
    }

    #[test]
    fn quantile_short_nan_heavy_windows_stay_in_bounds() {
        // Regression: with NaNs filtered the slice is shorter than the
        // caller's window, and the `ceil`-derived upper index must be
        // re-clamped to the filtered length. 1–3 element windows, every
        // quartile a boxplot asks for.
        for q in [0.0, 0.25, 0.5, 0.75, 1.0] {
            assert_eq!(quantile(&[f64::NAN, 7.0], q), 7.0);
            assert_eq!(quantile(&[7.0, f64::NAN, f64::NAN], q), 7.0);
        }
        let two = [f64::NAN, 1.0, 3.0];
        assert_eq!(quantile(&two, 0.0), 1.0);
        assert_eq!(quantile(&two, 0.5), 2.0);
        assert_eq!(quantile(&two, 1.0), 3.0);
        let three = [2.0, f64::NAN, 1.0, 3.0];
        assert_eq!(quantile(&three, 1.0), 3.0);
        assert_eq!(quantile(&three, 0.75), 2.5);
        assert!(FiveNumber::of(&[f64::NAN, 5.0]).is_some());
    }

    #[test]
    fn quantile_all_nan_is_nan() {
        assert!(quantile(&[f64::NAN, f64::NAN], 0.5).is_nan());
        assert!(median(&[f64::NAN]).is_nan());
    }

    #[test]
    fn quantile_handles_infinities_and_negative_zero() {
        let xs = [f64::INFINITY, f64::NEG_INFINITY, 0.0, -0.0];
        assert_eq!(quantile(&xs, 0.0), f64::NEG_INFINITY);
        assert_eq!(quantile(&xs, 1.0), f64::INFINITY);
        assert_eq!(median(&xs), 0.0);
    }
}
