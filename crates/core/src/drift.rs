//! Workload-drift detection for long-lived tuning sites.
//!
//! An online tuner converges, publishes its best decision, and then mostly
//! exploits. If the workload shifts underneath it — a bigger corpus, a
//! morphing scene, a cache suddenly cold — the "best" decision can turn
//! stale while the tuner, happily converged, never re-explores. The paper
//! frames online autotuning as an always-on companion of a long-running
//! application; staying correct under such drift is what separates a
//! service from a batch experiment.
//!
//! [`DriftMonitor`] watches the per-call runtimes flowing through one site
//! and compares a **sliding recent window** against a **ratcheting
//! baseline**:
//!
//! * While warming up, the first [`DriftConfig::baseline_window`] samples
//!   establish the baseline — their *median*.
//! * Afterwards each new sample lands in a ring of the most recent
//!   [`DriftConfig::recent_window`] runtimes. Every
//!   [`DriftConfig::stride`] samples the monitor compares the recent
//!   median against the baseline median.
//! * If the ratio exceeds [`DriftConfig::threshold`] — by more than the
//!   absolute floor [`DriftConfig::min_delta_ms`], which defaults to the
//!   measured timer resolution so quantization steps at µs scale never
//!   read as regressions — for [`DriftConfig::patience`] *consecutive*
//!   checks, the verdict is [`Verdict::Drifted`].
//! * A *sustained* improvement re-anchors the baseline downward: the
//!   warm-up happens during the paired tuner's exploration phase, so the
//!   settled post-convergence regime — which only emerges later — is the
//!   regime a regression must be judged against. Re-anchoring is held to
//!   the same bar as drift (a full threshold factor, for `patience`
//!   consecutive checks), and the baseline only ever ratchets down —
//!   moving back up is exactly the drift being watched for.
//!
//! Medians make the monitor robust by construction: a single spike (a page
//! fault, a GC pause, a timeout penalty) moves the recent median not at
//! all, and noise without a sustained shift cannot keep the median above
//! the threshold for `patience` straight checks. A step change or a slow
//! ramp, by contrast, eventually drags the whole window up and trips every
//! check — the unit tests pin all four behaviors.
//!
//! The intended reaction is [`observe_and_restart`]: emit a
//! [`EventKind::DriftDetected`] telemetry event, [`Site::restart`] the
//! tuner from its recipe (re-widening the search), and [`reset`] the
//! monitor so it re-baselines against the new regime.
//!
//! Only *regressions* trigger: a workload getting faster re-ranks nothing
//! that matters (the exploit choice is still near-optimal or better), so
//! the monitor stays quiet and the baseline simply becomes conservative.
//!
//! [`reset`]: DriftMonitor::reset

use crate::site::Site;
use crate::telemetry::{self, EventKind};

/// Tuning knobs for a [`DriftMonitor`].
#[derive(Debug, Clone, Copy)]
pub struct DriftConfig {
    /// Samples used to establish the frozen baseline median.
    pub baseline_window: usize,
    /// Size of the sliding window of recent runtimes.
    pub recent_window: usize,
    /// Recent-median / baseline-median ratio above which a check counts
    /// as a strike.
    pub threshold: f64,
    /// Consecutive strikes required before declaring drift.
    pub patience: u32,
    /// Evaluate every `stride` samples (amortizes the median scan; the
    /// per-sample cost between checks is one ring-buffer store).
    pub stride: usize,
    /// Absolute regression floor, in milliseconds: a check only counts as
    /// a strike when the recent median exceeds the baseline by *more* than
    /// this delta. At µs scale the ratio test alone is blind to the clock:
    /// a baseline sitting at one timer tick and a signal straddling the
    /// next tick differ by a full 2× while the workload hasn't moved at
    /// all, and a monitor without this floor restarts converged sites on
    /// pure quantization noise. `0.0` (the default) resolves to the
    /// measured timer resolution
    /// ([`crate::robust::timer_resolution_ms`]) when the monitor is built.
    pub min_delta_ms: f64,
}

impl Default for DriftConfig {
    fn default() -> Self {
        DriftConfig {
            baseline_window: 64,
            recent_window: 32,
            threshold: 1.5,
            patience: 3,
            stride: 8,
            min_delta_ms: 0.0,
        }
    }
}

/// Where a [`DriftMonitor`] currently stands.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Verdict {
    /// Still collecting baseline samples; no judgment possible yet.
    Warming,
    /// Recent runtimes are consistent with the baseline.
    Stable,
    /// Sustained regression vs the baseline: the workload has drifted and
    /// the site should be restarted.
    Drifted,
}

/// Sliding-window regression monitor for one site's runtime stream (see
/// the [module docs](self) for the detection scheme).
#[derive(Debug, Clone)]
pub struct DriftMonitor {
    config: DriftConfig,
    /// Resolved absolute regression floor: `config.min_delta_ms`, or the
    /// measured timer resolution when that is left at `0.0`.
    min_delta_ms: f64,
    /// Baseline samples while warming; frozen into `baseline_ms` when full.
    warmup: Vec<f64>,
    /// Baseline median — ratchets down as the settled regime improves —
    /// or `None` while warming up.
    baseline_ms: Option<f64>,
    /// Ring buffer of the most recent `recent_window` runtimes.
    recent: Vec<f64>,
    /// Next write position in `recent`.
    cursor: usize,
    /// Samples seen since the baseline froze (drives the stride).
    since_baseline: usize,
    /// Consecutive over-threshold checks.
    strikes: u32,
    /// Consecutive checks qualifying to lower the baseline, and the
    /// largest qualifying recent median seen in the streak.
    improve_strikes: u32,
    improve_peak: f64,
    /// Scratch for the median scan, kept to avoid per-check allocation.
    scratch: Vec<f64>,
    /// Recent-window median at the moment drift was declared.
    observed_ms: f64,
}

fn median(scratch: &mut Vec<f64>, samples: &[f64]) -> f64 {
    scratch.clear();
    scratch.extend_from_slice(samples);
    let mid = scratch.len() / 2;
    let (_, m, _) = scratch.select_nth_unstable_by(mid, |a, b| a.total_cmp(b));
    *m
}

impl DriftMonitor {
    /// A monitor with the given configuration. `baseline_window`,
    /// `recent_window` and `stride` must be nonzero.
    pub fn new(config: DriftConfig) -> Self {
        assert!(config.baseline_window > 0, "baseline_window must be > 0");
        assert!(config.recent_window > 0, "recent_window must be > 0");
        assert!(config.stride > 0, "stride must be > 0");
        assert!(
            config.min_delta_ms >= 0.0 && config.min_delta_ms.is_finite(),
            "min_delta_ms must be finite and non-negative"
        );
        let min_delta_ms = if config.min_delta_ms > 0.0 {
            config.min_delta_ms
        } else {
            crate::robust::timer_resolution_ms()
        };
        DriftMonitor {
            config,
            min_delta_ms,
            warmup: Vec::with_capacity(config.baseline_window),
            baseline_ms: None,
            recent: Vec::with_capacity(config.recent_window),
            cursor: 0,
            since_baseline: 0,
            strikes: 0,
            improve_strikes: 0,
            improve_peak: f64::NAN,
            scratch: Vec::with_capacity(config.baseline_window.max(config.recent_window)),
            observed_ms: f64::NAN,
        }
    }

    /// The current baseline median (the warm-up median, ratcheted down as
    /// the settled regime improves), once warm-up has completed.
    pub fn baseline_ms(&self) -> Option<f64> {
        self.baseline_ms
    }

    /// The recent-window median captured when [`Verdict::Drifted`] was
    /// returned (`NaN` before that).
    pub fn observed_ms(&self) -> f64 {
        self.observed_ms
    }

    /// The resolved absolute regression floor in effect (see
    /// [`DriftConfig::min_delta_ms`]).
    pub fn min_delta_ms(&self) -> f64 {
        self.min_delta_ms
    }

    /// Feed one runtime sample; returns the current verdict.
    ///
    /// Non-finite samples (the penalty path's `NaN` runtimes for failed or
    /// timed-out measurements) are ignored — the robust pipeline already
    /// penalizes those, and letting them into the windows would double-count
    /// the failure as drift.
    pub fn observe(&mut self, runtime_ms: f64) -> Verdict {
        if !runtime_ms.is_finite() {
            return self.verdict();
        }
        let Some(baseline) = self.baseline_ms else {
            self.warmup.push(runtime_ms);
            if self.warmup.len() < self.config.baseline_window {
                return Verdict::Warming;
            }
            self.baseline_ms = Some(median(&mut self.scratch, &self.warmup));
            self.warmup = Vec::new();
            return Verdict::Stable;
        };
        // Ring-buffer store: O(1) per sample between checks.
        if self.recent.len() < self.config.recent_window {
            self.recent.push(runtime_ms);
        } else {
            self.recent[self.cursor] = runtime_ms;
        }
        self.cursor = (self.cursor + 1) % self.config.recent_window;
        self.since_baseline += 1;
        if self.recent.len() < self.config.recent_window
            || !self.since_baseline.is_multiple_of(self.config.stride)
        {
            return self.verdict();
        }
        let recent = median(&mut self.scratch, &self.recent);
        // Both tests must hold for a strike: the relative one (the ratio
        // the config names) and the absolute one (more than one resolved
        // timer quantum of real movement) — so µs-scale baselines cannot
        // be "regressed" by the clock grid alone.
        if recent > baseline * self.config.threshold && recent - baseline > self.min_delta_ms {
            self.improve_strikes = 0;
            self.strikes += 1;
            if self.strikes >= self.config.patience {
                self.observed_ms = recent;
                return Verdict::Drifted;
            }
        } else {
            self.strikes = 0;
            if recent * self.config.threshold < baseline {
                // Ratchet the baseline down: when the paired tuner
                // converges (or the workload genuinely gets faster), the
                // settled regime — not the noisy exploration phase the
                // warm-up happened to sample — is what drift must be
                // judged against. Re-anchoring is held to the same bar as
                // drift itself, in both size (a full threshold factor
                // below the baseline, so window-to-window jitter never
                // qualifies) and duration (`patience` consecutive
                // qualifying checks, anchoring to the *largest* of them,
                // so one lucky window cannot drag the baseline to a level
                // ordinary traffic would then "drift" over).
                self.improve_peak = if self.improve_strikes == 0 {
                    recent
                } else {
                    self.improve_peak.max(recent)
                };
                self.improve_strikes += 1;
                if self.improve_strikes >= self.config.patience {
                    self.baseline_ms = Some(self.improve_peak);
                    self.improve_strikes = 0;
                }
            } else {
                self.improve_strikes = 0;
            }
        }
        self.verdict()
    }

    /// The verdict as of the last evaluated check.
    pub fn verdict(&self) -> Verdict {
        if self.baseline_ms.is_none() {
            Verdict::Warming
        } else if self.strikes >= self.config.patience {
            Verdict::Drifted
        } else {
            Verdict::Stable
        }
    }

    /// Forget everything and re-enter warm-up — called after the paired
    /// site restarts, so the next baseline describes the *new* regime.
    pub fn reset(&mut self) {
        self.warmup = Vec::with_capacity(self.config.baseline_window);
        self.baseline_ms = None;
        self.recent.clear();
        self.cursor = 0;
        self.since_baseline = 0;
        self.strikes = 0;
        self.improve_strikes = 0;
        self.improve_peak = f64::NAN;
        self.observed_ms = f64::NAN;
    }
}

/// Feed one runtime sample for `site`; on a [`Verdict::Drifted`] verdict,
/// emit a [`EventKind::DriftDetected`] telemetry event (tagged with the
/// site), restart the site's tuner from its recipe, reset the monitor, and
/// return `true`.
///
/// This is the glue a serving loop calls once per completed request; the
/// caller owns the monitor (one per site). Must not be called while the
/// calling thread holds the site's claim (see [`Site::restart`]).
pub fn observe_and_restart(site: Site, monitor: &mut DriftMonitor, runtime_ms: f64) -> bool {
    if monitor.observe(runtime_ms) != Verdict::Drifted {
        return false;
    }
    let baseline_ms = monitor.baseline_ms().unwrap_or(f64::NAN);
    let observed_ms = monitor.observed_ms();
    telemetry::with_site(site.id().tag(), || {
        telemetry::emit(|| EventKind::DriftDetected {
            baseline_ms,
            observed_ms,
        });
    });
    site.restart();
    monitor.reset();
    true
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick_config() -> DriftConfig {
        DriftConfig {
            baseline_window: 16,
            recent_window: 8,
            threshold: 1.5,
            patience: 2,
            stride: 4,
            min_delta_ms: 0.0,
        }
    }

    /// Deterministic ±10% "noise" around a center, far below the 1.5x bar.
    fn noisy(center: f64, i: usize) -> f64 {
        center * (1.0 + 0.10 * ((i % 7) as f64 - 3.0) / 3.0)
    }

    fn drive(monitor: &mut DriftMonitor, samples: impl IntoIterator<Item = f64>) -> Verdict {
        let mut v = monitor.verdict();
        for s in samples {
            v = monitor.observe(s);
            if v == Verdict::Drifted {
                return v;
            }
        }
        v
    }

    #[test]
    fn step_change_is_detected() {
        let mut m = DriftMonitor::new(quick_config());
        let v = drive(&mut m, (0..32).map(|i| noisy(1.0, i)));
        assert_eq!(v, Verdict::Stable);
        // Workload steps to 3x the baseline: must fire.
        let v = drive(&mut m, (0..64).map(|i| noisy(3.0, i)));
        assert_eq!(v, Verdict::Drifted);
        assert!(m.observed_ms() > m.baseline_ms().unwrap() * 1.5);
    }

    #[test]
    fn slow_ramp_is_detected() {
        let mut m = DriftMonitor::new(quick_config());
        assert_eq!(
            drive(&mut m, (0..32).map(|i| noisy(1.0, i))),
            Verdict::Stable
        );
        // +2% per call: the recent median crosses 1.5x around sample ~90
        // and stays there, so patience is exhausted well within 300.
        let v = drive(
            &mut m,
            (0..300).map(|i| noisy(1.0, i) * 1.02f64.powi(i as i32)),
        );
        assert_eq!(v, Verdict::Drifted);
    }

    #[test]
    fn noise_alone_never_fires() {
        let mut m = DriftMonitor::new(quick_config());
        let v = drive(&mut m, (0..2_000).map(|i| noisy(1.0, i)));
        assert_eq!(v, Verdict::Stable);
    }

    #[test]
    fn single_spike_does_not_fire() {
        let mut m = DriftMonitor::new(quick_config());
        assert_eq!(
            drive(&mut m, (0..32).map(|i| noisy(1.0, i))),
            Verdict::Stable
        );
        // One 100x spike (a hiccup, not drift) surrounded by normal
        // traffic: the median never moves.
        let v = drive(&mut m, std::iter::once(100.0));
        assert_eq!(v, Verdict::Stable);
        let v = drive(&mut m, (0..200).map(|i| noisy(1.0, i)));
        assert_eq!(v, Verdict::Stable);
    }

    #[test]
    fn non_finite_samples_are_ignored() {
        let mut m = DriftMonitor::new(quick_config());
        assert_eq!(
            drive(&mut m, (0..32).map(|i| noisy(1.0, i))),
            Verdict::Stable
        );
        let v = drive(&mut m, (0..100).map(|_| f64::NAN));
        assert_eq!(v, Verdict::Stable);
    }

    #[test]
    fn improvement_never_fires() {
        let mut m = DriftMonitor::new(quick_config());
        assert_eq!(
            drive(&mut m, (0..32).map(|i| noisy(2.0, i))),
            Verdict::Stable
        );
        // Workload gets 4x faster: not a regression, stays quiet.
        let v = drive(&mut m, (0..200).map(|i| noisy(0.5, i)));
        assert_eq!(v, Verdict::Stable);
    }

    #[test]
    fn baseline_ratchets_down_with_convergence() {
        let mut m = DriftMonitor::new(quick_config());
        // Warm-up happens mid-exploration: expensive, scattered runtimes.
        assert_eq!(
            drive(&mut m, (0..16).map(|i| noisy(10.0, i))),
            Verdict::Stable
        );
        let warm = m.baseline_ms().unwrap();
        // The tuner converges to a 10x faster decision; the baseline follows.
        assert_eq!(
            drive(&mut m, (0..64).map(|i| noisy(1.0, i))),
            Verdict::Stable
        );
        assert!(m.baseline_ms().unwrap() < warm / 5.0);
        // A 4x regression on the *converged* regime — still well below the
        // exploration-era baseline — must nonetheless fire.
        assert_eq!(
            drive(&mut m, (0..64).map(|i| noisy(4.0, i))),
            Verdict::Drifted
        );
    }

    #[test]
    fn reset_rebaselines() {
        let mut m = DriftMonitor::new(quick_config());
        drive(&mut m, (0..32).map(|i| noisy(1.0, i)));
        assert_eq!(
            drive(&mut m, (0..64).map(|i| noisy(3.0, i))),
            Verdict::Drifted
        );
        m.reset();
        assert_eq!(m.verdict(), Verdict::Warming);
        // The 3x regime is the new normal after re-baselining.
        let v = drive(&mut m, (0..200).map(|i| noisy(3.0, i)));
        assert_eq!(v, Verdict::Stable);
    }

    /// Regression for the µs-scale false-positive: a workload whose true
    /// runtime sits *between* two ticks of a coarse clock reads sometimes
    /// one tick, sometimes two — a 2× "regression" by ratio with zero real
    /// movement. Pre-fix, the ratio-only test fired and restarted the
    /// converged site; the absolute floor must keep it quiet, while a
    /// genuine many-tick regression at the same scale still fires.
    #[test]
    fn timer_quantization_steps_are_not_drift() {
        const QUANTUM_MS: f64 = 0.001; // a 1µs clock timing µs-scale calls
        let mut cfg = quick_config();
        cfg.min_delta_ms = QUANTUM_MS;
        let mut m = DriftMonitor::new(cfg);
        assert_eq!(m.min_delta_ms(), QUANTUM_MS);
        // Warm-up lands entirely on the lower tick: baseline = 1 quantum.
        assert_eq!(drive(&mut m, (0..16).map(|_| QUANTUM_MS)), Verdict::Stable);
        assert_eq!(m.baseline_ms(), Some(QUANTUM_MS));
        // The same workload now straddles the boundary and every read
        // rounds up: recent median = 2 quanta, ratio 2.0 > threshold 1.5,
        // but the delta is exactly one tick — quantization, not drift.
        assert_eq!(
            drive(&mut m, (0..500).map(|_| 2.0 * QUANTUM_MS)),
            Verdict::Stable,
            "one-tick steps under a coarse clock must not restart the site"
        );
        // A real regression at the same µs scale (ten ticks) still fires.
        assert_eq!(
            drive(&mut m, (0..64).map(|_| 10.0 * QUANTUM_MS)),
            Verdict::Drifted
        );
    }

    #[test]
    fn min_delta_defaults_to_measured_timer_resolution() {
        let m = DriftMonitor::new(DriftConfig::default());
        assert_eq!(m.min_delta_ms(), crate::robust::timer_resolution_ms());
        let cfg = DriftConfig {
            min_delta_ms: 0.25,
            ..Default::default()
        };
        assert_eq!(DriftMonitor::new(cfg).min_delta_ms(), 0.25);
    }

    #[test]
    fn observe_and_restart_restarts_the_site() {
        use crate::site::{register, site, SiteSpec};
        use crate::two_phase::{AlgorithmSpec, NominalKind};
        let s = site(register(SiteSpec::algorithms(
            "drift-restart",
            vec![AlgorithmSpec::untunable("a"), AlgorithmSpec::untunable("b")],
            NominalKind::EpsilonGreedy(0.10),
            41,
        )));
        let mut m = DriftMonitor::new(quick_config());
        for i in 0..32 {
            s.tuned(|_, _| {});
            assert!(!observe_and_restart(s, &mut m, noisy(1.0, i)));
        }
        let mut fired = false;
        for i in 0..64 {
            s.tuned(|_, _| {});
            if observe_and_restart(s, &mut m, noisy(3.0, i)) {
                fired = true;
                break;
            }
        }
        assert!(fired, "sustained 3x regression must restart the site");
        assert_eq!(s.restarts(), 1);
        assert_eq!(m.verdict(), Verdict::Warming, "monitor re-baselines");
    }
}
