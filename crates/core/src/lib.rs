//! # autotune — online autotuning with first-class algorithmic choice
//!
//! A from-scratch Rust implementation of the system described in
//! *"Online-Autotuning in the Presence of Algorithmic Choice"* (Pfaffe,
//! Tillmann, Walter, Tichy — IEEE IPDPSW 2017).
//!
//! The crate provides:
//!
//! * **Parameter classes** ([`param`]) following Stevens' typology — the
//!   paper's Table I — with the type system enforcing which search
//!   operations are legal on which class.
//! * **Search spaces and configurations** ([`space`]).
//! * **Eight classical phase-1 search strategies** ([`search`]): hill
//!   climbing, Nelder-Mead downhill simplex, particle swarm, genetic
//!   algorithms, differential evolution, simulated annealing, exhaustive and
//!   random search — all as ask/tell state machines suitable for online
//!   tuning. Strategies that require order/distance reject nominal spaces at
//!   construction, mechanizing the paper's Section II-B analysis.
//! * **Four nominal phase-2 strategies** ([`nominal`]): ε-Greedy, Gradient
//!   Weighted, Optimum Weighted, and Sliding-Window AUC (plus the rejected
//!   softmax baseline).
//! * **The two-phase online tuner** ([`two_phase`]): per-iteration algorithm
//!   selection (phase 2) combined with per-algorithm parameter tuning
//!   (phase 1, Nelder-Mead by default).
//! * **Online tuning-loop drivers** ([`tuner`]) and measurement plumbing
//!   ([`measure`]).
//! * **A fault-tolerant measurement pipeline** ([`robust`]): panics,
//!   timeouts, and degenerate (NaN/infinite/zero) measurements become
//!   [`robust::MeasureOutcome`] values that the tuners absorb as penalties
//!   instead of crashing — no algorithm is ever excluded outright.
//! * **A persistent work-stealing executor** ([`pool`]): the shared
//!   execution substrate for every parallel kernel in the workspace, with
//!   dispatch-time thread caps so parallelism stays a tunable ratio
//!   parameter.
//!
//! ## Quick example
//!
//! ```
//! use autotune::prelude::*;
//!
//! // Two algorithms: one untunable, one with a thread-count parameter.
//! let specs = vec![
//!     AlgorithmSpec::untunable("baseline"),
//!     AlgorithmSpec::new(
//!         "parallel",
//!         SearchSpace::new(vec![Parameter::ratio("threads", 1, 8)]),
//!     ),
//! ];
//! let mut tuner = TwoPhaseTuner::new(specs, NominalKind::EpsilonGreedy(0.10), 42);
//!
//! // The online tuning loop: the application measures, the tuner decides.
//! for _ in 0..100 {
//!     let (alg, config) = tuner.next();
//!     let runtime_ms = match alg {
//!         0 => 20.0,
//!         _ => 32.0 / config.get(0).as_f64(), // scales with threads
//!     };
//!     tuner.report(runtime_ms);
//! }
//! assert_eq!(tuner.best().unwrap().0, 1); // "parallel" with 8 threads wins
//! ```

#![warn(missing_docs)]

pub mod context;
pub mod drift;
pub mod history;
pub mod json;
pub mod measure;
pub mod mixed;
pub mod nominal;
pub mod param;
pub mod pool;
pub mod rng;
pub mod robust;
pub mod search;
pub mod serve;
pub mod site;
pub mod space;
pub mod stats;
pub mod telemetry;
pub mod tuner;
pub mod two_phase;

/// Commonly used items, re-exported for convenience.
pub mod prelude {
    pub use crate::context::{ContextGuard, ContextKey, ContextSites, ContextStats, KeyStats};
    pub use crate::drift::{DriftConfig, DriftMonitor, Verdict};
    pub use crate::measure::{duration_ms, time_ms, Context, Measure, Sample};
    pub use crate::mixed::MixedTuner;
    pub use crate::nominal::{
        EpsilonGradient, EpsilonGreedy, GradientWeighted, NominalStrategy, OptimumWeighted,
        SlidingWindowAuc, Softmax,
    };
    pub use crate::param::{Domain, ParamClass, Parameter, Value};
    pub use crate::pool::Pool;
    pub use crate::rng::Rng;
    pub use crate::robust::{
        batched_time_ms, robust_call, robust_time, timer_resolution_ms, FallibleMeasure, FaultKind,
        FaultPlan, FaultyMeasure, MeasureOutcome, RobustMeasure, RobustOptions,
    };
    pub use crate::search::{
        DifferentialEvolution, ExhaustiveSearch, GeneticAlgorithm, HillClimbing, NelderMead,
        NelderMeadOptions, ParticleSwarm, RandomSearch, Searcher, SimulatedAnnealing,
    };
    pub use crate::serve::{Client, RequestHandler, ServeConfig, ServeReport, StopFlag};
    pub use crate::site::{Site, SiteGuard, SiteId, SiteSpec};
    pub use crate::space::{Configuration, Constraint, SearchSpace};
    pub use crate::telemetry::{
        self, Event, EventKind, MeasureStatus, MetricsReport, SimplexOp, SpanKind, WeightSet,
    };
    pub use crate::tuner::{OnlineTuner, Termination};
    pub use crate::two_phase::{
        AlgorithmSpec, NominalKind, Phase1Kind, TwoPhaseSample, TwoPhaseTuner,
    };
}
