//! End-to-end loopback test of the always-on tuning service: a real
//! server on an ephemeral port, the real load generator against it —
//! pipelined workers, a morph schedule, a live telemetry subscriber, and
//! a graceful `OP_QUIT` shutdown — then the written result files are
//! parsed back and checked.

use autotune::drift::DriftConfig;
use autotune::json::Json;
use autotune::serve::StopFlag;
use experiments::load::{self, LoadOptions};
use experiments::serve::{run_serve_on, ServeOptions};
use std::net::TcpListener;

fn fresh_out_dir(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("serve-loopback-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn read_json(path: &std::path::Path) -> Json {
    Json::parse(&std::fs::read_to_string(path).unwrap()).unwrap()
}

#[test]
fn serve_and_load_end_to_end() {
    let out = fresh_out_dir("e2e");
    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap().to_string();

    let opts = ServeOptions {
        addr: addr.clone(),
        corpus_kb: 8,
        seed: 7001,
        // Hair-trigger monitor so the morph restarts within a small run.
        drift: DriftConfig {
            baseline_window: 16,
            recent_window: 8,
            threshold: 1.5,
            patience: 2,
            stride: 4,
            min_delta_ms: 0.0,
        },
        ..ServeOptions::default()
    };
    let server = {
        let (opts, out) = (opts.clone(), out.clone());
        std::thread::spawn(move || run_serve_on(listener, &opts, &out, &StopFlag::new()))
    };

    let report = load::generate(&LoadOptions {
        addr,
        requests: 6_000,
        threads: 2,
        batch: 64,
        drift: true,
        subscribe: true,
        quit: true,
        ..LoadOptions::default()
    })
    .expect("load run");
    let files = server.join().unwrap().expect("server run");

    // The load generator saw a clean run and a valid telemetry stream.
    assert_eq!(report.errors, 0, "{report:?}");
    assert_eq!(report.ok, report.sent);
    assert!(report.stream_valid, "streamed JSONL must parse");
    assert!(report.streamed_lines > 0, "subscriber saw live events");
    assert!(report.p99_us > 0.0 && report.throughput_rps > 0.0);

    // serve.json: server totals line up, both sites converged.
    assert!(files.iter().any(|f| f.ends_with("serve.json")));
    let doc = read_json(&out.join("serve.json"));
    let requests = doc.get("server").unwrap().get("requests").unwrap();
    assert!(requests.as_f64().unwrap() >= report.sent as f64 - 1.0);
    let sites = doc.get("sites").and_then(Json::as_arr).unwrap();
    assert_eq!(sites.len(), 2);
    let match_site = &sites[0];
    assert!(match_site.get("calls").unwrap().as_f64().unwrap() > 0.0);
    assert!(
        match_site
            .get("tuned_iterations")
            .unwrap()
            .as_f64()
            .unwrap()
            > 0.0,
        "per-site convergence must be nonzero"
    );
    assert!(match_site
        .get("exploit_algorithm")
        .unwrap()
        .as_str()
        .is_some());

    // serve_drift.json: the corpus morph produced at least one restart
    // episode with a measured time-to-reconvergence or detection lag.
    let drift = read_json(&out.join("serve_drift.json"));
    let m = drift.get("match").unwrap();
    assert!(
        m.get("restarts").unwrap().as_f64().unwrap() >= 1.0,
        "morph must trip the drift monitor: {drift}"
    );
    let episodes = m.get("episodes").and_then(Json::as_arr).unwrap();
    assert!(!episodes.is_empty());

    // serve_trace.jsonl: whatever the subscriber did not drain still
    // parses under the batch schema (byte-compatible stream).
    let trace = std::fs::read_to_string(out.join("serve_trace.jsonl")).unwrap();
    let events = autotune::telemetry::export::parse_jsonl(&trace).expect("trace parses");
    // Subscriber was attached the whole run, so the residue can be small
    // — but parseability (not volume) is the contract here.
    let _ = events;

    let _ = std::fs::remove_dir_all(&out);
}

#[test]
fn sort_requests_round_trip_over_the_wire() {
    use autotune::serve::protocol::{OP_QUIT, OP_SORT};
    let out = fresh_out_dir("sort");
    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap();

    let opts = ServeOptions {
        addr: addr.to_string(),
        corpus_kb: 4,
        seed: 7005,
        ..ServeOptions::default()
    };
    let server = {
        let (opts, out) = (opts.clone(), out.clone());
        std::thread::spawn(move || run_serve_on(listener, &opts, &out, &StopFlag::new()))
    };

    let mut client = autotune::serve::Client::connect(addr).unwrap();
    client
        .set_read_timeout(Some(std::time::Duration::from_secs(30)))
        .unwrap();
    // Two size classes, interleaved, each with a client-chosen key seed
    // so the returned checksum is independently verifiable.
    for round in 0..20u64 {
        for (n, class) in [(24u32, 5u32), (700, 10)] {
            let mut req = n.to_le_bytes().to_vec();
            let seed = 0xC0FFEE + round;
            req.extend_from_slice(&seed.to_le_bytes());
            let (op, resp) = client.request(OP_SORT, &req).unwrap();
            assert_eq!(op, OP_SORT);
            assert_eq!(resp.len(), 13, "ok + class + checksum");
            assert_eq!(resp[0], 1, "server-side sortedness check");
            assert_eq!(u32::from_le_bytes(resp[1..5].try_into().unwrap()), class);
            let mut keys = autotune::rng::Rng::new(seed);
            let want = (0..n)
                .map(|_| keys.next_u64())
                .fold(0u64, u64::wrapping_add);
            assert_eq!(u64::from_le_bytes(resp[5..13].try_into().unwrap()), want);
        }
    }
    let (op, _) = client.request(OP_QUIT, &[]).unwrap();
    assert_eq!(op, OP_QUIT);
    server.join().unwrap().expect("server run");

    // serve.json carries the two active sort class sites and the counter.
    let doc = read_json(&out.join("serve.json"));
    assert_eq!(
        doc.get("app").unwrap().get("sorts").and_then(Json::as_f64),
        Some(40.0)
    );
    let sites = doc.get("sites").and_then(Json::as_arr).unwrap();
    for class in ["sort/c05/random", "sort/c10/random"] {
        let site = sites
            .iter()
            .find(|s| s.get("name").and_then(Json::as_str) == Some(class))
            .unwrap_or_else(|| panic!("{class} missing from serve.json"));
        assert_eq!(site.get("calls").and_then(Json::as_f64), Some(20.0));
        assert!(site
            .get("exploit_algorithm")
            .and_then(Json::as_str)
            .is_some());
    }
    let _ = std::fs::remove_dir_all(&out);
}

#[test]
fn http_fallback_answers_stats() {
    use std::io::{Read, Write};
    let out = fresh_out_dir("http");
    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap();

    let opts = ServeOptions {
        addr: addr.to_string(),
        corpus_kb: 4,
        seed: 7003,
        ..ServeOptions::default()
    };
    let server = {
        let (opts, out) = (opts.clone(), out.clone());
        std::thread::spawn(move || run_serve_on(listener, &opts, &out, &StopFlag::new()))
    };

    let mut stream = std::net::TcpStream::connect(addr).unwrap();
    stream
        .set_read_timeout(Some(std::time::Duration::from_secs(10)))
        .unwrap();
    stream
        .write_all(b"GET /stats HTTP/1.1\r\nHost: x\r\nConnection: close\r\n\r\n")
        .unwrap();
    let mut response = String::new();
    let _ = stream.read_to_string(&mut response);
    assert!(response.starts_with("HTTP/1.1 200"), "{response}");
    let body = response.split("\r\n\r\n").nth(1).expect("has body");
    let stats = Json::parse(body).expect("stats body is JSON");
    assert!(stats.get("uptime_s").is_some(), "{stats}");

    // Shut down via the wire.
    let mut quit = autotune::serve::Client::connect(addr).unwrap();
    let (op, _) = quit
        .request(autotune::serve::protocol::OP_QUIT, &[])
        .unwrap();
    assert_eq!(op, autotune::serve::protocol::OP_QUIT);
    server.join().unwrap().expect("server run");
    let _ = std::fs::remove_dir_all(&out);
}
