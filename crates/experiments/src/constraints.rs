//! The `constraints` study: repair vs reject-and-retry on constrained
//! search spaces.
//!
//! The paper's spaces are pure box products, but real deployments carry
//! cross-parameter feasibility rules: thread counts capped by the host's
//! core budget, packet lanes bounded by `threads × packet_width`, SIMD
//! kernels gated on CPU features. [`autotune::space::Constraint`] models
//! those rules, and there are two ways a tuner can honor them:
//!
//! * **repair** — constraints carry repair functions, so searchers project
//!   every proposal into the feasible region and each iteration spends a
//!   real measurement;
//! * **reject-and-retry** — the same predicates with the repairs stripped
//!   ([`autotune::space::SearchSpace::without_repairs`]): infeasible
//!   proposals are routed through the failure-penalty path without being
//!   measured, burning the iteration.
//!
//! The claim under test: repair converges (iterations until the running
//! best is within 5% of the final best) at least as fast as
//! reject-and-retry on both case studies, because rejected iterations
//! teach the searcher only "bad", while repaired ones return a usable
//! measurement from the feasible boundary.
//!
//! The study also records the per-algorithm feasibility of each case
//! study's full algorithm set 𝒜 — on a host without vector units (or under
//! `AUTOTUNE_FORCE_SCALAR=1`) the SIMD matchers must be reported
//! *infeasible*, not silently aliased to scalar code. CI asserts exactly
//! that from `constraints.json`.

use crate::cs1::{self, Cs1Config};
use crate::cs2::Cs2Config;
use crate::report::SeriesFigure;
use autotune::json::Json;
use autotune::param::{Parameter, Value};
use autotune::space::{Configuration, Constraint, SearchSpace};
use autotune::stats;
use autotune::two_phase::{AlgorithmSpec, TwoPhaseTuner};
use raytrace::tunable;
use std::path::Path;
use stringmatch::tuned::matcher_algorithm_specs;
use stringmatch::{all_matchers, corpus};

/// Convergence threshold: iterations until the running best is within
/// this fraction of the series' final best.
pub const CONVERGENCE_FRACTION: f64 = 0.05;

/// How a tuning run treats constraint violations.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ConstraintMode {
    /// Declared repairs project proposals into the feasible region.
    Repair,
    /// Repairs stripped: infeasible proposals cost a penalized iteration.
    Reject,
}

impl ConstraintMode {
    /// Display name used in figures and JSON.
    pub fn label(self) -> &'static str {
        match self {
            ConstraintMode::Repair => "repair",
            ConstraintMode::Reject => "reject",
        }
    }

    /// The algorithm set as this mode sees it.
    fn apply(self, specs: &[AlgorithmSpec]) -> Vec<AlgorithmSpec> {
        match self {
            ConstraintMode::Repair => specs.to_vec(),
            ConstraintMode::Reject => specs
                .iter()
                .map(|s| {
                    let mut s = s.clone();
                    s.space = s.space.without_repairs();
                    s
                })
                .collect(),
        }
    }
}

/// One (strategy, mode) tuning result, aggregated over repetitions.
#[derive(Debug, Clone)]
pub struct ModeRun {
    /// Median per-iteration runtime across repetitions (NaN where the
    /// iteration was spent on a rejected proposal).
    pub curve: Vec<f64>,
    /// Median over repetitions of the iterations-to-within-5% metric.
    pub convergence_iters: f64,
    /// Real measurements spent across all repetitions.
    pub measured: usize,
    /// Infeasible proposals penalized without measuring, across all
    /// repetitions.
    pub rejected: usize,
    /// Median runtime over the last quarter of the curve.
    pub tail: f64,
}

/// One strategy's repair-vs-reject comparison.
#[derive(Debug, Clone)]
pub struct StrategyConstraintRun {
    /// Phase-2 strategy label.
    pub label: String,
    /// The run with declared repairs active.
    pub repair: ModeRun,
    /// The reject-and-retry baseline.
    pub reject: ModeRun,
}

/// Feasibility of one algorithm's space on this host — the honesty report
/// for 𝒜.
#[derive(Debug, Clone)]
pub struct AlgorithmFeasibility {
    /// Algorithm display name.
    pub name: String,
    /// Does the space admit any feasible (or repairable) point here?
    pub feasible: bool,
}

/// The study over one case study's algorithm set.
#[derive(Debug, Clone)]
pub struct ConstraintsStudy {
    /// Case-study identifier (`cs1-…`/`cs2-…`).
    pub case_study: String,
    /// The core budget the constraints were derived from.
    pub budget: usize,
    /// Tuning iterations per repetition.
    pub iterations: usize,
    /// Repetitions per (strategy, mode).
    pub reps: usize,
    /// Per-strategy repair-vs-reject results.
    pub runs: Vec<StrategyConstraintRun>,
    /// Per-algorithm feasibility of the case study's full algorithm set.
    pub feasibility: Vec<AlgorithmFeasibility>,
}

/// Does `space` admit any feasible point on this host? Probed through the
/// canonical corner: feasible as-is, or repairable into feasibility.
fn space_is_satisfiable(space: &SearchSpace) -> bool {
    let corner = space.min_corner();
    space.is_feasible(&corner) || space.repair(&corner).is_some()
}

/// Feasibility report over an algorithm set.
fn feasibility_of(specs: &[AlgorithmSpec]) -> Vec<AlgorithmFeasibility> {
    specs
        .iter()
        .map(|s| AlgorithmFeasibility {
            name: s.name.clone(),
            feasible: space_is_satisfiable(&s.space),
        })
        .collect()
}

/// 1-based iteration at which the running best first comes within `frac`
/// of the series' final best. Rejected iterations are NaN and only advance
/// the clock. A series with no successful measurement "converges" at its
/// full length.
fn iterations_to_within(series: &[f64], frac: f64) -> usize {
    let best = series
        .iter()
        .copied()
        .filter(|v| v.is_finite())
        .fold(f64::INFINITY, f64::min);
    if !best.is_finite() {
        return series.len();
    }
    let target = best * (1.0 + frac);
    let mut running = f64::INFINITY;
    for (i, &v) in series.iter().enumerate() {
        if v.is_finite() && v < running {
            running = v;
        }
        if running <= target {
            return i + 1;
        }
    }
    series.len()
}

/// Median of the last quarter of a curve (NaN-filtered by the quantile
/// policy).
fn tail_median(curve: &[f64]) -> f64 {
    let start = curve.len() - curve.len() / 4;
    stats::median(&curve[start.min(curve.len().saturating_sub(1))..])
}

/// Identity and budget parameters shared by one repair-vs-reject study.
struct StudyParams<'a> {
    case_study: &'a str,
    budget: usize,
    reps: usize,
    iterations: usize,
    seed: u64,
}

/// Run the repair-vs-reject comparison for every paper strategy over an
/// arbitrary constrained algorithm set and measurement function.
fn run_study(
    p: StudyParams<'_>,
    specs: &[AlgorithmSpec],
    measure: &mut dyn FnMut(usize, &Configuration) -> f64,
    feasibility: Vec<AlgorithmFeasibility>,
) -> ConstraintsStudy {
    let StudyParams {
        case_study,
        budget,
        reps,
        iterations,
        seed,
    } = p;
    let mut runs = Vec::new();
    for (si, (label, kind)) in cs1::strategies().into_iter().enumerate() {
        let mut modes = Vec::with_capacity(2);
        for mode in [ConstraintMode::Repair, ConstraintMode::Reject] {
            let mode_specs = mode.apply(specs);
            let mut series_per_rep = Vec::with_capacity(reps);
            let mut convergence = Vec::with_capacity(reps);
            let mut measured = 0usize;
            let mut rejected = 0usize;
            for rep in 0..reps {
                // Same seeds in both modes: the only difference between a
                // strategy's repair and reject runs is how violations are
                // handled.
                let tuner_seed = seed
                    .wrapping_add(rep as u64 * 1009)
                    .wrapping_add(si as u64 * 7919);
                let mut tuner = TwoPhaseTuner::new(mode_specs.clone(), kind, tuner_seed);
                let mut series = Vec::with_capacity(iterations);
                for _ in 0..iterations {
                    let sample = tuner.step(|alg, c| measure(alg, c));
                    series.push(if sample.failed {
                        f64::NAN
                    } else {
                        sample.value
                    });
                }
                measured += series.iter().filter(|v| v.is_finite()).count();
                rejected += tuner.failure_counts().iter().sum::<usize>();
                convergence.push(iterations_to_within(&series, CONVERGENCE_FRACTION) as f64);
                series_per_rep.push(series);
            }
            let curve = stats::per_iteration_reduce(&series_per_rep, stats::median);
            modes.push(ModeRun {
                convergence_iters: stats::median(&convergence),
                measured,
                rejected,
                tail: tail_median(&curve),
                curve,
            });
        }
        let reject = modes.pop().expect("two modes");
        let repair = modes.pop().expect("two modes");
        runs.push(StrategyConstraintRun {
            label,
            repair,
            reject,
        });
    }
    ConstraintsStudy {
        case_study: case_study.to_string(),
        budget,
        iterations,
        reps,
        runs,
        feasibility,
    }
}

/// Thread-count space for a scalar matcher: up to 32 worker threads, but a
/// `thread-budget` constraint caps proposals at the host budget. The box
/// deliberately overshoots the budget so the constraint does real work.
fn thread_space(budget: usize) -> SearchSpace {
    let cap = budget as i64;
    SearchSpace::new(vec![Parameter::ratio("threads", 1, 32)]).with_constraint(
        Constraint::new("thread-budget", move |c: &Configuration| {
            c.get(0).as_i64() <= cap
        })
        .with_repair(move |_c: &Configuration| Configuration::new(vec![Value::Int(cap)])),
    )
}

/// Case study 1: the eight scalar matchers, each with a budget-constrained
/// thread-count space. The feasibility report covers the full
/// kernel-extended set ([`matcher_algorithm_specs`]), so SIMD availability
/// on this host lands in `constraints.json`.
pub fn cs1_constraints(cfg: &Cs1Config) -> ConstraintsStudy {
    let text = corpus::bible_like_with(cfg.seed, cfg.corpus_bytes, cfg.query_spacing_words);
    let matchers = all_matchers();
    let budget = cfg.threads.clamp(1, 8);
    let specs: Vec<AlgorithmSpec> = matchers
        .iter()
        .map(|m| AlgorithmSpec::new(m.name(), thread_space(budget)))
        .collect();
    run_study(
        StudyParams {
            case_study: "cs1-string-matching",
            budget,
            reps: cfg.reps,
            iterations: cfg.iterations,
            seed: cfg.seed,
        },
        &specs,
        &mut |alg, c| {
            let threads = c.get(0).as_i64().clamp(1, budget as i64) as usize;
            cs1::timed_search(matchers[alg].as_ref(), threads, &text)
        },
        feasibility_of(&matcher_algorithm_specs()),
    )
}

/// Case study 2: the four kD-tree builders under the thread- and
/// lane-budget constraints of a deliberately small core budget, so the
/// depth/packet corner of every space is infeasible and the two modes
/// diverge.
pub fn cs2_constraints(cfg: &Cs2Config) -> ConstraintsStudy {
    let scene = cfg.scene();
    let opts = raytrace::render::RenderOptions {
        width: cfg.width,
        height: cfg.height,
        threads: cfg.render_threads,
        packet_width: 1,
    };
    let builders = raytrace::all_builders();
    let budget = cfg.render_threads.clamp(1, 4);
    let specs = tunable::algorithm_specs_with_budget(budget);
    let feasibility = feasibility_of(&specs);
    run_study(
        StudyParams {
            case_study: "cs2-raytracing",
            budget,
            reps: cfg.reps,
            iterations: cfg.frames,
            seed: cfg.seed,
        },
        &specs,
        &mut |alg, c| {
            let config = tunable::decode(builders[alg].name(), c);
            let ropts = tunable::decode_render(c, &opts);
            raytrace::render::frame(&scene, builders[alg].as_ref(), &config, &ropts).total_ms()
        },
        feasibility,
    )
}

/// Repair-vs-reject convergence figure: two series per strategy.
pub fn figure(study: &ConstraintsStudy) -> SeriesFigure {
    let mut series = Vec::with_capacity(study.runs.len() * 2);
    for run in &study.runs {
        series.push((format!("{} repair", run.label), run.repair.curve.clone()));
        series.push((format!("{} reject", run.label), run.reject.curve.clone()));
    }
    SeriesFigure {
        id: format!("constraints_{}", short_id(&study.case_study)),
        title: format!(
            "{}: repair vs reject-and-retry convergence (budget {})",
            study.case_study, study.budget
        ),
        xlabel: "iteration".into(),
        ylabel: "median time [ms]".into(),
        series,
    }
}

fn short_id(case_study: &str) -> &str {
    case_study.split('-').next().unwrap_or(case_study)
}

fn num_arr(values: &[f64]) -> Json {
    Json::Arr(values.iter().map(|&x| Json::Num(x)).collect())
}

fn mode_json(m: &ModeRun) -> Json {
    Json::obj(vec![
        ("convergence_iters", Json::Num(m.convergence_iters)),
        ("measured", Json::Num(m.measured as f64)),
        ("rejected", Json::Num(m.rejected as f64)),
        ("tail_ms", Json::Num(m.tail)),
        ("curve", num_arr(&m.curve)),
    ])
}

/// Structured results for `constraints.json`.
pub fn to_json(studies: &[ConstraintsStudy]) -> Json {
    Json::obj(vec![(
        "studies",
        Json::Arr(
            studies
                .iter()
                .map(|s| {
                    Json::obj(vec![
                        ("case_study", Json::Str(s.case_study.clone())),
                        ("budget", Json::Num(s.budget as f64)),
                        ("iterations", Json::Num(s.iterations as f64)),
                        ("reps", Json::Num(s.reps as f64)),
                        (
                            "feasibility",
                            Json::Arr(
                                s.feasibility
                                    .iter()
                                    .map(|f| {
                                        Json::obj(vec![
                                            ("algorithm", Json::Str(f.name.clone())),
                                            ("feasible", Json::Bool(f.feasible)),
                                        ])
                                    })
                                    .collect(),
                            ),
                        ),
                        (
                            "strategies",
                            Json::Arr(
                                s.runs
                                    .iter()
                                    .map(|r| {
                                        Json::obj(vec![
                                            ("label", Json::Str(r.label.clone())),
                                            ("repair", mode_json(&r.repair)),
                                            ("reject", mode_json(&r.reject)),
                                        ])
                                    })
                                    .collect(),
                            ),
                        ),
                    ])
                })
                .collect(),
        ),
    )])
}

/// Write `<dir>/constraints.json`.
pub fn save_json(studies: &[ConstraintsStudy], dir: &Path) -> std::io::Result<()> {
    std::fs::create_dir_all(dir)?;
    std::fs::write(
        dir.join("constraints.json"),
        to_json(studies).to_string_pretty(),
    )
}

/// One-line per-strategy summary for the terminal, plus the host's
/// infeasible algorithms (if any).
pub fn summary(study: &ConstraintsStudy) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    writeln!(
        out,
        "{} @ budget {} ({} reps × {} iters):",
        study.case_study, study.budget, study.reps, study.iterations
    )
    .unwrap();
    for r in &study.runs {
        writeln!(
            out,
            "  {:<24} repair {:>5.1} iters to 5% ({} rejected)   \
             reject {:>5.1} iters to 5% ({} rejected)",
            r.label,
            r.repair.convergence_iters,
            r.repair.rejected,
            r.reject.convergence_iters,
            r.reject.rejected,
        )
        .unwrap();
    }
    let infeasible: Vec<&str> = study
        .feasibility
        .iter()
        .filter(|f| !f.feasible)
        .map(|f| f.name.as_str())
        .collect();
    if !infeasible.is_empty() {
        writeln!(out, "  infeasible on this host: {}", infeasible.join(", ")).unwrap();
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_cs1() -> Cs1Config {
        Cs1Config {
            corpus_bytes: 32 << 10,
            query_spacing_words: 1_000,
            reps: 2,
            iterations: 30,
            threads: 2,
            seed: 5,
        }
    }

    #[test]
    fn cs1_repair_never_rejects_and_accounting_balances() {
        let cfg = tiny_cs1();
        let study = cs1_constraints(&cfg);
        assert_eq!(study.runs.len(), 6, "all six paper strategies");
        assert_eq!(study.budget, 2);
        let total = cfg.reps * cfg.iterations;
        let mut any_rejected = 0usize;
        for r in &study.runs {
            for (mode, m) in [("repair", &r.repair), ("reject", &r.reject)] {
                assert_eq!(m.curve.len(), cfg.iterations, "{}: {mode}", r.label);
                assert_eq!(
                    m.measured + m.rejected,
                    total,
                    "{}: {mode} iterations must be measured or rejected",
                    r.label
                );
                assert!(
                    m.convergence_iters >= 1.0 && m.convergence_iters <= cfg.iterations as f64,
                    "{}: {mode} convergence out of range",
                    r.label
                );
            }
            assert_eq!(
                r.repair.rejected, 0,
                "{}: with repairs declared, no proposal may be rejected",
                r.label
            );
            any_rejected += r.reject.rejected;
        }
        assert!(
            any_rejected > 0,
            "stripping repairs must surface rejected proposals somewhere"
        );
        // The scalar matchers are always feasible; SIMD entries depend on
        // the host, but all 12 must be reported.
        assert_eq!(study.feasibility.len(), 12);
        assert!(study
            .feasibility
            .iter()
            .filter(|f| !f.name.ends_with("-SIMD"))
            .all(|f| f.feasible));
    }

    #[test]
    fn cs2_study_diverges_under_tight_budget() {
        let cfg = Cs2Config {
            detail: 1,
            frames: 16,
            reps: 1,
            width: 32,
            height: 24,
            render_threads: 2,
            seed: 3,
        };
        let study = cs2_constraints(&cfg);
        assert_eq!(study.runs.len(), 6);
        assert_eq!(study.budget, 2);
        assert_eq!(study.feasibility.len(), 4);
        assert!(study.feasibility.iter().all(|f| f.feasible));
        for r in &study.runs {
            assert_eq!(r.repair.rejected, 0, "{}", r.label);
            assert_eq!(r.repair.measured, 16, "{}", r.label);
        }
    }

    #[test]
    fn convergence_metric_handles_rejections_and_noise() {
        assert_eq!(iterations_to_within(&[10.0, 8.0, 5.0, 5.1], 0.05), 3);
        assert_eq!(
            iterations_to_within(&[f64::NAN, 10.0, f64::NAN, 5.0], 0.05),
            4
        );
        assert_eq!(iterations_to_within(&[7.0], 0.05), 1);
        assert_eq!(iterations_to_within(&[f64::NAN, f64::NAN], 0.05), 2);
    }

    #[test]
    fn figure_and_json_shapes() {
        let study = cs1_constraints(&tiny_cs1());
        let f = figure(&study);
        assert_eq!(f.id, "constraints_cs1");
        assert_eq!(f.series.len(), 12, "repair + reject per strategy");
        let json = to_json(std::slice::from_ref(&study));
        let parsed = Json::parse(&json.to_string_pretty()).expect("self-parse");
        let studies = parsed.get("studies").and_then(Json::as_arr).unwrap();
        assert_eq!(studies.len(), 1);
        let strategies = studies[0].get("strategies").and_then(Json::as_arr).unwrap();
        assert_eq!(strategies.len(), 6);
        let feas = studies[0]
            .get("feasibility")
            .and_then(Json::as_arr)
            .unwrap();
        assert_eq!(feas.len(), 12);
        assert!(summary(&study).contains("iters to 5%"));
    }
}
