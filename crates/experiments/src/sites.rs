//! Multi-site scaling study: the concurrent site runtime
//! ([`autotune::site`]) driven at production shape — many independent
//! tuning sites, many request threads — with per-site convergence and
//! aggregate throughput as the observables.
//!
//! Each synthetic site has three algorithms with a site-specific winner
//! (site `i`'s best algorithm is `i mod 3`) and a deterministic spin-work
//! cost model, so "did every site converge to *its own* winner?" is
//! directly checkable after the run. Threads sweep the whole site
//! population round-robin, which maximizes cross-site interleaving (the
//! worst case for a shared-state tuner, the intended case for the sharded
//! registry).

use autotune::site::{register, site, Site, SiteSpec};
use autotune::two_phase::{AlgorithmSpec, NominalKind};
use std::time::Instant;

/// Scale knobs. Defaults are the *quick* profile.
#[derive(Debug, Clone)]
pub struct SitesConfig {
    /// Number of independent tuning sites.
    pub num_sites: usize,
    /// Thread counts to sweep (aggregate throughput is measured per entry).
    pub threads: Vec<usize>,
    /// Calls per site per thread-count leg.
    pub calls_per_site: usize,
    /// Spin-work base cost per call, in microseconds.
    pub work_us: u64,
    pub seed: u64,
}

impl Default for SitesConfig {
    fn default() -> Self {
        SitesConfig {
            num_sites: 512,
            threads: vec![1, available_threads()],
            calls_per_site: 30,
            work_us: 2,
            seed: 20170608,
        }
    }
}

impl SitesConfig {
    /// The full-scale profile: 2048 sites, an explicit 1 → 8 thread sweep.
    pub fn paper() -> Self {
        SitesConfig {
            num_sites: 2048,
            threads: vec![1, 2, 4, 8],
            ..Default::default()
        }
    }
}

fn available_threads() -> usize {
    std::thread::available_parallelism().map_or(1, |n| n.get())
}

/// Per-site cost model: site `i`'s algorithm `a` costs
/// `work_us * (1 + |a - i mod 3|)` microseconds of spin work — a distinct
/// winner per site, with losers 2x-3x slower.
pub fn cost_us(cfg: &SitesConfig, site_index: usize, algorithm: usize) -> u64 {
    let best = site_index % 3;
    cfg.work_us * (1 + algorithm.abs_diff(best)) as u64
}

fn spin_for_us(us: u64) {
    let start = Instant::now();
    while start.elapsed().as_micros() < us as u128 {
        std::hint::spin_loop();
    }
}

/// One thread-count leg of the study.
#[derive(Debug, Clone)]
pub struct SitesLeg {
    /// Threads driving calls in this leg.
    pub threads: usize,
    /// Total completed calls across all sites.
    pub total_calls: u64,
    /// Calls that lost a claim race and took the exploit fast path.
    pub contended_calls: u64,
    /// Wall-clock time of the leg, in milliseconds.
    pub wall_ms: f64,
    /// Aggregate throughput, in calls per second.
    pub calls_per_sec: f64,
}

/// Results of the full study.
#[derive(Debug, Clone)]
pub struct SitesStudy {
    pub config: SitesConfig,
    /// One entry per thread count, in sweep order.
    pub legs: Vec<SitesLeg>,
    /// Fraction of sites whose final exploit choice equals the cost
    /// model's per-site winner, measured after the whole sweep.
    pub converged_fraction: f64,
    /// Host core count (scaling legs are only meaningful up to this).
    pub host_cores: usize,
}

fn register_sites(cfg: &SitesConfig) -> Vec<Site> {
    (0..cfg.num_sites)
        .map(|i| {
            let specs = vec![
                AlgorithmSpec::untunable("a0"),
                AlgorithmSpec::untunable("a1"),
                AlgorithmSpec::untunable("a2"),
            ];
            let id = register(SiteSpec::algorithms(
                format!("synthetic-{i}"),
                specs,
                NominalKind::EpsilonGreedy(0.10),
                cfg.seed.wrapping_add(i as u64),
            ));
            site(id)
        })
        .collect()
}

fn drive_leg(cfg: &SitesConfig, sites: &[Site], threads: usize) -> SitesLeg {
    let calls_before: u64 = sites.iter().map(|s| s.calls()).sum();
    let contended_before: u64 = sites.iter().map(|s| s.contended()).sum();
    let start = Instant::now();
    std::thread::scope(|scope| {
        for t in 0..threads {
            let sites = &sites;
            scope.spawn(move || {
                // Each thread sweeps the whole population, phase-shifted so
                // threads collide on sites at staggered times.
                for round in 0..cfg.calls_per_site {
                    for k in 0..sites.len() {
                        let i = (k + t * sites.len() / threads.max(1)) % sites.len();
                        sites[i].tuned(|algorithm, _| {
                            spin_for_us(cost_us(cfg, i, algorithm));
                        });
                        std::hint::black_box(round);
                    }
                }
            });
        }
    });
    let wall_ms = start.elapsed().as_secs_f64() * 1e3;
    let total_calls: u64 = sites.iter().map(|s| s.calls()).sum::<u64>() - calls_before;
    let contended_calls: u64 = sites.iter().map(|s| s.contended()).sum::<u64>() - contended_before;
    SitesLeg {
        threads,
        total_calls,
        contended_calls,
        wall_ms,
        calls_per_sec: total_calls as f64 / (wall_ms / 1e3),
    }
}

/// Run the full study: register the site population once, then sweep the
/// configured thread counts.
pub fn run_study(cfg: &SitesConfig) -> SitesStudy {
    let sites = register_sites(cfg);
    let legs: Vec<SitesLeg> = cfg
        .threads
        .iter()
        .map(|&threads| drive_leg(cfg, &sites, threads))
        .collect();
    let converged = sites
        .iter()
        .enumerate()
        .filter(|(i, s)| {
            s.with_tuner(|t| t.as_two_phase().unwrap().best_algorithm()) == Some(i % 3)
        })
        .count();
    SitesStudy {
        config: cfg.clone(),
        legs,
        converged_fraction: converged as f64 / sites.len() as f64,
        host_cores: available_threads(),
    }
}

/// Human-readable summary table.
pub fn summary(study: &SitesStudy) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "sites study: {} sites x {} calls/site, {} host cores\n",
        study.config.num_sites, study.config.calls_per_site, study.host_cores
    ));
    out.push_str("threads  calls      contended  wall[ms]   calls/s\n");
    let base = study.legs.first().map(|l| l.calls_per_sec);
    for l in &study.legs {
        let speedup = base.map_or(1.0, |b| l.calls_per_sec / b);
        out.push_str(&format!(
            "{:>7}  {:>9}  {:>9}  {:>9.1}  {:>9.0}  ({speedup:.2}x)\n",
            l.threads, l.total_calls, l.contended_calls, l.wall_ms, l.calls_per_sec
        ));
    }
    out.push_str(&format!(
        "converged to per-site winner: {:.1}%\n",
        study.converged_fraction * 100.0
    ));
    out
}

/// Write `sites.json` into `out`.
pub fn save_json(study: &SitesStudy, out: &std::path::Path) -> std::io::Result<()> {
    use autotune::json::Json;
    let legs: Vec<Json> = study
        .legs
        .iter()
        .map(|l| {
            Json::Obj(vec![
                ("threads".into(), Json::Num(l.threads as f64)),
                ("total_calls".into(), Json::Num(l.total_calls as f64)),
                (
                    "contended_calls".into(),
                    Json::Num(l.contended_calls as f64),
                ),
                ("wall_ms".into(), Json::Num(l.wall_ms)),
                ("calls_per_sec".into(), Json::Num(l.calls_per_sec)),
            ])
        })
        .collect();
    let doc = Json::Obj(vec![
        ("num_sites".into(), Json::Num(study.config.num_sites as f64)),
        (
            "calls_per_site".into(),
            Json::Num(study.config.calls_per_site as f64),
        ),
        ("work_us".into(), Json::Num(study.config.work_us as f64)),
        ("host_cores".into(), Json::Num(study.host_cores as f64)),
        ("legs".into(), Json::Arr(legs)),
        (
            "converged_fraction".into(),
            Json::Num(study.converged_fraction),
        ),
    ]);
    std::fs::write(out.join("sites.json"), format!("{doc}\n"))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> SitesConfig {
        SitesConfig {
            num_sites: 12,
            threads: vec![1, 2],
            calls_per_site: 40,
            work_us: 1,
            seed: 99,
        }
    }

    #[test]
    fn study_counts_every_call_exactly_once() {
        let cfg = tiny();
        let study = run_study(&cfg);
        assert_eq!(study.legs.len(), 2);
        for leg in &study.legs {
            assert_eq!(
                leg.total_calls,
                (cfg.num_sites * cfg.calls_per_site * leg.threads) as u64,
                "no lost or duplicated calls at {} threads",
                leg.threads
            );
            assert!(leg.calls_per_sec > 0.0);
        }
        // Single-threaded legs never contend.
        assert_eq!(study.legs[0].contended_calls, 0);
    }

    #[test]
    fn sites_converge_to_their_own_winners() {
        let study = run_study(&tiny());
        assert!(
            study.converged_fraction >= 0.75,
            "only {:.0}% of sites found their winner",
            study.converged_fraction * 100.0
        );
    }

    #[test]
    fn json_export_writes_the_file() {
        let dir = std::env::temp_dir().join("sites_study_test");
        std::fs::create_dir_all(&dir).unwrap();
        let study = run_study(&SitesConfig {
            threads: vec![1],
            num_sites: 4,
            calls_per_site: 5,
            ..tiny()
        });
        save_json(&study, &dir).unwrap();
        let text = std::fs::read_to_string(dir.join("sites.json")).unwrap();
        let doc = autotune::json::Json::parse(&text).unwrap();
        assert_eq!(doc.get("num_sites").unwrap().as_f64().unwrap(), 4.0);
        assert_eq!(doc.get("legs").unwrap().as_arr().unwrap().len(), 1);
    }
}
