//! The `serve` target: both case studies stood up as an always-on tuning
//! service ([`autotune::serve`]).
//!
//! The server owns one tuning site per workload — `serve/match`
//! (case-study-1 algorithmic choice over the kernel-extended matcher set)
//! and `serve/render` (case-study-2 choice over the four kd-tree builders
//! with their parameter spaces) — and dispatches every `OP_MATCH` /
//! `OP_RENDER` request through them. Because the poll loop is
//! single-threaded, each request *is* a tuning iteration: the service
//! converges while it serves.
//!
//! The third workload is size-classed: `OP_SORT` requests carry an array
//! length, and dispatch lands on one of the [`smallsort::SortSites`]
//! class sites (`serve/sort/{seed}/cNN`), so the service learns a
//! *per-size-class* winner instead of one compromise sort. Because a
//! small-array sort finishes in microseconds — under the timer tick —
//! the sort path times tuning iterations with
//! [`autotune::robust::batched_time_ms`] rather than a single
//! `Instant` read.
//!
//! Each site is paired with a [`DriftMonitor`]. `OP_MORPH` requests
//! switch the served workload mid-run (a 4× bigger corpus, a
//! higher-detail scene); the sustained regression trips the monitor,
//! which emits a `DriftDetected` telemetry event, rebuilds the site's
//! tuner from its recipe ([`autotune::site::Site::restart`]), and
//! re-baselines. Per-request runtime logs make the episode measurable:
//! `drift_json` reports, for every restart, the time-to-reconvergence
//! (iterations until a rolling median lands within 5% of the new
//! optimum) — written to `results/serve_drift.json`.
//!
//! On graceful shutdown (`OP_QUIT`, or a signetted stop flag) the run's
//! [`autotune::serve::ServeReport`], the application counters, and a
//! per-site convergence summary land in `results/serve.json`, and
//! whatever telemetry the live subscribers did not drain is exported to
//! `results/serve_trace.jsonl`.
//!
//! ## Request payloads (on top of the frame protocol)
//!
//! | Opcode | Request payload | Response payload |
//! |---|---|---|
//! | `OP_MATCH` | pattern bytes | `u32` LE occurrence count |
//! | `OP_RENDER` | empty, or `u16 LE w, u16 LE h` | `f32` LE mean luminance |
//! | `OP_SORT` | `u32` LE n, optionally `u64` LE key seed, optionally `u8` presort hint | `u8` ok, `u32` LE size class, `u64` LE key checksum |
//! | `OP_MORPH` | `u8` target (0=corpus, 1=scene), `u8` level | the two bytes, echoed |
//!
//! `OP_SORT` generates its `n` keys server-side from the seed (the wire
//! stays cheap while the sort is real); the response's checksum is the
//! wrapping sum of the sorted keys, which a client holding the seed can
//! verify independently. `ok` is the server's own sortedness +
//! key-conservation check.

use autotune::context::ContextKey;
use autotune::drift::{observe_and_restart, DriftConfig, DriftMonitor};
use autotune::json::Json;
use autotune::rng::Rng;
use autotune::serve::protocol::{self, OP_MATCH, OP_MORPH, OP_RENDER, OP_SORT};
use autotune::serve::{serve, RequestHandler, ServeConfig, ServeReport, StopFlag};
use autotune::site::{register, site, Site};
use autotune::stats;
use autotune::telemetry;
use autotune::two_phase::NominalKind;
use raytrace::kdtree::KdBuilder;
use raytrace::render::RenderOptions;
use raytrace::scene::Scene;
use smallsort::SortSites;
use std::net::TcpListener;
use std::path::{Path, PathBuf};
use stringmatch::Matcher;

/// Workload levels each morph target can switch between.
pub const MORPH_LEVELS: usize = 2;
/// The level-1 corpus is this many times the level-0 size — a clean
/// step regression for the drift monitor to catch.
pub const MORPH_CORPUS_FACTOR: usize = 4;

/// Configuration of the `serve` target.
#[derive(Debug, Clone)]
pub struct ServeOptions {
    /// Listen address; `127.0.0.1:0` picks an ephemeral port.
    pub addr: String,
    /// Level-0 corpus size for the match workload, in KiB.
    pub corpus_kb: usize,
    /// Level-0 cathedral detail for the render workload (≥ 1; level 1
    /// adds one).
    pub detail: u32,
    /// Seed for corpora, scenes and site tuners.
    pub seed: u64,
    /// Drift-monitor knobs (shared by both sites).
    pub drift: DriftConfig,
}

impl Default for ServeOptions {
    fn default() -> Self {
        ServeOptions {
            addr: "127.0.0.1:7070".into(),
            corpus_kb: 16,
            detail: 1,
            seed: 42,
            // More deliberate than the monitor's general default: served
            // request runtimes see multi-hundred-request environmental
            // stalls (frequency scaling, noisy neighbors) of ~2x that a
            // 1.5x/patience-3 monitor restarts on. The morph regressions
            // this service must catch are 3-4x, so a higher bar loses
            // nothing and keeps environmental restarts rare.
            drift: DriftConfig {
                threshold: 2.0,
                patience: 5,
                ..DriftConfig::default()
            },
        }
    }
}

/// Per-site request log: runtimes in arrival order plus the indices where
/// morphs and drift restarts happened — the raw material of
/// [`drift_json`].
#[derive(Debug, Default, Clone)]
struct SiteLog {
    runtimes: Vec<f64>,
    morphs: Vec<usize>,
    restarts: Vec<usize>,
}

impl SiteLog {
    fn push(&mut self, ms: f64) -> usize {
        self.runtimes.push(ms);
        self.runtimes.len() - 1
    }
}

/// The application half of the server: both workloads, their sites, drift
/// monitors, and counters. Also usable without any socket (the `serve`
/// bench drives [`RequestHandler::handle`] directly for its
/// direct-dispatch baseline).
pub struct AppHandler {
    match_site: Site,
    matchers: Vec<Box<dyn Matcher>>,
    corpora: Vec<Vec<u8>>,
    corpus_level: usize,
    match_monitor: DriftMonitor,
    match_log: SiteLog,

    render_site: Site,
    builders: Vec<Box<dyn KdBuilder>>,
    scenes: Vec<Scene>,
    scene_level: usize,
    render_monitor: DriftMonitor,
    render_log: SiteLog,
    render_base: RenderOptions,

    sort_sites: SortSites,
    sort_rng: Rng,

    matches: u64,
    renders: u64,
    sorts: u64,
    morphs: u64,
    rejected: u64,
}

/// Hard cap on a served sort request's length: one past the top size
/// class, so a client can exercise the "everything above the boundary
/// shares the top class" clamp but not bloat the server.
pub const MAX_SORT_N: usize = (1 << smallsort::MAX_CLASS_LOG2) + 1;

impl AppHandler {
    /// Build both workloads and register their sites. Site names carry a
    /// `serve/` prefix plus the seed so repeated constructions (tests,
    /// benches) coexist in the process-global registry.
    pub fn new(opts: &ServeOptions) -> AppHandler {
        let corpora = (0..MORPH_LEVELS)
            .map(|level| {
                let bytes = (opts.corpus_kb << 10) * MORPH_CORPUS_FACTOR.pow(level as u32);
                // Dense query spacing (vs the default ~40k words) so even
                // a small served corpus contains occurrences to count.
                stringmatch::corpus::bible_like_with(opts.seed + level as u64, bytes, 250)
            })
            .collect();
        let scenes = (0..MORPH_LEVELS as u32)
            .map(|level| raytrace::scene::cathedral(opts.seed + 3, opts.detail + level))
            .collect();
        let match_site = site(register(stringmatch::tuned::search_site_spec(
            format!("serve/match/{}", opts.seed),
            NominalKind::EpsilonGreedy(0.10),
            opts.seed,
        )));
        let render_site = site(register(raytrace::tunable::frame_site_spec(
            format!("serve/render/{}", opts.seed),
            NominalKind::EpsilonGreedy(0.10),
            opts.seed + 7,
        )));
        let sort_sites = SortSites::register(
            &format!("serve/sort/{}", opts.seed),
            NominalKind::EpsilonGreedy(0.10),
            opts.seed + 11,
        );
        AppHandler {
            match_site,
            matchers: stringmatch::tuned::site_matchers(),
            corpora,
            corpus_level: 0,
            match_monitor: DriftMonitor::new(opts.drift),
            match_log: SiteLog::default(),
            render_site,
            builders: raytrace::kdtree::all_builders(),
            scenes,
            scene_level: 0,
            render_monitor: DriftMonitor::new(opts.drift),
            render_log: SiteLog::default(),
            render_base: RenderOptions {
                width: 16,
                height: 12,
                threads: 1,
                packet_width: 1,
            },
            sort_sites,
            sort_rng: Rng::new(opts.seed ^ 0x5047),
            matches: 0,
            renders: 0,
            sorts: 0,
            morphs: 0,
            rejected: 0,
        }
    }

    /// The two single-site workloads, for post-run convergence reporting.
    pub fn sites(&self) -> [(&'static str, Site); 2] {
        [("match", self.match_site), ("render", self.render_site)]
    }

    /// The size-classed sort sites (one per class), for per-class
    /// convergence reporting. Only classes that actually served a
    /// request are interesting; the caller filters on `calls()`.
    pub fn sort_sites(&self) -> &SortSites {
        &self.sort_sites
    }

    /// Requests handled per opcode: `(matches, renders, morphs)`.
    pub fn counts(&self) -> (u64, u64, u64) {
        (self.matches, self.renders, self.morphs)
    }

    /// Sort requests handled.
    pub fn sort_count(&self) -> u64 {
        self.sorts
    }

    /// The drift report over both sites (`drift_json`), or `None` if
    /// the run never morphed.
    pub fn drift_report(&self) -> Option<Json> {
        if self.match_log.morphs.is_empty() && self.render_log.morphs.is_empty() {
            return None;
        }
        Some(Json::obj(vec![
            ("match", drift_json(&self.match_log)),
            ("render", drift_json(&self.render_log)),
        ]))
    }
}

impl RequestHandler for AppHandler {
    fn handle(&mut self, op: u8, payload: &[u8], out: &mut Vec<u8>) -> bool {
        match op {
            OP_MATCH => {
                let (count, ms) = stringmatch::tuned::match_request(
                    self.match_site,
                    &self.matchers,
                    payload,
                    &self.corpora[self.corpus_level],
                );
                let idx = self.match_log.push(ms);
                if observe_and_restart(self.match_site, &mut self.match_monitor, ms) {
                    self.match_log.restarts.push(idx);
                }
                self.matches += 1;
                protocol::write_frame(out, OP_MATCH, &(count as u32).to_le_bytes());
                true
            }
            OP_RENDER => {
                let base = if payload.len() >= 4 {
                    RenderOptions {
                        width: u16::from_le_bytes([payload[0], payload[1]]).clamp(1, 256) as usize,
                        height: u16::from_le_bytes([payload[2], payload[3]]).clamp(1, 256) as usize,
                        ..self.render_base
                    }
                } else {
                    self.render_base
                };
                let (lum, ms) = raytrace::tunable::render_request(
                    self.render_site,
                    &self.builders,
                    &self.scenes[self.scene_level],
                    &base,
                );
                let idx = self.render_log.push(ms);
                if observe_and_restart(self.render_site, &mut self.render_monitor, ms) {
                    self.render_log.restarts.push(idx);
                }
                self.renders += 1;
                protocol::write_frame(out, OP_RENDER, &lum.to_le_bytes());
                true
            }
            OP_SORT => {
                let Some(n_bytes) = payload.get(0..4) else {
                    self.rejected += 1;
                    protocol::write_frame(out, protocol::OP_ERR, b"sort needs u32 LE n");
                    return true;
                };
                let n = (u32::from_le_bytes(n_bytes.try_into().unwrap()) as usize).min(MAX_SORT_N);
                // Keys are derived server-side: from the client's seed if
                // it sent one (reproducible requests), else from the
                // server's own stream. A trailing presort hint byte of 1
                // asks for a nearly-sorted input instead of a random one,
                // steering the request onto a different context key at
                // the same size.
                let seed = payload
                    .get(4..12)
                    .map(|b| u64::from_le_bytes(b.try_into().unwrap()))
                    .unwrap_or_else(|| self.sort_rng.next_u64());
                let mut keys = Rng::new(seed);
                let mut data: Vec<u64> = if payload.get(12) == Some(&1) {
                    smallsort::nearly_sorted_input(n, &mut keys)
                } else {
                    (0..n).map(|_| keys.next_u64()).collect()
                };
                let sum_in = data.iter().copied().fold(0u64, u64::wrapping_add);
                let (class, _ms) = smallsort::sort_request(&self.sort_sites, &mut data);
                let sum_out = data.iter().copied().fold(0u64, u64::wrapping_add);
                let ok = sum_in == sum_out && data.windows(2).all(|w| w[0] <= w[1]);
                self.sorts += 1;
                let mark = protocol::begin_frame(out, OP_SORT);
                out.push(ok as u8);
                out.extend_from_slice(&class.to_le_bytes());
                out.extend_from_slice(&sum_out.to_le_bytes());
                protocol::end_frame(out, mark);
                true
            }
            OP_MORPH => {
                let (Some(&target), Some(&level)) = (payload.first(), payload.get(1)) else {
                    self.rejected += 1;
                    protocol::write_frame(out, protocol::OP_ERR, b"morph needs [target, level]");
                    return true;
                };
                let level = (level as usize).min(MORPH_LEVELS - 1);
                match target {
                    0 => {
                        self.corpus_level = level;
                        self.match_log.morphs.push(self.match_log.runtimes.len());
                    }
                    _ => {
                        self.scene_level = level;
                        self.render_log.morphs.push(self.render_log.runtimes.len());
                    }
                }
                self.morphs += 1;
                protocol::write_frame(out, OP_MORPH, &[target, level as u8]);
                true
            }
            _ => false,
        }
    }

    fn stats_json(&self) -> Option<Json> {
        Some(Json::obj(vec![
            ("matches", Json::Num(self.matches as f64)),
            ("renders", Json::Num(self.renders as f64)),
            ("sorts", Json::Num(self.sorts as f64)),
            ("morphs", Json::Num(self.morphs as f64)),
            ("rejected", Json::Num(self.rejected as f64)),
            ("corpus_level", Json::Num(self.corpus_level as f64)),
            ("scene_level", Json::Num(self.scene_level as f64)),
            (
                "match_restarts",
                Json::Num(self.match_site.restarts() as f64),
            ),
            (
                "render_restarts",
                Json::Num(self.render_site.restarts() as f64),
            ),
        ]))
    }
}

/// Rolling-median window for the reconvergence scan.
const RECONV_WINDOW: usize = 15;
/// "Within 5% of the new optimum" — the acceptance criterion's bound.
const RECONV_TOLERANCE: f64 = 0.05;

/// Iterations from `start` until the rolling median of `runtimes[start..]`
/// first lands within [`RECONV_TOLERANCE`] of the converged (final)
/// median, or `None` if it never does.
fn reconvergence_iterations(runtimes: &[f64], start: usize) -> Option<(usize, f64)> {
    let tail = &runtimes[start..];
    if tail.len() < 2 * RECONV_WINDOW {
        return None;
    }
    // The "new optimum": the converged end of the post-restart regime.
    let settled = stats::median(&tail[tail.len() - tail.len().min(4 * RECONV_WINDOW)..]);
    for i in RECONV_WINDOW..=tail.len() {
        let m = stats::median(&tail[i - RECONV_WINDOW..i]);
        if (m - settled).abs() <= settled * RECONV_TOLERANCE {
            return Some((i, settled));
        }
    }
    None
}

/// The drift episode of one site as JSON: per restart, where the morph
/// and the restart happened, the runtime regime before and after, and the
/// time-to-reconvergence (iterations until a [`RECONV_WINDOW`]-wide
/// rolling median is within 5% of the new optimum).
fn drift_json(log: &SiteLog) -> Json {
    let episodes = log
        .restarts
        .iter()
        .map(|&r| {
            // Attribute a morph only if it is the nearest event before this
            // restart — an episode after an intervening restart was
            // triggered by something else (an environmental regression),
            // and claiming the stale morph would fake its detection lag.
            let morph = log
                .morphs
                .iter()
                .rev()
                .find(|&&m| m <= r)
                .copied()
                .filter(|&m| !log.restarts.iter().any(|&r2| r2 >= m && r2 < r));
            let pre = morph.filter(|&m| m > 0).map(|m| {
                let lo = m.saturating_sub(64);
                stats::median(&log.runtimes[lo..m])
            });
            let (reconv, settled) = match reconvergence_iterations(&log.runtimes, r + 1) {
                Some((i, s)) => (Json::Num(i as f64), Json::Num(s)),
                None => (Json::Null, Json::Null),
            };
            Json::obj(vec![
                (
                    "morph_at",
                    morph.map_or(Json::Null, |m| Json::Num(m as f64)),
                ),
                ("restart_at", Json::Num(r as f64)),
                (
                    "detect_lag_requests",
                    morph.map_or(Json::Null, |m| Json::Num((r - m) as f64)),
                ),
                ("median_before_ms", pre.map_or(Json::Null, Json::Num)),
                ("new_optimum_ms", settled),
                ("reconverged_after_iters", reconv),
            ])
        })
        .collect();
    Json::obj(vec![
        ("requests", Json::Num(log.runtimes.len() as f64)),
        (
            "morphs",
            Json::Arr(log.morphs.iter().map(|&m| Json::Num(m as f64)).collect()),
        ),
        ("restarts", Json::Num(log.restarts.len() as f64)),
        ("episodes", Json::Arr(episodes)),
    ])
}

/// Post-run convergence summary of one site, for `serve.json`.
fn site_json(name: &str, s: Site) -> Json {
    let mut pairs = vec![
        ("name", Json::Str(name.into())),
        ("calls", Json::Num(s.calls() as f64)),
        ("tuned_iterations", Json::Num(s.tuned_iterations() as f64)),
        ("contended", Json::Num(s.contended() as f64)),
        ("restarts", Json::Num(s.restarts() as f64)),
    ];
    s.with_tuner(|t| {
        if let Some(tp) = t.as_two_phase() {
            let (exploit, _) = tp.exploit_choice();
            pairs.push(("algorithms", Json::Num(tp.num_algorithms() as f64)));
            pairs.push((
                "exploit_algorithm",
                Json::Str(tp.algorithm_name(exploit).into()),
            ));
            pairs.push(("log_len", Json::Num(tp.log().len() as f64)));
            pairs.push((
                "selection_counts",
                Json::Arr(
                    tp.selection_counts()
                        .iter()
                        .map(|&c| Json::Num(c as f64))
                        .collect(),
                ),
            ));
        }
    });
    Json::obj(pairs)
}

/// `results/serve.json`: the server report, the application counters, and
/// the per-site convergence summaries.
pub fn serve_json(report: &ServeReport, handler: &AppHandler) -> Json {
    Json::obj(vec![
        ("id", Json::Str("serve".into())),
        ("server", report.to_json()),
        ("app", handler.stats_json().unwrap_or(Json::Null)),
        (
            "sites",
            Json::Arr(
                handler
                    .sites()
                    .iter()
                    .map(|&(name, s)| site_json(name, s))
                    // Sort context sites ride along, but only the keys
                    // this run actually served. Keys sort so the report
                    // order is stable across runs.
                    .chain({
                        let mut keys: Vec<_> = handler.sort_sites().table().keys();
                        keys.sort_unstable();
                        keys.into_iter().filter_map(|(key, context)| {
                            let s = handler.sort_sites().key_site(key);
                            (s.calls() > 0).then(|| {
                                let mut j = site_json(&format!("sort/{}", key.label()), s);
                                if let Json::Obj(pairs) = &mut j {
                                    pairs.insert(1, ("context".into(), Json::Num(context as f64)));
                                }
                                j
                            })
                        })
                    })
                    .collect(),
            ),
        ),
    ])
}

/// Run the service until a client sends `OP_QUIT` (or `stop` is raised),
/// then write `serve.json`, `serve_drift.json` (if the run morphed) and
/// `serve_trace.jsonl` into `out`. Returns the written paths.
pub fn run_serve(
    opts: &ServeOptions,
    out: &Path,
    stop: &StopFlag,
) -> std::io::Result<Vec<PathBuf>> {
    run_serve_on(TcpListener::bind(&opts.addr)?, opts, out, stop)
}

/// [`run_serve`] on an already-bound listener — lets tests bind port 0
/// and learn the ephemeral port before the server starts.
pub fn run_serve_on(
    listener: TcpListener,
    opts: &ServeOptions,
    out: &Path,
    stop: &StopFlag,
) -> std::io::Result<Vec<PathBuf>> {
    telemetry::enable();
    let local = listener.local_addr()?;
    eprintln!(
        "[serve] listening on {local} (corpus {}KiB ×{MORPH_CORPUS_FACTOR}, detail {}..{}; \
         quit with OP_QUIT or GET /stats to peek)",
        opts.corpus_kb,
        opts.detail,
        opts.detail + MORPH_LEVELS as u32 - 1,
    );
    let mut handler = AppHandler::new(opts);
    let report = serve(listener, &mut handler, &ServeConfig::default(), stop)?;

    let mut written = Vec::new();
    let serve_path = out.join("serve.json");
    std::fs::write(
        &serve_path,
        serve_json(&report, &handler).to_string_pretty() + "\n",
    )?;
    written.push(serve_path);
    if let Some(drift) = handler.drift_report() {
        let drift_path = out.join("serve_drift.json");
        std::fs::write(&drift_path, drift.to_string_pretty() + "\n")?;
        written.push(drift_path);
    }
    // Whatever live subscribers did not drain is still in the ring:
    // export it so the run's tail is never lost.
    let residue = telemetry::drain();
    let trace_path = out.join("serve_trace.jsonl");
    std::fs::write(&trace_path, telemetry::export::to_jsonl(&residue))?;
    written.push(trace_path);

    let (matches, renders, morphs) = handler.counts();
    let sorts = handler.sort_count();
    eprintln!(
        "[serve] done: {} requests ({matches} match, {renders} render, {sorts} sort, \
         {morphs} morph) in {:.1}s = {:.0} req/s, p99 {:.1}µs, {} drift restarts",
        report.requests,
        report.elapsed_s,
        report.throughput_rps,
        report.p99_us,
        handler.match_site.restarts() + handler.render_site.restarts(),
    );
    Ok(written)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_opts(seed: u64) -> ServeOptions {
        ServeOptions {
            corpus_kb: 4,
            seed,
            drift: DriftConfig {
                baseline_window: 16,
                recent_window: 8,
                threshold: 1.5,
                patience: 2,
                stride: 4,
                min_delta_ms: 0.0,
            },
            ..ServeOptions::default()
        }
    }

    #[test]
    fn match_requests_count_and_tune() {
        let mut h = AppHandler::new(&tiny_opts(1001));
        let mut out = Vec::new();
        for _ in 0..10 {
            out.clear();
            assert!(h.handle(OP_MATCH, stringmatch::PAPER_QUERY, &mut out));
        }
        // Response frame: count > 0 (the corpus embeds the paper query).
        let count = u32::from_le_bytes(out[5..9].try_into().unwrap());
        assert!(count > 0);
        assert_eq!(h.match_site.calls(), 10);
        assert_eq!(h.counts().0, 10);
    }

    #[test]
    fn render_requests_produce_luminance() {
        let mut h = AppHandler::new(&tiny_opts(1003));
        let mut out = Vec::new();
        assert!(h.handle(OP_RENDER, &[], &mut out));
        let lum = f32::from_le_bytes(out[5..9].try_into().unwrap());
        assert!((0.0..=1.0).contains(&lum), "{lum}");
        assert_eq!(h.render_site.calls(), 1);
    }

    #[test]
    fn sort_requests_land_on_their_size_class_site() {
        let mut h = AppHandler::new(&tiny_opts(1009));
        let mut out = Vec::new();
        // 96-key requests bucket into class 7 (2^6 < 96 ≤ 2^7); a fixed
        // key seed makes the expected checksum computable client-side.
        let mut req = 96u32.to_le_bytes().to_vec();
        req.extend_from_slice(&77u64.to_le_bytes());
        for _ in 0..10 {
            out.clear();
            assert!(h.handle(OP_SORT, &req, &mut out));
        }
        assert_eq!(out[5], 1, "server-side sortedness check must pass");
        let class = u32::from_le_bytes(out[6..10].try_into().unwrap());
        assert_eq!(class, smallsort::size_class(96));
        let mut keys = Rng::new(77);
        let want: u64 = (0..96)
            .map(|_| keys.next_u64())
            .fold(0u64, u64::wrapping_add);
        let sum = u64::from_le_bytes(out[10..18].try_into().unwrap());
        assert_eq!(sum, want, "checksum must be reproducible from the seed");
        // Every request hit exactly the class-7 site; its neighbors idle.
        assert_eq!(h.sort_sites().class_site(class).calls(), 10);
        assert_eq!(h.sort_sites().class_site(class + 1).calls(), 0);
        assert_eq!(h.sort_count(), 10);
        // Truncated payloads are rejected without killing the connection.
        out.clear();
        assert!(h.handle(OP_SORT, &[1, 2], &mut out));
        assert_eq!(out[4], protocol::OP_ERR);
    }

    #[test]
    fn sort_presort_hint_steers_requests_to_the_nearly_sorted_key() {
        use smallsort::{SortKey, PRESORT_NEARLY_SORTED, PRESORT_RANDOM};
        let mut h = AppHandler::new(&tiny_opts(1013));
        let mut out = Vec::new();
        let mut req = 96u32.to_le_bytes().to_vec();
        req.extend_from_slice(&77u64.to_le_bytes());
        req.push(1); // presort hint: nearly-sorted input
        for _ in 0..5 {
            out.clear();
            assert!(h.handle(OP_SORT, &req, &mut out));
        }
        assert_eq!(out[5], 1, "server-side sortedness check must pass");
        let class = u32::from_le_bytes(out[6..10].try_into().unwrap());
        assert_eq!(class, smallsort::size_class(96));
        // Same size, different context key than the random-input path.
        let table = h.sort_sites().table();
        let near = SortKey::new(class, PRESORT_NEARLY_SORTED);
        assert_eq!(table.key_stats(&near).unwrap().calls, 5);
        assert!(table
            .key_stats(&SortKey::new(class, PRESORT_RANDOM))
            .is_none());
    }

    #[test]
    fn serve_json_includes_active_sort_classes() {
        let mut h = AppHandler::new(&tiny_opts(1011));
        let mut out = Vec::new();
        for n in [16u32, 4096] {
            for _ in 0..3 {
                out.clear();
                h.handle(OP_SORT, &n.to_le_bytes(), &mut out);
            }
        }
        let doc = serve_json(&ServeReport::default(), &h);
        let sites = doc.get("sites").and_then(Json::as_arr).unwrap();
        let names: Vec<&str> = sites
            .iter()
            .filter_map(|s| s.get("name").and_then(Json::as_str))
            .collect();
        assert!(names.contains(&"sort/c04/random"), "{names:?}");
        assert!(names.contains(&"sort/c12/random"), "{names:?}");
        // Idle context keys stay out of the report.
        assert!(
            !names.iter().any(|n| n.starts_with("sort/c08")),
            "{names:?}"
        );
        // Sort sites carry their context id next to the slot counters.
        assert!(sites
            .iter()
            .filter(|s| {
                s.get("name")
                    .and_then(Json::as_str)
                    .is_some_and(|n| n.starts_with("sort/"))
            })
            .all(|s| s.get("context").and_then(Json::as_f64).is_some()));
        assert_eq!(
            doc.get("app").unwrap().get("sorts").and_then(Json::as_f64),
            Some(6.0)
        );
    }

    #[test]
    fn corpus_morph_drives_drift_restart() {
        let mut h = AppHandler::new(&tiny_opts(1005));
        let mut out = Vec::new();
        // Converge a baseline on the small corpus...
        for _ in 0..64 {
            out.clear();
            h.handle(OP_MATCH, stringmatch::PAPER_QUERY, &mut out);
        }
        assert_eq!(h.match_site.restarts(), 0);
        // ...switch to the 4× corpus mid-run...
        out.clear();
        assert!(h.handle(OP_MORPH, &[0, 1], &mut out));
        assert_eq!(&out[5..7], &[0, 1]);
        // ...and keep serving: the sustained regression must fire.
        for _ in 0..256 {
            out.clear();
            h.handle(OP_MATCH, stringmatch::PAPER_QUERY, &mut out);
            if h.match_site.restarts() > 0 {
                break;
            }
        }
        assert_eq!(h.match_site.restarts(), 1, "drift restart must fire");
        let report = h.drift_report().expect("morphed run has a drift report");
        let m = report.get("match").unwrap();
        assert_eq!(m.get("restarts").and_then(Json::as_f64), Some(1.0));
    }

    #[test]
    fn reconvergence_scan_finds_the_settled_regime() {
        // 30 slow samples, then 100 settled fast ones.
        let mut runtimes = vec![9.0; 30];
        runtimes.extend(vec![1.0; 100]);
        let (iters, settled) = reconvergence_iterations(&runtimes, 0).expect("reconverges");
        assert_eq!(settled, 1.0);
        // The rolling median crosses once the window is majority-fast.
        assert!((30..60).contains(&iters), "{iters}");
    }

    #[test]
    fn serve_json_reports_site_convergence() {
        let mut h = AppHandler::new(&tiny_opts(1007));
        let mut out = Vec::new();
        for _ in 0..12 {
            out.clear();
            h.handle(OP_MATCH, b"and", &mut out);
        }
        let doc = serve_json(&ServeReport::default(), &h);
        let sites = doc.get("sites").and_then(Json::as_arr).unwrap();
        assert_eq!(sites.len(), 2);
        assert_eq!(sites[0].get("calls").and_then(Json::as_f64), Some(12.0));
        assert!(sites[0]
            .get("exploit_algorithm")
            .and_then(Json::as_str)
            .is_some());
    }
}
