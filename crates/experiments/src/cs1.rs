//! Case study 1: parallel string matching (Section IV-A, Figures 1-4).
//!
//! Online scenario: the query pattern and the text corpus are fixed at
//! program invocation; each tuning iteration repeats the search for the
//! query phrase, timing precomputation + search. The tunable parameter is
//! purely the algorithmic choice — the matchers expose no parameters of
//! their own, so every algorithm's phase-1 space is empty.

use crate::report::{BoxFigure, Boxed, GroupedBoxFigure, SeriesFigure};
use autotune::measure::time_ms;
use autotune::robust::{MeasureOutcome, RobustOptions};
use autotune::stats::{self, FiveNumber};
use autotune::two_phase::{AlgorithmSpec, NominalKind, TwoPhaseTuner};
use stringmatch::{
    all_matchers, all_matchers_with_kernels, corpus, Matcher, ParallelMatcher, PAPER_QUERY,
};

/// Experiment scale knobs. Defaults are the *quick* profile (minutes, not
/// hours); `Cs1Config::paper()` reproduces the paper's scale.
#[derive(Debug, Clone)]
pub struct Cs1Config {
    /// Corpus size in bytes (the KJV Bible is ~4.2 MB).
    pub corpus_bytes: usize,
    /// Embed the query phrase roughly every this-many words.
    pub query_spacing_words: usize,
    /// Experiment repetitions (paper: 100).
    pub reps: usize,
    /// Tuning-loop iterations per experiment (paper: 200).
    pub iterations: usize,
    /// Search threads per matcher invocation (paper machine: 8).
    pub threads: usize,
    pub seed: u64,
}

impl Default for Cs1Config {
    fn default() -> Self {
        Cs1Config {
            corpus_bytes: 1 << 20, // 1 MiB
            query_spacing_words: 20_000,
            reps: 10,
            iterations: 60,
            threads: available_threads(),
            seed: 20170529,
        }
    }
}

impl Cs1Config {
    /// The paper's scale: 4 MiB corpus, 100 repetitions, 200 iterations.
    pub fn paper() -> Self {
        Cs1Config {
            corpus_bytes: 4 << 20,
            reps: 100,
            iterations: 200,
            ..Default::default()
        }
    }
}

fn available_threads() -> usize {
    std::thread::available_parallelism().map_or(8, |n| n.get())
}

/// One timed search: precomputation + parallel match, in milliseconds.
pub fn timed_search(matcher: &dyn Matcher, threads: usize, text: &[u8]) -> f64 {
    let pm = ParallelMatcher::new(matcher, threads);
    let (hits, ms) = time_ms(|| pm.find_all(PAPER_QUERY, text));
    // The phrase is embedded in the corpus; a zero count would mean a
    // broken matcher, which must not silently corrupt the benchmark.
    assert!(
        !hits.is_empty(),
        "query phrase not found by {}",
        matcher.name()
    );
    ms
}

/// Fallible variant of [`timed_search`] for fault-tolerant tuning loops:
/// the search runs under the robust pipeline, so a matcher panic — or a
/// matcher silently missing the embedded query phrase — becomes
/// [`MeasureOutcome::Failed`] instead of aborting the experiment process.
pub fn timed_search_outcome(
    matcher: &dyn Matcher,
    threads: usize,
    text: &[u8],
    opts: &RobustOptions,
) -> MeasureOutcome {
    ParallelMatcher::new(matcher, threads).measure_search(PAPER_QUERY, text, true, opts)
}

/// All eight matcher names in figure order.
pub fn algorithm_names() -> Vec<String> {
    all_matchers()
        .iter()
        .map(|m| m.name().to_string())
        .collect()
}

/// Raw data for Figure 1: per-algorithm single-search times over `reps`
/// repetitions (no tuning).
pub fn untuned_times(cfg: &Cs1Config) -> Vec<(String, Vec<f64>)> {
    let text = corpus::bible_like_with(cfg.seed, cfg.corpus_bytes, cfg.query_spacing_words);
    all_matchers()
        .iter()
        .map(|m| {
            let times: Vec<f64> = (0..cfg.reps)
                .map(|_| timed_search(m.as_ref(), cfg.threads, &text))
                .collect();
            (m.name().to_string(), times)
        })
        .collect()
}

/// Figure 1: boxplot of untuned per-algorithm performance.
pub fn fig1(cfg: &Cs1Config) -> BoxFigure {
    let boxes = untuned_times(cfg)
        .into_iter()
        .map(|(name, times)| (name, Boxed::from(FiveNumber::of(&times).expect("reps > 0"))))
        .collect();
    BoxFigure {
        id: "fig1".into(),
        title: "String Matching: untuned algorithm performance".into(),
        ylabel: "time [ms]".into(),
        boxes,
    }
}

/// The six paper strategies with their labels.
pub fn strategies() -> Vec<(String, NominalKind)> {
    NominalKind::paper_set()
        .into_iter()
        .map(|k| (k.label(), k))
        .collect()
}

/// Run the full tuning experiment: for every strategy, `reps` repetitions
/// of `iterations` tuning iterations. Returns, per strategy, the
/// per-repetition iteration-time series and selection counts.
pub struct Cs1Runs {
    /// `[strategy][rep][iteration]` runtime samples.
    pub times: Vec<Vec<Vec<f64>>>,
    /// `[strategy][rep][algorithm]` selection counts.
    pub counts: Vec<Vec<Vec<usize>>>,
    pub strategy_labels: Vec<String>,
    pub algorithm_labels: Vec<String>,
}

pub fn run_tuning(cfg: &Cs1Config) -> Cs1Runs {
    run_tuning_with(cfg, all_matchers())
}

/// The paper experiment over the *kernel-extended* algorithm set: scalar
/// matchers compete against their SWAR/SIMD variants and the phase-2
/// strategies pick the winner online — algorithmic choice doing the job
/// of a compile-time SIMD switch.
pub fn run_tuning_with_kernels(cfg: &Cs1Config) -> Cs1Runs {
    run_tuning_with(cfg, all_matchers_with_kernels())
}

/// [`run_tuning`] over an arbitrary nominal set `𝒜`.
pub fn run_tuning_with(cfg: &Cs1Config, matchers: Vec<Box<dyn Matcher>>) -> Cs1Runs {
    let text = corpus::bible_like_with(cfg.seed, cfg.corpus_bytes, cfg.query_spacing_words);
    let specs: Vec<AlgorithmSpec> = matchers
        .iter()
        .map(|m| AlgorithmSpec::untunable(m.name()))
        .collect();

    let mut times = Vec::new();
    let mut counts = Vec::new();
    for (si, (_, kind)) in strategies().iter().enumerate() {
        let mut strat_times = Vec::with_capacity(cfg.reps);
        let mut strat_counts = Vec::with_capacity(cfg.reps);
        for rep in 0..cfg.reps {
            let seed = cfg
                .seed
                .wrapping_add(rep as u64 * 1009)
                .wrapping_add(si as u64 * 7919);
            let mut tuner = TwoPhaseTuner::new(specs.clone(), *kind, seed);
            let mut series = Vec::with_capacity(cfg.iterations);
            for _ in 0..cfg.iterations {
                let sample =
                    tuner.step(|alg, _| timed_search(matchers[alg].as_ref(), cfg.threads, &text));
                series.push(sample.value);
            }
            strat_times.push(series);
            strat_counts.push(tuner.selection_counts());
        }
        times.push(strat_times);
        counts.push(strat_counts);
    }
    Cs1Runs {
        times,
        counts,
        strategy_labels: strategies().into_iter().map(|(l, _)| l).collect(),
        algorithm_labels: matchers.iter().map(|m| m.name().to_string()).collect(),
    }
}

/// Kernel-variant timeline: [`fig3`]-style mean per-iteration series over
/// the extended set, showing whether strategies settle on a vectorized
/// matcher.
pub fn kernels_timeline(runs: &Cs1Runs) -> SeriesFigure {
    let mut f = per_iteration_figure(runs, "kernels_timeline", "mean", stats::mean, 50);
    f.title = "Kernels: tuning over scalar + SWAR/SIMD matcher variants".into();
    f
}

/// Kernel-variant selection histogram ([`fig4`]-style, extended set).
pub fn kernels_selection(runs: &Cs1Runs) -> GroupedBoxFigure {
    selection_histogram(runs, "kernels_selection", "Kernels")
}

/// Figure 2: median per-iteration time of every strategy (capped at 25
/// iterations, as in the paper — all curves are converged by then).
pub fn fig2(runs: &Cs1Runs) -> SeriesFigure {
    per_iteration_figure(runs, "fig2", "median", stats::median, 25)
}

/// Figure 3: mean per-iteration time (capped at 50 iterations).
pub fn fig3(runs: &Cs1Runs) -> SeriesFigure {
    per_iteration_figure(runs, "fig3", "mean", stats::mean, 50)
}

fn per_iteration_figure(
    runs: &Cs1Runs,
    id: &str,
    reducer_name: &str,
    reducer: fn(&[f64]) -> f64,
    cap: usize,
) -> SeriesFigure {
    let series = runs
        .strategy_labels
        .iter()
        .zip(&runs.times)
        .map(|(label, reps)| {
            let mut reduced = stats::per_iteration_reduce(reps, reducer);
            reduced.truncate(cap);
            (label.clone(), reduced)
        })
        .collect();
    SeriesFigure {
        id: id.into(),
        title: format!("String Matching: {reducer_name} performance per iteration"),
        xlabel: "iteration".into(),
        ylabel: "time [ms]".into(),
        series,
    }
}

/// Figure 4: per-strategy histogram of how often each algorithm was
/// chosen, as a boxplot over repetitions.
pub fn fig4(runs: &Cs1Runs) -> GroupedBoxFigure {
    selection_histogram(runs, "fig4", "String Matching")
}

/// Extension study: per-algorithm performance across pattern *lengths* —
/// the regime structure the `Hybrid` matcher's thresholds (and the paper's
/// premise that the optimal algorithm depends on the input) rest on.
/// Patterns are sampled from the corpus itself so every search has real
/// matches. Groups are algorithms; categories are pattern lengths.
pub fn pattern_length_study(cfg: &Cs1Config) -> GroupedBoxFigure {
    let text = corpus::bible_like_with(cfg.seed, cfg.corpus_bytes, cfg.query_spacing_words);
    let lengths = [3usize, 6, 12, 24, 39, 64, 128];
    let mut rng = autotune::rng::Rng::new(cfg.seed ^ 0x9A77);
    let groups = all_matchers()
        .iter()
        .map(|m| {
            let boxes = lengths
                .iter()
                .map(|&len| {
                    let times: Vec<f64> = (0..cfg.reps)
                        .map(|_| {
                            let start = rng.pick_index(text.len() - len);
                            let pattern = &text[start..start + len];
                            let pm = ParallelMatcher::new(m.as_ref(), cfg.threads);
                            let (hits, ms) = time_ms(|| pm.find_all(pattern, &text));
                            assert!(!hits.is_empty(), "sampled pattern must occur");
                            ms
                        })
                        .collect();
                    Boxed::from(FiveNumber::of(&times).expect("reps > 0"))
                })
                .collect();
            (m.name().to_string(), boxes)
        })
        .collect();
    GroupedBoxFigure {
        id: "pattern_lengths".into(),
        title: "Extension: algorithm performance by pattern length".into(),
        ylabel: "time [ms]".into(),
        categories: lengths.iter().map(|l| format!("m={l}")).collect(),
        groups,
    }
}

pub(crate) fn selection_histogram(runs: &Cs1Runs, id: &str, what: &str) -> GroupedBoxFigure {
    let groups = runs
        .strategy_labels
        .iter()
        .zip(&runs.counts)
        .map(|(label, reps)| {
            let boxes = (0..runs.algorithm_labels.len())
                .map(|alg| {
                    let per_rep: Vec<f64> = reps.iter().map(|counts| counts[alg] as f64).collect();
                    Boxed::from(FiveNumber::of(&per_rep).expect("reps > 0"))
                })
                .collect();
            (label.clone(), boxes)
        })
        .collect();
    GroupedBoxFigure {
        id: id.into(),
        title: format!("{what}: algorithm selection frequency by strategy"),
        ylabel: "count".into(),
        categories: runs.algorithm_labels.clone(),
        groups,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> Cs1Config {
        Cs1Config {
            corpus_bytes: 64 << 10,
            query_spacing_words: 2_000,
            reps: 2,
            iterations: 20,
            threads: 2,
            seed: 7,
        }
    }

    #[test]
    fn untuned_times_cover_all_algorithms() {
        let data = untuned_times(&tiny());
        assert_eq!(data.len(), 8);
        for (name, times) in &data {
            assert_eq!(times.len(), 2, "{name}");
            assert!(times.iter().all(|&t| t > 0.0), "{name}");
        }
    }

    #[test]
    fn fig1_produces_eight_boxes() {
        let f = fig1(&tiny());
        assert_eq!(f.boxes.len(), 8);
        for (_, b) in &f.boxes {
            assert!(b.min <= b.median && b.median <= b.max);
        }
    }

    #[test]
    fn tuning_runs_have_expected_shape() {
        let cfg = tiny();
        let runs = run_tuning(&cfg);
        assert_eq!(runs.times.len(), 6, "six strategies");
        assert_eq!(runs.counts.len(), 6);
        for (st, sc) in runs.times.iter().zip(&runs.counts) {
            assert_eq!(st.len(), cfg.reps);
            for series in st {
                assert_eq!(series.len(), cfg.iterations);
            }
            for counts in sc {
                assert_eq!(counts.len(), 8);
                assert_eq!(counts.iter().sum::<usize>(), cfg.iterations);
            }
        }
    }

    #[test]
    fn figures_2_3_4_from_shared_runs() {
        let runs = run_tuning(&tiny());
        let f2 = fig2(&runs);
        assert_eq!(f2.series.len(), 6);
        assert!(f2.series[0].1.len() <= 25);
        let f3 = fig3(&runs);
        assert!(f3.series[0].1.len() <= 50);
        let f4 = fig4(&runs);
        assert_eq!(f4.categories.len(), 8);
        assert_eq!(f4.groups.len(), 6);
    }

    #[test]
    fn pattern_length_study_shape() {
        let cfg = Cs1Config {
            corpus_bytes: 32 << 10,
            reps: 2,
            ..tiny()
        };
        let f = pattern_length_study(&cfg);
        assert_eq!(f.groups.len(), 8, "one group per algorithm");
        assert_eq!(f.categories.len(), 7, "seven pattern lengths");
        for (name, boxes) in &f.groups {
            for b in boxes {
                assert!(b.median > 0.0, "{name}");
            }
        }
    }

    #[test]
    fn kernel_extended_runs_cover_twelve_algorithms() {
        let cfg = Cs1Config {
            reps: 1,
            iterations: 14,
            ..tiny()
        };
        let runs = run_tuning_with_kernels(&cfg);
        assert_eq!(runs.algorithm_labels.len(), 12);
        assert!(runs
            .algorithm_labels
            .iter()
            .any(|n| n == "Boyer-Moore-SIMD"));
        for sc in &runs.counts {
            for counts in sc {
                assert_eq!(counts.len(), 12);
                assert_eq!(counts.iter().sum::<usize>(), cfg.iterations);
            }
        }
        let f = kernels_timeline(&runs);
        assert_eq!(f.series.len(), 6);
        let h = kernels_selection(&runs);
        assert_eq!(h.categories.len(), 12);
    }

    #[test]
    fn epsilon_greedy_converges_to_a_fast_algorithm() {
        // The headline result of case study 1, at miniature scale: after
        // tuning, ε-Greedy's median iteration time approaches the fastest
        // algorithm's untuned time.
        let cfg = Cs1Config {
            iterations: 40,
            ..tiny()
        };
        let runs = run_tuning(&cfg);
        let untuned = untuned_times(&cfg);
        let best_untuned = untuned
            .iter()
            .map(|(_, t)| stats::median(t))
            .fold(f64::INFINITY, f64::min);
        // Strategy 1 is ε-Greedy(10%). Take the median of its last 10
        // iterations across reps.
        let eps10 = &runs.times[1];
        let tail: Vec<f64> = eps10
            .iter()
            .flat_map(|series| series[series.len() - 10..].to_vec())
            .collect();
        let tail_median = stats::median(&tail);
        assert!(
            tail_median < best_untuned * 4.0,
            "converged median {tail_median} vs best untuned {best_untuned}"
        );
    }
}
