//! Ablation experiments for the design choices DESIGN.md calls out.
//!
//! These run on *synthetic* cost models (deterministic arm costs plus
//! seeded noise), so they measure strategy behaviour — convergence speed,
//! regret, switching latency — without benchmarking noise:
//!
//! * [`eps_sweep`] — ε beyond the paper's {5, 10, 20}%: the
//!   exploration/exploitation regret trade-off.
//! * [`window_sweep`] — window sizes for Gradient Weighted and
//!   Sliding-Window AUC on a drifting workload.
//! * [`phase1_swap`] — Nelder-Mead vs. hill climbing vs. random search as
//!   the phase-1 tuner inside the two-phase loop.
//! * [`crossover`] — the Section IV-C threat to validity: an algorithm
//!   that starts slower but tunes to become the fastest. Measures how many
//!   iterations each strategy needs to switch its preference.

use crate::report::SeriesFigure;
use autotune::nominal::{EpsilonGreedy, GradientWeighted, NominalStrategy, SlidingWindowAuc};
use autotune::param::Parameter;
use autotune::rng::Rng;
use autotune::space::SearchSpace;
use autotune::stats;
use autotune::two_phase::{AlgorithmSpec, NominalKind, Phase1Kind, TwoPhaseTuner};

/// Fixed arm costs shaped like Figure 1 (four fast arms, four slow ones).
const ARM_COSTS: [f64; 8] = [120.0, 12.0, 14.0, 10.0, 11.0, 95.0, 110.0, 15.0];

fn noisy(rng: &mut Rng, base: f64) -> f64 {
    (base * (1.0 + 0.03 * rng.next_gaussian())).max(0.01)
}

/// Mean cumulative regret (vs. always playing the optimal arm) of
/// ε-Greedy across a sweep of ε values.
pub fn eps_sweep(reps: usize, iterations: usize, seed: u64) -> SeriesFigure {
    let best = ARM_COSTS.iter().cloned().fold(f64::INFINITY, f64::min);
    let epsilons = [0.01, 0.02, 0.05, 0.10, 0.20, 0.30, 0.50];
    let mut series = Vec::new();
    for &eps in &epsilons {
        let mut per_rep: Vec<Vec<f64>> = Vec::with_capacity(reps);
        for rep in 0..reps {
            let mut rng = Rng::new(seed ^ (rep as u64 * 31 + (eps * 1000.0) as u64));
            let mut s = EpsilonGreedy::new(ARM_COSTS.len(), eps, rng.next_u64());
            let mut cum = 0.0;
            let mut curve = Vec::with_capacity(iterations);
            for _ in 0..iterations {
                let a = s.select();
                let v = noisy(&mut rng, ARM_COSTS[a]);
                s.report(a, v);
                // Pseudo-regret: expected (noiseless) excess over the best
                // arm, so curves are exactly non-decreasing.
                cum += ARM_COSTS[a] - best;
                curve.push(cum);
            }
            per_rep.push(curve);
        }
        series.push((
            format!("eps={:.0}%", eps * 100.0),
            stats::per_iteration_reduce(&per_rep, stats::mean),
        ));
    }
    SeriesFigure {
        id: "ablation_eps".into(),
        title: "Ablation: cumulative regret vs epsilon".into(),
        xlabel: "iteration".into(),
        ylabel: "cumulative regret [ms]".into(),
        series,
    }
}

/// Window-size sweep for the two windowed strategies on a *drifting*
/// workload: the fast arm flips halfway through. Small windows adapt
/// quickly; huge windows average over the regime change.
pub fn window_sweep(reps: usize, iterations: usize, seed: u64) -> SeriesFigure {
    let windows = [4usize, 8, 16, 32, 64];
    let flip = iterations / 2;
    // Arm costs before/after the flip.
    let cost = |arm: usize, i: usize| -> f64 {
        match (arm, i < flip) {
            (0, true) => 10.0,
            (0, false) => 60.0,
            (1, true) => 60.0,
            (1, false) => 10.0,
            _ => unreachable!(),
        }
    };
    let mut series = Vec::new();
    for &w in &windows {
        for auc in [false, true] {
            let mut per_rep: Vec<Vec<f64>> = Vec::with_capacity(reps);
            for rep in 0..reps {
                let mut rng = Rng::new(seed ^ (rep as u64 * 977 + w as u64));
                let mut s: Box<dyn NominalStrategy> = if auc {
                    Box::new(SlidingWindowAuc::new(2, w, rng.next_u64()))
                } else {
                    Box::new(GradientWeighted::new(2, w.max(2), rng.next_u64()))
                };
                let mut curve = Vec::with_capacity(iterations);
                for i in 0..iterations {
                    let a = s.select();
                    let v = noisy(&mut rng, cost(a, i));
                    s.report(a, v);
                    curve.push(v);
                }
                per_rep.push(curve);
            }
            series.push((
                format!("{}(w={w})", if auc { "auc" } else { "grad" }),
                stats::per_iteration_reduce(&per_rep, stats::median),
            ));
        }
    }
    SeriesFigure {
        id: "ablation_window".into(),
        title: "Ablation: window size under a mid-run regime flip".into(),
        xlabel: "iteration".into(),
        ylabel: "median time [ms]".into(),
        series,
    }
}

/// Two tunable synthetic algorithms (parabolic cost surfaces) as in the
/// two-phase tests: algorithm B is globally better once tuned.
fn synthetic_specs() -> Vec<AlgorithmSpec> {
    vec![
        AlgorithmSpec::new(
            "alg-a",
            SearchSpace::new(vec![Parameter::ratio("x", 0, 40)]),
        ),
        AlgorithmSpec::new(
            "alg-b",
            SearchSpace::new(vec![Parameter::ratio("y", 0, 40)]),
        ),
    ]
}

fn synthetic_cost(alg: usize, x: f64, rng: &mut Rng) -> f64 {
    let base = match alg {
        0 => 10.0 + 0.2 * (x - 20.0).powi(2),
        _ => 4.0 + 0.2 * (x - 5.0).powi(2),
    };
    noisy(rng, base)
}

/// Swap the phase-1 searcher inside the two-phase tuner and compare the
/// best tuned value reached over time.
pub fn phase1_swap(reps: usize, iterations: usize, seed: u64) -> SeriesFigure {
    let kinds = [
        ("nelder-mead", Phase1Kind::NelderMead),
        ("hill-climbing", Phase1Kind::HillClimbing),
        ("random", Phase1Kind::Random),
    ];
    let mut series = Vec::new();
    for (label, kind) in kinds {
        let mut per_rep: Vec<Vec<f64>> = Vec::with_capacity(reps);
        for rep in 0..reps {
            let mut rng = Rng::new(seed ^ (rep as u64 * 131));
            let mut tuner = TwoPhaseTuner::with_phase1(
                synthetic_specs(),
                NominalKind::EpsilonGreedy(0.10),
                kind,
                rng.next_u64(),
            );
            let mut curve = Vec::with_capacity(iterations);
            for _ in 0..iterations {
                tuner.step(|alg, c| synthetic_cost(alg, c.get(0).as_f64(), &mut rng));
                curve.push(tuner.best().expect("has samples").2);
            }
            per_rep.push(curve);
        }
        series.push((
            label.to_string(),
            stats::per_iteration_reduce(&per_rep, stats::median),
        ));
    }
    SeriesFigure {
        id: "ablation_phase1".into(),
        title: "Ablation: phase-1 searcher inside the two-phase tuner".into(),
        xlabel: "iteration".into(),
        ylabel: "best observed time [ms]".into(),
        series,
    }
}

/// The crossover scenario of Section IV-C: algorithm A is a constant
/// 10 ms; algorithm B starts at 30 ms but its tunable parameter can bring
/// it to 5 ms. A strategy must keep exploring B long enough for phase-1
/// tuning to reveal the crossover. Returns median per-iteration times; the
/// faster a curve drops below 10 ms, the better the strategy handles the
/// crossover.
pub fn crossover(reps: usize, iterations: usize, seed: u64) -> SeriesFigure {
    let specs = || {
        vec![
            AlgorithmSpec::untunable("fixed-fast"),
            AlgorithmSpec::new(
                "tunable-faster",
                SearchSpace::new(vec![Parameter::ratio("x", 0, 60)]),
            ),
        ]
    };
    let cost = |alg: usize, x: f64, rng: &mut Rng| -> f64 {
        match alg {
            0 => noisy(rng, 10.0),
            // Bottoms out at 5 ms at x = 50 — far from the start corner, so
            // reaching it needs sustained phase-1 progress.
            _ => noisy(rng, 5.0 + 0.01 * (x - 50.0).powi(2)),
        }
    };
    let mut series = Vec::new();
    // The paper's six strategies plus the future-work combined strategy,
    // which this scenario was designed to motivate.
    let mut kinds = NominalKind::paper_set();
    kinds.push(NominalKind::EpsilonGradient(0.10, 16));
    for kind in kinds {
        let mut per_rep: Vec<Vec<f64>> = Vec::with_capacity(reps);
        for rep in 0..reps {
            let mut rng = Rng::new(seed ^ (rep as u64 * 271));
            let mut tuner = TwoPhaseTuner::new(specs(), kind, rng.next_u64());
            let mut curve = Vec::with_capacity(iterations);
            for _ in 0..iterations {
                let s = tuner.step(|alg, c| {
                    let x = if c.is_empty() { 0.0 } else { c.get(0).as_f64() };
                    cost(alg, x, &mut rng)
                });
                curve.push(s.value);
            }
            per_rep.push(curve);
        }
        series.push((
            kind.label(),
            stats::per_iteration_reduce(&per_rep, stats::median),
        ));
    }
    SeriesFigure {
        id: "ablation_crossover".into(),
        title: "Ablation: crossover scenario (Section IV-C threat)".into(),
        xlabel: "iteration".into(),
        ylabel: "median time [ms]".into(),
        series,
    }
}

/// Deployment-mode comparison on the real string matching workload:
/// *static* (always the hand-crafted `Hybrid` heuristic), *offline*
/// (exhaustively try every algorithm once, then exploit the winner), and
/// *online* (ε-Greedy throughout). Plots cumulative search time — the
/// quantity an application actually pays. Offline's sweep cost is paid up
/// front; online amortizes exploration across the run; static never pays
/// tuning but is stuck with the heuristic's choice.
pub fn deployment_modes(
    corpus_bytes: usize,
    iterations: usize,
    reps: usize,
    seed: u64,
) -> SeriesFigure {
    use autotune::measure::time_ms;
    use stringmatch::{all_matchers, Hybrid, Matcher};

    let text = stringmatch::corpus::bible_like_with(seed, corpus_bytes, 20_000);
    let matchers = all_matchers();
    let query = stringmatch::PAPER_QUERY;

    type PickFn = Box<dyn FnMut(usize, &[f64]) -> usize>;
    let mut series: Vec<(String, Vec<f64>)> = Vec::new();
    let mut run_mode = |label: &str, mut pick: PickFn| {
        let mut per_rep: Vec<Vec<f64>> = Vec::with_capacity(reps);
        for _ in 0..reps {
            let mut best_seen = vec![f64::INFINITY; matchers.len()];
            let mut cum = 0.0;
            let mut curve = Vec::with_capacity(iterations);
            for i in 0..iterations {
                let alg = pick(i, &best_seen);
                let (_, ms) = time_ms(|| matchers[alg].find_all(query, &text));
                best_seen[alg] = best_seen[alg].min(ms);
                cum += ms;
                curve.push(cum);
            }
            per_rep.push(curve);
        }
        series.push((
            label.to_string(),
            autotune::stats::per_iteration_reduce(&per_rep, autotune::stats::median),
        ));
    };

    // Static: the Hybrid heuristic's dispatch, located in the registry.
    let hybrid_idx = matchers
        .iter()
        .position(|m| m.name() == Hybrid.name())
        .expect("Hybrid is registered");
    run_mode("static-hybrid", Box::new(move |_, _| hybrid_idx));

    // Offline: sweep each algorithm once, then exploit the best.
    let n_algs = matchers.len();
    run_mode(
        "offline-exhaustive",
        Box::new(move |i, best_seen| {
            if i < n_algs {
                i
            } else {
                best_seen
                    .iter()
                    .enumerate()
                    .min_by(|a, b| a.1.partial_cmp(b.1).expect("finite"))
                    .map(|(k, _)| k)
                    .expect("nonempty")
            }
        }),
    );

    // Online: ε-Greedy(10%) — selection comes from the strategy itself,
    // with a fresh strategy per repetition.
    {
        let mut per_rep: Vec<Vec<f64>> = Vec::with_capacity(reps);
        for rep in 0..reps {
            let mut greedy = EpsilonGreedy::new(n_algs, 0.10, seed ^ (rep as u64 * 401));
            let mut cum = 0.0;
            let mut curve = Vec::with_capacity(iterations);
            for _ in 0..iterations {
                let alg = greedy.select();
                let (_, ms) = time_ms(|| matchers[alg].find_all(query, &text));
                greedy.report(alg, ms);
                cum += ms;
                curve.push(cum);
            }
            per_rep.push(curve);
        }
        series.push((
            "online-e-greedy(10%)".to_string(),
            autotune::stats::per_iteration_reduce(&per_rep, autotune::stats::median),
        ));
    }

    SeriesFigure {
        id: "deployment_modes".into(),
        title: "Extension: cumulative search time by deployment mode".into(),
        xlabel: "iteration".into(),
        ylabel: "cumulative time [ms]".into(),
        series,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deployment_modes_produces_three_cumulative_curves() {
        let f = deployment_modes(32 << 10, 24, 2, 5);
        assert_eq!(f.series.len(), 3);
        for (name, curve) in &f.series {
            assert_eq!(curve.len(), 24, "{name}");
            for w in curve.windows(2) {
                assert!(w[1] >= w[0], "{name}: cumulative time decreased");
            }
        }
    }

    #[test]
    fn eps_sweep_small_eps_has_lowest_final_regret_among_sane_values() {
        let f = eps_sweep(6, 300, 11);
        assert_eq!(f.series.len(), 7);
        // Regret is cumulative, so curves are non-decreasing.
        for (name, curve) in &f.series {
            for w in curve.windows(2) {
                assert!(w[1] >= w[0] - 1e-9, "{name} regret must accumulate");
            }
        }
        // ε = 50% explores half the time: its final regret must exceed
        // ε = 5%'s.
        let final_of = |label: &str| {
            f.series
                .iter()
                .find(|(n, _)| n == label)
                .map(|(_, c)| *c.last().unwrap())
                .unwrap()
        };
        assert!(final_of("eps=50%") > final_of("eps=5%"));
    }

    #[test]
    fn window_sweep_produces_all_combinations() {
        let f = window_sweep(3, 120, 5);
        assert_eq!(f.series.len(), 10, "5 windows × 2 strategies");
    }

    #[test]
    fn small_auc_window_adapts_faster_than_huge() {
        let f = window_sweep(8, 200, 17);
        let tail_mean = |label: &str| {
            let c = &f.series.iter().find(|(n, _)| n == label).unwrap().1;
            stats::mean(&c[c.len() - 30..])
        };
        assert!(
            tail_mean("auc(w=4)") <= tail_mean("auc(w=64)") * 1.5,
            "small windows should not be much worse after the flip"
        );
    }

    #[test]
    fn phase1_nelder_mead_beats_random_in_convergence() {
        let f = phase1_swap(6, 150, 23);
        let best_final = |label: &str| {
            *f.series
                .iter()
                .find(|(n, _)| n == label)
                .unwrap()
                .1
                .last()
                .unwrap()
        };
        // All should approach the global optimum of ~4 ms; Nelder-Mead at
        // least as fast as random.
        assert!(best_final("nelder-mead") <= best_final("random") * 1.2);
        assert!(best_final("nelder-mead") < 7.0);
    }

    #[test]
    fn crossover_strategies_eventually_beat_the_fixed_arm() {
        let f = crossover(6, 400, 29);
        for (name, curve) in &f.series {
            let tail = stats::median(&curve[curve.len() - 50..]);
            assert!(
                tail < 11.5,
                "{name} should at least match the fixed arm, got {tail}"
            );
        }
    }
}
