//! # experiments — the paper's evaluation, regenerated
//!
//! One module per case study plus the tables:
//!
//! | Paper artifact | Regenerator |
//! |---|---|
//! | Table I (parameter classes) | [`tables::table1`] |
//! | Table II (benchmark system) | [`tables::table2`] |
//! | Figure 1 (untuned string matchers) | [`cs1::fig1`] |
//! | Figure 2 (median convergence, strings) | [`cs1::fig2`] |
//! | Figure 3 (mean convergence, strings) | [`cs1::fig3`] |
//! | Figure 4 (choice histogram, strings) | [`cs1::fig4`] |
//! | Figure 5 (per-builder tuning timeline) | [`cs2::fig5`] |
//! | Figure 6 (median convergence, raytracing) | [`cs2::fig6`] |
//! | Figure 7 (mean convergence, raytracing) | [`cs2::fig7`] |
//! | Figure 8 (choice histogram, raytracing) | [`cs2::fig8`] |
//!
//! Beyond the paper's artifacts, the `faults` target ([`faults`]) re-runs
//! both case studies with 10% injected measurement failures and compares
//! clean vs. faulty convergence — the robustness claim the measurement
//! pipeline in [`autotune::robust`] makes. The `constraints` target
//! ([`constraints`]) runs both case studies over budget-constrained
//! spaces and compares repair against reject-and-retry, recording the
//! per-algorithm feasibility of each algorithm set on the current host. The `record` target ([`record`])
//! replays both case studies with the [`autotune::telemetry`] recorder on
//! and writes per-run JSONL traces plus Perfetto-loadable Chrome traces;
//! `report` rebuilds per-strategy convergence tables from those files
//! alone. The `sites` target ([`sites`]) drives the concurrent multi-site
//! runtime ([`autotune::site`]) at production shape — hundreds of sites,
//! multiple request threads — and reports aggregate throughput plus
//! per-site convergence. The `smallsort` target ([`sortstudy`]) drives
//! the third workload — small-array sorting with input size as a
//! context dimension — and rebuilds per-size-class convergence tables
//! (winner, iterations-to-within-5%) from the exported JSONL trace. The
//! `contexts` target ([`contexts`]) exercises the generalized context
//! layer ([`autotune::context`]): per-(size × presortedness) winner
//! flips, warm-vs-cold admission convergence, and LRU churn accounting,
//! all rebuilt from the trace's `context` field. The
//! `serve` target ([`serve`]) stands the case
//! studies up as an always-on TCP tuning service ([`autotune::serve`])
//! with per-site drift detection, and the `load` target ([`load`]) is its
//! pipelined loopback load generator with morph schedules and live
//! telemetry-stream validation.
//!
//! The `experiments` binary drives these and writes CSV/JSON into
//! `results/` plus ASCII plots to stdout. Scale knobs default to a *quick*
//! profile; `--paper` selects the paper's full scale.

pub mod ablations;
pub mod constraints;
pub mod contexts;
pub mod cs1;
pub mod cs2;
pub mod faults;
pub mod load;
pub mod record;
pub mod report;
pub mod serve;
pub mod sites;
pub mod sortstudy;
pub mod tables;

/// Tests that drain the process-global telemetry ring live must not run
/// concurrently with each other — across modules, not just within one.
/// Every such test takes this crate-wide lock first.
#[cfg(test)]
pub(crate) fn ring_lock() -> std::sync::MutexGuard<'static, ()> {
    static RING: std::sync::Mutex<()> = std::sync::Mutex::new(());
    RING.lock().unwrap_or_else(|e| e.into_inner())
}
