//! The `smallsort` study: input size as a first-class context dimension.
//!
//! A single sort site would learn one compromise algorithm for every
//! request size. The [`smallsort`] workload instead buckets requests
//! into power-of-two size classes, binds each class to its own tuning
//! site ([`smallsort::SortSites`]), and lets the tuner learn a
//! *per-size-class* winner — insertion sort for the near-register
//! classes, a cache-friendly recursive sort in the middle, LSD radix
//! once the array amortizes its counting passes.
//!
//! The study drives an interleaved request stream across the classes
//! with telemetry recording on, then rebuilds everything reported here
//! **from the exported JSONL trace** (serialize → parse → aggregate, so
//! the numbers exercise the wire schema, not private state): one
//! convergence table per class — measured tuning iterations, per-
//! algorithm selection counts, the converged winner, the final runtime
//! regime, and the iterations until a rolling median first lands within
//! 5% of it. Artifacts: `results/smallsort.json` plus the raw trace in
//! `results/smallsort_trace.jsonl`.
//!
//! Because every request in the lower classes finishes far under the
//! timer tick, the tuning path's measurements come from
//! [`autotune::robust::batched_time_ms`]; the `measured_floor_ms` field
//! records the host's measured tick so consumers can judge how many
//! quanta the reported medians actually span.

use autotune::json::Json;
use autotune::rng::Rng;
use autotune::stats;
use autotune::telemetry::{self, export, Event, EventKind, MeasureStatus};
use autotune::two_phase::NominalKind;
use smallsort::{SortSites, ALGORITHM_NAMES};

/// Scale knobs. Defaults are the *quick* profile.
#[derive(Debug, Clone)]
pub struct SortStudyConfig {
    /// Size classes to drive (log2 of the class cap); defaults to the
    /// whole [`smallsort`] class range.
    pub classes: Vec<u32>,
    /// Sort requests per class (interleaved round-robin across classes,
    /// like a real mixed request stream).
    pub requests_per_class: usize,
    /// Seed for request sizes, keys, and the per-class tuners.
    pub seed: u64,
}

impl Default for SortStudyConfig {
    fn default() -> Self {
        SortStudyConfig {
            classes: SortSites::classes().collect(),
            requests_per_class: 300,
            seed: 20170609,
        }
    }
}

impl SortStudyConfig {
    /// The full-scale profile: a longer stream per class.
    pub fn paper() -> Self {
        SortStudyConfig {
            requests_per_class: 2000,
            ..Default::default()
        }
    }
}

/// Rolling-median window for the convergence scan.
pub const CONV_WINDOW: usize = 15;
/// "Within 5% of the converged regime" — the convergence criterion.
pub const CONV_TOLERANCE: f64 = 0.05;

/// One size class's convergence table, rebuilt from the JSONL trace.
#[derive(Debug, Clone)]
pub struct ClassTable {
    /// The class (log2 of its size cap): requests of `2^(class-1)+1 ..=
    /// 2^class` elements land here.
    pub class: u32,
    /// The class site's telemetry tag — the `site` field its trace lines
    /// carry in `smallsort_trace.jsonl`.
    pub tag: u16,
    /// Sort requests dispatched to this class.
    pub requests: u64,
    /// Measured tuning iterations (successful `MeasureOutcome` events).
    pub measured: u64,
    /// Per-algorithm measurement counts, indexed like
    /// [`smallsort::ALGORITHM_NAMES`].
    pub selections: Vec<u64>,
    /// The converged winner: the algorithm the trace's last
    /// [`CONV_WINDOW`] measurements select most often.
    pub winner: usize,
    /// Median measured runtime of the converged tail, in milliseconds.
    pub final_median_ms: f64,
    /// Measured iterations until a rolling median first lands within
    /// [`CONV_TOLERANCE`] of `final_median_ms` (`None`: never settled).
    pub converged_after: Option<usize>,
}

/// Results of the full study.
#[derive(Debug, Clone)]
pub struct SortStudy {
    pub config: SortStudyConfig,
    /// One table per driven class, in class order.
    pub tables: Vec<ClassTable>,
    /// The host's measured timer tick ([`autotune::robust::timer_resolution_ms`]).
    pub measured_floor_ms: f64,
    /// The full telemetry trace, already serialized to JSONL.
    pub trace_jsonl: String,
}

impl SortStudy {
    /// Number of distinct winners across the per-class tables — the
    /// study's headline: `> 1` means one global choice would lose to the
    /// context-split sites somewhere.
    pub fn distinct_winners(&self) -> usize {
        let mut seen = [false; ALGORITHM_NAMES.len()];
        for t in &self.tables {
            seen[t.winner] = true;
        }
        seen.iter().filter(|&&s| s).count()
    }
}

/// Drive the interleaved request stream and leave the trace in the
/// telemetry ring. Returns the sites and per-class request counts.
fn drive(cfg: &SortStudyConfig, sites: &SortSites) -> Vec<(u32, u64)> {
    let mut rng = Rng::new(cfg.seed ^ 0x50B7);
    let mut counts: Vec<(u32, u64)> = cfg.classes.iter().map(|&c| (c, 0)).collect();
    for _round in 0..cfg.requests_per_class {
        for (slot, &class) in cfg.classes.iter().enumerate() {
            // A size drawn uniformly from the class's range, so the site
            // tunes over the class, not one fixed length.
            let hi = 1usize << class;
            let lo = (hi / 2) + 1;
            let n = lo + rng.next_below((hi - lo + 1) as u64) as usize;
            let mut data: Vec<u64> = (0..n).map(|_| rng.next_u64()).collect();
            let (got, _ms) = smallsort::sort_request(sites, &mut data);
            debug_assert_eq!(got, class);
            counts[slot].1 += 1;
        }
    }
    counts
}

/// Measured runtimes and algorithm picks of one class, in trace order.
fn class_measurements(events: &[Event], tag: u16) -> Vec<(usize, f64)> {
    events
        .iter()
        .filter(|e| e.site == tag)
        .filter_map(|e| match e.kind {
            EventKind::MeasureOutcome {
                algorithm,
                status: MeasureStatus::Ok,
                runtime_ms,
            } => Some((algorithm as usize, runtime_ms)),
            _ => None,
        })
        .collect()
}

/// Build one class's table from its trace measurements.
fn table_for(class: u32, tag: u16, requests: u64, measurements: &[(usize, f64)]) -> ClassTable {
    let mut selections = vec![0u64; ALGORITHM_NAMES.len()];
    for &(a, _) in measurements {
        selections[a] += 1;
    }
    let tail_len = measurements.len().min(CONV_WINDOW);
    let tail = &measurements[measurements.len() - tail_len..];
    // The winner is what the converged tail actually runs, not the raw
    // majority (early exploration measures every algorithm).
    let winner = (0..ALGORITHM_NAMES.len())
        .max_by_key(|&a| tail.iter().filter(|&&(sel, _)| sel == a).count())
        .unwrap_or(0);
    let runtimes: Vec<f64> = measurements.iter().map(|&(_, ms)| ms).collect();
    let final_median_ms = if tail.is_empty() {
        f64::NAN
    } else {
        stats::median(&runtimes[runtimes.len() - tail_len..])
    };
    let converged_after = (runtimes.len() >= 2 * CONV_WINDOW).then(|| {
        (CONV_WINDOW..=runtimes.len()).find(|&i| {
            let m = stats::median(&runtimes[i - CONV_WINDOW..i]);
            (m - final_median_ms).abs() <= final_median_ms * CONV_TOLERANCE
        })
    });
    ClassTable {
        class,
        tag,
        requests,
        measured: measurements.len() as u64,
        selections,
        winner,
        final_median_ms,
        converged_after: converged_after.flatten(),
    }
}

/// Run the full study: drive the stream, export the trace, and rebuild
/// the per-class tables from the serialized JSONL (round-tripping
/// through [`export::parse_jsonl`] so the tables certify the schema).
pub fn run_study(cfg: &SortStudyConfig) -> SortStudy {
    telemetry::enable();
    telemetry::drain(); // start from a clean ring
    let sites = SortSites::register(
        &format!("study/smallsort/{}", cfg.seed),
        NominalKind::EpsilonGreedy(0.10),
        cfg.seed,
    );
    let counts = drive(cfg, &sites);
    let trace_jsonl = export::to_jsonl(&telemetry::drain());
    let events = export::parse_jsonl(&trace_jsonl).expect("own trace must round-trip");
    let tables = counts
        .iter()
        .map(|&(class, requests)| {
            let tag = sites.class_site(class).id().tag();
            table_for(class, tag, requests, &class_measurements(&events, tag))
        })
        .collect();
    SortStudy {
        config: cfg.clone(),
        tables,
        measured_floor_ms: autotune::robust::timer_resolution_ms(),
        trace_jsonl,
    }
}

/// Human-readable per-class convergence table.
pub fn summary(study: &SortStudy) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "smallsort study: {} classes x {} requests, timer tick {:.0}ns\n",
        study.tables.len(),
        study.config.requests_per_class,
        study.measured_floor_ms * 1e6,
    ));
    out.push_str("class  n-range        requests  measured  winner     conv@   median[us]\n");
    for t in &study.tables {
        let hi = 1u64 << t.class;
        let conv = t.converged_after.map_or("-".into(), |i| i.to_string());
        out.push_str(&format!(
            "{:>5}  {:>6}-{:<6}  {:>8}  {:>8}  {:<9}  {:>5}  {:>11.2}\n",
            t.class,
            hi / 2 + 1,
            hi,
            t.requests,
            t.measured,
            ALGORITHM_NAMES[t.winner],
            conv,
            t.final_median_ms * 1e3,
        ));
    }
    out.push_str(&format!(
        "distinct per-class winners: {}\n",
        study.distinct_winners()
    ));
    out
}

/// Write `smallsort.json` and `smallsort_trace.jsonl` into `out`.
pub fn save(study: &SortStudy, out: &std::path::Path) -> std::io::Result<()> {
    let tables: Vec<Json> = study
        .tables
        .iter()
        .map(|t| {
            Json::obj(vec![
                ("class", Json::Num(t.class as f64)),
                ("tag", Json::Num(t.tag as f64)),
                ("n_max", Json::Num((1u64 << t.class) as f64)),
                ("requests", Json::Num(t.requests as f64)),
                ("measured", Json::Num(t.measured as f64)),
                (
                    "selections",
                    Json::Arr(t.selections.iter().map(|&c| Json::Num(c as f64)).collect()),
                ),
                ("winner", Json::Str(ALGORITHM_NAMES[t.winner].into())),
                ("final_median_ms", Json::Num(t.final_median_ms)),
                (
                    "converged_after",
                    t.converged_after
                        .map_or(Json::Null, |i| Json::Num(i as f64)),
                ),
            ])
        })
        .collect();
    let doc = Json::obj(vec![
        ("id", Json::Str("smallsort".into())),
        (
            "requests_per_class",
            Json::Num(study.config.requests_per_class as f64),
        ),
        ("seed", Json::Num(study.config.seed as f64)),
        ("measured_floor_ms", Json::Num(study.measured_floor_ms)),
        (
            "algorithms",
            Json::Arr(
                ALGORITHM_NAMES
                    .iter()
                    .map(|&n| Json::Str(n.into()))
                    .collect(),
            ),
        ),
        ("classes", Json::Arr(tables)),
        (
            "distinct_winners",
            Json::Num(study.distinct_winners() as f64),
        ),
    ]);
    std::fs::write(out.join("smallsort.json"), doc.to_string_pretty() + "\n")?;
    std::fs::write(out.join("smallsort_trace.jsonl"), &study.trace_jsonl)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> SortStudyConfig {
        SortStudyConfig {
            classes: vec![4, 10],
            requests_per_class: 60,
            seed: 77001,
        }
    }

    #[test]
    fn study_tables_come_from_the_trace() {
        let _g = crate::ring_lock();
        let study = run_study(&tiny());
        assert_eq!(study.tables.len(), 2);
        for t in &study.tables {
            assert_eq!(t.requests, 60);
            assert!(t.measured > 0, "class {} never measured", t.class);
            assert!(
                t.measured <= t.requests,
                "class {}: more measurements than requests",
                t.class
            );
            assert_eq!(t.selections.iter().sum::<u64>(), t.measured);
            assert!(t.final_median_ms.is_finite() && t.final_median_ms > 0.0);
        }
        assert!(study.measured_floor_ms > 0.0);
        // The trace itself must hold the events the tables were built from.
        let events = export::parse_jsonl(&study.trace_jsonl).unwrap();
        assert!(!events.is_empty());
    }

    #[test]
    fn interleaved_classes_stay_isolated() {
        let _g = crate::ring_lock();
        // Each class's table counts exactly its own site's events: the
        // tags are distinct, and recounting the trace per tag reproduces
        // each table's `measured` (other tests' concurrent events carry
        // foreign tags and must not leak in).
        let study = run_study(&SortStudyConfig {
            seed: 77003,
            ..tiny()
        });
        assert_ne!(study.tables[0].tag, study.tables[1].tag);
        let events = export::parse_jsonl(&study.trace_jsonl).unwrap();
        for t in &study.tables {
            let ok_for_tag = events
                .iter()
                .filter(|e| e.site == t.tag)
                .filter(|e| {
                    matches!(
                        e.kind,
                        EventKind::MeasureOutcome {
                            status: MeasureStatus::Ok,
                            ..
                        }
                    )
                })
                .count() as u64;
            assert_eq!(
                t.measured, ok_for_tag,
                "class {}: table and trace must agree",
                t.class
            );
        }
    }

    #[test]
    fn save_writes_table_and_trace() {
        let _g = crate::ring_lock();
        let dir = std::env::temp_dir().join("smallsort_study_test");
        std::fs::create_dir_all(&dir).unwrap();
        let study = run_study(&SortStudyConfig {
            seed: 77005,
            requests_per_class: 40,
            ..tiny()
        });
        save(&study, &dir).unwrap();
        let doc =
            Json::parse(&std::fs::read_to_string(dir.join("smallsort.json")).unwrap()).unwrap();
        assert_eq!(doc.get("classes").and_then(Json::as_arr).unwrap().len(), 2);
        let trace = std::fs::read_to_string(dir.join("smallsort_trace.jsonl")).unwrap();
        assert!(export::parse_jsonl(&trace).is_ok());
        let _ = std::fs::remove_dir_all(&dir);
    }
}
