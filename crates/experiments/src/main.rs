//! Command-line driver regenerating the paper's tables and figures, plus
//! the always-on serving mode. Run `experiments help` for the full usage
//! text ([`USAGE`]).

use experiments::{
    ablations, constraints, contexts, cs1, cs2, faults, load, record, report, serve, sites,
    sortstudy, tables,
};
use std::path::{Path, PathBuf};

/// The usage text (`experiments help`, `--help`, or any unknown target).
const USAGE: &str = "\
experiments <target> [flags]

batch targets (write into --results-dir, default `results/`):
  table1      Table I: parameter classes and their legal operations
  table2      Table II: the benchmark system description
  fig1        Figure 1: untuned string-matcher runtimes (box plot)
  fig2        Figure 2: median convergence, string matching
  fig3        Figure 3: mean convergence, string matching
  fig4        Figure 4: algorithm-choice histogram, string matching
  fig5        Figure 5: per-builder Nelder-Mead tuning timelines
  fig6        Figure 6: median convergence, raytracing
  fig7        Figure 7: mean convergence, raytracing
  fig8        Figure 8: builder-choice histogram, raytracing
  cs1         figures 1-4 in one run (case study 1: string matching)
  cs2         figures 5-8 in one run (case study 2: raytracing)
  kernels     scalar vs SWAR/SIMD matcher kernels under tuning
  patterns    pattern-length study across the matcher set
  scenes      kd-builder comparison across scene types
  dynamic     scene-size jump study (tuning under workload change)
  ablations   eps/window/phase-1/crossover/deployment sweeps
  faults      both case studies under injected measurement faults
  constraints repair vs reject-and-retry on budget-constrained spaces,
              plus the per-algorithm feasibility report for this host
  sites       concurrent multi-site runtime at production shape
  smallsort   size-classed small-array sorting: per-class winners and
              convergence tables rebuilt from the JSONL telemetry trace
  contexts    generalized context dimensions: per-(size x presortedness)
              winner flips, warm-vs-cold admissions, LRU churn accounting
  record      replay both case studies with telemetry traces on
  report      rebuild convergence tables from recorded traces
  all         every batch target above, quick profile

serving targets:
  serve       stand both case studies up as an always-on TCP tuning
              service with drift detection (blocks until OP_QUIT)
  load        loopback load generator for `serve` (pipelined batches,
              optional drift schedule and telemetry-stream validation)

general flags:
  --paper            paper-scale runs (100 reps; hours) instead of quick
  --reps N           override repetition count
  --iters N          override tuning iterations / frames
  --corpus-kb N      corpus size for case study 1 and `serve` (KiB)
  --detail N         cathedral detail for case study 2 and `serve`
  --fault-rate R     injected-fault probability for `faults` (default 0.1)
  --seed N           workload/tuner seed for `serve` (default 42)
  --results-dir DIR  output directory (default: results); --out is an alias

serve/load flags:
  --addr HOST:PORT   listen/connect address (default 127.0.0.1:7070)
  --requests N       total load-generator requests (default 100000)
  --threads N        load-generator worker connections (default 2)
  --batch N          frames pipelined per write (default 64)
  --render-every N   every Nth load request is a render (default 0 = off)
  --drift            load: inject the morph schedule at 50%/55% of the run
  --subscribe        load: attach a telemetry subscriber and validate JSONL
  --quit             load: send OP_QUIT when done (graceful server shutdown)
";

/// Exit with a readable diagnostic instead of a panic backtrace when the
/// output directory is unwritable (read-only checkout, bad `--out`, …).
fn check_io<T>(what: &str, out: &Path, res: std::io::Result<T>) -> T {
    res.unwrap_or_else(|e| {
        eprintln!("error: cannot write {what} into {}: {e}", out.display());
        eprintln!("hint: point --out at a writable directory");
        std::process::exit(1);
    })
}

struct Args {
    target: String,
    paper: bool,
    reps: Option<usize>,
    iters: Option<usize>,
    corpus_kb: Option<usize>,
    detail: Option<u32>,
    fault_rate: Option<f64>,
    seed: Option<u64>,
    out: PathBuf,
    addr: Option<String>,
    requests: Option<u64>,
    threads: Option<usize>,
    batch: Option<usize>,
    render_every: Option<u64>,
    drift: bool,
    subscribe: bool,
    quit: bool,
}

fn parse_args() -> Args {
    let mut args = Args {
        target: "all".into(),
        paper: false,
        reps: None,
        iters: None,
        corpus_kb: None,
        detail: None,
        fault_rate: None,
        seed: None,
        out: PathBuf::from("results"),
        addr: None,
        requests: None,
        threads: None,
        batch: None,
        render_every: None,
        drift: false,
        subscribe: false,
        quit: false,
    };
    let mut it = std::env::args().skip(1);
    let mut target_set = false;
    while let Some(a) = it.next() {
        let mut grab = |name: &str| it.next().unwrap_or_else(|| panic!("{name} needs a value"));
        match a.as_str() {
            "--help" | "-h" => {
                print!("{USAGE}");
                std::process::exit(0);
            }
            "--paper" => args.paper = true,
            "--reps" => args.reps = Some(grab("--reps").parse().expect("--reps N")),
            "--iters" => args.iters = Some(grab("--iters").parse().expect("--iters N")),
            "--corpus-kb" => {
                args.corpus_kb = Some(grab("--corpus-kb").parse().expect("--corpus-kb N"))
            }
            "--detail" => args.detail = Some(grab("--detail").parse().expect("--detail N")),
            "--fault-rate" => {
                args.fault_rate = Some(grab("--fault-rate").parse().expect("--fault-rate R"))
            }
            "--seed" => args.seed = Some(grab("--seed").parse().expect("--seed N")),
            "--out" | "--results-dir" => args.out = PathBuf::from(grab("--results-dir")),
            "--addr" => args.addr = Some(grab("--addr")),
            "--requests" => args.requests = Some(grab("--requests").parse().expect("--requests N")),
            "--threads" => args.threads = Some(grab("--threads").parse().expect("--threads N")),
            "--batch" => args.batch = Some(grab("--batch").parse().expect("--batch N")),
            "--render-every" => {
                args.render_every = Some(grab("--render-every").parse().expect("--render-every N"))
            }
            "--drift" => args.drift = true,
            "--subscribe" => args.subscribe = true,
            "--quit" => args.quit = true,
            t if !target_set && !t.starts_with("--") => {
                args.target = t.to_string();
                target_set = true;
            }
            other => {
                eprintln!("unknown argument: {other}\n\n{USAGE}");
                std::process::exit(2);
            }
        }
    }
    args
}

fn cs1_config(args: &Args) -> cs1::Cs1Config {
    let mut cfg = if args.paper {
        cs1::Cs1Config::paper()
    } else {
        cs1::Cs1Config::default()
    };
    if let Some(r) = args.reps {
        cfg.reps = r;
    }
    if let Some(i) = args.iters {
        cfg.iterations = i;
    }
    if let Some(kb) = args.corpus_kb {
        cfg.corpus_bytes = kb << 10;
    }
    cfg
}

fn cs2_config(args: &Args) -> cs2::Cs2Config {
    let mut cfg = if args.paper {
        cs2::Cs2Config::paper()
    } else {
        cs2::Cs2Config::default()
    };
    if let Some(r) = args.reps {
        cfg.reps = r;
    }
    if let Some(i) = args.iters {
        cfg.frames = i;
    }
    if let Some(d) = args.detail {
        cfg.detail = d;
    }
    cfg
}

fn emit_series(f: &report::SeriesFigure, out: &Path) {
    check_io(&format!("figure {}", f.id), out, f.save(out));
    println!("{}", f.ascii());
    println!("→ {}/{}.csv\n", out.display(), f.id);
}

fn emit_box(f: &report::BoxFigure, out: &Path) {
    check_io(&format!("figure {}", f.id), out, f.save(out));
    println!("{}", f.ascii());
    println!("→ {}/{}.csv\n", out.display(), f.id);
}

fn emit_grouped(f: &report::GroupedBoxFigure, out: &Path) {
    check_io(&format!("figure {}", f.id), out, f.save(out));
    println!("{}", f.ascii());
    println!("→ {}/{}.csv\n", out.display(), f.id);
}

fn main() {
    let args = parse_args();
    let t = args.target.as_str();
    if t == "help" {
        print!("{USAGE}");
        return;
    }
    let run_cs1_figs = matches!(t, "fig2" | "fig3" | "fig4" | "cs1" | "all");
    let run_cs2_figs = matches!(t, "fig6" | "fig7" | "fig8" | "cs2" | "all");

    // Fail fast and readably if the output directory cannot be created
    // (`report` only reads, and tables are stdout-only).
    if !matches!(t, "report" | "table1" | "table2") {
        check_io("outputs", &args.out, std::fs::create_dir_all(&args.out));
    }

    if matches!(t, "table1" | "all") {
        println!("{}", tables::table1());
    }
    if matches!(t, "table2" | "all") {
        println!("{}", tables::table2());
    }
    if matches!(t, "fig1" | "cs1" | "all") {
        let cfg = cs1_config(&args);
        eprintln!("[fig1] untuned string matching: {} reps…", cfg.reps);
        emit_box(&cs1::fig1(&cfg), &args.out);
    }
    if run_cs1_figs {
        let cfg = cs1_config(&args);
        eprintln!(
            "[fig2-4] string-matching tuning: 6 strategies × {} reps × {} iters…",
            cfg.reps, cfg.iterations
        );
        let runs = cs1::run_tuning(&cfg);
        if matches!(t, "fig2" | "cs1" | "all") {
            emit_series(&cs1::fig2(&runs), &args.out);
        }
        if matches!(t, "fig3" | "cs1" | "all") {
            emit_series(&cs1::fig3(&runs), &args.out);
        }
        if matches!(t, "fig4" | "cs1" | "all") {
            emit_grouped(&cs1::fig4(&runs), &args.out);
        }
    }
    if matches!(t, "fig5" | "cs2" | "all") {
        let cfg = cs2_config(&args);
        eprintln!(
            "[fig5] per-builder Nelder-Mead timelines: 4 builders × {} reps × {} frames…",
            cfg.reps, cfg.frames
        );
        emit_series(&cs2::fig5(&cfg), &args.out);
    }
    if run_cs2_figs {
        let cfg = cs2_config(&args);
        eprintln!(
            "[fig6-8] raytracing tuning: 6 strategies × {} reps × {} frames…",
            cfg.reps, cfg.frames
        );
        let runs = cs2::run_tuning(&cfg);
        if matches!(t, "fig6" | "cs2" | "all") {
            emit_series(&cs2::fig6(&runs), &args.out);
        }
        if matches!(t, "fig7" | "cs2" | "all") {
            emit_series(&cs2::fig7(&runs), &args.out);
        }
        if matches!(t, "fig8" | "cs2" | "all") {
            emit_grouped(&cs2::fig8(&runs), &args.out);
        }
    }
    if matches!(t, "kernels" | "all") {
        let cfg = cs1_config(&args);
        eprintln!(
            "[kernels] scalar vs SWAR/SIMD matcher tuning: 6 strategies × {} reps × {} iters…",
            cfg.reps, cfg.iterations
        );
        let runs = cs1::run_tuning_with_kernels(&cfg);
        emit_series(&cs1::kernels_timeline(&runs), &args.out);
        emit_grouped(&cs1::kernels_selection(&runs), &args.out);
    }
    if matches!(t, "patterns" | "all") {
        let cfg = cs1_config(&args);
        eprintln!(
            "[patterns] pattern-length study: 8 algorithms × 7 lengths × {} reps…",
            cfg.reps
        );
        emit_grouped(&cs1::pattern_length_study(&cfg), &args.out);
    }
    if matches!(t, "scenes" | "all") {
        let cfg = cs2_config(&args);
        eprintln!(
            "[scenes] builder × scene-type comparison: {} reps…",
            cfg.reps
        );
        emit_grouped(&cs2::scene_comparison(&cfg), &args.out);
    }
    if matches!(t, "dynamic" | "all") {
        let cfg = cs2_config(&args);
        eprintln!(
            "[dynamic] scene-size jump study: 2 strategies × {} reps × {} frames…",
            cfg.reps, cfg.frames
        );
        emit_series(&cs2::dynamic_scene_study(&cfg), &args.out);
    }
    if matches!(t, "faults" | "all") {
        let rate = args.fault_rate.unwrap_or(faults::DEFAULT_FAULT_RATE);
        // Injected panics are an expected part of this study; keep stderr
        // readable by muting their (many) default panic-hook reports.
        let default_hook = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            let injected = info
                .payload()
                .downcast_ref::<&str>()
                .is_some_and(|m| m.contains("injected measurement fault"));
            if !injected {
                default_hook(info);
            }
        }));
        let c1 = cs1_config(&args);
        eprintln!(
            "[faults] string matching under {:.0}% faults: 6 strategies × 2 × {} reps × {} iters…",
            rate * 100.0,
            c1.reps,
            c1.iterations
        );
        let s1 = faults::cs1_faults(&c1, rate);
        emit_series(&faults::figure(&s1), &args.out);
        let c2 = cs2_config(&args);
        eprintln!(
            "[faults] raytracing under {:.0}% faults: 6 strategies × 2 × {} reps × {} frames…",
            rate * 100.0,
            c2.reps,
            c2.frames
        );
        let s2 = faults::cs2_faults(&c2, rate);
        emit_series(&faults::figure(&s2), &args.out);
        let studies = [s1, s2];
        for s in &studies {
            println!("{}", faults::summary(s));
        }
        check_io(
            "faults.json",
            &args.out,
            faults::save_json(&studies, &args.out),
        );
        println!("→ {}/faults.json\n", args.out.display());
        let _ = std::panic::take_hook();
    }
    if matches!(t, "constraints" | "all") {
        let c1 = cs1_config(&args);
        eprintln!(
            "[constraints] string matching repair vs reject: 6 strategies × 2 × {} reps × {} iters…",
            c1.reps, c1.iterations
        );
        let s1 = constraints::cs1_constraints(&c1);
        emit_series(&constraints::figure(&s1), &args.out);
        let c2 = cs2_config(&args);
        eprintln!(
            "[constraints] raytracing repair vs reject: 6 strategies × 2 × {} reps × {} frames…",
            c2.reps, c2.frames
        );
        let s2 = constraints::cs2_constraints(&c2);
        emit_series(&constraints::figure(&s2), &args.out);
        let studies = [s1, s2];
        for s in &studies {
            println!("{}", constraints::summary(s));
        }
        check_io(
            "constraints.json",
            &args.out,
            constraints::save_json(&studies, &args.out),
        );
        println!("→ {}/constraints.json\n", args.out.display());
    }
    if matches!(t, "ablations" | "all") {
        let reps = args.reps.unwrap_or(10);
        let iters = args.iters.unwrap_or(300);
        eprintln!(
            "[ablations] eps/window/phase1/crossover/deployment: {reps} reps × {iters} iters…"
        );
        emit_series(&ablations::eps_sweep(reps, iters, 1), &args.out);
        emit_series(&ablations::window_sweep(reps, iters, 2), &args.out);
        emit_series(&ablations::phase1_swap(reps, iters, 3), &args.out);
        emit_series(&ablations::crossover(reps, iters, 4), &args.out);
        let cfg = cs1_config(&args);
        emit_series(
            &ablations::deployment_modes(cfg.corpus_bytes, cfg.iterations, cfg.reps, 5),
            &args.out,
        );
    }
    if matches!(t, "sites" | "all") {
        let mut cfg = if args.paper {
            sites::SitesConfig::paper()
        } else {
            sites::SitesConfig::default()
        };
        if let Some(i) = args.iters {
            cfg.calls_per_site = i;
        }
        eprintln!(
            "[sites] multi-site runtime: {} sites × {:?} threads × {} calls/site…",
            cfg.num_sites, cfg.threads, cfg.calls_per_site
        );
        let study = sites::run_study(&cfg);
        println!("{}", sites::summary(&study));
        check_io("sites.json", &args.out, sites::save_json(&study, &args.out));
        println!("→ {}/sites.json\n", args.out.display());
    }
    if matches!(t, "smallsort" | "all") {
        let mut cfg = if args.paper {
            sortstudy::SortStudyConfig::paper()
        } else {
            sortstudy::SortStudyConfig::default()
        };
        if let Some(i) = args.iters {
            cfg.requests_per_class = i;
        }
        if let Some(s) = args.seed {
            cfg.seed = s;
        }
        eprintln!(
            "[smallsort] size-classed sorting: {} classes × {} requests/class…",
            cfg.classes.len(),
            cfg.requests_per_class
        );
        let study = sortstudy::run_study(&cfg);
        println!("{}", sortstudy::summary(&study));
        check_io(
            "smallsort.json",
            &args.out,
            sortstudy::save(&study, &args.out),
        );
        println!(
            "→ {}/smallsort.json, {}/smallsort_trace.jsonl\n",
            args.out.display(),
            args.out.display()
        );
    }
    if matches!(t, "contexts" | "all") {
        let mut cfg = if args.paper {
            contexts::ContextsConfig::paper()
        } else {
            contexts::ContextsConfig::default()
        };
        if let Some(i) = args.iters {
            cfg.requests_per_key = i;
        }
        if let Some(s) = args.seed {
            cfg.seed = s;
        }
        eprintln!(
            "[contexts] context dimensions: {} classes × {} requests/key, churn {}→{} slots…",
            cfg.classes.len(),
            cfg.requests_per_key,
            cfg.classes.len() * 2,
            cfg.churn_capacity
        );
        let study = contexts::run_study(&cfg);
        println!("{}", contexts::summary(&study));
        check_io(
            "contexts.json",
            &args.out,
            contexts::save(&study, &args.out),
        );
        println!(
            "→ {}/contexts.json, {}/contexts_trace.jsonl\n",
            args.out.display(),
            args.out.display()
        );
    }
    if matches!(t, "record" | "all") {
        if !autotune::telemetry::compiled() {
            eprintln!("error: `record` needs the `telemetry` cargo feature (it is on by default)");
            std::process::exit(1);
        }
        let c1 = cs1_config(&args);
        eprintln!(
            "[record] telemetry traces, string matching: 6 strategies × {} iters…",
            c1.iterations
        );
        let mut files = check_io("cs1 traces", &args.out, record::record_cs1(&c1, &args.out));
        let c2 = cs2_config(&args);
        eprintln!(
            "[record] telemetry traces, raytracing: 6 strategies × {} frames…",
            c2.frames
        );
        files.extend(check_io(
            "cs2 traces",
            &args.out,
            record::record_cs2(&c2, &args.out),
        ));
        for f in &files {
            println!("→ {}", f.display());
        }
        println!();
    }
    if matches!(t, "report" | "all") {
        check_io("report.json", &args.out, record::report(&args.out));
    }
    if t == "serve" {
        let mut opts = serve::ServeOptions::default();
        if let Some(addr) = &args.addr {
            opts.addr = addr.clone();
        }
        if let Some(kb) = args.corpus_kb {
            opts.corpus_kb = kb;
        }
        if let Some(d) = args.detail {
            opts.detail = d;
        }
        if let Some(s) = args.seed {
            opts.seed = s;
        }
        let stop = autotune::serve::StopFlag::new();
        let files = check_io(
            "serve results",
            &args.out,
            serve::run_serve(&opts, &args.out, &stop),
        );
        for f in &files {
            println!("→ {}", f.display());
        }
    }
    if t == "load" {
        let mut opts = load::LoadOptions::default();
        if let Some(addr) = &args.addr {
            opts.addr = addr.clone();
        }
        if let Some(r) = args.requests {
            opts.requests = r;
        }
        if let Some(n) = args.threads {
            opts.threads = n;
        }
        if let Some(b) = args.batch {
            opts.batch = b;
        }
        if let Some(n) = args.render_every {
            opts.render_every = n;
        }
        opts.drift = args.drift;
        opts.subscribe = args.subscribe;
        opts.quit = args.quit;
        if let Err(e) = load::ping(&opts.addr) {
            eprintln!("error: no serve instance answering at {}: {e}", opts.addr);
            eprintln!(
                "hint: start one with `experiments serve --addr {}`",
                opts.addr
            );
            std::process::exit(1);
        }
        let path = check_io("load.json", &args.out, load::run_load(&opts, &args.out));
        println!("→ {}", path.display());
    }
    let known = [
        "table1",
        "table2",
        "fig1",
        "fig2",
        "fig3",
        "fig4",
        "fig5",
        "fig6",
        "fig7",
        "fig8",
        "cs1",
        "cs2",
        "kernels",
        "patterns",
        "scenes",
        "dynamic",
        "ablations",
        "faults",
        "constraints",
        "sites",
        "smallsort",
        "contexts",
        "record",
        "report",
        "serve",
        "load",
        "all",
    ];
    if !known.contains(&t) {
        eprintln!("unknown target '{t}'\n\n{USAGE}");
        std::process::exit(2);
    }
}
