//! Figure data containers, CSV/JSON writers, and ASCII plots.
//!
//! Every experiment produces one of three figure shapes, mirroring the
//! paper's plots:
//!
//! * [`SeriesFigure`] — per-iteration line plots (Figures 2, 3, 5, 6, 7),
//! * [`BoxFigure`] — per-category boxplots (Figure 1),
//! * [`GroupedBoxFigure`] — strategy × algorithm boxplots (Figures 4, 8).
//!
//! Each can render itself as an ASCII chart (for the terminal) and persist
//! itself as CSV (for external plotting) and JSON (for EXPERIMENTS.md
//! regeneration).

use autotune::json::Json;
use autotune::stats::FiveNumber;
use std::fmt::Write as _;
use std::path::Path;

/// A per-iteration line plot with one series per strategy/algorithm.
#[derive(Debug, Clone)]
pub struct SeriesFigure {
    /// Figure id, e.g. `fig2`.
    pub id: String,
    pub title: String,
    pub xlabel: String,
    pub ylabel: String,
    pub series: Vec<(String, Vec<f64>)>,
}

/// A simple per-category boxplot.
#[derive(Debug, Clone)]
pub struct BoxFigure {
    pub id: String,
    pub title: String,
    pub ylabel: String,
    pub boxes: Vec<(String, Boxed)>,
}

/// `FiveNumber` with a JSON encoding.
#[derive(Debug, Clone, Copy)]
pub struct Boxed {
    pub min: f64,
    pub q1: f64,
    pub median: f64,
    pub q3: f64,
    pub max: f64,
}

impl From<FiveNumber> for Boxed {
    fn from(f: FiveNumber) -> Self {
        Boxed {
            min: f.min,
            q1: f.q1,
            median: f.median,
            q3: f.q3,
            max: f.max,
        }
    }
}

impl Boxed {
    fn to_json(self) -> Json {
        Json::obj(vec![
            ("min", Json::Num(self.min)),
            ("q1", Json::Num(self.q1)),
            ("median", Json::Num(self.median)),
            ("q3", Json::Num(self.q3)),
            ("max", Json::Num(self.max)),
        ])
    }
}

fn num_arr(values: &[f64]) -> Json {
    Json::Arr(values.iter().map(|&x| Json::Num(x)).collect())
}

/// A grouped boxplot: one box per (group, category) pair.
#[derive(Debug, Clone)]
pub struct GroupedBoxFigure {
    pub id: String,
    pub title: String,
    pub ylabel: String,
    /// Category labels (x axis, e.g. algorithm names).
    pub categories: Vec<String>,
    /// One row per group (e.g. strategy): `(group, boxes per category)`.
    pub groups: Vec<(String, Vec<Boxed>)>,
}

fn write_file(path: &Path, contents: &str) -> std::io::Result<()> {
    if let Some(parent) = path.parent() {
        std::fs::create_dir_all(parent)?;
    }
    std::fs::write(path, contents)
}

impl SeriesFigure {
    /// CSV: `iteration,<series...>` rows.
    pub fn to_csv(&self) -> String {
        let mut out = String::from("iteration");
        for (name, _) in &self.series {
            write!(out, ",{name}").unwrap();
        }
        out.push('\n');
        let len = self.series.iter().map(|(_, v)| v.len()).max().unwrap_or(0);
        for i in 0..len {
            write!(out, "{i}").unwrap();
            for (_, v) in &self.series {
                match v.get(i) {
                    Some(x) => write!(out, ",{x:.4}").unwrap(),
                    None => out.push(','),
                }
            }
            out.push('\n');
        }
        out
    }

    /// Render an ASCII line chart (one glyph per series).
    pub fn ascii(&self) -> String {
        const W: usize = 72;
        const H: usize = 18;
        const GLYPHS: &[char] = &['*', 'o', '+', 'x', '#', '@', '%', '&'];
        let len = self.series.iter().map(|(_, v)| v.len()).max().unwrap_or(0);
        let (mut lo, mut hi) = (f64::INFINITY, f64::NEG_INFINITY);
        for (_, v) in &self.series {
            for &y in v {
                lo = lo.min(y);
                hi = hi.max(y);
            }
        }
        if !lo.is_finite() || len == 0 {
            return format!("{}: (no data)\n", self.title);
        }
        if hi - lo < 1e-12 {
            hi = lo + 1.0;
        }
        let mut grid = vec![vec![' '; W]; H];
        for (si, (_, v)) in self.series.iter().enumerate() {
            let g = GLYPHS[si % GLYPHS.len()];
            for (i, &y) in v.iter().enumerate() {
                let x = if len <= 1 { 0 } else { i * (W - 1) / (len - 1) };
                let row = ((hi - y) / (hi - lo) * (H - 1) as f64).round() as usize;
                grid[row.min(H - 1)][x] = g;
            }
        }
        let mut out = String::new();
        writeln!(out, "{} ({} vs {})", self.title, self.ylabel, self.xlabel).unwrap();
        for (r, row) in grid.iter().enumerate() {
            let label = if r == 0 {
                format!("{hi:>9.2} |")
            } else if r == H - 1 {
                format!("{lo:>9.2} |")
            } else {
                "          |".to_string()
            };
            writeln!(out, "{label}{}", row.iter().collect::<String>()).unwrap();
        }
        writeln!(out, "          +{}", "-".repeat(W)).unwrap();
        for (si, (name, _)) in self.series.iter().enumerate() {
            writeln!(out, "   {} {}", GLYPHS[si % GLYPHS.len()], name).unwrap();
        }
        out
    }

    /// JSON encoding, tuples-as-arrays like the original serde layout.
    pub fn to_json(&self) -> Json {
        Json::obj(vec![
            ("id", Json::Str(self.id.clone())),
            ("title", Json::Str(self.title.clone())),
            ("xlabel", Json::Str(self.xlabel.clone())),
            ("ylabel", Json::Str(self.ylabel.clone())),
            (
                "series",
                Json::Arr(
                    self.series
                        .iter()
                        .map(|(name, v)| Json::Arr(vec![Json::Str(name.clone()), num_arr(v)]))
                        .collect(),
                ),
            ),
        ])
    }

    /// Write `<dir>/<id>.csv` and `<dir>/<id>.json`.
    pub fn save(&self, dir: &Path) -> std::io::Result<()> {
        write_file(&dir.join(format!("{}.csv", self.id)), &self.to_csv())?;
        write_file(
            &dir.join(format!("{}.json", self.id)),
            &self.to_json().to_string_pretty(),
        )
    }
}

impl BoxFigure {
    pub fn to_csv(&self) -> String {
        let mut out = String::from("label,min,q1,median,q3,max\n");
        for (label, b) in &self.boxes {
            writeln!(
                out,
                "{label},{:.4},{:.4},{:.4},{:.4},{:.4}",
                b.min, b.q1, b.median, b.q3, b.max
            )
            .unwrap();
        }
        out
    }

    /// Horizontal ASCII boxplot.
    pub fn ascii(&self) -> String {
        const W: usize = 56;
        let (mut lo, mut hi) = (f64::INFINITY, f64::NEG_INFINITY);
        for (_, b) in &self.boxes {
            lo = lo.min(b.min);
            hi = hi.max(b.max);
        }
        if !lo.is_finite() {
            return format!("{}: (no data)\n", self.title);
        }
        if hi - lo < 1e-12 {
            hi = lo + 1.0;
        }
        let pos = |v: f64| (((v - lo) / (hi - lo)) * (W - 1) as f64).round() as usize;
        let mut out = String::new();
        writeln!(out, "{} [{}]", self.title, self.ylabel).unwrap();
        let label_w = self
            .boxes
            .iter()
            .map(|(l, _)| l.len())
            .max()
            .unwrap_or(0)
            .max(8);
        for (label, b) in &self.boxes {
            let mut row = vec![' '; W];
            row[pos(b.min)..=pos(b.max)].fill('-');
            row[pos(b.q1)..=pos(b.q3)].fill('=');
            row[pos(b.median)] = '|';
            writeln!(
                out,
                "{label:>label_w$} {} {:8.2}ms",
                row.iter().collect::<String>(),
                b.median
            )
            .unwrap();
        }
        writeln!(out, "{:>label_w$} {:<.2} .. {:.2}", "range", lo, hi).unwrap();
        out
    }

    /// JSON encoding, tuples-as-arrays like the original serde layout.
    pub fn to_json(&self) -> Json {
        Json::obj(vec![
            ("id", Json::Str(self.id.clone())),
            ("title", Json::Str(self.title.clone())),
            ("ylabel", Json::Str(self.ylabel.clone())),
            (
                "boxes",
                Json::Arr(
                    self.boxes
                        .iter()
                        .map(|(label, b)| Json::Arr(vec![Json::Str(label.clone()), b.to_json()]))
                        .collect(),
                ),
            ),
        ])
    }

    pub fn save(&self, dir: &Path) -> std::io::Result<()> {
        write_file(&dir.join(format!("{}.csv", self.id)), &self.to_csv())?;
        write_file(
            &dir.join(format!("{}.json", self.id)),
            &self.to_json().to_string_pretty(),
        )
    }
}

impl GroupedBoxFigure {
    pub fn to_csv(&self) -> String {
        let mut out = String::from("group,category,min,q1,median,q3,max\n");
        for (group, boxes) in &self.groups {
            for (cat, b) in self.categories.iter().zip(boxes) {
                writeln!(
                    out,
                    "{group},{cat},{:.4},{:.4},{:.4},{:.4},{:.4}",
                    b.min, b.q1, b.median, b.q3, b.max
                )
                .unwrap();
            }
        }
        out
    }

    /// Median table + per-group mini boxplots.
    pub fn ascii(&self) -> String {
        let mut out = String::new();
        writeln!(out, "{} [{}] (medians)", self.title, self.ylabel).unwrap();
        let gw = self
            .groups
            .iter()
            .map(|(g, _)| g.len())
            .max()
            .unwrap_or(0)
            .max(8);
        write!(out, "{:>gw$}", "").unwrap();
        for c in &self.categories {
            write!(out, " {c:>14}").unwrap();
        }
        out.push('\n');
        for (group, boxes) in &self.groups {
            write!(out, "{group:>gw$}").unwrap();
            for b in boxes {
                write!(out, " {:>14.1}", b.median).unwrap();
            }
            out.push('\n');
        }
        out
    }

    /// JSON encoding, tuples-as-arrays like the original serde layout.
    pub fn to_json(&self) -> Json {
        Json::obj(vec![
            ("id", Json::Str(self.id.clone())),
            ("title", Json::Str(self.title.clone())),
            ("ylabel", Json::Str(self.ylabel.clone())),
            (
                "categories",
                Json::Arr(
                    self.categories
                        .iter()
                        .map(|c| Json::Str(c.clone()))
                        .collect(),
                ),
            ),
            (
                "groups",
                Json::Arr(
                    self.groups
                        .iter()
                        .map(|(group, boxes)| {
                            Json::Arr(vec![
                                Json::Str(group.clone()),
                                Json::Arr(boxes.iter().map(|b| b.to_json()).collect()),
                            ])
                        })
                        .collect(),
                ),
            ),
        ])
    }

    pub fn save(&self, dir: &Path) -> std::io::Result<()> {
        write_file(&dir.join(format!("{}.csv", self.id)), &self.to_csv())?;
        write_file(
            &dir.join(format!("{}.json", self.id)),
            &self.to_json().to_string_pretty(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn series() -> SeriesFigure {
        SeriesFigure {
            id: "t".into(),
            title: "Test".into(),
            xlabel: "iteration".into(),
            ylabel: "ms".into(),
            series: vec![
                ("a".into(), vec![3.0, 2.0, 1.0]),
                ("b".into(), vec![1.0, 1.5]),
            ],
        }
    }

    #[test]
    fn series_csv_has_header_and_rows() {
        let csv = series().to_csv();
        let lines: Vec<_> = csv.lines().collect();
        assert_eq!(lines[0], "iteration,a,b");
        assert_eq!(lines.len(), 4);
        assert!(lines[3].starts_with("2,1.0000,"));
        assert!(lines[3].ends_with(','), "short series pads with empty");
    }

    #[test]
    fn series_ascii_contains_legend_and_axis() {
        let a = series().ascii();
        assert!(a.contains("* a"));
        assert!(a.contains("o b"));
        assert!(a.contains('|'));
    }

    #[test]
    fn empty_series_does_not_panic() {
        let f = SeriesFigure {
            id: "e".into(),
            title: "Empty".into(),
            xlabel: "x".into(),
            ylabel: "y".into(),
            series: vec![],
        };
        assert!(f.ascii().contains("no data"));
        assert_eq!(f.to_csv().lines().count(), 1);
    }

    #[test]
    fn constant_series_does_not_divide_by_zero() {
        let f = SeriesFigure {
            id: "c".into(),
            title: "Const".into(),
            xlabel: "x".into(),
            ylabel: "y".into(),
            series: vec![("k".into(), vec![5.0, 5.0, 5.0])],
        };
        let a = f.ascii();
        assert!(a.contains('*'));
    }

    #[test]
    fn box_figure_csv_and_ascii() {
        let f = BoxFigure {
            id: "b".into(),
            title: "Boxes".into(),
            ylabel: "ms".into(),
            boxes: vec![(
                "alg".into(),
                Boxed {
                    min: 1.0,
                    q1: 2.0,
                    median: 3.0,
                    q3: 4.0,
                    max: 5.0,
                },
            )],
        };
        assert!(f
            .to_csv()
            .contains("alg,1.0000,2.0000,3.0000,4.0000,5.0000"));
        let a = f.ascii();
        assert!(a.contains('='));
        assert!(a.contains('|'));
    }

    #[test]
    fn grouped_box_tabulates_medians() {
        let f = GroupedBoxFigure {
            id: "g".into(),
            title: "Counts".into(),
            ylabel: "count".into(),
            categories: vec!["x".into(), "y".into()],
            groups: vec![(
                "s1".into(),
                vec![
                    Boxed {
                        min: 0.0,
                        q1: 1.0,
                        median: 2.0,
                        q3: 3.0,
                        max: 4.0,
                    },
                    Boxed {
                        min: 5.0,
                        q1: 6.0,
                        median: 7.0,
                        q3: 8.0,
                        max: 9.0,
                    },
                ],
            )],
        };
        let a = f.ascii();
        assert!(a.contains("s1"));
        assert!(a.contains("2.0"));
        assert!(a.contains("7.0"));
        assert_eq!(f.to_csv().lines().count(), 3);
    }

    #[test]
    fn save_writes_csv_and_json() {
        let dir = std::env::temp_dir().join("algochoice_report_test");
        let _ = std::fs::remove_dir_all(&dir);
        series().save(&dir).unwrap();
        assert!(dir.join("t.csv").exists());
        assert!(dir.join("t.json").exists());
        let json = Json::parse(&std::fs::read_to_string(dir.join("t.json")).unwrap()).unwrap();
        assert_eq!(json.get("id").and_then(Json::as_str), Some("t"));
        let _ = std::fs::remove_dir_all(&dir);
    }
}
