//! The `faults` study: tuning under transient measurement failures.
//!
//! The paper's evaluation assumes every measurement succeeds. Production
//! tuning loops do not get that luxury — timers read zero, kernels panic on
//! degenerate inputs, co-located work injects latency spikes. This study
//! re-runs both case studies with a configurable fraction (default 10%) of
//! measurements replaced by injected faults ([`FaultKind::ALL`]) and
//! compares the convergence curves against fault-free runs of the same
//! strategies and seeds.
//!
//! The claim under test: with the robust measurement pipeline
//! ([`autotune::robust`]) in front of the tuner, all six paper strategies
//! *complete* (no panic escapes), *converge* (the faulty tail approaches
//! the clean tail), and *never exclude* an algorithm.
//!
//! Failed iterations are recorded as `NaN` in the curves; the median
//! reducer filters NaN by policy, so the plotted curves show the runtime
//! the application actually observed on successful iterations.

use crate::cs1::{self, Cs1Config};
use crate::cs2::Cs2Config;
use crate::report::SeriesFigure;
use autotune::json::Json;
use autotune::rng::Rng;
use autotune::robust::{robust_call, FaultKind, FaultPlan, MeasureOutcome, RobustOptions};
use autotune::space::Configuration;
use autotune::stats;
use autotune::two_phase::{AlgorithmSpec, TwoPhaseTuner};
use raytrace::tunable;
use std::path::Path;
use stringmatch::{all_matchers, corpus};

/// The transient-failure rate of the study's headline claim.
pub const DEFAULT_FAULT_RATE: f64 = 0.10;

/// One strategy's clean-vs-faulty comparison.
#[derive(Debug, Clone)]
pub struct StrategyFaultRun {
    pub label: String,
    /// Median per-iteration runtime across repetitions, fault-free run.
    pub clean_curve: Vec<f64>,
    /// Same, with faults injected (failed iterations filtered as NaN).
    pub faulty_curve: Vec<f64>,
    /// Faults injected across all repetitions of the faulty run.
    pub injected: usize,
    /// Failures the tuner recorded (NaN/panic faults; zero and spike
    /// faults produce valid-if-bad samples and are absorbed silently).
    pub failures_recorded: usize,
    /// Median runtime over the last quarter of each curve — the converged
    /// performance the application sees.
    pub clean_tail: f64,
    pub faulty_tail: f64,
    /// Per-algorithm selection counts in the faulty run, summed over
    /// repetitions. Every entry must stay positive: faults never excluded
    /// an algorithm.
    pub faulty_selections: Vec<usize>,
}

/// The study over one case study's algorithm set.
#[derive(Debug, Clone)]
pub struct FaultsStudy {
    pub case_study: String,
    pub rate: f64,
    pub iterations: usize,
    pub reps: usize,
    pub runs: Vec<StrategyFaultRun>,
}

/// Inject a fault (or not) around a clean measurement, routed through the
/// robust pipeline so panic faults are contained exactly like production
/// panics would be.
fn faulty_call(
    plan: &FaultPlan,
    rng: &mut Rng,
    injected: &mut usize,
    mut clean: impl FnMut() -> f64,
) -> MeasureOutcome {
    let kind = if rng.next_bool(plan.rate) {
        *injected += 1;
        Some(plan.kinds[rng.pick_index(plan.kinds.len())])
    } else {
        None
    };
    robust_call(&RobustOptions::default(), || match kind {
        None => clean(),
        Some(FaultKind::Nan) => f64::NAN,
        Some(FaultKind::Zero) => 0.0,
        Some(FaultKind::Panic) => panic!("injected measurement fault"),
        Some(FaultKind::Spike) => clean() * plan.spike_factor,
    })
}

/// Median of the last quarter of a curve (NaN-filtered by the quantile
/// policy).
fn tail_median(curve: &[f64]) -> f64 {
    let start = curve.len() - curve.len() / 4;
    stats::median(&curve[start.min(curve.len().saturating_sub(1))..])
}

/// Run the clean-vs-faulty comparison for every paper strategy over an
/// arbitrary algorithm set and measurement function.
fn run_study(
    case_study: &str,
    rate: f64,
    reps: usize,
    iterations: usize,
    seed: u64,
    specs: &[AlgorithmSpec],
    measure: &mut dyn FnMut(usize, &Configuration) -> f64,
) -> FaultsStudy {
    let mut runs = Vec::new();
    for (si, (label, kind)) in cs1::strategies().into_iter().enumerate() {
        let mut curves = [Vec::new(), Vec::new()]; // [clean, faulty] per-rep series
        let mut injected = 0usize;
        let mut failures_recorded = 0usize;
        let mut faulty_selections = vec![0usize; specs.len()];
        for (fi, &faulty) in [false, true].iter().enumerate() {
            let plan = FaultPlan::all(if faulty { rate } else { 0.0 });
            for rep in 0..reps {
                let tuner_seed = seed
                    .wrapping_add(rep as u64 * 1009)
                    .wrapping_add(si as u64 * 7919);
                let mut fault_rng = Rng::new(tuner_seed ^ 0xFA17);
                let mut tuner = TwoPhaseTuner::new(specs.to_vec(), kind, tuner_seed);
                let mut series = Vec::with_capacity(iterations);
                for _ in 0..iterations {
                    let sample = tuner.step_fallible(|alg, c| {
                        faulty_call(&plan, &mut fault_rng, &mut injected, || measure(alg, c))
                    });
                    series.push(if sample.failed {
                        f64::NAN
                    } else {
                        sample.value
                    });
                }
                curves[fi].push(series);
                if faulty {
                    failures_recorded += tuner.failure_counts().iter().sum::<usize>();
                    for (count, sample_count) in
                        faulty_selections.iter_mut().zip(tuner.selection_counts())
                    {
                        *count += sample_count;
                    }
                }
            }
        }
        let clean_curve = stats::per_iteration_reduce(&curves[0], stats::median);
        let faulty_curve = stats::per_iteration_reduce(&curves[1], stats::median);
        runs.push(StrategyFaultRun {
            label,
            clean_tail: tail_median(&clean_curve),
            faulty_tail: tail_median(&faulty_curve),
            clean_curve,
            faulty_curve,
            injected,
            failures_recorded,
            faulty_selections,
        });
    }
    FaultsStudy {
        case_study: case_study.to_string(),
        rate,
        iterations,
        reps,
        runs,
    }
}

/// Case study 1 (string matching) under transient faults.
pub fn cs1_faults(cfg: &Cs1Config, rate: f64) -> FaultsStudy {
    let text = corpus::bible_like_with(cfg.seed, cfg.corpus_bytes, cfg.query_spacing_words);
    let matchers = all_matchers();
    let specs: Vec<AlgorithmSpec> = matchers
        .iter()
        .map(|m| AlgorithmSpec::untunable(m.name()))
        .collect();
    run_study(
        "cs1-string-matching",
        rate,
        cfg.reps,
        cfg.iterations,
        cfg.seed,
        &specs,
        &mut |alg, _c| cs1::timed_search(matchers[alg].as_ref(), cfg.threads, &text),
    )
}

/// Case study 2 (raytracing) under transient faults.
pub fn cs2_faults(cfg: &Cs2Config, rate: f64) -> FaultsStudy {
    let scene = cfg.scene();
    let opts = raytrace::render::RenderOptions {
        width: cfg.width,
        height: cfg.height,
        threads: cfg.render_threads,
        packet_width: 1,
    };
    let builders = raytrace::all_builders();
    let specs = tunable::algorithm_specs();
    run_study(
        "cs2-raytracing",
        rate,
        cfg.reps,
        cfg.frames,
        cfg.seed,
        &specs,
        &mut |alg, c| {
            let config = tunable::decode(builders[alg].name(), c);
            let ropts = tunable::decode_render(c, &opts);
            raytrace::render::frame(&scene, builders[alg].as_ref(), &config, &ropts).total_ms()
        },
    )
}

/// Clean-vs-faulty convergence figure: two series per strategy.
pub fn figure(study: &FaultsStudy) -> SeriesFigure {
    let mut series = Vec::with_capacity(study.runs.len() * 2);
    for run in &study.runs {
        series.push((format!("{} clean", run.label), run.clean_curve.clone()));
        series.push((format!("{} faulty", run.label), run.faulty_curve.clone()));
    }
    SeriesFigure {
        id: format!("faults_{}", short_id(&study.case_study)),
        title: format!(
            "{}: clean vs {:.0}% transient-fault convergence",
            study.case_study,
            study.rate * 100.0
        ),
        xlabel: "iteration".into(),
        ylabel: "median time [ms]".into(),
        series,
    }
}

fn short_id(case_study: &str) -> &str {
    case_study.split('-').next().unwrap_or(case_study)
}

fn num_arr(values: &[f64]) -> Json {
    Json::Arr(values.iter().map(|&x| Json::Num(x)).collect())
}

/// Structured results for `faults.json`.
pub fn to_json(studies: &[FaultsStudy]) -> Json {
    Json::obj(vec![(
        "studies",
        Json::Arr(
            studies
                .iter()
                .map(|s| {
                    Json::obj(vec![
                        ("case_study", Json::Str(s.case_study.clone())),
                        ("fault_rate", Json::Num(s.rate)),
                        ("iterations", Json::Num(s.iterations as f64)),
                        ("reps", Json::Num(s.reps as f64)),
                        (
                            "strategies",
                            Json::Arr(
                                s.runs
                                    .iter()
                                    .map(|r| {
                                        Json::obj(vec![
                                            ("label", Json::Str(r.label.clone())),
                                            ("injected_faults", Json::Num(r.injected as f64)),
                                            (
                                                "failures_recorded",
                                                Json::Num(r.failures_recorded as f64),
                                            ),
                                            ("clean_tail_ms", Json::Num(r.clean_tail)),
                                            ("faulty_tail_ms", Json::Num(r.faulty_tail)),
                                            (
                                                "faulty_selections",
                                                Json::Arr(
                                                    r.faulty_selections
                                                        .iter()
                                                        .map(|&c| Json::Num(c as f64))
                                                        .collect(),
                                                ),
                                            ),
                                            ("clean_curve", num_arr(&r.clean_curve)),
                                            ("faulty_curve", num_arr(&r.faulty_curve)),
                                        ])
                                    })
                                    .collect(),
                            ),
                        ),
                    ])
                })
                .collect(),
        ),
    )])
}

/// Write `<dir>/faults.json`.
pub fn save_json(studies: &[FaultsStudy], dir: &Path) -> std::io::Result<()> {
    std::fs::create_dir_all(dir)?;
    std::fs::write(dir.join("faults.json"), to_json(studies).to_string_pretty())
}

/// One-line per-strategy summary for the terminal.
pub fn summary(study: &FaultsStudy) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    writeln!(
        out,
        "{} @ {:.0}% faults ({} reps × {} iters):",
        study.case_study,
        study.rate * 100.0,
        study.reps,
        study.iterations
    )
    .unwrap();
    for r in &study.runs {
        let excluded = r.faulty_selections.contains(&0);
        writeln!(
            out,
            "  {:<24} clean tail {:>8.2}ms  faulty tail {:>8.2}ms  \
             ({} injected, {} recorded{})",
            r.label,
            r.clean_tail,
            r.faulty_tail,
            r.injected,
            r.failures_recorded,
            if excluded { ", ALGORITHM EXCLUDED" } else { "" }
        )
        .unwrap();
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_cs1() -> Cs1Config {
        Cs1Config {
            corpus_bytes: 32 << 10,
            query_spacing_words: 1_000,
            reps: 2,
            iterations: 24,
            threads: 2,
            seed: 5,
        }
    }

    #[test]
    fn cs1_study_survives_and_reports_faults() {
        let study = cs1_faults(&tiny_cs1(), 0.25);
        assert_eq!(study.runs.len(), 6, "all six paper strategies");
        for r in &study.runs {
            assert_eq!(r.clean_curve.len(), 24);
            assert_eq!(r.faulty_curve.len(), 24);
            assert!(
                r.injected > 0,
                "{}: faults must have been injected",
                r.label
            );
            assert!(
                r.failures_recorded <= r.injected,
                "{}: only nan/panic faults fail",
                r.label
            );
            assert!(r.clean_tail.is_finite() && r.clean_tail > 0.0);
            assert!(r.faulty_tail.is_finite() && r.faulty_tail > 0.0);
            assert!(
                r.faulty_selections.iter().all(|&c| c > 0),
                "{}: no algorithm may be excluded ({:?})",
                r.label,
                r.faulty_selections
            );
        }
    }

    #[test]
    fn cs2_study_survives() {
        let cfg = Cs2Config {
            detail: 1,
            frames: 16,
            reps: 1,
            width: 32,
            height: 24,
            render_threads: 2,
            seed: 3,
        };
        let study = cs2_faults(&cfg, 0.4);
        assert_eq!(study.runs.len(), 6);
        for r in &study.runs {
            assert_eq!(r.faulty_curve.len(), 16);
            assert!(r.injected > 0, "{}", r.label);
        }
    }

    #[test]
    fn figure_and_json_shapes() {
        let study = cs1_faults(&tiny_cs1(), 0.2);
        let f = figure(&study);
        assert_eq!(f.id, "faults_cs1");
        assert_eq!(f.series.len(), 12, "clean + faulty per strategy");
        let json = to_json(std::slice::from_ref(&study));
        let parsed = Json::parse(&json.to_string_pretty()).expect("self-parse");
        let studies = parsed.get("studies").and_then(Json::as_arr).unwrap();
        assert_eq!(studies.len(), 1);
        let strategies = studies[0].get("strategies").and_then(Json::as_arr).unwrap();
        assert_eq!(strategies.len(), 6);
        assert!(summary(&study).contains("clean tail"));
    }
}
