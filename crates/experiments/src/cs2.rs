//! Case study 2: raytracing with tunable SAH kD-tree construction
//! (Section IV-B, Figures 5-8).
//!
//! The tuning loop *is* the rendering loop: each frame, the online tuner
//! selects a construction algorithm and a parameter configuration for it,
//! the frame is rendered through the two-stage pipeline, and the frame
//! time is reported back. Each builder starts from the hand-crafted
//! best-practice configuration, which is why Figure 5 shows a leap on the
//! very first tuning iteration.

use crate::cs1::Cs1Runs;
use crate::report::{GroupedBoxFigure, SeriesFigure};
use autotune::search::{NelderMead, NelderMeadOptions};
use autotune::stats;
use autotune::tuner::{OnlineTuner, Termination};
use autotune::two_phase::TwoPhaseTuner;
use raytrace::render::{frame, RenderOptions};
use raytrace::scene::{cathedral, Scene};
use raytrace::tunable;

/// Experiment scale knobs; defaults are the quick profile.
#[derive(Debug, Clone)]
pub struct Cs2Config {
    /// Cathedral detail (3 ≈ Sibenik's ~75k triangles).
    pub detail: u32,
    /// Frames per experiment (paper: 100).
    pub frames: usize,
    /// Experiment repetitions (paper: 100).
    pub reps: usize,
    pub width: usize,
    pub height: usize,
    pub render_threads: usize,
    pub seed: u64,
}

impl Default for Cs2Config {
    fn default() -> Self {
        Cs2Config {
            detail: 1,
            frames: 40,
            reps: 5,
            width: 96,
            height: 72,
            render_threads: std::thread::available_parallelism().map_or(4, |n| n.get()),
            seed: 20160523,
        }
    }
}

impl Cs2Config {
    /// The paper's scale: Sibenik-sized scene, 100 frames × 100 reps.
    pub fn paper() -> Self {
        Cs2Config {
            detail: 3,
            frames: 100,
            reps: 100,
            width: 256,
            height: 192,
            ..Default::default()
        }
    }

    pub fn scene(&self) -> Scene {
        cathedral(self.seed, self.detail)
    }

    pub(crate) fn render_options(&self) -> RenderOptions {
        RenderOptions {
            width: self.width,
            height: self.height,
            threads: self.render_threads,
            packet_width: 1,
        }
    }
}

/// The four builder names in figure order.
pub fn algorithm_names() -> Vec<String> {
    raytrace::all_builders()
        .iter()
        .map(|b| b.name().to_string())
        .collect()
}

/// Figure 5: per-algorithm Nelder-Mead tuning timelines. Each builder is
/// tuned alone (no algorithmic choice) for `frames` iterations; the series
/// are frame times averaged over repetitions.
pub fn fig5(cfg: &Cs2Config) -> SeriesFigure {
    let scene = cfg.scene();
    let opts = cfg.render_options();
    let builders = raytrace::all_builders();
    let mut series = Vec::new();
    for b in &builders {
        let mut reps: Vec<Vec<f64>> = Vec::with_capacity(cfg.reps);
        for _rep in 0..cfg.reps {
            let space = tunable::space_for(b.name());
            let start = tunable::start_for(b.name());
            let nm = NelderMead::from_start(space, &start, NelderMeadOptions::default());
            let mut tuner = OnlineTuner::new(nm, Termination::Never);
            let mut m = |c: &autotune::space::Configuration| {
                let config = tunable::decode(b.name(), c);
                let ropts = tunable::decode_render(c, &opts);
                frame(&scene, b.as_ref(), &config, &ropts).total_ms()
            };
            let mut run = Vec::with_capacity(cfg.frames);
            for _ in 0..cfg.frames {
                run.push(tuner.step(&mut m).value);
            }
            reps.push(run);
        }
        series.push((
            b.name().to_string(),
            stats::per_iteration_reduce(&reps, stats::mean),
        ));
    }
    SeriesFigure {
        id: "fig5".into(),
        title: "Raytracing: per-algorithm Nelder-Mead tuning timeline".into(),
        xlabel: "iteration".into(),
        ylabel: "time [ms]".into(),
        series,
    }
}

/// Run the combined experiment (algorithmic choice + per-algorithm tuning)
/// for all six strategies. Reuses the [`Cs1Runs`] container shape.
pub fn run_tuning(cfg: &Cs2Config) -> Cs1Runs {
    let scene = cfg.scene();
    let opts = cfg.render_options();
    let builders = raytrace::all_builders();
    let specs = tunable::algorithm_specs();

    let mut times = Vec::new();
    let mut counts = Vec::new();
    for (si, (_, kind)) in crate::cs1::strategies().iter().enumerate() {
        let mut strat_times = Vec::with_capacity(cfg.reps);
        let mut strat_counts = Vec::with_capacity(cfg.reps);
        for rep in 0..cfg.reps {
            let seed = cfg
                .seed
                .wrapping_add(rep as u64 * 6007)
                .wrapping_add(si as u64 * 104729);
            let mut tuner = TwoPhaseTuner::new(specs.clone(), *kind, seed);
            let mut run = Vec::with_capacity(cfg.frames);
            for _ in 0..cfg.frames {
                let sample = tuner.step(|alg, c| {
                    let name = builders[alg].name();
                    let config = tunable::decode(name, c);
                    let ropts = tunable::decode_render(c, &opts);
                    frame(&scene, builders[alg].as_ref(), &config, &ropts).total_ms()
                });
                run.push(sample.value);
            }
            strat_times.push(run);
            strat_counts.push(tuner.selection_counts());
        }
        times.push(strat_times);
        counts.push(strat_counts);
    }
    Cs1Runs {
        times,
        counts,
        strategy_labels: crate::cs1::strategies()
            .into_iter()
            .map(|(l, _)| l)
            .collect(),
        algorithm_labels: algorithm_names(),
    }
}

/// Figure 6: median per-iteration frame time of every strategy.
pub fn fig6(runs: &Cs1Runs) -> SeriesFigure {
    reduce_figure(runs, "fig6", "median", stats::median)
}

/// Figure 7: mean per-iteration frame time.
pub fn fig7(runs: &Cs1Runs) -> SeriesFigure {
    reduce_figure(runs, "fig7", "mean", stats::mean)
}

fn reduce_figure(runs: &Cs1Runs, id: &str, name: &str, reducer: fn(&[f64]) -> f64) -> SeriesFigure {
    let series = runs
        .strategy_labels
        .iter()
        .zip(&runs.times)
        .map(|(label, reps)| (label.clone(), stats::per_iteration_reduce(reps, reducer)))
        .collect();
    SeriesFigure {
        id: id.into(),
        title: format!("Raytracing: {name} performance per iteration"),
        xlabel: "iteration".into(),
        ylabel: "time [ms]".into(),
        series,
    }
}

/// Figure 8: per-strategy histogram of construction-algorithm choices.
pub fn fig8(runs: &Cs1Runs) -> GroupedBoxFigure {
    crate::cs1::selection_histogram(runs, "fig8", "Raytracing")
}

/// Extension: per-builder frame time across *scene types* (enclosed
/// cathedral vs. open forest) at the hand-crafted configuration. The
/// premise of algorithmic choice is that the best algorithm depends on the
/// input; this table shows whether (and how) the builder ranking moves
/// between geometry regimes.
pub fn scene_comparison(cfg: &Cs2Config) -> crate::report::GroupedBoxFigure {
    use crate::report::Boxed;
    use autotune::stats::FiveNumber;
    use raytrace::kdtree::BuildConfig;
    use raytrace::scene::forest;

    let scenes: Vec<(String, Scene)> = vec![
        ("cathedral".into(), cathedral(cfg.seed, cfg.detail)),
        ("forest".into(), forest(cfg.seed, cfg.detail)),
    ];
    let opts = cfg.render_options();
    let builders = raytrace::all_builders();
    let groups = builders
        .iter()
        .map(|b| {
            let boxes = scenes
                .iter()
                .map(|(_, scene)| {
                    let times: Vec<f64> = (0..cfg.reps)
                        .map(|_| {
                            frame(scene, b.as_ref(), &BuildConfig::default(), &opts).total_ms()
                        })
                        .collect();
                    Boxed::from(FiveNumber::of(&times).expect("reps > 0"))
                })
                .collect();
            (b.name().to_string(), boxes)
        })
        .collect();
    crate::report::GroupedBoxFigure {
        id: "scene_comparison".into(),
        title: "Extension: builder frame time by scene type (default config)".into(),
        ylabel: "time [ms]".into(),
        categories: scenes.into_iter().map(|(n, _)| n).collect(),
        groups,
    }
}

/// Extension: a *dynamic* workload — the scene's triangle count jumps
/// mid-run (detail 1 → detail 2), the situation that motivates *online*
/// over offline tuning ("this variation can occur during application
/// runtime", Section I). Windowed strategies must re-adapt; ε-Greedy's
/// best-observed memory predates the change and can mislead it.
pub fn dynamic_scene_study(cfg: &Cs2Config) -> SeriesFigure {
    let scene_small = cathedral(cfg.seed, cfg.detail);
    let scene_big = cathedral(cfg.seed, cfg.detail + 1);
    let opts = cfg.render_options();
    let builders = raytrace::all_builders();
    let specs = tunable::algorithm_specs();
    let flip = cfg.frames / 2;

    let kinds = [
        crate::cs1::strategies()[1].clone(), // e-greedy(10%)
        crate::cs1::strategies()[5].clone(), // sliding-window-auc(16)
    ];
    let mut series = Vec::new();
    for (label, kind) in kinds {
        let mut per_rep: Vec<Vec<f64>> = Vec::with_capacity(cfg.reps);
        for rep in 0..cfg.reps {
            let seed = cfg.seed.wrapping_add(rep as u64 * 13007);
            let mut tuner = TwoPhaseTuner::new(specs.clone(), kind, seed);
            let mut run = Vec::with_capacity(cfg.frames);
            for i in 0..cfg.frames {
                let scene = if i < flip { &scene_small } else { &scene_big };
                let sample = tuner.step(|alg, c| {
                    let name = builders[alg].name();
                    let config = tunable::decode(name, c);
                    let ropts = tunable::decode_render(c, &opts);
                    frame(scene, builders[alg].as_ref(), &config, &ropts).total_ms()
                });
                run.push(sample.value);
            }
            per_rep.push(run);
        }
        series.push((label, stats::per_iteration_reduce(&per_rep, stats::median)));
    }
    SeriesFigure {
        id: "dynamic_scene".into(),
        title: format!(
            "Extension: scene size jump at frame {flip} (detail {} → {})",
            cfg.detail,
            cfg.detail + 1
        ),
        xlabel: "frame".into(),
        ylabel: "median time [ms]".into(),
        series,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> Cs2Config {
        Cs2Config {
            detail: 1,
            frames: 8,
            reps: 1,
            width: 32,
            height: 24,
            render_threads: 2,
            seed: 3,
        }
    }

    #[test]
    fn fig5_has_four_series_of_frame_length() {
        let f = fig5(&tiny());
        assert_eq!(f.series.len(), 4);
        for (name, s) in &f.series {
            assert_eq!(s.len(), 8, "{name}");
            assert!(s.iter().all(|&v| v > 0.0));
        }
    }

    #[test]
    fn scene_comparison_covers_builders_and_scene_types() {
        let f = scene_comparison(&tiny());
        assert_eq!(f.groups.len(), 4);
        assert_eq!(
            f.categories,
            vec!["cathedral".to_string(), "forest".to_string()]
        );
        for (name, boxes) in &f.groups {
            assert!(boxes.iter().all(|b| b.median > 0.0), "{name}");
        }
    }

    #[test]
    fn dynamic_scene_study_has_two_series_spanning_the_flip() {
        let cfg = Cs2Config {
            frames: 6,
            ..tiny()
        };
        let f = dynamic_scene_study(&cfg);
        assert_eq!(f.series.len(), 2);
        for (name, s) in &f.series {
            assert_eq!(s.len(), 6, "{name}");
            // Bigger scene after the flip: later frames cost more.
            let before = autotune::stats::mean(&s[..3]);
            let after = autotune::stats::mean(&s[3..]);
            assert!(after > before, "{name}: {before} -> {after}");
        }
    }

    #[test]
    fn combined_runs_have_expected_shape() {
        let cfg = tiny();
        let runs = run_tuning(&cfg);
        assert_eq!(runs.times.len(), 6);
        assert_eq!(runs.algorithm_labels.len(), 4);
        for sc in &runs.counts {
            for counts in sc {
                assert_eq!(counts.iter().sum::<usize>(), cfg.frames);
            }
        }
        let f6 = fig6(&runs);
        assert_eq!(f6.series.len(), 6);
        let f8 = fig8(&runs);
        assert_eq!(f8.categories.len(), 4);
    }
}
