//! The `contexts` study: generalized context dimensions under the
//! [`autotune::context`] layer, demonstrated on the smallsort workload.
//!
//! Three questions, one run:
//!
//! 1. **Winner flip** — with presortedness as a *second* context feature
//!    (`SortKey = size class × presort class`), does at least one size
//!    class learn a *different* winner for nearly-sorted input than for
//!    random input? (Insertion sort is O(n + inversions): unbeatable on
//!    nearly-sorted arrays at sizes where it is hopeless on random ones.
//!    A size-only context key would average the two regimes away.)
//! 2. **Warm vs cold start** — when a new key is admitted, nearest-
//!    neighbor warm-starting seeds its tuner from the closest learned
//!    key's posterior. After pre-training the tables on a set of seed
//!    classes, probe classes *between* them are driven through a
//!    warm-starting table and a cold one on identical input streams:
//!    the study reports measured iterations until a rolling median
//!    first lands within [`CONV_TOLERANCE`] of the converged regime
//!    ([`CONV_WINDOW`]-wide, same criterion as the `smallsort` study).
//! 3. **LRU churn** — a table whose capacity is below its live key count
//!    parks and reinstates tuner state on every round-robin pass. The
//!    study counts admissions / evictions / reinstatements and times the
//!    dispatch path against a full-capacity table on the same key cycle.
//!
//! Everything reported is rebuilt **from the exported JSONL trace** via
//! the `context` field each event carries — the per-key tables filter on
//! context ids, not site tags, because under churn a registry slot (and
//! its tag) is shared by many keys over time while the context id names
//! the logical key forever. Artifacts: `results/contexts.json` plus the
//! raw trace in `results/contexts_trace.jsonl`.

use crate::sortstudy::{CONV_TOLERANCE, CONV_WINDOW};
use autotune::json::Json;
use autotune::rng::Rng;
use autotune::robust::MeasureOutcome;
use autotune::stats;
use autotune::telemetry::{self, export, Event, EventKind, MeasureStatus};
use autotune::two_phase::NominalKind;
use smallsort::{
    nearly_sorted_input, SortKey, SortSites, ALGORITHM_NAMES, PRESORT_NAMES, PRESORT_NEARLY_SORTED,
    PRESORT_RANDOM,
};

/// Scale knobs. Defaults are the *quick* profile.
#[derive(Debug, Clone)]
pub struct ContextsConfig {
    /// Size classes (log2 of the class cap) used for the winner-flip
    /// pairs and as warm-start seed classes. Probe classes are derived
    /// as the midpoints between consecutive entries.
    pub classes: Vec<u32>,
    /// Sort requests per context key, for both the flip and the
    /// warm-vs-cold streams (interleaved round-robin across keys).
    pub requests_per_key: usize,
    /// Seed for request sizes, keys, and the per-key tuners.
    pub seed: u64,
    /// Capacity of the churn table — must be below the churned key count
    /// (`classes.len() × 2`) to force eviction on every pass.
    pub churn_capacity: usize,
    /// Round-robin passes over the churned keys.
    pub churn_rounds: usize,
}

impl Default for ContextsConfig {
    fn default() -> Self {
        ContextsConfig {
            classes: vec![8, 10, 12],
            requests_per_key: 240,
            seed: 20170609,
            churn_capacity: 3,
            churn_rounds: 60,
        }
    }
}

impl ContextsConfig {
    /// The full-scale profile: longer streams, more churn passes.
    pub fn paper() -> Self {
        ContextsConfig {
            requests_per_key: 1200,
            churn_rounds: 400,
            ..Default::default()
        }
    }

    /// Probe classes for the warm-vs-cold comparison: the midpoint of
    /// every consecutive seed-class pair (never seen during seeding, but
    /// near a learned neighbor).
    pub fn probe_classes(&self) -> Vec<u32> {
        self.classes.windows(2).map(|w| (w[0] + w[1]) / 2).collect()
    }
}

/// One context key's convergence table, rebuilt from the JSONL trace by
/// filtering on the event `context` field.
#[derive(Debug, Clone)]
pub struct KeyTable {
    /// The key's size class (log2 of its size cap).
    pub class: u32,
    /// The key's presort class (index into [`PRESORT_NAMES`]).
    pub presort: u32,
    /// The key's context id — the `context` field its trace lines carry.
    pub context: u32,
    /// Sort requests dispatched to this key.
    pub requests: u64,
    /// Measured tuning iterations (successful `MeasureOutcome` events).
    pub measured: u64,
    /// Per-algorithm measurement counts, indexed like [`ALGORITHM_NAMES`].
    pub selections: Vec<u64>,
    /// The converged winner: the algorithm the trace's last
    /// [`CONV_WINDOW`] measurements select most often.
    pub winner: usize,
    /// Median measured runtime of the converged tail, in milliseconds.
    pub final_median_ms: f64,
    /// Median of the *first* [`CONV_WINDOW`] measurements — the price of
    /// the start regime (cold starts explore; warm starts exploit).
    pub early_median_ms: f64,
    /// Measured iterations until a rolling median first lands within
    /// [`CONV_TOLERANCE`] of `final_median_ms` (`None`: never settled).
    pub converged_after: Option<usize>,
}

impl KeyTable {
    /// `converged_after`, with "never settled" counted as the full
    /// measured stream — the pessimistic bound used for aggregation.
    pub fn conv_or_all(&self) -> u64 {
        self.converged_after.map_or(self.measured, |i| i as u64)
    }
}

/// One warm-vs-cold probe: the same key driven with identical inputs
/// through a warm-starting table and a cold-starting one.
#[derive(Debug, Clone)]
pub struct ProbePair {
    /// The probed size class (midpoint between two seed classes).
    pub class: u32,
    /// The key's table in the warm-starting run.
    pub warm: KeyTable,
    /// The key's table in the cold-starting run.
    pub cold: KeyTable,
}

/// LRU churn accounting and overhead for the bounded table.
#[derive(Debug, Clone)]
pub struct ChurnReport {
    /// Distinct keys cycled through the table.
    pub keys: usize,
    /// The bounded table's capacity (below `keys`: every pass evicts).
    pub capacity: usize,
    /// Dispatches driven through the bounded table.
    pub dispatches: u64,
    /// Total admissions (first admissions + reinstatements).
    pub admissions: u64,
    /// Evictions (tuner parked, slot recycled).
    pub evictions: u64,
    /// Re-admissions of a previously parked key.
    pub reinstatements: u64,
    /// Mean wall-clock nanoseconds per dispatch+report on the bounded
    /// table — includes the park/rebind work of the eviction path.
    pub churn_ns_per_dispatch: f64,
    /// Same loop on a full-capacity table (no evictions): the baseline.
    pub resident_ns_per_dispatch: f64,
}

/// Results of the full study.
#[derive(Debug, Clone)]
pub struct ContextsStudy {
    /// The configuration the study ran under.
    pub config: ContextsConfig,
    /// Winner-flip tables: for each configured class, the random-input
    /// key then the nearly-sorted key, in class order.
    pub flip_tables: Vec<KeyTable>,
    /// Classes whose nearly-sorted winner differs from their random one.
    pub flipped_classes: Vec<u32>,
    /// Warm-vs-cold probe pairs, in probe-class order.
    pub probes: Vec<ProbePair>,
    /// LRU churn accounting.
    pub churn: ChurnReport,
    /// The host's measured timer tick.
    pub measured_floor_ms: f64,
    /// The full telemetry trace, already serialized to JSONL.
    pub trace_jsonl: String,
}

impl ContextsStudy {
    /// Sum of iterations-to-convergence across warm-started probes.
    pub fn warm_iterations(&self) -> u64 {
        self.probes.iter().map(|p| p.warm.conv_or_all()).sum()
    }

    /// Sum of iterations-to-convergence across cold-started probes.
    pub fn cold_iterations(&self) -> u64 {
        self.probes.iter().map(|p| p.cold.conv_or_all()).sum()
    }

    /// The warm-start headline: warm-started probes reached the
    /// converged regime in no more iterations than cold-started ones.
    pub fn warm_not_worse(&self) -> bool {
        self.warm_iterations() <= self.cold_iterations()
    }
}

/// A fresh request for `key`: size drawn uniformly from the class range,
/// data shaped to land exactly on the key's presort class.
fn input_for(key: SortKey, rng: &mut Rng) -> Vec<u64> {
    let hi = 1usize << key.class;
    let lo = (hi / 2) + 1;
    let n = lo + rng.next_below((hi - lo + 1) as u64) as usize;
    if key.presort == PRESORT_NEARLY_SORTED {
        nearly_sorted_input(n, rng)
    } else {
        (0..n).map(|_| rng.next_u64()).collect()
    }
}

/// Drive `requests` interleaved rounds over `keys` on every table in
/// `tables`, giving each table a clone of the *same* input so the runs
/// are directly comparable.
fn drive(tables: &[&SortSites], keys: &[SortKey], requests: usize, rng: &mut Rng) {
    for _round in 0..requests {
        for &key in keys {
            let data = input_for(key, rng);
            for table in tables {
                let mut copy = data.clone();
                let (got, _ms) = smallsort::sort_request_keyed(table, &mut copy);
                debug_assert_eq!(got, key, "input shaped for the wrong key");
            }
        }
    }
}

/// Measured runtimes and algorithm picks of one context, in trace order.
fn context_measurements(events: &[Event], context: u32) -> Vec<(usize, f64)> {
    events
        .iter()
        .filter(|e| e.context == context)
        .filter_map(|e| match e.kind {
            EventKind::MeasureOutcome {
                algorithm,
                status: MeasureStatus::Ok,
                runtime_ms,
            } => Some((algorithm as usize, runtime_ms)),
            _ => None,
        })
        .collect()
}

/// Build one key's table from its context-filtered trace measurements.
fn table_for(key: SortKey, context: u32, requests: u64, events: &[Event]) -> KeyTable {
    let measurements = context_measurements(events, context);
    let mut selections = vec![0u64; ALGORITHM_NAMES.len()];
    for &(a, _) in &measurements {
        selections[a] += 1;
    }
    let tail_len = measurements.len().min(CONV_WINDOW);
    let tail = &measurements[measurements.len() - tail_len..];
    let winner = (0..ALGORITHM_NAMES.len())
        .max_by_key(|&a| tail.iter().filter(|&&(sel, _)| sel == a).count())
        .unwrap_or(0);
    let runtimes: Vec<f64> = measurements.iter().map(|&(_, ms)| ms).collect();
    let final_median_ms = if tail.is_empty() {
        f64::NAN
    } else {
        stats::median(&runtimes[runtimes.len() - tail_len..])
    };
    let early_median_ms = if runtimes.is_empty() {
        f64::NAN
    } else {
        stats::median(&runtimes[..runtimes.len().min(CONV_WINDOW)])
    };
    let converged_after = (runtimes.len() >= 2 * CONV_WINDOW)
        .then(|| {
            (CONV_WINDOW..=runtimes.len()).find(|&i| {
                let m = stats::median(&runtimes[i - CONV_WINDOW..i]);
                (m - final_median_ms).abs() <= final_median_ms * CONV_TOLERANCE
            })
        })
        .flatten();
    KeyTable {
        class: key.class,
        presort: key.presort,
        context,
        requests,
        measured: measurements.len() as u64,
        selections,
        winner,
        final_median_ms,
        early_median_ms,
        converged_after,
    }
}

/// Time a round-robin dispatch+report cycle over `keys` — synthetic
/// outcomes, so the loop prices the context layer, not the sort.
fn time_dispatches(sites: &SortSites, keys: &[SortKey], rounds: usize) -> (u64, f64) {
    let start = std::time::Instant::now();
    let mut dispatches = 0u64;
    for _ in 0..rounds {
        for &key in keys {
            let guard = sites.table().dispatch(&key);
            guard.post_outcome(MeasureOutcome::from_value(1.0));
            dispatches += 1;
        }
    }
    (
        dispatches,
        start.elapsed().as_nanos() as f64 / dispatches as f64,
    )
}

/// Run the full study: drive the three parts with telemetry on, export
/// the trace, and rebuild every per-key table from the serialized JSONL
/// by context id (round-tripping through [`export::parse_jsonl`] so the
/// tables certify the extended schema).
pub fn run_study(cfg: &ContextsConfig) -> ContextsStudy {
    telemetry::enable();
    telemetry::drain(); // start from a clean ring
    let nominal = NominalKind::EpsilonGreedy(0.10);

    // Part 1: winner flip — random and nearly-sorted keys per class,
    // one full-coverage table.
    let flip = SortSites::register(&format!("study/ctx/flip/{}", cfg.seed), nominal, cfg.seed);
    let flip_keys: Vec<SortKey> = cfg
        .classes
        .iter()
        .flat_map(|&c| {
            [
                SortKey::new(c, PRESORT_RANDOM),
                SortKey::new(c, PRESORT_NEARLY_SORTED),
            ]
        })
        .collect();
    let mut rng = Rng::new(cfg.seed ^ 0xC0_87E7);
    drive(&[&flip], &flip_keys, cfg.requests_per_key, &mut rng);

    // Part 2: warm vs cold — pre-train seed classes identically on both
    // tables, then probe the midpoint classes with identical streams.
    let warm = SortSites::register(&format!("study/ctx/warm/{}", cfg.seed), nominal, cfg.seed);
    let cold = SortSites::register(&format!("study/ctx/cold/{}", cfg.seed), nominal, cfg.seed)
        .without_warm_start();
    let seed_keys: Vec<SortKey> = cfg
        .classes
        .iter()
        .map(|&c| SortKey::new(c, PRESORT_RANDOM))
        .collect();
    let probe_keys: Vec<SortKey> = cfg
        .probe_classes()
        .iter()
        .map(|&c| SortKey::new(c, PRESORT_RANDOM))
        .collect();
    let mut rng = Rng::new(cfg.seed ^ 0x3EED);
    drive(&[&warm, &cold], &seed_keys, cfg.requests_per_key, &mut rng);
    drive(&[&warm, &cold], &probe_keys, cfg.requests_per_key, &mut rng);

    // Part 3: LRU churn — the flip key set through a table too small to
    // hold it, against a full-capacity baseline on the same cycle.
    assert!(
        cfg.churn_capacity < flip_keys.len(),
        "churn capacity must undershoot the key count to force evictions"
    );
    let bounded = SortSites::register_bounded(
        &format!("study/ctx/churn/{}", cfg.seed),
        cfg.churn_capacity,
        nominal,
        cfg.seed,
    );
    let resident = SortSites::register(
        &format!("study/ctx/resident/{}", cfg.seed),
        nominal,
        cfg.seed,
    );
    let (dispatches, churn_ns) = time_dispatches(&bounded, &flip_keys, cfg.churn_rounds);
    let (_, resident_ns) = time_dispatches(&resident, &flip_keys, cfg.churn_rounds);
    let churn_stats = bounded.table().stats();
    let churn = ChurnReport {
        keys: flip_keys.len(),
        capacity: cfg.churn_capacity,
        dispatches,
        admissions: churn_stats.admissions,
        evictions: churn_stats.evictions,
        reinstatements: churn_stats.reinstatements,
        churn_ns_per_dispatch: churn_ns,
        resident_ns_per_dispatch: resident_ns,
    };

    // Rebuild all per-key tables from the trace, filtered by context id.
    let trace_jsonl = export::to_jsonl(&telemetry::drain());
    let events = export::parse_jsonl(&trace_jsonl).expect("own trace must round-trip");
    let requests = cfg.requests_per_key as u64;
    let ctx = |table: &SortSites, key: &SortKey| {
        table
            .table()
            .context_id(key)
            .expect("driven key must have a context id")
    };
    let flip_tables: Vec<KeyTable> = flip_keys
        .iter()
        .map(|&k| table_for(k, ctx(&flip, &k), requests, &events))
        .collect();
    let flipped_classes = cfg
        .classes
        .iter()
        .copied()
        .filter(|&c| {
            let winner_of = |p: u32| {
                flip_tables
                    .iter()
                    .find(|t| t.class == c && t.presort == p)
                    .map(|t| t.winner)
            };
            winner_of(PRESORT_RANDOM) != winner_of(PRESORT_NEARLY_SORTED)
        })
        .collect();
    let probes: Vec<ProbePair> = probe_keys
        .iter()
        .map(|&k| ProbePair {
            class: k.class,
            warm: table_for(k, ctx(&warm, &k), requests, &events),
            cold: table_for(k, ctx(&cold, &k), requests, &events),
        })
        .collect();

    ContextsStudy {
        config: cfg.clone(),
        flip_tables,
        flipped_classes,
        probes,
        churn,
        measured_floor_ms: autotune::robust::timer_resolution_ms(),
        trace_jsonl,
    }
}

/// Human-readable three-part summary.
pub fn summary(study: &ContextsStudy) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "contexts study: {} classes x {} requests/key, timer tick {:.0}ns\n\n",
        study.config.classes.len(),
        study.config.requests_per_key,
        study.measured_floor_ms * 1e6,
    ));
    out.push_str("winner flip (size class x presortedness):\n");
    out.push_str("class  presort        ctx  measured  winner     conv@   median[us]\n");
    for t in &study.flip_tables {
        let conv = t.converged_after.map_or("-".into(), |i| i.to_string());
        out.push_str(&format!(
            "{:>5}  {:<13}  {:>3}  {:>8}  {:<9}  {:>5}  {:>11.2}\n",
            t.class,
            PRESORT_NAMES[t.presort as usize],
            t.context,
            t.measured,
            ALGORITHM_NAMES[t.winner],
            conv,
            t.final_median_ms * 1e3,
        ));
    }
    out.push_str(&format!(
        "classes whose winner flips with presortedness: {:?}\n\n",
        study.flipped_classes
    ));
    out.push_str("warm vs cold start (probe classes between trained seeds):\n");
    out.push_str("class  start  conv@  early[us]  final[us]\n");
    for p in &study.probes {
        for (label, t) in [("warm", &p.warm), ("cold", &p.cold)] {
            out.push_str(&format!(
                "{:>5}  {:<5}  {:>5}  {:>9.2}  {:>9.2}\n",
                p.class,
                label,
                t.conv_or_all(),
                t.early_median_ms * 1e3,
                t.final_median_ms * 1e3,
            ));
        }
    }
    out.push_str(&format!(
        "iterations to within {:.0}%: warm {} vs cold {} ({})\n\n",
        CONV_TOLERANCE * 100.0,
        study.warm_iterations(),
        study.cold_iterations(),
        if study.warm_not_worse() {
            "warm <= cold"
        } else {
            "warm WORSE than cold"
        },
    ));
    let c = &study.churn;
    out.push_str(&format!(
        "LRU churn: {} keys through {} slots, {} dispatches\n\
         admissions {} = evictions {} + resident {}; reinstatements {}\n\
         dispatch overhead: churning {:.0}ns vs resident {:.0}ns per call\n",
        c.keys,
        c.capacity,
        c.dispatches,
        c.admissions,
        c.evictions,
        c.capacity,
        c.reinstatements,
        c.churn_ns_per_dispatch,
        c.resident_ns_per_dispatch,
    ));
    out
}

fn key_table_json(t: &KeyTable) -> Json {
    Json::obj(vec![
        ("class", Json::Num(t.class as f64)),
        (
            "presort",
            Json::Str(PRESORT_NAMES[t.presort as usize].into()),
        ),
        ("context", Json::Num(t.context as f64)),
        ("requests", Json::Num(t.requests as f64)),
        ("measured", Json::Num(t.measured as f64)),
        (
            "selections",
            Json::Arr(t.selections.iter().map(|&c| Json::Num(c as f64)).collect()),
        ),
        ("winner", Json::Str(ALGORITHM_NAMES[t.winner].into())),
        ("final_median_ms", Json::Num(t.final_median_ms)),
        ("early_median_ms", Json::Num(t.early_median_ms)),
        (
            "converged_after",
            t.converged_after
                .map_or(Json::Null, |i| Json::Num(i as f64)),
        ),
    ])
}

/// Write `contexts.json` and `contexts_trace.jsonl` into `out`.
pub fn save(study: &ContextsStudy, out: &std::path::Path) -> std::io::Result<()> {
    let c = &study.churn;
    let doc = Json::obj(vec![
        ("id", Json::Str("contexts".into())),
        (
            "requests_per_key",
            Json::Num(study.config.requests_per_key as f64),
        ),
        ("seed", Json::Num(study.config.seed as f64)),
        ("measured_floor_ms", Json::Num(study.measured_floor_ms)),
        (
            "flip",
            Json::obj(vec![
                (
                    "tables",
                    Json::Arr(study.flip_tables.iter().map(key_table_json).collect()),
                ),
                (
                    "flipped_classes",
                    Json::Arr(
                        study
                            .flipped_classes
                            .iter()
                            .map(|&c| Json::Num(c as f64))
                            .collect(),
                    ),
                ),
            ]),
        ),
        (
            "warm_cold",
            Json::obj(vec![
                (
                    "probes",
                    Json::Arr(
                        study
                            .probes
                            .iter()
                            .map(|p| {
                                Json::obj(vec![
                                    ("class", Json::Num(p.class as f64)),
                                    ("warm", key_table_json(&p.warm)),
                                    ("cold", key_table_json(&p.cold)),
                                ])
                            })
                            .collect(),
                    ),
                ),
                ("warm_iterations", Json::Num(study.warm_iterations() as f64)),
                ("cold_iterations", Json::Num(study.cold_iterations() as f64)),
                ("warm_not_worse", Json::Bool(study.warm_not_worse())),
            ]),
        ),
        (
            "churn",
            Json::obj(vec![
                ("keys", Json::Num(c.keys as f64)),
                ("capacity", Json::Num(c.capacity as f64)),
                ("dispatches", Json::Num(c.dispatches as f64)),
                ("admissions", Json::Num(c.admissions as f64)),
                ("evictions", Json::Num(c.evictions as f64)),
                ("reinstatements", Json::Num(c.reinstatements as f64)),
                ("churn_ns_per_dispatch", Json::Num(c.churn_ns_per_dispatch)),
                (
                    "resident_ns_per_dispatch",
                    Json::Num(c.resident_ns_per_dispatch),
                ),
            ]),
        ),
    ]);
    std::fs::write(out.join("contexts.json"), doc.to_string_pretty() + "\n")?;
    std::fs::write(out.join("contexts_trace.jsonl"), &study.trace_jsonl)
}

#[cfg(test)]
mod tests {
    use super::*;
    use autotune::telemetry::NO_CONTEXT;

    fn tiny() -> ContextsConfig {
        ContextsConfig {
            classes: vec![8, 10],
            requests_per_key: 60,
            seed: 88001,
            churn_capacity: 3,
            churn_rounds: 8,
        }
    }

    #[test]
    fn tables_are_rebuilt_from_context_tagged_trace_lines() {
        let _g = crate::ring_lock();
        let study = run_study(&tiny());
        // Two classes x two presort shapes.
        assert_eq!(study.flip_tables.len(), 4);
        let mut contexts = std::collections::HashSet::new();
        for t in &study.flip_tables {
            assert_eq!(t.requests, 60);
            assert!(
                t.measured > 0,
                "key c{}/{} never measured",
                t.class,
                t.presort
            );
            assert!(t.measured <= t.requests);
            assert_eq!(t.selections.iter().sum::<u64>(), t.measured);
            assert!(t.final_median_ms.is_finite() && t.final_median_ms > 0.0);
            assert_ne!(t.context, NO_CONTEXT);
            assert!(contexts.insert(t.context), "context ids must be distinct");
        }
        // The serialized trace itself carries the context ids the tables
        // were filtered by.
        let ctx = study.flip_tables[0].context;
        assert!(
            study.trace_jsonl.contains(&format!("\"context\":{ctx}")),
            "trace must carry the context field"
        );
        // One probe class (midpoint of 8 and 10), measured in both runs.
        assert_eq!(study.config.probe_classes(), vec![9]);
        assert_eq!(study.probes.len(), 1);
        let p = &study.probes[0];
        assert_eq!(p.class, 9);
        assert!(p.warm.measured > 0 && p.cold.measured > 0);
        assert_ne!(p.warm.context, p.cold.context);
    }

    #[test]
    fn churn_accounting_is_exact() {
        let _g = crate::ring_lock();
        let study = run_study(&tiny());
        let c = &study.churn;
        assert_eq!(c.keys, 4);
        assert_eq!(c.dispatches, (4 * 8) as u64);
        // Round-robin over 4 keys through 3 slots with LRU replacement is
        // the adversarial pattern: every dispatch after the warm-up pass
        // misses, so every admission past the first four reinstates.
        assert_eq!(c.admissions, c.evictions + c.capacity as u64);
        assert_eq!(c.reinstatements, c.admissions - c.keys as u64);
        assert!(c.reinstatements > 0, "churn run must actually churn");
        assert!(c.churn_ns_per_dispatch > 0.0 && c.resident_ns_per_dispatch > 0.0);
    }

    #[test]
    fn save_writes_tables_and_trace() {
        let _g = crate::ring_lock();
        let dir = std::env::temp_dir().join("contexts_study_test");
        std::fs::create_dir_all(&dir).unwrap();
        let study = run_study(&ContextsConfig {
            seed: 88003,
            requests_per_key: 40,
            ..tiny()
        });
        save(&study, &dir).unwrap();
        let doc =
            Json::parse(&std::fs::read_to_string(dir.join("contexts.json")).unwrap()).unwrap();
        let flip = doc.get("flip").unwrap();
        assert_eq!(flip.get("tables").and_then(Json::as_arr).unwrap().len(), 4);
        let wc = doc.get("warm_cold").unwrap();
        assert!(wc.get("warm_iterations").and_then(Json::as_f64).is_some());
        assert!(wc.get("warm_not_worse").is_some());
        assert!(doc.get("churn").unwrap().get("evictions").is_some());
        let trace = std::fs::read_to_string(dir.join("contexts_trace.jsonl")).unwrap();
        let events = export::parse_jsonl(&trace).expect("trace parses");
        assert!(events.iter().any(|e| e.context != NO_CONTEXT));
        let _ = std::fs::remove_dir_all(&dir);
    }
}
