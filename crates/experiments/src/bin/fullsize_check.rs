//! Corpus-size sweep: per-algorithm search time at 256 KiB, 1 MiB and
//! 4 MiB (the paper's Bible is ~4.2 MB).
//!
//! ```sh
//! cargo run --release -p experiments --bin fullsize_check
//! ```
//!
//! Demonstrates the scale-dependence of Figure 1's ranking: SSEF's
//! 16-byte-stride filter amortizes its 64 K-entry table over corpus size,
//! so it trails slightly on small corpora and becomes the outright fastest
//! at the paper's scale — the deviation note in EXPERIMENTS.md.

use stringmatch::{all_matchers, corpus, Matcher, PAPER_QUERY};

fn median_ms(m: &dyn Matcher, text: &[u8], reps: usize) -> f64 {
    let mut times: Vec<f64> = (0..reps)
        .map(|_| {
            let t0 = std::time::Instant::now();
            let hits = m.find_all(PAPER_QUERY, text);
            assert!(!hits.is_empty());
            t0.elapsed().as_secs_f64() * 1e3
        })
        .collect();
    times.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
    times[times.len() / 2]
}

fn main() {
    let sizes = [
        (256usize << 10, "256KiB"),
        (1 << 20, "1MiB"),
        (4 << 20, "4MiB"),
    ];
    let texts: Vec<(Vec<u8>, &str)> = sizes
        .iter()
        .map(|&(bytes, label)| (corpus::bible_like_with(7, bytes, 40_000), label))
        .collect();

    print!("{:<20}", "algorithm");
    for (_, label) in &texts {
        print!(" {label:>10}");
    }
    println!();
    for m in all_matchers() {
        print!("{:<20}", m.name());
        for (text, _) in &texts {
            print!(" {:>8.3}ms", median_ms(m.as_ref(), text, 5));
        }
        println!();
    }
    println!("\n(expected: SSEF's lead grows with corpus size; KMP stays ~linear-slow)");
}
