//! The paper's tables.
//!
//! * **Table I** — the parameter-class taxonomy, regenerated from the
//!   library's own type system so the table and the code cannot drift.
//! * **Table II** — the benchmark system specification; the paper reports
//!   its Xeon E5-1620v2, we report the host the reproduction ran on.

use autotune::param::ParamClass;
use std::fmt::Write as _;

/// Table I rows: (class, distinguishing property, example).
pub fn table1_rows() -> Vec<(&'static str, &'static str, &'static str)> {
    ParamClass::all()
        .into_iter()
        .map(|c| {
            let example = match c {
                ParamClass::Nominal => "Choice of algorithm",
                ParamClass::Ordinal => "Choice of buffer sizes from a set small, medium, large",
                ParamClass::Interval => "Percentage of a maximum buffer size",
                ParamClass::Ratio => "Number of threads",
            };
            (c.name(), c.distinguishing_property(), example)
        })
        .collect()
}

/// Render Table I.
pub fn table1() -> String {
    let mut out = String::from("Table I — Parameter Classes\n");
    writeln!(
        out,
        "{:<10} {:<36} Example",
        "Class", "Distinguishing Property"
    )
    .unwrap();
    for (class, prop, example) in table1_rows() {
        writeln!(out, "{class:<10} {prop:<36} {example}").unwrap();
    }
    out
}

/// Table II rows: (key, value) pairs describing the benchmark system.
pub fn table2_rows() -> Vec<(String, String)> {
    let cpuinfo = std::fs::read_to_string("/proc/cpuinfo").unwrap_or_default();
    let model = cpuinfo
        .lines()
        .find(|l| l.starts_with("model name"))
        .and_then(|l| l.split(':').nth(1))
        .map(|s| s.trim().to_string())
        .unwrap_or_else(|| "unknown".into());
    let threads = std::thread::available_parallelism()
        .map(|n| n.get().to_string())
        .unwrap_or_else(|_| "unknown".into());
    let meminfo = std::fs::read_to_string("/proc/meminfo").unwrap_or_default();
    let ram = meminfo
        .lines()
        .find(|l| l.starts_with("MemTotal"))
        .and_then(|l| l.split_whitespace().nth(1))
        .and_then(|kb| kb.parse::<u64>().ok())
        .map(|kb| format!("{:.0}GB", kb as f64 / 1024.0 / 1024.0))
        .unwrap_or_else(|| "unknown".into());
    vec![
        ("Processor".into(), model),
        ("Threads".into(), threads),
        ("RAM".into(), ram),
        (
            "Paper's system".into(),
            "Intel Xeon E5-1620v2, 3.70GHz, 8 threads, 64GB".into(),
        ),
    ]
}

/// Render Table II.
pub fn table2() -> String {
    let mut out = String::from("Table II — Benchmark System\n");
    for (k, v) in table2_rows() {
        writeln!(out, "{k:<16} {v}").unwrap();
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_matches_the_paper() {
        let rows = table1_rows();
        assert_eq!(rows.len(), 4);
        assert_eq!(rows[0].0, "Nominal");
        assert_eq!(rows[0].1, "Labels");
        assert_eq!(rows[0].2, "Choice of algorithm");
        assert_eq!(rows[3].0, "Ratio");
        assert_eq!(rows[3].2, "Number of threads");
        let rendered = table1();
        assert!(rendered.contains("Distinguishing Property"));
        assert!(rendered.contains("Interval"));
    }

    #[test]
    fn table2_reports_host_facts() {
        let rows = table2_rows();
        assert_eq!(rows.len(), 4);
        assert!(rows.iter().any(|(k, _)| k == "Processor"));
        let rendered = table2();
        assert!(rendered.contains("Xeon E5-1620v2"), "paper's reference row");
    }
}
