//! Telemetry-backed run recording and post-hoc convergence reporting — the
//! `record` and `report` targets.
//!
//! `record` runs one repetition of each case study's tuning loop per
//! phase-2 strategy with the global [`autotune::telemetry`] recorder
//! enabled, then drains the event ring into one JSONL file per run
//! (`trace_<cs>_<strategy>.jsonl`, each starting with a `"run-meta"`
//! header line) plus one Chrome `trace_event` file per case study
//! (`trace_<cs>.trace.json`, loadable in Perfetto / `chrome://tracing`).
//!
//! `report` is deliberately decoupled: it reconstructs per-strategy
//! convergence summaries — iterations to come within 5% of the best
//! observed runtime, selection entropy over time, failure counts — from
//! the JSONL files *alone*, without rerunning anything. The recorded
//! trace is the interface; anything the report needs that the trace
//! can't answer is a telemetry gap to fix, not a reason to re-measure.

use crate::{cs1, cs2};
use autotune::robust::RobustOptions;
use autotune::stats;
use autotune::telemetry::{
    self,
    export::{chrome_trace, parse_run_log, write_run_log, RunMeta},
    Event, EventKind, MeasureStatus, DEFAULT_RING_CAPACITY,
};
use autotune::two_phase::TwoPhaseTuner;
use raytrace::tunable;
use std::io;
use std::path::{Path, PathBuf};
use stringmatch::{all_matchers, corpus};

/// Make a strategy label file-name safe: lowercase alphanumerics with
/// single dashes (`"e-Greedy(10%)"` → `"e-greedy-10"`).
pub fn slug(label: &str) -> String {
    let mut out = String::with_capacity(label.len());
    for c in label.chars() {
        if c.is_ascii_alphanumeric() {
            out.push(c.to_ascii_lowercase());
        } else if !out.ends_with('-') && !out.is_empty() {
            out.push('-');
        }
    }
    out.trim_end_matches('-').to_string()
}

fn write_text(path: &Path, contents: &str) -> io::Result<()> {
    if let Some(parent) = path.parent() {
        std::fs::create_dir_all(parent)?;
    }
    std::fs::write(path, contents)
}

/// Write one run's JSONL log, and (for the first strategy of a case
/// study) the Chrome trace alongside it. Returns the files written.
fn save_run(
    dir: &Path,
    meta: &RunMeta,
    events: &[Event],
    with_chrome: bool,
) -> io::Result<Vec<PathBuf>> {
    let mut written = Vec::new();
    let jsonl = dir.join(format!(
        "trace_{}_{}.jsonl",
        meta.case_study,
        slug(&meta.strategy)
    ));
    write_text(&jsonl, &write_run_log(meta, events))?;
    written.push(jsonl);
    if with_chrome {
        let trace = dir.join(format!("trace_{}.trace.json", meta.case_study));
        write_text(&trace, &chrome_trace(events).to_string())?;
        written.push(trace);
    }
    Ok(written)
}

/// Record one telemetry-instrumented repetition of the case-study-1
/// tuning loop per strategy. Measurements run through the robust
/// pipeline ([`cs1::timed_search_outcome`]) so the traces carry
/// `span-begin`/`span-end` pairs and failure outcomes, exactly like a
/// production deployment would.
pub fn record_cs1(cfg: &cs1::Cs1Config, dir: &Path) -> io::Result<Vec<PathBuf>> {
    let text = corpus::bible_like_with(cfg.seed, cfg.corpus_bytes, cfg.query_spacing_words);
    let matchers = all_matchers();
    let specs: Vec<_> = matchers
        .iter()
        .map(|m| autotune::two_phase::AlgorithmSpec::untunable(m.name()))
        .collect();
    let opts = RobustOptions::default();
    let mut written = Vec::new();

    telemetry::enable_with_capacity(DEFAULT_RING_CAPACITY);
    for (si, (label, kind)) in cs1::strategies().into_iter().enumerate() {
        telemetry::reset();
        let seed = cfg.seed.wrapping_add(si as u64 * 7919);
        let mut tuner = TwoPhaseTuner::new(specs.clone(), kind, seed);
        for _ in 0..cfg.iterations {
            let (alg, _config) = tuner.next();
            let outcome =
                cs1::timed_search_outcome(matchers[alg].as_ref(), cfg.threads, &text, &opts);
            tuner.report_outcome(outcome);
        }
        let events = telemetry::drain();
        let meta = RunMeta {
            case_study: "cs1".into(),
            strategy: label,
            algorithms: cs1::algorithm_names(),
            iterations: cfg.iterations as u64,
        };
        written.extend(save_run(dir, &meta, &events, si == 0)?);
    }
    telemetry::disable();
    Ok(written)
}

/// Record one telemetry-instrumented repetition of the case-study-2
/// rendering loop per strategy, via [`tunable::measure_frame`] (frame
/// spans, kD-build faults, pool queue-depth gauges all land in the
/// trace).
pub fn record_cs2(cfg: &cs2::Cs2Config, dir: &Path) -> io::Result<Vec<PathBuf>> {
    let scene = cfg.scene();
    let base = cfg.render_options();
    let builders = raytrace::all_builders();
    let specs = tunable::algorithm_specs();
    let opts = RobustOptions::default();
    let mut written = Vec::new();

    telemetry::enable_with_capacity(DEFAULT_RING_CAPACITY);
    for (si, (label, kind)) in cs1::strategies().into_iter().enumerate() {
        telemetry::reset();
        let seed = cfg.seed.wrapping_add(si as u64 * 104729);
        let mut tuner = TwoPhaseTuner::new(specs.clone(), kind, seed);
        for _ in 0..cfg.frames {
            let (alg, config) = tuner.next();
            let outcome =
                tunable::measure_frame(&scene, builders[alg].as_ref(), &config, &base, &opts);
            tuner.report_outcome(outcome);
        }
        let events = telemetry::drain();
        let meta = RunMeta {
            case_study: "cs2".into(),
            strategy: label,
            algorithms: cs2::algorithm_names(),
            iterations: cfg.frames as u64,
        };
        written.extend(save_run(dir, &meta, &events, si == 0)?);
    }
    telemetry::disable();
    Ok(written)
}

/// Per-strategy convergence summary, reconstructed from a recorded
/// trace alone.
#[derive(Debug, Clone, PartialEq)]
pub struct RunSummary {
    /// `"cs1"` / `"cs2"` (from the run-meta header).
    pub case_study: String,
    /// Strategy label (from the run-meta header).
    pub strategy: String,
    /// Algorithm names in selection order (from the run-meta header).
    pub algorithms: Vec<String>,
    /// Number of `iteration-start` events in the trace.
    pub iterations: u64,
    /// Successful measurements.
    pub ok: u64,
    /// Failed + timed-out measurements (absorbed as penalties).
    pub failures: u64,
    /// Best successful runtime in the run, in milliseconds.
    pub best_ms: f64,
    /// First iteration whose runtime came within 5% of [`best_ms`]
    /// (`None` if the run had no successful measurement).
    ///
    /// [`best_ms`]: RunSummary::best_ms
    pub within_5pct_at: Option<u64>,
    /// Selection counts per algorithm index.
    pub selections: Vec<u64>,
    /// Shannon entropy (bits) of the selection distribution in each
    /// quarter of the run — converging strategies decay toward 0.
    pub entropy_per_quarter: Vec<f64>,
    /// The phase-2 weight vector at the last selection.
    pub final_weights: Vec<f64>,
}

/// Shannon entropy in bits of a selection-count histogram.
pub fn entropy_bits(counts: &[u64]) -> f64 {
    let total: u64 = counts.iter().sum();
    if total == 0 {
        return 0.0;
    }
    let mut h = 0.0;
    for &c in counts {
        if c > 0 {
            let p = c as f64 / total as f64;
            h -= p * p.log2();
        }
    }
    h
}

/// Reduce one recorded run (meta + events) to its [`RunSummary`].
pub fn summarize(meta: &RunMeta, events: &[Event]) -> RunSummary {
    let num_algorithms = meta.algorithms.len().max(1);
    let mut iterations = 0u64;
    let mut current_iteration = 0u64;
    let mut ok = 0u64;
    let mut failures = 0u64;
    let mut runtimes: Vec<(u64, f64)> = Vec::new();
    let mut picks: Vec<usize> = Vec::new();
    let mut final_weights = Vec::new();
    for e in events {
        match &e.kind {
            EventKind::IterationStart { iteration } => {
                iterations += 1;
                current_iteration = *iteration;
            }
            EventKind::AlgorithmSelected { algorithm, weights } => {
                picks.push(*algorithm as usize);
                final_weights = weights.as_slice().iter().map(|&w| w as f64).collect();
            }
            EventKind::MeasureOutcome {
                status, runtime_ms, ..
            } => match status {
                MeasureStatus::Ok => {
                    ok += 1;
                    runtimes.push((current_iteration, *runtime_ms));
                }
                MeasureStatus::Failed | MeasureStatus::TimedOut => failures += 1,
            },
            _ => {}
        }
    }

    let best_ms = runtimes
        .iter()
        .map(|&(_, r)| r)
        .fold(f64::INFINITY, f64::min);
    let within_5pct_at = if runtimes.is_empty() {
        None
    } else {
        runtimes
            .iter()
            .find(|&&(_, r)| r <= best_ms * 1.05)
            .map(|&(i, _)| i)
    };

    let mut selections = vec![0u64; num_algorithms];
    for &p in &picks {
        if p < num_algorithms {
            selections[p] += 1;
        }
    }
    let entropy_per_quarter = quarters(&picks)
        .into_iter()
        .map(|q| {
            let mut counts = vec![0u64; num_algorithms];
            for &p in q {
                if p < num_algorithms {
                    counts[p] += 1;
                }
            }
            entropy_bits(&counts)
        })
        .collect();

    RunSummary {
        case_study: meta.case_study.clone(),
        strategy: meta.strategy.clone(),
        algorithms: meta.algorithms.clone(),
        iterations,
        ok,
        failures,
        best_ms: if best_ms.is_finite() {
            best_ms
        } else {
            f64::NAN
        },
        within_5pct_at,
        selections,
        entropy_per_quarter,
        final_weights,
    }
}

/// Split a slice into (up to) four contiguous, near-equal quarters.
fn quarters(picks: &[usize]) -> Vec<&[usize]> {
    if picks.is_empty() {
        return Vec::new();
    }
    let n = picks.len();
    let q = n.div_ceil(4);
    picks.chunks(q).collect()
}

/// Load and summarize every `trace_*.jsonl` in `dir`, sorted by
/// (case study, strategy). Files that fail to parse are reported on
/// stderr and skipped — one corrupt trace must not hide the others.
pub fn load_summaries(dir: &Path) -> io::Result<Vec<RunSummary>> {
    let mut summaries = Vec::new();
    let mut entries: Vec<PathBuf> = std::fs::read_dir(dir)?
        .filter_map(|e| e.ok().map(|e| e.path()))
        .filter(|p| {
            let name = p.file_name().and_then(|n| n.to_str()).unwrap_or("");
            name.starts_with("trace_") && name.ends_with(".jsonl")
        })
        .collect();
    entries.sort();
    for path in entries {
        let text = std::fs::read_to_string(&path)?;
        match parse_run_log(&text) {
            Ok(log) => {
                let meta = log.meta.unwrap_or_else(|| RunMeta {
                    case_study: "?".into(),
                    strategy: path
                        .file_stem()
                        .and_then(|s| s.to_str())
                        .unwrap_or("?")
                        .to_string(),
                    algorithms: Vec::new(),
                    iterations: 0,
                });
                summaries.push(summarize(&meta, &log.events));
            }
            Err(e) => eprintln!("skipping {}: {e:?}", path.display()),
        }
    }
    summaries.sort_by(|a, b| {
        (a.case_study.as_str(), a.strategy.as_str())
            .cmp(&(b.case_study.as_str(), b.strategy.as_str()))
    });
    Ok(summaries)
}

/// Render the per-strategy convergence tables (one per case study).
pub fn render_report(summaries: &[RunSummary]) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    let mut case_studies: Vec<&str> = summaries.iter().map(|s| s.case_study.as_str()).collect();
    case_studies.dedup();
    for cs in case_studies {
        let rows: Vec<&RunSummary> = summaries.iter().filter(|s| s.case_study == cs).collect();
        let _ = writeln!(out, "=== {cs}: per-strategy convergence ===");
        let _ = writeln!(
            out,
            "{:<24} {:>5} {:>4} {:>5} {:>10} {:>8}  {:<20} selections",
            "strategy", "iters", "ok", "fail", "best[ms]", "5%@iter", "entropy/quarter[bit]"
        );
        for s in rows {
            let entropy = s
                .entropy_per_quarter
                .iter()
                .map(|h| format!("{h:.2}"))
                .collect::<Vec<_>>()
                .join(" ");
            let picks = s
                .selections
                .iter()
                .map(|c| c.to_string())
                .collect::<Vec<_>>()
                .join(",");
            let at = s
                .within_5pct_at
                .map(|i| i.to_string())
                .unwrap_or_else(|| "-".into());
            let _ = writeln!(
                out,
                "{:<24} {:>5} {:>4} {:>5} {:>10.4} {:>8}  {:<20} {}",
                s.strategy, s.iterations, s.ok, s.failures, s.best_ms, at, entropy, picks
            );
        }
        out.push('\n');
    }
    out
}

/// The machine-readable form of the report, written to `report.json`.
pub fn report_json(summaries: &[RunSummary]) -> autotune::json::Json {
    use autotune::json::Json;
    Json::obj(vec![(
        "runs",
        Json::Arr(
            summaries
                .iter()
                .map(|s| {
                    Json::obj(vec![
                        ("case-study", Json::Str(s.case_study.clone())),
                        ("strategy", Json::Str(s.strategy.clone())),
                        (
                            "algorithms",
                            Json::Arr(s.algorithms.iter().map(|a| Json::Str(a.clone())).collect()),
                        ),
                        ("iterations", Json::Num(s.iterations as f64)),
                        ("ok", Json::Num(s.ok as f64)),
                        ("failures", Json::Num(s.failures as f64)),
                        ("best-ms", Json::Num(s.best_ms)),
                        (
                            "within-5pct-at",
                            s.within_5pct_at
                                .map(|i| Json::Num(i as f64))
                                .unwrap_or(Json::Null),
                        ),
                        (
                            "selections",
                            Json::Arr(s.selections.iter().map(|&c| Json::Num(c as f64)).collect()),
                        ),
                        (
                            "entropy-per-quarter",
                            Json::Arr(
                                s.entropy_per_quarter
                                    .iter()
                                    .map(|&h| Json::Num(h))
                                    .collect(),
                            ),
                        ),
                        (
                            "final-weights",
                            Json::Arr(s.final_weights.iter().map(|&w| Json::Num(w)).collect()),
                        ),
                    ])
                })
                .collect(),
        ),
    )])
}

/// Run the full `report` target: summarize `dir`, print the tables, and
/// write `<dir>/report.json`. Sanity-checks against `stats` so a
/// mis-parsed trace fails loudly rather than printing nonsense.
pub fn report(dir: &Path) -> io::Result<Vec<RunSummary>> {
    let summaries = load_summaries(dir)?;
    if summaries.is_empty() {
        eprintln!(
            "no trace_*.jsonl files in {} — run `experiments record` first",
            dir.display()
        );
    } else {
        print!("{}", render_report(&summaries));
        debug_assert!(summaries
            .iter()
            .filter(|s| s.ok > 0)
            .all(|s| s.best_ms > 0.0 && stats::mean(&[s.best_ms]).is_finite()));
        let path = dir.join("report.json");
        write_text(&path, &report_json(&summaries).to_string_pretty())?;
        println!("→ {}", path.display());
    }
    Ok(summaries)
}

#[cfg(test)]
mod tests {
    use super::*;
    use autotune::telemetry::WeightSet;

    fn ev(t_us: u64, kind: EventKind) -> Event {
        Event::untagged(t_us, kind)
    }

    fn meta() -> RunMeta {
        RunMeta {
            case_study: "cs1".into(),
            strategy: "e-greedy(10%)".into(),
            algorithms: vec!["A".into(), "B".into()],
            iterations: 3,
        }
    }

    #[test]
    fn slug_is_file_safe() {
        assert_eq!(slug("e-Greedy(10%)"), "e-greedy-10");
        assert_eq!(slug("sliding-window-auc(16)"), "sliding-window-auc-16");
        assert_eq!(slug("optimum weighted"), "optimum-weighted");
    }

    #[test]
    fn summarize_reconstructs_convergence() {
        let w = WeightSet::from_slice(&[0.25, 0.75]);
        let events = vec![
            ev(0, EventKind::IterationStart { iteration: 0 }),
            ev(
                1,
                EventKind::AlgorithmSelected {
                    algorithm: 0,
                    weights: w,
                },
            ),
            ev(
                2,
                EventKind::MeasureOutcome {
                    algorithm: 0,
                    status: MeasureStatus::Ok,
                    runtime_ms: 10.0,
                },
            ),
            ev(3, EventKind::IterationStart { iteration: 1 }),
            ev(
                4,
                EventKind::AlgorithmSelected {
                    algorithm: 1,
                    weights: w,
                },
            ),
            ev(
                5,
                EventKind::MeasureOutcome {
                    algorithm: 1,
                    status: MeasureStatus::Failed,
                    runtime_ms: 40.0,
                },
            ),
            ev(6, EventKind::IterationStart { iteration: 2 }),
            ev(
                7,
                EventKind::AlgorithmSelected {
                    algorithm: 1,
                    weights: w,
                },
            ),
            ev(
                8,
                EventKind::MeasureOutcome {
                    algorithm: 1,
                    status: MeasureStatus::Ok,
                    runtime_ms: 5.0,
                },
            ),
        ];
        let s = summarize(&meta(), &events);
        assert_eq!(s.iterations, 3);
        assert_eq!(s.ok, 2);
        assert_eq!(s.failures, 1);
        assert_eq!(s.best_ms, 5.0);
        assert_eq!(s.within_5pct_at, Some(2), "10ms is not within 5% of 5ms");
        assert_eq!(s.selections, vec![1, 2]);
        assert_eq!(s.final_weights.len(), 2);
        assert!((s.final_weights[1] - 0.75).abs() < 1e-9);
    }

    #[test]
    fn entropy_is_zero_when_converged_and_max_when_uniform() {
        assert_eq!(entropy_bits(&[10, 0, 0, 0]), 0.0);
        assert!((entropy_bits(&[5, 5, 5, 5]) - 2.0).abs() < 1e-12);
        assert_eq!(entropy_bits(&[]), 0.0);
    }

    #[test]
    fn quarters_split_contiguously() {
        let picks = vec![0, 0, 0, 1, 1, 1, 2, 2, 2];
        let qs = quarters(&picks);
        assert_eq!(qs.len(), 3, "9 picks → chunks of ceil(9/4)=3 → 3+3+3");
        let total: usize = qs.iter().map(|q| q.len()).sum();
        assert_eq!(total, picks.len());
    }

    #[test]
    fn report_round_trips_through_files() {
        let dir = std::env::temp_dir().join(format!("record_test_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let w = WeightSet::from_slice(&[1.0]);
        let events = vec![
            ev(0, EventKind::IterationStart { iteration: 0 }),
            ev(
                1,
                EventKind::AlgorithmSelected {
                    algorithm: 0,
                    weights: w,
                },
            ),
            ev(
                2,
                EventKind::MeasureOutcome {
                    algorithm: 0,
                    status: MeasureStatus::Ok,
                    runtime_ms: 2.5,
                },
            ),
        ];
        let m = RunMeta {
            case_study: "cs1".into(),
            strategy: "solo".into(),
            algorithms: vec!["A".into()],
            iterations: 1,
        };
        save_run(&dir, &m, &events, true).unwrap();
        assert!(dir.join("trace_cs1_solo.jsonl").exists());
        assert!(dir.join("trace_cs1.trace.json").exists());
        let summaries = load_summaries(&dir).unwrap();
        assert_eq!(summaries.len(), 1);
        assert_eq!(summaries[0].strategy, "solo");
        assert_eq!(summaries[0].best_ms, 2.5);
        let j = report_json(&summaries);
        let parsed = autotune::json::Json::parse(&j.to_string()).unwrap();
        assert_eq!(parsed.get("runs").unwrap().as_arr().unwrap().len(), 1);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
